// Ablation (DESIGN.md #1, #2): how much does each layer of the bound chain
// give up?  For a corpus of schedules we compare, at the certificate's λ*:
//
//   exact ‖Mx(λ)‖  <=  per-vertex audit bound  <=  worst-case F(λ, s)
//
// and the resulting coefficients: audit e vs general e(s).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "analysis/gap.hpp"
#include "core/audit.hpp"
#include "core/bounds.hpp"
#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "protocol/tree_protocols.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/kautz.hpp"
#include "util/table.hpp"

namespace {

using sysgo::protocol::Mode;

void print_ablation() {
  std::printf("=== Ablation: per-vertex audit vs worst-case general bound ===\n\n");
  struct Case {
    std::string name;
    sysgo::protocol::SystolicSchedule sched;
  };
  std::vector<Case> cases;
  cases.push_back({"path(16) hd", sysgo::protocol::path_schedule(16, Mode::kHalfDuplex)});
  cases.push_back({"cycle(16) hd", sysgo::protocol::cycle_schedule(16, Mode::kHalfDuplex)});
  cases.push_back({"tree(2,h=4) hd", sysgo::protocol::tree_schedule(2, 4, Mode::kHalfDuplex)});
  cases.push_back({"grid(5x5) hd", sysgo::protocol::grid_schedule(5, 5, Mode::kHalfDuplex)});
  cases.push_back({"DB(2,5) hd", sysgo::protocol::edge_coloring_schedule(
                                     sysgo::topology::de_bruijn(2, 5), Mode::kHalfDuplex)});
  cases.push_back({"K(2,4) hd", sysgo::protocol::edge_coloring_schedule(
                                    sysgo::topology::kautz(2, 4), Mode::kHalfDuplex)});
  cases.push_back({"hyper(4) fd", sysgo::protocol::hypercube_schedule(4, Mode::kFullDuplex)});

  sysgo::util::Table table({"schedule", "s", "audit e", "general e(s)",
                            "max exact ||Mx||@l*", "max analytic@l*"});
  for (auto& c : cases) {
    const auto audit = sysgo::core::audit_schedule(c.sched);
    const int s = c.sched.period_length();
    const auto duplex = c.sched.mode == Mode::kFullDuplex
                            ? sysgo::core::Duplex::kFull
                            : sysgo::core::Duplex::kHalf;
    const double gen = s >= 3 ? sysgo::core::e_general(s, duplex) : 0.0;
    const auto gaps = sysgo::analysis::audit_gap_report(c.sched, audit.lambda_star);
    double max_exact = 0.0, max_analytic = 0.0;
    for (const auto& row : gaps) {
      max_exact = std::max(max_exact, row.exact_norm);
      max_analytic = std::max(max_analytic, row.analytic_bound);
    }
    table.add_row({c.name, std::to_string(s),
                   sysgo::util::format_fixed(audit.e_coeff, 4),
                   sysgo::util::format_fixed(gen, 4),
                   sysgo::util::format_fixed(max_exact, 4),
                   sysgo::util::format_fixed(max_analytic, 4)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("audit e >= general e(s): the per-vertex refinement never loses;\n"
              "max exact <= max analytic: the Lemma 4.3 slack at lambda*.\n\n");
}

void BM_GapReport(benchmark::State& state) {
  const auto sched = sysgo::protocol::edge_coloring_schedule(
      sysgo::topology::de_bruijn(2, static_cast<int>(state.range(0))),
      Mode::kHalfDuplex);
  for (auto _ : state) {
    auto rows = sysgo::analysis::audit_gap_report(sched, 0.5);
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_GapReport)
    ->Name("ablation/gap_report_debruijn")
    ->DenseRange(4, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("ablation_audit_refinement", print_ablation())
