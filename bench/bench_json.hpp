// Machine-readable bench sink: every bench/*.cpp main goes through
// SYSGO_BENCH_MAIN(name) (or the _PRE variant when a CSV table prints
// first) and, in addition to the usual console output, writes
// BENCH_<name>.json into the working directory:
//
//   {"sysgo_bench": 1, "name": ..., "context": {num_cpus, cpu_ghz},
//    "benchmarks": {"<bench>": {"time_unit": "ms", "reps": k,
//                               "median_real_time": x, "p90_real_time": y,
//                               "counters": {"moves/s": m, ...}}}}
//
// Repetition samples come from the per-repetition (RT_Iteration) runs; with
// the default single repetition, median == p90 == the one measurement.
// Quantiles are nearest-rank, matching obs::Histogram's convention.
// User counters (rates like rows/s, moves/s) arrive already finalized by
// the benchmark library and are reported as per-counter medians; the
// "counters" key is omitted for counter-less benchmarks.
#pragma once

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "util/fs.hpp"

namespace sysgo::benchjson {

/// Console reporter that additionally captures per-repetition real times,
/// grouped by benchmark name, for the JSON sink.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Series {
    std::string time_unit;
    std::vector<double> real_times;  // one entry per repetition
    // Counter samples per name, one entry per repetition (already
    // rate-adjusted by the benchmark library).
    std::map<std::string, std::vector<double>> counters;
  };

  bool ReportContext(const Context& context) override {
    num_cpus_ = context.cpu_info.num_cpus;
    cpu_ghz_ = context.cpu_info.cycles_per_second / 1e9;
    return ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Series& s = series_[run.benchmark_name()];
      s.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      s.real_times.push_back(run.GetAdjustedRealTime());
      for (const auto& [cname, counter] : run.counters)
        s.counters[cname].push_back(counter.value);
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::map<std::string, Series>& series() const {
    return series_;
  }
  [[nodiscard]] int num_cpus() const { return num_cpus_; }
  [[nodiscard]] double cpu_ghz() const { return cpu_ghz_; }

 private:
  std::map<std::string, Series> series_;  // name-sorted, like obs snapshots
  int num_cpus_ = 0;
  double cpu_ghz_ = 0.0;
};

/// Nearest-rank quantile of a sample vector (sorted copy; q in (0, 1]).
inline double sample_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  const auto r = static_cast<std::size_t>(
      std::clamp(std::ceil(q * n), 1.0, n));
  return v[r - 1];
}

inline std::string render_json(const std::string& name,
                               const JsonCaptureReporter& rep) {
  std::ostringstream out;
  char buf[64];
  const auto num = [&](double v) -> std::ostringstream& {
    std::snprintf(buf, sizeof buf, "%.6f", v);
    out << buf;
    return out;
  };
  out << "{\n  \"sysgo_bench\": 1,\n  \"name\": \"" << name
      << "\",\n  \"context\": {\"num_cpus\": " << rep.num_cpus()
      << ", \"cpu_ghz\": ";
  num(rep.cpu_ghz()) << "},\n  \"benchmarks\": {";
  bool first = true;
  for (const auto& [bench, s] : rep.series()) {
    out << (first ? "" : ",") << "\n    \"" << bench
        << "\": {\"time_unit\": \"" << s.time_unit
        << "\", \"reps\": " << s.real_times.size()
        << ", \"median_real_time\": ";
    num(sample_quantile(s.real_times, 0.50)) << ", \"p90_real_time\": ";
    num(sample_quantile(s.real_times, 0.90));
    if (!s.counters.empty()) {
      out << ", \"counters\": {";
      bool cfirst = true;
      for (const auto& [cname, samples] : s.counters) {
        out << (cfirst ? "" : ", ") << "\"" << cname << "\": ";
        num(sample_quantile(samples, 0.50));
        cfirst = false;
      }
      out << "}";
    }
    out << "}";
    first = false;
  }
  out << (rep.series().empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

inline void write_json(const std::string& name,
                       const JsonCaptureReporter& rep) {
  util::write_file_atomic("BENCH_" + name + ".json", render_json(name, rep));
}

}  // namespace sysgo::benchjson

/// Drop-in replacement for BENCHMARK_MAIN() that also writes
/// BENCH_<name>.json.  `pre` (the _PRE variant) runs before benchmark
/// initialization — the slot for the table-printing half of the fig benches.
#define SYSGO_BENCH_MAIN_PRE(bench_name, pre)                         \
  int main(int argc, char** argv) {                                   \
    pre;                                                              \
    benchmark::Initialize(&argc, argv);                               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    sysgo::benchjson::JsonCaptureReporter reporter;                   \
    benchmark::RunSpecifiedBenchmarks(&reporter);                     \
    sysgo::benchjson::write_json(bench_name, reporter);               \
    benchmark::Shutdown();                                            \
    return 0;                                                         \
  }

#define SYSGO_BENCH_MAIN(bench_name) SYSGO_BENCH_MAIN_PRE(bench_name, (void)0)
