// Machine-readable bench sink: every bench/*.cpp main goes through
// SYSGO_BENCH_MAIN(name) (or the _PRE variant when a CSV table prints
// first) and, in addition to the usual console output, writes
// BENCH_<name>.json into the working directory:
//
//   {"sysgo_bench": 2, "name": ...,
//    "context": {num_cpus, cpu_ghz, kernel, build_type, git_sha,
//                perf_available},
//    "benchmarks": {"<bench>": {"time_unit": "ms", "reps": k,
//                               "median_real_time": x, "p90_real_time": y,
//                               "counters": {"moves/s": m, ...},
//                               "perf": {"ipc": i, ...}}}}
//
// `sysgo bench compare` consumes these snapshots (see
// src/obs/bench_compare.hpp for the schema contract; v1 documents — no
// kernel/build_type/git_sha context, no "perf" — still parse).
//
// Repetitions and warmup are harness-controlled via the environment so CI
// can ask for statistical robustness without touching each binary:
// SYSGO_BENCH_REPS=<n> injects --benchmark_repetitions=<n> and
// SYSGO_BENCH_WARMUP_S=<secs> injects --benchmark_min_warmup_time=<secs>
// (explicit command-line flags win over the environment).  Repetition
// samples come from the per-repetition (RT_Iteration) runs; with a single
// repetition, median == p90 == the one measurement.  Quantiles are
// nearest-rank, matching obs::Histogram's convention.  User counters
// (rates like rows/s, moves/s) arrive already finalized by the benchmark
// library and are reported as per-counter medians; the "counters" key is
// omitted for counter-less benchmarks.
//
// The "perf" block holds derived perf-counter ratios (ipc,
// cache_miss_permille, branch_miss_permille, task_clock_ms) measured as
// the main thread's counter delta across each benchmark's whole
// repetition group — an approximation (worker threads of multi-threaded
// benches are not counted) meant for explaining regressions, not gating
// on its own.  Omitted entirely when no counter group opens (no PMU and
// no software-counter access).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "obs/bench_compare.hpp"
#include "obs/perf.hpp"
#include "util/fs.hpp"

namespace sysgo::benchjson {

/// Console reporter that additionally captures per-repetition real times
/// (grouped by benchmark name) and per-group perf-counter deltas for the
/// JSON sink.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  struct Series {
    std::string time_unit;
    std::vector<double> real_times;  // one entry per repetition
    // Counter samples per name, one entry per repetition (already
    // rate-adjusted by the benchmark library).
    std::map<std::string, std::vector<double>> counters;
    // Derived perf ratios for this benchmark's repetition group; empty
    // when counters were unavailable.
    std::map<std::string, double> perf;
  };

  bool ReportContext(const Context& context) override {
    cpu_ghz_ = context.cpu_info.cycles_per_second / 1e9;
    last_perf_ = obs::perf::read_sample();
    return ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    // Benchmarks execute serially on this thread between consecutive
    // ReportRuns calls, so the counter delta since the previous call
    // belongs to this repetition group.
    const obs::perf::Sample now = obs::perf::read_sample();
    const std::map<std::string, double> perf = perf_delta(last_perf_, now);
    last_perf_ = now;
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Series& s = series_[run.benchmark_name()];
      s.time_unit = benchmark::GetTimeUnitString(run.time_unit);
      s.real_times.push_back(run.GetAdjustedRealTime());
      for (const auto& [cname, counter] : run.counters)
        s.counters[cname].push_back(counter.value);
      if (s.perf.empty()) s.perf = perf;
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::map<std::string, Series>& series() const {
    return series_;
  }
  [[nodiscard]] double cpu_ghz() const { return cpu_ghz_; }

 private:
  static std::map<std::string, double> perf_delta(
      const obs::perf::Sample& a, const obs::perf::Sample& b) {
    const auto d = [](std::uint64_t from, std::uint64_t to) {
      return to > from ? to - from : 0;
    };
    std::map<std::string, double> out;
    const std::uint64_t cycles = d(a.cycles, b.cycles);
    const std::uint64_t instructions = d(a.instructions, b.instructions);
    if (cycles > 0) {
      out["ipc"] = static_cast<double>(instructions) /
                   static_cast<double>(cycles);
      out["branch_miss_permille"] =
          static_cast<double>(d(a.branch_misses, b.branch_misses)) * 1000.0 /
          static_cast<double>(cycles);
    }
    const std::uint64_t refs = d(a.cache_refs, b.cache_refs);
    if (refs > 0)
      out["cache_miss_permille"] =
          static_cast<double>(d(a.cache_misses, b.cache_misses)) * 1000.0 /
          static_cast<double>(refs);
    const std::uint64_t clock_ns = d(a.task_clock_ns, b.task_clock_ns);
    if (clock_ns > 0)
      out["task_clock_ms"] = static_cast<double>(clock_ns) / 1e6;
    return out;
  }

  std::map<std::string, Series> series_;  // name-sorted, like obs snapshots
  double cpu_ghz_ = 0.0;
  obs::perf::Sample last_perf_{};
};

/// Nearest-rank quantile of a sample vector (sorted copy; q in (0, 1]).
inline double sample_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  const auto r = static_cast<std::size_t>(
      std::clamp(std::ceil(q * n), 1.0, n));
  return v[r - 1];
}

inline std::string render_json(const std::string& name,
                               const JsonCaptureReporter& rep) {
  const obs::bench::Context ctx = obs::bench::local_context();
  std::ostringstream out;
  char buf[64];
  const auto num = [&](double v) -> std::ostringstream& {
    std::snprintf(buf, sizeof buf, "%.6f", v);
    out << buf;
    return out;
  };
  out << "{\n  \"sysgo_bench\": 2,\n  \"name\": \"" << name
      << "\",\n  \"context\": {\"num_cpus\": " << ctx.num_cpus
      << ", \"cpu_ghz\": ";
  num(rep.cpu_ghz()) << ", \"kernel\": \"" << ctx.kernel
      << "\", \"build_type\": \"" << ctx.build_type << "\", \"git_sha\": \""
      << ctx.git_sha << "\", \"perf_available\": "
      << (ctx.perf_available ? "true" : "false") << "},\n"
      << "  \"benchmarks\": {";
  bool first = true;
  for (const auto& [bench, s] : rep.series()) {
    out << (first ? "" : ",") << "\n    \"" << bench
        << "\": {\"time_unit\": \"" << s.time_unit
        << "\", \"reps\": " << s.real_times.size()
        << ", \"median_real_time\": ";
    num(sample_quantile(s.real_times, 0.50)) << ", \"p90_real_time\": ";
    num(sample_quantile(s.real_times, 0.90));
    if (!s.counters.empty()) {
      out << ", \"counters\": {";
      bool cfirst = true;
      for (const auto& [cname, samples] : s.counters) {
        out << (cfirst ? "" : ", ") << "\"" << cname << "\": ";
        num(sample_quantile(samples, 0.50));
        cfirst = false;
      }
      out << "}";
    }
    if (!s.perf.empty()) {
      out << ", \"perf\": {";
      bool pfirst = true;
      for (const auto& [pname, value] : s.perf) {
        out << (pfirst ? "" : ", ") << "\"" << pname << "\": ";
        num(value);
        pfirst = false;
      }
      out << "}";
    }
    out << "}";
    first = false;
  }
  out << (rep.series().empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

inline void write_json(const std::string& name,
                       const JsonCaptureReporter& rep) {
  util::write_file_atomic("BENCH_" + name + ".json", render_json(name, rep));
}

/// Append --benchmark_repetitions / --benchmark_min_warmup_time from the
/// SYSGO_BENCH_REPS / SYSGO_BENCH_WARMUP_S environment variables, unless
/// the user already passed the flag explicitly (explicit flags win —
/// benchmark::Initialize takes the last occurrence, so ours go first).
inline std::vector<char*> harness_args(int argc, char** argv,
                                       std::vector<std::string>& storage) {
  storage.assign(argv, argv + argc);
  const auto inject = [&](const char* env, const char* flag) {
    const char* value = std::getenv(env);
    if (value == nullptr || *value == '\0') return;
    storage.insert(storage.begin() + 1,
                   std::string(flag) + "=" + value);
  };
  inject("SYSGO_BENCH_WARMUP_S", "--benchmark_min_warmup_time");
  inject("SYSGO_BENCH_REPS", "--benchmark_repetitions");
  std::vector<char*> out;
  out.reserve(storage.size());
  for (std::string& s : storage) out.push_back(s.data());
  return out;
}

/// The shared main body: env-controlled reps/warmup, perf capture, JSON
/// sink.  Returns the process exit code.
inline int run_bench_main(const std::string& name, int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args = harness_args(argc, argv, storage);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  // Benchmarks measure, they do not produce records, so perf collection
  // is always on here; it degrades to a no-op where counters are closed.
  obs::perf::set_enabled(true);
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_json(name, reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace sysgo::benchjson

/// Drop-in replacement for BENCHMARK_MAIN() that also writes
/// BENCH_<name>.json.  `pre` (the _PRE variant) runs before benchmark
/// initialization — the slot for the table-printing half of the fig benches.
#define SYSGO_BENCH_MAIN_PRE(bench_name, pre)                       \
  int main(int argc, char** argv) {                                 \
    pre;                                                            \
    return sysgo::benchjson::run_bench_main(bench_name, argc, argv); \
  }

#define SYSGO_BENCH_MAIN(bench_name) SYSGO_BENCH_MAIN_PRE(bench_name, (void)0)
