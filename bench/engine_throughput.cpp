// Engine throughput (ours): gossip-simulator round rate and power-iteration
// norm computation, serial vs threaded — the ablation benches of DESIGN.md.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "core/delay_digraph.hpp"
#include "core/delay_matrix.hpp"
#include "linalg/power_iteration.hpp"
#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/de_bruijn.hpp"

namespace {

using sysgo::protocol::Mode;

void BM_GossipHypercube(benchmark::State& state) {
  const int D = static_cast<int>(state.range(0));
  const bool parallel = state.range(1) != 0;
  const auto sched = sysgo::protocol::hypercube_schedule(D, Mode::kFullDuplex);
  sysgo::simulator::GossipOptions opts;
  opts.parallel = parallel;
  for (auto _ : state) {
    const int t = sysgo::simulator::gossip_time(sched, 4 * D, opts);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * (1 << D));
  state.SetLabel(parallel ? "threaded" : "serial");
}
BENCHMARK(BM_GossipHypercube)
    ->Name("engine/gossip_hypercube")
    ->ArgsProduct({{8, 10, 12}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_GossipDeBruijn(benchmark::State& state) {
  const int D = static_cast<int>(state.range(0));
  const auto g = sysgo::topology::de_bruijn(2, D);
  const auto sched =
      sysgo::protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);
  for (auto _ : state) {
    const int t = sysgo::simulator::gossip_time(sched, 1 << 20);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * g.vertex_count());
}
BENCHMARK(BM_GossipDeBruijn)
    ->Name("engine/gossip_debruijn")
    ->DenseRange(6, 10)
    ->Unit(benchmark::kMillisecond);

void BM_DelayMatrixNorm(benchmark::State& state) {
  const int D = static_cast<int>(state.range(0));
  const bool parallel = state.range(1) != 0;
  const auto sched = sysgo::protocol::edge_coloring_schedule(
      sysgo::topology::de_bruijn(2, D), Mode::kHalfDuplex);
  const sysgo::core::DelayDigraph dg(sched, 2 * sched.period_length());
  for (auto _ : state) {
    const double norm = sysgo::core::delay_matrix_norm(dg, 0.5, parallel);
    benchmark::DoNotOptimize(norm);
  }
  state.counters["nodes"] = static_cast<double>(dg.node_count());
  state.SetLabel(parallel ? "threaded" : "serial");
}
BENCHMARK(BM_DelayMatrixNorm)
    ->Name("engine/delay_matrix_norm")
    ->ArgsProduct({{5, 7, 9}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

void BM_DelayDigraphBuild(benchmark::State& state) {
  const int D = static_cast<int>(state.range(0));
  const auto sched = sysgo::protocol::edge_coloring_schedule(
      sysgo::topology::de_bruijn(2, D), Mode::kHalfDuplex);
  for (auto _ : state) {
    sysgo::core::DelayDigraph dg(sched, 2 * sched.period_length());
    benchmark::DoNotOptimize(dg);
  }
}
BENCHMARK(BM_DelayDigraphBuild)
    ->Name("engine/delay_digraph_build")
    ->DenseRange(5, 9)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN("engine_throughput")
