// Reproduces Figs. 1-3: the structure of the local matrices Mx(λ), Nx(λ)
// and Ox(λ) for a k = 2 local protocol, plus the Lemma 4.2 semi-eigenvector
// check and the Lemma 4.3 norm comparison.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "core/local_matrix.hpp"
#include "linalg/polynomial.hpp"
#include "util/table.hpp"

namespace {

using sysgo::core::LocalPattern;

const LocalPattern kPattern{{1, 2}, {2, 1}};  // k = 2, s = 6 (as in Fig. 1's style)
constexpr double kLambda = 0.5;
constexpr int kBlocks = 3;

void print_figures() {
  std::printf("=== Figs. 1-3: local matrices for k = 2, (l, r) = ((1,2),(2,1)), "
              "lambda = %.2f ===\n\n", kLambda);
  const auto mx = sysgo::core::mx_matrix(kPattern, kBlocks, kLambda);
  std::printf("Fig. 1 — Mx(lambda), %zux%zu (rows: left activations in reverse "
              "round order per block; cols: right activations in round order):\n%s\n",
              mx.rows(), mx.cols(), mx.str(4).c_str());

  const auto nx = sysgo::core::nx_matrix(kPattern, kBlocks, kLambda);
  const auto ox = sysgo::core::ox_matrix(kPattern, kBlocks, kLambda);
  std::printf("Fig. 3 (left) — Nx(lambda), entries lambda^{d_ij} * p_{r_j}:\n%s\n",
              nx.str(4).c_str());
  std::printf("Fig. 3 (right) — Ox(lambda), entries lambda^{d_ji} * p_{l_j}:\n%s\n",
              ox.str(4).c_str());

  const auto e = sysgo::core::lemma42_semi_eigenvector(kPattern, kBlocks, kLambda);
  std::printf("Lemma 4.2 semi-eigenvector e: ");
  for (double v : e) std::printf("%.4f ", v);
  std::printf("\n\n");

  sysgo::util::Table cmp({"h", "exact ||Mx||", "Lemma 4.3 bound"});
  const double bound = sysgo::core::local_norm_bound(kPattern, kLambda);
  for (int h = 2; h <= 10; h += 2)
    cmp.add_row({std::to_string(h),
                 sysgo::util::format_fixed(
                     sysgo::core::local_norm_exact(kPattern, h, kLambda), 6),
                 sysgo::util::format_fixed(bound, 6)});
  std::printf("%s\n", cmp.str().c_str());
}

void BM_MxConstruction(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto m = sysgo::core::mx_matrix(kPattern, h, kLambda);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MxConstruction)->Name("fig1/mx_matrix")->RangeMultiplier(2)->Range(2, 64);

void BM_ExactLocalNorm(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  double norm = 0.0;
  for (auto _ : state) {
    norm = sysgo::core::local_norm_exact(kPattern, h, kLambda);
    benchmark::DoNotOptimize(norm);
  }
  state.counters["norm"] = norm;
}
BENCHMARK(BM_ExactLocalNorm)->Name("fig1/local_norm_exact")->RangeMultiplier(2)->Range(2, 32);

}  // namespace

SYSGO_BENCH_MAIN_PRE("fig1_3_local_matrices", print_figures())
