// Reproduces Fig. 4: the general lower bound e(s)·log(n) − O(log log n) for
// s-systolic gossip in the directed and half-duplex cases.
//
// Paper row:  s    3       4       5       6       7       8       inf
//             e(s) 2.8808  1.8133  1.6502  1.5363  1.5021  1.4721  1.4404
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "core/tables.hpp"
#include "util/table.hpp"

namespace {

void print_fig4() {
  std::printf("=== Fig. 4: general systolic lower bound (directed / half-duplex) ===\n");
  std::printf("t >= e(s)*log2(n) - O(log log n)\n\n");
  sysgo::util::Table table({"s", "lambda*", "e(s)"});
  for (const auto& row : sysgo::core::fig4_rows_paper())
    table.add_row({sysgo::core::period_label(row.s),
                   sysgo::util::format_fixed(row.lambda, 6),
                   sysgo::util::format_fixed(row.e, 4)});
  std::printf("%s\n", table.str().c_str());
}

void BM_Fig4Row(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  double e = 0.0;
  for (auto _ : state) {
    e = sysgo::core::e_general(s, sysgo::core::Duplex::kHalf);
    benchmark::DoNotOptimize(e);
  }
  state.counters["e(s)"] = e;
}
BENCHMARK(BM_Fig4Row)->DenseRange(3, 8)->Name("fig4/e_general");

void BM_Fig4Unbounded(benchmark::State& state) {
  double e = 0.0;
  for (auto _ : state) {
    e = sysgo::core::e_general(sysgo::core::kUnboundedPeriod,
                               sysgo::core::Duplex::kHalf);
    benchmark::DoNotOptimize(e);
  }
  state.counters["e(inf)"] = e;
}
BENCHMARK(BM_Fig4Unbounded)->Name("fig4/e_general_nonsystolic");

}  // namespace

SYSGO_BENCH_MAIN_PRE("fig4_general_bound", print_fig4())
