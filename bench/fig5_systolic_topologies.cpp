// Reproduces Fig. 5: lower bounds e(s)·log2(n)·(1 − o(1)) for s-systolic
// half-duplex/directed gossip on Butterfly, Wrapped Butterfly, de Bruijn
// and Kautz families (Theorem 5.1 + Lemma 3.1), s = 3..8.
//
// The table is produced by the sweep engine (engine::fig5_spec) rather than
// a bespoke families×periods loop; the benchmark measures a full engine
// sweep and the single-entry separator-bound kernel.
//
// Quoted checkpoints: WBF(2,D) @ s=4 -> 2.0218, DB(2,D) @ s=4 -> 1.8133.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>
#include <vector>

#include "core/separator_bound.hpp"
#include "core/tables.hpp"
#include "engine/figures.hpp"
#include "engine/sweep.hpp"
#include "util/table.hpp"

namespace {

void print_fig5() {
  std::printf(
      "=== Fig. 5: systolic half-duplex/directed bounds for specific networks ===\n");
  std::printf("entries: e(s) such that t >= e(s)*log2(n)*(1 - o(1))\n\n");
  const auto spec = sysgo::engine::fig5_spec();
  std::vector<std::string> header{"network", "alpha", "l"};
  for (int s : spec.periods) header.push_back("s=" + sysgo::core::period_label(s));
  sysgo::util::Table table(header);

  sysgo::engine::SweepRunner runner;
  const auto records = runner.run(spec);
  // Expansion order: one (family, d) row per spec.periods.size() records.
  const std::size_t stride = spec.periods.size();
  for (std::size_t i = 0; i + stride <= records.size(); i += stride) {
    const auto& first = records[i];
    std::vector<std::string> cells{
        sysgo::topology::family_name(first.key.family, first.key.d),
        sysgo::util::format_fixed(first.alpha, 4),
        sysgo::util::format_fixed(first.ell, 4)};
    for (std::size_t j = 0; j < stride; ++j)
      cells.push_back(sysgo::util::format_fixed(records[i + j].e, 4));
    table.add_row(std::move(cells));
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\n(entries equal to the Fig. 4 value e(s) correspond to the paper's"
      " '*' cells)\n\n");
}

void BM_Fig5Entry(benchmark::State& state) {
  const auto families = sysgo::core::paper_family_list();
  const auto& [family, d] = families[static_cast<std::size_t>(state.range(0))];
  const int s = static_cast<int>(state.range(1));
  double e = 0.0;
  for (auto _ : state) {
    e = sysgo::core::separator_bound(family, d, s, sysgo::core::Duplex::kHalf).e;
    benchmark::DoNotOptimize(e);
  }
  state.counters["e"] = e;
  state.SetLabel(sysgo::topology::family_name(family, d) + " s=" +
                 std::to_string(s));
}
BENCHMARK(BM_Fig5Entry)
    ->Name("fig5/separator_bound")
    ->ArgsProduct({{0, 4, 8, 12}, {3, 4, 8}});

void BM_Fig5Sweep(benchmark::State& state) {
  for (auto _ : state) {
    sysgo::engine::SweepRunner runner;
    const auto records = runner.run(sysgo::engine::fig5_spec());
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_Fig5Sweep)->Name("fig5/engine_sweep")->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("fig5_systolic_topologies", print_fig5())
