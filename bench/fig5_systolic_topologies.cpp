// Reproduces Fig. 5: lower bounds e(s)·log2(n)·(1 − o(1)) for s-systolic
// half-duplex/directed gossip on Butterfly, Wrapped Butterfly, de Bruijn
// and Kautz families (Theorem 5.1 + Lemma 3.1), s = 3..8.
//
// Quoted checkpoints: WBF(2,D) @ s=4 -> 2.0218, DB(2,D) @ s=4 -> 1.8133.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/separator_bound.hpp"
#include "core/tables.hpp"
#include "util/table.hpp"

namespace {

const std::vector<int> kPeriods{3, 4, 5, 6, 7, 8};

void print_fig5() {
  std::printf(
      "=== Fig. 5: systolic half-duplex/directed bounds for specific networks ===\n");
  std::printf("entries: e(s) such that t >= e(s)*log2(n)*(1 - o(1))\n\n");
  std::vector<std::string> header{"network", "alpha", "l"};
  for (int s : kPeriods) header.push_back("s=" + sysgo::core::period_label(s));
  sysgo::util::Table table(header);
  for (const auto& row : sysgo::core::fig5_rows(kPeriods)) {
    std::vector<std::string> cells{
        sysgo::topology::family_name(row.family, row.d),
        sysgo::util::format_fixed(row.alpha, 4),
        sysgo::util::format_fixed(row.ell, 4)};
    for (double e : row.e_by_period)
      cells.push_back(sysgo::util::format_fixed(e, 4));
    table.add_row(std::move(cells));
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\n(entries equal to the Fig. 4 value e(s) correspond to the paper's"
      " '*' cells)\n\n");
}

void BM_Fig5Entry(benchmark::State& state) {
  const auto families = sysgo::core::paper_family_list();
  const auto& [family, d] = families[static_cast<std::size_t>(state.range(0))];
  const int s = static_cast<int>(state.range(1));
  double e = 0.0;
  for (auto _ : state) {
    e = sysgo::core::separator_bound(family, d, s, sysgo::core::Duplex::kHalf).e;
    benchmark::DoNotOptimize(e);
  }
  state.counters["e"] = e;
  state.SetLabel(sysgo::topology::family_name(family, d) + " s=" +
                 std::to_string(s));
}
BENCHMARK(BM_Fig5Entry)
    ->Name("fig5/separator_bound")
    ->ArgsProduct({{0, 4, 8, 12}, {3, 4, 8}});

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
