// Reproduces Fig. 6: non-systolic (s -> ∞) half-duplex/directed lower
// bounds for specific networks, compared with the trivial diameter bound
// (the paper's "diam." entries) and the 1.4404 general bound.
//
// The table is produced by the sweep engine (engine::fig6_spec); the
// benchmark measures the full engine sweep.
//
// Quoted checkpoints: WBF(2,D) -> 1.9750, DB(2,D) -> 1.5876.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <algorithm>
#include <cstdio>

#include "engine/figures.hpp"
#include "engine/sweep.hpp"
#include "util/table.hpp"

namespace {

void print_fig6() {
  std::printf("=== Fig. 6: non-systolic half-duplex/directed bounds ===\n");
  std::printf("entries multiply log2(n)*(1 - o(1)); general bound = 1.4404\n\n");
  sysgo::util::Table table({"network", "matrix bound", "diameter", "best"});
  sysgo::engine::SweepRunner runner;
  const auto records = runner.run(sysgo::engine::fig6_spec());
  // Expansion order: a kBound record at s = ∞ then kDiameterBound per row.
  for (std::size_t i = 0; i + 2 <= records.size(); i += 2) {
    const auto& matrix = records[i];
    const auto& diam = records[i + 1];
    table.add_row({sysgo::topology::family_name(matrix.key.family, matrix.key.d),
                   sysgo::util::format_fixed(matrix.e, 4),
                   sysgo::util::format_fixed(diam.e, 4),
                   sysgo::util::format_fixed(std::max(matrix.e, diam.e), 4)});
  }
  std::printf("%s\n", table.str().c_str());
}

void BM_Fig6AllRows(benchmark::State& state) {
  std::size_t rows = 0;
  for (auto _ : state) {
    sysgo::engine::SweepRunner runner;
    const auto records = runner.run(sysgo::engine::fig6_spec());
    rows = records.size() / 2;
    benchmark::DoNotOptimize(records);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig6AllRows)->Name("fig6/full_table")->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("fig6_nonsystolic_topologies", print_fig6())
