// Reproduces Fig. 6: non-systolic (s -> ∞) half-duplex/directed lower
// bounds for specific networks, compared with the trivial diameter bound
// (the paper's "diam." entries) and the 1.4404 general bound.
//
// Quoted checkpoints: WBF(2,D) -> 1.9750, DB(2,D) -> 1.5876.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/tables.hpp"
#include "util/table.hpp"

namespace {

void print_fig6() {
  std::printf("=== Fig. 6: non-systolic half-duplex/directed bounds ===\n");
  std::printf("entries multiply log2(n)*(1 - o(1)); general bound = 1.4404\n\n");
  sysgo::util::Table table({"network", "matrix bound", "diameter", "best"});
  for (const auto& row : sysgo::core::fig6_rows())
    table.add_row({sysgo::topology::family_name(row.family, row.d),
                   sysgo::util::format_fixed(row.e_matrix, 4),
                   sysgo::util::format_fixed(row.e_diameter, 4),
                   sysgo::util::format_fixed(row.e_best, 4)});
  std::printf("%s\n", table.str().c_str());
}

void BM_Fig6AllRows(benchmark::State& state) {
  std::size_t rows = 0;
  for (auto _ : state) {
    const auto table = sysgo::core::fig6_rows();
    rows = table.size();
    benchmark::DoNotOptimize(table);
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_Fig6AllRows)->Name("fig6/full_table")->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
