// Reproduces Fig. 7: the full-duplex local matrix Mx(λ) for s = 4 and the
// Lemma 6.1 norm bound λ + λ² + … + λ^{s−1}.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "core/full_duplex.hpp"
#include "util/table.hpp"

namespace {

constexpr double kLambda = 0.5;

void print_fig7() {
  std::printf("=== Fig. 7: full-duplex Mx(lambda) for s = 4, lambda = %.2f ===\n\n",
              kLambda);
  const auto m = sysgo::core::full_duplex_local_matrix(8, 4, kLambda);
  std::printf("%s\n", m.str(4).c_str());

  sysgo::util::Table cmp({"s", "Lemma 6.1 bound", "exact (t=256)"});
  for (int s : {3, 4, 5, 6, 8})
    cmp.add_row({std::to_string(s),
                 sysgo::util::format_fixed(
                     sysgo::core::full_duplex_norm_bound(s, kLambda), 6),
                 sysgo::util::format_fixed(
                     sysgo::core::full_duplex_norm_exact(256, s, kLambda), 6)});
  std::printf("%s\n", cmp.str().c_str());
}

void BM_FullDuplexNorm(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  double norm = 0.0;
  for (auto _ : state) {
    norm = sysgo::core::full_duplex_norm_exact(t, 4, kLambda);
    benchmark::DoNotOptimize(norm);
  }
  state.counters["norm"] = norm;
}
BENCHMARK(BM_FullDuplexNorm)->Name("fig7/norm_exact")->RangeMultiplier(4)->Range(16, 256);

}  // namespace

SYSGO_BENCH_MAIN_PRE("fig7_full_duplex_matrix", print_fig7())
