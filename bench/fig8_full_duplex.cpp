// Reproduces Fig. 8: full-duplex lower bounds for specific networks
// (Section 6).  The general full-duplex bound coincides with the bound
// inferred from broadcasting [22,2]; the separator refinement improves it
// for BF / WBF / K families.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>
#include <vector>

#include "core/separator_bound.hpp"
#include "core/tables.hpp"
#include "util/table.hpp"

namespace {

const std::vector<int> kPeriods{3, 4, 5, 6, 7, 8, sysgo::core::kUnboundedPeriod};

void print_fig8() {
  std::printf("=== Fig. 8: full-duplex lower bounds ===\n");
  std::printf("entries: e(s) such that t >= e(s)*log2(n)*(1 - o(1))\n\n");

  // General full-duplex row (the broadcasting-equivalent baseline).
  sysgo::util::Table general({"s", "lambda*", "e_general_fd(s)"});
  for (int s : kPeriods) {
    const double lam = sysgo::core::lambda_star(s, sysgo::core::Duplex::kFull);
    general.add_row({sysgo::core::period_label(s),
                     sysgo::util::format_fixed(lam, 6),
                     sysgo::util::format_fixed(sysgo::core::e_coefficient(lam), 4)});
  }
  std::printf("%s\n", general.str().c_str());

  std::vector<std::string> header{"network"};
  for (int s : kPeriods) header.push_back("s=" + sysgo::core::period_label(s));
  sysgo::util::Table table(header);
  for (const auto& row : sysgo::core::fig8_rows(kPeriods)) {
    std::vector<std::string> cells{sysgo::topology::family_name(row.family, row.d)};
    for (double e : row.e_by_period)
      cells.push_back(sysgo::util::format_fixed(e, 4));
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.str().c_str());
}

void BM_Fig8Entry(benchmark::State& state) {
  const auto families = sysgo::core::paper_family_list();
  const auto& [family, d] = families[static_cast<std::size_t>(state.range(0))];
  const int s = static_cast<int>(state.range(1));
  double e = 0.0;
  for (auto _ : state) {
    e = sysgo::core::separator_bound(family, d, s, sysgo::core::Duplex::kFull).e;
    benchmark::DoNotOptimize(e);
  }
  state.counters["e"] = e;
  state.SetLabel(sysgo::topology::family_name(family, d) + " s=" +
                 std::to_string(s));
}
BENCHMARK(BM_Fig8Entry)->Name("fig8/separator_bound_fd")->ArgsProduct({{0, 4, 12}, {3, 6}});

}  // namespace

SYSGO_BENCH_MAIN_PRE("fig8_full_duplex", print_fig8())
