// Observability overhead guard: the same simulate-sweep and synthesis
// workloads run with metrics collection enabled and disabled, interleaved
// rep by rep so thermal / frequency drift hits both arms equally.  The
// printed table reports median wall-clock per arm and the on-vs-off delta —
// the src/obs/ contract pins it under 2% (sharded relaxed atomics on paths
// that are instrumented per task / per chunk, never per inner-loop step).
// A third table section pins --perf the same way: PerfScope (two
// perf_event group reads per job) must stay under 3% on the sweep
// workload.  The same workloads are also registered as google benchmarks,
// so BENCH_obs_overhead.json carries machine-readable on/off medians.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/wall_timer.hpp"
#include "synth/synthesizer.hpp"
#include "topology/topology.hpp"

namespace {

namespace engine = sysgo::engine;

std::vector<engine::SweepRecord> simulate_sweep() {
  engine::ScenarioSpec spec;
  spec.families = {sysgo::topology::Family::kDeBruijn,
                   sysgo::topology::Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {3, 4, 5};
  spec.tasks = {engine::Task::kSimulate, engine::Task::kAudit};
  engine::SweepOptions opts;
  opts.threads = 1;  // serial: the purest view of per-event overhead
  engine::SweepRunner runner(opts);
  return runner.run_jobs(spec.expand(), spec.limits);
}

/// Larger graphs than simulate_sweep: PerfScope's cost is a fixed number
/// of perf_event reads per job, so the honest overhead denominator is a
/// realistically-sized job (~0.1 ms+), not a handful of 8-node toys.
std::vector<engine::SweepRecord> simulate_sweep_large() {
  engine::ScenarioSpec spec;
  spec.families = {sysgo::topology::Family::kDeBruijn,
                   sysgo::topology::Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {5, 6, 7};
  spec.tasks = {engine::Task::kSimulate, engine::Task::kAudit};
  engine::SweepOptions opts;
  opts.threads = 1;
  engine::SweepRunner runner(opts);
  return runner.run_jobs(spec.expand(), spec.limits);
}

sysgo::synth::SynthResult synthesize_small() {
  sysgo::synth::SynthOptions opts;
  opts.restarts = 2;
  opts.iterations = 400;
  opts.threads = 1;
  return sysgo::synth::synthesize(
      sysgo::topology::make_family(sysgo::topology::Family::kDeBruijn, 2, 3),
      opts);
}

template <class Fn>
double timed_millis(bool obs_on, const Fn& fn) {
  sysgo::obs::set_enabled(obs_on);
  const sysgo::obs::WallTimer timer;
  benchmark::DoNotOptimize(fn());
  const double ms = timer.millis();
  sysgo::obs::set_enabled(true);
  return ms;
}

template <class Fn>
void print_row(const char* name, const Fn& fn) {
  constexpr int kReps = 9;
  // Warm both arms once (allocator, caches), then alternate arms rep by
  // rep so machine drift cannot masquerade as instrumentation cost.
  (void)timed_millis(false, fn);
  (void)timed_millis(true, fn);
  std::vector<double> on, off;
  for (int r = 0; r < kReps; ++r) {
    on.push_back(timed_millis(true, fn));
    off.push_back(timed_millis(false, fn));
  }
  const double on_ms = sysgo::benchjson::sample_quantile(on, 0.50);
  const double off_ms = sysgo::benchjson::sample_quantile(off, 0.50);
  const double delta_pct =
      off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
  std::printf("%s,%.3f,%.3f,%.2f\n", name, on_ms, off_ms, delta_pct);
}

/// The --perf arm: metrics stay on in both arms; only PerfScope's counter
/// group reads toggle.  Same interleaving discipline as timed_millis.
template <class Fn>
double timed_millis_perf(bool perf_on, const Fn& fn) {
  sysgo::obs::perf::set_enabled(perf_on);
  const sysgo::obs::WallTimer timer;
  benchmark::DoNotOptimize(fn());
  const double ms = timer.millis();
  sysgo::obs::perf::set_enabled(false);
  return ms;
}

template <class Fn>
void print_perf_row(const char* name, const Fn& fn) {
  constexpr int kReps = 9;
  (void)timed_millis_perf(false, fn);
  (void)timed_millis_perf(true, fn);
  std::vector<double> on, off;
  for (int r = 0; r < kReps; ++r) {
    on.push_back(timed_millis_perf(true, fn));
    off.push_back(timed_millis_perf(false, fn));
  }
  const double on_ms = sysgo::benchjson::sample_quantile(on, 0.50);
  const double off_ms = sysgo::benchjson::sample_quantile(off, 0.50);
  const double delta_pct =
      off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
  std::printf("%s,%.3f,%.3f,%.2f\n", name, on_ms, off_ms, delta_pct);
}

void print_overhead_table() {
  std::printf("workload,obs_on_ms,obs_off_ms,delta_pct\n");
  print_row("engine_simulate_sweep", simulate_sweep);
  print_row("synthesize_db_2_3", synthesize_small);
  std::printf("workload,perf_on_ms,perf_off_ms,delta_pct\n");
  print_perf_row("engine_simulate_sweep_perf", simulate_sweep_large);
  print_perf_row("synthesize_db_2_3_perf", synthesize_small);
  sysgo::obs::reset_all();  // the table's metrics are not the benchmarks'
}

void BM_SimulateSweep(benchmark::State& state) {
  sysgo::obs::set_enabled(state.range(0) != 0);
  for (auto _ : state) benchmark::DoNotOptimize(simulate_sweep());
  sysgo::obs::set_enabled(true);
}
BENCHMARK(BM_SimulateSweep)
    ->Name("obs/simulate_sweep")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateSweepPerf(benchmark::State& state) {
  sysgo::obs::perf::set_enabled(state.range(0) != 0);
  for (auto _ : state) benchmark::DoNotOptimize(simulate_sweep_large());
  sysgo::obs::perf::set_enabled(true);
}
BENCHMARK(BM_SimulateSweepPerf)
    ->Name("obs/simulate_sweep_perf")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_Synthesize(benchmark::State& state) {
  sysgo::obs::set_enabled(state.range(0) != 0);
  for (auto _ : state) benchmark::DoNotOptimize(synthesize_small());
  sysgo::obs::set_enabled(true);
}
BENCHMARK(BM_Synthesize)
    ->Name("obs/synthesize")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("obs_overhead", print_overhead_table())
