// Exact gossip/broadcast complexity of small networks via the search
// subsystem, compared against the analytic machinery: the optimum must
// dominate both the diameter bound and (for complete graphs) the
// 1.4404·log2(n) half-duplex bound of [4,17,15,26] that the paper's
// technique recovers as s -> ∞.  Symmetry reduction now reaches n <= 12
// (the old 64-bit BFS stopped at n = 8).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>
#include <cstdio>

#include "graph/search.hpp"
#include "search/solver.hpp"
#include "topology/classic.hpp"
#include "topology/knodel.hpp"
#include "util/table.hpp"

namespace {

using sysgo::protocol::Mode;
using sysgo::search::Problem;
using sysgo::search::SolveOptions;

int solve_rounds(const sysgo::graph::Digraph& g, Problem p, Mode m,
                 std::size_t budget) {
  SolveOptions opts;
  opts.problem = p;
  opts.mode = m;
  opts.max_states = budget;
  opts.threads = 1;
  return sysgo::search::solve(g, opts).rounds;
}

void print_optimal_table() {
  std::printf(
      "=== Exact gossip/broadcast of small networks (symmetry-reduced) ===\n\n");
  struct Case {
    std::string name;
    sysgo::graph::Digraph g;
    bool search_half;  // dense half-duplex spaces explode; skip where needed
  };
  std::vector<Case> cases;
  cases.push_back({"P5", sysgo::topology::path(5), true});
  cases.push_back({"C5", sysgo::topology::cycle(5), true});
  cases.push_back({"C6", sysgo::topology::cycle(6), true});
  cases.push_back({"C8", sysgo::topology::cycle(8), true});
  cases.push_back({"C9", sysgo::topology::cycle(9), false});
  cases.push_back({"C10", sysgo::topology::cycle(10), false});
  cases.push_back({"C12", sysgo::topology::cycle(12), false});
  cases.push_back({"K4", sysgo::topology::complete(4), true});
  cases.push_back({"K5", sysgo::topology::complete(5), true});
  cases.push_back({"Q3", sysgo::topology::hypercube(3), false});
  cases.push_back({"W(3,8)", sysgo::topology::knodel(3, 8), false});
  cases.push_back({"star5", sysgo::topology::complete_tree(4, 1), true});

  sysgo::util::Table table({"network", "n", "diam", "g_full", "g_half",
                            "b_full", "b_half", "1.4404*log2(n)"});
  constexpr std::size_t kStateBudget = 4'000'000;
  for (auto& c : cases) {
    const auto cell = [&](int rounds) {
      return rounds < 0 ? std::string("(budget)") : std::to_string(rounds);
    };
    const int n = c.g.vertex_count();
    const std::string g_half =
        c.search_half
            ? cell(solve_rounds(c.g, Problem::kGossip, Mode::kHalfDuplex,
                                kStateBudget))
            : "-";
    const double lb = 1.4404 * std::log2(static_cast<double>(n));
    table.add_row(
        {c.name, std::to_string(n),
         std::to_string(sysgo::graph::diameter(c.g)),
         cell(solve_rounds(c.g, Problem::kGossip, Mode::kFullDuplex,
                           kStateBudget)),
         g_half,
         cell(solve_rounds(c.g, Problem::kBroadcast, Mode::kFullDuplex,
                           kStateBudget)),
         cell(solve_rounds(c.g, Problem::kBroadcast, Mode::kHalfDuplex,
                           kStateBudget)),
         sysgo::util::format_fixed(lb, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "g_half >= 1.4404*log2(n) holds for complete graphs (the bound is\n"
      "tight asymptotically); sparse networks are diameter-limited.\n\n");
}

void BM_OptimalGossip(benchmark::State& state) {
  const auto g = sysgo::topology::complete(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const int rounds =
        solve_rounds(g, Problem::kGossip, Mode::kHalfDuplex, 20'000'000);
    benchmark::DoNotOptimize(rounds);
  }
}
BENCHMARK(BM_OptimalGossip)
    ->Name("optimal/complete_half_duplex")
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("optimal_small_networks", print_optimal_table())
