// Exact gossip complexity of tiny networks by exhaustive search, compared
// against the analytic machinery: the optimal time must dominate both the
// diameter bound and (for complete graphs) the 1.4404·log2(n) half-duplex
// bound of [4,17,15,26] that the paper's technique recovers as s -> ∞.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "analysis/optimal.hpp"
#include "graph/search.hpp"
#include "topology/classic.hpp"
#include "util/table.hpp"

namespace {

using sysgo::protocol::Mode;

void print_optimal_table() {
  std::printf("=== Exact gossip complexity of tiny networks (exhaustive) ===\n\n");
  struct Case {
    std::string name;
    sysgo::graph::Digraph g;
    bool search_half;  // dense half-duplex spaces explode; skip where needed
  };
  std::vector<Case> cases;
  cases.push_back({"P3", sysgo::topology::path(3), true});
  cases.push_back({"P4", sysgo::topology::path(4), true});
  cases.push_back({"P5", sysgo::topology::path(5), true});
  cases.push_back({"C4", sysgo::topology::cycle(4), true});
  cases.push_back({"C5", sysgo::topology::cycle(5), true});
  cases.push_back({"C6", sysgo::topology::cycle(6), true});
  cases.push_back({"K3", sysgo::topology::complete(3), true});
  cases.push_back({"K4", sysgo::topology::complete(4), true});
  cases.push_back({"K5", sysgo::topology::complete(5), true});
  cases.push_back({"Q3", sysgo::topology::hypercube(3), false});
  cases.push_back({"star5", sysgo::topology::complete_tree(4, 1), true});

  sysgo::util::Table table(
      {"network", "n", "diam", "g_full", "g_half", "1.4404*log2(n)"});
  constexpr std::size_t kStateBudget = 4'000'000;
  for (auto& c : cases) {
    const auto full = sysgo::analysis::optimal_gossip(c.g, Mode::kFullDuplex, 24,
                                                      kStateBudget);
    std::string half_cell = "-";
    if (c.search_half) {
      const auto half = sysgo::analysis::optimal_gossip(c.g, Mode::kHalfDuplex, 24,
                                                        kStateBudget);
      half_cell = half.budget_exhausted ? std::string("(budget)")
                                        : std::to_string(half.rounds);
    }
    const double lb =
        1.4404 * std::log2(static_cast<double>(c.g.vertex_count()));
    table.add_row({c.name, std::to_string(c.g.vertex_count()),
                   std::to_string(sysgo::graph::diameter(c.g)),
                   full.budget_exhausted ? "(budget)" : std::to_string(full.rounds),
                   half_cell, sysgo::util::format_fixed(lb, 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("g_half >= 1.4404*log2(n) holds for complete graphs (the bound is\n"
              "tight asymptotically); sparse networks are diameter-limited.\n\n");
}

void BM_OptimalGossip(benchmark::State& state) {
  const auto g = sysgo::topology::complete(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto res = sysgo::analysis::optimal_gossip(g, Mode::kHalfDuplex, 16);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_OptimalGossip)
    ->Name("optimal/complete_half_duplex")
    ->DenseRange(3, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_optimal_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
