// Exact-search throughput: canonical states per second, plus the state-space
// compression the symmetry layer buys over the identity-only search that the
// old analysis/optimal BFS amounted to.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>

#include "search/solver.hpp"
#include "topology/classic.hpp"
#include "topology/knodel.hpp"
#include "util/table.hpp"

namespace {

using sysgo::search::Algorithm;
using sysgo::search::Problem;
using sysgo::search::SolveOptions;
using sysgo::protocol::Mode;

void print_symmetry_reduction_table() {
  std::printf("=== Symmetry reduction vs. identity-only BFS ===\n\n");
  struct Case {
    std::string name;
    sysgo::graph::Digraph g;
    Mode mode;
  };
  std::vector<Case> cases;
  cases.push_back({"C6 half", sysgo::topology::cycle(6), Mode::kHalfDuplex});
  cases.push_back({"C7 half", sysgo::topology::cycle(7), Mode::kHalfDuplex});
  cases.push_back({"C9 full", sysgo::topology::cycle(9), Mode::kFullDuplex});
  cases.push_back({"C12 full", sysgo::topology::cycle(12), Mode::kFullDuplex});
  cases.push_back({"K5 half", sysgo::topology::complete(5), Mode::kHalfDuplex});
  cases.push_back({"Q3 full", sysgo::topology::hypercube(3), Mode::kFullDuplex});
  cases.push_back({"W(3,8) full", sysgo::topology::knodel(3, 8), Mode::kFullDuplex});

  sysgo::util::Table table(
      {"instance", "rounds", "|Aut|", "canonical", "raw", "reduction"});
  for (auto& c : cases) {
    SolveOptions with;
    with.mode = c.mode;
    with.threads = 1;
    const auto reduced = sysgo::search::solve(c.g, with);
    SolveOptions without = with;
    without.use_symmetry = false;
    const auto raw = sysgo::search::solve(c.g, without);
    const double factor =
        reduced.states_explored == 0
            ? 0.0
            : static_cast<double>(raw.states_explored) /
                  static_cast<double>(reduced.states_explored);
    table.add_row({c.name, std::to_string(reduced.rounds),
                   std::to_string(reduced.group_order),
                   std::to_string(reduced.states_explored),
                   std::to_string(raw.states_explored),
                   sysgo::util::format_fixed(factor, 1) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
}

void BM_SolveStatesPerSecond(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool symmetry = state.range(1) != 0;
  const auto g = sysgo::topology::cycle(n);
  SolveOptions opts;
  opts.mode = Mode::kHalfDuplex;
  opts.threads = 1;
  opts.use_symmetry = symmetry;
  std::size_t states = 0;
  for (auto _ : state) {
    const auto res = sysgo::search::solve(g, opts);
    states += res.states_explored;
    benchmark::DoNotOptimize(res);
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SolveStatesPerSecond)
    ->Name("search/cycle_half_duplex_bfs")
    ->ArgsProduct({{5, 6, 7}, {0, 1}})
    ->ArgNames({"n", "sym"})
    ->Unit(benchmark::kMillisecond);

void BM_SolveParallelBfs(benchmark::State& state) {
  const auto g = sysgo::topology::cycle(7);
  SolveOptions opts;
  opts.mode = Mode::kHalfDuplex;
  opts.threads = static_cast<unsigned>(state.range(0));
  std::size_t states = 0;
  for (auto _ : state) {
    const auto res = sysgo::search::solve(g, opts);
    states += res.states_explored;
    benchmark::DoNotOptimize(res);
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SolveParallelBfs)
    ->Name("search/cycle7_half_duplex_threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_IterativeDeepening(benchmark::State& state) {
  const auto g = sysgo::topology::cycle(static_cast<int>(state.range(0)));
  SolveOptions opts;
  opts.mode = Mode::kFullDuplex;
  opts.algorithm = Algorithm::kIterativeDeepening;
  opts.threads = 1;
  for (auto _ : state) {
    const auto res = sysgo::search::solve(g, opts);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_IterativeDeepening)
    ->Name("search/cycle_full_duplex_idbb")
    ->DenseRange(8, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("search_throughput", print_symmetry_reduction_table())
