// Legacy vs compiled simulation throughput — the tentpole measurement of
// the compiled-schedule IR.
//
// Corpus: the paper's fig5/fig6 families (edge-coloring schedules at d = 2,
// half-duplex for the fig5 reading, full-duplex for fig6/fig8) plus the
// large-D de Bruijn and Kautz members the sweep engine grinds through.
// Each member is simulated to gossip completion along both paths:
//
//   legacy    gossip_time(SystolicSchedule)   round_at() + arc-vector walk
//   compiled  gossip_time(CompiledSchedule)   flat CSR spans + role gather
//
// plus the one-off compile cost, so the break-even point (a handful of
// simulated rounds) is visible.  On top of that, the SIMD/batching arms:
// per-row-kernel gossip (simulate/kernel/<scalar|avx2|avx512>/..., rows/s),
// arena-backed gossip (simulate/arena/...), and batched broadcast vs the
// serial per-source loop at lane widths 1/8/64/256 (lanes/s).  Run: build
// with -DSYSGO_BENCH=ON and `./bench_simulate_throughput`.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <string>
#include <tuple>
#include <vector>

#include "core/audit.hpp"
#include "protocol/builders.hpp"
#include "protocol/compiled.hpp"
#include "protocol/systolic.hpp"
#include "simulator/batch.hpp"
#include "simulator/broadcast_sim.hpp"
#include "simulator/gossip_sim.hpp"
#include "simulator/kernels.hpp"
#include "topology/topology.hpp"

namespace {

using sysgo::protocol::CompiledSchedule;
using sysgo::protocol::Mode;
using sysgo::protocol::SystolicSchedule;
using sysgo::topology::Family;

struct Member {
  std::string name;
  SystolicSchedule schedule;
};

const std::vector<Member>& corpus() {
  static const std::vector<Member>* kCorpus = [] {
    auto* c = new std::vector<Member>;
    const std::vector<std::tuple<std::string, Family, int, int, Mode>> specs = {
        // fig5 reading: half-duplex, all seven families.
        {"fig5/bf(2,4)", Family::kButterfly, 2, 4, Mode::kHalfDuplex},
        {"fig5/wbf-dir(2,4)", Family::kWrappedButterflyDirected, 2, 4,
         Mode::kHalfDuplex},
        {"fig5/wbf(2,4)", Family::kWrappedButterfly, 2, 4, Mode::kHalfDuplex},
        {"fig5/db-dir(2,6)", Family::kDeBruijnDirected, 2, 6, Mode::kHalfDuplex},
        {"fig5/db(2,6)", Family::kDeBruijn, 2, 6, Mode::kHalfDuplex},
        {"fig5/kautz-dir(2,5)", Family::kKautzDirected, 2, 5, Mode::kHalfDuplex},
        {"fig5/kautz(2,5)", Family::kKautz, 2, 5, Mode::kHalfDuplex},
        // fig6/fig8 reading: full-duplex.
        {"fig6/db(2,6)", Family::kDeBruijn, 2, 6, Mode::kFullDuplex},
        {"fig6/kautz(2,5)", Family::kKautz, 2, 5, Mode::kFullDuplex},
        // Large-D members: the sweep engine's heavy simulate jobs.
        {"large/db(2,9)", Family::kDeBruijn, 2, 9, Mode::kHalfDuplex},
        {"large/db(2,10)", Family::kDeBruijn, 2, 10, Mode::kHalfDuplex},
        {"large/kautz(2,8)", Family::kKautz, 2, 8, Mode::kHalfDuplex},
        {"large/kautz(2,9)", Family::kKautz, 2, 9, Mode::kHalfDuplex},
    };
    for (const auto& [name, f, d, D, mode] : specs) {
      const auto g = sysgo::topology::make_family(f, d, D);
      c->push_back({name, sysgo::protocol::edge_coloring_schedule(g, mode)});
    }
    return c;
  }();
  return *kCorpus;
}

void BM_SimulateLegacy(benchmark::State& state, const Member& m) {
  for (auto _ : state) {
    const int t = sysgo::simulator::gossip_time(m.schedule, 1 << 20);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * m.schedule.n);
}

void BM_SimulateCompiled(benchmark::State& state, const Member& m) {
  const auto cs = CompiledSchedule::compile(m.schedule);
  for (auto _ : state) {
    const int t = sysgo::simulator::gossip_time(cs, 1 << 20);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * m.schedule.n);
}

void BM_Compile(benchmark::State& state, const Member& m) {
  for (auto _ : state) {
    const auto cs = CompiledSchedule::compile(m.schedule);
    benchmark::DoNotOptimize(cs.arc_total());
  }
}

// The audit is the other sweep task on the compiled path.  The schedule
// entry point compiles on every call (what a consumer without a cached
// CompiledSchedule pays); the compiled entry point is the engine's path —
// activities derived once, reused across the whole λ bisection.
void BM_AuditPerCallCompile(benchmark::State& state, const Member& m) {
  for (auto _ : state) {
    const auto res = sysgo::core::audit_schedule(m.schedule);
    benchmark::DoNotOptimize(res.round_lower_bound);
  }
}

void BM_AuditCompiled(benchmark::State& state, const Member& m) {
  const auto cs = CompiledSchedule::compile(m.schedule);
  for (auto _ : state) {
    const auto res = sysgo::core::audit_schedule(cs);
    benchmark::DoNotOptimize(res.round_lower_bound);
  }
}

// Per-kernel gossip: the same compiled run under each supported row kernel
// (ScopedKernel forces the dispatch), with a rows/s counter — row merges
// executed per wall second, the kernel layer's native unit.  A run to
// completion in t rounds walks ~t/period of the period's arc list.
void BM_SimulateKernel(benchmark::State& state, const Member& m,
                       sysgo::simulator::KernelKind kind) {
  const sysgo::simulator::ScopedKernel scoped(kind);
  const auto cs = CompiledSchedule::compile(m.schedule);
  const int t = sysgo::simulator::gossip_time(cs, 1 << 20);
  const double merges_per_run =
      t > 0 ? static_cast<double>(cs.arc_total()) * t / cs.round_count() : 0.0;
  double merges = 0.0;
  for (auto _ : state) {
    const int rounds = sysgo::simulator::gossip_time(cs, 1 << 20);
    benchmark::DoNotOptimize(rounds);
    merges += merges_per_run;
  }
  state.counters["rows/s"] =
      benchmark::Counter(merges, benchmark::Counter::kIsRate);
}

// Batched broadcast at several lane widths vs the one-source-at-a-time
// loop: the lanes/s counter is completed sources per wall second, so the
// shared round decode's payoff reads directly off the width column.
void BM_BroadcastBatch(benchmark::State& state, const Member& m) {
  const auto cs = CompiledSchedule::compile(m.schedule);
  const int width = static_cast<int>(state.range(0));
  std::vector<int> sources(static_cast<std::size_t>(width));
  for (int l = 0; l < width; ++l) sources[static_cast<std::size_t>(l)] = l % cs.n();
  for (auto _ : state) {
    const auto times =
        sysgo::simulator::broadcast_times_batch(cs, sources, 1 << 20);
    benchmark::DoNotOptimize(times.data());
  }
  state.counters["lanes/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * width,
      benchmark::Counter::kIsRate);
}

void BM_BroadcastSerialLoop(benchmark::State& state, const Member& m) {
  const auto cs = CompiledSchedule::compile(m.schedule);
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int l = 0; l < width; ++l) {
      const int t = sysgo::simulator::broadcast_time(cs, l % cs.n(), 1 << 20);
      benchmark::DoNotOptimize(t);
    }
  }
  state.counters["lanes/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * width,
      benchmark::Counter::kIsRate);
}

// Arena-backed gossip (the sweep engine's path): per-call allocation
// amortized away.
void BM_SimulateArena(benchmark::State& state, const Member& m) {
  const auto cs = CompiledSchedule::compile(m.schedule);
  sysgo::simulator::GossipArena arena;
  for (auto _ : state) {
    const int t = sysgo::simulator::gossip_time(cs, 1 << 20, {}, arena);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * m.schedule.n);
}

const bool kRegistered = [] {
  using sysgo::simulator::KernelKind;
  for (const Member& m : corpus()) {
    benchmark::RegisterBenchmark(("simulate/legacy/" + m.name).c_str(),
                                 BM_SimulateLegacy, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("simulate/compiled/" + m.name).c_str(),
                                 BM_SimulateCompiled, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("compile/" + m.name).c_str(), BM_Compile, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("audit/recompile-per-call/" + m.name).c_str(),
                                 BM_AuditPerCallCompile, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("audit/compiled/" + m.name).c_str(),
                                 BM_AuditCompiled, m)
        ->Unit(benchmark::kMicrosecond);
    for (int k = 0; k < sysgo::simulator::kKernelKindCount; ++k) {
      const auto kind = static_cast<KernelKind>(k);
      if (!sysgo::simulator::kernel_supported(kind)) continue;
      benchmark::RegisterBenchmark(
          ("simulate/kernel/" + std::string(sysgo::simulator::kernel_name(kind)) +
           "/" + m.name)
              .c_str(),
          BM_SimulateKernel, m, kind)
          ->Unit(benchmark::kMicrosecond);
    }
    benchmark::RegisterBenchmark(("simulate/arena/" + m.name).c_str(),
                                 BM_SimulateArena, m)
        ->Unit(benchmark::kMicrosecond);
  }
  // Batch-width sweep on two representative members (one mid, one large).
  for (const char* name : {"fig5/db(2,6)", "large/kautz(2,8)"}) {
    for (const Member& m : corpus()) {
      if (m.name != name) continue;
      benchmark::RegisterBenchmark(("broadcast/batched/" + m.name).c_str(),
                                   BM_BroadcastBatch, m)
          ->Arg(1)
          ->Arg(8)
          ->Arg(64)
          ->Arg(256)
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(("broadcast/serial-loop/" + m.name).c_str(),
                                   BM_BroadcastSerialLoop, m)
          ->Arg(1)
          ->Arg(8)
          ->Arg(64)
          ->Arg(256)
          ->Unit(benchmark::kMicrosecond);
    }
  }
  return true;
}();

}  // namespace

SYSGO_BENCH_MAIN("simulate_throughput")
