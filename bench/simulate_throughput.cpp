// Legacy vs compiled simulation throughput — the tentpole measurement of
// the compiled-schedule IR.
//
// Corpus: the paper's fig5/fig6 families (edge-coloring schedules at d = 2,
// half-duplex for the fig5 reading, full-duplex for fig6/fig8) plus the
// large-D de Bruijn and Kautz members the sweep engine grinds through.
// Each member is simulated to gossip completion along both paths:
//
//   legacy    gossip_time(SystolicSchedule)   round_at() + arc-vector walk
//   compiled  gossip_time(CompiledSchedule)   flat CSR spans + role gather
//
// plus the one-off compile cost, so the break-even point (a handful of
// simulated rounds) is visible.  Run: build with -DSYSGO_BENCH=ON and
// `./bench_simulate_throughput`.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <string>
#include <tuple>
#include <vector>

#include "core/audit.hpp"
#include "protocol/builders.hpp"
#include "protocol/compiled.hpp"
#include "protocol/systolic.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/topology.hpp"

namespace {

using sysgo::protocol::CompiledSchedule;
using sysgo::protocol::Mode;
using sysgo::protocol::SystolicSchedule;
using sysgo::topology::Family;

struct Member {
  std::string name;
  SystolicSchedule schedule;
};

const std::vector<Member>& corpus() {
  static const std::vector<Member>* kCorpus = [] {
    auto* c = new std::vector<Member>;
    const std::vector<std::tuple<std::string, Family, int, int, Mode>> specs = {
        // fig5 reading: half-duplex, all seven families.
        {"fig5/bf(2,4)", Family::kButterfly, 2, 4, Mode::kHalfDuplex},
        {"fig5/wbf-dir(2,4)", Family::kWrappedButterflyDirected, 2, 4,
         Mode::kHalfDuplex},
        {"fig5/wbf(2,4)", Family::kWrappedButterfly, 2, 4, Mode::kHalfDuplex},
        {"fig5/db-dir(2,6)", Family::kDeBruijnDirected, 2, 6, Mode::kHalfDuplex},
        {"fig5/db(2,6)", Family::kDeBruijn, 2, 6, Mode::kHalfDuplex},
        {"fig5/kautz-dir(2,5)", Family::kKautzDirected, 2, 5, Mode::kHalfDuplex},
        {"fig5/kautz(2,5)", Family::kKautz, 2, 5, Mode::kHalfDuplex},
        // fig6/fig8 reading: full-duplex.
        {"fig6/db(2,6)", Family::kDeBruijn, 2, 6, Mode::kFullDuplex},
        {"fig6/kautz(2,5)", Family::kKautz, 2, 5, Mode::kFullDuplex},
        // Large-D members: the sweep engine's heavy simulate jobs.
        {"large/db(2,9)", Family::kDeBruijn, 2, 9, Mode::kHalfDuplex},
        {"large/db(2,10)", Family::kDeBruijn, 2, 10, Mode::kHalfDuplex},
        {"large/kautz(2,8)", Family::kKautz, 2, 8, Mode::kHalfDuplex},
        {"large/kautz(2,9)", Family::kKautz, 2, 9, Mode::kHalfDuplex},
    };
    for (const auto& [name, f, d, D, mode] : specs) {
      const auto g = sysgo::topology::make_family(f, d, D);
      c->push_back({name, sysgo::protocol::edge_coloring_schedule(g, mode)});
    }
    return c;
  }();
  return *kCorpus;
}

void BM_SimulateLegacy(benchmark::State& state, const Member& m) {
  for (auto _ : state) {
    const int t = sysgo::simulator::gossip_time(m.schedule, 1 << 20);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * m.schedule.n);
}

void BM_SimulateCompiled(benchmark::State& state, const Member& m) {
  const auto cs = CompiledSchedule::compile(m.schedule);
  for (auto _ : state) {
    const int t = sysgo::simulator::gossip_time(cs, 1 << 20);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations() * m.schedule.n);
}

void BM_Compile(benchmark::State& state, const Member& m) {
  for (auto _ : state) {
    const auto cs = CompiledSchedule::compile(m.schedule);
    benchmark::DoNotOptimize(cs.arc_total());
  }
}

// The audit is the other sweep task on the compiled path.  The schedule
// entry point compiles on every call (what a consumer without a cached
// CompiledSchedule pays); the compiled entry point is the engine's path —
// activities derived once, reused across the whole λ bisection.
void BM_AuditPerCallCompile(benchmark::State& state, const Member& m) {
  for (auto _ : state) {
    const auto res = sysgo::core::audit_schedule(m.schedule);
    benchmark::DoNotOptimize(res.round_lower_bound);
  }
}

void BM_AuditCompiled(benchmark::State& state, const Member& m) {
  const auto cs = CompiledSchedule::compile(m.schedule);
  for (auto _ : state) {
    const auto res = sysgo::core::audit_schedule(cs);
    benchmark::DoNotOptimize(res.round_lower_bound);
  }
}

const bool kRegistered = [] {
  for (const Member& m : corpus()) {
    benchmark::RegisterBenchmark(("simulate/legacy/" + m.name).c_str(),
                                 BM_SimulateLegacy, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("simulate/compiled/" + m.name).c_str(),
                                 BM_SimulateCompiled, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("compile/" + m.name).c_str(), BM_Compile, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("audit/recompile-per-call/" + m.name).c_str(),
                                 BM_AuditPerCallCompile, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("audit/compiled/" + m.name).c_str(),
                                 BM_AuditCompiled, m)
        ->Unit(benchmark::kMicrosecond);
  }
  return true;
}();

}  // namespace

SYSGO_BENCH_MAIN("simulate_throughput")
