// Result-store throughput: key construction, appends (one flushed log line
// per insert) and warm lookups — the store must stay invisible next to the
// jobs it caches (a single audit job runs for milliseconds; a lookup is
// sub-microsecond).
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "store/result_store.hpp"

namespace {

using sysgo::engine::ExecutionLimits;
using sysgo::engine::SweepJob;
using sysgo::engine::SweepRecord;
using sysgo::engine::Task;
using sysgo::protocol::Mode;
using sysgo::store::ResultStore;
using sysgo::store::make_store_key;
using sysgo::topology::Family;

std::vector<SweepJob> grid_jobs(int count) {
  std::vector<SweepJob> jobs;
  jobs.reserve(count);
  for (int i = 0; i < count; ++i) {
    // Keys are never instantiated as graphs here, so the grid can be wide:
    // every job below hashes to a distinct store key.
    SweepJob job;
    job.key = {i % 2 == 0 ? Family::kDeBruijn : Family::kKautz, 2 + i % 50,
               i % 1000, i % 4 < 2 ? Mode::kHalfDuplex : Mode::kFullDuplex};
    job.task = i % 3 == 0 ? Task::kSimulate
                          : (i % 3 == 1 ? Task::kAudit : Task::kBound);
    job.s = job.task == Task::kBound ? 3 + i % 97 : 0;
    jobs.push_back(job);
  }
  return jobs;
}

SweepRecord record_for(const SweepJob& job) {
  SweepRecord r;
  r.key = job.key;
  r.task = job.task;
  r.s = job.s;
  r.n = 1 << 10;
  r.rounds = 42;
  r.millis = 1.5;
  return r;
}

std::string fresh_store_path(const std::string& name) {
  const std::string path = "/tmp/sysgo_bench_" + name + ".store";
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
  return path;
}

void BM_MakeStoreKey(benchmark::State& state) {
  const auto jobs = grid_jobs(256);
  const ExecutionLimits limits;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto key = make_store_key(jobs[i++ % jobs.size()], limits);
    benchmark::DoNotOptimize(key.digest);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MakeStoreKey)->Name("store/make_key");

void BM_StoreInsert(benchmark::State& state) {
  const auto jobs = grid_jobs(static_cast<int>(state.range(0)));
  const ExecutionLimits limits;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = fresh_store_path("insert");
    state.ResumeTiming();
    ResultStore store(path);
    for (const auto& job : jobs)
      benchmark::DoNotOptimize(
          store.insert(make_store_key(job, limits), record_for(job)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreInsert)
    ->Name("store/insert")
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_StoreLookupWarm(benchmark::State& state) {
  const auto jobs = grid_jobs(static_cast<int>(state.range(0)));
  const ExecutionLimits limits;
  const std::string path = fresh_store_path("lookup");
  ResultStore store(path);
  std::vector<sysgo::store::StoreKey> keys;
  keys.reserve(jobs.size());
  for (const auto& job : jobs) {
    keys.push_back(make_store_key(job, limits));
    store.insert(keys.back(), record_for(job));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto hit = store.lookup(keys[i++ % keys.size()]);
    benchmark::DoNotOptimize(hit.has_value());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLookupWarm)->Name("store/lookup_warm")->Arg(64)->Arg(4096);

void BM_StoreReopen(benchmark::State& state) {
  // Load cost of a campaign-sized store (parse + index every log line).
  const auto jobs = grid_jobs(static_cast<int>(state.range(0)));
  const ExecutionLimits limits;
  const std::string path = fresh_store_path("reopen");
  {
    ResultStore store(path);
    for (const auto& job : jobs)
      store.insert(make_store_key(job, limits), record_for(job));
  }
  for (auto _ : state) {
    ResultStore store(path);
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StoreReopen)
    ->Name("store/reopen")
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN("store_throughput")
