// Synthesis throughput: annealing moves per second, plus best-objective
// trajectories (coloring baseline → short budget → long budget) over the
// fig5/fig6 corpus families.
//
// The perf-PR arms:
//   synth/kernel/<scalar|avx2|avx512>/...  whole synthesize runs under each
//                                          row kernel (moves/s)
//   eval-per-move/compiled/...             one objective evaluation per move
//                                          through compile-then-evaluate —
//                                          the annealer's old hot path
//   eval-per-move/draft/...                the same evaluation through
//                                          DraftEvaluator (no compile, no
//                                          allocation) — the current path
// Both eval-per-move arms report moves/s, so the speedup is the ratio of
// the two counters in BENCH_synth_throughput.json.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>
#include <random>

#include "engine/scenario.hpp"
#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "protocol/compiled.hpp"
#include "simulator/gossip_sim.hpp"
#include "simulator/kernels.hpp"
#include "synth/draft.hpp"
#include "synth/objective.hpp"
#include "synth/synthesizer.hpp"
#include "topology/topology.hpp"
#include "util/table.hpp"

namespace {

using sysgo::protocol::Mode;
using sysgo::synth::SynthOptions;

void print_trajectory_table() {
  std::printf("=== Synthesis vs edge-coloring over the fig5/fig6 corpus ===\n\n");
  struct Member {
    sysgo::topology::Family family;
    int d, D;
  };
  // One small and one mid member per undirected corpus family (the
  // directed families get support schedules; same machinery, omitted here).
  const std::vector<Member> corpus = {
      {sysgo::topology::Family::kButterfly, 2, 3},
      {sysgo::topology::Family::kWrappedButterfly, 2, 3},
      {sysgo::topology::Family::kDeBruijn, 2, 3},
      {sysgo::topology::Family::kDeBruijn, 2, 4},
      {sysgo::topology::Family::kKautz, 2, 3},
      {sysgo::topology::Family::kKautz, 2, 4},
  };
  sysgo::util::Table table({"member", "n", "coloring", "synth 4x500",
                            "synth 16x4000", "moves/s"});
  for (const auto& m : corpus) {
    const auto g = sysgo::topology::make_family(m.family, m.d, m.D);
    const auto coloring =
        sysgo::protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);
    const int baseline = sysgo::simulator::gossip_time(
        sysgo::protocol::CompiledSchedule::compile(coloring), 1 << 20);

    SynthOptions quick;
    quick.restarts = 4;
    quick.iterations = 500;
    const auto short_run = sysgo::synth::synthesize(g, quick);

    SynthOptions full;  // the default budget
    const auto long_run = sysgo::synth::synthesize(g, full);
    const double moves_per_sec =
        long_run.millis > 0.0
            ? static_cast<double>(long_run.moves_proposed) /
                  (long_run.millis / 1000.0)
            : 0.0;

    table.add_row({sysgo::topology::family_name(m.family, m.d) +
                       " D=" + std::to_string(m.D),
                   std::to_string(g.vertex_count()), std::to_string(baseline),
                   std::to_string(short_run.objective.rounds),
                   std::to_string(long_run.objective.rounds),
                   sysgo::util::format_fixed(moves_per_sec, 0)});
  }
  std::printf("%s\n", table.str().c_str());
}

void BM_SynthMovesPerSecond(benchmark::State& state) {
  const auto g = sysgo::topology::make_family(
      sysgo::topology::Family::kDeBruijn, 2, static_cast<int>(state.range(0)));
  SynthOptions opts;
  opts.restarts = 2;
  opts.iterations = 1000;
  opts.threads = 1;
  std::int64_t moves = 0;
  for (auto _ : state) {
    const auto res = sysgo::synth::synthesize(g, opts);
    moves += res.moves_proposed;
    benchmark::DoNotOptimize(res);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynthMovesPerSecond)
    ->Name("synth/de_bruijn_half_duplex")
    ->DenseRange(3, 5, 1)
    ->Unit(benchmark::kMillisecond);

void BM_SynthParallelRestarts(benchmark::State& state) {
  const auto g = sysgo::topology::make_family(
      sysgo::topology::Family::kKautz, 2, 4);
  SynthOptions opts;
  opts.restarts = 8;
  opts.iterations = 1000;
  opts.threads = static_cast<unsigned>(state.range(0));
  std::int64_t moves = 0;
  for (auto _ : state) {
    const auto res = sysgo::synth::synthesize(g, opts);
    moves += res.moves_proposed;
    benchmark::DoNotOptimize(res);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynthParallelRestarts)
    ->Name("synth/kautz24_threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

struct EvalMember {
  sysgo::topology::Family family;
  int d, D;
};

const std::vector<EvalMember>& eval_corpus() {
  static const std::vector<EvalMember> kCorpus = {
      {sysgo::topology::Family::kDeBruijn, 2, 4},
      {sysgo::topology::Family::kDeBruijn, 2, 5},
      {sysgo::topology::Family::kKautz, 2, 4},
  };
  return kCorpus;
}

void BM_SynthKernel(benchmark::State& state, EvalMember m,
                    sysgo::simulator::KernelKind kind) {
  const sysgo::simulator::ScopedKernel scoped(kind);
  const auto g = sysgo::topology::make_family(m.family, m.d, m.D);
  SynthOptions opts;
  opts.restarts = 2;
  opts.iterations = 1000;
  opts.threads = 1;
  std::int64_t moves = 0;
  for (auto _ : state) {
    const auto res = sysgo::synth::synthesize(g, opts);
    moves += res.moves_proposed;
    benchmark::DoNotOptimize(res);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
}

// One objective evaluation per annealing move, old path vs new: compiled
// re-builds the CompiledSchedule from the draft every move (what the
// annealer did before DraftEvaluator); draft scores the draft in place.
// Identical objectives — the differential suite pins that — so the moves/s
// ratio is pure overhead removed.
void BM_EvalPerMoveCompiled(benchmark::State& state, EvalMember m) {
  const auto g = sysgo::topology::make_family(m.family, m.d, m.D);
  const auto draft = sysgo::synth::ScheduleDraft::from_schedule(
      sysgo::protocol::edge_coloring_schedule(g, Mode::kHalfDuplex));
  const sysgo::synth::ObjectiveOptions opts;
  for (auto _ : state) {
    const auto obj = sysgo::synth::evaluate(
        sysgo::protocol::CompiledSchedule::compile(draft.to_schedule(), &g),
        opts);
    benchmark::DoNotOptimize(obj);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

void BM_EvalPerMoveDraft(benchmark::State& state, EvalMember m) {
  const auto g = sysgo::topology::make_family(m.family, m.d, m.D);
  const auto draft = sysgo::synth::ScheduleDraft::from_schedule(
      sysgo::protocol::edge_coloring_schedule(g, Mode::kHalfDuplex));
  const sysgo::synth::ObjectiveOptions opts;
  sysgo::synth::DraftEvaluator evaluator;
  for (auto _ : state) {
    const auto obj = evaluator.evaluate(draft, opts);
    benchmark::DoNotOptimize(obj);
  }
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}

// --- delta-evaluation arms -------------------------------------------------
//
//   eval-delta/<full|incremental>/<uniform|tail>/n<N>
//
// DraftEvaluator moves/s under a seeded move stream on a hypercube
// schedule with tail slack: the period is two copies of the dimension-d
// coloring, so gossip completes halfway through the period.  Moves
// re-slot a random link inside one round — semantically a no-op, so every
// arm evaluates identical objectives and the moves/s ratio is pure
// evaluation cost.  `uniform` draws the round across the whole period
// (replay depth ~period/2 — the annealer's converged regime); `tail`
// draws from the slack half past the completion round, where suffix
// replay pays nothing and incremental evaluation is O(1) per move (the
// regime that unlocks n in the hundreds).  The replayed_rounds /
// replay_total_rounds counters in BENCH_synth_throughput.json record how
// much simulation each arm actually ran.
void BM_EvalDelta(benchmark::State& state, int dim,
                  sysgo::synth::EvalMode mode, bool tail_moves) {
  auto sched =
      sysgo::protocol::hypercube_schedule(dim, Mode::kFullDuplex);
  const auto one_period = sched.period;
  sched.period.insert(sched.period.end(), one_period.begin(),
                      one_period.end());
  auto draft = sysgo::synth::ScheduleDraft::from_schedule(sched);
  const int period = draft.period();
  const sysgo::synth::ObjectiveOptions opts;
  sysgo::synth::DraftEvaluator evaluator(mode);
  std::mt19937_64 rng(0x5e1ec7edULL + static_cast<unsigned>(dim));
  draft.clear_touched();
  std::int64_t moves = 0;
  for (auto _ : state) {
    const int lo = tail_moves ? period / 2 : 0;
    const int r = lo + static_cast<int>(
                           rng() % static_cast<std::size_t>(period - lo));
    if (!draft.links(r).empty()) {
      const auto link =
          draft.remove(r, rng() % draft.links(r).size());
      (void)draft.insert(r, link);
    }
    const auto obj = evaluator.evaluate(draft, opts);
    benchmark::DoNotOptimize(obj);
    draft.clear_touched();
    ++moves;
  }
  const auto& stats = evaluator.replay_stats();
  state.counters["moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
  state.counters["replayed_rounds"] =
      benchmark::Counter(static_cast<double>(stats.replayed_rounds));
  state.counters["replay_total_rounds"] =
      benchmark::Counter(static_cast<double>(stats.total_rounds));
}

const bool kPerfArmsRegistered = [] {
  for (const int dim : {5, 7, 8}) {  // n = 32, 128, 256
    const std::string n = "n" + std::to_string(1 << dim);
    for (const bool tail : {false, true}) {
      const std::string regime = tail ? "tail" : "uniform";
      benchmark::RegisterBenchmark(
          ("eval-delta/full/" + regime + "/" + n).c_str(), BM_EvalDelta,
          dim, sysgo::synth::EvalMode::kFull, tail)
          ->Unit(benchmark::kMicrosecond);
      benchmark::RegisterBenchmark(
          ("eval-delta/incremental/" + regime + "/" + n).c_str(),
          BM_EvalDelta, dim, sysgo::synth::EvalMode::kIncremental, tail)
          ->Unit(benchmark::kMicrosecond);
    }
  }
  for (const EvalMember& m : eval_corpus()) {
    const std::string tag = sysgo::topology::family_name(m.family, m.d) +
                            "_D" + std::to_string(m.D);
    for (int k = 0; k < sysgo::simulator::kKernelKindCount; ++k) {
      const auto kind = static_cast<sysgo::simulator::KernelKind>(k);
      if (!sysgo::simulator::kernel_supported(kind)) continue;
      benchmark::RegisterBenchmark(
          ("synth/kernel/" +
           std::string(sysgo::simulator::kernel_name(kind)) + "/" + tag)
              .c_str(),
          BM_SynthKernel, m, kind)
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(("eval-per-move/compiled/" + tag).c_str(),
                                 BM_EvalPerMoveCompiled, m)
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(("eval-per-move/draft/" + tag).c_str(),
                                 BM_EvalPerMoveDraft, m)
        ->Unit(benchmark::kMicrosecond);
  }
  return true;
}();

}  // namespace

SYSGO_BENCH_MAIN_PRE("synth_throughput", print_trajectory_table())
