// Tracing overhead guard: the same sweep and synthesis workloads run with
// span recording OFF (the default: one relaxed atomic load per
// instrumentation site) and ACTIVELY RECORDING (spans, instants, and flow
// arrows land in the per-lane rings), interleaved rep by rep so machine
// drift hits both arms equally.  The src/obs/ contract pins the
// actively-recording delta under 3% — spans are per task / per restart /
// per BFS layer, never per inner-loop step, and a ring write is a handful
// of relaxed stores.  Rings are rewound between reps so the recording arm
// pays steady-state cost, not allocation.  The workloads are also
// registered as google benchmarks for BENCH_trace_overhead.json.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cstdio>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "obs/trace.hpp"
#include "obs/wall_timer.hpp"
#include "synth/synthesizer.hpp"
#include "topology/topology.hpp"

namespace {

namespace engine = sysgo::engine;
namespace trace = sysgo::obs::trace;

std::vector<engine::SweepRecord> simulate_sweep() {
  engine::ScenarioSpec spec;
  spec.families = {sysgo::topology::Family::kDeBruijn,
                   sysgo::topology::Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {3, 4, 5};
  spec.tasks = {engine::Task::kSimulate, engine::Task::kAudit};
  engine::SweepOptions opts;
  opts.threads = 1;  // serial: the purest view of per-event overhead
  engine::SweepRunner runner(opts);
  return runner.run_jobs(spec.expand(), spec.limits);
}

sysgo::synth::SynthResult synthesize_small() {
  sysgo::synth::SynthOptions opts;
  opts.restarts = 2;
  opts.iterations = 400;
  opts.threads = 1;
  return sysgo::synth::synthesize(
      sysgo::topology::make_family(sysgo::topology::Family::kDeBruijn, 2, 3),
      opts);
}

template <class Fn>
double timed_millis(bool trace_on, const Fn& fn) {
  trace::set_enabled(trace_on);
  const sysgo::obs::WallTimer timer;
  benchmark::DoNotOptimize(fn());
  const double ms = timer.millis();
  trace::set_enabled(false);
  trace::reset_for_testing();  // rewind rings: steady-state cost per rep
  return ms;
}

template <class Fn>
void print_row(const char* name, const Fn& fn) {
  constexpr int kReps = 9;
  // Warm both arms once (allocator, caches, lane creation), then alternate
  // arms rep by rep so drift cannot masquerade as instrumentation cost.
  (void)timed_millis(false, fn);
  (void)timed_millis(true, fn);
  std::vector<double> on, off;
  for (int r = 0; r < kReps; ++r) {
    on.push_back(timed_millis(true, fn));
    off.push_back(timed_millis(false, fn));
  }
  const double on_ms = sysgo::benchjson::sample_quantile(on, 0.50);
  const double off_ms = sysgo::benchjson::sample_quantile(off, 0.50);
  const double delta_pct =
      off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
  std::printf("%s,%.3f,%.3f,%.2f\n", name, on_ms, off_ms, delta_pct);
}

void print_overhead_table() {
  std::printf("workload,trace_on_ms,trace_off_ms,delta_pct\n");
  print_row("engine_simulate_sweep", simulate_sweep);
  print_row("synthesize_db_2_3", synthesize_small);
}

void BM_SimulateSweep(benchmark::State& state) {
  trace::set_enabled(state.range(0) != 0);
  for (auto _ : state) benchmark::DoNotOptimize(simulate_sweep());
  trace::set_enabled(false);
  trace::reset_for_testing();
}
BENCHMARK(BM_SimulateSweep)
    ->Name("trace/simulate_sweep")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_Synthesize(benchmark::State& state) {
  trace::set_enabled(state.range(0) != 0);
  for (auto _ : state) benchmark::DoNotOptimize(synthesize_small());
  trace::set_enabled(false);
  trace::reset_for_testing();
}
BENCHMARK(BM_Synthesize)
    ->Name("trace/synthesize")
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("trace_overhead", print_overhead_table())
