// Validation harness: measured gossip times of concrete systolic protocols
// vs the certified Theorem 4.1 lower bounds (audit) and the analytic
// e(s)·log2(n) coefficients.  Reproduces the paper's upper-vs-lower "shape":
// the certified bound always sits below the measured time, and the audit's
// per-vertex refinement is at least as strong as the general e(s).
//
// The corpus runs through engine::run_cases (simulate + audit per case on
// the sweep engine's thread pool) instead of a bespoke measure/audit loop.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "engine/sweep.hpp"
#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/kautz.hpp"
#include "topology/wrapped_butterfly.hpp"
#include "util/table.hpp"

namespace {

using sysgo::protocol::Mode;

std::vector<sysgo::engine::ScheduleCase> corpus() {
  std::vector<sysgo::engine::ScheduleCase> cases;
  cases.push_back({"path(32) hd", sysgo::protocol::path_schedule(32, Mode::kHalfDuplex),
                   2000});
  cases.push_back({"cycle(32) hd",
                   sysgo::protocol::cycle_schedule(32, Mode::kHalfDuplex), 2000});
  cases.push_back({"grid(6x6) hd",
                   sysgo::protocol::grid_schedule(6, 6, Mode::kHalfDuplex), 2000});
  cases.push_back({"hypercube(6) fd",
                   sysgo::protocol::hypercube_schedule(6, Mode::kFullDuplex), 200});
  cases.push_back({"hypercube(6) hd",
                   sysgo::protocol::hypercube_schedule(6, Mode::kHalfDuplex), 400});
  cases.push_back({"complete(64) fd",
                   sysgo::protocol::complete_power2_schedule(64, Mode::kFullDuplex),
                   200});
  cases.push_back({"DB(2,5) coloring hd",
                   sysgo::protocol::edge_coloring_schedule(
                       sysgo::topology::de_bruijn(2, 5), Mode::kHalfDuplex),
                   4000});
  cases.push_back({"DB(2,7) coloring hd",
                   sysgo::protocol::edge_coloring_schedule(
                       sysgo::topology::de_bruijn(2, 7), Mode::kHalfDuplex),
                   8000});
  cases.push_back({"WBF(2,4) coloring hd",
                   sysgo::protocol::edge_coloring_schedule(
                       sysgo::topology::wrapped_butterfly(2, 4), Mode::kHalfDuplex),
                   8000});
  cases.push_back({"K(2,5) coloring fd",
                   sysgo::protocol::edge_coloring_schedule(
                       sysgo::topology::kautz(2, 5), Mode::kFullDuplex),
                   8000});
  return cases;
}

void print_validation() {
  std::printf("=== Validation: measured systolic gossip vs certified bounds ===\n\n");
  sysgo::util::Table table({"protocol", "n", "s", "measured t", "cert. bound",
                            "audit e", "general e(s)", "ok"});
  const auto cases = corpus();
  const auto records = sysgo::engine::run_cases(cases);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    const double gen =
        r.s >= 3 ? sysgo::core::e_general(
                       r.s, sysgo::engine::duplex_of(cases[i].schedule.mode))
                 : 0.0;
    const bool ok = r.measured > 0 && r.audit.round_lower_bound <= r.measured;
    table.add_row({r.name, std::to_string(r.n), std::to_string(r.s),
                   std::to_string(r.measured),
                   std::to_string(r.audit.round_lower_bound),
                   sysgo::util::format_fixed(r.audit.e_coeff, 4),
                   sysgo::util::format_fixed(gen, 4), ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("'cert. bound' = Theorem 4.1 round count at the audit's lambda*.\n\n");
}

void BM_AuditSchedule(benchmark::State& state) {
  const auto sched = sysgo::protocol::edge_coloring_schedule(
      sysgo::topology::de_bruijn(2, static_cast<int>(state.range(0))),
      Mode::kHalfDuplex);
  for (auto _ : state) {
    auto res = sysgo::core::audit_schedule(sched);
    benchmark::DoNotOptimize(res);
  }
}
BENCHMARK(BM_AuditSchedule)->Name("validation/audit_debruijn")->DenseRange(4, 8);

void BM_MeasureGossip(benchmark::State& state) {
  const auto sched = sysgo::protocol::edge_coloring_schedule(
      sysgo::topology::de_bruijn(2, static_cast<int>(state.range(0))),
      Mode::kHalfDuplex);
  int t = 0;
  for (auto _ : state) {
    t = sysgo::simulator::gossip_time(sched, 100000);
    benchmark::DoNotOptimize(t);
  }
  state.counters["rounds"] = t;
}
BENCHMARK(BM_MeasureGossip)
    ->Name("validation/gossip_time_debruijn")
    ->DenseRange(4, 7)
    ->Unit(benchmark::kMillisecond);

}  // namespace

SYSGO_BENCH_MAIN_PRE("validation_upper_vs_lower", print_validation())
