// Protocol auditing walkthrough: author a custom systolic protocol by hand,
// validate it, inspect its delay digraph and delay matrix, and derive a
// certified lower bound — the paper's machinery applied as a tool.
//
//   $ ./audit_protocol
#include <cstdio>

#include "core/audit.hpp"
#include "core/delay_matrix.hpp"
#include "protocol/systolic.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/classic.hpp"

int main() {
  using namespace sysgo;
  using protocol::Mode;

  // A hand-written 4-systolic half-duplex protocol on the 8-cycle:
  // alternate even/odd edge classes clockwise, then counter-clockwise.
  const int n = 8;
  protocol::SystolicSchedule sched;
  sched.n = n;
  sched.mode = Mode::kHalfDuplex;
  protocol::Round cw_even, cw_odd, ccw_even, ccw_odd;
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    ((i % 2 == 0) ? cw_even : cw_odd).arcs.push_back({i, j});
    ((i % 2 == 0) ? ccw_even : ccw_odd).arcs.push_back({j, i});
  }
  sched.period = {cw_even, cw_odd, ccw_even, ccw_odd};

  const auto g = topology::cycle(n);
  const auto valid = protocol::validate_structure(sched, &g);
  std::printf("validation: %s\n", valid.ok ? "ok" : valid.message.c_str());

  // Per-vertex activity: every cycle vertex relays with L = R = 2 per period.
  const auto acts = core::vertex_activities(sched);
  std::printf("vertex 0 activity per period: %d left rounds, %d right rounds\n",
              acts[0].left_rounds, acts[0].right_rounds);

  // Delay digraph over three periods.
  const core::DelayDigraph dg(sched, 3 * sched.period_length());
  std::printf("delay digraph: %zu activations, %zu delay arcs (window s = %d)\n",
              dg.node_count(), dg.arc_count(), dg.period());

  // Exact norm of the delay matrix vs the audit's analytic bound.
  // Compile once; the λ loop then reuses the validated flat form.
  const auto compiled = protocol::CompiledSchedule::compile(sched);
  for (double lam : {0.4, 0.55, 0.68}) {
    std::printf("lambda = %.2f: ||M(lambda)|| exact = %.4f, audit bound = %.4f\n",
                lam, core::delay_matrix_norm(dg, lam),
                core::audit_norm_bound(compiled, lam));
  }

  // The certificate.
  const auto audit = core::audit_schedule(compiled);
  const int measured = simulator::gossip_time(sched, 1000);
  std::printf("certified lower bound: %d rounds (lambda* = %.4f, e = %.4f)\n",
              audit.round_lower_bound, audit.lambda_star, audit.e_coeff);
  std::printf("measured gossip time:  %d rounds\n", measured);
  return 0;
}
