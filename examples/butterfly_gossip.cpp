// Wrapped-Butterfly case study: the paper's headline comparison.  For
// WBF(2,D) the best known small-period upper bound is ~2.5·log2(n) while
// Theorem 5.1 certifies ~2.02·log2(n) at s = 4; we reproduce both sides —
// analytic coefficients plus a concrete simulated protocol.
//
//   $ ./butterfly_gossip [D]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/audit.hpp"
#include "core/separator_bound.hpp"
#include "protocol/builders.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/wrapped_butterfly.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sysgo;
  using topology::Family;

  const int D = argc > 1 ? std::atoi(argv[1]) : 4;
  const int d = 2;
  const auto g = topology::wrapped_butterfly(d, D);
  const double logn = std::log2(static_cast<double>(g.vertex_count()));
  std::printf("WBF(%d,%d): n = %d, log2(n) = %.2f\n\n", d, D, g.vertex_count(),
              logn);

  // Analytic side: Theorem 5.1 coefficients across periods.
  util::Table bounds({"s", "e(s) [Thm 5.1]", "e(s)*log2(n)"});
  for (int s : {3, 4, 5, 6, 8}) {
    const auto res = core::separator_bound(Family::kWrappedButterfly, d, s,
                                           core::Duplex::kHalf);
    bounds.add_row({std::to_string(s), util::format_fixed(res.e, 4),
                    util::format_fixed(res.e * logn, 1)});
  }
  std::printf("%s\n", bounds.str().c_str());

  // Operational side: a concrete periodic protocol on this very network.
  const auto sched = protocol::edge_coloring_schedule(g, protocol::Mode::kHalfDuplex);
  const int measured = simulator::gossip_time(sched, 1 << 18);
  const auto audit = core::audit_schedule(sched);
  std::printf("edge-coloring schedule: period s = %d\n", sched.period_length());
  std::printf("measured gossip time:   %d rounds (%.2f x log2(n))\n", measured,
              measured / logn);
  std::printf("audit certificate:      %d rounds (e = %.4f)\n",
              audit.round_lower_bound, audit.e_coeff);
  std::printf("\nThe measured upper bound and the certified lower bound bracket "
              "the true systolic gossip complexity of this network.\n");
  return 0;
}
