// Export the reproduced paper tables as CSV files and a network as DOT —
// the artifacts a downstream user plots or visualizes.
//
//   $ ./export_tables [output-dir]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/csv.hpp"
#include "io/dot.hpp"
#include "io/protocol_text.hpp"
#include "protocol/classic_protocols.hpp"
#include "topology/de_bruijn.hpp"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const fs::path dir = argc > 1 ? argv[1] : "sysgo-tables";
  fs::create_directories(dir);

  const auto write = [&](const fs::path& name, const std::string& content) {
    std::ofstream out(dir / name);
    out << content;
    std::printf("wrote %s (%zu bytes)\n", (dir / name).c_str(), content.size());
  };

  write("fig4_general_bound.csv", sysgo::io::fig4_csv());
  write("fig5_systolic_topologies.csv", sysgo::io::fig5_csv());
  write("fig6_nonsystolic_topologies.csv", sysgo::io::fig6_csv());
  write("fig8_full_duplex.csv", sysgo::io::fig8_csv());

  const auto g = sysgo::topology::de_bruijn(2, 4);
  write("de_bruijn_2_4.dot", sysgo::io::to_dot(g, "DB24"));

  const auto sched =
      sysgo::protocol::hypercube_schedule(3, sysgo::protocol::Mode::kFullDuplex);
  write("hypercube_schedule.txt", sysgo::io::serialize(sched));

  std::printf("\nRender the network with:  dot -Tpng %s/de_bruijn_2_4.dot\n",
              dir.c_str());
  return 0;
}
