// Exhaustive search on tiny networks: find the true optimal gossip protocol
// and print it alongside the lower-bound machinery — shows the bounds are
// real bounds, and how much slack remains at small n.
//
//   $ ./optimal_vs_bounds
#include <cmath>
#include <cstdio>

#include "analysis/optimal.hpp"
#include "graph/search.hpp"
#include "io/protocol_text.hpp"
#include "topology/classic.hpp"

int main() {
  using namespace sysgo;
  using protocol::Mode;

  const auto g = topology::cycle(6);
  std::printf("network: C6 (n = 6, diameter %d)\n\n", graph::diameter(g));

  for (auto mode : {Mode::kFullDuplex, Mode::kHalfDuplex}) {
    const char* label = mode == Mode::kFullDuplex ? "full-duplex" : "half-duplex";
    const auto res = analysis::optimal_gossip(g, mode, 24);
    std::printf("%s: optimal gossip time = %d rounds (%zu states explored)\n",
                label, res.rounds, res.states_explored);
    protocol::Protocol witness;
    witness.n = g.vertex_count();
    witness.mode = mode;
    witness.rounds = res.witness;
    std::printf("an optimal protocol:\n%s\n", io::serialize(witness).c_str());
  }

  std::printf("lower bounds for comparison:\n");
  std::printf("  diameter:            %d rounds\n", graph::diameter(g));
  std::printf("  1.4404*log2(n):      %.2f rounds (half-duplex, any protocol)\n",
              1.4404 * std::log2(6.0));
  return 0;
}
