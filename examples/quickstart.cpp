// Quickstart: compute the paper's general systolic lower bound, build a
// small network with a periodic protocol, simulate it, and certify a lower
// bound for it — the whole library in ~60 lines.
//
//   $ ./quickstart
#include <cstdio>

#include "core/audit.hpp"
#include "core/bounds.hpp"
#include "protocol/builders.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/de_bruijn.hpp"
#include "util/table.hpp"

int main() {
  using namespace sysgo;

  // 1. The general bound of Corollary 4.4: any 4-systolic half-duplex
  //    gossip protocol needs >= e(4)·log2(n) − O(log log n) rounds.
  const double e4 = core::e_general(4, core::Duplex::kHalf);
  std::printf("general 4-systolic half-duplex coefficient e(4) = %.4f\n", e4);

  // 2. Build the undirected de Bruijn network DB(2,6) (64 vertices).
  const auto g = topology::de_bruijn(2, 6);
  std::printf("network: DB(2,6), n = %d, %zu arcs\n", g.vertex_count(),
              g.arc_count());

  // 3. Derive a periodic ("traffic-light") protocol from an edge coloring.
  const auto sched = protocol::edge_coloring_schedule(g, protocol::Mode::kHalfDuplex);
  std::printf("edge-coloring schedule: period s = %d\n", sched.period_length());
  const auto valid = protocol::validate_structure(sched, &g);
  std::printf("structural validation: %s\n", valid.ok ? "ok" : valid.message.c_str());

  // 4. Simulate gossip to completion.
  const int measured = simulator::gossip_time(sched, 100000);
  std::printf("measured gossip time: %d rounds\n", measured);

  // 5. Certify a lower bound for this specific schedule (Theorem 4.1).
  const auto audit = core::audit_schedule(sched);
  std::printf("audit: lambda* = %.6f, e = %.4f, certified lower bound = %d rounds\n",
              audit.lambda_star, audit.e_coeff, audit.round_lower_bound);
  std::printf("certificate %s measured time (%d <= %d)\n",
              audit.round_lower_bound <= measured ? "respects" : "VIOLATES",
              audit.round_lower_bound, measured);
  return 0;
}
