// Topology explorer: instantiate every network family the paper tabulates,
// report size/degree/diameter, verify its Lemma 3.1 separator empirically,
// and print the Theorem 5.1 coefficients the separator yields.
//
// The per-family work runs through the sweep engine: one explicit scenario
// key per family with separator-check and bound tasks, instead of a
// hand-rolled loop over constructors.
//
//   $ ./topology_explorer
#include <cstdio>

#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "util/table.hpp"

int main() {
  using namespace sysgo;
  using topology::Family;
  using engine::Task;

  // The dimension each family is explored at (d = 2 throughout).
  const std::vector<std::pair<Family, int>> members = {
      {Family::kButterfly, 3},
      {Family::kWrappedButterflyDirected, 4},
      {Family::kWrappedButterfly, 4},
      {Family::kDeBruijnDirected, 6},
      {Family::kDeBruijn, 6},
      {Family::kKautzDirected, 5},
      {Family::kKautz, 5},
  };

  engine::ScenarioSpec spec;
  for (const auto& [family, D] : members)
    spec.explicit_keys.push_back({family, 2, D, protocol::Mode::kHalfDuplex});
  spec.tasks = {Task::kSeparatorCheck, Task::kBound};
  spec.periods = {4, core::kUnboundedPeriod};

  engine::SweepRunner runner;
  const auto records = runner.run(spec);

  // Per key: a separator-check record, then bound records at s=4 and s=∞.
  util::Table table({"network", "D", "n", "diam", "sep dist", "min|Vi|",
                     "e(4)", "e(inf)"});
  for (std::size_t i = 0; i + 3 <= records.size(); i += 3) {
    const auto& sep = records[i];
    const auto& e4 = records[i + 1];
    const auto& einf = records[i + 2];
    table.add_row({topology::family_name(sep.key.family, sep.key.d),
                   std::to_string(sep.key.D), std::to_string(sep.n),
                   std::to_string(sep.diameter), std::to_string(sep.sep_distance),
                   std::to_string(sep.sep_min_size),
                   util::format_fixed(e4.e, 4), util::format_fixed(einf.e, 4)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\n'sep dist' is the BFS-verified distance between the Lemma 3.1 sets;\n"
      "e(s) columns are the Theorem 5.1 coefficients of log2(n).\n");
  return 0;
}
