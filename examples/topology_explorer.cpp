// Topology explorer: instantiate every network family the paper tabulates,
// report size/degree/diameter, verify its Lemma 3.1 separator empirically,
// and print the Theorem 5.1 coefficients the separator yields.
//
//   $ ./topology_explorer
#include <cmath>
#include <cstdio>

#include "core/separator_bound.hpp"
#include "graph/search.hpp"
#include "separator/separator.hpp"
#include "util/table.hpp"

int main() {
  using namespace sysgo;
  using topology::Family;

  util::Table table({"network", "D", "n", "diam", "sep dist", "min|Vi|",
                     "e(4)", "e(inf)"});
  const std::vector<std::pair<Family, int>> families = {
      {Family::kButterfly, 3},
      {Family::kWrappedButterflyDirected, 4},
      {Family::kWrappedButterfly, 4},
      {Family::kDeBruijnDirected, 6},
      {Family::kDeBruijn, 6},
      {Family::kKautzDirected, 5},
      {Family::kKautz, 5},
  };
  for (const auto& [family, D] : families) {
    const int d = 2;
    const auto g = topology::make_family(family, d, D);
    const auto sep = separator::build_separator(family, d, D);
    const auto chk = separator::verify_separator(g, sep);
    const auto e4 = core::separator_bound(family, d, 4, core::Duplex::kHalf);
    const auto einf =
        core::separator_bound(family, d, core::kUnboundedPeriod, core::Duplex::kHalf);
    table.add_row({topology::family_name(family, d), std::to_string(D),
                   std::to_string(g.vertex_count()),
                   std::to_string(graph::diameter(g)),
                   std::to_string(chk.min_distance),
                   std::to_string(std::min(chk.size1, chk.size2)),
                   util::format_fixed(e4.e, 4), util::format_fixed(einf.e, 4)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\n'sep dist' is the BFS-verified distance between the Lemma 3.1 sets;\n"
      "e(s) columns are the Theorem 5.1 coefficients of log2(n).\n");
  return 0;
}
