#include "analysis/gap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/audit.hpp"
#include "linalg/matrix.hpp"
#include "linalg/polynomial.hpp"
#include "linalg/power_iteration.hpp"

namespace sysgo::analysis {
namespace {

// Rounds (1-based) within the window where `vertex` has an incoming /
// outgoing activation.
struct LocalRounds {
  std::vector<int> in_rounds;
  std::vector<int> out_rounds;
};

LocalRounds local_rounds(const protocol::SystolicSchedule& sched, int vertex,
                         int window) {
  LocalRounds lr;
  for (int i = 1; i <= window; ++i) {
    bool in = false;
    bool out = false;
    for (const auto& a : sched.round_at(i).arcs) {
      in = in || a.head == vertex;
      out = out || a.tail == vertex;
    }
    if (in) lr.in_rounds.push_back(i);
    if (out) lr.out_rounds.push_back(i);
  }
  return lr;
}

// The vertex's local delay matrix: rows = incoming activations, columns =
// outgoing activations, entry λ^{j−i} whenever 0 < j − i < s.
linalg::Matrix local_matrix(const LocalRounds& lr, int s, double lambda) {
  linalg::Matrix m(lr.in_rounds.size(), lr.out_rounds.size());
  for (std::size_t r = 0; r < lr.in_rounds.size(); ++r)
    for (std::size_t c = 0; c < lr.out_rounds.size(); ++c) {
      const int delay = lr.out_rounds[c] - lr.in_rounds[r];
      if (delay > 0 && delay < s)
        m(r, c) = std::pow(lambda, delay);
    }
  return m;
}

}  // namespace

double exact_local_norm(const protocol::SystolicSchedule& sched, int vertex,
                        double lambda, int periods) {
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("exact_local_norm: need 0 < lambda < 1");
  const int window = periods * sched.period_length();
  const auto lr = local_rounds(sched, vertex, window);
  if (lr.in_rounds.empty() || lr.out_rounds.empty()) return 0.0;
  return linalg::operator_norm(local_matrix(lr, sched.period_length(), lambda))
      .value;
}

std::vector<VertexGapRow> audit_gap_report(const protocol::SystolicSchedule& sched,
                                           double lambda, int periods) {
  const auto acts = core::vertex_activities(sched);
  std::vector<VertexGapRow> rows;
  rows.reserve(acts.size());
  for (int v = 0; v < sched.n; ++v) {
    VertexGapRow row;
    row.vertex = v;
    row.left_rounds = acts[static_cast<std::size_t>(v)].left_rounds;
    row.right_rounds = acts[static_cast<std::size_t>(v)].right_rounds;
    row.exact_norm = exact_local_norm(sched, v, lambda, periods);
    row.analytic_bound =
        core::vertex_norm_bound(acts[static_cast<std::size_t>(v)],
                                sched.period_length(), lambda, sched.mode);
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const VertexGapRow& a, const VertexGapRow& b) {
    return a.analytic_bound > b.analytic_bound;
  });
  return rows;
}

}  // namespace sysgo::analysis
