#include "analysis/gap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/audit.hpp"
#include "linalg/matrix.hpp"
#include "linalg/polynomial.hpp"
#include "linalg/power_iteration.hpp"

namespace sysgo::analysis {
namespace {

// Rounds (1-based) within the window where `vertex` has an incoming /
// outgoing activation, read off the compiled role tables.
struct LocalRounds {
  std::vector<int> in_rounds;
  std::vector<int> out_rounds;
};

LocalRounds local_rounds(const protocol::CompiledSchedule& cs, int vertex,
                         int window) {
  using protocol::RoundRole;
  LocalRounds lr;
  for (int i = 1; i <= window; ++i) {
    const RoundRole role = cs.role(cs.round_index(i), vertex);
    if (role == RoundRole::kIdle) continue;
    if (role != RoundRole::kSend) lr.in_rounds.push_back(i);
    if (role != RoundRole::kReceive) lr.out_rounds.push_back(i);
  }
  return lr;
}

// The vertex's local delay matrix: rows = incoming activations, columns =
// outgoing activations, entry λ^{j−i} whenever 0 < j − i < s.
linalg::Matrix local_matrix(const LocalRounds& lr, int s, double lambda) {
  linalg::Matrix m(lr.in_rounds.size(), lr.out_rounds.size());
  for (std::size_t r = 0; r < lr.in_rounds.size(); ++r)
    for (std::size_t c = 0; c < lr.out_rounds.size(); ++c) {
      const int delay = lr.out_rounds[c] - lr.in_rounds[r];
      if (delay > 0 && delay < s)
        m(r, c) = std::pow(lambda, delay);
    }
  return m;
}

}  // namespace

double exact_local_norm(const protocol::CompiledSchedule& cs, int vertex,
                        double lambda, int periods) {
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("exact_local_norm: need 0 < lambda < 1");
  cs.require_periodic("exact_local_norm");  // window spans `periods` periods
  // Match the legacy arc scan: a vertex outside the network matches no
  // activation and has norm 0 (no out-of-bounds table read).
  if (vertex < 0 || vertex >= cs.n()) return 0.0;
  const int window = periods * cs.period_length();
  const auto lr = local_rounds(cs, vertex, window);
  if (lr.in_rounds.empty() || lr.out_rounds.empty()) return 0.0;
  return linalg::operator_norm(local_matrix(lr, cs.period_length(), lambda))
      .value;
}

double exact_local_norm(const protocol::SystolicSchedule& sched, int vertex,
                        double lambda, int periods) {
  return exact_local_norm(protocol::CompiledSchedule::compile(sched), vertex,
                          lambda, periods);
}

std::vector<VertexGapRow> audit_gap_report(const protocol::CompiledSchedule& cs,
                                           double lambda, int periods) {
  cs.require_periodic("audit_gap_report");
  const auto acts = core::vertex_activities(cs);
  std::vector<VertexGapRow> rows;
  rows.reserve(acts.size());
  for (int v = 0; v < cs.n(); ++v) {
    VertexGapRow row;
    row.vertex = v;
    row.left_rounds = acts[static_cast<std::size_t>(v)].left_rounds;
    row.right_rounds = acts[static_cast<std::size_t>(v)].right_rounds;
    row.exact_norm = exact_local_norm(cs, v, lambda, periods);
    row.analytic_bound =
        core::vertex_norm_bound(acts[static_cast<std::size_t>(v)],
                                cs.period_length(), lambda, cs.mode());
    rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end(), [](const VertexGapRow& a, const VertexGapRow& b) {
    return a.analytic_bound > b.analytic_bound;
  });
  return rows;
}

std::vector<VertexGapRow> audit_gap_report(const protocol::SystolicSchedule& sched,
                                           double lambda, int periods) {
  return audit_gap_report(protocol::CompiledSchedule::compile(sched), lambda,
                          periods);
}

}  // namespace sysgo::analysis
