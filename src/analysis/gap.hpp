// Gap analysis: how loose is the Lemma 4.3 analytic bound on a concrete
// schedule?  For each vertex we extract its exact local delay matrix from
// the delay digraph (a window of w periods), compute its norm by power
// iteration, and compare with the per-vertex analytic bound the auditor
// certifies.  The DESIGN.md ablation "exact local norm vs Lemma 4.3".
#pragma once

#include <vector>

#include "protocol/compiled.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::analysis {

struct VertexGapRow {
  int vertex = 0;
  int left_rounds = 0;   // per period
  int right_rounds = 0;  // per period
  double exact_norm = 0.0;
  double analytic_bound = 0.0;
  /// bound − exact (always >= 0 up to numerics).
  [[nodiscard]] double gap() const noexcept { return analytic_bound - exact_norm; }
};

/// Per-vertex exact-vs-analytic local norms at the given λ, over a window
/// of `periods` schedule periods.  Rows are sorted by descending analytic
/// bound (the certificate's binding vertices first).  The compiled overload
/// reads activations off the per-round role tables and requires a periodic
/// schedule (the window spans `periods` repetitions); the schedule overload
/// compiles once and delegates.
[[nodiscard]] std::vector<VertexGapRow> audit_gap_report(
    const protocol::CompiledSchedule& cs, double lambda, int periods = 4);
[[nodiscard]] std::vector<VertexGapRow> audit_gap_report(
    const protocol::SystolicSchedule& sched, double lambda, int periods = 4);

/// The exact local norm of one vertex over the window (0 when the vertex
/// never relays).
[[nodiscard]] double exact_local_norm(const protocol::CompiledSchedule& cs,
                                      int vertex, double lambda, int periods = 4);
[[nodiscard]] double exact_local_norm(const protocol::SystolicSchedule& sched,
                                      int vertex, double lambda, int periods = 4);

}  // namespace sysgo::analysis
