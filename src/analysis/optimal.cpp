#include "analysis/optimal.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace sysgo::analysis {
namespace {

using protocol::Mode;
using protocol::Round;

// Knowledge state: row v occupies bits [v*n, v*n + n).
std::uint64_t initial_state(int n) {
  std::uint64_t s = 0;
  for (int v = 0; v < n; ++v) s |= std::uint64_t{1} << (v * n + v);
  return s;
}

std::uint64_t goal_state(int n) {
  std::uint64_t s = 0;
  for (int v = 0; v < n; ++v)
    s |= ((std::uint64_t{1} << n) - 1) << (v * n);
  return s;
}

std::uint64_t row(std::uint64_t state, int v, int n) {
  return (state >> (v * n)) & ((std::uint64_t{1} << n) - 1);
}

std::uint64_t with_row(std::uint64_t state, int v, int n, std::uint64_t bits) {
  const std::uint64_t mask = ((std::uint64_t{1} << n) - 1) << (v * n);
  return (state & ~mask) | (bits << (v * n));
}

std::uint64_t apply(std::uint64_t state, const Round& round, Mode mode, int n) {
  std::uint64_t next = state;
  if (mode == Mode::kFullDuplex) {
    for (const auto& a : round.arcs) {
      if (a.tail >= a.head) continue;
      const std::uint64_t u = row(state, a.tail, n) | row(state, a.head, n);
      next = with_row(next, a.tail, n, u);
      next = with_row(next, a.head, n, u);
    }
  } else {
    for (const auto& a : round.arcs) {
      const std::uint64_t u = row(state, a.head, n) | row(state, a.tail, n);
      next = with_row(next, a.head, n, u);
    }
  }
  return next;
}

// Enumerate maximal matchings by branching on the lowest-index free vertex.
void enumerate_half_duplex(const graph::Digraph& g, int v, std::uint32_t used,
                           std::vector<graph::Arc>& current,
                           std::vector<Round>& out) {
  const int n = g.vertex_count();
  while (v < n && (used >> v) & 1) ++v;
  if (v == n) {
    out.push_back(Round{current});
    out.back().canonicalize();
    return;
  }
  bool extended = false;
  // v as tail.
  for (int w : g.out_neighbors(v)) {
    if (w == v || ((used >> w) & 1)) continue;
    extended = true;
    current.push_back({v, w});
    enumerate_half_duplex(g, v + 1, used | (1u << v) | (1u << w), current, out);
    current.pop_back();
  }
  // v as head.
  for (int w : g.in_neighbors(v)) {
    if (w == v || ((used >> w) & 1)) continue;
    extended = true;
    current.push_back({w, v});
    enumerate_half_duplex(g, v + 1, used | (1u << v) | (1u << w), current, out);
    current.pop_back();
  }
  // v left unmatched: such a matching can still be maximal when all of v's
  // partners get used later; enumerate the branch and filter for set
  // maximality afterwards.
  enumerate_half_duplex(g, v + 1, used | (1u << v), current, out);
  (void)extended;
}

void enumerate_full_duplex(const graph::Digraph& g, int v, std::uint32_t used,
                           std::vector<graph::Arc>& current,
                           std::vector<Round>& out) {
  const int n = g.vertex_count();
  while (v < n && (used >> v) & 1) ++v;
  if (v == n) {
    out.push_back(Round{current});
    out.back().canonicalize();
    return;
  }
  for (int w : g.out_neighbors(v)) {
    if (w <= v || ((used >> w) & 1)) continue;
    if (!g.has_arc(w, v)) continue;  // need the opposite arc
    current.push_back({v, w});
    current.push_back({w, v});
    enumerate_full_duplex(g, v + 1, used | (1u << v) | (1u << w), current, out);
    current.pop_back();
    current.pop_back();
  }
  enumerate_full_duplex(g, v + 1, used | (1u << v), current, out);
}

// Keep only set-maximal rounds (no round strictly contained in another) and
// deduplicate.
std::vector<Round> prune_to_maximal(std::vector<Round> rounds) {
  std::sort(rounds.begin(), rounds.end(),
            [](const Round& a, const Round& b) { return a.arcs < b.arcs; });
  rounds.erase(std::unique(rounds.begin(), rounds.end()), rounds.end());
  std::vector<Round> maximal;
  for (const auto& r : rounds) {
    bool dominated = false;
    for (const auto& other : rounds) {
      if (other.arcs.size() <= r.arcs.size() || r == other) continue;
      dominated = std::includes(other.arcs.begin(), other.arcs.end(),
                                r.arcs.begin(), r.arcs.end());
      if (dominated) break;
    }
    if (!dominated && !r.arcs.empty()) maximal.push_back(r);
  }
  return maximal;
}

}  // namespace

std::vector<Round> maximal_matchings(const graph::Digraph& g, Mode mode) {
  if (g.vertex_count() > 8)
    throw std::invalid_argument("maximal_matchings: n <= 8 required");
  std::vector<Round> out;
  std::vector<graph::Arc> current;
  if (mode == Mode::kFullDuplex)
    enumerate_full_duplex(g, 0, 0, current, out);
  else
    enumerate_half_duplex(g, 0, 0, current, out);
  return prune_to_maximal(std::move(out));
}

OptimalResult optimal_gossip(const graph::Digraph& g, Mode mode, int max_rounds,
                             std::size_t max_states) {
  const int n = g.vertex_count();
  if (n > 8) throw std::invalid_argument("optimal_gossip: n <= 8 required");
  OptimalResult res;
  if (n <= 1) {
    res.rounds = 0;
    return res;
  }
  const auto moves = maximal_matchings(g, mode);
  const std::uint64_t start = initial_state(n);
  const std::uint64_t goal = goal_state(n);

  // BFS with parent tracking for the witness protocol.
  struct Visit {
    std::uint64_t parent;
    int move;  // index into `moves`
  };
  std::unordered_map<std::uint64_t, Visit> visited;
  visited.emplace(start, Visit{start, -1});
  std::vector<std::uint64_t> frontier{start};
  for (int depth = 1; depth <= max_rounds && !frontier.empty(); ++depth) {
    std::vector<std::uint64_t> next_frontier;
    for (std::uint64_t state : frontier) {
      for (std::size_t m = 0; m < moves.size(); ++m) {
        const std::uint64_t next = apply(state, moves[m], mode, n);
        if (next == state) continue;
        if (visited.contains(next)) continue;
        if (visited.size() >= max_states) {
          res.budget_exhausted = true;
          res.states_explored = visited.size();
          return res;
        }
        visited.emplace(next, Visit{state, static_cast<int>(m)});
        if (next == goal) {
          res.rounds = depth;
          res.states_explored = visited.size();
          // Reconstruct the witness.
          std::uint64_t cur = next;
          while (cur != start) {
            const auto& v = visited.at(cur);
            res.witness.push_back(moves[static_cast<std::size_t>(v.move)]);
            cur = v.parent;
          }
          std::reverse(res.witness.begin(), res.witness.end());
          return res;
        }
        next_frontier.push_back(next);
      }
    }
    frontier = std::move(next_frontier);
  }
  res.states_explored = visited.size();
  return res;
}

}  // namespace sysgo::analysis
