#include "analysis/optimal.hpp"

#include <algorithm>
#include <stdexcept>

#include "search/solver.hpp"

namespace sysgo::analysis {
namespace {

using protocol::Mode;
using protocol::Round;

// Enumerate maximal matchings by branching on the lowest-index free vertex.
void enumerate_half_duplex(const graph::Digraph& g, int v, std::uint32_t used,
                           std::vector<graph::Arc>& current,
                           std::vector<Round>& out) {
  const int n = g.vertex_count();
  while (v < n && (used >> v) & 1) ++v;
  if (v == n) {
    out.push_back(Round{current});
    out.back().canonicalize();
    return;
  }
  // v as tail.
  for (int w : g.out_neighbors(v)) {
    if (w == v || ((used >> w) & 1)) continue;
    current.push_back({v, w});
    enumerate_half_duplex(g, v + 1, used | (1u << v) | (1u << w), current, out);
    current.pop_back();
  }
  // v as head.
  for (int w : g.in_neighbors(v)) {
    if (w == v || ((used >> w) & 1)) continue;
    current.push_back({w, v});
    enumerate_half_duplex(g, v + 1, used | (1u << v) | (1u << w), current, out);
    current.pop_back();
  }
  // v left unmatched: such a matching can still be maximal when all of v's
  // partners get used later; enumerate the branch and filter for set
  // maximality afterwards.
  enumerate_half_duplex(g, v + 1, used | (1u << v), current, out);
}

void enumerate_full_duplex(const graph::Digraph& g, int v, std::uint32_t used,
                           std::vector<graph::Arc>& current,
                           std::vector<Round>& out) {
  const int n = g.vertex_count();
  while (v < n && (used >> v) & 1) ++v;
  if (v == n) {
    out.push_back(Round{current});
    out.back().canonicalize();
    return;
  }
  for (int w : g.out_neighbors(v)) {
    if (w <= v || ((used >> w) & 1)) continue;
    if (!g.has_arc(w, v)) continue;  // need the opposite arc
    current.push_back({v, w});
    current.push_back({w, v});
    enumerate_full_duplex(g, v + 1, used | (1u << v) | (1u << w), current, out);
    current.pop_back();
    current.pop_back();
  }
  enumerate_full_duplex(g, v + 1, used | (1u << v), current, out);
}

// Keep only set-maximal rounds (no round strictly contained in another) and
// deduplicate.  The sort here establishes the canonical list ordering
// documented in the header: lexicographic by (canonicalized) arc vector.
std::vector<Round> prune_to_maximal(std::vector<Round> rounds) {
  std::sort(rounds.begin(), rounds.end(),
            [](const Round& a, const Round& b) { return a.arcs < b.arcs; });
  rounds.erase(std::unique(rounds.begin(), rounds.end()), rounds.end());
  std::vector<Round> maximal;
  for (const auto& r : rounds) {
    bool dominated = false;
    for (const auto& other : rounds) {
      if (other.arcs.size() <= r.arcs.size() || r == other) continue;
      dominated = std::includes(other.arcs.begin(), other.arcs.end(),
                                r.arcs.begin(), r.arcs.end());
      if (dominated) break;
    }
    if (!dominated && !r.arcs.empty()) maximal.push_back(r);
  }
  return maximal;
}

}  // namespace

std::vector<Round> maximal_matchings(const graph::Digraph& g, Mode mode) {
  if (g.vertex_count() > 16)
    throw std::invalid_argument("maximal_matchings: n <= 16 required");
  std::vector<Round> out;
  std::vector<graph::Arc> current;
  if (mode == Mode::kFullDuplex)
    enumerate_full_duplex(g, 0, 0, current, out);
  else
    enumerate_half_duplex(g, 0, 0, current, out);
  return prune_to_maximal(std::move(out));
}

OptimalResult optimal_gossip(const graph::Digraph& g, Mode mode, int max_rounds,
                             std::size_t max_states) {
  search::SolveOptions opts;
  opts.problem = search::Problem::kGossip;
  opts.mode = mode;
  opts.max_rounds = max_rounds;
  opts.max_states = max_states;
  opts.want_witness = true;  // serial parent-tracking BFS
  auto sr = search::solve(g, opts);
  OptimalResult res;
  res.rounds = sr.rounds;
  res.states_explored = sr.states_explored;
  res.budget_exhausted = sr.budget_exhausted;
  res.witness = std::move(sr.witness);
  return res;
}

}  // namespace sysgo::analysis
