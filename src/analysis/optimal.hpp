// Exact optimal gossip for small networks — thin wrapper over the
// exact-search subsystem.
//
// Historically this header hosted a serial BFS over knowledge states packed
// into a single 64-bit key (n <= 8, practical to n <= 6).  That search now
// lives in src/search/ as a symmetry-reduced, bound-pruned, frontier-
// parallel solver handling n <= 12 and broadcast as well as gossip; see
// search/solver.hpp.  optimal_gossip() remains as the witness-producing
// convenience entry point, and maximal_matchings() as the shared move
// generator.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "protocol/protocol.hpp"

namespace sysgo::analysis {

/// All maximal matchings of g in the given mode (n <= 16).  Half-duplex:
/// maximal sets of vertex-disjoint arcs; full-duplex: maximal sets of
/// vertex-disjoint opposite pairs (both arcs listed).
///
/// Canonical ordering contract: every returned round is canonicalized
/// (arcs sorted by (tail, head)) and the list is sorted lexicographically
/// by arc vector, with no duplicates.  The ordering therefore depends only
/// on the arc SET of g — not on arc insertion order — which is what keeps
/// solver results and witness protocols deterministic across thread
/// counts and rebuilt graphs.
[[nodiscard]] std::vector<protocol::Round> maximal_matchings(
    const graph::Digraph& g, protocol::Mode mode);

struct OptimalResult {
  int rounds = -1;  // minimum gossip time, or -1 if unreachable in budget
  std::size_t states_explored = 0;
  bool budget_exhausted = false;  // search aborted after max_states
  /// One optimal protocol (round sequence realizing the minimum).
  std::vector<protocol::Round> witness;
};

/// Minimum gossip time over all protocols on g (n <= 12), with a witness
/// protocol.  Delegates to search::solve with symmetry reduction on; the
/// search aborts with budget_exhausted once max_states canonical knowledge
/// states have been visited.  states_explored counts canonical states —
/// orbit representatives — so it is smaller than the raw reachable count
/// by up to a factor of |Aut(g)|.
[[nodiscard]] OptimalResult optimal_gossip(const graph::Digraph& g,
                                           protocol::Mode mode,
                                           int max_rounds = 32,
                                           std::size_t max_states = 20'000'000);

}  // namespace sysgo::analysis
