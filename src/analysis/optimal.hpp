// Exhaustive optimal gossip for tiny networks.
//
// Searches over ALL protocols (unrestricted, non-systolic) by BFS on the
// global knowledge state; moves are the maximal matchings of the network in
// the chosen duplex mode.  Restricting to maximal matchings is lossless:
// knowledge is monotone, so extending a round's matching never hurts.
//
// The state packs the n x n knowledge matrix into a 64-bit key, so n <= 8
// is required (and n <= 6 is practical).  Used to check the tightness of
// the lower bounds on concrete small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "protocol/protocol.hpp"

namespace sysgo::analysis {

/// All maximal matchings of g in the given mode, each canonicalized.
/// Half-duplex: maximal sets of vertex-disjoint arcs; full-duplex: maximal
/// sets of vertex-disjoint opposite pairs (both arcs listed).
[[nodiscard]] std::vector<protocol::Round> maximal_matchings(
    const graph::Digraph& g, protocol::Mode mode);

struct OptimalResult {
  int rounds = -1;  // minimum gossip time, or -1 if unreachable in budget
  std::size_t states_explored = 0;
  bool budget_exhausted = false;  // search aborted after max_states
  /// One optimal protocol (round sequence realizing the minimum).
  std::vector<protocol::Round> witness;
};

/// Minimum gossip time over all protocols on g (n <= 8).  The search aborts
/// with budget_exhausted once max_states knowledge states have been visited
/// (dense half-duplex instances grow beyond memory quickly: K6 half-duplex
/// already exceeds 10^8 reachable states).
[[nodiscard]] OptimalResult optimal_gossip(const graph::Digraph& g,
                                           protocol::Mode mode,
                                           int max_rounds = 32,
                                           std::size_t max_states = 20'000'000);

}  // namespace sysgo::analysis
