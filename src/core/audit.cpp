#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>
#include <string>

#include "linalg/polynomial.hpp"
#include "linalg/roots.hpp"

namespace sysgo::core {

std::vector<VertexActivity> vertex_activities(
    const protocol::CompiledSchedule& cs) {
  using protocol::RoundRole;
  std::vector<VertexActivity> acts(static_cast<std::size_t>(cs.n()));
  for (int r = 0; r < cs.round_count(); ++r) {
    const auto roles = cs.roles(r);
    for (int v = 0; v < cs.n(); ++v) {
      const RoundRole role = roles[static_cast<std::size_t>(v)];
      if (role == RoundRole::kIdle) continue;
      auto& act = acts[static_cast<std::size_t>(v)];
      if (role != RoundRole::kSend) ++act.left_rounds;      // receive/exchange
      if (role != RoundRole::kReceive) ++act.right_rounds;  // send/exchange
      act.active_rounds.push_back(r);
    }
  }
  return acts;
}

std::vector<VertexActivity> vertex_activities(
    const protocol::SystolicSchedule& sched) {
  return vertex_activities(protocol::CompiledSchedule::compile(sched));
}

namespace {

// Half-duplex per-vertex bound (Lemma 4.3 with per-period totals):
// λ·√(p_R(λ))·√(p_L(λ)); zero when the vertex never relays.
double half_duplex_vertex_bound(const VertexActivity& act, double lambda) {
  if (act.left_rounds == 0 || act.right_rounds == 0) return 0.0;
  return lambda * std::sqrt(linalg::delay_polynomial(act.right_rounds, lambda)) *
         std::sqrt(linalg::delay_polynomial(act.left_rounds, lambda));
}

// Full-duplex per-vertex bound: the local matrix is doubly indexed by the
// vertex's activation rounds (cyclically repeated, entries λ^δ for delays
// 0 < δ < s); ‖A‖₂² <= ‖A‖₁·‖A‖∞ = (max col sum)·(max row sum).
double full_duplex_vertex_bound(const VertexActivity& act, int s, double lambda) {
  const auto& rounds = act.active_rounds;
  if (rounds.size() < 2) return 0.0;  // no pair of activations within a window
  double max_row = 0.0;
  double max_col = 0.0;
  for (std::size_t a = 0; a < rounds.size(); ++a) {
    double row = 0.0;
    double col = 0.0;
    for (std::size_t b = 0; b < rounds.size(); ++b) {
      if (a == b) continue;  // same activation recurs at delay s, outside window
      const int fwd = ((rounds[b] - rounds[a]) % s + s) % s;   // delay a -> b
      const int bwd = ((rounds[a] - rounds[b]) % s + s) % s;   // delay b -> a
      if (fwd > 0 && fwd < s) row += std::pow(lambda, fwd);
      if (bwd > 0 && bwd < s) col += std::pow(lambda, bwd);
    }
    max_row = std::max(max_row, row);
    max_col = std::max(max_col, col);
  }
  return std::sqrt(max_row * max_col);
}

// Max over vertices of the per-vertex bound, from precomputed activities —
// the shared core of the audit entry points, evaluated once per λ without
// re-walking the schedule.
double norm_bound_from_activities(std::span<const VertexActivity> acts, int s,
                                  double lambda, protocol::Mode mode) {
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("audit_norm_bound: need 0 < lambda < 1");
  double worst = 0.0;
  for (const auto& act : acts)
    worst = std::max(worst, vertex_norm_bound(act, s, lambda, mode));
  return worst;
}

}  // namespace

double vertex_norm_bound(const VertexActivity& activity, int s, double lambda,
                         protocol::Mode mode) {
  return mode == protocol::Mode::kFullDuplex
             ? full_duplex_vertex_bound(activity, s, lambda)
             : half_duplex_vertex_bound(activity, lambda);
}

double audit_norm_bound(const protocol::CompiledSchedule& cs, double lambda) {
  // The audit's period reading is only meaningful for periodic schedules;
  // a compiled finite protocol (possibly empty) must not masquerade as one.
  cs.require_periodic("audit_norm_bound");
  return norm_bound_from_activities(vertex_activities(cs), cs.period_length(),
                                    lambda, cs.mode());
}

double audit_norm_bound(const protocol::SystolicSchedule& sched, double lambda) {
  return audit_norm_bound(protocol::CompiledSchedule::compile(sched), lambda);
}

AuditResult audit_schedule(const protocol::CompiledSchedule& cs) {
  cs.require_periodic("audit_schedule");
  AuditResult res;
  const auto acts = vertex_activities(cs);
  const int s = cs.period_length();
  const protocol::Mode mode = cs.mode();

  constexpr double kLoLambda = 1e-9;
  constexpr double kHiLambda = 1.0 - 1e-9;
  const auto f = [&](double lam) {
    return norm_bound_from_activities(acts, s, lam, mode) - 1.0;
  };

  if (f(kHiLambda) <= 0.0) {
    // Norm bound below 1 even as λ -> 1: the schedule has no relaying
    // vertex; gossip cannot complete and no finite certificate applies.
    res.lambda_star = kHiLambda;
  } else {
    const auto root = linalg::bisect(f, kLoLambda, kHiLambda);
    res.lambda_star = root.x;
  }
  res.e_coeff = e_coefficient(res.lambda_star);
  res.round_lower_bound = theorem41_round_bound(res.lambda_star, cs.n());

  // Identify the vertex attaining the bound at λ*.
  double worst = -1.0;
  for (std::size_t v = 0; v < acts.size(); ++v) {
    const double b = vertex_norm_bound(acts[v], s, res.lambda_star, mode);
    if (b > worst) {
      worst = b;
      res.worst_vertex = static_cast<int>(v);
    }
  }
  return res;
}

AuditResult audit_schedule(const protocol::SystolicSchedule& sched) {
  if (sched.period.empty())
    throw std::invalid_argument("audit_schedule: empty period");
  return audit_schedule(protocol::CompiledSchedule::compile(sched));
}

SeparatorAuditResult audit_schedule_with_separator(
    const protocol::CompiledSchedule& cs, int distance, std::size_t min_size) {
  cs.require_periodic("audit_schedule_with_separator");
  if (distance < 1 || min_size == 0)
    throw std::invalid_argument(
        "audit_schedule_with_separator: need distance >= 1, min_size >= 1");

  const auto acts = vertex_activities(cs);
  const int s = cs.period_length();
  const double log_c = std::log2(static_cast<double>(min_size));

  // For a fixed λ with F = audit_norm_bound(λ) <= 1, find the smallest t
  // (>= distance - 1, since items must traverse that many arcs) with
  //   t·log2(1/λ) + log2(t - distance + 2) + log2(t)
  //     >= log_c + (distance - 1)·log2(1/F).
  const auto certified = [&](double lambda) {
    const double f = norm_bound_from_activities(acts, s, lambda, cs.mode());
    // f > 1: λ not certified.  f == 0: no vertex relays, so no finite
    // certificate applies (gossip across distance >= 2 is impossible anyway).
    if (f > 1.0 || f <= 0.0) return 0;
    const double log_inv = std::log2(1.0 / lambda);
    const double rhs = log_c + (distance - 1) * std::log2(1.0 / f);
    // Floor: an item advances at most one arc per round, so t >= distance
    // independently of the matrix argument (and t - d + 2 stays positive).
    int t = std::max(1, distance);
    while (t * log_inv + std::log2(static_cast<double>(t - distance + 2)) +
               std::log2(static_cast<double>(t)) <
           rhs) {
      ++t;
      if (t > (1 << 28)) break;  // defensive; never hit in practice
    }
    return t;
  };

  // Scan λ on a grid: the objective trades log2(1/λ) against the
  // (distance-1)·log2(1/F) credit, so the maximizer is interior.
  SeparatorAuditResult best;
  constexpr int kGrid = 512;
  for (int i = 1; i < kGrid; ++i) {
    const double lambda = static_cast<double>(i) / kGrid;
    const int t = certified(lambda);
    if (t > best.round_lower_bound) {
      best.round_lower_bound = t;
      best.lambda = lambda;
    }
  }
  return best;
}

SeparatorAuditResult audit_schedule_with_separator(
    const protocol::SystolicSchedule& sched, int distance, std::size_t min_size) {
  return audit_schedule_with_separator(protocol::CompiledSchedule::compile(sched),
                                       distance, min_size);
}

}  // namespace sysgo::core
