#include "core/audit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/polynomial.hpp"
#include "linalg/roots.hpp"

namespace sysgo::core {

std::vector<VertexActivity> vertex_activities(const protocol::SystolicSchedule& sched) {
  std::vector<VertexActivity> acts(static_cast<std::size_t>(sched.n));
  const int s = sched.period_length();
  // Track, per vertex, which period rounds have in/out/any activations.
  std::vector<std::vector<char>> has_in(static_cast<std::size_t>(sched.n)),
      has_out(static_cast<std::size_t>(sched.n));
  for (auto& v : has_in) v.assign(static_cast<std::size_t>(s), 0);
  for (auto& v : has_out) v.assign(static_cast<std::size_t>(s), 0);
  for (int r = 0; r < s; ++r)
    for (const auto& a : sched.period[static_cast<std::size_t>(r)].arcs) {
      has_out[static_cast<std::size_t>(a.tail)][static_cast<std::size_t>(r)] = 1;
      has_in[static_cast<std::size_t>(a.head)][static_cast<std::size_t>(r)] = 1;
    }
  for (int v = 0; v < sched.n; ++v) {
    auto& act = acts[static_cast<std::size_t>(v)];
    for (int r = 0; r < s; ++r) {
      const bool in = has_in[static_cast<std::size_t>(v)][static_cast<std::size_t>(r)];
      const bool out =
          has_out[static_cast<std::size_t>(v)][static_cast<std::size_t>(r)];
      act.left_rounds += in ? 1 : 0;
      act.right_rounds += out ? 1 : 0;
      if (in || out) act.active_rounds.push_back(r);
    }
  }
  return acts;
}

namespace {

// Half-duplex per-vertex bound (Lemma 4.3 with per-period totals):
// λ·√(p_R(λ))·√(p_L(λ)); zero when the vertex never relays.
double half_duplex_vertex_bound(const VertexActivity& act, double lambda) {
  if (act.left_rounds == 0 || act.right_rounds == 0) return 0.0;
  return lambda * std::sqrt(linalg::delay_polynomial(act.right_rounds, lambda)) *
         std::sqrt(linalg::delay_polynomial(act.left_rounds, lambda));
}

// Full-duplex per-vertex bound: the local matrix is doubly indexed by the
// vertex's activation rounds (cyclically repeated, entries λ^δ for delays
// 0 < δ < s); ‖A‖₂² <= ‖A‖₁·‖A‖∞ = (max col sum)·(max row sum).
double full_duplex_vertex_bound(const VertexActivity& act, int s, double lambda) {
  const auto& rounds = act.active_rounds;
  if (rounds.size() < 2) return 0.0;  // no pair of activations within a window
  double max_row = 0.0;
  double max_col = 0.0;
  for (std::size_t a = 0; a < rounds.size(); ++a) {
    double row = 0.0;
    double col = 0.0;
    for (std::size_t b = 0; b < rounds.size(); ++b) {
      if (a == b) continue;  // same activation recurs at delay s, outside window
      const int fwd = ((rounds[b] - rounds[a]) % s + s) % s;   // delay a -> b
      const int bwd = ((rounds[a] - rounds[b]) % s + s) % s;   // delay b -> a
      if (fwd > 0 && fwd < s) row += std::pow(lambda, fwd);
      if (bwd > 0 && bwd < s) col += std::pow(lambda, bwd);
    }
    max_row = std::max(max_row, row);
    max_col = std::max(max_col, col);
  }
  return std::sqrt(max_row * max_col);
}

}  // namespace

double vertex_norm_bound(const VertexActivity& activity, int s, double lambda,
                         protocol::Mode mode) {
  return mode == protocol::Mode::kFullDuplex
             ? full_duplex_vertex_bound(activity, s, lambda)
             : half_duplex_vertex_bound(activity, lambda);
}

double audit_norm_bound(const protocol::SystolicSchedule& sched, double lambda) {
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("audit_norm_bound: need 0 < lambda < 1");
  const auto acts = vertex_activities(sched);
  const int s = sched.period_length();
  double worst = 0.0;
  for (const auto& act : acts)
    worst = std::max(worst, vertex_norm_bound(act, s, lambda, sched.mode));
  return worst;
}

AuditResult audit_schedule(const protocol::SystolicSchedule& sched) {
  if (sched.period.empty())
    throw std::invalid_argument("audit_schedule: empty period");
  AuditResult res;

  constexpr double kLoLambda = 1e-9;
  constexpr double kHiLambda = 1.0 - 1e-9;
  const auto f = [&sched](double lam) { return audit_norm_bound(sched, lam) - 1.0; };

  if (f(kHiLambda) <= 0.0) {
    // Norm bound below 1 even as λ -> 1: the schedule has no relaying
    // vertex; gossip cannot complete and no finite certificate applies.
    res.lambda_star = kHiLambda;
  } else {
    const auto root = linalg::bisect(f, kLoLambda, kHiLambda);
    res.lambda_star = root.x;
  }
  res.e_coeff = e_coefficient(res.lambda_star);
  res.round_lower_bound = theorem41_round_bound(res.lambda_star, sched.n);

  // Identify the vertex attaining the bound at λ*.
  const auto acts = vertex_activities(sched);
  const int s = sched.period_length();
  double worst = -1.0;
  for (std::size_t v = 0; v < acts.size(); ++v) {
    const double b = vertex_norm_bound(acts[v], s, res.lambda_star, sched.mode);
    if (b > worst) {
      worst = b;
      res.worst_vertex = static_cast<int>(v);
    }
  }
  return res;
}

SeparatorAuditResult audit_schedule_with_separator(
    const protocol::SystolicSchedule& sched, int distance, std::size_t min_size) {
  if (distance < 1 || min_size == 0)
    throw std::invalid_argument(
        "audit_schedule_with_separator: need distance >= 1, min_size >= 1");

  const double log_c = std::log2(static_cast<double>(min_size));

  // For a fixed λ with F = audit_norm_bound(λ) <= 1, find the smallest t
  // (>= distance - 1, since items must traverse that many arcs) with
  //   t·log2(1/λ) + log2(t - distance + 2) + log2(t)
  //     >= log_c + (distance - 1)·log2(1/F).
  const auto certified = [&](double lambda) {
    const double f = audit_norm_bound(sched, lambda);
    // f > 1: λ not certified.  f == 0: no vertex relays, so no finite
    // certificate applies (gossip across distance >= 2 is impossible anyway).
    if (f > 1.0 || f <= 0.0) return 0;
    const double log_inv = std::log2(1.0 / lambda);
    const double rhs = log_c + (distance - 1) * std::log2(1.0 / f);
    // Floor: an item advances at most one arc per round, so t >= distance
    // independently of the matrix argument (and t - d + 2 stays positive).
    int t = std::max(1, distance);
    while (t * log_inv + std::log2(static_cast<double>(t - distance + 2)) +
               std::log2(static_cast<double>(t)) <
           rhs) {
      ++t;
      if (t > (1 << 28)) break;  // defensive; never hit in practice
    }
    return t;
  };

  // Scan λ on a grid: the objective trades log2(1/λ) against the
  // (distance-1)·log2(1/F) credit, so the maximizer is interior.
  SeparatorAuditResult best;
  constexpr int kGrid = 512;
  for (int i = 1; i < kGrid; ++i) {
    const double lambda = static_cast<double>(i) / kGrid;
    const int t = certified(lambda);
    if (t > best.round_lower_bound) {
      best.round_lower_bound = t;
      best.lambda = lambda;
    }
  }
  return best;
}

}  // namespace sysgo::core
