// Protocol auditor: a certified lower bound for a *concrete* systolic
// schedule via Theorem 4.1.
//
// For each vertex x the schedule fixes the per-period activation pattern;
// Lemma 4.2/4.3 bound the local norm from the per-period left/right
// activation totals (half-duplex), or from cyclic gap sums and
// ‖A‖₂ <= √(‖A‖₁·‖A‖∞) (full-duplex).  The largest λ* with
// max_x bound_x(λ*) <= 1 then certifies (Theorem 4.1) that gossip under
// this schedule needs at least theorem41_round_bound(λ*, n) rounds.
//
// Because the audit uses each vertex's actual totals (L_x, R_x) rather than
// the worst-case ⌈s/2⌉/⌊s/2⌋ split, it can certify strictly more than the
// general e(s)·log n bound — the per-protocol refinement the paper's
// technique enables (see DESIGN.md, ablation 2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/bounds.hpp"
#include "protocol/compiled.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::core {

/// Per-vertex, per-period activation summary.
struct VertexActivity {
  int left_rounds = 0;   // rounds of the period with an incoming activation
  int right_rounds = 0;  // rounds with an outgoing activation
  std::vector<int> active_rounds;  // full-duplex: rounds with any activation
};

/// Summaries for every vertex of a compiled period, read straight off the
/// per-round role tables.
[[nodiscard]] std::vector<VertexActivity> vertex_activities(
    const protocol::CompiledSchedule& cs);

/// Summaries for every vertex of a schedule's period (compiles once, which
/// validates the schedule, then reads the tables).
[[nodiscard]] std::vector<VertexActivity> vertex_activities(
    const protocol::SystolicSchedule& sched);

/// The certified per-vertex local-norm bound at λ: half-duplex uses
/// Lemma 4.3 with the vertex's (L, R) totals; full-duplex uses cyclic gap
/// sums with ‖A‖₂ <= √(‖A‖₁·‖A‖∞).  s is the schedule period.
[[nodiscard]] double vertex_norm_bound(const VertexActivity& activity, int s,
                                       double lambda, protocol::Mode mode);

/// Certified upper bound on ‖M(λ)‖ for this schedule (max over vertices of
/// the per-vertex local-norm bound).  Increasing in λ.  The schedule
/// overload compiles per call — in a λ loop, compile once and use the
/// compiled overload.
[[nodiscard]] double audit_norm_bound(const protocol::SystolicSchedule& sched,
                                      double lambda);
[[nodiscard]] double audit_norm_bound(const protocol::CompiledSchedule& cs,
                                      double lambda);

struct AuditResult {
  double lambda_star = 0.0;  // largest λ with certified ‖M(λ)‖ <= 1
  double e_coeff = 0.0;      // 1/log2(1/λ*)
  int round_lower_bound = 0; // Theorem 4.1 round count at λ*
  int worst_vertex = -1;     // vertex attaining the norm bound at λ*
};

/// Run the audit.  The bound holds for *any* execution length of this
/// schedule that achieves gossip on an n-vertex network.  The compiled
/// overload derives the activity summaries once and reuses them across the
/// whole λ bisection, and requires a periodic compiled schedule (as do the
/// other compiled audit entry points); the schedule overload compiles
/// first.
[[nodiscard]] AuditResult audit_schedule(const protocol::CompiledSchedule& cs);
[[nodiscard]] AuditResult audit_schedule(const protocol::SystolicSchedule& sched);

/// Theorem 5.1 applied to a concrete schedule and a concrete separator:
/// given BFS-verified vertex sets V1, V2 at distance >= `distance` with
/// min(|V1|, |V2|) >= `min_size`, the proof of Theorem 5.1 yields, for any
/// λ with certified ‖M(λ)‖ <= 1, the smallest t satisfying
///
///   t·log2(1/λ) >= log2(c) − (dist−1)·log2(‖M(λ)‖bound)
///                  − log2(t − dist + 2) − log2(t).
///
/// Returns the best such t over λ.  Strictly stronger than audit_schedule
/// when the network has far-apart large sets (e.g. Butterfly levels).
struct SeparatorAuditResult {
  double lambda = 0.0;
  int round_lower_bound = 0;
};
[[nodiscard]] SeparatorAuditResult audit_schedule_with_separator(
    const protocol::CompiledSchedule& cs, int distance, std::size_t min_size);
[[nodiscard]] SeparatorAuditResult audit_schedule_with_separator(
    const protocol::SystolicSchedule& sched, int distance, std::size_t min_size);

}  // namespace sysgo::core
