#include "core/bounds.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/polynomial.hpp"
#include "linalg/roots.hpp"

namespace sysgo::core {

double norm_bound_function(double lambda, int s, Duplex duplex) {
  if (duplex == Duplex::kHalf) {
    if (s == kUnboundedPeriod) return lambda * linalg::delay_polynomial_limit(lambda);
    const int hi = (s + 1) / 2;  // ceil(s/2)
    const int lo = s / 2;        // floor(s/2)
    return lambda * std::sqrt(linalg::delay_polynomial(hi, lambda)) *
           std::sqrt(linalg::delay_polynomial(lo, lambda));
  }
  if (s == kUnboundedPeriod) return linalg::geometric_sum_limit(lambda);
  return linalg::geometric_sum(s - 1, lambda);
}

double lambda_star(int s, Duplex duplex) {
  if (s != kUnboundedPeriod && s < 3)
    throw std::invalid_argument(
        "lambda_star: period must be >= 3 (s = 2 degenerates to a cycle)");
  constexpr double kLo = 1e-9;
  constexpr double kHi = 1.0 - 1e-12;
  const auto res = linalg::bisect(
      [s, duplex](double l) { return norm_bound_function(l, s, duplex) - 1.0; },
      kLo, kHi);
  if (!res.bracketed)
    throw std::runtime_error("lambda_star: root not bracketed (internal error)");
  return res.x;
}

double e_coefficient(double lambda) { return 1.0 / std::log2(1.0 / lambda); }

double e_general(int s, Duplex duplex) { return e_coefficient(lambda_star(s, duplex)); }

int theorem41_round_bound(double lambda, std::int64_t n) {
  if (n < 2) return 0;
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("theorem41_round_bound: need 0 < lambda < 1");
  const double rhs = std::log2(static_cast<double>(n - 1)) + 1.0;
  const double log_inv = std::log2(1.0 / lambda);
  // LHS t·log2(1/λ) + 2·log2(t) is increasing in t; scan from 1.
  int t = 1;
  while (t * log_inv + 2.0 * std::log2(static_cast<double>(t)) < rhs) ++t;
  return t;
}

}  // namespace sysgo::core
