// General lower bounds on systolic gossip time (Corollary 4.4 and the
// full-duplex analogue of Section 6).
//
// Half-duplex/directed: e(s) = 1/log(1/λ*) with
//   λ*·√(p⌈s/2⌉(λ*))·√(p⌊s/2⌋(λ*)) = 1;
// full-duplex: λ* + λ*² + … + λ*^{s−1} = 1.
// s = kUnboundedPeriod means s → ∞ (non-systolic protocols).
#pragma once

#include <cstdint>

namespace sysgo::core {

/// Sentinel period for "non-systolic" (s → ∞) bounds.
inline constexpr int kUnboundedPeriod = -1;

enum class Duplex {
  kHalf,  // also covers the directed case
  kFull,
};

/// The norm-bound function F(λ, s): the paper's
/// λ·√(p⌈s/2⌉)·√(p⌊s/2⌋) (half-duplex) or λ+…+λ^{s−1} (full-duplex);
/// strictly increasing in λ on (0, 1).
[[nodiscard]] double norm_bound_function(double lambda, int s, Duplex duplex);

/// The unique λ* in (0, 1) with F(λ*, s) = 1.  Requires s >= 3 or
/// kUnboundedPeriod.
[[nodiscard]] double lambda_star(int s, Duplex duplex);

/// Coefficient e = 1/log2(1/λ).
[[nodiscard]] double e_coefficient(double lambda);

/// The general bound coefficient e(s): any s-systolic gossip protocol on n
/// vertices takes at least e(s)·log2(n) − O(log log n) rounds.
[[nodiscard]] double e_general(int s, Duplex duplex);

/// Theorem 4.1 instantiated: the smallest integer t satisfying
/// t·log2(1/λ) + 2·log2(t) >= log2(n−1) + 1 — a hard round count valid for
/// any protocol whose delay matrix satisfies ‖M(λ)‖ <= 1.
[[nodiscard]] int theorem41_round_bound(double lambda, std::int64_t n);

}  // namespace sysgo::core
