#include "core/broadcast_bound.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/roots.hpp"

namespace sysgo::core {

double broadcast_growth_root(int d) {
  if (d < 2) throw std::invalid_argument("broadcast_growth_root: need d >= 2");
  // f(x) = x^d − (x^{d−1} + … + 1) = x^d − (x^d − 1)/(x − 1); use the
  // polynomial form directly for stability.
  const auto f = [d](double x) {
    double pow = 1.0;
    double sum = 0.0;
    for (int i = 0; i < d; ++i) {
      sum += pow;
      pow *= x;
    }
    return pow - sum;  // pow = x^d after the loop
  };
  const auto res = linalg::bisect(f, 1.0 + 1e-12, 2.0);
  if (!res.bracketed)
    throw std::runtime_error("broadcast_growth_root: root not bracketed");
  return res.x;
}

double broadcast_coefficient(int d) {
  return 1.0 / std::log2(broadcast_growth_root(d));
}

}  // namespace sysgo::core
