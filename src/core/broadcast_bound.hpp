// Broadcasting lower bounds for bounded-degree networks [22, 2].
//
// b(G) >= c(d)·log2(n) where d is the max out-degree (directed) or degree−1
// (undirected), and c(d) = 1/log2(x_d) with x_d the unique root > 1 of
//   x^d = x^{d−1} + x^{d−2} + … + 1.
// c(2) = 1.4404, c(3) = 1.1374, c(4) = 1.0562, c(d) ≈ 1 + log2(e)/(2d).
//
// The paper's Section 6 observation — the general full-duplex s-systolic
// gossip bound coincides with the broadcasting bound — becomes the exact
// identity e_general(s, full) = c(s−1), which the test suite pins.
#pragma once

namespace sysgo::core {

/// The growth root x_d (in (1, 2]).
[[nodiscard]] double broadcast_growth_root(int d);

/// c(d) = 1/log2(x_d); requires d >= 1.  c(1) = 1 (binary doubling... d = 1
/// gives x = 1 degenerate), so d >= 2 in practice.
[[nodiscard]] double broadcast_coefficient(int d);

}  // namespace sysgo::core
