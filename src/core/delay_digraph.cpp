#include "core/delay_digraph.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <stdexcept>

namespace sysgo::core {

DelayDigraph::DelayDigraph(const protocol::Protocol& p, int s) : s_(s) {
  if (s < 2) throw std::invalid_argument("DelayDigraph: period must be >= 2");
  build(p);
}

DelayDigraph::DelayDigraph(const protocol::SystolicSchedule& sched, int t)
    : DelayDigraph(sched.expand(t), sched.period_length()) {}

DelayDigraph::DelayDigraph(const protocol::CompiledSchedule& cs, int t)
    : s_(cs.period_length()) {
  cs.require_periodic("DelayDigraph");
  if (s_ < 2) throw std::invalid_argument("DelayDigraph: period must be >= 2");
  for (int i = 1; i <= t; ++i)
    for (const auto& a : cs.round_arcs(cs.round_index(i)))
      nodes_.push_back({a.tail, a.head, i});
  link(cs.n());
}

void DelayDigraph::build(const protocol::Protocol& p) {
  // Collect activations round by round.
  for (int i = 1; i <= p.length(); ++i)
    for (const auto& a : p.rounds[static_cast<std::size_t>(i - 1)].arcs)
      nodes_.push_back({a.tail, a.head, i});
  link(p.n);
}

void DelayDigraph::link(int n) {
  // Per middle-vertex y: activations entering y and leaving y, by round.
  // in_at[y] = (round, node), out_at[y] = (round, node).
  std::vector<std::vector<std::pair<int, int>>> in_at(
      static_cast<std::size_t>(n)),
      out_at(static_cast<std::size_t>(n));
  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
    const auto& act = nodes_[idx];
    in_at[static_cast<std::size_t>(act.head)].emplace_back(act.round,
                                                           static_cast<int>(idx));
    out_at[static_cast<std::size_t>(act.tail)].emplace_back(act.round,
                                                            static_cast<int>(idx));
  }

  out_.assign(nodes_.size(), {});
  for (int y = 0; y < n; ++y) {
    auto& ins = in_at[static_cast<std::size_t>(y)];
    auto& outs = out_at[static_cast<std::size_t>(y)];
    if (ins.empty() || outs.empty()) continue;
    std::sort(ins.begin(), ins.end());
    std::sort(outs.begin(), outs.end());
    for (const auto& [i, from] : ins) {
      // Arcs to outgoing activations at rounds j with 1 <= j - i < s.
      auto lo = std::lower_bound(outs.begin(), outs.end(), std::pair{i + 1, -1});
      auto hi = std::lower_bound(outs.begin(), outs.end(), std::pair{i + s_, -1});
      for (auto it = lo; it != hi; ++it) {
        arcs_.push_back({from, it->second, it->first - i});
        out_[static_cast<std::size_t>(from)].emplace_back(it->second,
                                                          it->first - i);
      }
    }
  }
}

int DelayDigraph::find(int tail, int head, int round) const noexcept {
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    if (nodes_[i] == Activation{tail, head, round}) return static_cast<int>(i);
  return -1;
}

int DelayDigraph::weighted_distance(int from, int to) const {
  if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= nodes_.size() ||
      static_cast<std::size_t>(to) >= nodes_.size())
    throw std::out_of_range("DelayDigraph::weighted_distance: bad node index");
  std::vector<int> dist(nodes_.size(), -1);
  using Item = std::pair<int, int>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.push({0, from});
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (dist[static_cast<std::size_t>(u)] != -1) continue;
    dist[static_cast<std::size_t>(u)] = d;
    if (u == to) return d;
    for (const auto& [v, w] : out_[static_cast<std::size_t>(u)])
      if (dist[static_cast<std::size_t>(v)] == -1) pq.push({d + w, v});
  }
  return dist[static_cast<std::size_t>(to)];
}

}  // namespace sysgo::core
