// Delay digraph of a systolic gossip protocol (Definition 3.3).
//
// Vertices are arc activations (x, y, i): arc (x, y) active at round i.
// There is an arc from (x, y, i) to (y, z, j) whenever 1 <= j − i < s, with
// weight j − i — the delay an item incurs crossing (x, y) at round i and
// then (y, z) at round j.  Delays of s or more repeat an already-represented
// activation, hence the window.
#pragma once

#include <vector>

#include "protocol/compiled.hpp"
#include "protocol/protocol.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::core {

/// One delay-digraph vertex: activation of (tail -> head) at round `round`
/// (1-based, matching the paper's A_1 ... A_t).
struct Activation {
  int tail = 0;
  int head = 0;
  int round = 0;
  friend bool operator==(const Activation&, const Activation&) = default;
};

/// A weighted arc of the delay digraph, by activation indices.
struct DelayArc {
  int from = 0;
  int to = 0;
  int weight = 0;  // the delay j - i, in [1, s-1]
};

class DelayDigraph {
 public:
  /// Build from a finite protocol with systolic period s (s > 1).
  /// The protocol need not be exactly s-systolic; the window rule of
  /// Definition 3.3 is applied as given.
  DelayDigraph(const protocol::Protocol& p, int s);

  /// Convenience: expand a schedule to t rounds and build with
  /// s = period length.
  DelayDigraph(const protocol::SystolicSchedule& sched, int t);

  /// Build the first t rounds of a compiled periodic schedule directly from
  /// its flat arc spans — no intermediate Protocol is materialized.
  /// Activations appear in canonical (per-round sorted) arc order.
  DelayDigraph(const protocol::CompiledSchedule& cs, int t);

  [[nodiscard]] int period() const noexcept { return s_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t arc_count() const noexcept { return arcs_.size(); }

  [[nodiscard]] const std::vector<Activation>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<DelayArc>& arcs() const noexcept { return arcs_; }

  /// Index of an activation, or -1 when the arc was not active that round.
  [[nodiscard]] int find(int tail, int head, int round) const noexcept;

  /// Shortest weighted distance between two activation nodes (Dijkstra on
  /// the small weights); -1 when unreachable.  Used to validate the
  /// "overall delay" interpretation of DG paths.
  [[nodiscard]] int weighted_distance(int from, int to) const;

 private:
  void build(const protocol::Protocol& p);
  /// Wire the delay arcs between the already-collected activation nodes.
  void link(int n);

  int s_ = 0;
  std::vector<Activation> nodes_;
  std::vector<DelayArc> arcs_;
  std::vector<std::vector<std::pair<int, int>>> out_;  // (to, weight) per node
};

}  // namespace sysgo::core
