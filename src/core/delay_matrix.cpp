#include "core/delay_matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/power_iteration.hpp"

namespace sysgo::core {

linalg::SparseMatrix delay_matrix(const DelayDigraph& dg, double lambda) {
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("delay_matrix: need 0 < lambda < 1");
  std::vector<linalg::Triplet> entries;
  entries.reserve(dg.arc_count());
  for (const auto& arc : dg.arcs())
    entries.push_back({static_cast<std::size_t>(arc.from),
                       static_cast<std::size_t>(arc.to),
                       std::pow(lambda, arc.weight)});
  return linalg::SparseMatrix(dg.node_count(), dg.node_count(), std::move(entries));
}

double delay_matrix_norm(const DelayDigraph& dg, double lambda, bool parallel) {
  const auto m = delay_matrix(dg, lambda);
  linalg::PowerIterationOptions opts;
  opts.parallel = parallel;
  return linalg::operator_norm(m, opts).value;
}

}  // namespace sysgo::core
