// Delay matrix M(λ) of a systolic protocol (Definition 3.4).
//
// M(λ) is indexed by delay-digraph vertices; the entry for arc
// ((x,y,i), (y,z,j)) is λ^{j−i}.  Key property (used by Theorem 4.1):
// (M(λ)^t)_{u,v} = Σ over t-arc dipaths from u to v of λ^{path length}.
#pragma once

#include "core/delay_digraph.hpp"
#include "linalg/sparse.hpp"

namespace sysgo::core {

/// Assemble M(λ) for 0 < λ < 1.
[[nodiscard]] linalg::SparseMatrix delay_matrix(const DelayDigraph& dg,
                                                double lambda);

/// ‖M(λ)‖₂ by power iteration (exact up to tolerance).  This is the
/// "measured" counterpart of the analytic Lemma 4.3 bound.
[[nodiscard]] double delay_matrix_norm(const DelayDigraph& dg, double lambda,
                                       bool parallel = false);

}  // namespace sysgo::core
