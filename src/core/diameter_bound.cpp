#include "core/diameter_bound.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/roots.hpp"
#include "linalg/sparse.hpp"

namespace sysgo::core {
namespace {

linalg::SparseMatrix line_matrix(const std::vector<WeightedArc>& arcs, int n,
                                 double lambda) {
  // Group arcs by tail for O(m·avg-degree) assembly.
  std::vector<std::vector<std::size_t>> by_tail(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].weight < 1)
      throw std::invalid_argument("weighted arcs need weight >= 1");
    if (arcs[i].tail < 0 || arcs[i].tail >= n || arcs[i].head < 0 ||
        arcs[i].head >= n)
      throw std::out_of_range("weighted arc endpoint out of range");
    by_tail[static_cast<std::size_t>(arcs[i].tail)].push_back(i);
  }
  std::vector<linalg::Triplet> entries;
  for (std::size_t a = 0; a < arcs.size(); ++a)
    for (std::size_t b : by_tail[static_cast<std::size_t>(arcs[a].head)])
      entries.push_back({a, b, std::pow(lambda, arcs[b].weight)});
  return linalg::SparseMatrix(arcs.size(), arcs.size(), std::move(entries));
}

}  // namespace

double weighted_norm_bound(const std::vector<WeightedArc>& arcs, int n,
                           double lambda) {
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("weighted_norm_bound: need 0 < lambda < 1");
  const auto m = line_matrix(arcs, n, lambda);
  return std::sqrt(m.one_norm() * m.inf_norm());
}

DiameterBoundResult diameter_bound(const std::vector<WeightedArc>& arcs, int n) {
  if (n < 2 || arcs.empty())
    return {0.0, 0};
  const double target = std::log2(static_cast<double>(n) * (n - 1) /
                                  static_cast<double>(arcs.size()));
  if (target <= 0.0) return {0.0, 1};  // dense digraph: only the trivial bound

  // For a given λ with norm bound <= 1, the certified diameter is the
  // smallest D with D·log2(1/λ) + log2(D) >= target.
  const auto certified = [&](double lambda) {
    int d = 1;
    const double log_inv = std::log2(1.0 / lambda);
    while (d * log_inv + std::log2(static_cast<double>(d)) < target) ++d;
    return d;
  };

  // λ* where the norm bound crosses 1 (increasing in λ).
  const auto root = linalg::bisect(
      [&](double lam) { return weighted_norm_bound(arcs, n, lam) - 1.0; }, 1e-9,
      1.0 - 1e-9);
  double lam_star = root.x;
  if (!root.bracketed) {
    // Norm stays below 1 even near λ = 1 (e.g. a single cycle): any λ works;
    // larger λ gives a weaker bound, so use a λ close to 1 conservatively.
    lam_star = 1.0 - 1e-9;
  }

  // Every valid λ (norm <= 1, i.e. λ <= λ*) yields a true bound; the
  // certified D is decreasing in log2(1/λ), hence increasing in λ, so the
  // strongest certificate sits at λ* itself.
  DiameterBoundResult res;
  res.lambda = lam_star;
  res.diameter_bound = certified(lam_star);
  return res;
}

}  // namespace sysgo::core
