// Diameter lower bounds for weighted digraphs — the extension sketched in
// the paper's conclusion ("our technique can be applied ... to establish
// lower bounds on the diameter of weighted digraphs").
//
// Construction: index the line digraph by arcs; M(λ)_{a,b} = λ^{w(b)}
// whenever head(a) = tail(b).  A path x -> z of weight T and k arcs
// contributes λ^{T − w(first arc)} >= λ^T to (M^k) between its end arcs, so
// with ρ̂ = √(‖M‖₁·‖M‖∞) >= ‖M(λ)‖₂ and ρ̂ <= 1, summing over all ordered
// vertex pairs as in Theorem 4.1 yields
//
//   D·log2(1/λ) + log2(D) >= log2(n·(n−1)/m),
//
// where D is the weighted diameter and m the number of arcs.  The bound is
// rigorous for any λ with ρ̂(λ) <= 1; diameter_bound() maximizes it over λ.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace sysgo::core {

/// An arc with a positive integer length.
struct WeightedArc {
  int tail = 0;
  int head = 0;
  int weight = 1;  // >= 1
};

/// √(‖M(λ)‖₁ · ‖M(λ)‖∞) for the line-digraph matrix above — a cheap and
/// rigorous upper bound on ‖M(λ)‖₂, monotone increasing in λ.
[[nodiscard]] double weighted_norm_bound(const std::vector<WeightedArc>& arcs,
                                         int n, double lambda);

struct DiameterBoundResult {
  double lambda = 0.0;       // the λ used
  int diameter_bound = 0;    // certified weighted-diameter lower bound
};

/// Certified lower bound on the weighted diameter of the digraph (n
/// vertices, the given arcs).  Requires a strongly connected digraph for
/// the bound to be meaningful; returns the best bound over λ.
[[nodiscard]] DiameterBoundResult diameter_bound(
    const std::vector<WeightedArc>& arcs, int n);

}  // namespace sysgo::core
