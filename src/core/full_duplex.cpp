#include "core/full_duplex.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/polynomial.hpp"
#include "linalg/power_iteration.hpp"

namespace sysgo::core {

linalg::Matrix full_duplex_local_matrix(int t, int s, double lambda) {
  if (t < 1 || s < 2) throw std::invalid_argument("full_duplex_local_matrix: bad size");
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("full_duplex_local_matrix: need 0 < lambda < 1");
  linalg::Matrix m(static_cast<std::size_t>(t), static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i)
    for (int delta = 1; delta <= s - 1 && i + delta < t; ++delta)
      m(static_cast<std::size_t>(i), static_cast<std::size_t>(i + delta)) =
          std::pow(lambda, delta);
  return m;
}

double full_duplex_norm_bound(int s, double lambda) {
  return linalg::geometric_sum(s - 1, lambda);
}

double full_duplex_norm_exact(int t, int s, double lambda) {
  return linalg::operator_norm(full_duplex_local_matrix(t, s, lambda)).value;
}

}  // namespace sysgo::core
