// Full-duplex local matrix machinery (Section 6, Fig. 7).
//
// In the full-duplex mode every activation at a vertex is simultaneously a
// left and a right activation, so Mx(λ) (rows/columns ordered by round) is
// the banded matrix with entries λ, λ², …, λ^{s−1} on the first s−1
// superdiagonals.  Lemma 6.1: ‖M(λ)‖ <= λ + λ² + … + λ^{s−1}.
#pragma once

#include "linalg/matrix.hpp"

namespace sysgo::core {

/// The t x t full-duplex local matrix of Fig. 7: entry (i, i+δ) = λ^δ for
/// 1 <= δ <= s−1 (a vertex active at every round of the period).
[[nodiscard]] linalg::Matrix full_duplex_local_matrix(int t, int s, double lambda);

/// Lemma 6.1 bound λ + λ² + … + λ^{s−1}.
[[nodiscard]] double full_duplex_norm_bound(int s, double lambda);

/// Exact ‖Mx(λ)‖ of the t-round matrix by power iteration (always below
/// the Lemma 6.1 bound; approaches it as t grows).
[[nodiscard]] double full_duplex_norm_exact(int t, int s, double lambda);

}  // namespace sysgo::core
