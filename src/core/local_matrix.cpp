#include "core/local_matrix.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/polynomial.hpp"
#include "linalg/power_iteration.hpp"

namespace sysgo::core {

int LocalPattern::left_total() const {
  return std::accumulate(lefts.begin(), lefts.end(), 0);
}

int LocalPattern::right_total() const {
  return std::accumulate(rights.begin(), rights.end(), 0);
}

int LocalPattern::period() const { return left_total() + right_total(); }

int LocalPattern::left(int j) const {
  return lefts[static_cast<std::size_t>(j % k())];
}

int LocalPattern::right(int j) const {
  return rights[static_cast<std::size_t>(j % k())];
}

int LocalPattern::delay(int i, int j) const {
  if (j < i) throw std::invalid_argument("LocalPattern::delay: need j >= i");
  int d = 1;
  for (int c = i; c < j; ++c) d += right(c) + left(c + 1);
  return d;
}

bool LocalPattern::valid() const noexcept {
  if (lefts.empty() || lefts.size() != rights.size()) return false;
  for (int l : lefts)
    if (l < 1) return false;
  for (int r : rights)
    if (r < 1) return false;
  return true;
}

namespace {

void require(const LocalPattern& pat, int h, double lambda) {
  if (!pat.valid()) throw std::invalid_argument("LocalPattern: invalid blocks");
  if (h < pat.k()) throw std::invalid_argument("local matrix: need h >= k");
  if (!(lambda > 0.0 && lambda < 1.0))
    throw std::invalid_argument("local matrix: need 0 < lambda < 1");
}

}  // namespace

linalg::Matrix mx_matrix(const LocalPattern& pat, int h, double lambda) {
  require(pat, h, lambda);
  const int k = pat.k();
  std::vector<int> row_off(static_cast<std::size_t>(h) + 1, 0);
  std::vector<int> col_off(static_cast<std::size_t>(h) + 1, 0);
  for (int j = 0; j < h; ++j) {
    row_off[static_cast<std::size_t>(j) + 1] =
        row_off[static_cast<std::size_t>(j)] + pat.left(j);
    col_off[static_cast<std::size_t>(j) + 1] =
        col_off[static_cast<std::size_t>(j)] + pat.right(j);
  }
  linalg::Matrix m(static_cast<std::size_t>(row_off[static_cast<std::size_t>(h)]),
                   static_cast<std::size_t>(col_off[static_cast<std::size_t>(h)]));
  for (int i = 0; i < h; ++i) {
    for (int j = i; j < std::min(h, i + k); ++j) {
      const double base = std::pow(lambda, pat.delay(i, j));
      // Rows of block i are in reverse round order (offset a adds a rounds
      // before the block's last activation); columns of block j are in
      // round order (offset b adds b rounds after the block's first).
      for (int a = 0; a < pat.left(i); ++a)
        for (int b = 0; b < pat.right(j); ++b)
          m(static_cast<std::size_t>(row_off[static_cast<std::size_t>(i)] + a),
            static_cast<std::size_t>(col_off[static_cast<std::size_t>(j)] + b)) =
              base * std::pow(lambda, a + b);
    }
  }
  return m;
}

linalg::Matrix nx_matrix(const LocalPattern& pat, int h, double lambda) {
  require(pat, h, lambda);
  const int k = pat.k();
  linalg::Matrix m(static_cast<std::size_t>(h), static_cast<std::size_t>(h));
  for (int i = 0; i < h; ++i)
    for (int j = i; j < std::min(h, i + k); ++j)
      m(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          std::pow(lambda, pat.delay(i, j)) *
          linalg::delay_polynomial(pat.right(j), lambda);
  return m;
}

linalg::Matrix ox_matrix(const LocalPattern& pat, int h, double lambda) {
  require(pat, h, lambda);
  const int k = pat.k();
  linalg::Matrix m(static_cast<std::size_t>(h), static_cast<std::size_t>(h));
  for (int i = 0; i < h; ++i)
    for (int j = std::max(0, i - k + 1); j <= i; ++j)
      m(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          std::pow(lambda, pat.delay(j, i)) *
          linalg::delay_polynomial(pat.left(j), lambda);
  return m;
}

std::vector<double> lemma42_semi_eigenvector(const LocalPattern& pat, int h,
                                             double lambda) {
  require(pat, h, lambda);
  std::vector<double> e(static_cast<std::size_t>(h));
  int exponent = 0;
  for (int j = 0; j < h; ++j) {
    e[static_cast<std::size_t>(j)] = std::pow(lambda, exponent);
    exponent += pat.right(j) - pat.left(j + 1);
  }
  return e;
}

double local_norm_bound(const LocalPattern& pat, double lambda) {
  if (!pat.valid()) throw std::invalid_argument("LocalPattern: invalid blocks");
  return lambda *
         std::sqrt(linalg::delay_polynomial(pat.right_total(), lambda)) *
         std::sqrt(linalg::delay_polynomial(pat.left_total(), lambda));
}

double local_norm_exact(const LocalPattern& pat, int h, double lambda) {
  const auto m = mx_matrix(pat, h, lambda);
  return linalg::operator_norm(m).value;
}

}  // namespace sysgo::core
