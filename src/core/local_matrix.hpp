// Local delay matrices Mx(λ), Nx(λ), Ox(λ) of Section 4 (Figs. 1–3).
//
// The s-systolic protocol at one vertex x is characterized by alternating
// blocks of l_j left activations (incoming arcs) and r_j right activations
// (outgoing arcs), j = 0..k−1, with Σ(l_j + r_j) = s.  Over h >= k blocks:
//
//   Mx(λ): block B_{i,j} = λ^{d_{i,j}} Λ_{l_i} Λ_{r_j}ᵀ for i <= j < i+k,
//          where Λ_m = (1, λ, …, λ^{m−1})ᵀ and d_{i,j} is the delay from the
//          last activation of left block i to the first of right block j;
//   Nx(λ): rank-h restriction with entries λ^{d_{i,j}} p_{r_j}(λ);
//   Ox(λ): transpose-side restriction with entries λ^{d_{j,i}} p_{l_j}(λ);
//   e:     the common positive semi-eigenvector of Lemma 4.2,
//          e_j = λ^{Σ_{c<j}(r_c − l_{c+1})}.
//
// These feed Lemma 4.3: ‖Mx(λ)‖ <= λ·√(p_R(λ))·√(p_L(λ)) with L = Σl_j,
// R = Σr_j per period.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace sysgo::core {

/// One period of a local protocol: k alternating left/right blocks.
struct LocalPattern {
  std::vector<int> lefts;   // l_0 ... l_{k-1}, all >= 1
  std::vector<int> rights;  // r_0 ... r_{k-1}, all >= 1

  [[nodiscard]] int k() const noexcept { return static_cast<int>(lefts.size()); }
  [[nodiscard]] int left_total() const;    // L = Σ l_j
  [[nodiscard]] int right_total() const;   // R = Σ r_j
  [[nodiscard]] int period() const;        // s = L + R

  /// Block sizes extended periodically: l_j for any j >= 0.
  [[nodiscard]] int left(int j) const;
  [[nodiscard]] int right(int j) const;

  /// d_{i,j} = 1 + Σ_{c=i}^{j-1} (r_c + l_{c+1}), the rounds between the
  /// last activation of left block i and the first of right block j (j >= i).
  [[nodiscard]] int delay(int i, int j) const;

  /// Validation: k >= 1, all block lengths >= 1.
  [[nodiscard]] bool valid() const noexcept;
};

/// Mx(λ) over h blocks (h >= k): (Σ_{j<h} l_j) x (Σ_{j<h} r_j).
[[nodiscard]] linalg::Matrix mx_matrix(const LocalPattern& pat, int h, double lambda);

/// Nx(λ) over h blocks: h x h (Fig. 3 left).
[[nodiscard]] linalg::Matrix nx_matrix(const LocalPattern& pat, int h, double lambda);

/// Ox(λ) over h blocks: h x h (Fig. 3 right).
[[nodiscard]] linalg::Matrix ox_matrix(const LocalPattern& pat, int h, double lambda);

/// The semi-eigenvector e of Lemma 4.2 (h components, strictly positive).
[[nodiscard]] std::vector<double> lemma42_semi_eigenvector(const LocalPattern& pat,
                                                           int h, double lambda);

/// Lemma 4.3 norm bound λ·√(p_R)·√(p_L) for this pattern.
[[nodiscard]] double local_norm_bound(const LocalPattern& pat, double lambda);

/// Exact ‖Mx(λ)‖ over h blocks by power iteration; monotone nondecreasing
/// in h and always <= local_norm_bound (property-tested).
[[nodiscard]] double local_norm_exact(const LocalPattern& pat, int h, double lambda);

}  // namespace sysgo::core
