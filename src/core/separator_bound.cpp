#include "core/separator_bound.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/roots.hpp"

namespace sysgo::core {

SeparatorBoundResult separator_bound(double alpha, double ell, int s, Duplex duplex) {
  if (alpha <= 0.0 || ell <= 0.0)
    throw std::invalid_argument("separator_bound: need alpha, ell > 0");
  const double lam_star = lambda_star(s, duplex);
  const auto objective = [alpha, ell, s, duplex](double lam) {
    const double f = norm_bound_function(lam, s, duplex);
    return ell * (alpha - std::log2(f)) / std::log2(1.0 / lam);
  };
  // As λ -> 0 the objective tends to ell; the interesting region is
  // [tiny, λ*].  The objective is smooth and the default grid is dense
  // enough to isolate the single interior maximum.
  const auto max = linalg::maximize(objective, 1e-6, lam_star);
  return {max.value, max.x};
}

SeparatorBoundResult separator_bound(topology::Family family, int d, int s,
                                     Duplex duplex) {
  const auto params = separator::lemma31_params(family, d);
  return separator_bound(params.alpha, params.ell, s, duplex);
}

double diameter_coefficient(topology::Family family, int d) {
  const double logd = std::log2(static_cast<double>(d));
  using topology::Family;
  switch (family) {
    case Family::kButterfly:
    case Family::kWrappedButterflyDirected:
      return 2.0 / logd;
    case Family::kWrappedButterfly:
      return 1.5 / logd;
    case Family::kDeBruijnDirected:
    case Family::kDeBruijn:
    case Family::kKautzDirected:
    case Family::kKautz:
      return 1.0 / logd;
    default:
      break;  // classic testbed families: no asymptotic diameter coefficient
  }
  throw std::invalid_argument("diameter_coefficient: no analysis for " +
                              topology::family_name(family, d));
}

}  // namespace sysgo::core
