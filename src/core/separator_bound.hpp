// Topology-refined lower bounds (Theorem 5.1 and its full-duplex analogue,
// Section 6): for a family with an ⟨α, l⟩-separator,
//
//   e(s) = max over 0 < λ < 1 with F(λ, s) <= 1 of
//          l · (α − log2 F(λ, s)) / log2(1/λ),
//
// where F is the mode's norm-bound function.  Since α·l = 1 for every
// Lemma 3.1 family, the boundary value at F(λ)=1 recovers the general e(s);
// interior maxima give the improved entries of Figs. 5, 6, 8.
#pragma once

#include "core/bounds.hpp"
#include "separator/separator.hpp"

namespace sysgo::core {

struct SeparatorBoundResult {
  double e = 0.0;       // the bound coefficient of log2(n)
  double lambda = 0.0;  // the maximizing λ
};

/// Theorem 5.1 coefficient for separator parameters (α, l), period s
/// (kUnboundedPeriod for non-systolic) and duplex mode.
[[nodiscard]] SeparatorBoundResult separator_bound(double alpha, double ell, int s,
                                                   Duplex duplex);

/// Convenience: look up Lemma 3.1 (α, l) for the family and evaluate.
[[nodiscard]] SeparatorBoundResult separator_bound(topology::Family family, int d,
                                                   int s, Duplex duplex);

/// Diameter coefficient c such that diam = c·log2(n)·(1 − o(1)) for the
/// family (the trivial lower bound the paper's Fig. 6 quotes as "diam."
/// where it beats the matrix bound): BF/WBF→ 2/log d, WBF 1.5/log d,
/// DB/K 1/log d.
[[nodiscard]] double diameter_coefficient(topology::Family family, int d);

}  // namespace sysgo::core
