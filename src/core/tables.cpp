#include "core/tables.hpp"

#include "core/separator_bound.hpp"
#include "separator/separator.hpp"

namespace sysgo::core {

using topology::Family;

std::vector<Fig4Row> fig4_rows(const std::vector<int>& periods) {
  std::vector<Fig4Row> rows;
  rows.reserve(periods.size());
  for (int s : periods) {
    const double lam = lambda_star(s, Duplex::kHalf);
    rows.push_back({s, lam, e_coefficient(lam)});
  }
  return rows;
}

std::vector<Fig4Row> fig4_rows_paper() {
  return fig4_rows({3, 4, 5, 6, 7, 8, kUnboundedPeriod});
}

std::vector<std::pair<Family, int>> paper_family_list() {
  std::vector<std::pair<Family, int>> list;
  for (Family f : {Family::kButterfly, Family::kWrappedButterflyDirected,
                   Family::kWrappedButterfly, Family::kDeBruijnDirected,
                   Family::kDeBruijn, Family::kKautzDirected, Family::kKautz})
    for (int d : {2, 3}) list.emplace_back(f, d);
  return list;
}

namespace {

std::vector<TopologyBoundRow> topology_rows(const std::vector<int>& periods,
                                            Duplex duplex) {
  std::vector<TopologyBoundRow> rows;
  for (const auto& [family, d] : paper_family_list()) {
    TopologyBoundRow row;
    row.family = family;
    row.d = d;
    const auto params = separator::lemma31_params(family, d);
    row.alpha = params.alpha;
    row.ell = params.ell;
    row.e_by_period.reserve(periods.size());
    for (int s : periods)
      row.e_by_period.push_back(separator_bound(family, d, s, duplex).e);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

std::vector<TopologyBoundRow> fig5_rows(const std::vector<int>& periods) {
  return topology_rows(periods, Duplex::kHalf);
}

std::vector<Fig6Row> fig6_rows() {
  std::vector<Fig6Row> rows;
  for (const auto& [family, d] : paper_family_list()) {
    Fig6Row row;
    row.family = family;
    row.d = d;
    row.e_matrix = separator_bound(family, d, kUnboundedPeriod, Duplex::kHalf).e;
    row.e_diameter = diameter_coefficient(family, d);
    row.e_best = std::max(row.e_matrix, row.e_diameter);
    rows.push_back(row);
  }
  return rows;
}

std::vector<TopologyBoundRow> fig8_rows(const std::vector<int>& periods) {
  return topology_rows(periods, Duplex::kFull);
}

std::string period_label(int s) {
  return s == kUnboundedPeriod ? "inf" : std::to_string(s);
}

}  // namespace sysgo::core
