// Generators for the paper's numeric tables (Figs. 4, 5, 6 and 8).
// Each function recomputes a figure's rows from first principles; the bench
// binaries format them, and the test suite pins the digits the paper quotes.
#pragma once

#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "topology/topology.hpp"

namespace sysgo::core {

/// One row of Fig. 4: the general directed/half-duplex systolic bound.
struct Fig4Row {
  int s = 0;  // kUnboundedPeriod for the s = ∞ row
  double lambda = 0.0;
  double e = 0.0;
};
[[nodiscard]] std::vector<Fig4Row> fig4_rows(const std::vector<int>& periods);
/// The paper's selection: s = 3..8 plus s = ∞.
[[nodiscard]] std::vector<Fig4Row> fig4_rows_paper();

/// One row of a per-topology table (Figs. 5, 6, 8): coefficients of log2(n)
/// by systolic period for a family.
struct TopologyBoundRow {
  topology::Family family{};
  int d = 0;
  double alpha = 0.0;
  double ell = 0.0;
  std::vector<double> e_by_period;  // aligned with the periods argument
};

/// Fig. 5 (half-duplex/directed, systolic) rows for the given periods.
[[nodiscard]] std::vector<TopologyBoundRow> fig5_rows(const std::vector<int>& periods);

/// One row of Fig. 6 (non-systolic, half-duplex/directed).
struct Fig6Row {
  topology::Family family{};
  int d = 0;
  double e_matrix = 0.0;    // Theorem 5.1 at s = ∞
  double e_diameter = 0.0;  // trivial diameter coefficient
  double e_best = 0.0;      // max of the two (what the figure reports)
};
[[nodiscard]] std::vector<Fig6Row> fig6_rows();

/// Fig. 8 (full-duplex) rows for the given periods.
[[nodiscard]] std::vector<TopologyBoundRow> fig8_rows(const std::vector<int>& periods);

/// The families × degrees the paper tabulates (d = 2, 3 for each family).
[[nodiscard]] std::vector<std::pair<topology::Family, int>> paper_family_list();

/// Period label for table headers: "3".."8" or "inf".
[[nodiscard]] std::string period_label(int s);

}  // namespace sysgo::core
