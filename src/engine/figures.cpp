#include "engine/figures.hpp"

#include <algorithm>
#include <sstream>

#include "core/tables.hpp"
#include "engine/sweep.hpp"
#include "io/csv.hpp"
#include "util/table.hpp"

namespace sysgo::engine {

namespace {

const std::vector<int> kFig5Periods{3, 4, 5, 6, 7, 8};

}  // namespace

ScenarioSpec fig5_spec() {
  ScenarioSpec spec;
  spec.families = all_families();
  spec.degrees = {2, 3};
  spec.modes = {protocol::Mode::kHalfDuplex};
  spec.periods = kFig5Periods;
  spec.tasks = {Task::kBound};
  return spec;
}

ScenarioSpec fig6_spec() {
  ScenarioSpec spec;
  spec.families = all_families();
  spec.degrees = {2, 3};
  spec.modes = {protocol::Mode::kHalfDuplex};
  spec.periods = {core::kUnboundedPeriod};
  spec.tasks = {Task::kBound, Task::kDiameterBound};
  return spec;
}

std::string fig5_csv(SweepRunner& runner) {
  const auto records = runner.run(fig5_spec());
  std::ostringstream out;
  std::vector<std::string> header{"network", "d", "alpha", "ell"};
  for (int s : kFig5Periods) header.push_back("e_s" + core::period_label(s));
  out << io::csv_line(header);
  // Expansion order groups one row's periods consecutively per (family, d).
  const std::size_t per_row = kFig5Periods.size();
  for (std::size_t i = 0; i + per_row <= records.size(); i += per_row) {
    const SweepRecord& first = records[i];
    std::vector<std::string> cells{
        topology::family_name(first.key.family, first.key.d),
        std::to_string(first.key.d), util::format_fixed(first.alpha, 6),
        util::format_fixed(first.ell, 6)};
    for (std::size_t j = 0; j < per_row; ++j)
      cells.push_back(util::format_fixed(records[i + j].e, 4));
    out << io::csv_line(cells);
  }
  return out.str();
}

std::string fig6_csv(SweepRunner& runner) {
  const auto records = runner.run(fig6_spec());
  std::ostringstream out;
  out << io::csv_line({"network", "d", "e_matrix", "e_diameter", "e_best"});
  // Per (family, d): a kBound record at s = ∞ followed by kDiameterBound.
  for (std::size_t i = 0; i + 2 <= records.size(); i += 2) {
    const SweepRecord& matrix = records[i];
    const SweepRecord& diam = records[i + 1];
    out << io::csv_line({topology::family_name(matrix.key.family, matrix.key.d),
                         std::to_string(matrix.key.d),
                         util::format_fixed(matrix.e, 4),
                         util::format_fixed(diam.e, 4),
                         util::format_fixed(std::max(matrix.e, diam.e), 4)});
  }
  return out.str();
}

}  // namespace sysgo::engine
