// The paper's per-topology tables, stated as sweep specs and formatted from
// sweep records.  fig5_csv / fig6_csv are byte-identical to the direct
// io::fig5_csv / io::fig6_csv generators — the parity is pinned by
// tests/engine/test_figures.cpp and lets `sysgo sweep fig5|fig6` replace
// `sysgo table` output without disturbing downstream consumers.
#pragma once

#include <string>

#include "engine/scenario.hpp"

namespace sysgo::engine {

class SweepRunner;

/// Fig. 5 grid: all seven families × d ∈ {2, 3}, half-duplex separator
/// bounds at s = 3..8.
[[nodiscard]] ScenarioSpec fig5_spec();

/// Fig. 6 grid: the non-systolic (s = ∞) matrix bound plus the trivial
/// diameter coefficient per family.
[[nodiscard]] ScenarioSpec fig6_spec();

/// CSV renderings of the sweeps, byte-identical to io::fig5_csv/fig6_csv.
[[nodiscard]] std::string fig5_csv(SweepRunner& runner);
[[nodiscard]] std::string fig6_csv(SweepRunner& runner);

}  // namespace sysgo::engine
