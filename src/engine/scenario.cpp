#include "engine/scenario.hpp"

#include <functional>
#include <set>
#include <stdexcept>
#include <tuple>

namespace sysgo::engine {

using topology::Family;

std::string task_name(Task t) {
  switch (t) {
    case Task::kBound: return "bound";
    case Task::kDiameterBound: return "diameter";
    case Task::kSimulate: return "simulate";
    case Task::kAudit: return "audit";
    case Task::kSeparatorCheck: return "separator";
    case Task::kSolveGossip: return "solve-gossip";
    case Task::kSolveBroadcast: return "solve-broadcast";
    case Task::kSynthesize: return "synth";
  }
  return "?";
}

Task parse_task_name(const std::string& name) {
  if (name == "bound") return Task::kBound;
  if (name == "diameter") return Task::kDiameterBound;
  if (name == "simulate") return Task::kSimulate;
  if (name == "audit") return Task::kAudit;
  if (name == "separator") return Task::kSeparatorCheck;
  if (name == "solve-gossip") return Task::kSolveGossip;
  if (name == "solve-broadcast") return Task::kSolveBroadcast;
  if (name == "synth") return Task::kSynthesize;
  throw std::invalid_argument("unknown task: " + name);
}

std::string synth_eval_name(SynthEval e) {
  return e == SynthEval::kFull ? "full" : "incremental";
}

SynthEval parse_synth_eval_name(const std::string& name) {
  if (name == "full") return SynthEval::kFull;
  if (name == "incremental") return SynthEval::kIncremental;
  throw std::invalid_argument("unknown synth eval mode: " + name +
                              " (expected full|incremental)");
}

bool task_needs_dimension(Task t) noexcept {
  return t == Task::kSimulate || t == Task::kAudit ||
         t == Task::kSeparatorCheck || t == Task::kSolveGossip ||
         t == Task::kSolveBroadcast || t == Task::kSynthesize;
}

std::size_t ScenarioKeyHash::operator()(const ScenarioKey& k) const noexcept {
  std::size_t h = static_cast<std::size_t>(k.family);
  h = h * 1000003u + static_cast<std::size_t>(k.d);
  h = h * 1000003u + static_cast<std::size_t>(k.D);
  h = h * 1000003u + static_cast<std::size_t>(k.mode);
  return h;
}

std::vector<SweepJob> shard_jobs(const std::vector<SweepJob>& jobs,
                                 util::ShardSpec shard) {
  if (shard.count < 1 || shard.index < 1 || shard.index > shard.count)
    throw std::invalid_argument("invalid shard spec: " +
                                std::to_string(shard.index) + "/" +
                                std::to_string(shard.count));
  std::vector<SweepJob> out;
  out.reserve(jobs.size() / static_cast<std::size_t>(shard.count) + 1);
  for (std::size_t j = static_cast<std::size_t>(shard.index) - 1;
       j < jobs.size(); j += static_cast<std::size_t>(shard.count))
    out.push_back(jobs[j]);
  return out;
}

std::vector<Family> all_families() {
  return {Family::kButterfly,       Family::kWrappedButterflyDirected,
          Family::kWrappedButterfly, Family::kDeBruijnDirected,
          Family::kDeBruijn,         Family::kKautzDirected,
          Family::kKautz};
}

std::vector<Family> registry_families() {
  auto fams = all_families();
  fams.insert(fams.end(),
              {Family::kCycle, Family::kComplete, Family::kHypercube,
               Family::kCubeConnectedCycles, Family::kShuffleExchange,
               Family::kKnodel, Family::kRandomRegular, Family::kRandomGnp});
  return fams;
}

std::vector<SweepJob> ScenarioSpec::expand() const {
  std::vector<ScenarioKey> keys = explicit_keys;
  if (keys.empty()) {
    const std::vector<int> dims = dimensions.empty() ? std::vector<int>{0}
                                                     : dimensions;
    for (Family f : families)
      for (int d : degrees)
        for (int D : dims)
          for (protocol::Mode m : modes) keys.push_back({f, d, D, m});
  }

  // Grid expansion emits asymptotic tasks once per (family, d, mode, task,
  // period) with D normalized to 0, regardless of how many dimensions the
  // grid crosses them with.  Explicit keys skip the dedup so every key
  // produces the same task-shaped record group — consumers index explicit
  // sweeps by a fixed per-key stride.
  const bool dedup = explicit_keys.empty();
  std::set<std::tuple<Family, int, int, Task, int>> seen_asymptotic;
  std::vector<SweepJob> jobs;
  for (const ScenarioKey& key : keys) {
    for (Task task : tasks) {
      if (task_needs_dimension(task)) {
        if (key.D > 0) jobs.push_back({key, task, 0});
        continue;
      }
      ScenarioKey base = key;
      base.D = 0;
      const std::vector<int> ss =
          task == Task::kBound ? periods : std::vector<int>{0};
      for (int s : ss) {
        if (!dedup ||
            seen_asymptotic
                .emplace(base.family, base.d, static_cast<int>(base.mode), task, s)
                .second)
          jobs.push_back({base, task, s});
      }
    }
  }
  return jobs;
}

bool same_result(const SweepRecord& a, const SweepRecord& b) {
  return a.key == b.key && a.task == b.task && a.s == b.s && a.n == b.n &&
         a.alpha == b.alpha && a.ell == b.ell && a.e == b.e &&
         a.lambda == b.lambda && a.rounds == b.rounds &&
         a.diameter == b.diameter && a.sep_distance == b.sep_distance &&
         a.sep_min_size == b.sep_min_size && a.states == b.states &&
         a.group == b.group && a.budget == b.budget &&
         a.objective == b.objective && a.restarts == b.restarts &&
         a.accepted == b.accepted;
}

std::string family_token(Family f) {
  switch (f) {
    case Family::kButterfly: return "bf";
    case Family::kWrappedButterflyDirected: return "wbf-dir";
    case Family::kWrappedButterfly: return "wbf";
    case Family::kDeBruijnDirected: return "db-dir";
    case Family::kDeBruijn: return "db";
    case Family::kKautzDirected: return "kautz-dir";
    case Family::kKautz: return "kautz";
    case Family::kCycle: return "cycle";
    case Family::kComplete: return "complete";
    case Family::kHypercube: return "hypercube";
    case Family::kCubeConnectedCycles: return "ccc";
    case Family::kShuffleExchange: return "se";
    case Family::kKnodel: return "knodel";
    case Family::kRandomRegular: return "rr";
    case Family::kRandomGnp: return "gnp";
  }
  return "?";
}

Family parse_family_token(const std::string& token) {
  if (token == "bf") return Family::kButterfly;
  if (token == "wbf-dir") return Family::kWrappedButterflyDirected;
  if (token == "wbf") return Family::kWrappedButterfly;
  if (token == "db-dir") return Family::kDeBruijnDirected;
  if (token == "db") return Family::kDeBruijn;
  if (token == "kautz-dir") return Family::kKautzDirected;
  if (token == "kautz") return Family::kKautz;
  if (token == "cycle") return Family::kCycle;
  if (token == "complete") return Family::kComplete;
  if (token == "hypercube") return Family::kHypercube;
  if (token == "ccc") return Family::kCubeConnectedCycles;
  if (token == "se") return Family::kShuffleExchange;
  if (token == "knodel") return Family::kKnodel;
  if (token == "rr") return Family::kRandomRegular;
  if (token == "gnp") return Family::kRandomGnp;
  throw std::invalid_argument("unknown family: " + token);
}

std::string mode_name(protocol::Mode m) {
  return m == protocol::Mode::kFullDuplex ? "full" : "half";
}

protocol::Mode parse_mode_name(const std::string& name) {
  if (name == "half") return protocol::Mode::kHalfDuplex;
  if (name == "full") return protocol::Mode::kFullDuplex;
  throw std::invalid_argument("unknown mode: " + name);
}

core::Duplex duplex_of(protocol::Mode m) noexcept {
  return m == protocol::Mode::kFullDuplex ? core::Duplex::kFull
                                          : core::Duplex::kHalf;
}

}  // namespace sysgo::engine
