// Declarative scenario grids for the sweep engine.
//
// A ScenarioSpec names a grid of {family × degree d × dimension D × duplex
// mode} scenarios and the tasks to run on each; expand() turns it into the
// concrete job list the SweepRunner executes.  Every bench/example that
// used to hand-roll its own families×dimensions loop states its sweep as a
// spec instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "protocol/protocol.hpp"
#include "topology/random.hpp"
#include "topology/topology.hpp"
#include "util/parse.hpp"

namespace sysgo::engine {

/// What to compute for a scenario.
enum class Task {
  kBound,           // Theorem 5.1 separator bound (asymptotic, D-independent)
  kDiameterBound,   // trivial diameter coefficient (asymptotic, D-independent)
  kSimulate,        // measured gossip time of the edge-coloring schedule
  kAudit,           // Theorem 4.1 certified lower bound for the schedule
  kSeparatorCheck,  // BFS-verify the Lemma 3.1 separator + graph stats
  kSolveGossip,     // exact optimal gossip time (search::solve, n <= 12)
  kSolveBroadcast,  // exact optimal broadcast time from vertex 0
  kSynthesize,      // synth::synthesize a gossip schedule (multi-start
                    // annealing; see src/synth/)
};

/// Stable token used in CSV/JSON output and CLI flags:
/// "bound" | "diameter" | "simulate" | "audit" | "separator" |
/// "solve-gossip" | "solve-broadcast" | "synth".
[[nodiscard]] std::string task_name(Task t);
[[nodiscard]] Task parse_task_name(const std::string& name);  // throws

/// Asymptotic tasks hold for the whole family; they are emitted once per
/// (family, d, mode) with D = 0 instead of once per dimension.
[[nodiscard]] bool task_needs_dimension(Task t) noexcept;

/// Draft evaluation strategy for kSynthesize jobs (mirrors synth::EvalMode
/// without pulling synth headers into every engine consumer).  Results are
/// byte-identical across the two — incremental is purely a throughput knob,
/// which is why it is NOT part of the store's limits fingerprint (CI runs
/// both and diffs the outputs instead).
enum class SynthEval {
  kFull,
  kIncremental,
};

/// Stable token used in CLI flags: "full" | "incremental".
[[nodiscard]] std::string synth_eval_name(SynthEval e);
[[nodiscard]] SynthEval parse_synth_eval_name(const std::string& name);  // throws

/// One concrete scenario: a family member at (d, D) under a duplex mode.
/// D = 0 marks asymptotic (D-independent) jobs.
struct ScenarioKey {
  topology::Family family{};
  int d = 0;
  int D = 0;
  protocol::Mode mode = protocol::Mode::kHalfDuplex;
  friend bool operator==(const ScenarioKey&, const ScenarioKey&) = default;
};

struct ScenarioKeyHash {
  [[nodiscard]] std::size_t operator()(const ScenarioKey& k) const noexcept;
};

/// One unit of work for the runner.
struct SweepJob {
  ScenarioKey key;
  Task task{};
  /// kBound: the requested period s (core::kUnboundedPeriod for s = ∞);
  /// unused by the other tasks (their s comes from the built schedule).
  int s = 0;
  friend bool operator==(const SweepJob&, const SweepJob&) = default;
};

/// Per-task execution limits shared by every job of a run.  solve_threads
/// is the INNER solver parallelism (jobs already run concurrently on the
/// runner's pool; solver results are thread-count independent either way).
/// simulate_parallel_rounds turns on the simulator's within-round parallel
/// merges (GossipOptions::parallel) — a toggle, not a degree: the merges
/// run on the process-wide pool at its lane count, and results are
/// identical either way.
struct ExecutionLimits {
  int simulate_max_rounds = 1 << 20;
  bool simulate_parallel_rounds = false;
  int solve_max_rounds = 64;
  std::size_t solve_max_states = 20'000'000;
  unsigned solve_threads = 1;
  /// kSynthesize budgets: restarts × annealing iterations, plus an optional
  /// per-restart wall-clock cap (0 = none; a nonzero cap trades the
  /// thread-count determinism away).  synth_threads is the INNER restart
  /// parallelism, like solve_threads.
  int synth_restarts = 16;
  int synth_iterations = 4000;
  double synth_time_budget_ms = 0.0;
  unsigned synth_threads = 1;
  SynthEval synth_eval = SynthEval::kIncremental;
  /// Seed for every randomized component of a run: random-topology family
  /// members and the synthesizer's restart streams.  One seed per run —
  /// echoed by the CLI so any randomized sweep is reproducible.
  std::uint64_t seed = topology::kDefaultTopologySeed;
};

/// Declarative sweep grid.
///
/// expand() order is deterministic: family (outer) → degree → dimension →
/// mode → task (spec order) → period (innermost, kBound only).  Grid
/// expansion emits asymptotic tasks once per (family, d, mode) — at the
/// first dimension — while explicit keys emit every task for every key so
/// per-key record groups keep a uniform stride.  When `explicit_keys` is
/// non-empty it replaces the family×degree×dimension×mode grid (task ×
/// period expansion still applies per key).  An empty `dimensions` list
/// means "asymptotic tasks only": keys get D = 0 and dimension-dependent
/// tasks are skipped.
struct ScenarioSpec {
  std::vector<topology::Family> families;
  std::vector<int> degrees;
  std::vector<int> dimensions;
  std::vector<protocol::Mode> modes{protocol::Mode::kHalfDuplex};
  std::vector<int> periods;  // for kBound; may include core::kUnboundedPeriod
  std::vector<Task> tasks;
  std::vector<ScenarioKey> explicit_keys;
  ExecutionLimits limits;

  [[nodiscard]] std::vector<SweepJob> expand() const;
};

/// Deterministic round-robin partition of an expanded job list: job j
/// (0-based expansion order) belongs to shard (j mod shard.count) + 1, so
/// `count` processes running the same spec with shards 1..count cover the
/// grid disjointly and their result stores union into the unsharded run.
[[nodiscard]] std::vector<SweepJob> shard_jobs(const std::vector<SweepJob>& jobs,
                                               util::ShardSpec shard);

/// The seven families of the paper's tables, in registry order.
[[nodiscard]] std::vector<topology::Family> all_families();

/// Every registered family: the paper's seven plus the classic testbed
/// topologies (cycle, complete, hypercube, CCC, shuffle-exchange, Knödel)
/// and the seeded random families (connected d-regular, connected G(n, p)).
[[nodiscard]] std::vector<topology::Family> registry_families();

/// Structured result of one executed job.  Fields not meaningful for the
/// job's task keep their sentinel defaults.
struct SweepRecord {
  ScenarioKey key;
  Task task{};
  int s = 0;       // period (kUnboundedPeriod = ∞); schedule period for
                   // simulate/audit; 0 when not applicable
  int n = 0;       // vertex count (0 for asymptotic tasks)
  double alpha = 0.0;   // Lemma 3.1 separator parameters (bound/separator)
  double ell = 0.0;
  double e = 0.0;       // bound coefficient of log2(n) (bound/diameter/audit)
  double lambda = 0.0;  // maximizing / certified λ
  int rounds = -1;      // simulate: measured gossip time; audit: certified
                        // round lower bound; solve-*: exact optimum, or -1
                        // (see budget; states/group are also -1 when the
                        // member was oversized (n > 12) or unbuildable
                        // (n = 0))
  int diameter = -1;          // separator task
  int sep_distance = -1;      // separator task: BFS-verified distance
  std::int64_t sep_min_size = -1;  // separator task: min(|V1|, |V2|)
  std::int64_t states = -1;   // solve tasks: canonical states explored
  std::int64_t group = -1;    // solve tasks: automorphism subgroup order
  int budget = -1;      // solve tasks: 1 = state budget exhausted (raise
                        // solve_max_states), 0 = searched to completion;
                        // -1 = not applicable
  double objective = -1.0;    // synth: scalarized objective of the best
                              // schedule (synth::Objective::score)
  int restarts = -1;          // synth: annealing restarts run
  std::int64_t accepted = -1; // synth: accepted moves across restarts
  double millis = 0.0;  // wall-clock job time
};

/// Equality of everything except wall-clock timing.
[[nodiscard]] bool same_result(const SweepRecord& a, const SweepRecord& b);

/// Stable family token for CSV/JSON output and CLI flags: "bf" | "wbf-dir" |
/// "wbf" | "db-dir" | "db" | "kautz-dir" | "kautz" | "cycle" | "complete" |
/// "hypercube" | "ccc" | "se" | "knodel" | "rr" | "gnp".
[[nodiscard]] std::string family_token(topology::Family f);
[[nodiscard]] topology::Family parse_family_token(const std::string& token);  // throws

/// "half" | "full".
[[nodiscard]] std::string mode_name(protocol::Mode m);
[[nodiscard]] protocol::Mode parse_mode_name(const std::string& name);  // throws

/// The core-layer duplex discipline matching a protocol mode.
[[nodiscard]] core::Duplex duplex_of(protocol::Mode m) noexcept;

}  // namespace sysgo::engine
