#include "engine/sweep.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "core/separator_bound.hpp"
#include "graph/search.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "obs/wall_timer.hpp"
#include "protocol/builders.hpp"
#include "search/solver.hpp"
#include "search/state.hpp"
#include "separator/separator.hpp"
#include "simulator/batch.hpp"
#include "simulator/gossip_sim.hpp"
#include "store/result_store.hpp"
#include "synth/synthesizer.hpp"
#include "util/thread_pool.hpp"

namespace sysgo::engine {

namespace {

/// Engine observability (catalog in README "Observability").  Job latency
/// is recorded per task kind — the handles live in a Task-indexed array so
/// run_job pays one relaxed atomic, not a name lookup, per job.
struct EngineMetrics {
  obs::Counter& jobs_completed = obs::counter("engine.jobs_completed");
  obs::Gauge& jobs_inflight = obs::gauge("engine.jobs_inflight");
  obs::Gauge& inflight_highwater =
      obs::gauge("engine.jobs_inflight_highwater");
  obs::Counter& cache_hits = obs::counter("engine.cache.hits");
  obs::Counter& cache_misses = obs::counter("engine.cache.misses");
  std::array<obs::Histogram*, 8> task_micros{};
  // Per-task perf rollups (--perf): cycles/IPC/cache behavior next to the
  // latency histograms, under the same engine.task.<name> prefix.
  std::array<obs::perf::PerfRollup*, 8> task_perf{};

  EngineMetrics() {
    for (const Task t :
         {Task::kBound, Task::kDiameterBound, Task::kSimulate, Task::kAudit,
          Task::kSeparatorCheck, Task::kSolveGossip, Task::kSolveBroadcast,
          Task::kSynthesize}) {
      task_micros[static_cast<std::size_t>(t)] =
          &obs::histogram("engine.task." + task_name(t) + ".micros");
      // Leaked like every registry handle: rollups live for the process.
      task_perf[static_cast<std::size_t>(t)] =
          new obs::perf::PerfRollup("engine.task." + task_name(t));
    }
  }
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

[[maybe_unused]] const bool kEngineMetricsRegistered =
    (engine_metrics(), true);

/// In-flight accounting that survives the sentinel early-returns and any
/// exception a job throws.
struct InflightGuard {
  InflightGuard() {
    auto& em = engine_metrics();
    em.jobs_inflight.add(1);
    em.inflight_highwater.record_max(em.jobs_inflight.value());
  }
  ~InflightGuard() { engine_metrics().jobs_inflight.add(-1); }
};

/// Run body(i) for i in [0, count) honoring the options' threading choice:
/// serial, the process-wide pool, or a private pool of `threads` lanes.
void run_indexed_with_options(const SweepOptions& opts,
                              util::ThreadPool* own_pool, std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (opts.threads == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  util::ThreadPool& pool =
      own_pool != nullptr ? *own_pool : util::ThreadPool::instance();
  pool.run_indexed(count, body);
}

}  // namespace

// ------------------------------------------------------------ ArtifactCache

struct ArtifactCache::Entry {
  std::mutex mutex;
  std::shared_ptr<const ScenarioArtifacts> value;
};

std::shared_ptr<const ScenarioArtifacts> ArtifactCache::get_or_build(
    const ScenarioKey& key, std::uint64_t seed, const Builder& build) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = map_.try_emplace(SeededKey{key, seed});
    if (inserted) {
      it->second = std::make_shared<Entry>();
      ++misses_;
      engine_metrics().cache_misses.add(1);
    } else {
      ++hits_;
      engine_metrics().cache_hits.add(1);
    }
    entry = it->second;
  }
  // Build outside the map lock; concurrent requests for the same key wait
  // here on the single build.
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (!entry->value) entry->value = build();
  return entry->value;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {hits_, misses_};
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

// -------------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts)) {
  if (opts_.threads > 1)
    own_pool_ = std::make_unique<util::ThreadPool>(opts_.threads - 1);
}

SweepRunner::~SweepRunner() = default;

std::shared_ptr<const ScenarioArtifacts> SweepRunner::artifacts(
    const ScenarioKey& key, std::uint64_t seed) {
  const auto build = [&key, seed]() {
    auto art = std::make_shared<ScenarioArtifacts>();
    art->graph = topology::make_family(key.family, key.d, key.D, seed);
    art->schedule = protocol::edge_coloring_schedule(art->graph, key.mode);
    // The one structural validation of this scenario's schedule; every
    // task below executes the pre-validated flat form.  The coloring
    // schedule is built on the member's undirected support, so for the
    // directed families its half-duplex backward rounds activate reversals
    // absent from the digraph — membership is only checkable against
    // symmetric members.
    const bool check_membership = art->graph.is_symmetric();
    art->compiled = protocol::CompiledSchedule::compile(
        art->schedule, check_membership ? &art->graph : nullptr);
    return std::shared_ptr<const ScenarioArtifacts>(std::move(art));
  };
  if (!opts_.use_cache) return build();
  return cache_.get_or_build(key, seed, build);
}

SweepRecord SweepRunner::run_job(const SweepJob& job,
                                 const ExecutionLimits& limits) {
  const InflightGuard inflight;
  // One span per job, named by task so `sysgo trace report` breaks stages
  // down per task kind.  All naming/interning work sits behind armed().
  obs::trace::TraceSpan span(
      obs::trace::enabled()
          ? obs::trace::intern("engine.task." + task_name(job.task))
          : 0);
  if (span.armed()) {
    span.str_arg(obs::trace::intern("family"),
                 obs::trace::intern(family_token(job.key.family)));
    span.arg(obs::trace::intern("d"), job.key.d);
    span.arg(obs::trace::intern("D"), job.key.D);
    span.arg(obs::trace::intern("s"), job.s);
  }
  // After the span so the perf delta lands in the span's args before the
  // span closes (destruction runs in reverse order).
  obs::perf::PerfScope perf_scope(
      *engine_metrics().task_perf[static_cast<std::size_t>(job.task)]);
  if (perf_scope.armed()) perf_scope.attach(&span);
  const obs::WallTimer timer;
  SweepRecord r = run_job_impl(job, limits);
  r.millis = timer.millis();
  auto& em = engine_metrics();
  em.task_micros[static_cast<std::size_t>(job.task)]->record_micros(
      timer.micros());
  em.jobs_completed.add(1);
  return r;
}

SweepRecord SweepRunner::run_job_impl(const SweepJob& job,
                                      const ExecutionLimits& limits) {
  SweepRecord r;
  r.key = job.key;
  r.task = job.task;
  r.s = job.s;
  // The separator-analysis tasks only exist for the paper's seven
  // families; other registry members get a sentinel record — analytic
  // fields forced to -1, which no computed bound can produce — instead of
  // aborting the sweep.
  const bool needs_separator_analysis =
      job.task == Task::kBound || job.task == Task::kDiameterBound ||
      job.task == Task::kSeparatorCheck;
  if (needs_separator_analysis &&
      !topology::family_has_separator_analysis(job.key.family)) {
    r.alpha = r.ell = r.e = r.lambda = -1.0;
    return r;
  }
  switch (job.task) {
    case Task::kBound: {
      const auto params = separator::lemma31_params(job.key.family, job.key.d);
      r.alpha = params.alpha;
      r.ell = params.ell;
      const auto sb = core::separator_bound(job.key.family, job.key.d, job.s,
                                            duplex_of(job.key.mode));
      r.e = sb.e;
      r.lambda = sb.lambda;
      break;
    }
    case Task::kDiameterBound: {
      r.e = core::diameter_coefficient(job.key.family, job.key.d);
      break;
    }
    case Task::kSimulate: {
      const auto art = artifacts(job.key, limits.seed);
      r.n = art->compiled.n();
      r.s = art->compiled.period_length();
      simulator::GossipOptions gopts;
      gopts.parallel = limits.simulate_parallel_rounds;
      // One scratch matrix per worker thread for the whole sweep — simulate
      // jobs over a size band stop paying an allocation each.  Results are
      // identical to the per-call gossip_time (same code path underneath).
      thread_local simulator::GossipArena arena;
      r.rounds = simulator::gossip_time(
          art->compiled, limits.simulate_max_rounds, gopts, arena);
      break;
    }
    case Task::kAudit: {
      const auto art = artifacts(job.key, limits.seed);
      r.n = art->compiled.n();
      r.s = art->compiled.period_length();
      const auto audit = core::audit_schedule(art->compiled);
      r.lambda = audit.lambda_star;
      r.e = audit.e_coeff;
      r.rounds = audit.round_lower_bound;
      break;
    }
    case Task::kSeparatorCheck: {
      const auto art = artifacts(job.key, limits.seed);
      r.n = art->graph.vertex_count();
      r.diameter = graph::diameter(art->graph);
      const auto sep =
          separator::build_separator(job.key.family, job.key.d, job.key.D);
      r.alpha = sep.params.alpha;
      r.ell = sep.params.ell;
      const auto chk = separator::verify_separator(art->graph, sep);
      r.sep_distance = chk.min_distance;
      r.sep_min_size =
          static_cast<std::int64_t>(std::min(chk.size1, chk.size2));
      break;
    }
    case Task::kSolveGossip:
    case Task::kSolveBroadcast: {
      // Oversized or invalid grid members (n > 12, odd Knödel n, CCC with
      // D < 3, ...) yield a sentinel record (rounds/states/group all -1)
      // instead of killing the whole sweep.  The closed-form order check
      // keeps sentinels O(1) — no graph or schedule is ever built for
      // members the solver cannot take.
      std::int64_t order;
      try {
        order = topology::family_order(job.key.family, job.key.d, job.key.D);
      } catch (const std::invalid_argument&) {
        break;  // unbuildable member: sentinel with n = 0
      }
      if (order > search::kMaxVertices) {
        r.n = static_cast<int>(
            std::min<std::int64_t>(order, std::numeric_limits<int>::max()));
        break;
      }
      // Solvable members are tiny (n <= 12): build just the graph, not the
      // artifact bundle — its edge-coloring schedule is never read here.
      const auto g = topology::make_family(job.key.family, job.key.d, job.key.D,
                                           limits.seed);
      r.n = g.vertex_count();
      search::SolveOptions so;
      so.problem = job.task == Task::kSolveGossip
                       ? search::Problem::kGossip
                       : search::Problem::kBroadcast;
      so.mode = job.key.mode;
      so.max_rounds = limits.solve_max_rounds;
      so.max_states = limits.solve_max_states;
      so.threads = limits.solve_threads;
      const auto sr = search::solve(g, so);
      r.rounds = sr.rounds;
      r.states = static_cast<std::int64_t>(sr.states_explored);
      r.group = static_cast<std::int64_t>(sr.group_order);
      r.budget = sr.budget_exhausted ? 1 : 0;
      break;
    }
    case Task::kSynthesize: {
      // Unbuildable members (odd random-regular n*d, out-of-cap D, ...)
      // yield a sentinel record (n = 0, rounds = -1) like the solve tasks
      // instead of aborting the sweep.
      try {
        (void)topology::family_order(job.key.family, job.key.d, job.key.D);
      } catch (const std::invalid_argument&) {
        break;
      }
      // Build just the graph: the artifact bundle's edge-coloring schedule
      // would go unused (the synthesizer derives its own warm starts).
      const auto g = topology::make_family(job.key.family, job.key.d,
                                           job.key.D, limits.seed);
      r.n = g.vertex_count();
      synth::SynthOptions so;
      so.mode = job.key.mode;
      so.objective.max_rounds = limits.simulate_max_rounds;
      so.restarts = limits.synth_restarts;
      so.iterations = limits.synth_iterations;
      so.time_budget_ms = limits.synth_time_budget_ms;
      so.threads = limits.synth_threads;
      so.seed = limits.seed;
      so.eval = limits.synth_eval == SynthEval::kFull
                    ? synth::EvalMode::kFull
                    : synth::EvalMode::kIncremental;
      const auto sr = synth::synthesize(g, so);
      r.s = sr.schedule.period_length();
      r.rounds = sr.objective.rounds;
      r.objective = sr.objective.score();
      r.restarts = sr.restarts_run;
      r.accepted = sr.moves_accepted;
      break;
    }
  }
  return r;
}

SweepRecord SweepRunner::run_or_fetch(const SweepJob& job,
                                      const ExecutionLimits& limits) {
  if (opts_.store == nullptr) {
    executed_.fetch_add(1, std::memory_order_relaxed);
    return run_job(job, limits);
  }
  const auto key = store::make_store_key(job, limits);
  if (opts_.resume) {
    if (auto hit = opts_.store->lookup(key)) {
      store_hits_.fetch_add(1, std::memory_order_relaxed);
      return *hit;
    }
  }
  SweepRecord r = run_job(job, limits);
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.store->insert(key, r) == store::InsertOutcome::kConflict)
    store_conflicts_.fetch_add(1, std::memory_order_relaxed);
  return r;
}

SweepRunner::RunStats SweepRunner::run_stats() const {
  return {executed_.load(), store_hits_.load(), store_conflicts_.load()};
}

std::vector<SweepRecord> SweepRunner::run_jobs(const std::vector<SweepJob>& jobs,
                                               const ExecutionLimits& limits) {
  std::vector<SweepRecord> records(jobs.size());
  run_indexed_with_options(opts_, own_pool_.get(), jobs.size(),
                           [&](std::size_t i) {
                             records[i] = run_or_fetch(jobs[i], limits);
                             if (opts_.on_record) opts_.on_record(i, records[i]);
                           });
  return records;
}

std::vector<SweepRecord> SweepRunner::run(const ScenarioSpec& spec) {
  return run_jobs(spec.expand(), spec.limits);
}

// ---------------------------------------------------------------- run_cases

std::vector<CaseRecord> run_cases(const std::vector<ScheduleCase>& cases,
                                  const SweepOptions& opts) {
  std::unique_ptr<util::ThreadPool> own_pool;
  if (opts.threads > 1)
    own_pool = std::make_unique<util::ThreadPool>(opts.threads - 1);
  std::vector<CaseRecord> records(cases.size());
  run_indexed_with_options(opts, own_pool.get(), cases.size(),
                           [&](std::size_t i) {
                             const obs::WallTimer timer;
                             const ScheduleCase& c = cases[i];
                             CaseRecord& r = records[i];
                             r.name = c.name;
                             r.n = c.schedule.n;
                             r.s = c.schedule.period_length();
                             const auto compiled =
                                 protocol::CompiledSchedule::compile(c.schedule);
                             thread_local simulator::GossipArena arena;
                             r.measured = simulator::gossip_time(
                                 compiled, c.max_rounds, {}, arena);
                             r.audit = core::audit_schedule(compiled);
                             r.millis = timer.millis();
                           });
  return records;
}

}  // namespace sysgo::engine
