// Parallel scenario-sweep runner.
//
// Executes the jobs of a ScenarioSpec on the persistent thread pool with a
// keyed artifact cache: every task of one (family, d, D, mode) scenario —
// e.g. the upper-bound simulation and the lower-bound audit — shares a
// single build of the member digraph and its edge-coloring schedule.
// Records come back in expansion order regardless of execution
// interleaving, so threaded and serial sweeps produce identical output.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/audit.hpp"
#include "engine/scenario.hpp"
#include "graph/digraph.hpp"
#include "protocol/compiled.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::util {
class ThreadPool;
}

namespace sysgo::store {
class ResultStore;
}

namespace sysgo::engine {

/// Artifacts shared by every task of one scenario key.  The schedule is
/// compiled (and thereby validated against the member digraph) exactly once
/// per scenario; simulate and audit both execute the compiled form.
struct ScenarioArtifacts {
  graph::Digraph graph;
  protocol::SystolicSchedule schedule;  // edge-coloring schedule in key.mode
  protocol::CompiledSchedule compiled;  // flat execution form of `schedule`
};

/// Build-once cache of scenario artifacts, safe for concurrent lookups.
/// Concurrent requests for the same key wait on a single build.  The seed
/// is part of the cache key: random-family members differ per seed, and a
/// runner reused across run_jobs calls with different seeds must not serve
/// the first seed's graphs.
class ArtifactCache {
 public:
  using Builder = std::function<std::shared_ptr<const ScenarioArtifacts>()>;

  [[nodiscard]] std::shared_ptr<const ScenarioArtifacts> get_or_build(
      const ScenarioKey& key, std::uint64_t seed, const Builder& build);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
  };
  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Entry;
  struct SeededKey {
    ScenarioKey key;
    std::uint64_t seed = 0;
    friend bool operator==(const SeededKey&, const SeededKey&) = default;
  };
  struct SeededKeyHash {
    [[nodiscard]] std::size_t operator()(const SeededKey& k) const noexcept {
      return ScenarioKeyHash{}(k.key) * 1000003u ^
             static_cast<std::size_t>(k.seed);
    }
  };
  mutable std::mutex mutex_;
  std::unordered_map<SeededKey, std::shared_ptr<Entry>, SeededKeyHash> map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

struct SweepOptions {
  /// 0: run on the process-wide pool; 1: the job loop runs on the calling
  /// thread (individual jobs may still use the process-wide pool
  /// internally, e.g. diameter BFS); k > 1: a private pool with k lanes
  /// (k - 1 workers plus the calling thread).
  unsigned threads = 0;
  bool use_cache = true;
  /// Persistent result store (not owned; must outlive the runner).  When
  /// set, every finished record is written back under its store key; with
  /// `resume` also set, the store is consulted BEFORE dispatch and hits
  /// are returned verbatim — stored wall-clock included, so a warm re-run
  /// emits byte-identical output without executing a single task.
  store::ResultStore* store = nullptr;
  bool resume = false;
  /// Invoked as each job finishes, possibly from worker threads and out of
  /// order; `index` is the job's position in the deterministic record list.
  /// Store hits fire it too (they are records like any other).
  std::function<void(std::size_t index, const SweepRecord&)> on_record;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});
  ~SweepRunner();

  /// Expand and execute the spec.  Records are in expansion order.
  [[nodiscard]] std::vector<SweepRecord> run(const ScenarioSpec& spec);

  /// Execute a pre-expanded job list (records in job order).
  [[nodiscard]] std::vector<SweepRecord> run_jobs(
      const std::vector<SweepJob>& jobs, const ExecutionLimits& limits = {});

  [[nodiscard]] ArtifactCache::Stats cache_stats() const {
    return cache_.stats();
  }

  /// Executed-vs-fetched accounting, accumulated across run/run_jobs calls
  /// (the CI warm-store check asserts executed == 0 on a resumed run).
  struct RunStats {
    std::size_t executed = 0;         // jobs actually computed
    std::size_t store_hits = 0;       // jobs served from the result store
    std::size_t store_conflicts = 0;  // write-backs diverging from the store
  };
  [[nodiscard]] RunStats run_stats() const;

 private:
  /// `seed` feeds random-topology members (deterministic families ignore
  /// it) and is part of the cache key.
  [[nodiscard]] std::shared_ptr<const ScenarioArtifacts> artifacts(
      const ScenarioKey& key, std::uint64_t seed);
  /// run_job_impl computes the record; run_job wraps it in the wall-clock
  /// measurement (SweepRecord::millis) and the obs accounting (per-task
  /// latency histogram, jobs in-flight/completed).
  [[nodiscard]] SweepRecord run_job(const SweepJob& job,
                                    const ExecutionLimits& limits);
  [[nodiscard]] SweepRecord run_job_impl(const SweepJob& job,
                                         const ExecutionLimits& limits);
  /// run_job behind the result store: consult on resume, write back after
  /// execution.
  [[nodiscard]] SweepRecord run_or_fetch(const SweepJob& job,
                                         const ExecutionLimits& limits);

  SweepOptions opts_;
  ArtifactCache cache_;
  std::unique_ptr<util::ThreadPool> own_pool_;
  std::atomic<std::size_t> executed_{0};
  std::atomic<std::size_t> store_hits_{0};
  std::atomic<std::size_t> store_conflicts_{0};
};

/// A named concrete schedule to validate (measured time + certified audit);
/// the corpus form used by the validation harness.
struct ScheduleCase {
  std::string name;
  protocol::SystolicSchedule schedule;
  int max_rounds = 1 << 20;
};

struct CaseRecord {
  std::string name;
  int n = 0;
  int s = 0;  // schedule period
  int measured = -1;  // gossip time; -1 when incomplete within max_rounds
  core::AuditResult audit{};
  double millis = 0.0;
};

/// Run every case (simulate + audit) on the pool; records in corpus order.
[[nodiscard]] std::vector<CaseRecord> run_cases(
    const std::vector<ScheduleCase>& cases, const SweepOptions& opts = {});

}  // namespace sysgo::engine
