#include "graph/coloring.hpp"

#include <algorithm>

namespace sysgo::graph {

EdgeColoring greedy_edge_coloring(const Digraph& g) {
  EdgeColoring out;
  out.edges = g.undirected_edges();
  out.colors.assign(out.edges.size(), -1);

  // Colors already used at each vertex, as bitsets over small color ids.
  const int n = g.vertex_count();
  std::vector<std::vector<char>> used(static_cast<std::size_t>(n));
  auto color_free = [&](int v, int c) {
    const auto& u = used[static_cast<std::size_t>(v)];
    return c >= static_cast<int>(u.size()) || !u[static_cast<std::size_t>(c)];
  };
  auto mark = [&](int v, int c) {
    auto& u = used[static_cast<std::size_t>(v)];
    if (c >= static_cast<int>(u.size())) u.resize(static_cast<std::size_t>(c) + 1, 0);
    u[static_cast<std::size_t>(c)] = 1;
  };

  for (std::size_t i = 0; i < out.edges.size(); ++i) {
    const auto [u, v] = out.edges[i];
    int c = 0;
    while (!(color_free(u, c) && color_free(v, c))) ++c;
    out.colors[i] = c;
    mark(u, c);
    mark(v, c);
    out.color_count = std::max(out.color_count, c + 1);
  }
  return out;
}

bool is_proper_edge_coloring(const EdgeColoring& c, int n) {
  if (c.edges.size() != c.colors.size()) return false;
  // (vertex, color) pairs must be unique.
  std::vector<std::pair<long long, int>> seen;
  seen.reserve(2 * c.edges.size());
  for (std::size_t i = 0; i < c.edges.size(); ++i) {
    const auto [u, v] = c.edges[i];
    const int col = c.colors[i];
    if (u < 0 || u >= n || v < 0 || v >= n || col < 0) return false;
    seen.emplace_back(static_cast<long long>(u) * c.edges.size() + col, 0);
    seen.emplace_back(static_cast<long long>(v) * c.edges.size() + col, 0);
  }
  std::sort(seen.begin(), seen.end());
  return std::adjacent_find(seen.begin(), seen.end()) == seen.end();
}

}  // namespace sysgo::graph
