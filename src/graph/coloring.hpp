// Proper edge colorings.
//
// Periodic ("traffic-light") protocols in the sense of Liestman–Richards
// activate one color class per round; any proper edge coloring therefore
// induces a systolic schedule.  Greedy coloring uses at most 2Δ−1 colors,
// which is enough for protocol construction (we never need optimality).
#pragma once

#include <utility>
#include <vector>

#include "graph/digraph.hpp"

namespace sysgo::graph {

struct EdgeColoring {
  /// Edge list (u < v) in the order colors are indexed.
  std::vector<std::pair<int, int>> edges;
  /// colors[i] is the color of edges[i], in [0, color_count).
  std::vector<int> colors;
  int color_count = 0;
};

/// Greedy proper edge coloring of the undirected support of g.
[[nodiscard]] EdgeColoring greedy_edge_coloring(const Digraph& g);

/// Validity check: no two edges of equal color share an endpoint.
[[nodiscard]] bool is_proper_edge_coloring(const EdgeColoring& c, int n);

}  // namespace sysgo::graph
