#include "graph/digraph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sysgo::graph {

Digraph::Digraph(int n, std::vector<Arc> arcs) : n_(n), arcs_(std::move(arcs)) {
  finalize();
}

void Digraph::add_arc(int tail, int head) {
  if (tail < 0 || tail >= n_ || head < 0 || head >= n_)
    throw std::out_of_range("Digraph::add_arc: vertex out of range");
  finalized_ = false;
  arcs_.push_back({tail, head});
}

void Digraph::add_edge(int u, int v) {
  add_arc(u, v);
  add_arc(v, u);
}

void Digraph::finalize() {
  for (const Arc& a : arcs_)
    if (a.tail < 0 || a.tail >= n_ || a.head < 0 || a.head >= n_)
      throw std::out_of_range("Digraph::finalize: arc endpoint out of range");
  std::sort(arcs_.begin(), arcs_.end());
  arcs_.erase(std::unique(arcs_.begin(), arcs_.end()), arcs_.end());

  out_offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  in_offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const Arc& a : arcs_) {
    ++out_offsets_[static_cast<std::size_t>(a.tail) + 1];
    ++in_offsets_[static_cast<std::size_t>(a.head) + 1];
  }
  for (int v = 0; v < n_; ++v) {
    out_offsets_[static_cast<std::size_t>(v) + 1] += out_offsets_[v];
    in_offsets_[static_cast<std::size_t>(v) + 1] += in_offsets_[v];
  }
  out_adj_.resize(arcs_.size());
  in_adj_.resize(arcs_.size());
  std::vector<std::size_t> out_fill(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<std::size_t> in_fill(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const Arc& a : arcs_) {
    out_adj_[out_fill[a.tail]++] = a.head;
    in_adj_[in_fill[a.head]++] = a.tail;
  }
  // arcs_ is sorted, so out_adj_ per vertex is sorted; sort in_adj_ rows too.
  for (int v = 0; v < n_; ++v)
    std::sort(in_adj_.begin() + static_cast<std::ptrdiff_t>(in_offsets_[v]),
              in_adj_.begin() + static_cast<std::ptrdiff_t>(in_offsets_[v + 1]));
  finalized_ = true;
}

std::span<const int> Digraph::out_neighbors(int v) const noexcept {
  assert(finalized_);
  return {out_adj_.data() + out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]};
}

std::span<const int> Digraph::in_neighbors(int v) const noexcept {
  assert(finalized_);
  return {in_adj_.data() + in_offsets_[v], in_offsets_[v + 1] - in_offsets_[v]};
}

int Digraph::out_degree(int v) const noexcept {
  return static_cast<int>(out_neighbors(v).size());
}

int Digraph::in_degree(int v) const noexcept {
  return static_cast<int>(in_neighbors(v).size());
}

int Digraph::max_out_degree() const noexcept {
  int m = 0;
  for (int v = 0; v < n_; ++v) m = std::max(m, out_degree(v));
  return m;
}

int Digraph::max_degree_undirected() const noexcept {
  int m = 0;
  for (int v = 0; v < n_; ++v) m = std::max(m, (in_degree(v) + out_degree(v)) / 2);
  return m;
}

bool Digraph::has_arc(int tail, int head) const noexcept {
  assert(finalized_);
  if (tail < 0 || tail >= n_) return false;
  const auto nbrs = out_neighbors(tail);
  return std::binary_search(nbrs.begin(), nbrs.end(), head);
}

bool Digraph::is_symmetric() const noexcept {
  assert(finalized_);
  for (const Arc& a : arcs_)
    if (!has_arc(a.head, a.tail)) return false;
  return true;
}

Digraph Digraph::reverse() const {
  std::vector<Arc> rev;
  rev.reserve(arcs_.size());
  for (const Arc& a : arcs_) rev.push_back(reversed(a));
  return Digraph(n_, std::move(rev));
}

Digraph Digraph::symmetric_closure() const {
  std::vector<Arc> all(arcs_.begin(), arcs_.end());
  for (const Arc& a : arcs_) all.push_back(reversed(a));
  return Digraph(n_, std::move(all));
}

std::vector<std::pair<int, int>> Digraph::undirected_edges() const {
  std::vector<std::pair<int, int>> edges;
  for (const Arc& a : arcs_) {
    if (a.tail == a.head) continue;  // self-loop: useless for communication
    const int u = std::min(a.tail, a.head);
    const int v = std::max(a.tail, a.head);
    edges.emplace_back(u, v);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace sysgo::graph
