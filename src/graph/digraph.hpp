// Directed graph with CSR adjacency.
//
// Networks are modelled as digraphs (Section 3 of the paper): undirected
// graphs appear as symmetric digraphs (every arc has its opposite).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace sysgo::graph {

/// A communication link (tail, head): tail transmits to head.
struct Arc {
  int tail = 0;
  int head = 0;
  friend bool operator==(const Arc&, const Arc&) = default;
  friend auto operator<=>(const Arc&, const Arc&) = default;
};

[[nodiscard]] constexpr Arc reversed(Arc a) noexcept { return {a.head, a.tail}; }

/// Immutable-after-finalize digraph.  Build with add_arc(), then call
/// finalize() (or construct from an arc list) before queries.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(int n) : n_(n) {}
  Digraph(int n, std::vector<Arc> arcs);

  void add_arc(int tail, int head);
  /// Adds (u, v) and (v, u).
  void add_edge(int u, int v);

  /// Sort adjacency, drop duplicate arcs, build in/out CSR indexes.
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] int vertex_count() const noexcept { return n_; }
  [[nodiscard]] std::size_t arc_count() const noexcept { return arcs_.size(); }

  /// All arcs, sorted by (tail, head).  Requires finalize().
  [[nodiscard]] std::span<const Arc> arcs() const noexcept { return arcs_; }

  /// Out-neighbours / in-neighbours of v.  Requires finalize().
  [[nodiscard]] std::span<const int> out_neighbors(int v) const noexcept;
  [[nodiscard]] std::span<const int> in_neighbors(int v) const noexcept;

  [[nodiscard]] int out_degree(int v) const noexcept;
  [[nodiscard]] int in_degree(int v) const noexcept;
  [[nodiscard]] int max_out_degree() const noexcept;
  /// Max over vertices of (in_degree + out_degree) / 2 for symmetric
  /// digraphs = the undirected degree.
  [[nodiscard]] int max_degree_undirected() const noexcept;

  /// O(log deg) membership test.  Requires finalize().
  [[nodiscard]] bool has_arc(int tail, int head) const noexcept;

  /// True when every arc has its opposite (an undirected graph).
  [[nodiscard]] bool is_symmetric() const noexcept;

  /// Digraph with every arc reversed.
  [[nodiscard]] Digraph reverse() const;

  /// Symmetric closure: adds the opposite of every arc.
  [[nodiscard]] Digraph symmetric_closure() const;

  /// Undirected edge list {u, v} with u < v, one entry per unordered pair
  /// (self-loops dropped).  Meaningful for any digraph; used by colorings.
  [[nodiscard]] std::vector<std::pair<int, int>> undirected_edges() const;

 private:
  int n_ = 0;
  bool finalized_ = false;
  std::vector<Arc> arcs_;
  std::vector<std::size_t> out_offsets_;
  std::vector<int> out_adj_;
  std::vector<std::size_t> in_offsets_;
  std::vector<int> in_adj_;
};

}  // namespace sysgo::graph
