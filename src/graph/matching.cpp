#include "graph/matching.hpp"

#include <algorithm>

namespace sysgo::graph {

bool is_half_duplex_matching(std::span<const Arc> arcs, int n) {
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  for (const Arc& a : arcs) {
    if (a.tail < 0 || a.tail >= n || a.head < 0 || a.head >= n) return false;
    if (a.tail == a.head) return false;
    if (used[a.tail] || used[a.head]) return false;
    used[a.tail] = used[a.head] = 1;
  }
  return true;
}

bool is_full_duplex_matching(std::span<const Arc> arcs, int n) {
  // Pair id per vertex: 0 = unused, otherwise 1 + index of its partner.
  std::vector<int> partner(static_cast<std::size_t>(n), -1);
  std::vector<Arc> sorted(arcs.begin(), arcs.end());
  std::sort(sorted.begin(), sorted.end());
  for (const Arc& a : sorted) {
    if (a.tail < 0 || a.tail >= n || a.head < 0 || a.head >= n) return false;
    if (a.tail == a.head) return false;
    // Opposite arc must be active too.
    if (!std::binary_search(sorted.begin(), sorted.end(), reversed(a))) return false;
    // Endpoints may only pair with each other.
    if (partner[a.tail] != -1 && partner[a.tail] != a.head) return false;
    if (partner[a.head] != -1 && partner[a.head] != a.tail) return false;
    partner[a.tail] = a.head;
    partner[a.head] = a.tail;
  }
  return true;
}

std::vector<Arc> greedy_matching(std::span<const Arc> pool, int n) {
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  std::vector<Arc> out;
  for (const Arc& a : pool) {
    if (a.tail == a.head) continue;
    if (used[a.tail] || used[a.head]) continue;
    used[a.tail] = used[a.head] = 1;
    out.push_back(a);
  }
  return out;
}

}  // namespace sysgo::graph
