// Matching predicates for communication rounds.
//
// A gossip round must be a matching (whispering / processor-bound model):
// half-duplex — no two active arcs share an endpoint; full-duplex — active
// arcs come in opposite pairs, and distinct pairs share no endpoint.
#pragma once

#include <span>
#include <vector>

#include "graph/digraph.hpp"

namespace sysgo::graph {

/// Half-duplex/directed matching: no two arcs share any endpoint
/// (a vertex may appear in at most one arc, as tail or head).
[[nodiscard]] bool is_half_duplex_matching(std::span<const Arc> arcs, int n);

/// Full-duplex matching: every arc's opposite is present, no self-loops,
/// and no endpoint belongs to two different unordered pairs.
[[nodiscard]] bool is_full_duplex_matching(std::span<const Arc> arcs, int n);

/// Greedy maximal half-duplex matching from an arc pool (used by random
/// protocol generators).  Arcs are taken in the order given.
[[nodiscard]] std::vector<Arc> greedy_matching(std::span<const Arc> pool, int n);

}  // namespace sysgo::graph
