#include "graph/search.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "util/parallel.hpp"

namespace sysgo::graph {
namespace {

// BFS into a caller-provided frontier/dist buffer; returns #reached.
int bfs_into(const Digraph& g, const std::vector<int>& sources,
             std::vector<int>& dist, std::vector<int>& queue) {
  std::fill(dist.begin(), dist.end(), kUnreachable);
  queue.clear();
  for (int s : sources) {
    if (s < 0 || s >= g.vertex_count())
      throw std::out_of_range("bfs: source out of range");
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    const int du = dist[u];
    for (int v : g.out_neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return static_cast<int>(queue.size());
}

}  // namespace

std::vector<int> bfs_distances(const Digraph& g, int src) {
  std::vector<int> dist(static_cast<std::size_t>(g.vertex_count()));
  std::vector<int> queue;
  queue.reserve(dist.size());
  bfs_into(g, {src}, dist, queue);
  return dist;
}

std::vector<int> multi_source_bfs(const Digraph& g, const std::vector<int>& sources) {
  std::vector<int> dist(static_cast<std::size_t>(g.vertex_count()));
  std::vector<int> queue;
  queue.reserve(dist.size());
  bfs_into(g, sources, dist, queue);
  return dist;
}

int distance(const Digraph& g, int u, int v) { return bfs_distances(g, u)[v]; }

int diameter(const Digraph& g) {
  const int n = g.vertex_count();
  if (n == 0) return 0;
  std::atomic<int> worst{0};
  std::atomic<bool> disconnected{false};
  util::parallel_for_blocks(
      0, static_cast<std::size_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<int> dist(static_cast<std::size_t>(n));
        std::vector<int> queue;
        queue.reserve(dist.size());
        int local = 0;
        for (std::size_t s = lo; s < hi && !disconnected.load(); ++s) {
          const int reached = bfs_into(g, {static_cast<int>(s)}, dist, queue);
          if (reached < n) {
            disconnected = true;
            return;
          }
          local = std::max(local, *std::max_element(dist.begin(), dist.end()));
        }
        int cur = worst.load();
        while (local > cur && !worst.compare_exchange_weak(cur, local)) {
        }
      },
      64);
  if (disconnected) return kUnreachable;
  return worst.load();
}

bool is_strongly_connected(const Digraph& g) {
  const int n = g.vertex_count();
  if (n == 0) return true;
  std::vector<int> dist(static_cast<std::size_t>(n));
  std::vector<int> queue;
  queue.reserve(dist.size());
  if (bfs_into(g, {0}, dist, queue) < n) return false;
  const Digraph rev = g.reverse();
  if (bfs_into(rev, {0}, dist, queue) < n) return false;
  return true;
}

}  // namespace sysgo::graph
