// BFS-based distance queries: single/multi-source distances, diameter,
// strong connectivity.  Diameter runs all-pairs BFS with the thread pool.
#pragma once

#include <limits>
#include <vector>

#include "graph/digraph.hpp"

namespace sysgo::graph {

/// Sentinel for "unreachable" in distance vectors.
inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Directed BFS distances from src to every vertex.
[[nodiscard]] std::vector<int> bfs_distances(const Digraph& g, int src);

/// Directed BFS distances from the nearest vertex of `sources`.
[[nodiscard]] std::vector<int> multi_source_bfs(const Digraph& g,
                                                const std::vector<int>& sources);

/// dist(u -> v); kUnreachable when there is no dipath.
[[nodiscard]] int distance(const Digraph& g, int u, int v);

/// max_u max_v dist(u -> v); kUnreachable when g is not strongly connected.
/// Parallel over sources when the graph is large.
[[nodiscard]] int diameter(const Digraph& g);

/// Every vertex reaches every other vertex.
[[nodiscard]] bool is_strongly_connected(const Digraph& g);

}  // namespace sysgo::graph
