#include "io/csv.hpp"

#include <sstream>

#include "core/tables.hpp"
#include "util/table.hpp"

namespace sysgo::io {

std::string csv_line(const std::vector<std::string>& cells) {
  std::ostringstream out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& c = cells[i];
    const bool needs_quotes = c.find_first_of(",\"\n") != std::string::npos;
    if (needs_quotes) {
      out << '"';
      for (char ch : c) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    } else {
      out << c;
    }
    if (i + 1 < cells.size()) out << ',';
  }
  out << '\n';
  return out.str();
}

std::string fig4_csv() {
  std::ostringstream out;
  out << csv_line({"s", "lambda", "e"});
  for (const auto& row : core::fig4_rows_paper())
    out << csv_line({core::period_label(row.s), util::format_fixed(row.lambda, 6),
                     util::format_fixed(row.e, 4)});
  return out.str();
}

namespace {

std::string topology_csv(const std::vector<int>& periods, bool full_duplex) {
  std::ostringstream out;
  std::vector<std::string> header{"network", "d", "alpha", "ell"};
  for (int s : periods) header.push_back("e_s" + core::period_label(s));
  out << csv_line(header);
  const auto rows =
      full_duplex ? core::fig8_rows(periods) : core::fig5_rows(periods);
  for (const auto& row : rows) {
    std::vector<std::string> cells{topology::family_name(row.family, row.d),
                                   std::to_string(row.d),
                                   util::format_fixed(row.alpha, 6),
                                   util::format_fixed(row.ell, 6)};
    for (double e : row.e_by_period) cells.push_back(util::format_fixed(e, 4));
    out << csv_line(cells);
  }
  return out.str();
}

}  // namespace

std::string fig5_csv() { return topology_csv({3, 4, 5, 6, 7, 8}, false); }

std::string fig6_csv() {
  std::ostringstream out;
  out << csv_line({"network", "d", "e_matrix", "e_diameter", "e_best"});
  for (const auto& row : core::fig6_rows())
    out << csv_line({topology::family_name(row.family, row.d), std::to_string(row.d),
                     util::format_fixed(row.e_matrix, 4),
                     util::format_fixed(row.e_diameter, 4),
                     util::format_fixed(row.e_best, 4)});
  return out.str();
}

std::string fig8_csv() {
  return topology_csv({3, 4, 5, 6, 7, 8, core::kUnboundedPeriod}, true);
}

}  // namespace sysgo::io
