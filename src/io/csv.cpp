#include "io/csv.hpp"

#include <sstream>
#include <stdexcept>

#include "core/tables.hpp"
#include "util/table.hpp"

namespace sysgo::io {

std::string csv_line(const std::vector<std::string>& cells) {
  std::ostringstream out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string& c = cells[i];
    const bool needs_quotes = c.find_first_of(",\"\n\r") != std::string::npos;
    if (needs_quotes) {
      out << '"';
      for (char ch : c) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    } else {
      out << c;
    }
    if (i + 1 < cells.size()) out << ',';
  }
  out << '\n';
  return out.str();
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> cells;
  std::string cell;
  bool in_record = false;  // saw any content since the last record break
  std::size_t i = 0;
  const auto end_cell = [&] {
    cells.push_back(std::move(cell));
    cell.clear();
  };
  const auto end_record = [&] {
    end_cell();
    records.push_back(std::move(cells));
    cells.clear();
    in_record = false;
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      if (!cell.empty())
        throw std::invalid_argument(
            "CSV: stray quote inside unquoted field at offset " +
            std::to_string(i));
      // Quoted field: runs to the next lone quote; "" is a literal quote.
      ++i;
      for (;;) {
        if (i >= text.size())
          throw std::invalid_argument("CSV: unterminated quoted field");
        if (text[i] == '"') {
          if (i + 1 < text.size() && text[i + 1] == '"') {
            cell.push_back('"');
            i += 2;
          } else {
            ++i;
            break;
          }
        } else {
          cell.push_back(text[i++]);
        }
      }
      if (i < text.size() && text[i] != ',' && text[i] != '\n' &&
          text[i] != '\r')
        throw std::invalid_argument(
            "CSV: garbage after closing quote at offset " + std::to_string(i));
      in_record = true;
    } else if (c == ',') {
      end_cell();
      in_record = true;
      ++i;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      ++i;
      // A newline after content (or after a comma/quote that opened a
      // record) ends the record; a blank line between records is skipped.
      if (in_record || !cells.empty() || !cell.empty()) end_record();
    } else {
      cell.push_back(c);
      in_record = true;
      ++i;
    }
  }
  if (in_record || !cells.empty() || !cell.empty()) end_record();
  return records;
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  auto records = parse_csv(line);
  if (records.empty()) return {};
  if (records.size() != 1)
    throw std::invalid_argument("CSV: expected one record, got " +
                                std::to_string(records.size()));
  return std::move(records.front());
}

std::string fig4_csv() {
  std::ostringstream out;
  out << csv_line({"s", "lambda", "e"});
  for (const auto& row : core::fig4_rows_paper())
    out << csv_line({core::period_label(row.s), util::format_fixed(row.lambda, 6),
                     util::format_fixed(row.e, 4)});
  return out.str();
}

namespace {

std::string topology_csv(const std::vector<int>& periods, bool full_duplex) {
  std::ostringstream out;
  std::vector<std::string> header{"network", "d", "alpha", "ell"};
  for (int s : periods) header.push_back("e_s" + core::period_label(s));
  out << csv_line(header);
  const auto rows =
      full_duplex ? core::fig8_rows(periods) : core::fig5_rows(periods);
  for (const auto& row : rows) {
    std::vector<std::string> cells{topology::family_name(row.family, row.d),
                                   std::to_string(row.d),
                                   util::format_fixed(row.alpha, 6),
                                   util::format_fixed(row.ell, 6)};
    for (double e : row.e_by_period) cells.push_back(util::format_fixed(e, 4));
    out << csv_line(cells);
  }
  return out.str();
}

}  // namespace

std::string fig5_csv() { return topology_csv({3, 4, 5, 6, 7, 8}, false); }

std::string fig6_csv() {
  std::ostringstream out;
  out << csv_line({"network", "d", "e_matrix", "e_diameter", "e_best"});
  for (const auto& row : core::fig6_rows())
    out << csv_line({topology::family_name(row.family, row.d), std::to_string(row.d),
                     util::format_fixed(row.e_matrix, 4),
                     util::format_fixed(row.e_diameter, 4),
                     util::format_fixed(row.e_best, 4)});
  return out.str();
}

std::string fig8_csv() {
  return topology_csv({3, 4, 5, 6, 7, 8, core::kUnboundedPeriod}, true);
}

}  // namespace sysgo::io
