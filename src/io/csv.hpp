// CSV export of the figure tables — downstream plotting support.
#pragma once

#include <string>
#include <vector>

namespace sysgo::io {

/// One CSV line from cells (quotes cells containing commas/quotes).
[[nodiscard]] std::string csv_line(const std::vector<std::string>& cells);

/// Full CSV documents for each reproduced figure.
[[nodiscard]] std::string fig4_csv();
[[nodiscard]] std::string fig5_csv();
[[nodiscard]] std::string fig6_csv();
[[nodiscard]] std::string fig8_csv();

}  // namespace sysgo::io
