// CSV export of the figure tables — downstream plotting support — plus the
// matching RFC-4180 parsers, so every name the writer quotes (network
// labels like "BF(2,D)" contain commas) round-trips instead of being split
// on raw commas.
#pragma once

#include <string>
#include <vector>

namespace sysgo::io {

/// One CSV line from cells (quotes cells containing commas/quotes).
[[nodiscard]] std::string csv_line(const std::vector<std::string>& cells);

/// Parse an RFC-4180 document produced by csv_line: fields may be quoted,
/// quoted fields may contain commas, doubled quotes ("") and newlines.
/// Returns one cell vector per record.  Throws std::invalid_argument on a
/// stray quote inside an unquoted field or an unterminated quoted field.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text);

/// Parse exactly one CSV record (the inverse of csv_line; a trailing
/// newline is accepted).  Throws std::invalid_argument on malformed input
/// or when `line` holds more than one record.
[[nodiscard]] std::vector<std::string> parse_csv_line(const std::string& line);

/// Full CSV documents for each reproduced figure.
[[nodiscard]] std::string fig4_csv();
[[nodiscard]] std::string fig5_csv();
[[nodiscard]] std::string fig6_csv();
[[nodiscard]] std::string fig8_csv();

}  // namespace sysgo::io
