#include "io/dot.hpp"

#include <sstream>

namespace sysgo::io {

std::string to_dot(const graph::Digraph& g, const std::string& name) {
  std::ostringstream out;
  const bool undirected = g.is_symmetric();
  out << (undirected ? "graph " : "digraph ") << name << " {\n";
  for (int v = 0; v < g.vertex_count(); ++v) out << "  " << v << ";\n";
  for (const auto& a : g.arcs()) {
    if (undirected) {
      if (a.tail <= a.head) out << "  " << a.tail << " -- " << a.head << ";\n";
    } else {
      out << "  " << a.tail << " -> " << a.head << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string to_dot(const core::DelayDigraph& dg, const std::string& name) {
  std::ostringstream out;
  out << "digraph " << name << " {\n";
  const auto& nodes = dg.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i)
    out << "  n" << i << " [label=\"(" << nodes[i].tail << "->" << nodes[i].head
        << ")@" << nodes[i].round << "\"];\n";
  for (const auto& arc : dg.arcs())
    out << "  n" << arc.from << " -> n" << arc.to << " [label=\"" << arc.weight
        << "\"];\n";
  out << "}\n";
  return out.str();
}

}  // namespace sysgo::io
