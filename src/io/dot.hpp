// Graphviz DOT export for networks and delay digraphs — visualization
// support for a library users actually adopt.
#pragma once

#include <string>

#include "core/delay_digraph.hpp"
#include "graph/digraph.hpp"

namespace sysgo::io {

/// DOT rendering of a digraph.  Symmetric digraphs are rendered as an
/// undirected `graph` with one edge per arc pair; others as a `digraph`.
[[nodiscard]] std::string to_dot(const graph::Digraph& g,
                                 const std::string& name = "G");

/// DOT rendering of a delay digraph: nodes labelled "(tail->head)@round",
/// arcs labelled with their delay.
[[nodiscard]] std::string to_dot(const core::DelayDigraph& dg,
                                 const std::string& name = "DG");

}  // namespace sysgo::io
