#include "io/graph_text.hpp"

#include <sstream>
#include <stdexcept>

namespace sysgo::io {

std::string serialize(const graph::Digraph& g) {
  std::ostringstream out;
  out << "sysgo-digraph v1\n";
  out << "n " << g.vertex_count() << '\n';
  for (const auto& a : g.arcs()) out << "arc " << a.tail << ' ' << a.head << '\n';
  return out.str();
}

graph::Digraph parse_digraph(const std::string& text) {
  std::istringstream in(text);
  std::string magic, version;
  in >> magic >> version;
  if (magic != "sysgo-digraph" || version != "v1")
    throw std::invalid_argument("graph_text: not a sysgo-digraph v1 document");
  std::string kw;
  int n = -1;
  in >> kw >> n;
  if (kw != "n" || n < 0)
    throw std::invalid_argument("graph_text: malformed vertex count");
  graph::Digraph g(n);
  while (in >> kw) {
    if (kw != "arc") throw std::invalid_argument("graph_text: expected 'arc'");
    int tail = -1, head = -1;
    if (!(in >> tail >> head))
      throw std::invalid_argument("graph_text: malformed arc line");
    g.add_arc(tail, head);  // range-checked by Digraph
  }
  g.finalize();
  return g;
}

}  // namespace sysgo::io
