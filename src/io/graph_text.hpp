// Plain-text digraph (de)serialization:
//
//   sysgo-digraph v1
//   n 4
//   arc 0 1
//   arc 1 0
//
// Round-trips through Digraph::finalize() (sorted, deduplicated arcs).
#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace sysgo::io {

[[nodiscard]] std::string serialize(const graph::Digraph& g);

/// Parse; throws std::invalid_argument on malformed input.
[[nodiscard]] graph::Digraph parse_digraph(const std::string& text);

}  // namespace sysgo::io
