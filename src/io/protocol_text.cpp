#include "io/protocol_text.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

namespace sysgo::io {
namespace {

using protocol::Mode;

const char* mode_name(Mode m) { return m == Mode::kFullDuplex ? "full" : "half"; }

Mode parse_mode(const std::string& word) {
  if (word == "half") return Mode::kHalfDuplex;
  if (word == "full") return Mode::kFullDuplex;
  throw std::invalid_argument("protocol_text: unknown mode '" + word + "'");
}

void serialize_rounds(std::ostringstream& out, const std::vector<protocol::Round>& rounds) {
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    out << "round " << (i + 1) << ":";
    for (const auto& a : rounds[i].arcs) out << ' ' << a.tail << '>' << a.head;
    out << '\n';
  }
}

// Shared body parser: returns rounds after the header lines.
std::vector<protocol::Round> parse_rounds(std::istringstream& in, int n) {
  std::vector<protocol::Round> rounds;
  std::string line;
  int line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw;
    int round_no = 0;
    char colon = 0;
    ls >> kw >> round_no >> colon;
    if (kw != "round" || colon != ':')
      throw std::invalid_argument("protocol_text: line " + std::to_string(line_no) +
                                  ": expected 'round <k>:'");
    if (round_no != static_cast<int>(rounds.size()) + 1)
      throw std::invalid_argument("protocol_text: line " + std::to_string(line_no) +
                                  ": rounds must be consecutive from 1");
    protocol::Round round;
    std::string arc;
    while (ls >> arc) {
      const auto sep = arc.find('>');
      if (sep == std::string::npos)
        throw std::invalid_argument("protocol_text: line " + std::to_string(line_no) +
                                    ": bad arc '" + arc + "'");
      const int tail = std::stoi(arc.substr(0, sep));
      const int head = std::stoi(arc.substr(sep + 1));
      if (tail < 0 || tail >= n || head < 0 || head >= n)
        throw std::invalid_argument("protocol_text: line " + std::to_string(line_no) +
                                    ": arc endpoint out of range");
      round.arcs.push_back({tail, head});
    }
    round.canonicalize();
    rounds.push_back(std::move(round));
  }
  return rounds;
}

// Parses "n <n> mode <half|full>" possibly followed by "period <k>".
struct Header {
  int n = 0;
  Mode mode = Mode::kHalfDuplex;
};

Header parse_header_line(std::istringstream& in, const std::string& expected_magic,
                         const std::string& text_kind) {
  std::string magic, version;
  in >> magic >> version;
  if (magic != expected_magic || version != "v1")
    throw std::invalid_argument("protocol_text: not a " + text_kind +
                                " v1 document");
  Header h;
  std::string kw_n, kw_mode, mode_word;
  in >> kw_n >> h.n >> kw_mode >> mode_word;
  if (kw_n != "n" || kw_mode != "mode" || h.n <= 0)
    throw std::invalid_argument("protocol_text: malformed header");
  h.mode = parse_mode(mode_word);
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  return h;
}

}  // namespace

std::string serialize(const protocol::Protocol& p) {
  std::ostringstream out;
  out << "sysgo-protocol v1\n";
  out << "n " << p.n << " mode " << mode_name(p.mode) << '\n';
  serialize_rounds(out, p.rounds);
  return out.str();
}

std::string serialize(const protocol::SystolicSchedule& s) {
  std::ostringstream out;
  out << "sysgo-schedule v1\n";
  out << "n " << s.n << " mode " << mode_name(s.mode) << '\n';
  serialize_rounds(out, s.period);
  return out.str();
}

protocol::Protocol parse_protocol(const std::string& text) {
  std::istringstream in(text);
  const auto h = parse_header_line(in, "sysgo-protocol", "protocol");
  protocol::Protocol p;
  p.n = h.n;
  p.mode = h.mode;
  p.rounds = parse_rounds(in, h.n);
  return p;
}

protocol::SystolicSchedule parse_schedule(const std::string& text) {
  std::istringstream in(text);
  const auto h = parse_header_line(in, "sysgo-schedule", "schedule");
  protocol::SystolicSchedule s;
  s.n = h.n;
  s.mode = h.mode;
  s.period = parse_rounds(in, h.n);
  return s;
}

}  // namespace sysgo::io
