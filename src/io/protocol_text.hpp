// Plain-text (de)serialization of protocols and schedules.
//
// Format (one round per line, 1-based round numbers, arcs "tail>head"):
//
//   sysgo-protocol v1
//   n 4 mode half
//   round 1: 0>1 2>3
//   round 2: 1>2
//
// Schedules use header "sysgo-schedule v1" and "period k" lines.
#pragma once

#include <string>

#include "protocol/protocol.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::io {

[[nodiscard]] std::string serialize(const protocol::Protocol& p);
[[nodiscard]] std::string serialize(const protocol::SystolicSchedule& s);

/// Parse; throws std::invalid_argument with a line-referencing message on
/// malformed input.
[[nodiscard]] protocol::Protocol parse_protocol(const std::string& text);
[[nodiscard]] protocol::SystolicSchedule parse_schedule(const std::string& text);

}  // namespace sysgo::io
