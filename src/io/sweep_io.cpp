#include "io/sweep_io.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "io/csv.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace sysgo::io {

namespace {

using util::format_full;

const std::vector<std::string> kColumns{
    "family", "d",        "D",            "mode",         "task",
    "s",      "n",        "alpha",        "ell",          "e",
    "lambda", "rounds",   "diameter",     "sep_distance", "sep_min_size",
    "states", "group",    "budget",       "objective",    "restarts",
    "accepted", "millis"};

std::vector<std::string> record_cells(const engine::SweepRecord& r) {
  return {engine::family_token(r.key.family),
          std::to_string(r.key.d),
          std::to_string(r.key.D),
          engine::mode_name(r.key.mode),
          engine::task_name(r.task),
          std::to_string(r.s),
          std::to_string(r.n),
          format_full(r.alpha),
          format_full(r.ell),
          format_full(r.e),
          format_full(r.lambda),
          std::to_string(r.rounds),
          std::to_string(r.diameter),
          std::to_string(r.sep_distance),
          std::to_string(r.sep_min_size),
          std::to_string(r.states),
          std::to_string(r.group),
          std::to_string(r.budget),
          format_full(r.objective),
          std::to_string(r.restarts),
          std::to_string(r.accepted),
          format_full(r.millis)};
}

engine::SweepRecord record_from_fields(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  engine::SweepRecord r;
  const auto what = [](const char* field) {
    return std::string("sweep field '") + field + "'";
  };
  for (const auto& [key, value] : fields) {
    if (key == "family") r.key.family = engine::parse_family_token(value);
    else if (key == "d") r.key.d = util::parse_int(value, what("d"));
    else if (key == "D") r.key.D = util::parse_int(value, what("D"));
    else if (key == "mode") r.key.mode = engine::parse_mode_name(value);
    else if (key == "task") r.task = engine::parse_task_name(value);
    else if (key == "s") r.s = util::parse_int(value, what("s"));
    else if (key == "n") r.n = util::parse_int(value, what("n"));
    else if (key == "alpha") r.alpha = util::parse_double(value, what("alpha"));
    else if (key == "ell") r.ell = util::parse_double(value, what("ell"));
    else if (key == "e") r.e = util::parse_double(value, what("e"));
    else if (key == "lambda") r.lambda = util::parse_double(value, what("lambda"));
    else if (key == "rounds") r.rounds = util::parse_int(value, what("rounds"));
    else if (key == "diameter") r.diameter = util::parse_int(value, what("diameter"));
    else if (key == "sep_distance")
      r.sep_distance = util::parse_int(value, what("sep_distance"));
    else if (key == "sep_min_size")
      r.sep_min_size = util::parse_i64(value, what("sep_min_size"));
    else if (key == "states") r.states = util::parse_i64(value, what("states"));
    else if (key == "group") r.group = util::parse_i64(value, what("group"));
    else if (key == "budget") r.budget = util::parse_int(value, what("budget"));
    else if (key == "objective")
      r.objective = util::parse_double(value, what("objective"));
    else if (key == "restarts")
      r.restarts = util::parse_int(value, what("restarts"));
    else if (key == "accepted")
      r.accepted = util::parse_i64(value, what("accepted"));
    else if (key == "millis") r.millis = util::parse_double(value, what("millis"));
    else throw std::invalid_argument("unknown sweep field: " + key);
  }
  return r;
}

engine::SweepRecord record_from_cells(const std::vector<std::string>& cells,
                                      const std::string& line) {
  if (cells.size() != kColumns.size())
    throw std::invalid_argument("bad sweep CSV row: " + line);
  std::vector<std::pair<std::string, std::string>> fields;
  fields.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i)
    fields.emplace_back(kColumns[i], cells[i]);
  return record_from_fields(fields);
}

}  // namespace

std::string sweep_csv_header() { return csv_line(kColumns); }

const std::vector<std::string>& sweep_csv_columns() { return kColumns; }

std::string sweep_csv_row(const engine::SweepRecord& r) {
  return csv_line(record_cells(r));
}

engine::SweepRecord parse_sweep_csv_record(const std::string& line) {
  return record_from_cells(parse_csv_line(line), line);
}

std::string sweep_csv(const std::vector<engine::SweepRecord>& records) {
  std::ostringstream out;
  out << sweep_csv_header();
  for (const auto& r : records) out << sweep_csv_row(r);
  return out.str();
}

std::vector<engine::SweepRecord> parse_sweep_csv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  // '#' lines are metadata the CLI prepends (e.g. "# seed=42"); skip them
  // wherever they appear.
  do {
    if (!std::getline(in, line))
      throw std::invalid_argument("empty sweep CSV");
  } while (line.empty() || line[0] == '#');
  // Sweep cells never contain newlines, so RFC-4180 parsing can run
  // line-by-line; quoted cells (and commas/quotes inside them) round-trip.
  const auto header = parse_csv_line(line);
  if (header != kColumns)
    throw std::invalid_argument("unexpected sweep CSV header: " + line);
  std::vector<engine::SweepRecord> records;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    records.push_back(record_from_cells(parse_csv_line(line), line));
  }
  return records;
}

std::string sweep_json_record(const engine::SweepRecord& r) {
  const auto cells = record_cells(r);
  std::ostringstream out;
  out << '{';
  for (std::size_t i = 0; i < kColumns.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << kColumns[i] << "\":";
    // family/mode/task are strings; everything else is numeric.
    if (i == 0 || i == 3 || i == 4)
      out << '"' << cells[i] << '"';
    else
      out << cells[i];
  }
  out << '}';
  return out.str();
}

std::string sweep_json(const std::vector<engine::SweepRecord>& records) {
  std::ostringstream out;
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << "  " << sweep_json_record(records[i]);
    if (i + 1 < records.size()) out << ',';
    out << '\n';
  }
  out << "]\n";
  return out.str();
}

namespace {

/// Minimal parser for the flat JSON this module emits: an array of objects
/// whose values are strings or numbers.
struct JsonScanner {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }
  [[nodiscard]] char peek() {
    skip_ws();
    if (pos >= text.size()) throw std::invalid_argument("truncated sweep JSON");
    return text[pos];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::invalid_argument(std::string("sweep JSON: expected '") + c +
                                  "' at offset " + std::to_string(pos));
    ++pos;
  }
  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    while (pos < text.size() && text[pos] != '"') out.push_back(text[pos++]);
    expect('"');
    return out;
  }
  [[nodiscard]] std::string parse_scalar() {
    if (peek() == '"') return parse_string();
    std::string out;
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ']' &&
           !std::isspace(static_cast<unsigned char>(text[pos])))
      out.push_back(text[pos++]);
    if (out.empty()) throw std::invalid_argument("sweep JSON: empty value");
    return out;
  }
};

}  // namespace

std::vector<engine::SweepRecord> parse_sweep_json(const std::string& text) {
  JsonScanner scan{text};
  std::vector<engine::SweepRecord> records;
  scan.expect('[');
  if (scan.peek() == ']') return records;
  for (;;) {
    scan.expect('{');
    std::vector<std::pair<std::string, std::string>> fields;
    if (scan.peek() != '}') {
      for (;;) {
        std::string key = scan.parse_string();
        scan.expect(':');
        fields.emplace_back(std::move(key), scan.parse_scalar());
        if (scan.peek() != ',') break;
        scan.expect(',');
      }
    }
    scan.expect('}');
    records.push_back(record_from_fields(fields));
    if (scan.peek() != ',') break;
    scan.expect(',');
  }
  scan.expect(']');
  return records;
}

}  // namespace sysgo::io
