// Structured sinks for engine sweep records: CSV and JSON documents plus
// parsers for both, so sweep output round-trips losslessly (doubles are
// emitted with max precision — the human-facing figure tables format their
// own digits).
#pragma once

#include <string>
#include <vector>

#include "engine/scenario.hpp"

namespace sysgo::io {

/// CSV column header line for sweep records.
[[nodiscard]] std::string sweep_csv_header();

/// Column names in emission order (the cells of sweep_csv_header()).
[[nodiscard]] const std::vector<std::string>& sweep_csv_columns();

/// One record as a CSV line (ends with '\n').
[[nodiscard]] std::string sweep_csv_row(const engine::SweepRecord& r);

/// Parse one data row produced by sweep_csv_row (header-less; the result
/// store's record codec).  Throws std::invalid_argument on malformed input.
[[nodiscard]] engine::SweepRecord parse_sweep_csv_record(const std::string& line);

/// Full CSV document: header + one line per record.
[[nodiscard]] std::string sweep_csv(const std::vector<engine::SweepRecord>& records);

/// Parse a sweep CSV document (as produced by sweep_csv).  Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] std::vector<engine::SweepRecord> parse_sweep_csv(const std::string& text);

/// One record as a single-line JSON object (no trailing newline).
[[nodiscard]] std::string sweep_json_record(const engine::SweepRecord& r);

/// Full JSON document: an array of record objects.
[[nodiscard]] std::string sweep_json(const std::vector<engine::SweepRecord>& records);

/// Parse a sweep JSON document (as produced by sweep_json).  Throws
/// std::invalid_argument on malformed input.
[[nodiscard]] std::vector<engine::SweepRecord> parse_sweep_json(const std::string& text);

}  // namespace sysgo::io
