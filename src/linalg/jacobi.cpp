#include "linalg/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sysgo::linalg {
namespace {

// Sum of squares of strictly-off-diagonal entries.
double off_diagonal_norm2(const Matrix& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (i != j) s += a(i, j) * a(i, j);
  return s;
}

// One Jacobi rotation zeroing a(p, q).
void rotate(Matrix& a, std::size_t p, std::size_t q) {
  const double apq = a(p, q);
  if (apq == 0.0) return;
  const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
  const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
  const double c = 1.0 / std::sqrt(t * t + 1.0);
  const double s = t * c;
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    const double akp = a(k, p);
    const double akq = a(k, q);
    a(k, p) = c * akp - s * akq;
    a(k, q) = s * akp + c * akq;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double apk = a(p, k);
    const double aqk = a(q, k);
    a(p, k) = c * apk - s * aqk;
    a(q, k) = s * apk + c * aqk;
  }
}

}  // namespace

JacobiResult jacobi_eigenvalues(const Matrix& m, const JacobiOptions& opts) {
  if (m.rows() != m.cols())
    throw std::invalid_argument("jacobi_eigenvalues: matrix must be square");
  if (!m.is_symmetric(1e-9))
    throw std::invalid_argument("jacobi_eigenvalues: matrix must be symmetric");
  Matrix a = m;
  const std::size_t n = a.rows();
  JacobiResult res;
  if (n == 0) {
    res.converged = true;
    return res;
  }
  const double scale = std::max(1.0, a.frobenius_norm());
  for (int sweep = 1; sweep <= opts.max_sweeps; ++sweep) {
    res.sweeps = sweep;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) rotate(a, p, q);
    if (std::sqrt(off_diagonal_norm2(a)) <= opts.tolerance * scale) {
      res.converged = true;
      break;
    }
  }
  res.eigenvalues.reserve(n);
  for (std::size_t i = 0; i < n; ++i) res.eigenvalues.push_back(a(i, i));
  std::sort(res.eigenvalues.rbegin(), res.eigenvalues.rend());
  return res;
}

double operator_norm_exact(const Matrix& m) {
  const auto gram = m.transpose().multiply(m);
  const auto eig = jacobi_eigenvalues(gram);
  if (eig.eigenvalues.empty()) return 0.0;
  return std::sqrt(std::max(0.0, eig.eigenvalues.front()));
}

}  // namespace sysgo::linalg
