// Cyclic Jacobi eigenvalue iteration for symmetric matrices.
//
// An exact (to tolerance) dense eigensolver used to cross-validate the
// power-iteration norms: ‖M‖₂² is the largest eigenvalue of the symmetric
// MᵀM, which Jacobi computes with all-eigenvalue certainty (no danger of
// converging to a subdominant eigenpair).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace sysgo::linalg {

struct JacobiOptions {
  int max_sweeps = 64;
  double tolerance = 1e-13;  // off-diagonal Frobenius threshold
};

struct JacobiResult {
  std::vector<double> eigenvalues;  // descending order
  int sweeps = 0;
  bool converged = false;
};

/// Eigenvalues of a symmetric matrix.  Throws if m is not square/symmetric.
[[nodiscard]] JacobiResult jacobi_eigenvalues(const Matrix& m,
                                              const JacobiOptions& opts = {});

/// ‖M‖₂ via Jacobi on MᵀM — the slow, certain reference implementation.
[[nodiscard]] double operator_norm_exact(const Matrix& m);

}  // namespace sysgo::linalg
