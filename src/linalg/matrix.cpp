#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace sysgo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows_ * cols_)
    throw std::invalid_argument("Matrix: data size does not match rows*cols");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::mul(std::span<const double> x) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

std::vector<double> Matrix::mul_transpose(std::span<const double> x) const {
  assert(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  if (cols_ != other.rows_)
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      const double* orow = other.data_.data() + k * other.cols_;
      double* drow = out.data_.data() + r * out.cols_;
      for (std::size_t c = 0; c < other.cols_; ++c) drow[c] += v * orow[c];
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::add(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("Matrix::add: dimension mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::scaled(double a) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = a * data_[i];
  return out;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

bool Matrix::dominated_by(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (data_[i] > other.data_[i] + tol) return false;
  return true;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

double Matrix::max_abs() const noexcept {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::frobenius_norm() const noexcept {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::inf_norm() const noexcept {
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += std::fabs((*this)(r, c));
    m = std::max(m, s);
  }
  return m;
}

double Matrix::one_norm() const noexcept {
  double m = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double s = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) s += std::fabs((*this)(r, c));
    m = std::max(m, s);
  }
  return m;
}

std::string Matrix::str(int digits) const {
  std::ostringstream out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out << (r == 0 ? "[ " : "  ");
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof buf, "%*.*f", digits + 4, digits, (*this)(r, c));
      out << buf << (c + 1 < cols_ ? " " : "");
    }
    out << (r + 1 < rows_ ? "\n" : " ]\n");
  }
  return out.str();
}

}  // namespace sysgo::linalg
