// Dense row-major matrix.
//
// Sized for the paper's local matrices Mx(λ), Nx(λ), Ox(λ) (a few hundred
// rows at most), so the implementation favours clarity over blocking.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sysgo::linalg {

class Matrix {
 public:
  Matrix() = default;
  /// rows x cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);
  /// Build from row-major data; data.size() must equal rows*cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = (*this) * x.
  [[nodiscard]] std::vector<double> mul(std::span<const double> x) const;
  /// y = (*this)^T * x.
  [[nodiscard]] std::vector<double> mul_transpose(std::span<const double> x) const;

  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix add(const Matrix& other) const;
  [[nodiscard]] Matrix scaled(double a) const;

  /// True when max |a_ij - b_ij| <= tol.
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol = 1e-12) const;

  /// Entry-wise dominance: a_ij <= b_ij + tol for all i,j
  /// (matrix-norm property 4 applies to such pairs).
  [[nodiscard]] bool dominated_by(const Matrix& other, double tol = 1e-12) const;

  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  [[nodiscard]] double max_abs() const noexcept;
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max row sum of absolute values (operator inf-norm).
  [[nodiscard]] double inf_norm() const noexcept;
  /// Max column sum of absolute values (operator 1-norm).
  [[nodiscard]] double one_norm() const noexcept;

  /// Human-readable rendering with aligned fixed-precision entries.
  [[nodiscard]] std::string str(int digits = 3) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace sysgo::linalg
