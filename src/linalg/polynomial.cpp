#include "linalg/polynomial.hpp"

namespace sysgo::linalg {

double delay_polynomial(int i, double lambda) noexcept {
  if (i <= 0) return 0.0;
  const double l2 = lambda * lambda;
  double term = 1.0;
  double sum = 0.0;
  for (int j = 0; j < i; ++j) {
    sum += term;
    term *= l2;
  }
  return sum;
}

double delay_polynomial_limit(double lambda) noexcept {
  return 1.0 / (1.0 - lambda * lambda);
}

double geometric_sum(int k, double lambda) noexcept {
  double term = lambda;
  double sum = 0.0;
  for (int j = 1; j <= k; ++j) {
    sum += term;
    term *= lambda;
  }
  return sum;
}

double geometric_sum_limit(double lambda) noexcept {
  return lambda / (1.0 - lambda);
}

}  // namespace sysgo::linalg
