// The paper's delay polynomials p_i(λ) and related geometric sums.
//
// p_i(λ) = 1 + λ² + λ⁴ + … + λ^{2i−2}   (i ≥ 1; p_0 ≡ 0 by convention —
// an empty activation block contributes nothing).
#pragma once

namespace sysgo::linalg {

/// p_i(λ) evaluated directly (numerically stable for 0 <= λ <= 1).
[[nodiscard]] double delay_polynomial(int i, double lambda) noexcept;

/// Closed form of lim_{i→∞} p_i(λ) = 1 / (1 − λ²) for |λ| < 1.
[[nodiscard]] double delay_polynomial_limit(double lambda) noexcept;

/// Geometric sum λ + λ² + … + λ^k (k ≥ 0; 0 for k = 0), the full-duplex
/// row-sum bound of Lemma 6.1 with k = s−1.
[[nodiscard]] double geometric_sum(int k, double lambda) noexcept;

/// lim_{k→∞} geometric_sum = λ / (1 − λ) for |λ| < 1.
[[nodiscard]] double geometric_sum_limit(double lambda) noexcept;

}  // namespace sysgo::linalg
