#include "linalg/power_iteration.hpp"

#include <cmath>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace sysgo::linalg {
namespace {

// Generic power iteration for x <- op(x) where op is a non-negative linear
// map; returns the dominant "gain" per application.
template <typename Op>
PowerIterationResult iterate(std::size_t dim, Op&& op,
                             const PowerIterationOptions& opts) {
  PowerIterationResult res;
  if (dim == 0) {
    res.converged = true;
    return res;
  }
  std::vector<double> x(dim, 1.0);
  normalize(x);
  double prev = 0.0;
  for (std::size_t it = 1; it <= opts.max_iterations; ++it) {
    std::vector<double> y = op(x);
    const double gain = norm2(y);
    res.iterations = it;
    if (gain == 0.0) {  // matrix annihilates the positive cone: norm 0
      res.value = 0.0;
      res.converged = true;
      return res;
    }
    scale(y, 1.0 / gain);
    x = std::move(y);
    res.value = gain;
    if (it > 1 && std::fabs(gain - prev) <= opts.tolerance * std::max(1.0, gain)) {
      res.converged = true;
      return res;
    }
    prev = gain;
  }
  return res;
}

}  // namespace

PowerIterationResult operator_norm(const Matrix& m,
                                   const PowerIterationOptions& opts) {
  // Iterate MᵀM; the gain converges to ‖M‖².
  auto res = iterate(
      m.cols(),
      [&m](const std::vector<double>& x) { return m.mul_transpose(m.mul(x)); },
      opts);
  res.value = std::sqrt(res.value);
  return res;
}

PowerIterationResult operator_norm(const SparseMatrix& m,
                                   const PowerIterationOptions& opts) {
  auto res = iterate(
      m.cols(),
      [&m, &opts](const std::vector<double>& x) {
        return m.mul_transpose(m.mul(x, opts.parallel));
      },
      opts);
  res.value = std::sqrt(res.value);
  return res;
}

PowerIterationResult spectral_radius_nonnegative(const Matrix& m,
                                                 const PowerIterationOptions& opts) {
  return iterate(
      m.rows(), [&m](const std::vector<double>& x) { return m.mul(x); }, opts);
}

}  // namespace sysgo::linalg
