// Euclidean operator norm ‖M‖₂ and spectral radius via power iteration.
//
// The paper's machinery needs ‖M(λ)‖₂ = sqrt(ρ(MᵀM)) for non-negative
// matrices; for those, power iteration on MᵀM started from a positive vector
// converges to the Perron value.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace sysgo::linalg {

struct PowerIterationOptions {
  std::size_t max_iterations = 20'000;
  double tolerance = 1e-12;  // relative change of the Rayleigh estimate
  bool parallel = false;     // multithread sparse mat-vec products
};

struct PowerIterationResult {
  double value = 0.0;        // converged estimate
  std::size_t iterations = 0;
  bool converged = false;
};

/// ‖M‖₂ of a dense matrix (any sign pattern is accepted; convergence is
/// guaranteed for non-negative matrices, which is all this library uses).
[[nodiscard]] PowerIterationResult operator_norm(
    const Matrix& m, const PowerIterationOptions& opts = {});

/// ‖M‖₂ of a sparse matrix.
[[nodiscard]] PowerIterationResult operator_norm(
    const SparseMatrix& m, const PowerIterationOptions& opts = {});

/// Spectral radius ρ(M) of a non-negative square dense matrix
/// (power iteration from the all-ones vector; Perron–Frobenius).
[[nodiscard]] PowerIterationResult spectral_radius_nonnegative(
    const Matrix& m, const PowerIterationOptions& opts = {});

}  // namespace sysgo::linalg
