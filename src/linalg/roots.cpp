#include "linalg/roots.hpp"

#include <cmath>

namespace sysgo::linalg {

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  double tol) {
  RootResult res;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, true};
  if (fhi == 0.0) return {hi, true};
  if ((flo < 0.0) == (fhi < 0.0)) {
    res.bracketed = false;
    res.x = std::fabs(flo) <= std::fabs(fhi) ? lo : hi;
    return res;
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return {mid, true};
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  res.bracketed = true;
  res.x = 0.5 * (lo + hi);
  return res;
}

MaxResult maximize(const std::function<double(double)>& f, double lo, double hi,
                   int grid, double tol) {
  // Coarse scan.
  double best_x = lo;
  double best_v = f(lo);
  const double step = (hi - lo) / grid;
  for (int i = 1; i <= grid; ++i) {
    const double x = lo + i * step;
    const double v = f(x);
    if (v > best_v) {
      best_v = v;
      best_x = x;
    }
  }
  // Golden-section refinement on the bracketing cell pair.
  double a = std::max(lo, best_x - step);
  double b = std::min(hi, best_x + step);
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tol) {
    if (fc >= fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  const double mid = 0.5 * (a + b);
  const double fmid = f(mid);
  if (fmid >= best_v) return {mid, fmid};
  return {best_x, best_v};
}

}  // namespace sysgo::linalg
