// Scalar root finding and 1-D maximization.
//
// Every table entry of the paper is either the root of a monotone function
// of λ (Corollary 4.4, Section 6) or the maximum of a smooth function over
// an interval of λ (Theorem 5.1); these two deterministic routines cover
// both.
#pragma once

#include <functional>

namespace sysgo::linalg {

struct RootResult {
  double x = 0.0;
  bool bracketed = false;  // f(lo) and f(hi) had opposite signs
};

/// Bisection root of f on [lo, hi] to absolute x-tolerance `tol`.
/// Requires f(lo) and f(hi) of opposite sign (else bracketed=false and x is
/// the endpoint with the smaller |f|).
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f,
                                double lo, double hi, double tol = 1e-13);

struct MaxResult {
  double x = 0.0;
  double value = 0.0;
};

/// Maximize f over [lo, hi]: coarse scan on `grid` points followed by
/// golden-section refinement around the best cell.  Deterministic; exact
/// for unimodal f, and robust for the mildly multimodal objectives of
/// Theorem 5.1 with the default grid.
[[nodiscard]] MaxResult maximize(const std::function<double(double)>& f,
                                 double lo, double hi, int grid = 4096,
                                 double tol = 1e-12);

}  // namespace sysgo::linalg
