#include "linalg/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace sysgo::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> entries)
    : rows_(rows), cols_(cols) {
  for (const auto& t : entries)
    if (t.row >= rows_ || t.col >= cols_)
      throw std::out_of_range("SparseMatrix: triplet outside matrix bounds");

  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  row_offsets_.assign(rows_ + 1, 0);
  col_indices_.reserve(entries.size());
  values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    if (sum != 0.0) {
      col_indices_.push_back(entries[i].col);
      values_.push_back(sum);
      ++row_offsets_[entries[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) row_offsets_[r + 1] += row_offsets_[r];
}

std::vector<double> SparseMatrix::mul(std::span<const double> x,
                                      bool parallel) const {
  assert(x.size() == cols_);
  std::vector<double> y(rows_, 0.0);
  auto kernel = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t r = lo; r < hi; ++r) {
      double s = 0.0;
      for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
        s += values_[k] * x[col_indices_[k]];
      y[r] = s;
    }
  };
  if (parallel)
    util::parallel_for_blocks(0, rows_, kernel, 4096);
  else
    kernel(0, rows_);
  return y;
}

std::vector<double> SparseMatrix::mul_transpose(std::span<const double> x) const {
  assert(x.size() == rows_);
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      y[col_indices_[k]] += values_[k] * xr;
  }
  return y;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const noexcept {
  if (r >= rows_) return 0.0;
  const auto begin = col_indices_.begin() + static_cast<std::ptrdiff_t>(row_offsets_[r]);
  const auto end = col_indices_.begin() + static_cast<std::ptrdiff_t>(row_offsets_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_indices_.begin())];
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      m(r, col_indices_[k]) += values_[k];
  return m;
}

double SparseMatrix::inf_norm() const noexcept {
  double m = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      s += std::fabs(values_[k]);
    m = std::max(m, s);
  }
  return m;
}

double SparseMatrix::one_norm() const noexcept {
  std::vector<double> col(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_offsets_[r]; k < row_offsets_[r + 1]; ++k)
      col[col_indices_[k]] += std::fabs(values_[k]);
  double m = 0.0;
  for (double v : col) m = std::max(m, v);
  return m;
}

}  // namespace sysgo::linalg
