// Compressed-sparse-row matrix.
//
// Delay matrices M(λ) of whole protocols have one row/column per arc
// activation and O(s) entries per row; CSR keeps the Theorem 4.1 audit
// machinery scalable to thousands of activations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace sysgo::linalg {

/// One (row, col, value) entry used while assembling a sparse matrix.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Assemble from triplets; duplicate (row, col) entries are summed.
  SparseMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> entries);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x (optionally multithreaded over rows).
  [[nodiscard]] std::vector<double> mul(std::span<const double> x,
                                        bool parallel = false) const;
  /// y = A^T x.
  [[nodiscard]] std::vector<double> mul_transpose(std::span<const double> x) const;

  /// Entry lookup (O(log nnz_row)); zero when absent.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const noexcept;

  [[nodiscard]] Matrix to_dense() const;

  /// Max row sum / max column sum of absolute values.
  [[nodiscard]] double inf_norm() const noexcept;
  [[nodiscard]] double one_norm() const noexcept;

  [[nodiscard]] std::span<const std::size_t> row_offsets() const noexcept {
    return row_offsets_;
  }
  [[nodiscard]] std::span<const std::size_t> col_indices() const noexcept {
    return col_indices_;
  }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_offsets_;  // size rows_+1
  std::vector<std::size_t> col_indices_;  // size nnz, sorted within each row
  std::vector<double> values_;            // size nnz
};

}  // namespace sysgo::linalg
