#include "linalg/vector_ops.hpp"

#include <cassert>
#include <cmath>

namespace sysgo::linalg {

double norm2(std::span<const double> x) noexcept {
  double s = 0.0;
  for (double v : x) s += v * v;
  return std::sqrt(s);
}

double norm_inf(std::span<const double> x) noexcept {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

double norm1(std::span<const double> x) noexcept {
  double s = 0.0;
  for (double v : x) s += std::fabs(v);
  return s;
}

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

void scale(std::span<double> x, double a) noexcept {
  for (double& v : x) v *= a;
}

double normalize(std::span<double> x) noexcept {
  const double n = norm2(x);
  if (n > 0.0) scale(x, 1.0 / n);
  return n;
}

double weighted_max_norm(std::span<const double> z, std::span<const double> x) {
  assert(z.size() == x.size());
  double m = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    assert(x[i] > 0.0);
    m = std::max(m, std::fabs(z[i] / x[i]));
  }
  return m;
}

}  // namespace sysgo::linalg
