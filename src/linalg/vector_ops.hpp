// Basic dense-vector kernels shared by the norm and eigen routines.
#pragma once

#include <span>
#include <vector>

namespace sysgo::linalg {

/// Euclidean (l2) norm.
[[nodiscard]] double norm2(std::span<const double> x) noexcept;

/// Maximum absolute component (l-infinity norm).
[[nodiscard]] double norm_inf(std::span<const double> x) noexcept;

/// Sum of absolute components (l1 norm).
[[nodiscard]] double norm1(std::span<const double> x) noexcept;

/// Dot product; x and y must have equal length.
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y) noexcept;

/// x <- a * x.
void scale(std::span<double> x, double a) noexcept;

/// Normalize x to unit l2 norm in place; returns the previous norm.
/// If x is (numerically) zero it is left unchanged and 0 is returned.
double normalize(std::span<double> x) noexcept;

/// The weighted-max norm |z|_x = max_i |z_i / x_i| used in Lemma 2.1
/// (x must be strictly positive).
[[nodiscard]] double weighted_max_norm(std::span<const double> z,
                                       std::span<const double> x);

}  // namespace sysgo::linalg
