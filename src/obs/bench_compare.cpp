#include "obs/bench_compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"
#include "obs/perf.hpp"
#include "simulator/kernels.hpp"

namespace sysgo::obs::bench {

namespace {

const json::Value& require(const json::Value& obj, const char* key,
                           json::Value::Kind kind, const char* what) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || v->kind != kind)
    throw std::runtime_error(std::string("bench snapshot: missing or "
                                         "malformed \"") +
                             key + "\" in " + what);
  return *v;
}

std::map<std::string, double> number_map(const json::Value& obj) {
  std::map<std::string, double> out;
  for (const auto& [k, v] : obj.members)
    if (v.kind == json::Value::Kind::kNumber) out[k] = v.number;
  return out;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string fmt_pct(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.1f%%", v);
  return buf;
}

const char* status_label(RowStatus s) {
  switch (s) {
    case RowStatus::kOk: return "ok";
    case RowStatus::kRegression: return "REGRESSION";
    case RowStatus::kImproved: return "improved";
    case RowStatus::kNew: return "new";
    case RowStatus::kMissing: return "missing";
    case RowStatus::kIncomparable: return "incomparable";
  }
  return "?";
}

/// Percent change where positive means "worse": times grow, rates shrink.
double worse_pct(double baseline, double current, bool higher_is_better) {
  if (baseline <= 0.0) return 0.0;
  const double pct = (current - baseline) / baseline * 100.0;
  return higher_is_better ? -pct : pct;
}

void classify(CompareReport& report, CompareRow row, double threshold_pct) {
  if (row.delta_pct > threshold_pct) {
    row.status = RowStatus::kRegression;
    ++report.regressions;
  } else if (row.delta_pct < -threshold_pct) {
    row.status = RowStatus::kImproved;
    ++report.improvements;
  } else {
    row.status = RowStatus::kOk;
  }
  report.rows.push_back(std::move(row));
}

/// Compare one optional context field; absent-on-either-side is recorded
/// as a skip note, a real difference as a mismatch.
template <typename T>
void check_field(std::vector<std::string>& mismatches,
                 std::vector<std::string>& notes, const char* name,
                 const T& base, const T& cur, const T& absent) {
  if (base == absent || cur == absent) {
    if (base != cur || base == absent)
      notes.push_back(std::string("context: ") + name +
                      " unknown on one side, not compared");
    return;
  }
  if (base != cur) {
    std::ostringstream os;
    os << "context: " << name << " differs (baseline " << base
       << " vs current " << cur << ")";
    mismatches.push_back(os.str());
  }
}

}  // namespace

BenchSnapshot parse_snapshot(const std::string& text) {
  const json::Value doc = json::parse(text);
  if (doc.kind != json::Value::Kind::kObject)
    throw std::runtime_error("bench snapshot: document is not an object");

  BenchSnapshot snap;
  snap.schema = static_cast<int>(json::as_i64(require(
      doc, "sysgo_bench", json::Value::Kind::kNumber, "document")));
  if (snap.schema < 1 || snap.schema > 2)
    throw std::runtime_error("bench snapshot: unsupported sysgo_bench "
                             "schema " +
                             std::to_string(snap.schema));
  snap.name =
      require(doc, "name", json::Value::Kind::kString, "document").str;

  const json::Value& ctx =
      require(doc, "context", json::Value::Kind::kObject, "document");
  if (const json::Value* v = ctx.find("num_cpus"))
    snap.context.num_cpus = static_cast<int>(json::as_i64(*v));
  if (const json::Value* v = ctx.find("cpu_ghz"))
    snap.context.cpu_ghz = v->number;
  if (const json::Value* v = ctx.find("kernel")) snap.context.kernel = v->str;
  if (const json::Value* v = ctx.find("build_type"))
    snap.context.build_type = v->str;
  if (const json::Value* v = ctx.find("git_sha"))
    snap.context.git_sha = v->str;
  if (const json::Value* v = ctx.find("perf_available"))
    snap.context.perf_available = v->boolean;

  const json::Value& benches =
      require(doc, "benchmarks", json::Value::Kind::kObject, "document");
  for (const auto& [name, b] : benches.members) {
    if (b.kind != json::Value::Kind::kObject)
      throw std::runtime_error("bench snapshot: benchmark \"" + name +
                               "\" is not an object");
    BenchEntry e;
    e.time_unit =
        require(b, "time_unit", json::Value::Kind::kString, name.c_str()).str;
    e.reps = static_cast<int>(json::as_i64(
        require(b, "reps", json::Value::Kind::kNumber, name.c_str())));
    e.median_real_time =
        require(b, "median_real_time", json::Value::Kind::kNumber,
                name.c_str())
            .number;
    e.p90_real_time =
        require(b, "p90_real_time", json::Value::Kind::kNumber, name.c_str())
            .number;
    if (const json::Value* c = b.find("counters");
        c != nullptr && c->kind == json::Value::Kind::kObject)
      e.counters = number_map(*c);
    if (const json::Value* p = b.find("perf");
        p != nullptr && p->kind == json::Value::Kind::kObject)
      e.perf = number_map(*p);
    snap.benchmarks.emplace(name, std::move(e));
  }
  return snap;
}

CompareReport compare(const BenchSnapshot& baseline,
                      const BenchSnapshot& current,
                      const CompareOptions& opts) {
  CompareReport report;

  std::vector<std::string> mismatches;
  check_field(mismatches, report.context_notes, "num_cpus",
              baseline.context.num_cpus, current.context.num_cpus, 0);
  check_field(mismatches, report.context_notes, "kernel",
              baseline.context.kernel, current.context.kernel,
              std::string());
  check_field(mismatches, report.context_notes, "build_type",
              baseline.context.build_type, current.context.build_type,
              std::string());
  if (!mismatches.empty() && !opts.allow_context_mismatch) {
    std::string what = "bench compare: refusing to compare across "
                       "incomparable contexts (pass "
                       "--allow-context-mismatch to override):";
    for (const std::string& m : mismatches) what += "\n  " + m;
    throw std::invalid_argument(what);
  }
  for (std::string& m : mismatches)
    report.context_notes.push_back(std::move(m));

  for (const auto& [name, base] : baseline.benchmarks) {
    const auto it = current.benchmarks.find(name);
    if (it == current.benchmarks.end()) {
      report.rows.push_back({name, RowStatus::kMissing,
                             base.median_real_time, 0.0, 0.0,
                             base.time_unit});
      continue;
    }
    const BenchEntry& cur = it->second;
    if (base.time_unit != cur.time_unit) {
      report.rows.push_back({name, RowStatus::kIncomparable,
                             base.median_real_time, cur.median_real_time,
                             0.0, base.time_unit + "/" + cur.time_unit});
      continue;
    }
    CompareRow row;
    row.name = name;
    row.baseline = base.median_real_time;
    row.current = cur.median_real_time;
    row.unit = base.time_unit;
    row.delta_pct =
        worse_pct(base.median_real_time, cur.median_real_time, false);
    classify(report, std::move(row), opts.threshold_pct);

    if (!opts.counters) continue;
    for (const auto& [cname, cbase] : base.counters) {
      const auto cit = cur.counters.find(cname);
      if (cit == cur.counters.end()) continue;
      CompareRow crow;
      crow.name = name + " [" + cname + "]";
      crow.baseline = cbase;
      crow.current = cit->second;
      crow.unit = cname;
      crow.delta_pct = worse_pct(cbase, cit->second, true);
      classify(report, std::move(crow), opts.threshold_pct);
    }
  }
  for (const auto& [name, cur] : current.benchmarks)
    if (baseline.benchmarks.find(name) == baseline.benchmarks.end())
      report.rows.push_back({name, RowStatus::kNew, 0.0,
                             cur.median_real_time, 0.0, cur.time_unit});
  return report;
}

std::string render_report(const CompareReport& report,
                          const CompareOptions& opts) {
  std::ostringstream os;
  for (const std::string& note : report.context_notes)
    os << "note: " << note << "\n";
  std::size_t width = 4;
  for (const CompareRow& row : report.rows)
    width = std::max(width, row.name.size());
  for (const CompareRow& row : report.rows) {
    os << "  " << row.name << std::string(width - row.name.size() + 2, ' ');
    switch (row.status) {
      case RowStatus::kNew:
        os << "new: " << fmt(row.current) << " " << row.unit;
        break;
      case RowStatus::kMissing:
        os << "missing from current (baseline " << fmt(row.baseline) << " "
           << row.unit << ")";
        break;
      case RowStatus::kIncomparable:
        os << "incomparable time units (" << row.unit << ")";
        break;
      default:
        os << fmt(row.baseline) << " -> " << fmt(row.current) << " "
           << row.unit << "  " << fmt_pct(row.delta_pct) << "  "
           << status_label(row.status);
        break;
    }
    os << "\n";
  }
  os << (report.ok() ? "PASS" : "FAIL") << ": " << report.regressions
     << " regression(s), " << report.improvements << " improvement(s), "
     << report.rows.size() << " row(s) at threshold "
     << fmt(opts.threshold_pct) << "%\n";
  return os.str();
}

std::string render_list(const BenchSnapshot& snap) {
  std::ostringstream os;
  os << snap.name << " (schema " << snap.schema << ", "
     << snap.benchmarks.size() << " benchmark(s))\n";
  std::size_t width = 4;
  for (const auto& [name, e] : snap.benchmarks)
    width = std::max(width, name.size());
  for (const auto& [name, e] : snap.benchmarks)
    os << "  " << name << std::string(width - name.size() + 2, ' ')
       << fmt(e.median_real_time) << " " << e.time_unit << " (p90 "
       << fmt(e.p90_real_time) << ", reps " << e.reps << ")\n";
  return os.str();
}

std::string render_context(const Context& ctx) {
  std::ostringstream os;
  os << "num_cpus: " << ctx.num_cpus << "\n";
  os << "cpu_ghz: " << fmt(ctx.cpu_ghz) << "\n";
  os << "kernel: " << (ctx.kernel.empty() ? "unknown" : ctx.kernel) << "\n";
  os << "build_type: "
     << (ctx.build_type.empty() ? "unknown" : ctx.build_type) << "\n";
  os << "git_sha: " << (ctx.git_sha.empty() ? "unknown" : ctx.git_sha)
     << "\n";
  os << "perf_available: " << (ctx.perf_available ? "true" : "false")
     << "\n";
  return os.str();
}

Context local_context() {
  Context ctx;
  ctx.num_cpus = static_cast<int>(std::thread::hardware_concurrency());
  ctx.kernel = simulator::kernel_name(simulator::active_kernel());
#if defined(NDEBUG)
  ctx.build_type = "release";
#else
  ctx.build_type = "debug";
#endif
#if defined(SYSGO_GIT_SHA)
  ctx.git_sha = SYSGO_GIT_SHA;
#endif
  const perf::Availability avail = perf::available();
  ctx.perf_available = avail.hardware || avail.software;
  return ctx;
}

}  // namespace sysgo::obs::bench
