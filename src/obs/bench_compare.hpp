// Benchmark snapshot model, comparison, and regression gating — the
// library half of `sysgo bench compare|list|context`.
//
// bench/bench_json.hpp writes one BENCH_<name>.json per bench binary
// (schema v2: context with num_cpus / cpu_ghz / kernel / build_type /
// git_sha, per-benchmark multi-rep median + p90 real times, counter
// medians, and optional perf-counter aggregates).  This module parses
// those snapshots back (v1 documents — no schema-2 context fields, no
// perf blocks — still load), diffs two of them, and decides pass/fail
// for CI:
//
//  * a benchmark REGRESSES when its current median real time exceeds the
//    baseline median by more than the threshold;
//  * with counters enabled, a counter (rates: higher is better) regresses
//    when its current median falls below the baseline by more than the
//    threshold;
//  * contexts are compared first: a kernel / build-type / num_cpus
//    mismatch makes wall-clock diffs meaningless, so compare() refuses
//    (throws) unless allow_context_mismatch is set.  Fields absent on
//    either side (e.g. a v1 baseline) are skipped, never treated as a
//    mismatch.
//
// Benchmarks present on only one side are reported (kNew / kMissing) but
// do not fail the compare — regressions must be measured, not inferred.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sysgo::obs::bench {

/// Host/build context captured with a snapshot.  Optional fields are
/// absent in schema-v1 documents.
struct Context {
  int num_cpus = 0;
  double cpu_ghz = 0.0;
  std::string kernel;      // active SIMD row kernel ("" = unknown / v1)
  std::string build_type;  // "release" / "debug" ("" = unknown / v1)
  std::string git_sha;     // "" = unknown
  bool perf_available = false;
};

/// One benchmark's aggregates: medians over the repetition samples.
struct BenchEntry {
  std::string time_unit;  // "ns"/"us"/"ms" as written by the bench library
  int reps = 0;
  double median_real_time = 0.0;
  double p90_real_time = 0.0;
  std::map<std::string, double> counters;  // rate counters (higher = better)
  std::map<std::string, double> perf;      // perf aggregates (informational)
};

struct BenchSnapshot {
  int schema = 0;  // the "sysgo_bench" version field (1 or 2)
  std::string name;
  Context context;
  std::map<std::string, BenchEntry> benchmarks;  // name-sorted
};

/// Parse a BENCH_<name>.json document (schema 1 or 2).  Throws
/// std::runtime_error on malformed documents or unsupported schemas.
[[nodiscard]] BenchSnapshot parse_snapshot(const std::string& text);

struct CompareOptions {
  double threshold_pct = 10.0;        // regression gate, percent
  bool counters = false;              // also gate on counter medians
  bool allow_context_mismatch = false;
};

enum class RowStatus {
  kOk,          // within threshold
  kRegression,  // slower / lower-rate than baseline beyond threshold
  kImproved,    // faster / higher-rate beyond threshold (informational)
  kNew,         // only in current
  kMissing,     // only in baseline
  kIncomparable,  // time units differ
};

struct CompareRow {
  std::string name;       // benchmark, or "benchmark [counter]" for rates
  RowStatus status = RowStatus::kOk;
  double baseline = 0.0;
  double current = 0.0;
  double delta_pct = 0.0;  // positive = slower (times) / lower (counters)
  std::string unit;
};

struct CompareReport {
  std::vector<CompareRow> rows;      // baseline order, counters inline
  std::vector<std::string> context_notes;  // skipped/mismatched context
  std::size_t regressions = 0;
  std::size_t improvements = 0;

  [[nodiscard]] bool ok() const { return regressions == 0; }
};

/// Diff two snapshots.  Throws std::invalid_argument on a context
/// mismatch unless opts.allow_context_mismatch (the mismatch is then
/// recorded in context_notes instead).
[[nodiscard]] CompareReport compare(const BenchSnapshot& baseline,
                                    const BenchSnapshot& current,
                                    const CompareOptions& opts);

/// Human-readable report table ending in a PASS/FAIL summary line.
[[nodiscard]] std::string render_report(const CompareReport& report,
                                        const CompareOptions& opts);

/// One line per benchmark: name, median, unit, reps (`sysgo bench list`).
[[nodiscard]] std::string render_list(const BenchSnapshot& snap);

/// Render a context as "key: value" lines (`sysgo bench context`).
[[nodiscard]] std::string render_context(const Context& ctx);

/// The context this process would stamp into a snapshot right now:
/// hardware_concurrency, active SIMD kernel, build type, compiled-in git
/// sha, and perf-counter availability.  bench/bench_json.hpp uses this
/// same function, so `sysgo bench context` prints exactly what a bench
/// run on this host would record.
[[nodiscard]] Context local_context();

}  // namespace sysgo::obs::bench
