#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace sysgo::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.str = string();
        return v;
      }
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return Value{};
      default: return number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::kBool;
    v.boolean = b;
    return v;
  }

  void literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) fail("bad literal");
    pos_ += len;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writers only emit \u00XX for control bytes; decode the
          // BMP code point as UTF-8 for anything else.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse(); }

std::int64_t as_i64(const Value& v) {
  return static_cast<std::int64_t>(std::llround(v.number));
}

}  // namespace sysgo::obs::json
