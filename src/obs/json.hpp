// Minimal JSON reader shared by the obs consumers that parse their own
// documents back (trace reports, bench snapshots): objects, arrays,
// strings with the standard escapes, numbers, bools, null.  Object keys
// keep document order — the writers emit deterministic layouts and the
// readers preserve them.  Parse errors throw std::runtime_error with the
// byte offset.  This is a reader for sysgo's own trusted output files,
// not a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sysgo::obs::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;
  std::vector<std::pair<std::string, Value>> members;

  /// First member with `key`, or nullptr (objects only).
  [[nodiscard]] const Value* find(std::string_view key) const {
    for (const auto& [k, v] : members)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse a complete document (trailing garbage fails).
[[nodiscard]] Value parse(const std::string& text);

/// Nearest integer of a number value (the writers emit integral fields as
/// plain numbers).
[[nodiscard]] std::int64_t as_i64(const Value& v);

}  // namespace sysgo::obs::json
