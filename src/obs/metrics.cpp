#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/fs.hpp"

namespace sysgo::obs {

namespace {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{true};
  return flag;
}

/// Bucket for a microsecond value: 0 -> 0, else bit_width (top bucket
/// absorbs overflow).
std::size_t bucket_of(std::uint64_t us) noexcept {
  if (us == 0) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width(us));
  return std::min(b, Histogram::kBuckets - 1);
}

/// Inclusive-exclusive value range [lo, hi) covered by bucket b.
std::pair<double, double> bucket_range(std::size_t b) noexcept {
  if (b == 0) return {0.0, 0.0};
  return {std::ldexp(1.0, static_cast<int>(b) - 1),
          std::ldexp(1.0, static_cast<int>(b))};
}

/// The three maps own the metric objects; unique_ptr keeps addresses stable
/// across rehash-free std::map growth, and std::map iteration gives the
/// name-sorted snapshot order for free.
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  static Registry r;
  return r;
}

template <class T>
T& get_or_register(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                   std::string_view name) {
  std::lock_guard<std::mutex> lock(registry().mutex);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  return *map.emplace(std::string(name), std::make_unique<T>()).first->second;
}

/// Fixed-precision rendering for quantiles: deterministic and
/// locale-independent.
std::string format_us(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::size_t this_thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

// ---------------------------------------------------------------- Histogram

void Histogram::record_micros(std::uint64_t us) noexcept {
  if (!enabled()) return;
  Shard& s = shards_[this_thread_shard()];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(us, std::memory_order_relaxed);
  s.buckets[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t cur = s.min.load(std::memory_order_relaxed);
  while (us < cur &&
         !s.min.compare_exchange_weak(cur, us, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (us > cur &&
         !s.max.compare_exchange_weak(cur, us, std::memory_order_relaxed)) {
  }
}

Histogram::Agg Histogram::aggregate() const noexcept {
  Agg agg;
  std::uint64_t min = ~std::uint64_t{0};
  for (const Shard& s : shards_) {
    agg.count += s.count.load(std::memory_order_relaxed);
    agg.sum_us += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    agg.max_us = std::max(agg.max_us, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b)
      agg.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
  }
  agg.min_us = agg.count > 0 ? min : 0;
  return agg;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

double Histogram::Agg::quantile_us(double q) const noexcept {
  if (count == 0) return 0.0;
  // Nearest-rank with in-bucket linear interpolation: rank r = ceil(q * n)
  // clamped to [1, n]; the result is lo + (hi - lo) * (r - before) / k for
  // the bucket [lo, hi) holding rank r, clamped to the observed [min, max].
  const auto r = static_cast<std::uint64_t>(std::clamp(
      std::ceil(q * static_cast<double>(count)), 1.0,
      static_cast<double>(count)));
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t k = buckets[b];
    if (k == 0 || before + k < r) {
      before += k;
      continue;
    }
    auto [lo, hi] = bucket_range(b);
    // The top bucket absorbs overflow (bucket_of clamps), so its nominal
    // upper edge can sit far below the samples it actually holds; stretch
    // it to the observed max so overflow weight moves percentiles instead
    // of silently flattening them under 2^(kBuckets-1).
    if (b == kBuckets - 1) hi = std::max(hi, static_cast<double>(max_us));
    const double inside = static_cast<double>(r - before) /
                          static_cast<double>(k);
    const double est = lo + (hi - lo) * inside;
    return std::clamp(est, static_cast<double>(min_us),
                      static_cast<double>(max_us));
  }
  return static_cast<double>(max_us);  // unreachable when counts are sane
}

// ----------------------------------------------------------------- Registry

Counter& counter(std::string_view name) {
  return get_or_register(registry().counters, name);
}

Gauge& gauge(std::string_view name) {
  return get_or_register(registry().gauges, name);
}

Histogram& histogram(std::string_view name) {
  return get_or_register(registry().histograms, name);
}

// ----------------------------------------------------------------- Snapshot

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  Snapshot snap;
  snap.counters.reserve(reg.counters.size());
  for (const auto& [name, c] : reg.counters)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(reg.gauges.size());
  for (const auto& [name, g] : reg.gauges)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(reg.histograms.size());
  for (const auto& [name, h] : reg.histograms) {
    HistogramSample s;
    s.name = name;
    s.agg = h->aggregate();
    s.p50_us = s.agg.quantile_us(0.50);
    s.p90_us = s.agg.quantile_us(0.90);
    s.p99_us = s.agg.quantile_us(0.99);
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::string to_json(const Snapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"sysgo_metrics\": 1,\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i)
    out << (i > 0 ? "," : "") << "\n    \"" << snap.counters[i].name
        << "\": " << snap.counters[i].value;
  out << (snap.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i)
    out << (i > 0 ? "," : "") << "\n    \"" << snap.gauges[i].name
        << "\": " << snap.gauges[i].value;
  out << (snap.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSample& h = snap.histograms[i];
    out << (i > 0 ? "," : "") << "\n    \"" << h.name << "\": {"
        << "\"count\": " << h.agg.count << ", \"sum_us\": " << h.agg.sum_us
        << ", \"min_us\": " << h.agg.min_us
        << ", \"max_us\": " << h.agg.max_us
        << ", \"p50_us\": " << format_us(h.p50_us)
        << ", \"p90_us\": " << format_us(h.p90_us)
        << ", \"p99_us\": " << format_us(h.p99_us) << ", \"buckets\": [";
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      out << (b > 0 ? "," : "") << h.agg.buckets[b];
    out << "]}";
  }
  out << (snap.histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string to_csv(const Snapshot& snap) {
  std::ostringstream out;
  out << "kind,name,value,count,sum_us,min_us,max_us,p50_us,p90_us,p99_us\n";
  for (const CounterSample& c : snap.counters)
    out << "counter," << c.name << ',' << c.value << ",,,,,,,\n";
  for (const GaugeSample& g : snap.gauges)
    out << "gauge," << g.name << ',' << g.value << ",,,,,,,\n";
  for (const HistogramSample& h : snap.histograms)
    out << "histogram," << h.name << ",," << h.agg.count << ','
        << h.agg.sum_us << ',' << h.agg.min_us << ',' << h.agg.max_us << ','
        << format_us(h.p50_us) << ',' << format_us(h.p90_us) << ','
        << format_us(h.p99_us) << '\n';
  return out.str();
}

void write_metrics_file(const std::string& path) {
  const Snapshot snap = snapshot();
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  util::write_file_atomic(path, csv ? to_csv(snap) : to_json(snap));
}

void reset_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& [name, c] : reg.counters) c->reset();
  for (const auto& [name, g] : reg.gauges) g->reset();
  for (const auto& [name, h] : reg.histograms) h->reset();
}

}  // namespace sysgo::obs
