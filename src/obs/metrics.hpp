// Process-wide, low-overhead metrics registry.
//
// Three metric kinds, all safe for concurrent mutation from any thread:
//
//  * Counter   — monotonic; increments go to one of kShards cache-line-
//                padded relaxed atomics picked per thread, so hot paths pay
//                a single uncontended relaxed fetch_add.
//  * Gauge     — a level (set/add) or high-water mark (record_max); one
//                atomic, updated at event granularity, never in tight loops.
//  * Histogram — fixed power-of-two latency buckets over microseconds with
//                count/sum/min/max and interpolated p50/p90/p99 extraction;
//                sharded like counters.
//
// Metrics are registered by name on first use (counter("engine.cache.hits"))
// and live for the process lifetime — call sites hold a reference in a
// function-local static so steady-state cost is one branch + one relaxed
// atomic.  Collection is globally toggleable (set_enabled); metrics NEVER
// feed computation results, so records are byte-identical either way —
// asserted by tests/obs/.
//
// snapshot() aggregates the shards into a name-sorted, deterministic view;
// to_json/to_csv render it (two snapshots of an idle registry are
// byte-identical).  See src/obs/README.md for the sharding design, the
// metric name catalog, and how to add a metric.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/wall_timer.hpp"

namespace sysgo::obs {

/// Global collection switch (default on — steady-state overhead is a
/// relaxed atomic per event).  Off turns every record call into a no-op;
/// bench/obs_overhead pins the on-vs-off throughput delta under 2%.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Threads are assigned one of kShards slots round-robin on first use;
/// concurrent writers on distinct slots never touch the same cache line.
inline constexpr std::size_t kShards = 16;
[[nodiscard]] std::size_t this_thread_shard() noexcept;

// ------------------------------------------------------------------ Counter

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    shards_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards (relaxed; exact once writers are quiescent).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

// -------------------------------------------------------------------- Gauge

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }

  void add(std::int64_t delta) noexcept {
    if (!enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raise the gauge to v if v is larger (high-water tracking).
  void record_max(std::int64_t v) noexcept {
    if (!enabled()) return;
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// ---------------------------------------------------------------- Histogram

/// Fixed exponential buckets over microseconds: bucket 0 holds exactly 0µs,
/// bucket b >= 1 holds [2^(b-1), 2^b) µs; the top bucket absorbs overflow
/// (2^38µs ≈ 3 days).  Quantiles are linear interpolations inside the
/// covering bucket, clamped to the observed [min, max] — an estimate whose
/// error is bounded by the bucket width, which is all p99-style reporting
/// needs.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record_micros(std::uint64_t us) noexcept;

  /// Shard-aggregated view plus quantile extraction.
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t min_us = 0;  // 0 when count == 0
    std::uint64_t max_us = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// q in (0, 1]; 0 when the histogram is empty.  Deterministic: a pure
    /// function of the bucket counts and min/max.
    [[nodiscard]] double quantile_us(double q) const noexcept;
  };
  [[nodiscard]] Agg aggregate() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };
  std::array<Shard, kShards> shards_{};
};

/// RAII span: records its lifetime into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept : h_(h) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { h_.record_micros(timer_.micros()); }

 private:
  Histogram& h_;
  WallTimer timer_;
};

// ----------------------------------------------------------------- Registry

/// Look up (registering on first use) the named metric.  References stay
/// valid for the process lifetime; hold them in a function-local static at
/// hot call sites.  Names are independent per kind but the catalog keeps
/// them globally unique by convention ("layer.subsystem.event[.micros]").
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

// ----------------------------------------------------------------- Snapshot

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  Histogram::Agg agg;
  double p50_us = 0.0;
  double p90_us = 0.0;
  double p99_us = 0.0;
};

/// Deterministic-ordered (name-sorted per kind) view of every registered
/// metric.  Values are relaxed reads; exact once writers are quiescent.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

[[nodiscard]] Snapshot snapshot();

/// JSON document (schema in README "Observability"): {"sysgo_metrics": 1,
/// "counters": {...}, "gauges": {...}, "histograms": {name: {count, sum_us,
/// min_us, max_us, p50_us, p90_us, p99_us, buckets}}}.  Keys sorted; two
/// renders of the same state are byte-identical.
[[nodiscard]] std::string to_json(const Snapshot& snap);

/// CSV sink: "kind,name,value,count,sum_us,min_us,max_us,p50_us,p90_us,
/// p99_us" with empty cells where a column does not apply to the kind.
[[nodiscard]] std::string to_csv(const Snapshot& snap);

/// Snapshot and atomically write to `path` — CSV when the path ends in
/// ".csv", JSON otherwise (the `--metrics PATH` sink).
void write_metrics_file(const std::string& path);

/// Zero every registered metric (names stay registered).  Tests and the
/// overhead bench only; concurrent writers may interleave.
void reset_all();

}  // namespace sysgo::obs
