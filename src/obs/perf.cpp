#include "obs/perf.hpp"

#include <atomic>
#include <cstring>
#include <vector>

#include "obs/trace.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace sysgo::obs::perf {

namespace {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

#if defined(__linux__)

/// Slots within each group's read buffer, in the order the events were
/// attached to the leader (PERF_FORMAT_GROUP preserves attach order).
enum HwSlot { kCycles = 0, kInstructions, kBranchMisses, kCacheRefs,
              kCacheMisses, kHwCount };
enum SwSlot { kTaskClock = 0, kMinorFaults, kMajorFaults, kSwCount };

/// One perf_event_open counter group: a leader fd plus siblings, read in a
/// single syscall.  Values are cumulative from open; consumers diff two
/// reads.  All-or-nothing: if any member fails to open the whole group is
/// torn down, so a Sample never mixes present and absent fields within a
/// group.
class Group {
 public:
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  Group(const std::uint32_t* types, const std::uint64_t* configs,
        std::size_t count) {
    fds_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      perf_event_attr attr;
      std::memset(&attr, 0, sizeof attr);
      attr.size = sizeof attr;
      attr.type = types[i];
      attr.config = configs[i];
      attr.exclude_kernel = 1;
      attr.exclude_hv = 1;
      attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                         PERF_FORMAT_TOTAL_TIME_RUNNING;
      const int leader = fds_.empty() ? -1 : fds_.front();
      const long fd =
          syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1, leader,
                  /*flags=*/0UL);
      if (fd < 0) {  // EACCES/EPERM/ENOENT: no PMU or paranoid sysctl
        close_all();
        return;
      }
      fds_.push_back(static_cast<int>(fd));
    }
  }

  ~Group() { close_all(); }

  [[nodiscard]] bool open() const noexcept { return !fds_.empty(); }

  /// Read the group and write the multiplex-scaled values into out[0..n).
  /// Returns false (zero-filled out) when the group is closed or the read
  /// fails.
  bool read_scaled(std::uint64_t* out, std::size_t count) const noexcept {
    for (std::size_t i = 0; i < count; ++i) out[i] = 0;
    if (fds_.empty()) return false;
    // Layout: nr, time_enabled, time_running, value[nr].
    std::uint64_t buf[3 + kHwCount];
    const auto want =
        static_cast<long>((3 + count) * sizeof(std::uint64_t));
    if (::read(fds_.front(), buf, static_cast<std::size_t>(want)) != want)
      return false;
    if (buf[0] != count) return false;
    for (std::size_t i = 0; i < count; ++i)
      out[i] = scale_value(buf[3 + i], buf[1], buf[2]);
    return true;
  }

 private:
  void close_all() noexcept {
    for (auto it = fds_.rbegin(); it != fds_.rend(); ++it) ::close(*it);
    fds_.clear();
  }

  std::vector<int> fds_;
};

/// Per-thread counter groups, opened on first use and kept for the thread
/// lifetime (a PerfScope on a pool worker measures that worker's work).
struct ThreadGroups {
  Group hardware;
  Group software;

  ThreadGroups()
      : hardware(kHwTypes, kHwConfigs, kHwCount),
        software(kSwTypes, kSwConfigs, kSwCount) {}

  static constexpr std::uint32_t kHwTypes[kHwCount] = {
      PERF_TYPE_HARDWARE, PERF_TYPE_HARDWARE, PERF_TYPE_HARDWARE,
      PERF_TYPE_HARDWARE, PERF_TYPE_HARDWARE};
  static constexpr std::uint64_t kHwConfigs[kHwCount] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_BRANCH_MISSES, PERF_COUNT_HW_CACHE_REFERENCES,
      PERF_COUNT_HW_CACHE_MISSES};
  static constexpr std::uint32_t kSwTypes[kSwCount] = {
      PERF_TYPE_SOFTWARE, PERF_TYPE_SOFTWARE, PERF_TYPE_SOFTWARE};
  static constexpr std::uint64_t kSwConfigs[kSwCount] = {
      PERF_COUNT_SW_TASK_CLOCK, PERF_COUNT_SW_PAGE_FAULTS_MIN,
      PERF_COUNT_SW_PAGE_FAULTS_MAJ};
};

ThreadGroups& thread_groups() {
  thread_local ThreadGroups groups;
  return groups;
}

#endif  // defined(__linux__)

/// Derived ratio scaled to integer permille, guarded against zero
/// denominators (an unavailable group reads all-zero).
std::uint64_t permille(std::uint64_t num, std::uint64_t den) noexcept {
  return den > 0 ? num * 1000 / den : 0;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::uint64_t scale_value(std::uint64_t raw, std::uint64_t time_enabled,
                          std::uint64_t time_running) noexcept {
  if (time_running == 0) return 0;
  if (time_running >= time_enabled) return raw;  // never multiplexed
  const double scale = static_cast<double>(time_enabled) /
                       static_cast<double>(time_running);
  return static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
}

Availability available() {
#if defined(__linux__)
  const ThreadGroups& g = thread_groups();
  return {g.hardware.open(), g.software.open()};
#else
  return {};
#endif
}

Sample read_sample() {
  Sample s;
  if (!enabled()) return s;
#if defined(__linux__)
  const ThreadGroups& g = thread_groups();
  std::uint64_t hw[kHwCount];
  if (g.hardware.read_scaled(hw, kHwCount)) {
    s.cycles = hw[kCycles];
    s.instructions = hw[kInstructions];
    s.branch_misses = hw[kBranchMisses];
    s.cache_refs = hw[kCacheRefs];
    s.cache_misses = hw[kCacheMisses];
  }
  std::uint64_t sw[kSwCount];
  if (g.software.read_scaled(sw, kSwCount)) {
    s.task_clock_ns = sw[kTaskClock];
    s.minor_faults = sw[kMinorFaults];
    s.major_faults = sw[kMajorFaults];
  }
#endif
  return s;
}

PerfRollup::PerfRollup(const std::string& prefix)
    : cycles(counter(prefix + ".perf.cycles")),
      instructions(counter(prefix + ".perf.instructions")),
      branch_misses(counter(prefix + ".perf.branch_misses")),
      cache_refs(counter(prefix + ".perf.cache_refs")),
      cache_misses(counter(prefix + ".perf.cache_misses")),
      task_clock_us(counter(prefix + ".perf.task_clock_us")),
      ipc_milli(histogram(prefix + ".perf.ipc_milli")),
      cache_miss_permille(histogram(prefix + ".perf.cache_miss_permille")),
      branch_miss_permille(histogram(prefix + ".perf.branch_miss_permille")) {}

PerfScope::PerfScope(PerfRollup& rollup) noexcept
    : rollup_(rollup), armed_(enabled()) {
  if (armed_) start_ = read_sample();
}

PerfScope::~PerfScope() {
  if (!armed_) return;
  const Sample end = read_sample();
  const auto delta = [](std::uint64_t a, std::uint64_t b) {
    return b > a ? b - a : 0;  // paranoia vs scaling jitter, never wraps
  };
  const std::uint64_t cycles = delta(start_.cycles, end.cycles);
  const std::uint64_t instructions =
      delta(start_.instructions, end.instructions);
  const std::uint64_t branch_misses =
      delta(start_.branch_misses, end.branch_misses);
  const std::uint64_t cache_refs = delta(start_.cache_refs, end.cache_refs);
  const std::uint64_t cache_misses =
      delta(start_.cache_misses, end.cache_misses);
  const std::uint64_t task_clock_ns =
      delta(start_.task_clock_ns, end.task_clock_ns);

  rollup_.cycles.add(cycles);
  rollup_.instructions.add(instructions);
  rollup_.branch_misses.add(branch_misses);
  rollup_.cache_refs.add(cache_refs);
  rollup_.cache_misses.add(cache_misses);
  rollup_.task_clock_us.add(task_clock_ns / 1000);

  const std::uint64_t ipc_milli = permille(instructions, cycles);
  const std::uint64_t cache_mpm = permille(cache_misses, cache_refs);
  if (cycles > 0) {
    rollup_.ipc_milli.record_micros(ipc_milli);
    rollup_.branch_miss_permille.record_micros(
        permille(branch_misses, instructions));
  }
  if (cache_refs > 0) rollup_.cache_miss_permille.record_micros(cache_mpm);

  if (span_ != nullptr && span_->armed()) {
    // Interned once per process: arg keys are shared by every scope.
    static const trace::NameId kIpcKey = trace::intern("ipc_milli");
    static const trace::NameId kMissKey = trace::intern("cache_miss_permille");
    static const trace::NameId kClockKey = trace::intern("task_clock_us");
    if (cycles > 0)
      span_->arg(kIpcKey, static_cast<std::int64_t>(ipc_milli));
    if (cache_refs > 0)
      span_->arg(kMissKey, static_cast<std::int64_t>(cache_mpm));
    if (task_clock_ns > 0)
      span_->arg(kClockKey, static_cast<std::int64_t>(task_clock_ns / 1000));
  }
}

}  // namespace sysgo::obs::perf
