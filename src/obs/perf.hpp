// Hardware/software performance-counter profiling: the *why fast / why
// slow* companion to the metrics registry's *how much* and the trace
// recorder's *when*.
//
// On Linux each recording thread lazily opens two `perf_event_open`
// counter groups:
//
//  * hardware — cycles (leader), instructions, branch-misses,
//    cache-references, cache-misses; read in one syscall with
//    PERF_FORMAT_GROUP and scaled by time_enabled/time_running so PMU
//    multiplexing cannot silently shrink the numbers.
//  * software — task-clock (leader), minor/major page faults; available
//    even where the hardware PMU is not (most containers and CI runners
//    expose no PMU: the hardware open fails with ENOENT/EACCES/EPERM).
//
// Degradation is graceful and per group: whatever fails to open is simply
// absent from every sample (its fields read 0 and the matching
// `available()` flag is false) — nothing throws, nothing logs per event,
// and on non-Linux builds the whole backend compiles to the no-op path.
//
// Collection is OFF by default (`--perf` turns it on).  The RAII
// `PerfScope` snapshots this thread's groups at construction and charges
// the delta at destruction into a `PerfRollup` — raw totals into counters
// (`<prefix>.perf.cycles`, `.instructions`, `.branch_misses`,
// `.cache_refs`, `.cache_misses`, `.task_clock_us`) and derived ratios
// into histograms (`<prefix>.perf.ipc_milli`: instructions-per-cycle
// x1000; `.cache_miss_permille` and `.branch_miss_permille`: misses per
// 1000 references/cycles) — and can attach the derived values as args to
// a live TraceSpan.  Profiling must never perturb results: tests/obs/
// asserts records are byte-identical with profiling on and off, and
// bench/obs_overhead pins the instrumented-path delta under 3%.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace sysgo::obs::trace {
class TraceSpan;  // perf.hpp must stay includable without trace.hpp
}

namespace sysgo::obs::perf {

/// Global collection switch, default OFF (the `--perf` flag).  Disabled
/// profiling costs one relaxed load per PerfScope.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Which counter groups this thread can actually open.  Probed once per
/// thread on first use (opening is lazy); stable for the thread lifetime.
struct Availability {
  bool hardware = false;  // cycles/instructions/branches/cache group
  bool software = false;  // task-clock/page-faults group
};
[[nodiscard]] Availability available();

/// One reading of this thread's counter groups (cumulative since the
/// groups were opened).  Fields from an unavailable group are zero.
struct Sample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cache_refs = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t task_clock_ns = 0;
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
};

/// Read this thread's groups now (opening them on first call).  Returns a
/// zero sample when profiling is disabled or nothing opened.
[[nodiscard]] Sample read_sample();

/// Multiplexing correction: a counter scheduled on the PMU for
/// `running` of `enabled` nanoseconds extrapolates linearly.  Exposed for
/// the unit tests; running == 0 yields 0 (never a division by zero).
[[nodiscard]] std::uint64_t scale_value(std::uint64_t raw,
                                        std::uint64_t time_enabled,
                                        std::uint64_t time_running) noexcept;

/// The metric bundle a PerfScope charges into.  Construct once per call
/// site (function-local static) with the owning subsystem's prefix; the
/// names land in the --metrics snapshot next to the latency histograms.
struct PerfRollup {
  explicit PerfRollup(const std::string& prefix);

  Counter& cycles;
  Counter& instructions;
  Counter& branch_misses;
  Counter& cache_refs;
  Counter& cache_misses;
  Counter& task_clock_us;
  Histogram& ipc_milli;             // instructions / cycles x 1000
  Histogram& cache_miss_permille;   // cache_misses / cache_refs x 1000
  Histogram& branch_miss_permille;  // branch_misses / instructions x 1000
};

/// RAII profiling span: snapshots this thread's counters at construction,
/// charges the delta into `rollup` at destruction, and (when attached)
/// adds `ipc_milli` / `cache_miss_permille` args to a trace span.  Declare
/// AFTER the TraceSpan it attaches to, so its destructor runs first.
class PerfScope {
 public:
  explicit PerfScope(PerfRollup& rollup) noexcept;
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;
  ~PerfScope();

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Attach derived-counter args to `span` when this scope closes.  The
  /// span must outlive the scope (declare the span first).
  void attach(trace::TraceSpan* span) noexcept { span_ = span; }

 private:
  PerfRollup& rollup_;
  trace::TraceSpan* span_ = nullptr;
  const bool armed_;
  Sample start_{};
};

}  // namespace sysgo::obs::perf
