#include "obs/resource.hpp"

#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace sysgo::obs::resource {

namespace {

#if defined(__linux__)

/// Parse "<key>:   <value> kB" lines out of /proc/self/status.  Returns
/// -1 when the key is missing (kernel too old / field renamed) so callers
/// can distinguish absent from zero.
std::int64_t status_kb(const char* text, const char* key) {
  const char* line = std::strstr(text, key);
  if (line == nullptr) return -1;
  line += std::strlen(key);
  long long value = 0;
  if (std::sscanf(line, ": %lld", &value) != 1) return -1;
  return value;
}

#endif

struct ResourceGauges {
  Gauge& rss_kb = gauge("proc.rss_kb");
  Gauge& rss_peak_kb = gauge("proc.rss_peak_kb");
  Gauge& minor_faults = gauge("proc.minor_faults");
  Gauge& major_faults = gauge("proc.major_faults");
  Gauge& voluntary = gauge("proc.ctx_switches.voluntary");
  Gauge& involuntary = gauge("proc.ctx_switches.involuntary");
};

ResourceGauges& resource_gauges() {
  static ResourceGauges g;
  return g;
}

/// Eager registrar: the proc.* names show up (as zeros) in
/// `sysgo metrics dump` before the first sample.
[[maybe_unused]] const bool kResourceGaugesRegistered =
    (resource_gauges(), true);

}  // namespace

ResourceSample sample() {
  ResourceSample s;
#if defined(__linux__)
  // VmRSS/VmHWM come from /proc: getrusage's ru_maxrss is also a peak but
  // /proc keeps both current and peak in one read.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    std::fclose(f);
    buf[n] = '\0';
    const std::int64_t rss = status_kb(buf, "VmRSS");
    const std::int64_t hwm = status_kb(buf, "VmHWM");
    if (rss >= 0) s.rss_kb = rss;
    if (hwm >= 0) s.rss_peak_kb = hwm;
    s.ok = rss >= 0 || hwm >= 0;
  }
  rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    s.minor_faults = static_cast<std::int64_t>(ru.ru_minflt);
    s.major_faults = static_cast<std::int64_t>(ru.ru_majflt);
    s.voluntary_ctx_switches = static_cast<std::int64_t>(ru.ru_nvcsw);
    s.involuntary_ctx_switches = static_cast<std::int64_t>(ru.ru_nivcsw);
    s.ok = true;
  }
#endif
  return s;
}

void update_resource_gauges() {
  const ResourceSample s = sample();
  if (!s.ok) return;
  ResourceGauges& g = resource_gauges();
  g.rss_kb.set(s.rss_kb);
  g.rss_peak_kb.record_max(s.rss_peak_kb);
  g.minor_faults.set(s.minor_faults);
  g.major_faults.set(s.major_faults);
  g.voluntary.set(s.voluntary_ctx_switches);
  g.involuntary.set(s.involuntary_ctx_switches);
}

}  // namespace sysgo::obs::resource
