// Process resource profiling: memory and scheduler behavior sampled at
// phase boundaries (end of a sweep, solver exit, snapshot write) — cheap
// enough to be always-on, so long campaigns report their RSS high-water
// mark and fault/context-switch totals without a profiler attached.
//
// Sources (Linux): current and peak RSS from /proc/self/status
// (VmRSS/VmHWM), minor/major page faults and voluntary/involuntary
// context switches from getrusage(RUSAGE_SELF).  On other platforms
// sample() returns ok = false and the gauges stay untouched.
//
// update_resource_gauges() publishes one sample into the metrics registry:
//
//   proc.rss_kb                    current resident set (set)
//   proc.rss_peak_kb               VmHWM high-water mark (record_max)
//   proc.minor_faults              cumulative minor page faults (set)
//   proc.major_faults              cumulative major page faults (set)
//   proc.ctx_switches.voluntary    cumulative voluntary switches (set)
//   proc.ctx_switches.involuntary  cumulative involuntary switches (set)
//
// Sampling never feeds computation results; it rides the same
// byte-identity contract as the rest of src/obs/.
#pragma once

#include <cstdint>

namespace sysgo::obs::resource {

struct ResourceSample {
  bool ok = false;  // false: platform/procfs unavailable, fields are zero
  std::int64_t rss_kb = 0;
  std::int64_t rss_peak_kb = 0;
  std::int64_t minor_faults = 0;
  std::int64_t major_faults = 0;
  std::int64_t voluntary_ctx_switches = 0;
  std::int64_t involuntary_ctx_switches = 0;
};

/// Read the process's resource usage now.  One /proc read plus one
/// getrusage call — phase-boundary cost, never per-event.
[[nodiscard]] ResourceSample sample();

/// Sample and publish into the proc.* gauges (no-op off-Linux or when the
/// obs registry is disabled).  Call at phase boundaries and immediately
/// before snapshot writes so --metrics and `sysgo metrics dump` carry
/// fresh values.
void update_resource_gauges();

}  // namespace sysgo::obs::resource
