#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/fs.hpp"

namespace sysgo::obs::trace {

namespace {

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

std::chrono::steady_clock::time_point epoch() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// ------------------------------------------------------------- string table

struct StringTable {
  std::mutex mutex;
  std::vector<std::string> strings{""};  // id 0 reserved: the empty string
  std::unordered_map<std::string, NameId> ids{{"", 0}};
};

StringTable& string_table() {
  static StringTable t;
  return t;
}

// -------------------------------------------------------------------- lanes

/// Ring slot: seqlock-stamped event payload.  The sequence protocol makes
/// concurrent drain safe against the single producer: a slot holding the
/// i-th event (0-based) carries seq == 2 * (i + 1); the producer sets seq
/// odd before rewriting the payload and even after, so a drainer that reads
/// an unexpected or changed seq discards the copy as torn.  Payload fields
/// are relaxed atomics purely to keep the concurrent access well-defined —
/// on mainstream hardware they compile to plain loads/stores.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> ts{0};
  std::atomic<std::uint64_t> dur{0};
  std::atomic<NameId> name{0};
  std::atomic<std::uint8_t> kind{0};
  std::atomic<std::uint8_t> argc{0};
  std::atomic<std::uint8_t> smask{0};
  std::atomic<std::uint32_t> flow{0};
  std::array<std::atomic<NameId>, kMaxArgs> keys{};
  std::array<std::atomic<std::int64_t>, kMaxArgs> vals{};
};

struct Lane {
  std::string name;          // registry-mutex guarded
  std::vector<Slot> ring;    // fixed power-of-two size, set at creation
  std::size_t mask = 0;
  /// Events ever written; the ring holds [max(0, head - ring.size()), head).
  std::atomic<std::uint64_t> head{0};
  /// reset_for_testing rewinds head; drops are tracked against this base so
  /// wraparound accounting survives the rewind.
  std::atomic<std::uint64_t> base{0};
};

struct LaneRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<Lane>> lanes;  // never shrinks: drained after
                                             // thread death, too
};

LaneRegistry& lane_registry() {
  static LaneRegistry r;
  return r;
}

std::atomic<std::size_t>& ring_capacity() noexcept {
  static std::atomic<std::size_t> cap{kDefaultRingCapacity};
  return cap;
}

thread_local Lane* t_lane = nullptr;
// Name chosen before the lane exists (pool workers name themselves at
// startup).  Held by value so a thread that never emits an event — and
// therefore never creates a lane — still releases it at thread exit.
thread_local bool t_pending_name_set = false;
thread_local std::string t_pending_name;

Lane& this_lane() {
  if (t_lane != nullptr) return *t_lane;
  auto lane = std::make_unique<Lane>();
  const std::size_t cap =
      std::bit_ceil(std::max<std::size_t>(ring_capacity().load(), 2));
  lane->ring = std::vector<Slot>(cap);
  lane->mask = cap - 1;
  LaneRegistry& reg = lane_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  lane->name = t_pending_name_set
                   ? t_pending_name
                   : "lane-" + std::to_string(reg.lanes.size());
  t_pending_name_set = false;
  t_pending_name.clear();
  t_lane = lane.get();
  reg.lanes.push_back(std::move(lane));
  return *t_lane;
}

// ---------------------------------------------------------------- rendering

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string_view string_of(const TraceDump& dump, NameId id) {
  return id < dump.strings.size() ? std::string_view(dump.strings[id])
                                  : std::string_view("");
}

void append_args(std::string& out, const TraceDump& dump, const Event& e) {
  if (e.arg_count == 0) return;
  out += ",\"args\":{";
  for (std::size_t a = 0; a < e.arg_count; ++a) {
    if (a > 0) out += ',';
    append_json_string(out, string_of(dump, e.arg_keys[a]));
    out += ':';
    if ((e.str_mask >> a) & 1u)
      append_json_string(
          out, string_of(dump, static_cast<NameId>(e.arg_vals[a])));
    else
      out += std::to_string(e.arg_vals[a]);
  }
  out += '}';
}

// Little-endian fixed-width appends for the flight format.  The repo only
// targets little-endian hosts; the memcpy keeps the writes alignment-safe.
template <class T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

NameId intern(std::string_view name) {
  StringTable& t = string_table();
  std::lock_guard<std::mutex> lock(t.mutex);
  const auto it = t.ids.find(std::string(name));
  if (it != t.ids.end()) return it->second;
  const auto id = static_cast<NameId>(t.strings.size());
  t.strings.emplace_back(name);
  t.ids.emplace(std::string(name), id);
  return id;
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

void set_ring_capacity(std::size_t events_per_lane) {
  ring_capacity().store(std::max<std::size_t>(events_per_lane, 2));
}

void set_this_lane_name(std::string_view name) {
  if (t_lane != nullptr) {
    std::lock_guard<std::mutex> lock(lane_registry().mutex);
    t_lane->name = std::string(name);
    return;
  }
  t_pending_name_set = true;
  t_pending_name.assign(name.data(), name.size());
}

std::uint32_t next_flow_id() noexcept {
  static std::atomic<std::uint32_t> next{1};
  std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  if (id == 0) id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void emit(EventKind kind, NameId name, std::uint64_t ts_us,
          std::uint64_t dur_us, std::uint32_t flow_id, const Arg* args,
          std::size_t arg_count) noexcept {
  if (!enabled()) return;
  Lane& lane = this_lane();
  const std::uint64_t idx = lane.head.load(std::memory_order_relaxed);
  Slot& s = lane.ring[idx & lane.mask];
  // Seqlock write: odd while the payload is inconsistent, 2*(idx+1) after.
  s.seq.store(2 * idx + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  s.ts.store(ts_us, std::memory_order_relaxed);
  s.dur.store(dur_us, std::memory_order_relaxed);
  s.name.store(name, std::memory_order_relaxed);
  s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
  const auto argc =
      static_cast<std::uint8_t>(std::min(arg_count, kMaxArgs));
  s.argc.store(argc, std::memory_order_relaxed);
  std::uint8_t smask = 0;
  for (std::size_t a = 0; a < argc; ++a) {
    s.keys[a].store(args[a].key, std::memory_order_relaxed);
    s.vals[a].store(args[a].value, std::memory_order_relaxed);
    if (args[a].is_string) smask |= static_cast<std::uint8_t>(1u << a);
  }
  s.smask.store(smask, std::memory_order_relaxed);
  s.flow.store(flow_id, std::memory_order_relaxed);
  s.seq.store(2 * (idx + 1), std::memory_order_release);
  lane.head.store(idx + 1, std::memory_order_release);
}

void instant(NameId name) noexcept {
  if (!enabled()) return;
  emit(EventKind::kInstant, name, now_us(), 0, 0, nullptr, 0);
}

void instant(NameId name, std::initializer_list<Arg> args) noexcept {
  if (!enabled()) return;
  emit(EventKind::kInstant, name, now_us(), 0, 0, args.begin(), args.size());
}

void flow_begin(NameId name, std::uint32_t flow_id) noexcept {
  if (!enabled()) return;
  emit(EventKind::kFlowBegin, name, now_us(), 0, flow_id, nullptr, 0);
}

void flow_end(NameId name, std::uint32_t flow_id) noexcept {
  if (!enabled()) return;
  emit(EventKind::kFlowEnd, name, now_us(), 0, flow_id, nullptr, 0);
}

// -------------------------------------------------------------------- drain

TraceDump drain() {
  TraceDump dump;
  {
    StringTable& t = string_table();
    std::lock_guard<std::mutex> lock(t.mutex);
    dump.strings = t.strings;
  }
  LaneRegistry& reg = lane_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  dump.lanes.reserve(reg.lanes.size());
  for (const auto& lane : reg.lanes) {
    LaneDump out;
    out.name = lane->name;
    const std::uint64_t head = lane->head.load(std::memory_order_acquire);
    const std::uint64_t base = lane->base.load(std::memory_order_relaxed);
    const std::uint64_t cap = lane->ring.size();
    const std::uint64_t live = head - base;
    const std::uint64_t first = live > cap ? head - cap : base;
    out.dropped = first - base;  // overwritten by wraparound
    out.events.reserve(static_cast<std::size_t>(head - first));
    for (std::uint64_t i = first; i < head; ++i) {
      const Slot& s = lane->ring[i & lane->mask];
      const std::uint64_t want = 2 * (i + 1);
      if (s.seq.load(std::memory_order_acquire) != want) {
        ++out.dropped;  // already overwritten (or mid-write) by the producer
        continue;
      }
      Event e;
      e.ts_us = s.ts.load(std::memory_order_relaxed);
      e.dur_us = s.dur.load(std::memory_order_relaxed);
      e.name = s.name.load(std::memory_order_relaxed);
      e.kind = static_cast<EventKind>(s.kind.load(std::memory_order_relaxed));
      e.arg_count = std::min<std::uint8_t>(
          s.argc.load(std::memory_order_relaxed), kMaxArgs);
      e.str_mask = s.smask.load(std::memory_order_relaxed);
      e.flow_id = s.flow.load(std::memory_order_relaxed);
      for (std::size_t a = 0; a < e.arg_count; ++a) {
        e.arg_keys[a] = s.keys[a].load(std::memory_order_relaxed);
        e.arg_vals[a] = s.vals[a].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_relaxed) != want) {
        ++out.dropped;  // torn: the producer lapped us mid-copy
        continue;
      }
      out.events.push_back(e);
    }
    dump.lanes.push_back(std::move(out));
  }
  return dump;
}

void reset_for_testing() {
  LaneRegistry& reg = lane_registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& lane : reg.lanes) {
    const std::uint64_t head = lane->head.load(std::memory_order_relaxed);
    lane->base.store(head, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------- exporters

std::string to_chrome_json(const TraceDump& dump) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (std::size_t l = 0; l < dump.lanes.size(); ++l) {
    const LaneDump& lane = dump.lanes[l];
    sep();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(l) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    append_json_string(out, lane.name);
    out += "}}";
    if (lane.dropped > 0) {
      sep();
      out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(l) +
             ",\"name\":\"sysgo_lane_dropped\",\"args\":{\"dropped\":" +
             std::to_string(lane.dropped) + "}}";
    }
    for (const Event& e : lane.events) {
      sep();
      const char* ph = "i";
      switch (e.kind) {
        case EventKind::kComplete: ph = "X"; break;
        case EventKind::kInstant: ph = "i"; break;
        case EventKind::kFlowBegin: ph = "s"; break;
        case EventKind::kFlowEnd: ph = "f"; break;
      }
      out += "{\"ph\":\"";
      out += ph;
      out += "\",\"pid\":1,\"tid\":" + std::to_string(l) +
             ",\"ts\":" + std::to_string(e.ts_us);
      if (e.kind == EventKind::kComplete)
        out += ",\"dur\":" + std::to_string(e.dur_us);
      out += ",\"name\":";
      append_json_string(out, string_of(dump, e.name));
      out += ",\"cat\":\"sysgo\"";
      if (e.kind == EventKind::kFlowBegin || e.kind == EventKind::kFlowEnd) {
        out += ",\"id\":" + std::to_string(e.flow_id);
        if (e.kind == EventKind::kFlowEnd) out += ",\"bp\":\"e\"";
      }
      if (e.kind == EventKind::kInstant) out += ",\"s\":\"t\"";
      append_args(out, dump, e);
      out += '}';
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string to_flight_bytes(const TraceDump& dump) {
  std::string out;
  out.append("SYSGOFR1", 8);
  put<std::uint32_t>(out, 1);  // version
  put<std::uint32_t>(out, static_cast<std::uint32_t>(dump.strings.size()));
  for (const std::string& s : dump.strings) {
    put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
    out += s;
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(dump.lanes.size()));
  for (const LaneDump& lane : dump.lanes) {
    put<std::uint32_t>(out, static_cast<std::uint32_t>(lane.name.size()));
    out += lane.name;
    put<std::uint64_t>(out, lane.dropped);
    put<std::uint64_t>(out, static_cast<std::uint64_t>(lane.events.size()));
    for (const Event& e : lane.events) {
      put<std::uint64_t>(out, e.ts_us);
      put<std::uint64_t>(out, e.dur_us);
      put<std::uint32_t>(out, e.name);
      put<std::uint8_t>(out, static_cast<std::uint8_t>(e.kind));
      put<std::uint8_t>(out, e.arg_count);
      put<std::uint8_t>(out, e.str_mask);
      put<std::uint8_t>(out, 0);
      put<std::uint32_t>(out, e.flow_id);
      for (std::size_t a = 0; a < e.arg_count; ++a) {
        put<std::uint32_t>(out, e.arg_keys[a]);
        put<std::int64_t>(out, e.arg_vals[a]);
      }
    }
  }
  return out;
}

void write_trace_file(const std::string& path) {
  const TraceDump dump = drain();
  const bool json =
      path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  util::write_file_atomic(path,
                          json ? to_chrome_json(dump) : to_flight_bytes(dump));
}

}  // namespace sysgo::obs::trace
