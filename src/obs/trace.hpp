// Span tracing & flight recorder: the *when* and *why* companion to the
// metrics registry's *how much*.
//
// Every thread that records gets a private ring buffer ("lane") created on
// its first event; producers are single-writer and lock-free (one relaxed
// ring-slot write plus a seqlock stamp per event), and any thread may drain
// all lanes concurrently with recording — torn slots are detected by the
// per-slot sequence protocol and counted as dropped, never emitted.  The
// ring keeps only the last N events per lane, so always-on recording is a
// bounded-memory flight recorder: a failing run can dump its tail.
//
// Three event shapes:
//  * Complete — a span [ts, ts+dur) emitted once at span end (RAII
//    TraceSpan), carrying up to kMaxArgs key/value args.
//  * Instant  — a point event (store hit/miss, accepted synth move).
//  * Flow     — begin/end pairs sharing a flow id, rendered as arrows in
//    Chrome tracing (thread-pool submit → execute).
//
// Exporters: Chrome trace-event JSON (loadable in chrome://tracing and
// Perfetto; deterministic field ordering) and a compact binary
// flight-recorder format ("SYSGOFR1"); src/obs/trace_report.* parses both
// back and computes critical path / utilization / top-K without a browser.
//
// Tracing is OFF by default (--trace turns it on) and must never perturb
// results: instrumentation only ever branches on enabled(), and tests/obs/
// asserts records are byte-identical with tracing on and off.  See
// src/obs/README.md for the lane/seqlock design and ring sizing rules.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sysgo::obs::trace {

/// Global recording switch, default OFF.  Every instrumentation site pays
/// one relaxed atomic load when tracing is disabled; bench/trace_overhead
/// pins both the disabled and the actively-recording deltas.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Interned event/arg-key/string-value names.  Id 0 is the empty string.
/// Intern once per call site (function-local static) — the table takes a
/// mutex — and reuse the id on the hot path.
using NameId = std::uint32_t;
[[nodiscard]] NameId intern(std::string_view name);

/// Microseconds since the process-wide trace epoch (first use).  Backed by
/// steady_clock: monotonic across all lanes.
[[nodiscard]] std::uint64_t now_us() noexcept;

/// Ring capacity (events per lane) for lanes created AFTER this call;
/// rounded up to a power of two, default kDefaultRingCapacity.  Existing
/// lanes keep their rings — size before the run starts recording.
inline constexpr std::size_t kDefaultRingCapacity = 1u << 14;
void set_ring_capacity(std::size_t events_per_lane);

/// Name this thread's lane ("main", "pool0.worker2", ...).  May be called
/// before the lane exists (the name is applied on creation) or after.
/// Unnamed lanes render as "lane-<k>" in creation order.
void set_this_lane_name(std::string_view name);

/// Monotonic flow-arrow ids (never 0) pairing kFlowBegin with kFlowEnd.
[[nodiscard]] std::uint32_t next_flow_id() noexcept;

enum class EventKind : std::uint8_t {
  kComplete = 0,  // span: [ts_us, ts_us + dur_us)
  kInstant = 1,   // point event at ts_us
  kFlowBegin = 2, // arrow tail at ts_us (flow_id pairs it with its head)
  kFlowEnd = 3,   // arrow head at ts_us
};

// 8 fits str_mask's uint8 bit-per-arg exactly; the synthesizer's restart
// spans are the widest emitter (restart/accepted/improved + the three
// replay-savings args).
inline constexpr std::size_t kMaxArgs = 8;

/// One event arg: interned key, and either a plain integer value or (when
/// the event's str_mask bit is set) an interned-string value id.
struct Arg {
  NameId key = 0;
  std::int64_t value = 0;
  bool is_string = false;
};

/// Drained event (also the payload layout of a ring slot).
struct Event {
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;   // kComplete only
  NameId name = 0;
  EventKind kind = EventKind::kInstant;
  std::uint8_t arg_count = 0;
  std::uint8_t str_mask = 0;  // bit i: arg_vals[i] is a string-table id
  std::uint32_t flow_id = 0;  // kFlowBegin/kFlowEnd only
  std::array<NameId, kMaxArgs> arg_keys{};
  std::array<std::int64_t, kMaxArgs> arg_vals{};
};

/// Record an event on this thread's lane (no-op when disabled).  `args`
/// beyond kMaxArgs are ignored.
void emit(EventKind kind, NameId name, std::uint64_t ts_us,
          std::uint64_t dur_us, std::uint32_t flow_id, const Arg* args,
          std::size_t arg_count) noexcept;

void instant(NameId name) noexcept;
void instant(NameId name, std::initializer_list<Arg> args) noexcept;
void flow_begin(NameId name, std::uint32_t flow_id) noexcept;
void flow_end(NameId name, std::uint32_t flow_id) noexcept;

/// RAII span: captures the start timestamp at construction and emits one
/// kComplete event at destruction.  Disabled tracing costs one branch; args
/// added on a disarmed span are dropped for free.
class TraceSpan {
 public:
  explicit TraceSpan(NameId name) noexcept
      : armed_(enabled()), name_(name), start_(armed_ ? now_us() : 0) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (!armed_) return;
    emit(EventKind::kComplete, name_, start_, now_us() - start_, 0,
         args_.data(), argc_);
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  void arg(NameId key, std::int64_t value) noexcept {
    if (!armed_ || argc_ >= kMaxArgs) return;
    args_[argc_++] = {key, value, false};
  }

  /// String-valued arg: `value` is an interned string id.
  void str_arg(NameId key, NameId value) noexcept {
    if (!armed_ || argc_ >= kMaxArgs) return;
    args_[argc_++] = {key, static_cast<std::int64_t>(value), true};
  }

 private:
  const bool armed_;
  const NameId name_;
  const std::uint64_t start_;
  std::uint8_t argc_ = 0;
  std::array<Arg, kMaxArgs> args_{};
};

// -------------------------------------------------------------------- drain

/// One lane's tail: events in emission order (per-lane end-timestamps are
/// monotonic — single producer on a monotonic clock), plus how many events
/// were lost to ring wraparound or torn by a concurrent overwrite.
struct LaneDump {
  std::string name;
  std::uint64_t dropped = 0;
  std::vector<Event> events;
};

/// A drained trace: the string table (NameId -> strings[NameId]) and every
/// lane in creation order.  Draining copies — recording continues unharmed.
struct TraceDump {
  std::vector<std::string> strings;
  std::vector<LaneDump> lanes;
};

[[nodiscard]] TraceDump drain();

/// Rewind every lane to empty (producers must be quiescent) and zero the
/// drop accounting.  Lanes, names, and the string table survive.  Tests and
/// bench arms only.
void reset_for_testing();

// ---------------------------------------------------------------- exporters

/// Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit":"ms"}.
/// Lanes map to tids in creation order with thread_name metadata; field
/// order within an event object is fixed (ph, pid, tid, ts, dur, name, cat,
/// id, bp, s, args) and args keys render in recorded order, so the document
/// layout is deterministic.  Load in chrome://tracing or ui.perfetto.dev.
[[nodiscard]] std::string to_chrome_json(const TraceDump& dump);

/// Compact binary flight-recorder bytes (magic "SYSGOFR1", version 1):
/// string table + per-lane packed event arrays, little-endian fixed-width
/// fields.  ~5x smaller than the JSON and cheap enough to dump from a
/// crashing run's signal-free failure path.
[[nodiscard]] std::string to_flight_bytes(const TraceDump& dump);

/// Drain and atomically write to `path`: Chrome JSON when the path ends in
/// ".json", flight-recorder binary otherwise (the `--trace PATH` sink).
void write_trace_file(const std::string& path);

}  // namespace sysgo::obs::trace
