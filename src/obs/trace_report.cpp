#include "obs/trace_report.hpp"

#include "obs/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

namespace sysgo::obs::trace {

namespace {

/// Dump-local interner (parsed documents rebuild their own string table).
struct DumpInterner {
  TraceDump& dump;
  std::unordered_map<std::string, NameId> ids{{"", 0}};

  explicit DumpInterner(TraceDump& d) : dump(d) {
    dump.strings.assign(1, "");
  }

  NameId id(const std::string& s) {
    const auto it = ids.find(s);
    if (it != ids.end()) return it->second;
    const auto nid = static_cast<NameId>(dump.strings.size());
    dump.strings.push_back(s);
    ids.emplace(s, nid);
    return nid;
  }
};

// --------------------------------------------------------- flight-bytes I/O

struct ByteReader {
  const std::string& bytes;
  std::size_t pos = 0;

  template <class T>
  T get() {
    if (pos + sizeof(T) > bytes.size())
      throw std::runtime_error("trace flight: truncated payload");
    T v;
    std::memcpy(&v, bytes.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_string(std::size_t len) {
    if (pos + len > bytes.size())
      throw std::runtime_error("trace flight: truncated string");
    std::string s = bytes.substr(pos, len);
    pos += len;
    return s;
  }
};

constexpr std::string_view kFlightMagic = "SYSGOFR1";

}  // namespace

TraceDump parse_chrome_json(const std::string& json) {
  const json::Value root = json::parse(json);
  if (root.kind != json::Value::Kind::kObject)
    throw std::runtime_error("trace json: document is not an object");
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || events->kind != json::Value::Kind::kArray)
    throw std::runtime_error("trace json: missing traceEvents array");

  TraceDump dump;
  DumpInterner intern(dump);
  std::unordered_map<std::int64_t, std::size_t> lane_of_tid;
  const auto lane_index = [&](std::int64_t tid) {
    const auto it = lane_of_tid.find(tid);
    if (it != lane_of_tid.end()) return it->second;
    const std::size_t idx = dump.lanes.size();
    lane_of_tid.emplace(tid, idx);
    LaneDump lane;
    lane.name = "tid-" + std::to_string(tid);
    dump.lanes.push_back(std::move(lane));
    return idx;
  };

  for (const json::Value& ev : events->items) {
    if (ev.kind != json::Value::Kind::kObject) continue;
    const json::Value* ph = ev.find("ph");
    if (ph == nullptr || ph->kind != json::Value::Kind::kString) continue;
    const json::Value* tid = ev.find("tid");
    LaneDump& lane = dump.lanes[lane_index(
        tid != nullptr && tid->kind == json::Value::Kind::kNumber
            ? json::as_i64(*tid)
            : 0)];
    const json::Value* name = ev.find("name");
    const std::string name_str =
        name != nullptr && name->kind == json::Value::Kind::kString ? name->str
                                                                  : "";
    const json::Value* args = ev.find("args");
    if (ph->str == "M") {
      if (args == nullptr) continue;
      if (name_str == "thread_name") {
        if (const json::Value* n = args->find("name"))
          if (n->kind == json::Value::Kind::kString) lane.name = n->str;
      } else if (name_str == "sysgo_lane_dropped") {
        if (const json::Value* n = args->find("dropped"))
          if (n->kind == json::Value::Kind::kNumber)
            lane.dropped = static_cast<std::uint64_t>(json::as_i64(*n));
      }
      continue;
    }
    Event e;
    if (ph->str == "X") e.kind = EventKind::kComplete;
    else if (ph->str == "i" || ph->str == "I") e.kind = EventKind::kInstant;
    else if (ph->str == "s") e.kind = EventKind::kFlowBegin;
    else if (ph->str == "f") e.kind = EventKind::kFlowEnd;
    else continue;  // foreign phase: skip
    e.name = intern.id(name_str);
    if (const json::Value* ts = ev.find("ts"))
      if (ts->kind == json::Value::Kind::kNumber)
        e.ts_us = static_cast<std::uint64_t>(json::as_i64(*ts));
    if (const json::Value* dur = ev.find("dur"))
      if (dur->kind == json::Value::Kind::kNumber)
        e.dur_us = static_cast<std::uint64_t>(json::as_i64(*dur));
    if (const json::Value* id = ev.find("id"))
      if (id->kind == json::Value::Kind::kNumber)
        e.flow_id = static_cast<std::uint32_t>(json::as_i64(*id));
    if (args != nullptr && args->kind == json::Value::Kind::kObject) {
      for (const auto& [key, val] : args->members) {
        if (e.arg_count >= kMaxArgs) break;
        if (val.kind == json::Value::Kind::kNumber) {
          e.arg_keys[e.arg_count] = intern.id(key);
          e.arg_vals[e.arg_count] = json::as_i64(val);
          ++e.arg_count;
        } else if (val.kind == json::Value::Kind::kString) {
          e.arg_keys[e.arg_count] = intern.id(key);
          e.arg_vals[e.arg_count] =
              static_cast<std::int64_t>(intern.id(val.str));
          e.str_mask |= static_cast<std::uint8_t>(1u << e.arg_count);
          ++e.arg_count;
        }
      }
    }
    lane.events.push_back(e);
  }
  return dump;
}

TraceDump parse_flight_bytes(const std::string& bytes) {
  if (bytes.size() < kFlightMagic.size() ||
      bytes.compare(0, kFlightMagic.size(), kFlightMagic) != 0)
    throw std::runtime_error("trace flight: bad magic");
  ByteReader in{bytes, kFlightMagic.size()};
  const auto version = in.get<std::uint32_t>();
  if (version != 1)
    throw std::runtime_error("trace flight: unsupported version " +
                             std::to_string(version));
  TraceDump dump;
  const auto nstrings = in.get<std::uint32_t>();
  dump.strings.reserve(nstrings);
  for (std::uint32_t i = 0; i < nstrings; ++i)
    dump.strings.push_back(in.get_string(in.get<std::uint32_t>()));
  const auto nlanes = in.get<std::uint32_t>();
  for (std::uint32_t l = 0; l < nlanes; ++l) {
    LaneDump lane;
    lane.name = in.get_string(in.get<std::uint32_t>());
    lane.dropped = in.get<std::uint64_t>();
    const auto nevents = in.get<std::uint64_t>();
    lane.events.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(nevents, 1u << 22)));
    for (std::uint64_t i = 0; i < nevents; ++i) {
      Event e;
      e.ts_us = in.get<std::uint64_t>();
      e.dur_us = in.get<std::uint64_t>();
      e.name = in.get<std::uint32_t>();
      e.kind = static_cast<EventKind>(in.get<std::uint8_t>());
      e.arg_count = in.get<std::uint8_t>();
      e.str_mask = in.get<std::uint8_t>();
      (void)in.get<std::uint8_t>();  // pad
      e.flow_id = in.get<std::uint32_t>();
      if (e.arg_count > kMaxArgs)
        throw std::runtime_error("trace flight: bad arg count");
      for (std::size_t a = 0; a < e.arg_count; ++a) {
        e.arg_keys[a] = in.get<std::uint32_t>();
        e.arg_vals[a] = in.get<std::int64_t>();
      }
      if (e.name >= dump.strings.size())
        throw std::runtime_error("trace flight: name id out of range");
      lane.events.push_back(e);
    }
    dump.lanes.push_back(std::move(lane));
  }
  return dump;
}

TraceDump parse_trace(const std::string& bytes) {
  if (bytes.size() >= kFlightMagic.size() &&
      bytes.compare(0, kFlightMagic.size(), kFlightMagic) == 0)
    return parse_flight_bytes(bytes);
  return parse_chrome_json(bytes);
}

// ----------------------------------------------------------------- analysis

namespace {

struct FlatSpan {
  std::size_t lane = 0;
  NameId name = 0;
  std::uint64_t ts = 0;
  std::uint64_t end = 0;  // ts + dur
};

std::string_view dump_string(const TraceDump& dump, NameId id) {
  return id < dump.strings.size() ? std::string_view(dump.strings[id])
                                  : std::string_view("?");
}

/// Union length of [ts, end) intervals (assumes `spans` sorted by ts).
std::uint64_t merged_busy(const std::vector<const FlatSpan*>& spans) {
  std::uint64_t busy = 0;
  std::uint64_t cur_lo = 0;
  std::uint64_t cur_hi = 0;
  bool open = false;
  for (const FlatSpan* s : spans) {
    if (!open || s->ts > cur_hi) {
      if (open) busy += cur_hi - cur_lo;
      cur_lo = s->ts;
      cur_hi = s->end;
      open = true;
    } else {
      cur_hi = std::max(cur_hi, s->end);
    }
  }
  if (open) busy += cur_hi - cur_lo;
  return busy;
}

void append_row(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_row(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

double ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

}  // namespace

Report analyze(const TraceDump& dump, const ReportOptions& opts) {
  Report rep;
  std::vector<FlatSpan> spans;
  bool any_event = false;
  std::uint64_t first = ~std::uint64_t{0};
  std::uint64_t last = 0;
  for (std::size_t l = 0; l < dump.lanes.size(); ++l) {
    const LaneDump& lane = dump.lanes[l];
    rep.dropped += lane.dropped;
    for (const Event& e : lane.events) {
      any_event = true;
      first = std::min(first, e.ts_us);
      last = std::max(last, e.ts_us + e.dur_us);
      if (e.kind == EventKind::kComplete) {
        spans.push_back({l, e.name, e.ts_us, e.ts_us + e.dur_us});
        ++rep.span_count;
      } else if (e.kind == EventKind::kInstant) {
        ++rep.instant_count;
      }
    }
  }
  if (!any_event) return rep;
  rep.first_us = first;
  rep.last_us = last;
  rep.wall_us = last - first;

  // Per-lane utilization: union of that lane's span intervals over the
  // trace wall-clock (idle lanes report 0 spans, 0 busy).
  for (std::size_t l = 0; l < dump.lanes.size(); ++l) {
    std::vector<const FlatSpan*> lane_spans;
    for (const FlatSpan& s : spans)
      if (s.lane == l) lane_spans.push_back(&s);
    std::sort(lane_spans.begin(), lane_spans.end(),
              [](const FlatSpan* a, const FlatSpan* b) {
                return a->ts < b->ts || (a->ts == b->ts && a->end < b->end);
              });
    LaneUtilization u;
    u.name = dump.lanes[l].name;
    u.spans = lane_spans.size();
    u.busy_us = merged_busy(lane_spans);
    u.utilization = rep.wall_us > 0 ? static_cast<double>(u.busy_us) /
                                          static_cast<double>(rep.wall_us)
                                    : 0.0;
    rep.lanes.push_back(std::move(u));
  }

  // Per-stage breakdown: aggregate by span name, largest total first.
  std::map<std::string_view, StageRow> stages;
  for (const FlatSpan& s : spans) {
    const std::string_view name = dump_string(dump, s.name);
    StageRow& row = stages[name];
    if (row.count == 0) row.name = std::string(name);
    ++row.count;
    row.total_us += s.end - s.ts;
    row.max_us = std::max(row.max_us, s.end - s.ts);
  }
  for (auto& [name, row] : stages) rep.stages.push_back(std::move(row));
  std::sort(rep.stages.begin(), rep.stages.end(),
            [](const StageRow& a, const StageRow& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.name < b.name;
            });

  // Span-duration top-K.
  std::vector<const FlatSpan*> by_dur;
  by_dur.reserve(spans.size());
  for (const FlatSpan& s : spans) by_dur.push_back(&s);
  std::sort(by_dur.begin(), by_dur.end(),
            [](const FlatSpan* a, const FlatSpan* b) {
              const std::uint64_t da = a->end - a->ts;
              const std::uint64_t db = b->end - b->ts;
              if (da != db) return da > db;
              if (a->ts != b->ts) return a->ts < b->ts;
              return a->lane < b->lane;
            });
  for (std::size_t i = 0; i < std::min(opts.top_k, by_dur.size()); ++i) {
    const FlatSpan& s = *by_dur[i];
    rep.top_spans.push_back({std::string(dump_string(dump, s.name)),
                             dump.lanes[s.lane].name, s.ts, s.end - s.ts});
  }

  // Critical path: walk backwards from the latest-finishing span, each time
  // to the latest-ending span that finished no later than the current span
  // began.  Predecessor positions strictly decrease in the (end, ts, lane)
  // order, so the walk terminates.
  std::vector<const FlatSpan*> by_end = by_dur;
  std::sort(by_end.begin(), by_end.end(),
            [](const FlatSpan* a, const FlatSpan* b) {
              if (a->end != b->end) return a->end < b->end;
              if (a->ts != b->ts) return a->ts < b->ts;
              return a->lane < b->lane;
            });
  if (!by_end.empty()) {
    std::vector<const FlatSpan*> path;
    std::size_t cur = by_end.size() - 1;
    path.push_back(by_end[cur]);
    for (;;) {
      const std::uint64_t start = by_end[cur]->ts;
      // Largest index before cur whose end <= start.
      std::size_t pred = cur;
      bool found = false;
      for (std::size_t i = cur; i-- > 0;) {
        if (by_end[i]->end <= start) {
          pred = i;
          found = true;
          break;
        }
      }
      if (!found) break;
      path.push_back(by_end[pred]);
      cur = pred;
    }
    std::reverse(path.begin(), path.end());
    for (const FlatSpan* s : path) {
      rep.critical_path.push_back({std::string(dump_string(dump, s->name)),
                                   dump.lanes[s->lane].name, s->ts,
                                   s->end - s->ts});
      rep.critical_busy_us += s->end - s->ts;
    }
  }
  return rep;
}

std::string report_text(const Report& rep) {
  std::string out;
  append_row(out,
             "trace report\n"
             "  wall-clock %.3f ms, %zu spans, %zu instants, %llu dropped\n",
             ms(rep.wall_us), rep.span_count, rep.instant_count,
             static_cast<unsigned long long>(rep.dropped));
  if (rep.span_count == 0) {
    out += "  (no spans)\n";
    return out;
  }

  out += "\nper-worker utilization\n";
  append_row(out, "  %-24s %8s %12s %8s\n", "lane", "spans", "busy-ms",
             "util%");
  for (const LaneUtilization& u : rep.lanes)
    append_row(out, "  %-24s %8zu %12.3f %8.1f\n", u.name.c_str(), u.spans,
               ms(u.busy_us), 100.0 * u.utilization);

  out += "\nstage breakdown\n";
  append_row(out, "  %-32s %8s %12s %10s %10s\n", "stage", "count",
             "total-ms", "mean-ms", "max-ms");
  for (const StageRow& s : rep.stages)
    append_row(out, "  %-32s %8zu %12.3f %10.3f %10.3f\n", s.name.c_str(),
               s.count, ms(s.total_us),
               ms(s.total_us) / static_cast<double>(s.count), ms(s.max_us));

  append_row(out, "\ntop %zu spans by duration\n", rep.top_spans.size());
  append_row(out, "  %10s %12s  %-20s %s\n", "dur-ms", "start-ms", "lane",
             "name");
  for (const SpanRow& s : rep.top_spans)
    append_row(out, "  %10.3f %12.3f  %-20s %s\n", ms(s.dur_us),
               ms(s.ts_us - rep.first_us), s.lane.c_str(), s.name.c_str());

  const double cover =
      rep.wall_us > 0 ? 100.0 * static_cast<double>(rep.critical_busy_us) /
                            static_cast<double>(rep.wall_us)
                      : 0.0;
  append_row(out, "\ncritical path (%zu spans, %.3f ms busy, %.1f%% of wall)\n",
             rep.critical_path.size(), ms(rep.critical_busy_us), cover);
  append_row(out, "  %12s %10s  %-20s %s\n", "start-ms", "dur-ms", "lane",
             "name");
  for (const SpanRow& s : rep.critical_path)
    append_row(out, "  %12.3f %10.3f  %-20s %s\n", ms(s.ts_us - rep.first_us),
               ms(s.dur_us), s.lane.c_str(), s.name.c_str());
  return out;
}

}  // namespace sysgo::obs::trace
