// Offline analysis of saved traces: parse Chrome trace-event JSON or the
// binary flight-recorder format back into a TraceDump, then compute the
// numbers a CI log needs without a browser — critical path, per-worker
// utilization, span-duration top-K, and a per-stage breakdown table.
// Backs `sysgo trace report PATH` and the round-trip tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sysgo::obs::trace {

/// Parse a Chrome trace-event JSON document (the to_chrome_json schema;
/// tolerant of reordered fields and foreign events).  Lanes are keyed by
/// tid in order of first appearance; thread_name metadata names them.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] TraceDump parse_chrome_json(const std::string& json);

/// Parse flight-recorder bytes ("SYSGOFR1").  Throws std::runtime_error on
/// a bad magic, truncated payload, or out-of-range string ids.
[[nodiscard]] TraceDump parse_flight_bytes(const std::string& bytes);

/// Auto-detect by leading bytes: flight magic, else JSON.
[[nodiscard]] TraceDump parse_trace(const std::string& bytes);

// ----------------------------------------------------------------- analysis

struct SpanRow {
  std::string name;
  std::string lane;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
};

struct LaneUtilization {
  std::string name;
  std::size_t spans = 0;
  std::uint64_t busy_us = 0;  // union of complete-span intervals (nesting
                              // and overlap counted once)
  double utilization = 0.0;   // busy / trace wall-clock
};

struct StageRow {
  std::string name;
  std::size_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t max_us = 0;
};

struct ReportOptions {
  std::size_t top_k = 10;
};

/// The derived view of one trace.  The critical path is the backward chain
/// from the latest-finishing span: each predecessor is the latest-ending
/// span that finished no later than the current span began (a deterministic
/// causal approximation — the chain shows what the run was waiting on;
/// gaps on it are moments when nothing was completing anywhere).
struct Report {
  std::uint64_t first_us = 0;
  std::uint64_t last_us = 0;   // max span end / event ts
  std::uint64_t wall_us = 0;   // last - first
  std::size_t span_count = 0;
  std::size_t instant_count = 0;
  std::uint64_t dropped = 0;   // summed over lanes
  std::vector<LaneUtilization> lanes;       // creation order
  std::vector<StageRow> stages;             // by total_us, descending
  std::vector<SpanRow> top_spans;           // by dur_us, descending, top-K
  std::vector<SpanRow> critical_path;       // chronological
  std::uint64_t critical_busy_us = 0;       // sum of path durations
};

[[nodiscard]] Report analyze(const TraceDump& dump,
                             const ReportOptions& opts = {});

/// Fixed-layout text rendering (the `sysgo trace report` output).
[[nodiscard]] std::string report_text(const Report& report);

}  // namespace sysgo::obs::trace
