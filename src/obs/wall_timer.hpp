// Shared wall-clock timer: the one place steady_clock arithmetic lives.
//
// Every call site that used to hand-roll
// `duration<double, milli>(steady_clock::now() - t0).count()` (engine job
// timing, synthesizer budgets, CLI progress ETA) constructs a WallTimer
// instead; obs::ScopedTimer builds on it to feed latency histograms.
#pragma once

#include <chrono>
#include <cstdint>

namespace sysgo::obs {

class WallTimer {
 public:
  WallTimer() noexcept : t0_(Clock::now()) {}

  void reset() noexcept { t0_ = Clock::now(); }

  /// Elapsed wall-clock milliseconds (fractional).
  [[nodiscard]] double millis() const noexcept {
    return std::chrono::duration<double, std::milli>(Clock::now() - t0_)
        .count();
  }

  /// Elapsed wall-clock microseconds, truncated.
  [[nodiscard]] std::uint64_t micros() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              t0_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point t0_;
};

}  // namespace sysgo::obs
