#include "protocol/builders.hpp"

#include <algorithm>

#include "graph/coloring.hpp"
#include "graph/matching.hpp"

namespace sysgo::protocol {

SystolicSchedule edge_coloring_schedule(const graph::Digraph& g, Mode mode) {
  const graph::EdgeColoring coloring = graph::greedy_edge_coloring(g);
  SystolicSchedule sched;
  sched.n = g.vertex_count();
  sched.mode = mode;
  const int rounds_per_color = (mode == Mode::kHalfDuplex) ? 2 : 1;
  sched.period.resize(static_cast<std::size_t>(coloring.color_count) *
                      static_cast<std::size_t>(rounds_per_color));
  for (std::size_t i = 0; i < coloring.edges.size(); ++i) {
    const auto [u, v] = coloring.edges[i];
    const int c = coloring.colors[i];
    if (mode == Mode::kFullDuplex) {
      auto& round = sched.period[static_cast<std::size_t>(c)];
      round.arcs.push_back({u, v});
      round.arcs.push_back({v, u});
    } else {
      sched.period[static_cast<std::size_t>(2 * c)].arcs.push_back({u, v});
      sched.period[static_cast<std::size_t>(2 * c + 1)].arcs.push_back({v, u});
    }
  }
  for (auto& r : sched.period) r.canonicalize();
  return sched;
}

namespace {

Round random_round(const graph::Digraph& g, Mode mode, util::Rng& rng) {
  Round round;
  if (mode == Mode::kFullDuplex) {
    auto edges = g.undirected_edges();
    std::shuffle(edges.begin(), edges.end(), rng.engine());
    std::vector<char> used(static_cast<std::size_t>(g.vertex_count()), 0);
    for (const auto& [u, v] : edges) {
      if (used[static_cast<std::size_t>(u)] || used[static_cast<std::size_t>(v)])
        continue;
      used[static_cast<std::size_t>(u)] = used[static_cast<std::size_t>(v)] = 1;
      round.arcs.push_back({u, v});
      round.arcs.push_back({v, u});
    }
  } else {
    std::vector<graph::Arc> pool(g.arcs().begin(), g.arcs().end());
    std::shuffle(pool.begin(), pool.end(), rng.engine());
    round.arcs = graph::greedy_matching(pool, g.vertex_count());
  }
  round.canonicalize();
  return round;
}

}  // namespace

SystolicSchedule random_systolic_schedule(const graph::Digraph& g, int s, Mode mode,
                                          util::Rng& rng) {
  SystolicSchedule sched;
  sched.n = g.vertex_count();
  sched.mode = mode;
  sched.period.reserve(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) sched.period.push_back(random_round(g, mode, rng));
  return sched;
}

Protocol random_protocol(const graph::Digraph& g, int t, Mode mode, util::Rng& rng) {
  Protocol p;
  p.n = g.vertex_count();
  p.mode = mode;
  p.rounds.reserve(static_cast<std::size_t>(t));
  for (int i = 0; i < t; ++i) p.rounds.push_back(random_round(g, mode, rng));
  return p;
}

}  // namespace sysgo::protocol
