// Generic systolic schedule builders.
//
// * edge_coloring_schedule — the Liestman–Richards "periodic" construction:
//   a proper edge coloring induces one (full-duplex) or two (half-duplex)
//   rounds per color class.
// * random_systolic_schedule / random_protocol — randomized matchings, used
//   by property tests and as weak baselines.
#pragma once

#include "graph/digraph.hpp"
#include "protocol/systolic.hpp"
#include "util/rng.hpp"

namespace sysgo::protocol {

/// Periodic schedule from a greedy proper edge coloring of g's undirected
/// support.  Half-duplex: period = 2 · #colors (each color forward then
/// backward).  Full-duplex: period = #colors.
///
/// Because the coloring runs on the undirected support, schedules for
/// non-symmetric digraphs activate reversed arcs that g itself lacks (the
/// backward rounds / the opposite full-duplex directions); validate or
/// compile such schedules without a graph, or against the support.
[[nodiscard]] SystolicSchedule edge_coloring_schedule(const graph::Digraph& g,
                                                      Mode mode);

/// Random s-periodic schedule: each period round is a greedy matching over
/// a shuffled arc pool of g.  Always structurally valid; completeness is
/// whatever it is (property tests only).
[[nodiscard]] SystolicSchedule random_systolic_schedule(const graph::Digraph& g,
                                                        int s, Mode mode,
                                                        util::Rng& rng);

/// Random non-periodic protocol of t rounds.
[[nodiscard]] Protocol random_protocol(const graph::Digraph& g, int t, Mode mode,
                                       util::Rng& rng);

}  // namespace sysgo::protocol
