#include "protocol/classic_protocols.hpp"

#include <stdexcept>

namespace sysgo::protocol {
namespace {

// Expand one undirected color class into schedule rounds (two directed
// rounds for half-duplex, one both-ways round for full-duplex).
void append_color_class(SystolicSchedule& sched,
                        const std::vector<std::pair<int, int>>& edges, Mode mode) {
  if (mode == Mode::kFullDuplex) {
    Round r;
    for (auto [u, v] : edges) {
      r.arcs.push_back({u, v});
      r.arcs.push_back({v, u});
    }
    r.canonicalize();
    sched.period.push_back(std::move(r));
  } else {
    Round fwd, bwd;
    for (auto [u, v] : edges) {
      fwd.arcs.push_back({u, v});
      bwd.arcs.push_back({v, u});
    }
    fwd.canonicalize();
    bwd.canonicalize();
    sched.period.push_back(std::move(fwd));
    sched.period.push_back(std::move(bwd));
  }
}

}  // namespace

SystolicSchedule path_schedule(int n, Mode mode) {
  if (n < 2) throw std::invalid_argument("path_schedule: need n >= 2");
  SystolicSchedule sched;
  sched.n = n;
  sched.mode = mode;
  std::vector<std::pair<int, int>> even, odd;
  for (int i = 0; i + 1 < n; ++i) (i % 2 == 0 ? even : odd).emplace_back(i, i + 1);
  append_color_class(sched, even, mode);
  append_color_class(sched, odd, mode);
  return sched;
}

SystolicSchedule cycle_schedule(int n, Mode mode) {
  if (n < 3) throw std::invalid_argument("cycle_schedule: need n >= 3");
  SystolicSchedule sched;
  sched.n = n;
  sched.mode = mode;
  std::vector<std::pair<int, int>> classes[3];
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    int color = i % 2;
    if (n % 2 == 1 && i == n - 1) color = 2;  // odd cycle needs a third class
    classes[color].emplace_back(i, j);
  }
  for (const auto& cls : classes)
    if (!cls.empty()) append_color_class(sched, cls, mode);
  return sched;
}

SystolicSchedule grid_schedule(int rows, int cols, Mode mode) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("grid_schedule: bad size");
  SystolicSchedule sched;
  sched.n = rows * cols;
  sched.mode = mode;
  auto id = [cols](int r, int c) { return r * cols + c; };
  std::vector<std::pair<int, int>> cls[4];  // row-even, row-odd, col-even, col-odd
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c + 1 < cols; ++c)
      cls[c % 2].emplace_back(id(r, c), id(r, c + 1));
  for (int c = 0; c < cols; ++c)
    for (int r = 0; r + 1 < rows; ++r)
      cls[2 + r % 2].emplace_back(id(r, c), id(r + 1, c));
  for (const auto& edges : cls)
    if (!edges.empty()) append_color_class(sched, edges, mode);
  return sched;
}

SystolicSchedule hypercube_schedule(int D, Mode mode) {
  if (D < 1 || D > 24) throw std::invalid_argument("hypercube_schedule: bad D");
  const int n = 1 << D;
  SystolicSchedule sched;
  sched.n = n;
  sched.mode = mode;
  for (int b = 0; b < D; ++b) {
    std::vector<std::pair<int, int>> edges;
    for (int v = 0; v < n; ++v)
      if ((v & (1 << b)) == 0) edges.emplace_back(v, v ^ (1 << b));
    append_color_class(sched, edges, mode);
  }
  return sched;
}

SystolicSchedule complete_power2_schedule(int n, Mode mode) {
  if (n < 2 || (n & (n - 1)) != 0)
    throw std::invalid_argument("complete_power2_schedule: n must be a power of 2");
  int D = 0;
  while ((1 << D) < n) ++D;
  SystolicSchedule sched = hypercube_schedule(D, mode);
  sched.n = n;  // pairings i <-> i^bit are complete-graph edges
  return sched;
}

}  // namespace sysgo::protocol
