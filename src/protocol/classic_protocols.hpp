// Hand-crafted systolic schedules for the classic topologies — the
// upper-bound side of the comparison benches.  All are small-period
// ("traffic-light") protocols in the style of [8, 11, 20]:
//
// * path / cycle   — alternate the even/odd edge classes, sweeping
//                    information in both directions;
// * grid / torus   — dimension-interleaved variant of the same idea;
// * hypercube      — dimension-order exchange (full-duplex gossip in
//                    exactly D rounds, the optimum);
// * complete graph — hypercube pairing embedded in K_{2^k}.
#pragma once

#include "protocol/systolic.hpp"

namespace sysgo::protocol {

/// 4-periodic (half-duplex) / 2-periodic (full-duplex) schedule for P_n.
[[nodiscard]] SystolicSchedule path_schedule(int n, Mode mode);

/// Cycle C_n: parity classes when n is even (period 4/2); a third color
/// class when n is odd (period 6/3).
[[nodiscard]] SystolicSchedule cycle_schedule(int n, Mode mode);

/// rows x cols grid: row phases then column phases (period 8/4).
[[nodiscard]] SystolicSchedule grid_schedule(int rows, int cols, Mode mode);

/// Hypercube Q_D dimension-order exchange; full-duplex period D completes
/// gossip in D rounds; half-duplex period 2D alternates arc directions.
[[nodiscard]] SystolicSchedule hypercube_schedule(int D, Mode mode);

/// K_n with n = 2^k: hypercube pairing i <-> i xor 2^b embedded in the
/// complete graph (full-duplex gossip in log2(n) rounds).
[[nodiscard]] SystolicSchedule complete_power2_schedule(int n, Mode mode);

}  // namespace sysgo::protocol
