#include "protocol/compiled.hpp"

#include <algorithm>
#include <string>

#include "graph/matching.hpp"

namespace sysgo::protocol {

namespace {

[[noreturn]] void fail(int round, const std::string& what) {
  throw std::invalid_argument("CompiledSchedule: round " +
                              std::to_string(round) + " " + what);
}

}  // namespace

CompiledSchedule CompiledSchedule::build(int n, Mode mode, bool periodic,
                                         std::span<const Round> rounds,
                                         const graph::Digraph* g) {
  if (n < 1) throw std::invalid_argument("CompiledSchedule: need n >= 1");
  if (periodic && rounds.empty())
    throw std::invalid_argument("CompiledSchedule: empty period");

  CompiledSchedule cs;
  cs.n_ = n;
  cs.mode_ = mode;
  cs.periodic_ = periodic;
  const std::size_t nr = rounds.size();
  cs.arc_begin_.reserve(nr + 1);
  cs.partner_.assign(nr * static_cast<std::size_t>(n), -1);
  cs.role_.assign(nr * static_cast<std::size_t>(n), RoundRole::kIdle);
  if (mode == Mode::kFullDuplex) cs.pair_begin_.reserve(nr + 1);
  if (mode == Mode::kFullDuplex) cs.pair_begin_.push_back(0);

  for (std::size_t r = 0; r < nr; ++r) {
    const int round_no = static_cast<int>(r) + 1;
    // Validate the round AS AUTHORED — canonicalize() dedups, and a
    // duplicated arc must fail the matching check exactly as it does in
    // validate_structure, not be silently repaired.
    for (const graph::Arc& a : rounds[r].arcs) {
      if (a.tail < 0 || a.tail >= n || a.head < 0 || a.head >= n)
        fail(round_no, "activates an endpoint outside [0, n)");
      if (g != nullptr && !g->has_arc(a.tail, a.head))
        fail(round_no, "activates arc (" + std::to_string(a.tail) + "," +
                           std::to_string(a.head) +
                           ") absent from the network");
    }
    const bool matching = mode == Mode::kFullDuplex
                              ? graph::is_full_duplex_matching(rounds[r].arcs, n)
                              : graph::is_half_duplex_matching(rounds[r].arcs, n);
    if (!matching)
      fail(round_no, std::string("is not a valid ") +
                         (mode == Mode::kFullDuplex ? "full" : "half") +
                         "-duplex matching");
    Round canon = rounds[r];
    canon.canonicalize();

    std::int32_t* partners =
        cs.partner_.data() + r * static_cast<std::size_t>(n);
    RoundRole* roles = cs.role_.data() + r * static_cast<std::size_t>(n);
    for (const graph::Arc& a : canon.arcs) {
      if (mode == Mode::kFullDuplex) {
        partners[a.tail] = a.head;
        partners[a.head] = a.tail;
        roles[a.tail] = roles[a.head] = RoundRole::kExchange;
        if (a.tail < a.head) cs.pairs_.push_back(a);
      } else {
        partners[a.tail] = a.head;
        partners[a.head] = a.tail;
        roles[a.tail] = RoundRole::kSend;
        roles[a.head] = RoundRole::kReceive;
      }
    }
    cs.arcs_.insert(cs.arcs_.end(), canon.arcs.begin(), canon.arcs.end());
    cs.arc_begin_.push_back(static_cast<std::int32_t>(cs.arcs_.size()));
    if (mode == Mode::kFullDuplex)
      cs.pair_begin_.push_back(static_cast<std::int32_t>(cs.pairs_.size()));
  }
  return cs;
}

void CompiledSchedule::require_periodic(const char* who) const {
  if (!periodic_)
    throw std::invalid_argument(std::string(who) +
                                ": needs a periodic schedule");
}

void CompiledSchedule::require_finite(const char* who) const {
  if (periodic_)
    throw std::invalid_argument(std::string(who) +
                                ": needs a compiled finite protocol");
}

CompiledSchedule CompiledSchedule::compile(const SystolicSchedule& s,
                                           const graph::Digraph* g) {
  return build(s.n, s.mode, /*periodic=*/true, s.period, g);
}

CompiledSchedule CompiledSchedule::compile(const Protocol& p,
                                           const graph::Digraph* g) {
  return build(p.n, p.mode, /*periodic=*/false, p.rounds, g);
}

}  // namespace sysgo::protocol
