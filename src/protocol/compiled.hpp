// Compiled schedule IR: the flat, pre-validated round representation every
// executor consumes.
//
// Protocol / SystolicSchedule (Definitions 3.1/3.2) are authoring formats:
// readable, mutable, pointer-chasing (one heap vector of arcs per round).
// A CompiledSchedule is built from them exactly once and stores the rounds
// as CSR-style arrays over one contiguous arc buffer, plus dense per-round
// per-vertex partner/direction tables, so executing a round is a
// branch-light gather instead of an arc-list walk:
//
//   arcs_       one contiguous buffer of all rounds' arcs (canonical order)
//   arc_begin_  per-round spans into arcs_ (round r = [begin[r], begin[r+1]))
//   pairs_      full-duplex only: one tail < head representative per active
//               link (the simulator's merge work list)
//   partner_    partner_[r*n + v] = v's matching partner in round r, or -1
//   role_       what v does in round r: idle / send / receive / exchange
//
// compile() performs the structural validation all consumers used to repeat
// — every round a matching in the schedule's mode, every arc present in the
// network (when given), endpoints in range, full-duplex opposite pairs —
// and a successfully constructed CompiledSchedule records that proof in the
// type: the simulator, auditor, delay-digraph builder, gap analysis, sweep
// engine and search witness checks all execute compiled rounds without
// re-checking anything.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/digraph.hpp"
#include "protocol/protocol.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::protocol {

/// What a vertex does in one compiled round.
enum class RoundRole : std::int8_t {
  kIdle = 0,
  kSend = 1,      // half-duplex: tail of the vertex's arc
  kReceive = 2,   // half-duplex: head of the vertex's arc
  kExchange = 3,  // full-duplex: both directions active
};

class CompiledSchedule {
 public:
  CompiledSchedule() = default;

  /// Compile a periodic schedule.  Throws std::invalid_argument when the
  /// period is empty, an endpoint is out of [0, n), a round is not a
  /// matching in the schedule's mode (full-duplex additionally requires
  /// every arc's opposite), or — with g non-null — an activated arc is
  /// absent from *g.
  [[nodiscard]] static CompiledSchedule compile(const SystolicSchedule& s,
                                                const graph::Digraph* g = nullptr);

  /// Compile a finite protocol (periodic() == false; round_count() may be
  /// zero).  Same validation as the schedule overload.
  [[nodiscard]] static CompiledSchedule compile(const Protocol& p,
                                                const graph::Digraph* g = nullptr);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  /// Periodic schedules repeat their stored rounds forever; finite
  /// protocols execute them once.
  [[nodiscard]] bool periodic() const noexcept { return periodic_; }

  /// Stored rounds: the period of a schedule, the length of a protocol.
  [[nodiscard]] int round_count() const noexcept {
    return static_cast<int>(arc_begin_.size()) - 1;
  }
  /// Alias of round_count() in the periodic reading (the paper's s).
  [[nodiscard]] int period_length() const noexcept { return round_count(); }

  /// Stored round executed at 1-based time step i: periodic schedules wrap,
  /// finite protocols require i <= round_count().  Throws std::out_of_range
  /// for steps outside the valid range (a negative step would otherwise
  /// produce a negative C++ remainder and an out-of-bounds span).
  [[nodiscard]] int round_index(int step) const {
    if (step < 1)
      throw std::out_of_range("CompiledSchedule: step must be >= 1");
    if (periodic_) return (step - 1) % round_count();
    if (step > round_count())
      throw std::out_of_range("CompiledSchedule: step beyond finite protocol");
    return step - 1;
  }

  /// All arcs of stored round r, canonical (sorted, deduplicated) order.
  [[nodiscard]] std::span<const graph::Arc> round_arcs(int r) const noexcept {
    return {arcs_.data() + arc_begin_[static_cast<std::size_t>(r)],
            arcs_.data() + arc_begin_[static_cast<std::size_t>(r) + 1]};
  }

  /// The round's merge work list: half-duplex rounds are their arc span;
  /// full-duplex rounds list each active link once as its tail < head
  /// representative.
  [[nodiscard]] std::span<const graph::Arc> round_pairs(int r) const noexcept {
    if (mode_ != Mode::kFullDuplex) return round_arcs(r);
    return {pairs_.data() + pair_begin_[static_cast<std::size_t>(r)],
            pairs_.data() + pair_begin_[static_cast<std::size_t>(r) + 1]};
  }

  /// Dense partner table of round r: n entries, -1 when idle.
  [[nodiscard]] std::span<const std::int32_t> partners(int r) const noexcept {
    return {partner_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }
  /// Dense role table of round r: n entries.
  [[nodiscard]] std::span<const RoundRole> roles(int r) const noexcept {
    return {role_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(n_),
            static_cast<std::size_t>(n_)};
  }

  [[nodiscard]] int partner(int r, int v) const noexcept {
    return partners(r)[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] RoundRole role(int r, int v) const noexcept {
    return roles(r)[static_cast<std::size_t>(v)];
  }

  /// Total arcs across all stored rounds.
  [[nodiscard]] std::size_t arc_total() const noexcept { return arcs_.size(); }

  /// Precondition helpers for consumers that only make sense in one
  /// reading: throw std::invalid_argument naming `who` unless the schedule
  /// is periodic (resp. finite).
  void require_periodic(const char* who) const;
  void require_finite(const char* who) const;

  /// Structural equality: same network size, mode, periodicity and per-round
  /// arc sets.  Authored arc order does not matter (rounds are canonical);
  /// the derived tables are determined by these fields.
  friend bool operator==(const CompiledSchedule& a, const CompiledSchedule& b) {
    return a.n_ == b.n_ && a.mode_ == b.mode_ && a.periodic_ == b.periodic_ &&
           a.arc_begin_ == b.arc_begin_ && a.arcs_ == b.arcs_;
  }

 private:
  static CompiledSchedule build(int n, Mode mode, bool periodic,
                                std::span<const Round> rounds,
                                const graph::Digraph* g);

  int n_ = 0;
  Mode mode_ = Mode::kHalfDuplex;
  bool periodic_ = false;
  std::vector<std::int32_t> arc_begin_{0};  // size round_count() + 1
  std::vector<graph::Arc> arcs_;
  std::vector<std::int32_t> pair_begin_;  // full-duplex only
  std::vector<graph::Arc> pairs_;         // full-duplex only
  std::vector<std::int32_t> partner_;     // round_count() * n
  std::vector<RoundRole> role_;           // round_count() * n
};

}  // namespace sysgo::protocol
