#include "protocol/knodel_protocols.hpp"

#include <stdexcept>

#include "topology/knodel.hpp"

namespace sysgo::protocol {

SystolicSchedule knodel_schedule(int delta, int n, Mode mode) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("knodel_schedule: n must be even and >= 2");
  if (delta < 1 || delta > topology::knodel_max_delta(n))
    throw std::invalid_argument("knodel_schedule: bad delta");
  SystolicSchedule sched;
  sched.n = n;
  sched.mode = mode;
  const int half = n / 2;
  for (int k = 0; k < delta; ++k) {
    const int shift = ((1 << k) - 1) % half;
    Round fwd, bwd;
    for (int j = 0; j < half; ++j) {
      const int u = topology::knodel_index(0, j);
      const int v = topology::knodel_index(1, (j + shift) % half);
      fwd.arcs.push_back({u, v});
      bwd.arcs.push_back({v, u});
    }
    if (mode == Mode::kFullDuplex) {
      Round both;
      both.arcs = fwd.arcs;
      both.arcs.insert(both.arcs.end(), bwd.arcs.begin(), bwd.arcs.end());
      both.canonicalize();
      sched.period.push_back(std::move(both));
    } else {
      fwd.canonicalize();
      bwd.canonicalize();
      sched.period.push_back(std::move(fwd));
      sched.period.push_back(std::move(bwd));
    }
  }
  return sched;
}

}  // namespace sysgo::protocol
