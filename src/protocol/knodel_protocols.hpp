// The dimensional gossip schedule on Knödel graphs: round k activates the
// dimension-k perfect matching.  On W(⌊log2 n⌋, n) the ascending order
// completes full-duplex gossip in ⌈log2 n⌉ rounds when n is a power of two
// — the optimum any network can achieve.
#pragma once

#include "protocol/systolic.hpp"

namespace sysgo::protocol {

/// Period-Δ (full-duplex) / 2Δ (half-duplex) dimensional schedule on
/// W(delta, n).
[[nodiscard]] SystolicSchedule knodel_schedule(int delta, int n, Mode mode);

}  // namespace sysgo::protocol
