#include "protocol/protocol.hpp"

#include <algorithm>

#include "graph/matching.hpp"

namespace sysgo::protocol {

void Round::canonicalize() {
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
}

ValidationResult validate_structure(const Protocol& p, const graph::Digraph* g) {
  for (std::size_t i = 0; i < p.rounds.size(); ++i) {
    const auto& arcs = p.rounds[i].arcs;
    const bool matching =
        p.mode == Mode::kFullDuplex
            ? graph::is_full_duplex_matching(arcs, p.n)
            : graph::is_half_duplex_matching(arcs, p.n);
    if (!matching)
      return {false, "round " + std::to_string(i + 1) + " is not a valid " +
                         (p.mode == Mode::kFullDuplex ? "full" : "half") +
                         "-duplex matching"};
    if (g != nullptr) {
      for (const Arc& a : arcs)
        if (!g->has_arc(a.tail, a.head))
          return {false, "round " + std::to_string(i + 1) + " activates arc (" +
                             std::to_string(a.tail) + "," + std::to_string(a.head) +
                             ") absent from the network"};
    }
  }
  return {};
}

bool is_systolic(const Protocol& p, int s) {
  if (s <= 0) return false;
  std::vector<Round> canon = p.rounds;
  for (auto& r : canon) r.canonicalize();
  for (std::size_t i = 0; i + static_cast<std::size_t>(s) < canon.size(); ++i)
    if (!(canon[i] == canon[i + static_cast<std::size_t>(s)])) return false;
  return true;
}

int minimal_period(const Protocol& p) {
  for (int s = 1; s < p.length(); ++s)
    if (is_systolic(p, s)) return s;
  return p.length();
}

}  // namespace sysgo::protocol
