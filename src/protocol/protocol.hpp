// Gossip protocol representation (Definition 3.1) and validity checks.
//
// A protocol of length t on a digraph G is a sequence ⟨A_1 … A_t⟩ of arc
// subsets; each round must be a matching.  Half-duplex and directed
// protocols share matching semantics; full-duplex rounds activate opposite
// arc pairs.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace sysgo::protocol {

using graph::Arc;

/// Communication discipline of a protocol (Section 3).
enum class Mode {
  kHalfDuplex,  // covers the directed case: one direction per active link
  kFullDuplex,  // active links carry both directions simultaneously
};

/// One communication round: the set of active arcs.
struct Round {
  std::vector<Arc> arcs;

  /// Canonical (sorted) form; rounds compare as sets.
  void canonicalize();
  friend bool operator==(const Round&, const Round&) = default;
};

/// A finite protocol on n vertices.
struct Protocol {
  int n = 0;
  Mode mode = Mode::kHalfDuplex;
  std::vector<Round> rounds;

  [[nodiscard]] int length() const noexcept { return static_cast<int>(rounds.size()); }
};

/// Outcome of structural validation (matching + arcs present in G).
struct ValidationResult {
  bool ok = true;
  std::string message;  // empty when ok
};

/// Checks every round is a matching in the protocol's mode and (when g is
/// non-null) that every activated arc exists in *g.
[[nodiscard]] ValidationResult validate_structure(const Protocol& p,
                                                  const graph::Digraph* g = nullptr);

/// Definition 3.2: A_i = A_{i+s} for all applicable i.
[[nodiscard]] bool is_systolic(const Protocol& p, int s);

/// Smallest s >= 1 such that the protocol is s-systolic
/// (= p.length() when aperiodic).
[[nodiscard]] int minimal_period(const Protocol& p);

}  // namespace sysgo::protocol
