#include "protocol/systolic.hpp"

namespace sysgo::protocol {

Protocol SystolicSchedule::expand(int t) const {
  Protocol p;
  p.n = n;
  p.mode = mode;
  p.rounds.reserve(static_cast<std::size_t>(t));
  for (int i = 1; i <= t; ++i) p.rounds.push_back(round_at(i));
  return p;
}

ValidationResult validate_structure(const SystolicSchedule& s,
                                    const graph::Digraph* g) {
  if (s.period.empty())
    return {false, "schedule period is empty (no rounds to repeat)"};
  Protocol one_period;
  one_period.n = s.n;
  one_period.mode = s.mode;
  one_period.rounds = s.period;
  return validate_structure(one_period, g);
}

}  // namespace sysgo::protocol
