// Systolic schedules: a periodic sequence of rounds repeated for as long as
// needed (Definition 3.2).  Schedules are the natural protocol authoring
// unit; expand() turns them into a finite Protocol.
#pragma once

#include <stdexcept>

#include "protocol/protocol.hpp"

namespace sysgo::protocol {

struct SystolicSchedule {
  int n = 0;
  Mode mode = Mode::kHalfDuplex;
  std::vector<Round> period;

  [[nodiscard]] int period_length() const noexcept {
    return static_cast<int>(period.size());
  }

  /// The round active at (1-based) time step i.  An empty period has no
  /// rounds to cycle through (i % 0 would be UB): fail loudly.
  [[nodiscard]] const Round& round_at(int i) const {
    if (period.empty())
      throw std::logic_error("SystolicSchedule::round_at: empty period");
    return period[static_cast<std::size_t>((i - 1) % period_length())];
  }

  /// Materialize the first t rounds as a Protocol.
  [[nodiscard]] Protocol expand(int t) const;
};

/// Structural validation of every round in the period (and membership in g
/// when provided).
[[nodiscard]] ValidationResult validate_structure(const SystolicSchedule& s,
                                                  const graph::Digraph* g = nullptr);

}  // namespace sysgo::protocol
