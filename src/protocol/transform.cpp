#include "protocol/transform.hpp"

#include <algorithm>
#include <stdexcept>

namespace sysgo::protocol {

Protocol time_reversal(const Protocol& p) {
  Protocol out;
  out.n = p.n;
  out.mode = p.mode;
  out.rounds.reserve(p.rounds.size());
  for (auto it = p.rounds.rbegin(); it != p.rounds.rend(); ++it) {
    Round r;
    r.arcs.reserve(it->arcs.size());
    for (const Arc& a : it->arcs) r.arcs.push_back(graph::reversed(a));
    r.canonicalize();
    out.rounds.push_back(std::move(r));
  }
  return out;
}

Protocol concatenate(const Protocol& a, const Protocol& b) {
  if (a.n != b.n || a.mode != b.mode)
    throw std::invalid_argument("concatenate: protocols must share n and mode");
  Protocol out = a;
  out.rounds.insert(out.rounds.end(), b.rounds.begin(), b.rounds.end());
  return out;
}

int product_index(int u, int w, int n_first) noexcept { return u + w * n_first; }

Protocol cartesian_lift(const Protocol& p, int other_n, ProductCoordinate coord) {
  if (other_n < 1)
    throw std::invalid_argument("cartesian_lift: other factor must be non-empty");
  Protocol out;
  out.n = p.n * other_n;
  out.mode = p.mode;
  out.rounds.reserve(p.rounds.size());
  const int n_first = coord == ProductCoordinate::kFirst ? p.n : other_n;
  for (const Round& round : p.rounds) {
    Round lifted;
    lifted.arcs.reserve(round.arcs.size() * static_cast<std::size_t>(other_n));
    for (int w = 0; w < other_n; ++w) {
      for (const Arc& a : round.arcs) {
        if (coord == ProductCoordinate::kFirst)
          lifted.arcs.push_back(
              {product_index(a.tail, w, n_first), product_index(a.head, w, n_first)});
        else
          lifted.arcs.push_back(
              {product_index(w, a.tail, n_first), product_index(w, a.head, n_first)});
      }
    }
    lifted.canonicalize();
    out.rounds.push_back(std::move(lifted));
  }
  return out;
}

Protocol sequential_product(const Protocol& a, const Protocol& b) {
  if (a.mode != b.mode)
    throw std::invalid_argument("sequential_product: protocols must share mode");
  const Protocol lift_a = cartesian_lift(a, b.n, ProductCoordinate::kFirst);
  const Protocol lift_b = cartesian_lift(b, a.n, ProductCoordinate::kSecond);
  return concatenate(lift_a, lift_b);
}

}  // namespace sysgo::protocol
