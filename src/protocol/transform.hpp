// Protocol transformations.
//
// * time_reversal    — reverse round order and flip every arc; a protocol
//   achieves gossip iff its reversal does (path duality of Def. 3.1).
// * concatenate      — run one protocol after another.
// * cartesian_lift   — lift a protocol on G to G x H by acting on one
//   coordinate (all fibers simultaneously; matchings stay matchings).
// * sequential_product — gossip protocol for the Cartesian product G x H
//   from gossip protocols on the factors (accumulate along G, then along H).
#pragma once

#include "protocol/protocol.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::protocol {

/// Reverse time and arc directions.
[[nodiscard]] Protocol time_reversal(const Protocol& p);

/// a's rounds followed by b's rounds; n and mode must match.
[[nodiscard]] Protocol concatenate(const Protocol& a, const Protocol& b);

/// Which coordinate of the product a lifted protocol acts on.
enum class ProductCoordinate { kFirst, kSecond };

/// Vertex (u, w) of G x H has index u + w·|G| (first coordinate fastest).
[[nodiscard]] int product_index(int u, int w, int n_first) noexcept;

/// Lift p (a protocol on the chosen factor) to the product with the other
/// factor of size `other_n`: each round activates p's arcs in every fiber.
[[nodiscard]] Protocol cartesian_lift(const Protocol& p, int other_n,
                                      ProductCoordinate coord);

/// Gossip protocol on G x H from gossip protocols on G and on H
/// (runs the lifted a, then the lifted b); achieves gossip whenever both
/// factors' protocols do.
[[nodiscard]] Protocol sequential_product(const Protocol& a, const Protocol& b);

}  // namespace sysgo::protocol
