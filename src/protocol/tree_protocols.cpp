#include "protocol/tree_protocols.hpp"

#include <stdexcept>
#include <vector>

#include "topology/classic.hpp"
#include "topology/words.hpp"

namespace sysgo::protocol {

SystolicSchedule tree_schedule(int d, int height, Mode mode) {
  if (d < 2 || height < 1)
    throw std::invalid_argument("tree_schedule: need d >= 2, height >= 1");
  const std::int64_t n64 = (topology::ipow(d, height + 1) - 1) / (d - 1);
  if (n64 > (1 << 22)) throw std::invalid_argument("tree_schedule: too large");
  const int n = static_cast<int>(n64);
  const int colors = d + 1;

  // BFS order: assign each child edge a color distinct from the vertex's
  // parent-edge color, cycling through {0..d}.  Trees are class 1, so this
  // greedy is exact.
  std::vector<int> parent_color(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<std::pair<int, int>>> classes(
      static_cast<std::size_t>(colors));
  for (int v = 0; v < n; ++v) {
    int next = 0;
    for (int c = 1; c <= d; ++c) {
      const std::int64_t child = static_cast<std::int64_t>(d) * v + c;
      if (child >= n) break;
      while (next == parent_color[static_cast<std::size_t>(v)]) ++next;
      if (next >= colors) throw std::logic_error("tree_schedule: coloring overflow");
      parent_color[static_cast<std::size_t>(child)] = next;
      classes[static_cast<std::size_t>(next)].emplace_back(v,
                                                           static_cast<int>(child));
      ++next;
    }
  }

  SystolicSchedule sched;
  sched.n = n;
  sched.mode = mode;
  for (const auto& cls : classes) {
    if (cls.empty()) continue;
    if (mode == Mode::kFullDuplex) {
      Round r;
      for (auto [u, v] : cls) {
        r.arcs.push_back({u, v});
        r.arcs.push_back({v, u});
      }
      r.canonicalize();
      sched.period.push_back(std::move(r));
    } else {
      Round down, up;
      for (auto [u, v] : cls) {
        down.arcs.push_back({u, v});
        up.arcs.push_back({v, u});
      }
      down.canonicalize();
      up.canonicalize();
      sched.period.push_back(std::move(down));
      sched.period.push_back(std::move(up));
    }
  }
  return sched;
}

}  // namespace sysgo::protocol
