// Systolic gossip on complete d-ary trees — the family for which [8] gives
// optimal systolic protocols.  The schedule activates one edge-color class
// per round; trees are class-1 graphs, so Δ = d+1 colors suffice, giving
// period d+1 (full-duplex) or 2(d+1) (half-duplex).
#pragma once

#include "protocol/systolic.hpp"

namespace sysgo::protocol {

/// Proper (d+1)-edge-coloring schedule for the complete d-ary tree of the
/// given height (vertex layout as topology::complete_tree).
[[nodiscard]] SystolicSchedule tree_schedule(int d, int height, Mode mode);

}  // namespace sysgo::protocol
