#include "protocol/wbf_protocols.hpp"

#include <stdexcept>

#include "topology/words.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace sysgo::protocol {
namespace {

// The perfect matching of round (level, offset): every level-`level` vertex
// sends to level-1 below (with wrap), rewriting the rung digit by +offset.
Round level_matching(int d, int D, int level, int offset, bool reversed) {
  Round round;
  const std::int64_t words = topology::ipow(d, D);
  const int target_level = (level + D - 1) % D;
  const int rung_digit = (level > 0) ? level - 1 : D - 1;
  for (std::int64_t x = 0; x < words; ++x) {
    const int digit = topology::digit(x, rung_digit, d);
    const std::int64_t y =
        topology::with_digit(x, rung_digit, (digit + offset) % d, d);
    const int u = topology::wrapped_butterfly_index(x, level, d, D);
    const int v = topology::wrapped_butterfly_index(y, target_level, d, D);
    if (reversed)
      round.arcs.push_back({v, u});
    else
      round.arcs.push_back({u, v});
  }
  round.canonicalize();
  return round;
}

}  // namespace

SystolicSchedule wbf_directed_schedule(int d, int D) {
  if (d < 2 || D < 2)
    throw std::invalid_argument("wbf_directed_schedule: need d >= 2, D >= 2");
  SystolicSchedule sched;
  sched.n = static_cast<int>(topology::wrapped_butterfly_order(d, D));
  sched.mode = Mode::kHalfDuplex;
  // Descend through levels D-1 .. 0 with offset 0, then again with offset
  // 1, ... — each full sweep rotates one digit choice everywhere.
  for (int a = 0; a < d; ++a)
    for (int l = D - 1; l >= 0; --l)
      sched.period.push_back(level_matching(d, D, l, a, /*reversed=*/false));
  return sched;
}

SystolicSchedule wbf_schedule(int d, int D, Mode mode) {
  if (d < 2 || D < 2)
    throw std::invalid_argument("wbf_schedule: need d >= 2, D >= 2");
  SystolicSchedule sched;
  sched.n = static_cast<int>(topology::wrapped_butterfly_order(d, D));
  sched.mode = mode;
  for (int a = 0; a < d; ++a)
    for (int l = D - 1; l >= 0; --l) {
      if (mode == Mode::kFullDuplex) {
        Round fwd = level_matching(d, D, l, a, false);
        const Round bwd = level_matching(d, D, l, a, true);
        fwd.arcs.insert(fwd.arcs.end(), bwd.arcs.begin(), bwd.arcs.end());
        fwd.canonicalize();
        sched.period.push_back(std::move(fwd));
      } else {
        sched.period.push_back(level_matching(d, D, l, a, false));
        sched.period.push_back(level_matching(d, D, l, a, true));
      }
    }
  return sched;
}

}  // namespace sysgo::protocol
