// Level-synchronized systolic schedules for the Wrapped Butterfly — the
// paper's headline network.  At each round all vertices of the active level
// send simultaneously; choosing a fixed digit offset makes the round a
// perfect matching (level l words map bijectively to level l−1 words).
// Cycling levels and offsets yields a (D·d)-periodic schedule that sweeps
// items around the wrap.
#pragma once

#include "protocol/systolic.hpp"

namespace sysgo::protocol {

/// Directed WBF→(d, D) schedule: period D·d rounds; round (l, a) activates
/// the perfect matching "level ℓ -> ℓ−1, rewrite the rung digit by +a".
/// Half-duplex by construction (arcs are one-directional).
[[nodiscard]] SystolicSchedule wbf_directed_schedule(int d, int D);

/// Undirected WBF(d, D) variant: the same matchings alternated with their
/// reverses (period 2·D·d, half-duplex) so items can also travel up-level.
[[nodiscard]] SystolicSchedule wbf_schedule(int d, int D, Mode mode);

}  // namespace sysgo::protocol
