#include "search/solver.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "analysis/optimal.hpp"
#include "graph/search.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "obs/wall_timer.hpp"
#include "protocol/compiled.hpp"
#include "search/state_set.hpp"
#include "search/symmetry.hpp"
#include "simulator/broadcast_sim.hpp"
#include "simulator/gossip_sim.hpp"
#include "util/thread_pool.hpp"

namespace sysgo::search {
namespace {

using protocol::Mode;
using protocol::Round;

/// Search observability (catalog in README "Observability").  The BFS hot
/// loop accumulates into per-chunk locals and charges the counters once per
/// 64-state chunk, so the per-state cost is plain integer arithmetic.
struct SearchMetrics {
  obs::Histogram& solve_micros = obs::histogram("search.solve.micros");
  obs::Histogram& layer_micros = obs::histogram("search.layer.micros");
  obs::Counter& layers = obs::counter("search.layers");
  obs::Counter& expanded = obs::counter("search.states_expanded");
  obs::Counter& discovered = obs::counter("search.states_discovered");
  obs::Counter& deduped = obs::counter("search.states_deduped");
  obs::Counter& idbb_nodes = obs::counter("search.idbb_nodes");
  // --perf: per-BFS-layer IPC / cache behavior (a layer whose IPC drops as
  // `visited` grows is the canonicalizer thrashing the cache).
  obs::perf::PerfRollup layer_perf{"search.layer"};
};

SearchMetrics& search_metrics() {
  static SearchMetrics m;
  return m;
}

[[maybe_unused]] const bool kSearchMetricsRegistered =
    (search_metrics(), true);

// --------------------------------------------------- permutation utilities

Perm inverse_perm(const Perm& p) {
  Perm inv(p.size());
  for (std::size_t v = 0; v < p.size(); ++v)
    inv[static_cast<std::size_t>(p[v])] = static_cast<int>(v);
  return inv;
}

/// (a ∘ b)(v) = a(b(v)).
Perm compose_perm(const Perm& a, const Perm& b) {
  Perm c(b.size());
  for (std::size_t v = 0; v < b.size(); ++v)
    c[v] = a[static_cast<std::size_t>(b[v])];
  return c;
}

Round permute_round(const Perm& p, const Round& r) {
  Round out;
  out.arcs.reserve(r.arcs.size());
  for (const auto& a : r.arcs)
    out.arcs.push_back({p[static_cast<std::size_t>(a.tail)],
                        p[static_cast<std::size_t>(a.head)]});
  out.canonicalize();
  return out;
}

/// Rebuild the witness protocol from the canonical-space transition list.
/// Each step i recorded (move m_i, permutation π_i) with
/// c_{i+1} = π_i(apply(c_i, m_i)); replaying with the accumulated
/// relabeling σ_{i+1} = π_i ∘ σ_i (σ_0 = id) gives the real rounds
/// r_i = σ_i^{-1}(m_i), because automorphisms commute with apply_round.
std::vector<Round> rebuild_witness(
    const std::vector<std::pair<int, std::size_t>>& steps,
    const std::vector<Round>& moves, const Canonicalizer& canon, int n) {
  std::vector<Round> witness;
  witness.reserve(steps.size());
  Perm sigma(static_cast<std::size_t>(n));
  std::iota(sigma.begin(), sigma.end(), 0);
  for (const auto& [move, perm_index] : steps) {
    witness.push_back(permute_round(inverse_perm(sigma),
                                    moves[static_cast<std::size_t>(move)]));
    sigma = compose_perm(canon.perm(perm_index), sigma);
  }
  return witness;
}

// -------------------------------------------------------------- heuristic

/// Per-instance admissible lower bounds on the remaining rounds, combining
/// the distance deficit (v still misses some item, which must travel from
/// one of its CURRENT holders w, taking at least dist(w, v) rounds — the
/// concrete form of the diameter bound) with the information-doubling
/// deficit (the maximum row at most doubles per round in either duplex
/// mode — the broadcasting growth bound).
struct Heuristic {
  int n = 0;
  std::uint16_t full = 0;
  /// dist_to[v][u] = dist(u -> v): rounds for an item at u to reach v.
  std::vector<std::array<int, kMaxVertices>> dist_to;
  /// by_dist[v]: all vertices w with their dist(w -> v), ascending by
  /// distance (w = v first) — the union walk of gossip_h.
  std::vector<std::vector<std::pair<int, int>>> by_dist;
  std::array<int, kMaxVertices + 1> doubling{};

  explicit Heuristic(const graph::Digraph& g)
      : n(g.vertex_count()),
        full(static_cast<std::uint16_t>((1u << g.vertex_count()) - 1u)),
        dist_to(static_cast<std::size_t>(g.vertex_count())),
        by_dist(static_cast<std::size_t>(g.vertex_count())) {
    for (int u = 0; u < n; ++u) {
      const auto d = graph::bfs_distances(g, u);
      for (int v = 0; v < n; ++v)
        dist_to[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] =
            d[static_cast<std::size_t>(v)];
    }
    for (int v = 0; v < n; ++v) {
      auto& order = by_dist[static_cast<std::size_t>(v)];
      for (int w = 0; w < n; ++w)
        order.emplace_back(w,
                           dist_to[static_cast<std::size_t>(v)][static_cast<std::size_t>(w)]);
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) { return a.second < b.second; });
    }
    for (int p = 1; p <= n; ++p) {
      int t = 0;
      for (int c = p; c < n; c <<= 1) ++t;
      doubling[static_cast<std::size_t>(p)] = t;
    }
  }

  [[nodiscard]] bool gossip_feasible() const {
    for (int v = 0; v < n; ++v)
      for (int u = 0; u < n; ++u)
        if (dist_to[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] ==
            graph::kUnreachable)
          return false;
    return true;
  }

  [[nodiscard]] bool broadcast_feasible(int source) const {
    for (int v = 0; v < n; ++v)
      if (dist_to[static_cast<std::size_t>(v)][static_cast<std::size_t>(source)] ==
          graph::kUnreachable)
        return false;
    return true;
  }

  [[nodiscard]] int gossip_h(const State& s) const {
    // Information-doubling deficit of the LARGEST row: one round unions a
    // row with at most one other row, both bounded by the current maximum,
    // so max_v |row_v| at most doubles per round.  (A per-vertex doubling
    // term would be inadmissible — a small row can more than double by
    // merging with a better-informed neighbor.)
    int max_count = 0;
    for (int v = 0; v < n; ++v)
      max_count = std::max(
          max_count, std::popcount(s.rows[static_cast<std::size_t>(v)]));
    int h = doubling[static_cast<std::size_t>(max_count)];
    for (int v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      const std::uint16_t row = s.rows[sv];
      int hv = 0;
      if (row != full) {
        // Distance deficit: the minimal k such that every item is already
        // held by some vertex within distance k of v.  Walk vertices in
        // ascending dist(w -> v), unioning their rows; the distance of the
        // last vertex needed is the deficit.
        std::uint16_t acc = row;
        for (const auto& [w, dw] : by_dist[sv]) {
          acc = static_cast<std::uint16_t>(acc | s.rows[static_cast<std::size_t>(w)]);
          if (acc == full) {
            hv = std::max(hv, dw);
            break;
          }
        }
      }
      h = std::max(h, hv);
    }
    return h;
  }

  [[nodiscard]] int broadcast_h(std::uint16_t informed) const {
    int h = doubling[static_cast<std::size_t>(std::popcount(informed))];
    unsigned missing = static_cast<unsigned>(full & ~informed);
    while (missing != 0) {
      const int v = std::countr_zero(missing);
      missing &= missing - 1;
      int nearest = graph::kUnreachable;
      unsigned have = informed;
      while (have != 0) {
        const int u = std::countr_zero(have);
        have &= have - 1;
        nearest = std::min(
            nearest,
            dist_to[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)]);
      }
      h = std::max(h, nearest);
    }
    return h;
  }
};

// ------------------------------------------------------------- BFS: gossip

/// Serial BFS with parent tracking, used when a witness is requested.
void gossip_bfs_witness(const std::vector<Round>& moves, Mode mode,
                        const Canonicalizer& canon, int n,
                        const SolveOptions& opts, SolveResult& res) {
  const State root = initial_gossip_state(n);
  const State goal = gossip_goal_state(n);
  struct ParentInfo {
    State parent;
    int move = -1;
    std::size_t perm = 0;
  };
  std::unordered_map<State, ParentInfo, StateHash> parents;
  parents.emplace(root, ParentInfo{root, -1, 0});
  std::vector<State> frontier{root};
  for (int depth = 1; depth <= opts.max_rounds && !frontier.empty(); ++depth) {
    std::vector<State> next;
    for (const State& s : frontier) {
      for (std::size_t m = 0; m < moves.size(); ++m) {
        State t = apply_round(s, moves[m], mode);
        if (t == s) continue;
        std::size_t perm_index;
        t = canon.canonical(t, &perm_index);
        if (!parents.emplace(t, ParentInfo{s, static_cast<int>(m), perm_index})
                 .second)
          continue;
        if (t == goal) {
          res.rounds = depth;
          res.states_explored = parents.size();
          // Walk goal -> root, then rebuild forward.
          std::vector<std::pair<int, std::size_t>> steps;
          State cur = t;
          while (cur != root) {
            const auto& info = parents.at(cur);
            steps.emplace_back(info.move, info.perm);
            cur = info.parent;
          }
          std::reverse(steps.begin(), steps.end());
          res.witness = rebuild_witness(steps, moves, canon, n);
          return;
        }
        if (parents.size() >= opts.max_states) {
          res.budget_exhausted = true;
          res.states_explored = parents.size();
          return;
        }
        next.push_back(t);
      }
    }
    frontier = std::move(next);
  }
  res.states_explored = parents.size();
}

/// Frontier-parallel BFS.  Rounds and states_explored are independent of
/// the thread count: the frontier is sorted between layers, expansion runs
/// in fixed-size batches, and goal/budget checks happen only at batch
/// barriers (set membership does not depend on insertion order).
void gossip_bfs(const std::vector<Round>& moves, Mode mode,
                const Canonicalizer& canon, int n, const SolveOptions& opts,
                SolveResult& res) {
  const State root = initial_gossip_state(n);
  const State goal = gossip_goal_state(n);

  std::unique_ptr<util::ThreadPool> own_pool;
  util::ThreadPool* pool = nullptr;
  if (opts.threads == 0) {
    pool = &util::ThreadPool::instance();
  } else if (opts.threads > 1) {
    own_pool = std::make_unique<util::ThreadPool>(opts.threads - 1);
    pool = own_pool.get();
  }

  ShardedStateSet visited;
  visited.insert(root);
  std::vector<State> frontier{root};
  constexpr std::size_t kBatch = 2048;
  constexpr std::size_t kChunk = 64;  // states per task: one lock per chunk

  for (int depth = 1; depth <= opts.max_rounds && !frontier.empty(); ++depth) {
    // One span per BFS layer: where the canonicalizer stalls shows up as
    // long "search.layer" spans whose `frontier` arg stopped growing.
    obs::trace::TraceSpan layer_span(
        obs::trace::enabled() ? obs::trace::intern("search.layer") : 0);
    if (layer_span.armed()) {
      layer_span.arg(obs::trace::intern("depth"), depth);
      layer_span.arg(obs::trace::intern("frontier"),
                     static_cast<std::int64_t>(frontier.size()));
    }
    // Declared after layer_span: the perf delta must land in the span's
    // args before the span closes.
    obs::perf::PerfScope layer_perf(search_metrics().layer_perf);
    if (layer_perf.armed()) layer_perf.attach(&layer_span);
    const obs::WallTimer layer_timer;
    std::vector<State> next;
    std::mutex next_mutex;
    std::atomic<bool> found{false};
    bool stop = false;
    for (std::size_t pos = 0; pos < frontier.size() && !stop; pos += kBatch) {
      const std::size_t count = std::min(kBatch, frontier.size() - pos);
      // Discovered states gather in per-chunk buffers and append under one
      // lock per chunk, not per state; chunk boundaries are fixed
      // arithmetic, so they cannot perturb the determinism contract.
      const auto body = [&](std::size_t chunk) {
        std::vector<State> local;
        std::uint64_t discovered = 0;
        std::uint64_t deduped = 0;
        const std::size_t lo = chunk * kChunk;
        const std::size_t hi = std::min(count, lo + kChunk);
        for (std::size_t i = lo; i < hi; ++i) {
          const State& s = frontier[pos + i];
          for (const Round& m : moves) {
            State t = apply_round(s, m, mode);
            if (t == s) continue;
            t = canon.canonical(t);
            if (!visited.insert(t)) {
              ++deduped;
              continue;
            }
            ++discovered;
            if (t == goal) {
              found.store(true, std::memory_order_relaxed);
              continue;
            }
            local.push_back(t);
          }
        }
        auto& sm = search_metrics();
        sm.expanded.add(hi - lo);
        sm.discovered.add(discovered);
        sm.deduped.add(deduped);
        if (!local.empty()) {
          std::lock_guard<std::mutex> lock(next_mutex);
          next.insert(next.end(), local.begin(), local.end());
        }
      };
      const std::size_t chunks = (count + kChunk - 1) / kChunk;
      if (pool != nullptr) {
        pool->run_indexed(chunks, body);
      } else {
        for (std::size_t c = 0; c < chunks; ++c) body(c);
      }
      if (found.load(std::memory_order_relaxed)) {
        res.rounds = depth;
        stop = true;
      } else if (visited.size() >= opts.max_states) {
        res.budget_exhausted = true;
        stop = true;
      }
    }
    search_metrics().layers.add(1);
    search_metrics().layer_micros.record_micros(layer_timer.micros());
    if (layer_span.armed())
      layer_span.arg(obs::trace::intern("visited"),
                     static_cast<std::int64_t>(visited.size()));
    if (stop) break;
    // Sorting makes the next layer's batch boundaries (and therefore any
    // mid-layer stop) identical for every thread count.
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
  }
  res.states_explored = visited.size();
}

// -------------------------------------------------- iterative deepening

struct DeepeningSearch {
  const std::vector<Round>& moves;
  Mode mode;
  const Canonicalizer& canon;
  const Heuristic& heur;
  State goal;
  std::size_t max_states;

  StateBudgetMap table{};
  std::size_t nodes = 0;
  bool exhausted = false;
  std::vector<std::pair<int, std::size_t>> path{};  // (move, perm) per level

  /// True when the goal is reachable from canonical state s in at most
  /// `remaining` further rounds (s != goal).
  bool dfs(const State& s, int remaining) {
    if (remaining <= 0) return false;
    if (heur.gossip_h(s) > remaining) return false;
    if (table.failed_budget(s) >= remaining) return false;
    if (++nodes > max_states) {
      exhausted = true;
      return false;
    }
    for (std::size_t m = 0; m < moves.size(); ++m) {
      State t = apply_round(s, moves[m], mode);
      if (t == s) continue;
      std::size_t perm_index;
      t = canon.canonical(t, &perm_index);
      path.emplace_back(static_cast<int>(m), perm_index);
      if (t == goal || dfs(t, remaining - 1)) return true;
      path.pop_back();
      if (exhausted) return false;
    }
    table.record_failure(s, remaining);
    return false;
  }
};

void gossip_deepening(const std::vector<Round>& moves, Mode mode,
                      const Canonicalizer& canon, const Heuristic& heur, int n,
                      const SolveOptions& opts, SolveResult& res) {
  const State root = initial_gossip_state(n);
  const State goal = gossip_goal_state(n);
  DeepeningSearch search{moves, mode, canon, heur, goal, opts.max_states};
  // The transposition table persists across depth iterations: "budget b
  // was insufficient from s" is limit-independent.
  for (int limit = std::max(1, res.root_lower_bound);
       limit <= opts.max_rounds; ++limit) {
    search.path.clear();
    if (search.dfs(root, limit)) {
      res.rounds = limit;
      if (opts.want_witness)
        res.witness = rebuild_witness(search.path, moves, canon, n);
      break;
    }
    if (search.exhausted) {
      res.budget_exhausted = true;
      break;
    }
  }
  res.states_explored = search.nodes;
  search_metrics().idbb_nodes.add(search.nodes);
}

// ------------------------------------------------------------- broadcast

/// Broadcast states are informed-vertex masks (2^n of them), canonicalized
/// under the stabilizer of the source; the search is serial — the space is
/// tiny — and trivially thread-count independent.
void broadcast_bfs(const std::vector<Round>& moves, const Canonicalizer& canon,
                   int n, const SolveOptions& opts, SolveResult& res) {
  const auto root = static_cast<std::uint16_t>(1u << opts.source);
  const auto goal = static_cast<std::uint16_t>((1u << n) - 1u);
  const std::size_t space = std::size_t{1} << n;
  std::vector<std::uint8_t> seen(space, 0);
  struct ParentInfo {
    std::uint16_t parent = 0;
    int move = -1;
    std::size_t perm = 0;
  };
  std::vector<ParentInfo> parents(opts.want_witness ? space : 0);
  seen[root] = 1;
  std::size_t stored = 1;
  std::vector<std::uint16_t> frontier{root};
  for (int depth = 1; depth <= opts.max_rounds && !frontier.empty(); ++depth) {
    std::vector<std::uint16_t> next;
    for (const std::uint16_t s : frontier) {
      for (std::size_t m = 0; m < moves.size(); ++m) {
        std::uint16_t t = apply_round_mask(s, moves[m]);
        if (t == s) continue;
        t = canon.canonical_mask(t);
        if (seen[t]) continue;
        seen[t] = 1;
        ++stored;
        if (opts.want_witness) {
          // canonical_mask does not report its permutation; recover one
          // lazily only when a witness is requested (n is tiny here).
          std::size_t perm_index = 0;
          const std::uint16_t raw = apply_round_mask(s, moves[m]);
          for (std::size_t p = 0; p < canon.group_order(); ++p) {
            std::uint16_t image = 0;
            for (int v = 0; v < n; ++v)
              if ((raw >> v) & 1u)
                image = static_cast<std::uint16_t>(
                    image | (1u << canon.perm(p)[static_cast<std::size_t>(v)]));
            if (image == t) {
              perm_index = p;
              break;
            }
          }
          parents[t] = {s, static_cast<int>(m), perm_index};
        }
        if (t == goal) {
          res.rounds = depth;
          res.states_explored = stored;
          if (opts.want_witness) {
            std::vector<std::pair<int, std::size_t>> steps;
            std::uint16_t cur = t;
            while (cur != root) {
              const auto& info = parents[cur];
              steps.emplace_back(info.move, info.perm);
              cur = info.parent;
            }
            std::reverse(steps.begin(), steps.end());
            res.witness = rebuild_witness(steps, moves, canon, n);
          }
          return;
        }
        next.push_back(t);
      }
    }
    frontier = std::move(next);
  }
  res.states_explored = stored;
}

}  // namespace

SolveResult solve(const graph::Digraph& g, const SolveOptions& opts) {
  const obs::ScopedTimer span(search_metrics().solve_micros);
  const int n = g.vertex_count();
  if (n > kMaxVertices)
    throw std::invalid_argument("search::solve: n <= 12 required");
  if (opts.problem == Problem::kBroadcast &&
      (opts.source < 0 || opts.source >= std::max(n, 1)))
    throw std::invalid_argument("search::solve: broadcast source out of range");

  SolveResult res;
  if (n <= 1) {
    res.rounds = 0;
    res.states_explored = static_cast<std::size_t>(n);
    return res;
  }

  const Heuristic heur(g);
  const bool feasible = opts.problem == Problem::kGossip
                            ? heur.gossip_feasible()
                            : heur.broadcast_feasible(opts.source);
  if (!feasible) return res;  // rounds = -1: goal unreachable at any depth

  const auto moves = analysis::maximal_matchings(g, opts.mode);
  if (moves.empty()) return res;

  AutomorphismGroup group;
  if (opts.use_symmetry) {
    group = automorphisms(g, opts.max_group_order);
  } else {
    Perm id(static_cast<std::size_t>(n));
    std::iota(id.begin(), id.end(), 0);
    group.perms.push_back(std::move(id));
  }
  if (opts.problem == Problem::kBroadcast)
    group = vertex_stabilizer(group, opts.source);
  const Canonicalizer canon(n, std::move(group));
  res.group_order = canon.group_order();
  res.group_complete = canon.group().complete;

  if (opts.problem == Problem::kBroadcast) {
    res.root_lower_bound =
        heur.broadcast_h(static_cast<std::uint16_t>(1u << opts.source));
    broadcast_bfs(moves, canon, n, opts, res);
    return res;
  }

  res.root_lower_bound = heur.gossip_h(initial_gossip_state(n));
  if (opts.algorithm == Algorithm::kIterativeDeepening) {
    gossip_deepening(moves, opts.mode, canon, heur, n, opts, res);
  } else if (opts.want_witness) {
    gossip_bfs_witness(moves, opts.mode, canon, n, opts, res);
  } else {
    // threads == 1 runs the same batched loop serially, so counts and
    // stopping points match the threaded runs exactly.
    gossip_bfs(moves, opts.mode, canon, n, opts, res);
  }
  return res;
}

bool witness_valid(const graph::Digraph& g, const SolveOptions& opts,
                   const SolveResult& res) {
  if (res.rounds < 0 ||
      static_cast<int>(res.witness.size()) != res.rounds)
    return false;
  protocol::Protocol p;
  p.n = g.vertex_count();
  p.mode = opts.mode;
  p.rounds = res.witness;
  protocol::CompiledSchedule cs;
  try {
    cs = protocol::CompiledSchedule::compile(p, &g);
  } catch (const std::invalid_argument&) {
    return false;  // not matchings of the right mode / arcs outside g
  }
  if (opts.problem == Problem::kGossip) {
    const auto run = simulator::run_gossip(cs);
    return run.complete && run.completion_round == res.rounds;
  }
  if (opts.source < 0 || opts.source >= g.vertex_count()) return false;
  const auto reach = simulator::broadcast_reach(cs, opts.source);
  int worst = 0;
  for (int t : reach) {
    if (t < 0) return false;
    worst = std::max(worst, t);
  }
  return worst == res.rounds;
}

}  // namespace sysgo::search
