// Exact optimal-protocol search: symmetry-reduced, bound-pruned, parallel.
//
// Computes the exact gossip or broadcast complexity of a concrete network
// (n <= 12) in either duplex mode by searching the knowledge-state space
// whose moves are the maximal matchings of the network
// (analysis::maximal_matchings; restricting to maximal rounds is lossless
// because knowledge is monotone).  Two reductions make instances tractable
// that the old 64-bit BFS oracle (n <= 8) could not represent or finish:
//
//  * Symmetry: states are stored canonically under (a subgroup of) the
//    network's automorphism group (symmetry.hpp), dividing the reachable
//    space by up to |Aut(G)|.
//  * Bounds: the branch-and-bound mode prunes with an admissible per-state
//    heuristic — the per-instance forms of the repo's analytic bounds: the
//    distance deficit (every unknown item u must still travel dist(u, v),
//    cf. core/diameter_bound) and the information-doubling deficit (a row
//    at most doubles per round, the broadcasting-bound growth argument of
//    core/broadcast_bound).
//
// Two algorithms share the state layer: a frontier-parallel BFS on the
// persistent util/thread_pool (the workhorse), and serial iterative
// deepening with a transposition table (lower memory, best when the
// optimum is close to the root lower bound).  BFS results — rounds and
// states_explored — are identical for every thread count: the frontier is
// sorted between layers, budget/goal checks happen only at deterministic
// batch barriers, and set membership is order-independent.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "protocol/protocol.hpp"

namespace sysgo::search {

enum class Problem {
  kGossip,     // every vertex learns every item
  kBroadcast,  // every vertex learns the source's item
};

enum class Algorithm {
  kBfs,                 // frontier-parallel breadth-first search
  kIterativeDeepening,  // serial depth-first branch-and-bound
};

struct SolveOptions {
  Problem problem = Problem::kGossip;
  protocol::Mode mode = protocol::Mode::kHalfDuplex;
  Algorithm algorithm = Algorithm::kBfs;
  /// Broadcast source vertex (ignored by gossip).
  int source = 0;
  int max_rounds = 64;
  /// Abort with budget_exhausted once this many canonical states are
  /// stored (BFS; checked at batch barriers, so the last batch may
  /// overshoot) or expanded (iterative deepening).
  std::size_t max_states = 20'000'000;
  /// Like engine::SweepOptions::threads: 0 runs BFS batches on the
  /// process-wide pool, 1 is serial, k > 1 spawns a private pool of k
  /// lanes FOR THIS CALL (prefer 0 when solving many instances — the
  /// process-wide pool is persistent).  Results do not depend on this
  /// value.
  unsigned threads = 0;
  /// Store states canonically under the automorphism group (subgroup
  /// capped at max_group_order; identity-only beyond the cap).
  bool use_symmetry = true;
  std::size_t max_group_order = 4096;
  /// Reconstruct one optimal protocol (forces the serial BFS path).
  bool want_witness = false;
};

struct SolveResult {
  /// Exact optimum, or -1 when unreachable within max_rounds / budget.
  int rounds = -1;
  /// BFS: canonical states stored; iterative deepening: nodes expanded
  /// across all depth iterations.
  std::size_t states_explored = 0;
  bool budget_exhausted = false;
  /// Order of the automorphism subgroup used for canonicalization (1 when
  /// symmetry is off or the group exceeded the cap).
  std::size_t group_order = 1;
  /// False when Aut(G) exceeded max_group_order and the search fell back
  /// to identity-only canonicalization.
  bool group_complete = true;
  /// Admissible lower bound at the initial state (distance + doubling
  /// deficits); rounds == root_lower_bound certifies the analytic bound
  /// tight on this instance.
  int root_lower_bound = 0;
  /// One optimal protocol when want_witness was set (empty otherwise;
  /// rounds mapped back to original vertex labels).
  std::vector<protocol::Round> witness;
};

/// Exact optimum for g (n <= kMaxVertices = 12; throws std::invalid_argument
/// beyond, or for a broadcast source out of range).
[[nodiscard]] SolveResult solve(const graph::Digraph& g,
                                const SolveOptions& opts = {});

/// Check a recorded witness through the shared compiled execution path: the
/// witness must have exactly res.rounds rounds, compile against g (every
/// round a matching in opts.mode, every arc present in the network), and
/// its compiled execution must achieve the problem's goal in exactly
/// res.rounds rounds (gossip: all-pairs completion; broadcast: opts.source's
/// item everywhere).  False when any of that fails or no witness was
/// recorded.
[[nodiscard]] bool witness_valid(const graph::Digraph& g,
                                 const SolveOptions& opts,
                                 const SolveResult& res);

}  // namespace sysgo::search
