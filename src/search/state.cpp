#include "search/state.hpp"

#include <cstring>

namespace sysgo::search {

namespace {

// splitmix64 finalizer: cheap and well-distributed for 64-bit lanes.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t StateHash::operator()(const State& s) const noexcept {
  // 12 x 16 bits = three 64-bit lanes.
  std::uint64_t w[3];
  static_assert(sizeof w == sizeof s.rows);
  std::memcpy(w, s.rows.data(), sizeof w);
  std::uint64_t h = mix64(w[0]);
  h = mix64(h ^ w[1]);
  h = mix64(h ^ w[2]);
  return static_cast<std::size_t>(h);
}

State initial_gossip_state(int n) {
  State s;
  for (int v = 0; v < n; ++v)
    s.rows[static_cast<std::size_t>(v)] = static_cast<std::uint16_t>(1u << v);
  return s;
}

State gossip_goal_state(int n) {
  State s;
  const auto full = static_cast<std::uint16_t>((1u << n) - 1u);
  for (int v = 0; v < n; ++v) s.rows[static_cast<std::size_t>(v)] = full;
  return s;
}

State apply_round(const State& s, const protocol::Round& round,
                  protocol::Mode mode) {
  State next = s;
  if (mode == protocol::Mode::kFullDuplex) {
    for (const auto& a : round.arcs) {
      if (a.tail >= a.head) continue;  // each pair is listed in both directions
      const auto u = static_cast<std::uint16_t>(
          s.rows[static_cast<std::size_t>(a.tail)] |
          s.rows[static_cast<std::size_t>(a.head)]);
      next.rows[static_cast<std::size_t>(a.tail)] = u;
      next.rows[static_cast<std::size_t>(a.head)] = u;
    }
  } else {
    for (const auto& a : round.arcs)
      next.rows[static_cast<std::size_t>(a.head)] = static_cast<std::uint16_t>(
          s.rows[static_cast<std::size_t>(a.head)] |
          s.rows[static_cast<std::size_t>(a.tail)]);
  }
  return next;
}

std::uint16_t apply_round_mask(std::uint16_t informed,
                               const protocol::Round& round) {
  std::uint16_t next = informed;
  for (const auto& a : round.arcs)
    if ((informed >> a.tail) & 1u)
      next = static_cast<std::uint16_t>(next | (1u << a.head));
  return next;
}

}  // namespace sysgo::search
