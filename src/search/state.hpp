// Compact knowledge states for the exact-search solver.
//
// A gossip knowledge state on n vertices is the n x n boolean matrix
// K(v, u) = "v knows u's item".  The old oracle (analysis/optimal) packed
// the whole matrix into one 64-bit word, capping it at n <= 8; here each
// row is a 16-bit mask and a state is 12 rows (192 bits), so every n <= 12
// instance fits.  The all-zero state never occurs (every vertex knows its
// own item), which lets the open-addressing tables of state_set.hpp use it
// as the empty-slot marker.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "protocol/protocol.hpp"

namespace sysgo::search {

/// Hard cap of the state representation (12 rows x 16 bits).
inline constexpr int kMaxVertices = 12;

/// Knowledge state: rows[v] bit u set iff v knows u's item.  Rows past the
/// instance's n stay zero, so states of the same instance compare and hash
/// consistently.
struct State {
  std::array<std::uint16_t, kMaxVertices> rows{};

  friend bool operator==(const State&, const State&) = default;
  /// Lexicographic by rows — the total order used for canonicalization.
  friend auto operator<=>(const State&, const State&) = default;

  [[nodiscard]] bool is_zero() const noexcept {
    for (const std::uint16_t r : rows)
      if (r != 0) return false;
    return true;
  }
};

struct StateHash {
  [[nodiscard]] std::size_t operator()(const State& s) const noexcept;
};

/// Diagonal state: every vertex knows exactly its own item.
[[nodiscard]] State initial_gossip_state(int n);

/// Full state: every row is the complete n-bit mask.
[[nodiscard]] State gossip_goal_state(int n);

/// One communication round applied to a knowledge state.  Half-duplex: each
/// arc (tail -> head) merges tail's row into head's.  Full-duplex: rounds
/// list both arcs of each active pair; the pair's rows are unioned into
/// both endpoints.  The round must be a matching (checked by the callers'
/// move generation, not here).
[[nodiscard]] State apply_round(const State& s, const protocol::Round& round,
                                protocol::Mode mode);

/// Broadcast variant on informed-set masks: head becomes informed whenever
/// tail is.  Works unchanged for full-duplex rounds because they list both
/// directions of each active pair.
[[nodiscard]] std::uint16_t apply_round_mask(std::uint16_t informed,
                                             const protocol::Round& round);

}  // namespace sysgo::search
