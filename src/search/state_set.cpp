#include "search/state_set.hpp"

#include <bit>

namespace sysgo::search {

namespace {

std::size_t table_capacity(std::size_t min_capacity) {
  return std::bit_ceil(min_capacity < 16 ? std::size_t{16} : min_capacity);
}

}  // namespace

// ------------------------------------------------------------------ StateSet

StateSet::StateSet(std::size_t min_capacity)
    : slots_(table_capacity(min_capacity)), mask_(slots_.size() - 1) {}

bool StateSet::insert(const State& s) {
  std::size_t i = StateHash{}(s) & mask_;
  for (;;) {
    State& slot = slots_[i];
    if (slot == s) return false;
    if (slot.is_zero()) {
      slot = s;
      if (++size_ * 5 > slots_.size() * 3) grow();  // > 60% load
      return true;
    }
    i = (i + 1) & mask_;
  }
}

bool StateSet::contains(const State& s) const noexcept {
  std::size_t i = StateHash{}(s) & mask_;
  for (;;) {
    const State& slot = slots_[i];
    if (slot == s) return true;
    if (slot.is_zero()) return false;
    i = (i + 1) & mask_;
  }
}

void StateSet::clear() {
  for (State& s : slots_) s = State{};
  size_ = 0;
}

void StateSet::grow() {
  std::vector<State> old = std::move(slots_);
  slots_.assign(old.size() * 2, State{});
  mask_ = slots_.size() - 1;
  for (const State& s : old) {
    if (s.is_zero()) continue;
    std::size_t i = StateHash{}(s) & mask_;
    while (!slots_[i].is_zero()) i = (i + 1) & mask_;
    slots_[i] = s;
  }
}

// ------------------------------------------------------------ StateBudgetMap

StateBudgetMap::StateBudgetMap(std::size_t min_capacity)
    : slots_(table_capacity(min_capacity)),
      values_(slots_.size(), -1),
      mask_(slots_.size() - 1) {}

int StateBudgetMap::failed_budget(const State& s) const noexcept {
  std::size_t i = StateHash{}(s) & mask_;
  for (;;) {
    const State& slot = slots_[i];
    if (slot == s) return values_[i];
    if (slot.is_zero()) return -1;
    i = (i + 1) & mask_;
  }
}

void StateBudgetMap::record_failure(const State& s, int budget) {
  std::size_t i = StateHash{}(s) & mask_;
  for (;;) {
    State& slot = slots_[i];
    if (slot == s) {
      if (budget > values_[i]) values_[i] = budget;
      return;
    }
    if (slot.is_zero()) {
      slot = s;
      values_[i] = budget;
      if (++size_ * 5 > slots_.size() * 3) grow();
      return;
    }
    i = (i + 1) & mask_;
  }
}

void StateBudgetMap::clear() {
  for (State& s : slots_) s = State{};
  for (int& v : values_) v = -1;
  size_ = 0;
}

void StateBudgetMap::grow() {
  std::vector<State> old_slots = std::move(slots_);
  std::vector<int> old_values = std::move(values_);
  slots_.assign(old_slots.size() * 2, State{});
  values_.assign(old_slots.size() * 2, -1);
  mask_ = slots_.size() - 1;
  for (std::size_t j = 0; j < old_slots.size(); ++j) {
    if (old_slots[j].is_zero()) continue;
    std::size_t i = StateHash{}(old_slots[j]) & mask_;
    while (!slots_[i].is_zero()) i = (i + 1) & mask_;
    slots_[i] = old_slots[j];
    values_[i] = old_values[j];
  }
}

// ---------------------------------------------------------- ShardedStateSet

bool ShardedStateSet::insert(const State& s) {
  // Shard by high hash bits; StateSet re-hashes with the low bits.
  Shard& shard = shards_[StateHash{}(s) >> 58];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.set.insert(s);
}

std::size_t ShardedStateSet::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.set.size();
  }
  return total;
}

bool ShardedStateSet::contains(const State& s) const {
  const Shard& shard = shards_[StateHash{}(s) >> 58];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.set.contains(s);
}

}  // namespace sysgo::search
