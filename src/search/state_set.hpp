// Open-addressing hash storage for knowledge states.
//
// StateSet / StateBudgetMap are linear-probing tables keyed by the 192-bit
// State (state.hpp); the all-zero state marks empty slots, which is safe
// because reachable knowledge states always contain the diagonal.  The
// sharded variant partitions by hash so frontier-parallel BFS can insert
// concurrently: membership and size are set properties, independent of
// insertion order, which is what makes threaded sweeps byte-identical to
// serial ones.
#pragma once

#include <array>
#include <cstddef>
#include <mutex>
#include <vector>

#include "search/state.hpp"

namespace sysgo::search {

/// Linear-probing hash set of non-zero States.  Grows at 60% load.
class StateSet {
 public:
  explicit StateSet(std::size_t min_capacity = 64);

  /// True when s was not present before.  s must not be all-zero.
  bool insert(const State& s);
  [[nodiscard]] bool contains(const State& s) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  void clear();

 private:
  void grow();

  std::vector<State> slots_;
  std::size_t mask_ = 0;   // slots_.size() - 1 (power of two)
  std::size_t size_ = 0;
};

/// Open-addressing map State -> int used as the iterative-deepening
/// transposition table: value = largest remaining-round budget already
/// proven insufficient from that state.
class StateBudgetMap {
 public:
  explicit StateBudgetMap(std::size_t min_capacity = 64);

  /// Largest failed budget recorded for s, or -1.
  [[nodiscard]] int failed_budget(const State& s) const noexcept;
  /// Record that `budget` remaining rounds were insufficient from s.
  void record_failure(const State& s, int budget);
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  void clear();

 private:
  void grow();

  std::vector<State> slots_;
  std::vector<int> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// StateSet sharded by hash with per-shard locking, for concurrent inserts
/// from the parallel frontier.  size() is exact when no insert is in
/// flight (the solver only reads it at batch barriers).
class ShardedStateSet {
 public:
  static constexpr std::size_t kShards = 64;

  bool insert(const State& s);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool contains(const State& s) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    StateSet set;
  };
  std::array<Shard, kShards> shards_;
};

}  // namespace sysgo::search
