#include "search/symmetry.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace sysgo::search {

std::vector<int> vertex_classes(const graph::Digraph& g) {
  const int n = g.vertex_count();
  std::vector<int> color(static_cast<std::size_t>(n), 0);

  // Initial colors: (out-degree, in-degree), densified in sorted order so
  // the classification is canonical.
  {
    std::map<std::pair<int, int>, int> ids;
    for (int v = 0; v < n; ++v)
      ids.emplace(std::pair{g.out_degree(v), g.in_degree(v)}, 0);
    int next = 0;
    for (auto& [key, id] : ids) id = next++;
    for (int v = 0; v < n; ++v)
      color[static_cast<std::size_t>(v)] =
          ids.at({g.out_degree(v), g.in_degree(v)});
  }

  // Refine: a vertex's signature is (color, sorted out-neighbor colors,
  // sorted in-neighbor colors).  Densify signatures in sorted order each
  // round; stop at a fixed point.
  for (;;) {
    using Signature = std::pair<int, std::pair<std::vector<int>, std::vector<int>>>;
    std::vector<Signature> sig(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      std::vector<int> out, in;
      for (int w : g.out_neighbors(v)) out.push_back(color[static_cast<std::size_t>(w)]);
      for (int w : g.in_neighbors(v)) in.push_back(color[static_cast<std::size_t>(w)]);
      std::sort(out.begin(), out.end());
      std::sort(in.begin(), in.end());
      sig[static_cast<std::size_t>(v)] = {color[static_cast<std::size_t>(v)],
                                          {std::move(out), std::move(in)}};
    }
    std::map<Signature, int> ids;
    for (const auto& s : sig) ids.emplace(s, 0);
    int next = 0;
    for (auto& [key, id] : ids) id = next++;
    bool changed = false;
    for (int v = 0; v < n; ++v) {
      const int c = ids.at(sig[static_cast<std::size_t>(v)]);
      changed = changed || c != color[static_cast<std::size_t>(v)];
      color[static_cast<std::size_t>(v)] = c;
    }
    if (!changed) return color;
  }
}

namespace {

struct AutoSearch {
  const graph::Digraph& g;
  const std::vector<int>& color;
  std::size_t max_order;
  int n;
  Perm assign;               // assign[v] = image of v for v < depth
  std::vector<bool> used;    // image already taken
  std::vector<Perm> found;
  bool aborted = false;

  void run(int depth) {
    if (aborted) return;
    if (depth == n) {
      if (found.size() >= max_order) {
        aborted = true;
        return;
      }
      found.push_back(assign);
      return;
    }
    const auto v = static_cast<std::size_t>(depth);
    for (int w = 0; w < n; ++w) {
      if (used[static_cast<std::size_t>(w)]) continue;
      if (color[v] != color[static_cast<std::size_t>(w)]) continue;
      bool ok = true;
      for (int j = 0; j < depth && ok; ++j) {
        const int pj = assign[static_cast<std::size_t>(j)];
        ok = g.has_arc(depth, j) == g.has_arc(w, pj) &&
             g.has_arc(j, depth) == g.has_arc(pj, w);
      }
      if (!ok) continue;
      assign[v] = w;
      used[static_cast<std::size_t>(w)] = true;
      run(depth + 1);
      used[static_cast<std::size_t>(w)] = false;
      if (aborted) return;
    }
  }
};

Perm identity_perm(int n) {
  Perm id(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) id[static_cast<std::size_t>(v)] = v;
  return id;
}

}  // namespace

AutomorphismGroup automorphisms(const graph::Digraph& g, std::size_t max_order) {
  const int n = g.vertex_count();
  AutomorphismGroup group;
  if (n == 0) {
    group.perms.push_back({});
    return group;
  }
  const auto color = vertex_classes(g);
  AutoSearch search{g,
                    color,
                    max_order,
                    n,
                    Perm(static_cast<std::size_t>(n), -1),
                    std::vector<bool>(static_cast<std::size_t>(n), false),
                    {},
                    false};
  search.run(0);
  if (search.aborted) {
    group.perms.push_back(identity_perm(n));
    group.complete = false;
    return group;
  }
  group.perms = std::move(search.found);
  // Put the identity first (enumeration emits images in increasing order,
  // so it is already the lexicographically smallest — assert by moving it).
  const Perm id = identity_perm(n);
  const auto it = std::find(group.perms.begin(), group.perms.end(), id);
  if (it == group.perms.end())
    throw std::logic_error("automorphisms: identity not found");
  std::iter_swap(group.perms.begin(), it);
  return group;
}

AutomorphismGroup vertex_stabilizer(const AutomorphismGroup& group, int v) {
  AutomorphismGroup stab;
  stab.complete = group.complete;
  for (const Perm& p : group.perms)
    if (p[static_cast<std::size_t>(v)] == v) stab.perms.push_back(p);
  return stab;
}

Canonicalizer::Canonicalizer(int n, AutomorphismGroup group)
    : n_(n), group_(std::move(group)) {
  if (n < 0 || n > kMaxVertices)
    throw std::invalid_argument("Canonicalizer: n <= 12 required");
  const std::size_t k = group_.perms.size();
  if (k == 0) throw std::invalid_argument("Canonicalizer: empty group");
  inv_.resize(k);
  lo_.resize(k);
  hi_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    const Perm& p = group_.perms[i];
    if (static_cast<int>(p.size()) != n)
      throw std::invalid_argument("Canonicalizer: permutation size mismatch");
    inv_[i].fill(0);
    for (int v = 0; v < n; ++v)
      inv_[i][static_cast<std::size_t>(p[static_cast<std::size_t>(v)])] =
          static_cast<std::uint8_t>(v);
    // Column tables over 6-bit halves: table[mask] = OR of image bits.
    for (unsigned m = 0; m < 64; ++m) {
      std::uint16_t lo = 0, hi = 0;
      for (int b = 0; b < 6; ++b) {
        if (!((m >> b) & 1u)) continue;
        if (b < n)
          lo = static_cast<std::uint16_t>(
              lo | (1u << p[static_cast<std::size_t>(b)]));
        if (b + 6 < n)
          hi = static_cast<std::uint16_t>(
              hi | (1u << p[static_cast<std::size_t>(b + 6)]));
      }
      lo_[i][m] = lo;
      hi_[i][m] = hi;
    }
  }
}

State Canonicalizer::canonical(const State& s) const {
  std::size_t ignored;
  return canonical(s, &ignored);
}

State Canonicalizer::canonical(const State& s, std::size_t* perm_index) const {
  State best = s;  // perms[0] is the identity
  *perm_index = 0;
  const std::size_t k = group_.perms.size();
  for (std::size_t i = 1; i < k; ++i) {
    // Build the permuted state row-by-row, comparing to the incumbent with
    // early exit: row v of p(s) is colperm(rows[inv_p(v)]).
    State cand;
    bool better = false;
    bool worse = false;
    for (int v = 0; v < n_ && !worse; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      const std::uint16_t row = col_permute(i, s.rows[inv_[i][sv]]);
      cand.rows[sv] = row;
      if (!better) {
        if (row < best.rows[sv]) better = true;
        else if (row > best.rows[sv]) worse = true;
      }
    }
    if (better && !worse) {
      best = cand;
      *perm_index = i;
    }
  }
  return best;
}

std::uint16_t Canonicalizer::canonical_mask(std::uint16_t mask) const {
  std::uint16_t best = mask;
  const std::size_t k = group_.perms.size();
  for (std::size_t i = 1; i < k; ++i)
    best = std::min(best, col_permute(i, mask));
  return best;
}

}  // namespace sysgo::search
