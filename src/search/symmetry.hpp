// Graph symmetry for state-space reduction.
//
// Two knowledge states that differ by an automorphism of the network reach
// the goal in the same number of rounds, so the solver only ever stores one
// canonical representative per orbit.  This file provides the three pieces:
// vertex classification by iterated color refinement (the pruning signal),
// automorphism-group enumeration by class-guided backtracking, and a
// Canonicalizer that maps a state to the lexicographic minimum of its orbit
// under the enumerated group.
//
// Canonicalization is sound for any SUBGROUP of Aut(G): orbits under a
// subgroup refine the true orbits, so distinct states are never merged,
// only less deduplication happens.  When the full group is larger than the
// enumeration cap we therefore fall back to the identity-only subgroup
// rather than an arbitrary (non-closed) truncation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "search/state.hpp"

namespace sysgo::search {

/// perm[v] = image of vertex v.
using Perm = std::vector<int>;

/// Stable vertex classification: color[v] == color[w] iff refinement cannot
/// distinguish v and w by degrees and iterated neighborhood colors.  Colors
/// are dense in [0, num_classes) and canonical for a given digraph.
[[nodiscard]] std::vector<int> vertex_classes(const graph::Digraph& g);

struct AutomorphismGroup {
  /// Group elements; perms[0] is always the identity.  When complete is
  /// false the true group exceeded the enumeration cap and only the
  /// identity is retained (see file comment on subgroup soundness).
  std::vector<Perm> perms;
  bool complete = true;

  [[nodiscard]] std::size_t order() const noexcept { return perms.size(); }
};

/// Enumerate Aut(g) by backtracking, pruned by vertex_classes and partial
/// adjacency consistency.  Aborts once more than max_order automorphisms
/// are found and returns the identity-only group with complete = false.
[[nodiscard]] AutomorphismGroup automorphisms(const graph::Digraph& g,
                                              std::size_t max_order = 4096);

/// The subgroup fixing vertex v (used by broadcast, whose source breaks
/// the symmetry).
[[nodiscard]] AutomorphismGroup vertex_stabilizer(const AutomorphismGroup& group,
                                                  int v);

/// Maps states to the lexicographic minimum of their orbit.  Per
/// permutation the row relocation (inverse permutation) and the column
/// bit-permutation (two 6-bit lookup tables) are precomputed, so one orbit
/// element costs n table lookups; candidates are compared to the running
/// minimum row-by-row with early exit.
class Canonicalizer {
 public:
  /// n <= kMaxVertices; every perm in group must have size n.
  Canonicalizer(int n, AutomorphismGroup group);

  [[nodiscard]] const AutomorphismGroup& group() const noexcept { return group_; }
  [[nodiscard]] std::size_t group_order() const noexcept {
    return group_.order();
  }
  [[nodiscard]] const Perm& perm(std::size_t i) const { return group_.perms[i]; }

  /// Canonical representative of s's orbit.
  [[nodiscard]] State canonical(const State& s) const;

  /// As above; *perm_index receives the index of a permutation p with
  /// p(s) == canonical(s) (needed to rebuild witness protocols).
  [[nodiscard]] State canonical(const State& s, std::size_t* perm_index) const;

  /// Orbit minimum of an n-bit vertex set (broadcast informed sets).
  [[nodiscard]] std::uint16_t canonical_mask(std::uint16_t mask) const;

 private:
  /// colperm of permutation i applied to a row mask.
  [[nodiscard]] std::uint16_t col_permute(std::size_t i,
                                          std::uint16_t mask) const noexcept {
    return static_cast<std::uint16_t>(lo_[i][mask & 63u] |
                                      hi_[i][(mask >> 6) & 63u]);
  }

  int n_;
  AutomorphismGroup group_;
  std::vector<std::array<std::uint8_t, kMaxVertices>> inv_;  // inverse perms
  std::vector<std::array<std::uint16_t, 64>> lo_;  // bits 0..5 -> image mask
  std::vector<std::array<std::uint16_t, 64>> hi_;  // bits 6..11 -> image mask
};

}  // namespace sysgo::search
