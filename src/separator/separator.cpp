#include "separator/separator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "graph/search.hpp"
#include "topology/butterfly.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/kautz.hpp"
#include "topology/words.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace sysgo::separator {

using topology::Family;

SeparatorParams lemma31_params(Family f, int d) {
  const double logd = std::log2(static_cast<double>(d));
  switch (f) {
    case Family::kButterfly:
    case Family::kWrappedButterflyDirected:
      return {logd / 2.0, 2.0 / logd};
    case Family::kWrappedButterfly:
      return {2.0 * logd / 3.0, 3.0 / (2.0 * logd)};
    case Family::kDeBruijnDirected:
    case Family::kDeBruijn:
    case Family::kKautzDirected:
    case Family::kKautz:
      return {logd, 1.0 / logd};
    default:
      break;  // classic testbed families: no Lemma 3.1 analysis
  }
  throw std::invalid_argument("lemma31_params: no separator analysis for " +
                              topology::family_name(f, d));
}

std::vector<int> shift_robust_positions(int D, int h) {
  std::vector<int> pos;
  for (int p = 0; p < D; ++p) {
    const bool in_block = p < h || p >= D - h;
    const bool on_progression = p % h == 0;
    if (in_block || on_progression) pos.push_back(p);
  }
  return pos;
}

namespace {

// Top-digit split: "low" digits {0 .. ceil(d/2)-1}, "high" the rest.
// (The paper splits {1..d} at d/2; any balanced split works.)
bool digit_low(int digit, int d) { return digit < (d + 1) / 2; }

// Words over {0..d-1} whose digits at every position of `positions` are all
// low (want_low) or all high — the shift-robust de Bruijn / WBF word sets.
std::vector<std::int64_t> constrained_words(int d, int D,
                                            const std::vector<int>& positions,
                                            bool want_low) {
  std::vector<std::int64_t> out;
  const std::int64_t total = topology::ipow(d, D);
  for (std::int64_t x = 0; x < total; ++x) {
    bool ok = true;
    for (std::size_t i = 0; i < positions.size() && ok; ++i)
      ok = (digit_low(topology::digit(x, positions[i], d), d) == want_low);
    if (ok) out.push_back(x);
  }
  return out;
}

// Positions h·j only — the paper's literal sets, sound for the butterfly
// networks whose arcs rewrite digits in place.
std::vector<int> progression_positions(int D, int h) {
  std::vector<int> pos;
  for (int p = 0; p < D; p += h) pos.push_back(p);
  return pos;
}

int sqrt_stride(int D) {
  return std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(D)))));
}

// For Kautz with d = 2 the "high" class has a single symbol, so a block of
// high digits would violate the adjacent-distinct rule.  Fix the constrained
// digits by absolute parity instead: X1 = 0/1, X2 = 2/0 on even/odd
// positions.  Any constrained pair (p in X1, q in X2) conflicts unless
// p is even and q is odd; choosing h odd guarantees a conflicting witness
// among consecutive progression elements.
int kautz_pattern_digit(int p, bool low_side) {
  if (low_side) return p % 2 == 0 ? 0 : 1;
  return p % 2 == 0 ? 2 : 0;
}

}  // namespace

Separator build_separator(Family f, int d, int D) {
  Separator sep;
  sep.params = lemma31_params(f, d);

  switch (f) {
    case Family::kButterfly: {
      // V1/V2: level-0 vertices split on the top digit; distance 2D
      // (digit D-1 is only changed by the level-D<->D-1 rung).
      const std::int64_t words = topology::ipow(d, D);
      for (std::int64_t x = 0; x < words; ++x) {
        const bool low = digit_low(topology::digit(x, D - 1, d), d);
        (low ? sep.v1 : sep.v2)
            .push_back(topology::butterfly_index(x, 0, d, D));
      }
      sep.designed_distance = 2 * D;
      return sep;
    }
    case Family::kWrappedButterflyDirected: {
      // V1 at level D-1, V2 at level 0, split on the top digit; the only
      // arcs rewriting digit D-1 go from level 0 to level D-1, so the
      // directed distance is (D-1) + 1 + (D-1) = 2D - 1.
      const std::int64_t words = topology::ipow(d, D);
      for (std::int64_t x = 0; x < words; ++x) {
        if (digit_low(topology::digit(x, D - 1, d), d))
          sep.v1.push_back(topology::wrapped_butterfly_index(x, D - 1, d, D));
        else
          sep.v2.push_back(topology::wrapped_butterfly_index(x, 0, d, D));
      }
      sep.designed_distance = 2 * D - 1;
      return sep;
    }
    case Family::kWrappedButterfly: {
      // Words differing on every ~sqrt(D)-th position; V1 at level 0,
      // V2 at level floor(D/2).  Distance 3D/2 - O(sqrt(D)).  WBF arcs
      // rewrite digits in place, so the paper's progression-only sets are
      // sound here.
      const int h = sqrt_stride(D);
      const auto pos = progression_positions(D, h);
      for (std::int64_t x : constrained_words(d, D, pos, /*want_low=*/true))
        sep.v1.push_back(topology::wrapped_butterfly_index(x, 0, d, D));
      for (std::int64_t x : constrained_words(d, D, pos, /*want_low=*/false))
        sep.v2.push_back(topology::wrapped_butterfly_index(x, D / 2, d, D));
      sep.designed_distance = 0;  // asymptotic only; verified empirically
      return sep;
    }
    case Family::kDeBruijnDirected:
    case Family::kDeBruijn: {
      // Shift-robust sets (see header): every overlap offset hits a
      // low-vs-high conflict, so dist = D - O(sqrt(D)).
      const int h = sqrt_stride(D);
      const auto pos = shift_robust_positions(D, h);
      for (std::int64_t x : constrained_words(d, D, pos, true))
        sep.v1.push_back(static_cast<int>(x));
      for (std::int64_t x : constrained_words(d, D, pos, false))
        sep.v2.push_back(static_cast<int>(x));
      sep.designed_distance = 0;  // D - O(sqrt(D))
      return sep;
    }
    case Family::kKautzDirected:
    case Family::kKautz: {
      // Shift-robust sets adapted to the adjacent-distinct alphabet.
      int h = sqrt_stride(D);
      if (d == 2 && h % 2 == 0) ++h;  // parity-pattern fix needs h odd
      const auto pos = shift_robust_positions(D, h);
      std::vector<char> constrained(static_cast<std::size_t>(D), 0);
      for (int p : pos) constrained[static_cast<std::size_t>(p)] = 1;
      const auto words = topology::kautz_words(d, D);
      for (std::size_t i = 0; i < words.size(); ++i) {
        bool all_low = true;
        bool all_high = true;
        for (int p = 0; p < D; ++p) {
          if (!constrained[static_cast<std::size_t>(p)]) continue;
          const int digit = words[i][static_cast<std::size_t>(p)];
          if (d == 2) {
            all_low = all_low && digit == kautz_pattern_digit(p, true);
            all_high = all_high && digit == kautz_pattern_digit(p, false);
          } else {
            // Alphabet {0..d}: split at ceil((d+1)/2); both classes have
            // >= 2 symbols for d >= 3, so blocks stay adjacent-distinct.
            const bool low = digit < (d + 2) / 2;
            all_low = all_low && low;
            all_high = all_high && !low;
          }
        }
        if (all_low) sep.v1.push_back(static_cast<int>(i));
        if (all_high) sep.v2.push_back(static_cast<int>(i));
      }
      sep.designed_distance = 0;  // D - O(sqrt(D))
      return sep;
    }
    default:
      break;  // classic testbed families: no Lemma 3.1 construction
  }
  throw std::invalid_argument("build_separator: no separator construction for " +
                              topology::family_name(f, d));
}

SeparatorCheck verify_separator(const graph::Digraph& g, const Separator& sep) {
  SeparatorCheck chk;
  chk.size1 = sep.v1.size();
  chk.size2 = sep.v2.size();
  if (sep.v1.empty() || sep.v2.empty()) return chk;
  const auto dist = graph::multi_source_bfs(g, sep.v1);
  int best = graph::kUnreachable;
  for (int v : sep.v2) best = std::min(best, dist[static_cast<std::size_t>(v)]);
  chk.min_distance = best;
  return chk;
}

}  // namespace sysgo::separator
