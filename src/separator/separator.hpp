// ⟨α, l⟩-separators (Definition 3.5) and the explicit constructions of
// Lemma 3.1 for Butterfly, Wrapped Butterfly, de Bruijn and Kautz families.
//
// A family has an ⟨α, l⟩-separator when every member contains vertex sets
// V1, V2 with dist(V1, V2) = l·log n − o(log n) and
// min(|V1|, |V2|) ≥ 2^{α·l·log n − o(log n)}.  The pair (α, l) feeds
// Theorem 5.1; the explicit sets let us verify the construction by BFS.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"
#include "topology/topology.hpp"

namespace sysgo::separator {

/// The (α, l) parameters of Lemma 3.1 for one family.
struct SeparatorParams {
  double alpha = 0.0;
  double ell = 0.0;
};

/// Lemma 3.1 parameters: BF/WBF→ ⟨log d / 2, 2/log d⟩;
/// WBF ⟨2·log d / 3, 3/(2 log d)⟩; DB/K ⟨log d, 1/log d⟩.
/// Note α·l = 1 for every family.
[[nodiscard]] SeparatorParams lemma31_params(topology::Family f, int d);

/// Concrete separator sets for one member digraph.
struct Separator {
  std::vector<int> v1;
  std::vector<int> v2;
  SeparatorParams params;
  /// The distance the construction is designed to achieve (exact value for
  /// this (d, D), e.g. 2D for BF).  0 when not applicable.
  int designed_distance = 0;
};

/// Build the Lemma 3.1 sets for family f at dimension D.
///
/// For the shift networks (de Bruijn, Kautz) the paper's literal sets —
/// constrain positions h·j only — admit distance-1 pairs: one shift
/// misaligns the constrained positions of V1 against those of V2 and every
/// window lands on unconstrained digits.  We use a shift-robust
/// strengthening that constrains a boundary block on each side plus the
/// h-progression (see shift_robust_positions); any overlap offset then hits
/// a conflicting pair, restoring dist = D − O(√D) with sets still of size
/// 2^{α·l·log n − o(log n)}.  Butterfly-style networks rewrite digits in
/// place (no re-indexing), so the paper's sets are used as written.
[[nodiscard]] Separator build_separator(topology::Family f, int d, int D);

/// The constrained position set of the shift-robust construction:
/// [0, h) ∪ [D−h, D) ∪ {h·j < D}, ascending.
[[nodiscard]] std::vector<int> shift_robust_positions(int D, int h);

/// BFS verification of a separator against its digraph.
struct SeparatorCheck {
  int min_distance = 0;  // min over V1 x V2 of directed distance
  std::size_t size1 = 0;
  std::size_t size2 = 0;
};
[[nodiscard]] SeparatorCheck verify_separator(const graph::Digraph& g,
                                              const Separator& sep);

}  // namespace sysgo::separator
