#include "simulator/batch.hpp"

#include <bit>
#include <stdexcept>

#include "simulator/kernels.hpp"

namespace sysgo::simulator {

// ------------------------------------------------------------ BatchKnowledge

BatchKnowledge::BatchKnowledge(int n, int lanes)
    : n_(n),
      lanes_(lanes),
      words_((static_cast<std::size_t>(lanes) + 63) / 64),
      stride_((words_ + 7) / 8 * 8),
      bits_(static_cast<std::size_t>(n) * stride_, 0),
      fresh_(stride_, 0),
      remaining_(static_cast<std::size_t>(lanes), n),
      completed_at_(static_cast<std::size_t>(lanes), -1) {}

void BatchKnowledge::credit_fresh(std::size_t word,
                                  std::uint64_t fresh_bits) noexcept {
  // Total fresh bits over a whole run is at most n * lanes (each row-lane
  // pair is credited once), so this scan is cheap in aggregate.
  while (fresh_bits != 0) {
    const int bit = std::countr_zero(fresh_bits);
    fresh_bits &= fresh_bits - 1;
    const std::size_t lane = word * 64 + static_cast<std::size_t>(bit);
    if (--remaining_[lane] == 0) {
      completed_at_[lane] = round_;
      ++done_;
    }
  }
}

void BatchKnowledge::mark(int v, int lane) noexcept {
  std::uint64_t& word =
      row_ptr(v)[static_cast<std::size_t>(lane) / 64];
  const std::uint64_t bit = std::uint64_t{1}
                            << (static_cast<std::size_t>(lane) % 64);
  if ((word & bit) == 0) {
    word |= bit;
    if (--remaining_[static_cast<std::size_t>(lane)] == 0) {
      completed_at_[static_cast<std::size_t>(lane)] = round_;
      ++done_;
    }
  }
}

bool BatchKnowledge::marked(int v, int lane) const noexcept {
  return (row_ptr(v)[static_cast<std::size_t>(lane) / 64] >>
          (static_cast<std::size_t>(lane) % 64)) & 1u;
}

void BatchKnowledge::merge_arcs(std::span<const graph::Arc> arcs) noexcept {
  // Within a round the arcs form a matching: half-duplex merges are
  // vertex-disjoint, and a full-duplex pair's two opposite arcs only
  // exchange with each other — sequential in-place unions therefore equal
  // the snapshot semantics of the serial broadcast step.
  const RowKernels& k = kernels();
  std::uint64_t* const base = bits_.data();
  const std::size_t stride = stride_;
  for (const graph::Arc& a : arcs) {
    const int added =
        k.merge_fresh(base + static_cast<std::size_t>(a.head) * stride,
                      base + static_cast<std::size_t>(a.tail) * stride,
                      fresh_.data(), stride);
    if (added == 0) continue;
    for (std::size_t w = 0; w < words_; ++w)
      if (fresh_[w] != 0) credit_fresh(w, fresh_[w]);
  }
}

// ------------------------------------------------------- batched broadcast

std::vector<int> broadcast_times_batch(const protocol::CompiledSchedule& cs,
                                       std::span<const int> sources,
                                       int max_rounds) {
  const int n = cs.n();
  for (const int s : sources)
    if (s < 0 || s >= n)
      throw std::invalid_argument(
          "broadcast_times_batch: source out of range");
  BatchKnowledge bk(n, static_cast<int>(sources.size()));
  bk.set_round(0);  // n == 1 lanes complete at 0, like broadcast_time
  for (std::size_t l = 0; l < sources.size(); ++l)
    bk.mark(sources[l], static_cast<int>(l));
  const int rounds = cs.round_count();
  if (!cs.periodic() && max_rounds > rounds) max_rounds = rounds;
  int r = 0;
  for (int i = 1; i <= max_rounds && !bk.all_done(); ++i) {
    bk.set_round(i);
    bk.merge_arcs(cs.round_arcs(r));
    if (++r == rounds) r = 0;
  }
  std::vector<int> times(sources.size());
  for (std::size_t l = 0; l < sources.size(); ++l)
    times[l] = bk.completed_at(static_cast<int>(l));
  return times;
}

std::vector<int> broadcast_times_all(const protocol::CompiledSchedule& cs,
                                     int max_rounds) {
  std::vector<int> sources(static_cast<std::size_t>(cs.n()));
  for (int v = 0; v < cs.n(); ++v) sources[static_cast<std::size_t>(v)] = v;
  return broadcast_times_batch(cs, sources, max_rounds);
}

// ----------------------------------------------------------- gossip batching

KnowledgeMatrix& GossipArena::acquire(int n) {
  if (!know_ || know_->size() != n)
    know_ = std::make_unique<KnowledgeMatrix>(n);
  else
    know_->reset();
  return *know_;
}

int gossip_time(const protocol::CompiledSchedule& cs, int max_rounds,
                const GossipOptions& opts, GossipArena& arena) {
  KnowledgeMatrix& know = arena.acquire(cs.n());
  if (know.all_full()) return 0;  // n == 1
  const int rounds = cs.round_count();
  if (!cs.periodic() && max_rounds > rounds) max_rounds = rounds;
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    apply_round(know, cs, r, opts.parallel);
    if (know.all_full()) return i;
    if (++r == rounds) r = 0;
  }
  return -1;
}

std::vector<int> run_gossip_batch(
    std::span<const protocol::CompiledSchedule* const> batch, int max_rounds,
    const GossipOptions& opts) {
  GossipArena arena;
  std::vector<int> times(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    times[i] = gossip_time(*batch[i], max_rounds, opts, arena);
  return times;
}

}  // namespace sysgo::simulator
