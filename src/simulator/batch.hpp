// Batched compiled-schedule execution.
//
// Two batching axes, both built on the SIMD row kernels:
//
// 1. BatchKnowledge — a structure-of-arrays single-item state: B lanes x
//    n rows, lane-major words.  Row v packs one bit per lane ("row v is
//    informed in lane l"), padded to a 64-byte-aligned stride, so one
//    row-union advances ALL lanes of an arc at once.  The flagship use is
//    broadcast_times_batch: completion times from B sources in ONE pass of
//    the compiled schedule — the round decode (span fetch, arc walk) that a
//    per-source loop repeats B times is paid once, and the per-arc work is
//    a B-bit-wide kernel call.  Per-lane completion is tracked from the
//    kernels' fresh-bit masks, so results are exactly the serial ones.
//
// 2. GossipArena / run_gossip_batch — many full gossip evaluations through
//    one reusable scratch matrix: the arena hands out a reset()
//    KnowledgeMatrix (reallocating only when n changes), so a stream of
//    evaluations — the engine's simulate jobs, the synthesizer's candidate
//    scoring, a corpus run — stops paying an allocation + page-fault per
//    evaluation.  Results are identical to the per-call gossip_time.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "protocol/compiled.hpp"
#include "simulator/gossip_sim.hpp"
#include "simulator/knowledge.hpp"
#include "util/aligned.hpp"

namespace sysgo::simulator {

/// B lanes x n rows of single-bit state, lane-major words: row v's words
/// pack lane bits [0, lanes); rows sit at a 64-byte-aligned stride.
class BatchKnowledge {
 public:
  BatchKnowledge(int n, int lanes);

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] int lanes() const noexcept { return lanes_; }

  /// Mark row v in lane `lane` (idempotent).
  void mark(int v, int lane) noexcept;
  [[nodiscard]] bool marked(int v, int lane) const noexcept;

  /// rows[head] |= rows[tail] for every arc; lanes whose last unmarked row
  /// got marked complete at the current round (see set_round).
  void merge_arcs(std::span<const graph::Arc> arcs) noexcept;

  /// Rounds are 1-based like the simulators; mark()s before the first
  /// set_round complete at round 0 (the n == 1 convention).
  void set_round(int round) noexcept { round_ = round; }

  /// Lanes whose every row is marked.
  [[nodiscard]] int lanes_done() const noexcept { return done_; }
  [[nodiscard]] bool all_done() const noexcept { return done_ == lanes_; }

  /// Round at which lane `lane` completed, -1 while incomplete.
  [[nodiscard]] int completed_at(int lane) const noexcept {
    return completed_at_[static_cast<std::size_t>(lane)];
  }

  /// Rows marked in lane `lane` so far (coverage signal).
  [[nodiscard]] int marked_count(int lane) const noexcept {
    return n_ - remaining_[static_cast<std::size_t>(lane)];
  }

 private:
  [[nodiscard]] std::uint64_t* row_ptr(int v) noexcept {
    return bits_.data() + static_cast<std::size_t>(v) * stride_;
  }
  [[nodiscard]] const std::uint64_t* row_ptr(int v) const noexcept {
    return bits_.data() + static_cast<std::size_t>(v) * stride_;
  }
  void credit_fresh(std::size_t word, std::uint64_t fresh_bits) noexcept;

  int n_ = 0;
  int lanes_ = 0;
  std::size_t words_ = 0;   // ceil(lanes / 64)
  std::size_t stride_ = 0;  // words_ rounded up to a cache line
  int round_ = 0;
  int done_ = 0;
  util::CacheAlignedVector<std::uint64_t> bits_;
  util::CacheAlignedVector<std::uint64_t> fresh_;  // kernel gain-mask scratch
  std::vector<int> remaining_;     // unmarked rows per lane
  std::vector<int> completed_at_;  // -1 while incomplete
};

/// Broadcast completion time for every source in `sources`, computed in one
/// pass of the schedule (SoA lanes; one round decode for the whole batch).
/// Entry l equals broadcast_time(cs, sources[l], max_rounds).  Throws
/// std::invalid_argument for an out-of-range source.
[[nodiscard]] std::vector<int> broadcast_times_batch(
    const protocol::CompiledSchedule& cs, std::span<const int> sources,
    int max_rounds);

/// All-sources convenience form: sources = 0..n-1.
[[nodiscard]] std::vector<int> broadcast_times_all(
    const protocol::CompiledSchedule& cs, int max_rounds);

/// Reusable gossip scratch: acquire(n) returns a reset KnowledgeMatrix,
/// reallocating only when n differs from the previous acquisition.
class GossipArena {
 public:
  [[nodiscard]] KnowledgeMatrix& acquire(int n);

 private:
  std::unique_ptr<KnowledgeMatrix> know_;
};

/// gossip_time through a caller-provided arena: identical results to
/// simulator::gossip_time(cs, max_rounds, opts), minus the per-call
/// allocation.
[[nodiscard]] int gossip_time(const protocol::CompiledSchedule& cs,
                              int max_rounds, const GossipOptions& opts,
                              GossipArena& arena);

/// Gossip times of many compiled schedules through one shared arena (mixed
/// n allowed; the arena reallocates on change, so group by n for best
/// reuse).  Entry i equals gossip_time(*batch[i], max_rounds, opts).
[[nodiscard]] std::vector<int> run_gossip_batch(
    std::span<const protocol::CompiledSchedule* const> batch, int max_rounds,
    const GossipOptions& opts = {});

}  // namespace sysgo::simulator
