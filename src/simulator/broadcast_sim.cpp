#include "simulator/broadcast_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "simulator/gossip_sim.hpp"

namespace sysgo::simulator {
namespace {

// One single-item propagation step over a round's arc span.  Pre-round
// snapshot semantics: heads are collected against the state at the
// beginning of the round, then marked, so a vertex informed this round
// does not forward within the same round.  Works for both duplex modes
// (full-duplex pairs are two opposite arcs evaluated independently).
// Returns how many vertices the round informed.
int step_reach(std::span<const sysgo::graph::Arc> arcs, std::vector<int>& reach,
               std::vector<int>& newly, int round_no) {
  newly.clear();
  for (const auto& a : arcs) {
    if (reach[static_cast<std::size_t>(a.tail)] != -1 &&
        reach[static_cast<std::size_t>(a.head)] == -1)
      newly.push_back(a.head);
  }
  for (int v : newly) reach[static_cast<std::size_t>(v)] = round_no;
  return static_cast<int>(newly.size());
}

}  // namespace

std::vector<int> broadcast_reach(const protocol::Protocol& p, int src) {
  std::vector<int> reach(static_cast<std::size_t>(p.n), -1);
  reach[static_cast<std::size_t>(src)] = 0;
  std::vector<int> newly;
  int round_no = 0;
  for (const auto& r : p.rounds) step_reach(r.arcs, reach, newly, ++round_no);
  return reach;
}

std::vector<int> broadcast_reach(const protocol::CompiledSchedule& cs, int src) {
  cs.require_finite("broadcast_reach");  // periodic goes through broadcast_time
  std::vector<int> reach(static_cast<std::size_t>(cs.n()), -1);
  reach[static_cast<std::size_t>(src)] = 0;
  std::vector<int> newly;
  for (int r = 0; r < cs.round_count(); ++r)
    step_reach(cs.round_arcs(r), reach, newly, r + 1);
  return reach;
}

int broadcast_time(const protocol::SystolicSchedule& sched, int src, int max_rounds) {
  std::vector<int> reach(static_cast<std::size_t>(sched.n), -1);
  reach[static_cast<std::size_t>(src)] = 0;
  int informed = 1;
  if (informed == sched.n) return 0;  // n == 1: consistent with gossip_time
  std::vector<int> newly;
  for (int i = 1; i <= max_rounds; ++i) {
    informed += step_reach(sched.round_at(i).arcs, reach, newly, i);
    if (informed == sched.n) return i;
  }
  return -1;
}

int broadcast_time(const protocol::CompiledSchedule& cs, int src, int max_rounds) {
  std::vector<int> reach(static_cast<std::size_t>(cs.n()), -1);
  reach[static_cast<std::size_t>(src)] = 0;
  int informed = 1;
  if (informed == cs.n()) return 0;  // n == 1: consistent with gossip_time
  const int rounds = cs.round_count();
  if (!cs.periodic() && max_rounds > rounds) max_rounds = rounds;
  std::vector<int> newly;
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    informed += step_reach(cs.round_arcs(r), reach, newly, i);
    if (informed == cs.n()) return i;
    if (++r == rounds) r = 0;
  }
  return -1;
}

bool achieves_gossip(const protocol::Protocol& p) {
  simulator::GossipResult res = run_gossip(p);
  return res.complete;
}

std::vector<std::vector<int>> arrival_times(const protocol::Protocol& p) {
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(p.n));
  for (int src = 0; src < p.n; ++src) out.push_back(broadcast_reach(p, src));
  return out;
}

int gossip_completion_from_arrivals(const std::vector<std::vector<int>>& arrivals) {
  int worst = 0;
  for (const auto& row : arrivals)
    for (int t : row) {
      if (t == -1) return -1;
      worst = std::max(worst, t);
    }
  return worst;
}

}  // namespace sysgo::simulator
