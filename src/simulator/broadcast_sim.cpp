#include "simulator/broadcast_sim.hpp"

#include <algorithm>

#include "simulator/gossip_sim.hpp"

namespace sysgo::simulator {
namespace {

// Single-item propagation: informed set evolves round by round.
// Pre-round snapshot semantics: heads are collected against the state at
// the beginning of the round, then marked, so a vertex informed this round
// does not forward within the same round.  Works for both duplex modes
// (full-duplex pairs are two opposite arcs evaluated independently).
std::vector<int> reach_times(int n, const std::vector<const protocol::Round*>& rounds,
                             int src) {
  std::vector<int> reach(static_cast<std::size_t>(n), -1);
  reach[static_cast<std::size_t>(src)] = 0;
  int round_no = 0;
  for (const auto* round : rounds) {
    ++round_no;
    std::vector<int> newly;
    for (const auto& a : round->arcs) {
      if (reach[static_cast<std::size_t>(a.tail)] != -1 &&
          reach[static_cast<std::size_t>(a.head)] == -1)
        newly.push_back(a.head);
    }
    for (int v : newly) reach[static_cast<std::size_t>(v)] = round_no;
  }
  return reach;
}

}  // namespace

std::vector<int> broadcast_reach(const protocol::Protocol& p, int src) {
  std::vector<const protocol::Round*> rounds;
  rounds.reserve(p.rounds.size());
  for (const auto& r : p.rounds) rounds.push_back(&r);
  return reach_times(p.n, rounds, src);
}

int broadcast_time(const protocol::SystolicSchedule& sched, int src, int max_rounds) {
  std::vector<int> reach(static_cast<std::size_t>(sched.n), -1);
  reach[static_cast<std::size_t>(src)] = 0;
  int informed = 1;
  for (int i = 1; i <= max_rounds; ++i) {
    const auto& round = sched.round_at(i);
    // Pre-round snapshot: collect heads first, then mark, so a vertex
    // informed this round does not forward within the same round.
    std::vector<int> newly;
    for (const auto& a : round.arcs)
      if (reach[static_cast<std::size_t>(a.tail)] != -1 &&
          reach[static_cast<std::size_t>(a.head)] == -1)
        newly.push_back(a.head);
    for (int v : newly) reach[static_cast<std::size_t>(v)] = i;
    informed += static_cast<int>(newly.size());
    if (informed == sched.n) return i;
  }
  return -1;
}

bool achieves_gossip(const protocol::Protocol& p) {
  simulator::GossipResult res = run_gossip(p);
  return res.complete;
}

std::vector<std::vector<int>> arrival_times(const protocol::Protocol& p) {
  std::vector<std::vector<int>> out;
  out.reserve(static_cast<std::size_t>(p.n));
  for (int src = 0; src < p.n; ++src) out.push_back(broadcast_reach(p, src));
  return out;
}

int gossip_completion_from_arrivals(const std::vector<std::vector<int>>& arrivals) {
  int worst = 0;
  for (const auto& row : arrivals)
    for (int t : row) {
      if (t == -1) return -1;
      worst = std::max(worst, t);
    }
  return worst;
}

}  // namespace sysgo::simulator
