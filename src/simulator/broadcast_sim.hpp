// Broadcast simulator: reach times of a single item under a protocol.
// Used for sanity experiments (broadcast lower bounds are the baseline the
// paper improves on) and for verifying Definition 3.1's path condition.
#pragma once

#include <vector>

#include "protocol/compiled.hpp"
#include "protocol/protocol.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::simulator {

/// reach[v] = first round after which v knows src's item (0 for src itself,
/// -1 when the item never arrives within the protocol).
[[nodiscard]] std::vector<int> broadcast_reach(const protocol::Protocol& p, int src);

/// Compiled execution over a finite protocol's flat arc spans, one pass
/// through.  Result-identical to the protocol overload.  Throws
/// std::invalid_argument for a periodic compiled schedule (use
/// broadcast_time).
[[nodiscard]] std::vector<int> broadcast_reach(const protocol::CompiledSchedule& cs,
                                               int src);

/// Rounds until src's item reaches every vertex under the schedule, or -1.
[[nodiscard]] int broadcast_time(const protocol::SystolicSchedule& sched, int src,
                                 int max_rounds);

/// Compiled execution: periodic schedules wrap, finite protocols stop at
/// round_count().
[[nodiscard]] int broadcast_time(const protocol::CompiledSchedule& cs, int src,
                                 int max_rounds);

/// Definition 3.1 condition 2 checked exhaustively by simulation: every
/// ordered pair (x, y) is served within the protocol's length.
[[nodiscard]] bool achieves_gossip(const protocol::Protocol& p);

/// The full n x n arrival-time matrix: entry (src, dst) is the first round
/// after which dst knows src's item (0 on the diagonal, -1 when the item
/// never arrives).  Row src equals broadcast_reach(p, src).
[[nodiscard]] std::vector<std::vector<int>> arrival_times(const protocol::Protocol& p);

/// max over pairs of arrival time, or -1 when some pair is unserved —
/// the protocol's gossip completion round, computed item-exactly.
[[nodiscard]] int gossip_completion_from_arrivals(
    const std::vector<std::vector<int>>& arrivals);

}  // namespace sysgo::simulator
