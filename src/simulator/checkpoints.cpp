#include "simulator/checkpoints.hpp"

#include <cstring>
#include <stdexcept>

namespace sysgo::simulator {

namespace {

int checked_stride(int stride) {
  if (stride < 1)
    throw std::invalid_argument("checkpoints: need stride >= 1");
  return stride;
}

}  // namespace

// ------------------------------------------------------- KnowledgeCheckpoints

KnowledgeCheckpoints::KnowledgeCheckpoints(int stride)
    : stride_rounds_(checked_stride(stride)) {}

KnowledgeMatrix& KnowledgeCheckpoints::acquire(int n) {
  if (!know_ || know_->size() != n) {
    know_ = std::make_unique<KnowledgeMatrix>(n);
    pending_in_.assign(static_cast<std::size_t>(n), 0);
    versions_.assign(static_cast<std::size_t>(n), {});
    pool_.clear();  // pooled buffers were sized for the old n
  } else {
    know_->reset();
    std::fill(pending_in_.begin(), pending_in_.end(), 0);
    for (auto& stack : versions_) stack.clear();
  }
  pending_.clear();
  while (!checkpoints_.empty()) {
    pool_.push_back(std::move(checkpoints_.back()));
    checkpoints_.pop_back();
  }
  bytes_ = 0;
  live_round_ = 0;
  return *know_;
}

void KnowledgeCheckpoints::touch(int v) {
  if (!pending_in_[static_cast<std::size_t>(v)]) {
    pending_in_[static_cast<std::size_t>(v)] = 1;
    pending_.push_back(v);
  }
}

void KnowledgeCheckpoints::after_round(int round,
                                       std::span<const graph::Arc> links,
                                       bool full_duplex) {
  // Once every row is pending, marking cannot add anything — skip it.  On
  // dense schedules the set saturates a couple of rounds past the last
  // checkpoint, so the long adaptive-cap probes beyond the snapshot
  // horizon run at plain simulation speed.
  if (pending_.size() < static_cast<std::size_t>(know_->size())) {
    for (const graph::Arc& a : links) {
      // Half-duplex merges write the head row only; full-duplex exchanges
      // write both.  Marking a row whose merge was skipped (already full)
      // is harmless — restores just re-copy an identical row.
      touch(a.head);
      if (full_duplex) touch(a.tail);
    }
  }
  live_round_ = round;
  if (round <= horizon_ && round % stride_rounds_ == 0 && !pending_.empty())
    take_snapshot(round);
}

void KnowledgeCheckpoints::take_snapshot(int round) {
  const std::size_t stride = know_->stride();
  Snapshot snap;
  if (!pool_.empty()) {  // recycle buffers — snapshots churn once per eval
    snap = std::move(pool_.back());
    pool_.pop_back();
    snap.rows.clear();
    snap.counts.clear();
  }
  snap.round = round;
  snap.rows.swap(pending_);  // pending_ inherits the recycled capacity
  snap.counts.reserve(snap.rows.size());
  snap.words.resize(snap.rows.size() * stride);
  const std::uint32_t snapshot_idx =
      static_cast<std::uint32_t>(checkpoints_.size());
  for (std::uint32_t slot = 0; slot < snap.rows.size(); ++slot) {
    const int v = snap.rows[slot];
    pending_in_[static_cast<std::size_t>(v)] = 0;
    const auto row = know_->row(v);
    std::memcpy(snap.words.data() + slot * stride, row.data(),
                stride * sizeof(std::uint64_t));
    snap.counts.push_back(know_->count(v));
    versions_[static_cast<std::size_t>(v)].push_back({round, snapshot_idx, slot});
  }
  bytes_ += snap.words.size() * sizeof(std::uint64_t);
  checkpoints_.push_back(std::move(snap));
}

int KnowledgeCheckpoints::rewind(int target) {
  if (live_round_ <= target) return live_round_;
  // Drop whole checkpoint windows above the target.  Their row lists join
  // pending_: together they are exactly the rows dirtied after the
  // remaining top checkpoint (the invariant in the header), i.e. the full
  // restore set — no per-row scan of the matrix is needed.
  while (!checkpoints_.empty() && checkpoints_.back().round > target) {
    Snapshot& snap = checkpoints_.back();
    for (const int v : snap.rows) {
      versions_[static_cast<std::size_t>(v)].pop_back();
      touch(v);
    }
    bytes_ -= snap.words.size() * sizeof(std::uint64_t);
    pool_.push_back(std::move(snap));
    checkpoints_.pop_back();
  }

  const int c = checkpoints_.empty() ? 0 : checkpoints_.back().round;
  const std::size_t stride = know_->stride();
  for (const int v : pending_) {
    pending_in_[static_cast<std::size_t>(v)] = 0;
    const auto& stack = versions_[static_cast<std::size_t>(v)];
    if (stack.empty()) {
      know_->reset_row(v);
    } else {
      const RowVersion& top = stack.back();  // round <= c by the invariant
      const Snapshot& snap = checkpoints_[top.snapshot];
      know_->restore_row(v, snap.words.data() + top.slot * stride,
                         snap.counts[top.slot]);
    }
  }
  // The live state now *is* checkpoint c: nothing is dirty in (c, c].
  pending_.clear();
  live_round_ = c;
  return c;
}

// ----------------------------------------------------------- ReachCheckpoints

ReachCheckpoints::ReachCheckpoints(int stride)
    : stride_rounds_(checked_stride(stride)) {}

void ReachCheckpoints::acquire(int n, int source) {
  if (source < 0 || source >= n)
    throw std::invalid_argument("ReachCheckpoints: source out of range");
  n_ = n;
  source_ = source;
  reach_.assign(static_cast<std::size_t>(n), 0);
  reach_[static_cast<std::size_t>(source)] = 1;
  reached_ = 1;
  live_round_ = 0;
  while (!checkpoints_.empty()) {
    pool_.push_back(std::move(checkpoints_.back()));
    checkpoints_.pop_back();
  }
  bytes_ = 0;
}

void ReachCheckpoints::step(std::span<const graph::Arc> links,
                            bool expand_pairs) noexcept {
  for (const graph::Arc& a : links) {
    if (reach_[static_cast<std::size_t>(a.tail)] &&
        !reach_[static_cast<std::size_t>(a.head)]) {
      reach_[static_cast<std::size_t>(a.head)] = 1;
      ++reached_;
    } else if (expand_pairs && reach_[static_cast<std::size_t>(a.head)] &&
               !reach_[static_cast<std::size_t>(a.tail)]) {
      reach_[static_cast<std::size_t>(a.tail)] = 1;
      ++reached_;
    }
  }
}

void ReachCheckpoints::after_round(int round) {
  live_round_ = round;
  if (round > horizon_ || round % stride_rounds_ != 0) return;
  Snapshot snap;
  if (!pool_.empty()) {  // recycle buffers — snapshots churn once per eval
    snap = std::move(pool_.back());
    pool_.pop_back();
  }
  snap.round = round;
  snap.reached = reached_;
  snap.reach = reach_;
  bytes_ += snap.reach.size();
  checkpoints_.push_back(std::move(snap));
}

int ReachCheckpoints::rewind(int target) {
  while (!checkpoints_.empty() && checkpoints_.back().round > target) {
    bytes_ -= checkpoints_.back().reach.size();
    pool_.push_back(std::move(checkpoints_.back()));
    checkpoints_.pop_back();
  }
  if (live_round_ <= target) return live_round_;
  if (checkpoints_.empty()) {
    std::fill(reach_.begin(), reach_.end(), 0);
    reach_[static_cast<std::size_t>(source_)] = 1;
    reached_ = 1;
    live_round_ = 0;
  } else {
    const Snapshot& snap = checkpoints_.back();
    std::memcpy(reach_.data(), snap.reach.data(), reach_.size());
    reached_ = snap.reached;
    live_round_ = snap.round;
  }
  return live_round_;
}

// --------------------------------------------------- compiled-schedule entry

ReplayOutcome replay_gossip_from(KnowledgeCheckpoints& cps,
                                 const protocol::CompiledSchedule& cs,
                                 int from_round, int max_rounds) {
  if (!cps.allocated() || cps.matrix().size() != cs.n())
    throw std::invalid_argument("replay_gossip_from: acquire(cs.n()) first");
  if (!cs.periodic()) max_rounds = std::min(max_rounds, cs.round_count());
  const bool full = cs.mode() == protocol::Mode::kFullDuplex;
  return replay_gossip_rounds(
      cps, cs.round_count(), full, from_round, max_rounds,
      [&cs, full](int p) { return full ? cs.round_pairs(p) : cs.round_arcs(p); });
}

ReplayOutcome replay_broadcast_from(ReachCheckpoints& cps,
                                    const protocol::CompiledSchedule& cs,
                                    int from_round, int max_rounds) {
  if (!cps.allocated() || cps.size() != cs.n())
    throw std::invalid_argument(
        "replay_broadcast_from: acquire(cs.n(), source) first");
  if (!cs.periodic()) max_rounds = std::min(max_rounds, cs.round_count());
  // Compiled rounds carry both directions of a full-duplex exchange, so the
  // plain directed relay covers exchanges without pair expansion.
  return replay_broadcast_rounds(cps, cs.round_count(), false, from_round,
                                 max_rounds,
                                 [&cs](int p) { return cs.round_arcs(p); });
}

}  // namespace sysgo::simulator
