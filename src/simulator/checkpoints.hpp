// Per-round knowledge checkpoints: the delta-evaluation substrate.
//
// A move on a periodic schedule that touches stored round p leaves the
// knowledge evolution of executed rounds 1..p untouched — only the suffix
// from p+1 must be re-simulated.  KnowledgeCheckpoints wraps a
// KnowledgeMatrix with copy-on-write round snapshots so that suffix replay
// is cheap to *start*: every `stride` executed rounds it records the rows
// dirtied since the previous checkpoint (and only those — each snapshot is
// the copy-on-write delta of one stride window), and rewind(t) restores the
// live matrix to the nearest checkpoint c <= t by one aligned memcpy per
// row dirtied after c.  Rows are stored at the matrix's cache-line stride,
// so restores hit the same aligned fast path as the SIMD merge kernels, and
// the per-row item counts ride along — the O(1) completion counters stay
// exact after a restore.
//
// Bookkeeping invariant: every checkpoint stores exactly the rows dirtied
// since the previous taken checkpoint, and `pending_` holds the rows
// dirtied since the last taken checkpoint.  After dropping all checkpoints
// above a target, the rows dirtied after the remaining top checkpoint c are
// exactly pending_ plus the dropped checkpoints' row lists — there is
// nothing to scan.  For each such row, its top surviving snapshot entry is
// its state at c (had the row changed in (entry, c], the checkpoint at or
// before c covering that window would have captured it — pending carries
// rows across horizon-skipped windows until the next taken checkpoint);
// rows with no entry are still in the identity start state.  This holds
// across any interleaving of replays, rewinds, and horizon changes,
// because all mutations flow through after_round and drops only pop whole
// suffix windows.
//
// ReachCheckpoints is the single-source (broadcast) counterpart: the state
// is one reach byte per vertex, small enough that full copies per
// checkpoint beat copy-on-write bookkeeping.
//
// replay_gossip_rounds / replay_broadcast_rounds are the resume loops —
// header templates over a `links_of(period_round)` source so the
// synthesizer's drafts and compiled schedules share them; replay_from
// wraps them for CompiledSchedule (the simulator-level entry).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "protocol/compiled.hpp"
#include "simulator/knowledge.hpp"
#include "util/aligned.hpp"

namespace sysgo::simulator {

/// Default checkpoint spacing in rounds.  Snapshots are COW deltas, so the
/// cost of a small stride is bounded by the rows actually touched; a restore
/// replays at most stride-1 rounds beyond the invalidation point.
inline constexpr int kDefaultCheckpointStride = 4;

/// Outcome of a (possibly resumed) run.  `rounds` is the 1-based completion
/// round when complete, otherwise the cap the run was cut off at;
/// `start_round` is where the replay actually resumed (rounds replayed =
/// rounds - start_round).
struct ReplayOutcome {
  bool complete = false;
  int rounds = 0;
  int start_round = 0;
};

class KnowledgeCheckpoints {
 public:
  explicit KnowledgeCheckpoints(int stride = kDefaultCheckpointStride);

  /// Hard reset: identity start state at round 0, all checkpoints dropped.
  /// Reallocates only when n differs from the previous acquisition.
  KnowledgeMatrix& acquire(int n);

  [[nodiscard]] KnowledgeMatrix& matrix() noexcept { return *know_; }
  [[nodiscard]] const KnowledgeMatrix& matrix() const noexcept {
    return *know_;
  }
  [[nodiscard]] bool allocated() const noexcept { return know_ != nullptr; }

  /// Executed round the live matrix currently reflects.
  [[nodiscard]] int live_round() const noexcept { return live_round_; }

  [[nodiscard]] int stride() const noexcept { return stride_rounds_; }

  /// Stop taking snapshots beyond round `h` (touch tracking continues, so
  /// rewinds below the horizon stay exact).  Pure policy: a caller that
  /// knows every future rewind target is < h — the synthesizer's targets
  /// are stored-round indices, all < period — skips the snapshot cost of
  /// the long tail past the period.  Default: no horizon.
  void set_snapshot_horizon(int h) noexcept { horizon_ = h; }

  /// Record that executed round `round` just merged `links` into the live
  /// matrix (head rows; both endpoints when full_duplex), and snapshot the
  /// dirty window when the round lands on the stride grid.  Must be called
  /// with consecutive rounds live_round()+1, live_round()+2, ...
  void after_round(int round, std::span<const graph::Arc> links,
                   bool full_duplex);

  /// Drop checkpoints after `target` and restore the live matrix to the
  /// nearest remaining checkpoint at or below it (round 0 = identity when
  /// none).  Returns the round actually restored to — live_round() when the
  /// live state is already at or before `target` (no work).
  int rewind(int target);

  /// What rewind(target) would return, without doing any work.  Lets a
  /// caller detect a from-scratch replay (resume point 0) up front and
  /// choose a cheaper uncheckpointed path.
  [[nodiscard]] int resume_point(int target) const noexcept {
    if (live_round_ <= target) return live_round_;
    for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it)
      if (it->round <= target) return it->round;
    return 0;
  }

  /// Bytes held by snapshot row buffers (the gauge the obs layer reports).
  [[nodiscard]] std::size_t checkpoint_bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] int checkpoint_count() const noexcept {
    return static_cast<int>(checkpoints_.size());
  }

 private:
  // A row's saved state inside checkpoints_[snapshot]: row buffer at
  // slot * row-stride, count/touch at slot.  Per-row entry stacks stay
  // sorted by round because snapshots push monotonically and rewinds pop
  // whole suffixes.
  struct RowVersion {
    int round;
    std::uint32_t snapshot;
    std::uint32_t slot;
  };
  struct Snapshot {
    int round = 0;
    std::vector<int> rows;    // which rows this window dirtied
    std::vector<int> counts;  // their item counts at `round`
    util::CacheAlignedVector<std::uint64_t> words;
  };

  void touch(int v);
  void take_snapshot(int round);

  int stride_rounds_;
  int horizon_ = std::numeric_limits<int>::max();
  std::unique_ptr<KnowledgeMatrix> know_;
  int live_round_ = 0;
  std::vector<char> pending_in_;   // membership flags for pending_
  std::vector<int> pending_;       // rows dirtied since the last checkpoint
  std::vector<std::vector<RowVersion>> versions_;  // per-row entry stacks
  std::vector<Snapshot> checkpoints_;
  std::vector<Snapshot> pool_;     // retired snapshots, kept for their buffers
  std::size_t bytes_ = 0;
};

/// Broadcast-state checkpoints: reach vector + reached count, snapshotted
/// in full every `stride` rounds (n bytes a copy — COW would cost more in
/// bookkeeping than it saves).
class ReachCheckpoints {
 public:
  explicit ReachCheckpoints(int stride = kDefaultCheckpointStride);

  /// Hard reset: only `source` reached, round 0, checkpoints dropped.
  /// Throws std::invalid_argument for a source out of range.
  void acquire(int n, int source);

  [[nodiscard]] bool allocated() const noexcept { return n_ > 0; }
  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] int source() const noexcept { return source_; }
  [[nodiscard]] int reached() const noexcept { return reached_; }
  [[nodiscard]] bool complete() const noexcept { return reached_ == n_; }
  [[nodiscard]] int live_round() const noexcept { return live_round_; }
  [[nodiscard]] int stride() const noexcept { return stride_rounds_; }

  /// Same policy knob as KnowledgeCheckpoints::set_snapshot_horizon.
  void set_snapshot_horizon(int h) noexcept { horizon_ = h; }

  /// Relay one round of links.  expand_pairs: links are full-duplex
  /// tail < head representatives, so both directions relay (a compiled
  /// round's arc list already carries both and passes false).  Matching
  /// property: a vertex sits in at most one link per round, so immediate
  /// marking equals snapshot semantics.
  void step(std::span<const graph::Arc> links, bool expand_pairs) noexcept;

  /// Snapshot hook; same contract as KnowledgeCheckpoints::after_round.
  void after_round(int round);

  /// Same contract as KnowledgeCheckpoints::rewind.
  int rewind(int target);

  /// Same contract as KnowledgeCheckpoints::resume_point.
  [[nodiscard]] int resume_point(int target) const noexcept {
    if (live_round_ <= target) return live_round_;
    for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it)
      if (it->round <= target) return it->round;
    return 0;
  }

  [[nodiscard]] std::size_t checkpoint_bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] int checkpoint_count() const noexcept {
    return static_cast<int>(checkpoints_.size());
  }

 private:
  struct Snapshot {
    int round = 0;
    int reached = 0;
    std::vector<char> reach;
  };

  int stride_rounds_;
  int horizon_ = std::numeric_limits<int>::max();
  int n_ = 0;
  int source_ = 0;
  int reached_ = 0;
  int live_round_ = 0;
  std::vector<char> reach_;
  std::vector<Snapshot> checkpoints_;
  std::vector<Snapshot> pool_;  // retired snapshots, kept for their buffers
  std::size_t bytes_ = 0;
};

/// Resume a gossip run at the nearest checkpoint <= from_round and run to
/// completion or max_rounds, snapshotting along the way.  `links_of(p)`
/// yields stored round p's links: directed arcs (half duplex) or tail <
/// head pair representatives (full duplex) — exactly the KnowledgeMatrix
/// merge_arcs / merge_pairs work lists.  Caller contract: the link source
/// agrees with every previously replayed round at or before from_round
/// (rewind only unwinds state, it cannot re-check history).
template <typename LinksOf>
ReplayOutcome replay_gossip_rounds(KnowledgeCheckpoints& cps, int period,
                                   bool full_duplex, int from_round,
                                   int max_rounds, LinksOf&& links_of) {
  KnowledgeMatrix& know = cps.matrix();
  const int target = std::min(from_round < 0 ? 0 : from_round, max_rounds);
  ReplayOutcome out;
  out.start_round = cps.rewind(target);
  if (know.all_full()) {
    // A checkpointed (or live) state is only full at the completion round
    // itself — execution never runs past completion — so the restored
    // round *is* the first-full round of any draft sharing this prefix.
    out.complete = true;
    out.rounds = out.start_round;
    return out;
  }
  for (int i = out.start_round + 1; i <= max_rounds; ++i) {
    const auto links = links_of((i - 1) % period);
    if (full_duplex)
      know.merge_pairs(links);
    else
      know.merge_arcs(links);
    cps.after_round(i, links, full_duplex);
    if (know.all_full()) {
      out.complete = true;
      out.rounds = i;
      return out;
    }
  }
  out.rounds = max_rounds;
  return out;
}

/// Broadcast counterpart of replay_gossip_rounds (same contracts).
template <typename LinksOf>
ReplayOutcome replay_broadcast_rounds(ReachCheckpoints& cps, int period,
                                      bool expand_pairs, int from_round,
                                      int max_rounds, LinksOf&& links_of) {
  const int target = std::min(from_round < 0 ? 0 : from_round, max_rounds);
  ReplayOutcome out;
  out.start_round = cps.rewind(target);
  if (cps.complete()) {
    out.complete = true;
    out.rounds = out.start_round;
    return out;
  }
  for (int i = out.start_round + 1; i <= max_rounds; ++i) {
    cps.step(links_of((i - 1) % period), expand_pairs);
    cps.after_round(i);
    if (cps.complete()) {
      out.complete = true;
      out.rounds = i;
      return out;
    }
  }
  out.rounds = max_rounds;
  return out;
}

/// Simulator-level resume entries for compiled schedules: run (or re-run
/// after a mutation at stored round >= from_round) from the nearest
/// checkpoint <= from_round.  The caller acquires the checkpoint object
/// once and may pass a *different* schedule on each call as long as it
/// agrees with the previous one on all stored rounds < from_round.
/// Finite compilations are capped at their round count; throws
/// std::invalid_argument when n (or the broadcast state's source schedule
/// size) does not match the acquisition.
ReplayOutcome replay_gossip_from(KnowledgeCheckpoints& cps,
                                 const protocol::CompiledSchedule& cs,
                                 int from_round, int max_rounds);
ReplayOutcome replay_broadcast_from(ReachCheckpoints& cps,
                                    const protocol::CompiledSchedule& cs,
                                    int from_round, int max_rounds);

}  // namespace sysgo::simulator
