#include "simulator/gossip_sim.hpp"

#include <stdexcept>

#include "util/parallel.hpp"

namespace sysgo::simulator {

void apply_round(KnowledgeMatrix& know, const protocol::Round& round,
                 protocol::Mode mode, bool parallel) {
  if (mode == protocol::Mode::kFullDuplex) {
    // Each unordered pair appears as two opposite arcs; merge once per pair.
    auto merge = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& a = round.arcs[i];
        if (a.tail < a.head) know.merge_both(a.tail, a.head);
      }
    };
    if (parallel)
      util::parallel_for_blocks(0, round.arcs.size(), merge, 512);
    else
      merge(0, round.arcs.size());
  } else {
    // Matching: heads are distinct and no head is also a tail, so merges
    // are independent.
    auto merge = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& a = round.arcs[i];
        know.merge_into(a.head, a.tail);
      }
    };
    if (parallel)
      util::parallel_for_blocks(0, round.arcs.size(), merge, 512);
    else
      merge(0, round.arcs.size());
  }
}

void apply_round(KnowledgeMatrix& know, const protocol::CompiledSchedule& cs,
                 int r, bool parallel) {
  // The work list is one flat span, so the whole round is a single batch
  // call (disjoint sub-spans for the parallel blocks: a matching's merges
  // are independent).
  if (cs.mode() == protocol::Mode::kFullDuplex) {
    const auto pairs = cs.round_pairs(r);
    if (parallel)
      util::parallel_for_blocks(
          0, pairs.size(),
          [&](std::size_t lo, std::size_t hi) {
            know.merge_pairs(pairs.subspan(lo, hi - lo));
          },
          512);
    else
      know.merge_pairs(pairs);
  } else {
    const auto arcs = cs.round_arcs(r);
    if (parallel)
      util::parallel_for_blocks(
          0, arcs.size(),
          [&](std::size_t lo, std::size_t hi) {
            know.merge_arcs(arcs.subspan(lo, hi - lo));
          },
          512);
    else
      know.merge_arcs(arcs);
  }
}

namespace {

GossipResult finish(const KnowledgeMatrix& know, bool complete, int executed,
                    int completion_round, std::vector<int> vertex_completion) {
  GossipResult res;
  res.complete = complete;
  res.rounds_executed = executed;
  res.completion_round = complete ? completion_round : 0;
  res.vertex_completion = std::move(vertex_completion);
  res.final_counts.reserve(static_cast<std::size_t>(know.size()));
  for (int v = 0; v < know.size(); ++v) res.final_counts.push_back(know.count(v));
  return res;
}

// The one finite gossip loop both run_gossip overloads share: apply(know, r)
// executes 0-based round r, arcs_of(r) yields its arcs for completion
// tracking (only endpoints of a round's arcs can change state).
template <typename Apply, typename ArcsOf>
GossipResult run_gossip_loop(int n, int round_total, const GossipOptions& opts,
                             Apply&& apply, ArcsOf&& arcs_of) {
  KnowledgeMatrix know(n);
  std::vector<int> vertex_completion;
  if (opts.track_completion) {
    vertex_completion.assign(static_cast<std::size_t>(n), -1);
    for (int v = 0; v < n; ++v)
      if (know.row_full(v)) vertex_completion[static_cast<std::size_t>(v)] = 0;
  }

  int round_no = 0;
  for (int r = 0; r < round_total; ++r) {
    ++round_no;
    apply(know, r);
    if (opts.track_completion) {
      for (const auto& a : arcs_of(r))
        for (int v : {a.tail, a.head})
          if (vertex_completion[static_cast<std::size_t>(v)] == -1 &&
              know.row_full(v))
            vertex_completion[static_cast<std::size_t>(v)] = round_no;
    }
    if (know.all_full())
      return finish(know, true, round_no, round_no, std::move(vertex_completion));
  }
  return finish(know, know.all_full(), round_no, round_no,
                std::move(vertex_completion));
}

}  // namespace

GossipResult run_gossip(const protocol::Protocol& p, const GossipOptions& opts) {
  return run_gossip_loop(
      p.n, p.length(), opts,
      [&](KnowledgeMatrix& know, int r) {
        apply_round(know, p.rounds[static_cast<std::size_t>(r)], p.mode,
                    opts.parallel);
      },
      [&](int r) -> const std::vector<protocol::Arc>& {
        return p.rounds[static_cast<std::size_t>(r)].arcs;
      });
}

GossipResult run_gossip(const protocol::CompiledSchedule& cs,
                        const GossipOptions& opts) {
  cs.require_finite("run_gossip");  // periodic schedules go through gossip_time
  return run_gossip_loop(
      cs.n(), cs.round_count(), opts,
      [&](KnowledgeMatrix& know, int r) {
        apply_round(know, cs, r, opts.parallel);
      },
      [&](int r) { return cs.round_arcs(r); });
}

int gossip_time(const protocol::SystolicSchedule& sched, int max_rounds,
                const GossipOptions& opts) {
  KnowledgeMatrix know(sched.n);
  if (know.all_full()) return 0;  // n == 1
  for (int i = 1; i <= max_rounds; ++i) {
    apply_round(know, sched.round_at(i), sched.mode, opts.parallel);
    if (know.all_full()) return i;
  }
  return -1;
}

int gossip_time(const protocol::CompiledSchedule& cs, int max_rounds,
                const GossipOptions& opts) {
  KnowledgeMatrix know(cs.n());
  if (know.all_full()) return 0;  // n == 1
  const int rounds = cs.round_count();
  if (!cs.periodic() && max_rounds > rounds) max_rounds = rounds;
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    apply_round(know, cs, r, opts.parallel);
    if (know.all_full()) return i;
    if (++r == rounds) r = 0;
  }
  return -1;
}

}  // namespace sysgo::simulator
