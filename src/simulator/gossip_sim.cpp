#include "simulator/gossip_sim.hpp"

#include "util/parallel.hpp"

namespace sysgo::simulator {

void apply_round(KnowledgeMatrix& know, const protocol::Round& round,
                 protocol::Mode mode, bool parallel) {
  if (mode == protocol::Mode::kFullDuplex) {
    // Each unordered pair appears as two opposite arcs; merge once per pair.
    auto merge = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& a = round.arcs[i];
        if (a.tail < a.head) know.merge_both(a.tail, a.head);
      }
    };
    if (parallel)
      util::parallel_for_blocks(0, round.arcs.size(), merge, 512);
    else
      merge(0, round.arcs.size());
  } else {
    // Matching: heads are distinct and no head is also a tail, so merges
    // are independent.
    auto merge = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto& a = round.arcs[i];
        know.merge_into(a.head, a.tail);
      }
    };
    if (parallel)
      util::parallel_for_blocks(0, round.arcs.size(), merge, 512);
    else
      merge(0, round.arcs.size());
  }
}

namespace {

GossipResult finish(const KnowledgeMatrix& know, bool complete, int executed,
                    int completion_round, std::vector<int> vertex_completion) {
  GossipResult res;
  res.complete = complete;
  res.rounds_executed = executed;
  res.completion_round = complete ? completion_round : 0;
  res.vertex_completion = std::move(vertex_completion);
  res.final_counts.reserve(static_cast<std::size_t>(know.size()));
  for (int v = 0; v < know.size(); ++v) res.final_counts.push_back(know.count(v));
  return res;
}

}  // namespace

GossipResult run_gossip(const protocol::Protocol& p, const GossipOptions& opts) {
  KnowledgeMatrix know(p.n);
  std::vector<int> vertex_completion;
  if (opts.track_completion) vertex_completion.assign(static_cast<std::size_t>(p.n), -1);

  int incomplete = 0;
  for (int v = 0; v < p.n; ++v)
    if (!know.row_full(v)) ++incomplete;
  if (opts.track_completion)
    for (int v = 0; v < p.n; ++v)
      if (know.row_full(v)) vertex_completion[static_cast<std::size_t>(v)] = 0;

  int round_no = 0;
  for (const auto& round : p.rounds) {
    ++round_no;
    apply_round(know, round, p.mode, opts.parallel);
    // Only endpoints of this round's arcs can change state.
    for (const auto& a : round.arcs) {
      for (int v : {a.tail, a.head}) {
        if (opts.track_completion &&
            vertex_completion[static_cast<std::size_t>(v)] == -1 &&
            know.row_full(v))
          vertex_completion[static_cast<std::size_t>(v)] = round_no;
      }
    }
    if (know.all_full())
      return finish(know, true, round_no, round_no, std::move(vertex_completion));
  }
  return finish(know, know.all_full(), round_no, round_no,
                std::move(vertex_completion));
}

int gossip_time(const protocol::SystolicSchedule& sched, int max_rounds,
                const GossipOptions& opts) {
  KnowledgeMatrix know(sched.n);
  if (know.all_full()) return 0;  // n == 1
  for (int i = 1; i <= max_rounds; ++i) {
    apply_round(know, sched.round_at(i), sched.mode, opts.parallel);
    if (know.all_full()) return i;
  }
  return -1;
}

}  // namespace sysgo::simulator
