// Round-synchronous gossip simulator.
//
// Executes a protocol or systolic schedule against the whispering model:
// when arc (x, y) is active at round i, y additionally learns everything x
// knew at the beginning of round i.  Within a round the active arcs form a
// matching, so sequential arc processing is order-independent (full-duplex
// pairs are merged symmetrically).
#pragma once

#include <vector>

#include "protocol/compiled.hpp"
#include "protocol/protocol.hpp"
#include "protocol/systolic.hpp"
#include "simulator/knowledge.hpp"

namespace sysgo::simulator {

struct GossipOptions {
  bool parallel = false;       // multithread merges within a round
  bool track_completion = false;  // record per-vertex completion rounds
};

struct GossipResult {
  bool complete = false;  // every vertex learned every item
  int rounds_executed = 0;
  /// First round after which all vertices were complete (only when
  /// complete == true).
  int completion_round = 0;
  /// Per-vertex completion rounds (filled when track_completion).
  std::vector<int> vertex_completion;
  /// Final knowledge counts per vertex.
  std::vector<int> final_counts;
};

/// Apply one round to the knowledge state.
void apply_round(KnowledgeMatrix& know, const protocol::Round& round,
                 protocol::Mode mode, bool parallel = false);

/// Apply stored round r of a compiled schedule: a branch-light walk of the
/// round's flat spans — half-duplex merges along the contiguous arc span,
/// full-duplex along the tail < head pair list (no per-pair direction
/// filtering, no per-round heap hop).
void apply_round(KnowledgeMatrix& know, const protocol::CompiledSchedule& cs,
                 int r, bool parallel = false);

/// Run a finite protocol to its end (or early-exit once complete).
[[nodiscard]] GossipResult run_gossip(const protocol::Protocol& p,
                                      const GossipOptions& opts = {});

/// Compiled execution of a finite protocol's rounds, once through.
/// Result-identical to run_gossip on the source protocol.  Throws
/// std::invalid_argument for a periodic compiled schedule (one period is
/// not a run; use gossip_time).
[[nodiscard]] GossipResult run_gossip(const protocol::CompiledSchedule& cs,
                                      const GossipOptions& opts = {});

/// Run a systolic schedule until gossip completes or max_rounds elapse.
/// Returns the completion round (gossip time), or -1 when incomplete.
[[nodiscard]] int gossip_time(const protocol::SystolicSchedule& sched,
                              int max_rounds, const GossipOptions& opts = {});

/// Compiled execution: periodic schedules wrap their stored rounds, finite
/// protocols stop at round_count().  Result-identical to the legacy path.
[[nodiscard]] int gossip_time(const protocol::CompiledSchedule& cs,
                              int max_rounds, const GossipOptions& opts = {});

}  // namespace sysgo::simulator
