#include "simulator/kernels.hpp"

#include <bit>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#define SYSGO_KERNELS_X86 1
#include <immintrin.h>
#else
#define SYSGO_KERNELS_X86 0
#endif

namespace sysgo::simulator {

namespace {

// ------------------------------------------------------------------ scalar

int merge_delta_scalar(std::uint64_t* dst, const std::uint64_t* src,
                       std::size_t words) {
  int added = 0;
  for (std::size_t w = 0; w < words; ++w) {
    added += std::popcount(src[w] & ~dst[w]);
    dst[w] |= src[w];
  }
  return added;
}

void merge_both_delta_scalar(std::uint64_t* a, std::uint64_t* b,
                             std::size_t words, int deltas[2]) {
  int da = 0;
  int db = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t u = a[w] | b[w];
    da += std::popcount(u & ~a[w]);
    db += std::popcount(u & ~b[w]);
    a[w] = u;
    b[w] = u;
  }
  deltas[0] = da;
  deltas[1] = db;
}

int merge_fresh_scalar(std::uint64_t* dst, const std::uint64_t* src,
                       std::uint64_t* fresh, std::size_t words) {
  int added = 0;
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint64_t f = src[w] & ~dst[w];
    fresh[w] = f;
    added += std::popcount(f);
    dst[w] |= src[w];
  }
  return added;
}

constexpr RowKernels kScalarKernels{KernelKind::kScalar, merge_delta_scalar,
                                    merge_both_delta_scalar,
                                    merge_fresh_scalar};

#if SYSGO_KERNELS_X86

// -------------------------------------------------------------------- AVX2
//
// Popcount of a 256-bit vector via the vpshufb nibble LUT (Mula): per-byte
// counts from two 16-entry table lookups, then vpsadbw folds bytes into four
// 64-bit partial sums that accumulate across iterations.

__attribute__((target("avx2"))) inline __m256i popcount_bytes_avx2(
    __m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) inline int hsum_epi64_avx2(__m256i v) {
  return static_cast<int>(_mm256_extract_epi64(v, 0) +
                          _mm256_extract_epi64(v, 1) +
                          _mm256_extract_epi64(v, 2) +
                          _mm256_extract_epi64(v, 3));
}

__attribute__((target("avx2"))) int merge_delta_avx2(std::uint64_t* dst,
                                                     const std::uint64_t* src,
                                                     std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i fresh = _mm256_andnot_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, s));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes_avx2(fresh),
                             _mm256_setzero_si256()));
  }
  int added = hsum_epi64_avx2(acc);
  for (; w < words; ++w) {
    added += std::popcount(src[w] & ~dst[w]);
    dst[w] |= src[w];
  }
  return added;
}

__attribute__((target("avx2"))) void merge_both_delta_avx2(
    std::uint64_t* a, std::uint64_t* b, std::size_t words, int deltas[2]) {
  __m256i acc_a = _mm256_setzero_si256();
  __m256i acc_b = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    const __m256i u = _mm256_or_si256(va, vb);
    const __m256i zero = _mm256_setzero_si256();
    acc_a = _mm256_add_epi64(
        acc_a,
        _mm256_sad_epu8(popcount_bytes_avx2(_mm256_andnot_si256(va, vb)),
                        zero));
    acc_b = _mm256_add_epi64(
        acc_b,
        _mm256_sad_epu8(popcount_bytes_avx2(_mm256_andnot_si256(vb, va)),
                        zero));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + w), u);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + w), u);
  }
  int da = hsum_epi64_avx2(acc_a);
  int db = hsum_epi64_avx2(acc_b);
  for (; w < words; ++w) {
    const std::uint64_t u = a[w] | b[w];
    da += std::popcount(u & ~a[w]);
    db += std::popcount(u & ~b[w]);
    a[w] = u;
    b[w] = u;
  }
  deltas[0] = da;
  deltas[1] = db;
}

__attribute__((target("avx2"))) int merge_fresh_avx2(std::uint64_t* dst,
                                                     const std::uint64_t* src,
                                                     std::uint64_t* fresh,
                                                     std::size_t words) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i f = _mm256_andnot_si256(d, s);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(fresh + w), f);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(d, s));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(popcount_bytes_avx2(f), _mm256_setzero_si256()));
  }
  int added = hsum_epi64_avx2(acc);
  for (; w < words; ++w) {
    const std::uint64_t f = src[w] & ~dst[w];
    fresh[w] = f;
    added += std::popcount(f);
    dst[w] |= src[w];
  }
  return added;
}

constexpr RowKernels kAvx2Kernels{KernelKind::kAvx2, merge_delta_avx2,
                                  merge_both_delta_avx2, merge_fresh_avx2};

// ------------------------------------------------------------------ AVX-512
//
// vpopcntq counts whole 64-bit lanes in one instruction; tails use masked
// loads/stores so no scalar peel is needed.
//
// GCC 12's avx512fintrin.h builds _mm512_andnot_si512 and
// _mm512_reduce_add_epi64 on _mm512_undefined_epi32(), which -O2 flags as
// "may be used uninitialized" even though the value is fully overwritten —
// suppress those two diagnostics for this block only.

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#define SYSGO_AVX512_TARGET "avx512f,avx512bw,avx512vl,avx512vpopcntdq"

__attribute__((target(SYSGO_AVX512_TARGET))) int merge_delta_avx512(
    std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i d = _mm512_loadu_si512(dst + w);
    const __m512i s = _mm512_loadu_si512(src + w);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_andnot_si512(d, s)));
    _mm512_storeu_si512(dst + w, _mm512_or_si512(d, s));
  }
  if (w < words) {
    const __mmask8 m =
        static_cast<__mmask8>((1u << (words - w)) - 1u);
    const __m512i d = _mm512_maskz_loadu_epi64(m, dst + w);
    const __m512i s = _mm512_maskz_loadu_epi64(m, src + w);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_andnot_si512(d, s)));
    _mm512_mask_storeu_epi64(dst + w, m, _mm512_or_si512(d, s));
  }
  return static_cast<int>(_mm512_reduce_add_epi64(acc));
}

__attribute__((target(SYSGO_AVX512_TARGET))) void merge_both_delta_avx512(
    std::uint64_t* a, std::uint64_t* b, std::size_t words, int deltas[2]) {
  __m512i acc_a = _mm512_setzero_si512();
  __m512i acc_b = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i va = _mm512_loadu_si512(a + w);
    const __m512i vb = _mm512_loadu_si512(b + w);
    const __m512i u = _mm512_or_si512(va, vb);
    acc_a = _mm512_add_epi64(
        acc_a, _mm512_popcnt_epi64(_mm512_andnot_si512(va, vb)));
    acc_b = _mm512_add_epi64(
        acc_b, _mm512_popcnt_epi64(_mm512_andnot_si512(vb, va)));
    _mm512_storeu_si512(a + w, u);
    _mm512_storeu_si512(b + w, u);
  }
  if (w < words) {
    const __mmask8 m =
        static_cast<__mmask8>((1u << (words - w)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(m, a + w);
    const __m512i vb = _mm512_maskz_loadu_epi64(m, b + w);
    const __m512i u = _mm512_or_si512(va, vb);
    acc_a = _mm512_add_epi64(
        acc_a, _mm512_popcnt_epi64(_mm512_andnot_si512(va, vb)));
    acc_b = _mm512_add_epi64(
        acc_b, _mm512_popcnt_epi64(_mm512_andnot_si512(vb, va)));
    _mm512_mask_storeu_epi64(a + w, m, u);
    _mm512_mask_storeu_epi64(b + w, m, u);
  }
  deltas[0] = static_cast<int>(_mm512_reduce_add_epi64(acc_a));
  deltas[1] = static_cast<int>(_mm512_reduce_add_epi64(acc_b));
}

__attribute__((target(SYSGO_AVX512_TARGET))) int merge_fresh_avx512(
    std::uint64_t* dst, const std::uint64_t* src, std::uint64_t* fresh,
    std::size_t words) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    const __m512i d = _mm512_loadu_si512(dst + w);
    const __m512i s = _mm512_loadu_si512(src + w);
    const __m512i f = _mm512_andnot_si512(d, s);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(f));
    _mm512_storeu_si512(fresh + w, f);
    _mm512_storeu_si512(dst + w, _mm512_or_si512(d, s));
  }
  if (w < words) {
    const __mmask8 m =
        static_cast<__mmask8>((1u << (words - w)) - 1u);
    const __m512i d = _mm512_maskz_loadu_epi64(m, dst + w);
    const __m512i s = _mm512_maskz_loadu_epi64(m, src + w);
    const __m512i f = _mm512_andnot_si512(d, s);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(f));
    _mm512_mask_storeu_epi64(fresh + w, m, f);
    _mm512_mask_storeu_epi64(dst + w, m, _mm512_or_si512(d, s));
  }
  return static_cast<int>(_mm512_reduce_add_epi64(acc));
}

constexpr RowKernels kAvx512Kernels{KernelKind::kAvx512, merge_delta_avx512,
                                    merge_both_delta_avx512,
                                    merge_fresh_avx512};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // SYSGO_KERNELS_X86

// ---------------------------------------------------------------- dispatch

bool cpu_supports(KernelKind k) noexcept {
#if SYSGO_KERNELS_X86
  switch (k) {
    case KernelKind::kScalar:
      return true;
    case KernelKind::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case KernelKind::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
  return false;
#else
  return k == KernelKind::kScalar;
#endif
}

/// Resolve the startup choice: SYSGO_FORCE_KERNEL wins (unknown/unsupported
/// values throw — a forced kernel silently falling back would defeat the
/// CI matrix), else the widest supported ISA.
const RowKernels& resolve_initial() {
  if (const char* force = std::getenv("SYSGO_FORCE_KERNEL");
      force != nullptr && *force != '\0') {
    KernelKind k;
    if (std::strcmp(force, "scalar") == 0) {
      k = KernelKind::kScalar;
    } else if (std::strcmp(force, "avx2") == 0) {
      k = KernelKind::kAvx2;
    } else if (std::strcmp(force, "avx512") == 0) {
      k = KernelKind::kAvx512;
    } else {
      throw std::runtime_error(
          "SYSGO_FORCE_KERNEL: unknown kernel '" + std::string(force) +
          "' (expected scalar|avx2|avx512)");
    }
    return kernel_table(k);
  }
  if (kernel_supported(KernelKind::kAvx512))
    return kernel_table(KernelKind::kAvx512);
  if (kernel_supported(KernelKind::kAvx2))
    return kernel_table(KernelKind::kAvx2);
  return kScalarKernels;
}

const RowKernels* g_active = nullptr;

}  // namespace

bool kernel_compiled(KernelKind k) noexcept {
#if SYSGO_KERNELS_X86
  return k == KernelKind::kScalar || k == KernelKind::kAvx2 ||
         k == KernelKind::kAvx512;
#else
  return k == KernelKind::kScalar;
#endif
}

bool kernel_supported(KernelKind k) noexcept {
  return kernel_compiled(k) && cpu_supports(k);
}

const RowKernels& kernel_table(KernelKind k) {
  if (!kernel_supported(k))
    throw std::runtime_error(std::string("kernel '") + kernel_name(k) +
                             "' is not supported on this host");
  switch (k) {
#if SYSGO_KERNELS_X86
    case KernelKind::kAvx2:
      return kAvx2Kernels;
    case KernelKind::kAvx512:
      return kAvx512Kernels;
#endif
    default:
      return kScalarKernels;
  }
}

const RowKernels& kernels() {
  // Magic-static once: the throw from a bad SYSGO_FORCE_KERNEL propagates
  // to the first caller (and re-arms on the next call, but a bad env var is
  // fatal to any entry point anyway).
  static const RowKernels& initial = resolve_initial();
  if (g_active == nullptr) g_active = &initial;
  return *g_active;
}

KernelKind active_kernel() { return kernels().kind; }

const char* kernel_name(KernelKind k) noexcept {
  switch (k) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kAvx512:
      return "avx512";
  }
  return "?";
}

KernelKind force_kernel(KernelKind k) {
  const KernelKind prev = kernels().kind;  // ensures dispatch ran
  g_active = &kernel_table(k);
  return prev;
}

}  // namespace sysgo::simulator
