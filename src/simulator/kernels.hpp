// Runtime-dispatched SIMD kernels for word-packed knowledge-row unions.
//
// Every quantity the stack produces — gossip/broadcast times, audit bounds,
// synthesis objectives — bottoms out in the same inner loop: OR two 64-bit
// word arrays and count the bits the destination gained.  This layer holds
// that loop in three interchangeable implementations:
//
//   scalar   portable uint64_t loop + std::popcount (always compiled)
//   avx2     256-bit OR, popcount via the vpshufb nibble-LUT + vpsadbw
//   avx512   512-bit OR, popcount via vpopcntq, masked tail loads
//
// Selection happens exactly once, at first use: the env override
// SYSGO_FORCE_KERNEL=scalar|avx2|avx512 wins if set (unsupported forces
// throw, so CI can gate on `sysgo kernels --have`), otherwise the widest
// kernel the CPU reports via CPUID is taken.  All kernels are exact — the
// same words and the same counts for any input — so every consumer is
// byte-identical across kernels; tests/simulator/test_kernels.cpp holds the
// differential suite.
//
// The kernels take arbitrary word counts and unaligned pointers (tail words
// are masked / peeled); alignment and padding are the *caller's* perf
// lever — KnowledgeMatrix/BatchKnowledge pad rows to 64-byte multiples on
// 64-byte boundaries so the hot path never splits a cache line and never
// takes the tail path.
#pragma once

#include <cstdint>
#include <cstddef>

namespace sysgo::simulator {

enum class KernelKind : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };
inline constexpr int kKernelKindCount = 3;

/// The row-union operation set.  All counts are exact bit deltas.
struct RowKernels {
  KernelKind kind = KernelKind::kScalar;
  /// dst |= src over `words`; returns popcount(src & ~dst_old) — the number
  /// of bits dst gained.
  int (*merge_delta)(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t words);
  /// a and b both become a | b; deltas[0]/deltas[1] = bits a/b gained.
  void (*merge_both_delta)(std::uint64_t* a, std::uint64_t* b,
                           std::size_t words, int deltas[2]);
  /// dst |= src and fresh = src & ~dst_old (the per-bit gain mask, written
  /// to `fresh`); returns popcount(fresh).  BatchKnowledge uses the mask to
  /// attribute gains to lanes.
  int (*merge_fresh)(std::uint64_t* dst, const std::uint64_t* src,
                     std::uint64_t* fresh, std::size_t words);
};

/// Kernel `k` was compiled into this binary (x86 builds compile all three;
/// other architectures only the scalar one).
[[nodiscard]] bool kernel_compiled(KernelKind k) noexcept;

/// kernel_compiled(k) and the running CPU supports its ISA.
[[nodiscard]] bool kernel_supported(KernelKind k) noexcept;

/// Operation table of a specific kernel.  Throws std::runtime_error when
/// the kernel is not supported on this host.
[[nodiscard]] const RowKernels& kernel_table(KernelKind k);

/// The active kernel's operation table.  First call resolves the dispatch:
/// SYSGO_FORCE_KERNEL if set (throws std::runtime_error when it names an
/// unknown or unsupported kernel), else the widest supported ISA.
[[nodiscard]] const RowKernels& kernels();

[[nodiscard]] KernelKind active_kernel();
[[nodiscard]] const char* kernel_name(KernelKind k) noexcept;

/// Swap the active kernel, returning the previous one.  Process-global and
/// not synchronized — a test/bench hook, not an API for concurrent phases.
/// Throws std::runtime_error when `k` is unsupported on this host.
KernelKind force_kernel(KernelKind k);

/// RAII form of force_kernel for differential tests and bench arms.
class ScopedKernel {
 public:
  explicit ScopedKernel(KernelKind k) : prev_(force_kernel(k)) {}
  ~ScopedKernel() { force_kernel(prev_); }
  ScopedKernel(const ScopedKernel&) = delete;
  ScopedKernel& operator=(const ScopedKernel&) = delete;

 private:
  KernelKind prev_;
};

}  // namespace sysgo::simulator
