#include "simulator/knowledge.hpp"

#include <bit>

namespace sysgo::simulator {

KnowledgeMatrix::KnowledgeMatrix(int n)
    : n_(n),
      words_((static_cast<std::size_t>(n) + 63) / 64),
      bits_(static_cast<std::size_t>(n) * words_, 0) {
  for (int v = 0; v < n; ++v) learn(v, v);  // each processor starts with its item
}

bool KnowledgeMatrix::knows(int v, int i) const noexcept {
  return (row_ptr(v)[static_cast<std::size_t>(i) / 64] >>
          (static_cast<std::size_t>(i) % 64)) & 1u;
}

void KnowledgeMatrix::learn(int v, int i) noexcept {
  row_ptr(v)[static_cast<std::size_t>(i) / 64] |=
      std::uint64_t{1} << (static_cast<std::size_t>(i) % 64);
}

void KnowledgeMatrix::merge_into(int dst, int src) noexcept {
  std::uint64_t* d = row_ptr(dst);
  const std::uint64_t* s = row_ptr(src);
  for (std::size_t w = 0; w < words_; ++w) d[w] |= s[w];
}

void KnowledgeMatrix::merge_both(int a, int b) noexcept {
  std::uint64_t* ra = row_ptr(a);
  std::uint64_t* rb = row_ptr(b);
  for (std::size_t w = 0; w < words_; ++w) {
    const std::uint64_t u = ra[w] | rb[w];
    ra[w] = u;
    rb[w] = u;
  }
}

int KnowledgeMatrix::count(int v) const noexcept {
  int c = 0;
  const std::uint64_t* r = row_ptr(v);
  for (std::size_t w = 0; w < words_; ++w) c += std::popcount(r[w]);
  return c;
}

bool KnowledgeMatrix::row_full(int v) const noexcept { return count(v) == n_; }

bool KnowledgeMatrix::all_full() const noexcept {
  for (int v = 0; v < n_; ++v)
    if (!row_full(v)) return false;
  return true;
}

}  // namespace sysgo::simulator
