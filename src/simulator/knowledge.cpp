#include "simulator/knowledge.hpp"

#include <algorithm>
#include <atomic>

#include "simulator/kernels.hpp"

namespace sysgo::simulator {

namespace {

/// Words per row rounded up to a whole cache line (8 x 64-bit words), so
/// row starts stay 64-byte aligned and the kernels never take a tail path
/// on this storage.  Padding words hold zeros forever: learn() only sets
/// bits below n, and OR-merges of zeros are zeros.
constexpr std::size_t aligned_stride(std::size_t words) {
  return (words + 7) / 8 * 8;
}

}  // namespace

KnowledgeMatrix::KnowledgeMatrix(int n)
    : n_(n),
      words_((static_cast<std::size_t>(n) + 63) / 64),
      stride_(aligned_stride(words_)),
      bits_(static_cast<std::size_t>(n) * stride_, 0),
      counts_(static_cast<std::size_t>(n), 0) {
  for (int v = 0; v < n; ++v) learn(v, v);  // each processor starts with its item
}

void KnowledgeMatrix::reset() noexcept {
  std::fill(bits_.begin(), bits_.end(), 0);
  std::fill(counts_.begin(), counts_.end(), 0);
  full_rows_ = 0;
  for (int v = 0; v < n_; ++v) learn(v, v);
}

void KnowledgeMatrix::reset_row(int v) noexcept {
  std::uint64_t* const r = row_ptr(v);
  std::fill(r, r + stride_, 0);
  r[static_cast<std::size_t>(v) / 64] =
      std::uint64_t{1} << (static_cast<std::size_t>(v) % 64);
  int& c = counts_[static_cast<std::size_t>(v)];
  if (c == n_ && n_ != 1) --full_rows_;
  c = 1;
  if (n_ == 1) full_rows_ = 1;
}

void KnowledgeMatrix::restore_row(int v, const std::uint64_t* words,
                                  int count) noexcept {
  std::copy(words, words + stride_, row_ptr(v));
  int& c = counts_[static_cast<std::size_t>(v)];
  if (c == n_ && count != n_) --full_rows_;
  if (c != n_ && count == n_) ++full_rows_;
  c = count;
}

void KnowledgeMatrix::bump(int v, int added) noexcept {
  if (added == 0) return;
  int& c = counts_[static_cast<std::size_t>(v)];
  c += added;
  if (c == n_)
    std::atomic_ref<int>(full_rows_).fetch_add(1, std::memory_order_relaxed);
}

bool KnowledgeMatrix::knows(int v, int i) const noexcept {
  return (row_ptr(v)[static_cast<std::size_t>(i) / 64] >>
          (static_cast<std::size_t>(i) % 64)) & 1u;
}

void KnowledgeMatrix::learn(int v, int i) noexcept {
  std::uint64_t& word = row_ptr(v)[static_cast<std::size_t>(i) / 64];
  const std::uint64_t bit = std::uint64_t{1} << (static_cast<std::size_t>(i) % 64);
  if ((word & bit) == 0) {
    word |= bit;
    bump(v, 1);
  }
}

void KnowledgeMatrix::merge_into(int dst, int src) noexcept {
  bump(dst, kernels().merge_delta(row_ptr(dst), row_ptr(src), stride_));
}

void KnowledgeMatrix::merge_both(int a, int b) noexcept {
  int deltas[2];
  kernels().merge_both_delta(row_ptr(a), row_ptr(b), stride_, deltas);
  bump(a, deltas[0]);
  bump(b, deltas[1]);
}

void KnowledgeMatrix::merge_arcs(std::span<const graph::Arc> arcs) noexcept {
  // One kernel fetch and one base/stride resolution for the whole span —
  // the per-arc work is two pointer adds and the kernel call.
  const RowKernels& k = kernels();
  std::uint64_t* const base = bits_.data();
  const std::size_t stride = stride_;
  for (const graph::Arc& a : arcs) {
    // A full head row can gain nothing; its tail row is never written
    // within a matching round, so the count read is stable.
    if (counts_[static_cast<std::size_t>(a.head)] == n_) continue;
    const int added =
        k.merge_delta(base + static_cast<std::size_t>(a.head) * stride,
                      base + static_cast<std::size_t>(a.tail) * stride, stride);
    bump(a.head, added);
  }
}

void KnowledgeMatrix::merge_pairs(std::span<const graph::Arc> pairs) noexcept {
  const RowKernels& k = kernels();
  std::uint64_t* const base = bits_.data();
  const std::size_t stride = stride_;
  for (const graph::Arc& p : pairs) {
    std::uint64_t* const ra = base + static_cast<std::size_t>(p.tail) * stride;
    std::uint64_t* const rb = base + static_cast<std::size_t>(p.head) * stride;
    const bool a_full = counts_[static_cast<std::size_t>(p.tail)] == n_;
    const bool b_full = counts_[static_cast<std::size_t>(p.head)] == n_;
    if (a_full && b_full) continue;
    if (a_full) {
      bump(p.head, k.merge_delta(rb, ra, stride));
    } else if (b_full) {
      bump(p.tail, k.merge_delta(ra, rb, stride));
    } else {
      int deltas[2];
      k.merge_both_delta(ra, rb, stride, deltas);
      bump(p.tail, deltas[0]);
      bump(p.head, deltas[1]);
    }
  }
}

}  // namespace sysgo::simulator
