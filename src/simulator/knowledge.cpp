#include "simulator/knowledge.hpp"

#include <atomic>
#include <bit>

namespace sysgo::simulator {

KnowledgeMatrix::KnowledgeMatrix(int n)
    : n_(n),
      words_((static_cast<std::size_t>(n) + 63) / 64),
      bits_(static_cast<std::size_t>(n) * words_, 0),
      counts_(static_cast<std::size_t>(n), 0) {
  for (int v = 0; v < n; ++v) learn(v, v);  // each processor starts with its item
}

void KnowledgeMatrix::bump(int v, int added) noexcept {
  if (added == 0) return;
  int& c = counts_[static_cast<std::size_t>(v)];
  c += added;
  if (c == n_)
    std::atomic_ref<int>(full_rows_).fetch_add(1, std::memory_order_relaxed);
}

bool KnowledgeMatrix::knows(int v, int i) const noexcept {
  return (row_ptr(v)[static_cast<std::size_t>(i) / 64] >>
          (static_cast<std::size_t>(i) % 64)) & 1u;
}

void KnowledgeMatrix::learn(int v, int i) noexcept {
  std::uint64_t& word = row_ptr(v)[static_cast<std::size_t>(i) / 64];
  const std::uint64_t bit = std::uint64_t{1} << (static_cast<std::size_t>(i) % 64);
  if ((word & bit) == 0) {
    word |= bit;
    bump(v, 1);
  }
}

void KnowledgeMatrix::merge_into(int dst, int src) noexcept {
  std::uint64_t* d = row_ptr(dst);
  const std::uint64_t* s = row_ptr(src);
  int added = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    const std::uint64_t u = d[w] | s[w];
    added += std::popcount(u) - std::popcount(d[w]);
    d[w] = u;
  }
  bump(dst, added);
}

void KnowledgeMatrix::merge_both(int a, int b) noexcept {
  std::uint64_t* ra = row_ptr(a);
  std::uint64_t* rb = row_ptr(b);
  int added_a = 0;
  int added_b = 0;
  for (std::size_t w = 0; w < words_; ++w) {
    const std::uint64_t u = ra[w] | rb[w];
    const int pu = std::popcount(u);
    added_a += pu - std::popcount(ra[w]);
    added_b += pu - std::popcount(rb[w]);
    ra[w] = u;
    rb[w] = u;
  }
  bump(a, added_a);
  bump(b, added_b);
}

void KnowledgeMatrix::merge_arcs(std::span<const graph::Arc> arcs) noexcept {
  for (const graph::Arc& a : arcs) {
    // A full head row can gain nothing; its tail row is never written
    // within a matching round, so the count read is stable.
    if (counts_[static_cast<std::size_t>(a.head)] == n_) continue;
    merge_into(a.head, a.tail);
  }
}

void KnowledgeMatrix::merge_pairs(std::span<const graph::Arc> pairs) noexcept {
  for (const graph::Arc& p : pairs) {
    const bool a_full = counts_[static_cast<std::size_t>(p.tail)] == n_;
    const bool b_full = counts_[static_cast<std::size_t>(p.head)] == n_;
    if (a_full && b_full) continue;
    if (a_full) {
      merge_into(p.head, p.tail);
    } else if (b_full) {
      merge_into(p.tail, p.head);
    } else {
      merge_both(p.tail, p.head);
    }
  }
}

}  // namespace sysgo::simulator
