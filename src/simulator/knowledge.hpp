// Knowledge state of a gossip run: one bitset row per processor recording
// which of the n items it currently holds.  Rows are 64-bit word packed and
// stored at a 64-byte-aligned stride (words rounded up to a cache line;
// padding words are always zero), so a round's merges are single kernel
// calls — simulator/kernels dispatches them to the widest SIMD ISA the host
// supports, and vector loads never split a cache line.
//
// Per-row item counts and the number of full rows are maintained
// incrementally by every mutation, so count / row_full / all_full are O(1)
// — the simulator's per-round completion check no longer rescans the
// matrix.  Rows are only ever mutated by one thread per round (matchings
// touch distinct heads; full-duplex pairs are disjoint), and the shared
// full-row counter is updated with atomic increments, so parallel merges
// stay race free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "util/aligned.hpp"

namespace sysgo::simulator {

class KnowledgeMatrix {
 public:
  explicit KnowledgeMatrix(int n);

  [[nodiscard]] int size() const noexcept { return n_; }

  /// Logical words per row (ceil(n / 64)); the aligned stride may be wider.
  [[nodiscard]] std::size_t words() const noexcept { return words_; }

  /// Re-initialize to the identity start state (each processor holds its
  /// own item) without reallocating — the arena/evaluator reuse hook.
  void reset() noexcept;

  /// Reset one row to its identity start state (v knows only item v).  The
  /// checkpoint layer's restore path for rows never snapshotted.
  void reset_row(int v) noexcept;

  /// Overwrite row v from a stride()-word snapshot buffer with its recorded
  /// item count; full-row bookkeeping is fixed up to match.  Single-threaded
  /// (restores never race with merges).
  void restore_row(int v, const std::uint64_t* words, int count) noexcept;

  /// Allocated words per row (words() rounded up to a cache line).  Snapshot
  /// buffers sized at this stride restore with one aligned memcpy.
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

  /// Does vertex v know item i?
  [[nodiscard]] bool knows(int v, int i) const noexcept;

  /// Grant item i to vertex v.
  void learn(int v, int i) noexcept;

  /// dst's row |= src's row.
  void merge_into(int dst, int src) noexcept;

  /// Symmetric merge: both rows become their union (full-duplex exchange).
  void merge_both(int a, int b) noexcept;

  /// Batch form of merge_into over a compiled round's flat arc span
  /// (tail -> head per arc): one call per round, already-full destination
  /// rows skipped without touching their words.  Within one matching the
  /// merges are independent, so disjoint sub-spans may run concurrently.
  void merge_arcs(std::span<const graph::Arc> arcs) noexcept;

  /// Batch form of merge_both over a round's tail < head pair list;
  /// pairs whose rows are both full are skipped.
  void merge_pairs(std::span<const graph::Arc> pairs) noexcept;

  /// Number of items vertex v knows.  O(1).
  [[nodiscard]] int count(int v) const noexcept {
    return counts_[static_cast<std::size_t>(v)];
  }

  /// Vertex v knows all n items.  O(1).
  [[nodiscard]] bool row_full(int v) const noexcept { return count(v) == n_; }

  /// All vertices know all items.  O(1).
  [[nodiscard]] bool all_full() const noexcept { return full_rows_ == n_; }

  /// Row v's logical words.  The data pointer is 64-byte aligned for every
  /// row (regression-tested for n in 1..200).
  [[nodiscard]] std::span<const std::uint64_t> row(int v) const noexcept {
    return {bits_.data() + static_cast<std::size_t>(v) * stride_, words_};
  }

 private:
  [[nodiscard]] std::uint64_t* row_ptr(int v) noexcept {
    return bits_.data() + static_cast<std::size_t>(v) * stride_;
  }
  [[nodiscard]] const std::uint64_t* row_ptr(int v) const noexcept {
    return bits_.data() + static_cast<std::size_t>(v) * stride_;
  }

  /// Record `added` new items on row v (atomic full-row bookkeeping).
  void bump(int v, int added) noexcept;

  int n_ = 0;
  std::size_t words_ = 0;   // logical words per row: ceil(n / 64)
  std::size_t stride_ = 0;  // allocated words per row: words_ rounded to 8
  util::CacheAlignedVector<std::uint64_t> bits_;
  std::vector<int> counts_;  // items known per row
  int full_rows_ = 0;        // rows with counts_[v] == n_
};

}  // namespace sysgo::simulator
