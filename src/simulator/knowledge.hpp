// Knowledge state of a gossip run: one bitset row per processor recording
// which of the n items it currently holds.  Rows are 64-bit word packed so
// a round's merges are word-parallel OR loops.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sysgo::simulator {

class KnowledgeMatrix {
 public:
  explicit KnowledgeMatrix(int n);

  [[nodiscard]] int size() const noexcept { return n_; }

  /// Does vertex v know item i?
  [[nodiscard]] bool knows(int v, int i) const noexcept;

  /// Grant item i to vertex v.
  void learn(int v, int i) noexcept;

  /// dst's row |= src's row.
  void merge_into(int dst, int src) noexcept;

  /// Symmetric merge: both rows become their union (full-duplex exchange).
  void merge_both(int a, int b) noexcept;

  /// Number of items vertex v knows.
  [[nodiscard]] int count(int v) const noexcept;

  /// Vertex v knows all n items.
  [[nodiscard]] bool row_full(int v) const noexcept;

  /// All vertices know all items.
  [[nodiscard]] bool all_full() const noexcept;

  [[nodiscard]] std::span<const std::uint64_t> row(int v) const noexcept {
    return {bits_.data() + static_cast<std::size_t>(v) * words_, words_};
  }

 private:
  [[nodiscard]] std::uint64_t* row_ptr(int v) noexcept {
    return bits_.data() + static_cast<std::size_t>(v) * words_;
  }
  [[nodiscard]] const std::uint64_t* row_ptr(int v) const noexcept {
    return bits_.data() + static_cast<std::size_t>(v) * words_;
  }

  int n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace sysgo::simulator
