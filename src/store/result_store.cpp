#include "store/result_store.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/sweep_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fs.hpp"
#include "util/table.hpp"

namespace sysgo::store {

namespace {

constexpr std::string_view kHeader = "# sysgo-store v1";

/// Store observability (catalog in README "Observability"): API-level
/// lookup/insert latency and outcomes, plus bytes appended to the log.
struct StoreMetrics {
  obs::Histogram& lookup_micros = obs::histogram("store.lookup.micros");
  obs::Histogram& insert_micros = obs::histogram("store.insert.micros");
  obs::Counter& lookup_hits = obs::counter("store.lookup.hits");
  obs::Counter& lookup_misses = obs::counter("store.lookup.misses");
  obs::Counter& inserted = obs::counter("store.insert.inserted");
  obs::Counter& duplicates = obs::counter("store.insert.duplicates");
  obs::Counter& conflicts = obs::counter("store.insert.conflicts");
  obs::Counter& log_bytes = obs::counter("store.log_bytes_written");
};

StoreMetrics& store_metrics() {
  static StoreMetrics m;
  return m;
}

[[maybe_unused]] const bool kStoreMetricsRegistered = (store_metrics(), true);

/// Trace instants marking store outcomes on the calling lane's timeline
/// (cache hits explain "why was this task instantaneous" in a sweep trace).
struct StoreTraceNames {
  obs::trace::NameId hit = obs::trace::intern("store.hit");
  obs::trace::NameId miss = obs::trace::intern("store.miss");
  obs::trace::NameId insert = obs::trace::intern("store.insert");
};

const StoreTraceNames& store_trace_names() {
  static const StoreTraceNames n;
  return n;
}

std::string digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

bool family_is_seeded(topology::Family f) {
  return f == topology::Family::kRandomRegular ||
         f == topology::Family::kRandomGnp;
}

/// The limit fields that can change this task's result.  Thread counts and
/// the within-round parallelism toggle are excluded on purpose: results are
/// identical for any value (asserted by the engine's determinism tests).
std::string limits_fingerprint(engine::Task task,
                               const engine::ExecutionLimits& limits) {
  std::ostringstream out;
  switch (task) {
    case engine::Task::kBound:
    case engine::Task::kDiameterBound:
    case engine::Task::kAudit:
    case engine::Task::kSeparatorCheck:
      break;  // closed-form / derived from the schedule alone
    case engine::Task::kSimulate:
      out << "max_rounds=" << limits.simulate_max_rounds;
      break;
    case engine::Task::kSolveGossip:
    case engine::Task::kSolveBroadcast:
      out << "max_rounds=" << limits.solve_max_rounds
          << " max_states=" << limits.solve_max_states;
      break;
    case engine::Task::kSynthesize:
      // synth_eval is deliberately NOT part of the fingerprint: full and
      // incremental evaluation produce byte-identical results (CI diffs the
      // two), so folding it in would only split the cache.
      out << "restarts=" << limits.synth_restarts
          << " iterations=" << limits.synth_iterations
          << " max_rounds=" << limits.simulate_max_rounds
          << " time_budget_ms=" << util::format_full(limits.synth_time_budget_ms);
      break;
  }
  return out.str();
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

StoreKey make_store_key(const engine::SweepJob& job,
                        const engine::ExecutionLimits& limits) {
  std::ostringstream out;
  out << "salt=" << kCodeVersionSalt
      << " family=" << engine::family_token(job.key.family)
      << " d=" << job.key.d << " D=" << job.key.D
      << " mode=" << engine::mode_name(job.key.mode)
      << " task=" << engine::task_name(job.task) << " s=" << job.s;
  const std::string fp = limits_fingerprint(job.task, limits);
  if (!fp.empty()) out << " limits=[" << fp << ']';
  // The seed only identifies a result when randomness feeds it: the member
  // graph of a random family, or the synthesizer's restart streams.
  if (family_is_seeded(job.key.family) || job.task == engine::Task::kSynthesize)
    out << " seed=" << limits.seed;
  StoreKey key{out.str(), 0};
  key.digest = fnv1a64(key.text);
  return key;
}

// --------------------------------------------------------------- ResultStore

ResultStore::ResultStore(const std::string& path) : path_(path) {
  // The lock lives in a sidecar file: compact() replaces the store's inode
  // via rename, which would silently orphan a lock taken on the store
  // file itself.
  lock_ = std::make_unique<util::FileLock>(path_ + ".lock");
  load();
}

ResultStore::~ResultStore() = default;

std::string ResultStore::log_line(const Row& row) const {
  // One record per line: digest, canonical key, sweep CSV row.  The key
  // text is built from fixed tokens and numbers (no tabs/newlines), and
  // CSV quoting keeps the row single-line, so '\t' splits are safe.
  std::string csv = io::sweep_csv_row(row.record);
  if (!csv.empty() && csv.back() == '\n') csv.pop_back();
  return digest_hex(row.key.digest) + '\t' + row.key.text + '\t' + csv + '\n';
}

void ResultStore::load() {
  if (!util::file_exists(path_)) {
    util::write_file_atomic(path_, std::string(kHeader) + '\n');
    return;
  }
  const std::string text = util::read_text_file(path_);
  if (text.empty()) {
    util::write_file_atomic(path_, std::string(kHeader) + '\n');
    return;
  }
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader)
    throw std::runtime_error(path_ + " is not a sysgo result store");
  std::size_t lineno = 1;
  // A line is torn when the file ends without a trailing newline — the
  // signature of a crash mid-append; it is dropped (and any parse failure
  // on it forgiven).  Malformed *interior* lines mean corruption and throw.
  const bool torn_tail = text.back() != '\n';
  while (std::getline(in, line)) {
    ++lineno;
    const bool is_tail = in.peek() == std::istream::traits_type::eof();
    try {
      if (line.empty()) throw std::runtime_error("empty line");
      const std::size_t tab1 = line.find('\t');
      const std::size_t tab2 =
          tab1 == std::string::npos ? std::string::npos
                                    : line.find('\t', tab1 + 1);
      if (tab2 == std::string::npos) throw std::runtime_error("missing field");
      Row row;
      row.key.text = line.substr(tab1 + 1, tab2 - tab1 - 1);
      row.key.digest = fnv1a64(row.key.text);
      std::uint64_t stored = 0;
      const auto [ptr, ec] =
          std::from_chars(line.data(), line.data() + tab1, stored, 16);
      if (ec != std::errc{} || ptr != line.data() + tab1 ||
          stored != row.key.digest)
        throw std::runtime_error("digest mismatch");
      row.record = io::parse_sweep_csv_record(line.substr(tab2 + 1));
      if (const Row* existing = find_locked(row.key)) {
        if (!engine::same_result(existing->record, row.record))
          throw std::runtime_error("conflicting records for key: " +
                                   row.key.text);
        continue;  // duplicate from a hand-concatenated log; compact() reaps
      }
      index_[row.key.digest].push_back(rows_.size());
      rows_.push_back(std::move(row));
    } catch (const std::exception& e) {
      if (is_tail && torn_tail) break;  // crash-torn final append
      throw std::runtime_error(path_ + ":" + std::to_string(lineno) +
                               ": malformed store line (" + e.what() + ")");
    }
  }
}

const ResultStore::Row* ResultStore::find_locked(const StoreKey& key) const {
  const auto it = index_.find(key.digest);
  if (it == index_.end()) return nullptr;
  for (const std::size_t i : it->second)
    if (rows_[i].key.text == key.text) return &rows_[i];
  return nullptr;
}

void ResultStore::append_locked(const Row& row) {
  std::ofstream out(path_, std::ios::binary | std::ios::app);
  if (!out) throw std::runtime_error("cannot append to " + path_);
  const std::string line = log_line(row);
  out << line;
  out.flush();
  if (!out) throw std::runtime_error("short append to " + path_);
  store_metrics().log_bytes.add(line.size());
  index_[row.key.digest].push_back(rows_.size());
  rows_.push_back(row);
}

std::optional<engine::SweepRecord> ResultStore::lookup(
    const StoreKey& key) const {
  auto& sm = store_metrics();
  const obs::ScopedTimer span(sm.lookup_micros);
  std::lock_guard<std::mutex> lock(mutex_);
  const Row* row = find_locked(key);
  if (row == nullptr) {
    sm.lookup_misses.add(1);
    obs::trace::instant(store_trace_names().miss);
    return std::nullopt;
  }
  sm.lookup_hits.add(1);
  obs::trace::instant(store_trace_names().hit);
  return row->record;
}

InsertOutcome ResultStore::insert(const StoreKey& key,
                                  const engine::SweepRecord& record) {
  auto& sm = store_metrics();
  const obs::ScopedTimer span(sm.insert_micros);
  std::lock_guard<std::mutex> lock(mutex_);
  if (const Row* existing = find_locked(key)) {
    const bool same = engine::same_result(existing->record, record);
    (same ? sm.duplicates : sm.conflicts).add(1);
    return same ? InsertOutcome::kDuplicate : InsertOutcome::kConflict;
  }
  append_locked(Row{key, record});
  sm.inserted.add(1);
  obs::trace::instant(store_trace_names().insert);
  return InsertOutcome::kInserted;
}

MergeStats ResultStore::merge_from(const ResultStore& other) {
  std::vector<Row> incoming;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    incoming = other.rows_;
  }
  MergeStats stats;
  // Bulk path: classify in memory and append all new rows with one open +
  // flush, not one per record (shard stores hold whole campaigns).
  std::lock_guard<std::mutex> lock(mutex_);
  std::string appended;
  for (const Row& row : incoming) {
    if (const Row* existing = find_locked(row.key)) {
      if (engine::same_result(existing->record, row.record))
        ++stats.duplicates;
      else
        stats.conflicts.push_back(row.key.text);
      continue;
    }
    appended += log_line(row);
    index_[row.key.digest].push_back(rows_.size());
    rows_.push_back(row);
    ++stats.inserted;
  }
  if (!appended.empty()) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    if (!out) throw std::runtime_error("cannot append to " + path_);
    out << appended;
    out.flush();
    if (!out) throw std::runtime_error("short append to " + path_);
  }
  return stats;
}

void ResultStore::compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::sort(rows_.begin(), rows_.end(), [](const Row& a, const Row& b) {
    return a.key.text < b.key.text;
  });
  std::ostringstream out;
  out << kHeader << '\n';
  for (const Row& row : rows_) out << log_line(row);
  util::write_file_atomic(path_, out.str());
  index_.clear();
  for (std::size_t i = 0; i < rows_.size(); ++i)
    index_[rows_[i].key.digest].push_back(i);
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

std::vector<engine::SweepRecord> ResultStore::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<engine::SweepRecord> out;
  out.reserve(rows_.size());
  for (const Row& row : rows_) out.push_back(row.record);
  return out;
}

}  // namespace sysgo::store
