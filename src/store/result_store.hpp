// On-disk, content-addressed store of sweep results.
//
// One record per fully-resolved scenario key — (family, d, D, mode, task,
// requested period, the task-relevant execution limits, the seed where it
// matters, and a code-version salt) — addressed by the FNV-1a digest of the
// key's canonical string.  The file is a human-greppable append-only log
// (one tab-separated line per record: digest, canonical key, the sweep CSV
// row), guarded by an advisory exclusive lock; inserts append + flush a
// fully-formed line, and compact()/merge tooling rewrite via atomic rename,
// so a crash at any point leaves a loadable store (a torn final line is
// dropped on load).
//
// The SweepRunner consults the store before dispatching a job (resume mode)
// and writes back on completion, turning repeated and distributed campaigns
// into cache hits: a warm re-run executes zero tasks yet emits byte-
// identical output (stored wall-clock included), and shard stores produced
// by disjoint `--shard i/m` runs union into the unsharded result via
// merge_from.  See src/store/README.md for the key-hashing and
// version-salt invalidation rules.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "engine/scenario.hpp"

namespace sysgo::util {
class FileLock;
}

namespace sysgo::store {

/// Code-version salt baked into every canonical key.  Bump it whenever a
/// task's semantics or the record layout change: old records then miss
/// (and are reaped by compact()) instead of being served as stale results.
inline constexpr int kCodeVersionSalt = 1;

/// FNV-1a 64-bit hash (the content address of a key's canonical string).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// Fully-resolved identity of one executed job: the canonical key string
/// plus its digest.  Records are looked up by digest and verified against
/// the full string, so digest collisions cannot alias results.
struct StoreKey {
  std::string text;
  std::uint64_t digest = 0;
};

/// Canonical key for `job` under `limits`.  Only the limit fields that can
/// change the job's *result* are folded in (e.g. solver state budgets, but
/// not thread counts), and the seed only when it matters (random-topology
/// families; synthesis restart streams) — so a deterministic record keyed
/// under one seed is reused under every other.
[[nodiscard]] StoreKey make_store_key(const engine::SweepJob& job,
                                      const engine::ExecutionLimits& limits);

enum class InsertOutcome {
  kInserted,   // new key, appended to the log
  kDuplicate,  // key present with the same result (modulo wall-clock)
  kConflict,   // key present with a DIFFERENT result; store left unchanged
};

struct MergeStats {
  std::size_t inserted = 0;
  std::size_t duplicates = 0;
  /// Canonical keys whose incoming result diverges from the stored one.
  std::vector<std::string> conflicts;
};

class ResultStore {
 public:
  /// Open `path`, creating an empty store if absent, and take the
  /// exclusive advisory lock (throws if another process holds it, or if
  /// the file is not a sysgo store / contains conflicting records).
  explicit ResultStore(const std::string& path);
  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// The stored record for `key`, if any.  Thread-safe.
  [[nodiscard]] std::optional<engine::SweepRecord> lookup(
      const StoreKey& key) const;

  /// Record `key` -> `record`.  Appends and flushes one log line on
  /// kInserted; the store is untouched on kDuplicate/kConflict (the first
  /// write wins, keeping warm re-runs byte-stable).  Thread-safe.
  InsertOutcome insert(const StoreKey& key, const engine::SweepRecord& record);

  /// Union `other` into this store (in other's record order).  Conflicting
  /// keys keep this store's record and are reported in the stats.
  MergeStats merge_from(const ResultStore& other);

  /// Rewrite the log atomically: records sorted by canonical key, one line
  /// per key.  Deterministic file bytes for any insertion order.
  void compact();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string& path() const { return path_; }

  /// All records in file (insertion) order; for merge tooling and stats.
  [[nodiscard]] std::vector<engine::SweepRecord> records() const;

 private:
  struct Row {
    StoreKey key;
    engine::SweepRecord record;
  };

  void load();
  [[nodiscard]] const Row* find_locked(const StoreKey& key) const;
  void append_locked(const Row& row);
  [[nodiscard]] std::string log_line(const Row& row) const;

  std::string path_;
  std::unique_ptr<util::FileLock> lock_;
  mutable std::mutex mutex_;
  std::vector<Row> rows_;  // file order
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
};

}  // namespace sysgo::store
