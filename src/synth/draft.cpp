#include "synth/draft.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace sysgo::synth {

using graph::Arc;
using protocol::Mode;

ScheduleDraft::ScheduleDraft(int n, Mode mode, int period)
    : n_(n), mode_(mode) {
  if (n < 1) throw std::invalid_argument("ScheduleDraft: need n >= 1");
  if (period < 1) throw std::invalid_argument("ScheduleDraft: need period >= 1");
  rounds_.resize(static_cast<std::size_t>(period));
  occupancy_.assign(static_cast<std::size_t>(period),
                    std::vector<int>(static_cast<std::size_t>(n), -1));
}

ScheduleDraft ScheduleDraft::from_schedule(const protocol::SystolicSchedule& s) {
  if (s.period.empty())
    throw std::invalid_argument("ScheduleDraft: empty period");
  ScheduleDraft draft(s.n, s.mode, s.period_length());
  for (int r = 0; r < s.period_length(); ++r) {
    for (const Arc& a : s.period[static_cast<std::size_t>(r)].arcs) {
      // Full-duplex rounds carry both directions; keep one representative.
      if (s.mode == Mode::kFullDuplex && a.tail > a.head) continue;
      if (!draft.insert(r, a))
        throw std::invalid_argument(
            "ScheduleDraft: round is not a matching in the schedule's mode");
    }
    if (s.mode == Mode::kFullDuplex) {
      // Every authored arc must be one direction of an inserted link:
      // exactly two arcs per link.  This catches a missing opposite in
      // either orientation ({1,3} alone AND {3,1} alone) and duplicates —
      // a skipped tail > head arc with no representative would otherwise
      // vanish silently.
      if (s.period[static_cast<std::size_t>(r)].arcs.size() !=
          2 * draft.links(r).size())
        throw std::invalid_argument(
            "ScheduleDraft: full-duplex round is not a set of opposite "
            "arc pairs");
    }
  }
  draft.clear_touched();  // importing is construction, not a move
  return draft;
}

protocol::SystolicSchedule ScheduleDraft::to_schedule() const {
  protocol::SystolicSchedule s;
  s.n = n_;
  s.mode = mode_;
  s.period.resize(rounds_.size());
  for (std::size_t r = 0; r < rounds_.size(); ++r) {
    auto& round = s.period[r];
    round.arcs.reserve(rounds_[r].size() * (mode_ == Mode::kFullDuplex ? 2 : 1));
    for (const Arc& link : rounds_[r]) {
      round.arcs.push_back(link);
      if (mode_ == Mode::kFullDuplex) round.arcs.push_back(graph::reversed(link));
    }
    round.canonicalize();
  }
  return s;
}

bool ScheduleDraft::can_insert(int r, Arc link) const {
  if (link.tail < 0 || link.tail >= n_ || link.head < 0 || link.head >= n_ ||
      link.tail == link.head)
    return false;
  if (mode_ == Mode::kFullDuplex && link.tail > link.head) return false;
  return link_of(r, link.tail) == -1 && link_of(r, link.head) == -1;
}

bool ScheduleDraft::insert(int r, Arc link) {
  if (!can_insert(r, link)) return false;
  auto& round = rounds_[static_cast<std::size_t>(r)];
  auto& occ = occupancy_[static_cast<std::size_t>(r)];
  const int idx = static_cast<int>(round.size());
  round.push_back(link);
  occ[static_cast<std::size_t>(link.tail)] = idx;
  occ[static_cast<std::size_t>(link.head)] = idx;
  ++total_links_;
  mark_touched(r);
  return true;
}

Arc ScheduleDraft::remove(int r, std::size_t idx) {
  auto& round = rounds_[static_cast<std::size_t>(r)];
  auto& occ = occupancy_[static_cast<std::size_t>(r)];
  const Arc removed = round[idx];
  occ[static_cast<std::size_t>(removed.tail)] = -1;
  occ[static_cast<std::size_t>(removed.head)] = -1;
  if (idx + 1 != round.size()) {
    round[idx] = round.back();  // swap-with-last keeps removal O(1)
    occ[static_cast<std::size_t>(round[idx].tail)] = static_cast<int>(idx);
    occ[static_cast<std::size_t>(round[idx].head)] = static_cast<int>(idx);
  }
  round.pop_back();
  --total_links_;
  mark_touched(r);
  return removed;
}

void ScheduleDraft::rotate(int k) {
  const int p = period();
  k = ((k % p) + p) % p;
  if (k == 0) return;
  std::rotate(rounds_.begin(), rounds_.begin() + k, rounds_.end());
  std::rotate(occupancy_.begin(), occupancy_.begin() + k, occupancy_.end());
  mark_touched(0);  // every stored round moved
}

void ScheduleDraft::insert_round(int at) {
  // Explicit element type: a bare {} would select the initializer_list
  // overload of vector::insert and insert nothing.
  rounds_.insert(rounds_.begin() + at, std::vector<Arc>{});
  occupancy_.insert(occupancy_.begin() + at,
                    std::vector<int>(static_cast<std::size_t>(n_), -1));
  mark_touched(at);
  period_changed_ = true;
}

std::vector<Arc> ScheduleDraft::remove_round(int r) {
  if (period() <= 1)
    throw std::logic_error("ScheduleDraft::remove_round: period would be empty");
  std::vector<Arc> links = std::move(rounds_[static_cast<std::size_t>(r)]);
  rounds_.erase(rounds_.begin() + r);
  occupancy_.erase(occupancy_.begin() + r);
  total_links_ -= links.size();
  mark_touched(r);
  period_changed_ = true;
  return links;
}

}  // namespace sysgo::synth
