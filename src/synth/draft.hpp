// Mutable schedule drafts: the annealer's working representation.
//
// A ScheduleDraft is a periodic schedule held in link form — one entry per
// active communication link per round (half-duplex: the directed arc;
// full-duplex: the tail < head edge representative) — plus a per-round
// per-vertex occupancy index.  Every mutation preserves the matching
// property by construction (an insert touching an occupied endpoint is
// rejected in O(1)), so any draft compiles cleanly through
// protocol::CompiledSchedule at evaluation time; nothing is re-validated
// per move.
//
// The move set mirrors the neighborhood the synthesizer explores: link
// insert / remove (and their composition, replace), cross-round link
// moves, period rotation, and period grow/shrink.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "protocol/protocol.hpp"
#include "protocol/systolic.hpp"

namespace sysgo::synth {

class ScheduleDraft {
 public:
  /// Empty draft: `period` empty rounds on n vertices.
  ScheduleDraft(int n, protocol::Mode mode, int period);

  /// Import an authored schedule (the warm starts).  Full-duplex rounds are
  /// folded to their tail < head representatives.  Throws
  /// std::invalid_argument when a round is not a matching in the
  /// schedule's mode, an endpoint is out of range, or the period is empty.
  [[nodiscard]] static ScheduleDraft from_schedule(
      const protocol::SystolicSchedule& s);

  /// Export back to the authoring form (full-duplex links expand to both
  /// directions; rounds canonicalized).
  [[nodiscard]] protocol::SystolicSchedule to_schedule() const;

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] protocol::Mode mode() const noexcept { return mode_; }
  [[nodiscard]] int period() const noexcept {
    return static_cast<int>(rounds_.size());
  }
  [[nodiscard]] const std::vector<graph::Arc>& links(int r) const {
    return rounds_[static_cast<std::size_t>(r)];
  }
  /// Active links across the whole period.
  [[nodiscard]] std::size_t total_links() const noexcept { return total_links_; }

  /// Index of v's link in round r, or -1 when v is idle there.  O(1).
  [[nodiscard]] int link_of(int r, int v) const {
    return occupancy_[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
  }

  /// Both endpoints of `link` free in round r (and the link well-formed:
  /// distinct in-range endpoints, tail < head when full-duplex)?  O(1).
  [[nodiscard]] bool can_insert(int r, graph::Arc link) const;

  /// Add `link` to round r; false (and no change) when can_insert fails.
  bool insert(int r, graph::Arc link);

  /// Remove round r's link at `idx` (swap-with-last) and return it.
  graph::Arc remove(int r, std::size_t idx);

  /// Rotate the period left by k (round k becomes round 0).  Gossip under a
  /// periodic schedule starts at stored round 0, so rotation changes the
  /// achieved time without changing the round multiset.
  void rotate(int k);

  /// Insert an empty round before position `at` (0 <= at <= period()).
  void insert_round(int at);

  /// Remove round r entirely, returning its links (caller may re-insert to
  /// undo).  Requires period() > 1 — a schedule needs a nonempty period.
  std::vector<graph::Arc> remove_round(int r);

  // --- move provenance (the delta evaluator's invalidation input) ---
  //
  // Every mutation records the earliest stored round whose content (or
  // position — rotation and period edits touch round 0 onward) it changed
  // since the last clear_touched().  Knowledge evolution through executed
  // rounds 1..touched_round() is therefore unaffected by the accumulated
  // moves, which is exactly the prefix suffix-replay may keep.

  /// Earliest stored round touched since clear_touched(), or -1 when the
  /// draft is untouched.
  [[nodiscard]] int touched_round() const noexcept { return touched_; }

  /// Did any grow/shrink change the period length since clear_touched()?
  /// (Suffix replay cannot cross a period change: the executed-round ->
  /// stored-round wrap moves for every round, so evaluators fall back to a
  /// full run.)
  [[nodiscard]] bool period_changed() const noexcept { return period_changed_; }

  /// Mark the draft clean (called after an evaluator has caught up).
  void clear_touched() noexcept {
    touched_ = -1;
    period_changed_ = false;
  }

 private:
  void mark_touched(int r) noexcept {
    if (touched_ < 0 || r < touched_) touched_ = r;
  }


  int n_ = 0;
  protocol::Mode mode_ = protocol::Mode::kHalfDuplex;
  std::vector<std::vector<graph::Arc>> rounds_;
  // occupancy_[r][v] = index of v's link in rounds_[r], or -1.
  std::vector<std::vector<int>> occupancy_;
  std::size_t total_links_ = 0;
  int touched_ = -1;             // earliest touched round, -1 = clean
  bool period_changed_ = false;  // any grow/shrink since clear_touched()
};

}  // namespace sysgo::synth
