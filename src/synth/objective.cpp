#include "synth/objective.hpp"

#include <stdexcept>
#include <vector>

#include "core/audit.hpp"
#include "simulator/gossip_sim.hpp"
#include "simulator/knowledge.hpp"

namespace sysgo::synth {

namespace {

/// Gossip run with coverage: like simulator::gossip_time, but reports how
/// many items landed when the cap is hit.  `know` arrives in the identity
/// start state (freshly built or arena-reset).
void run_gossip_objective(const protocol::CompiledSchedule& cs,
                          simulator::KnowledgeMatrix& know, int max_rounds,
                          Objective& obj) {
  if (know.all_full()) {  // n == 1
    obj.feasible = true;
    obj.rounds = 0;
    obj.coverage = cs.n();
    return;
  }
  const int rounds = cs.round_count();
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    simulator::apply_round(know, cs, r);
    if (know.all_full()) {
      obj.feasible = true;
      obj.rounds = i;
      obj.coverage = cs.n() * cs.n();
      return;
    }
    if (++r == rounds) r = 0;
  }
  for (int v = 0; v < cs.n(); ++v) obj.coverage += know.count(v);
}

/// Broadcast run with coverage: one reach bitset, whispering semantics —
/// a head learns what its tail knew at the *start* of the round (a
/// matching's merges are independent, so a two-phase sweep suffices).
void run_broadcast_objective(const protocol::CompiledSchedule& cs, int source,
                             int max_rounds, std::vector<char>& known,
                             Objective& obj) {
  const int n = cs.n();
  if (source < 0 || source >= n)
    throw std::invalid_argument("synth::evaluate: broadcast source out of range");
  known.assign(static_cast<std::size_t>(n), 0);
  known[static_cast<std::size_t>(source)] = 1;
  int reached = 1;
  if (reached == n) {
    obj.feasible = true;
    obj.rounds = 0;
    obj.coverage = reached;
    return;
  }
  const int rounds = cs.round_count();
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    for (const graph::Arc& a : cs.round_arcs(r)) {
      // A matching never revisits a head within the round, so marking heads
      // immediately cannot leak same-round relays; full-duplex pair lists
      // expand to both directed arcs in round_arcs, covering exchanges.
      if (known[static_cast<std::size_t>(a.tail)] &&
          !known[static_cast<std::size_t>(a.head)]) {
        known[static_cast<std::size_t>(a.head)] = 1;
        ++reached;
      }
    }
    if (reached == n) {
      obj.feasible = true;
      obj.rounds = i;
      obj.coverage = reached;
      return;
    }
    if (++r == rounds) r = 0;
  }
  obj.coverage = reached;
}

/// The shared body of evaluate / evaluate_batch: period/links bookkeeping,
/// the goal run through the given scratch, and the optional audit term.
Objective evaluate_with_scratch(const protocol::CompiledSchedule& cs,
                                const ObjectiveOptions& opts,
                                simulator::GossipArena& arena,
                                std::vector<char>& reach) {
  cs.require_periodic("synth::evaluate");
  Objective obj;
  obj.period = cs.period_length();
  obj.links = static_cast<int>(cs.mode() == protocol::Mode::kFullDuplex
                                   ? cs.arc_total() / 2
                                   : cs.arc_total());
  if (opts.goal == Goal::kGossip)
    run_gossip_objective(cs, arena.acquire(cs.n()), opts.max_rounds, obj);
  else
    run_broadcast_objective(cs, opts.source, opts.max_rounds, reach, obj);
  if (opts.audit_gap && opts.goal == Goal::kGossip && obj.feasible) {
    const auto audit = core::audit_schedule(cs);
    obj.audit_gap = static_cast<double>(obj.rounds - audit.round_lower_bound);
    if (obj.audit_gap < 0.0) obj.audit_gap = 0.0;  // audit is a lower bound
  }
  return obj;
}

}  // namespace

double Objective::score() const noexcept {
  if (!feasible)
    return 1e12 - static_cast<double>(coverage) * 1e3 +
           static_cast<double>(period);
  return static_cast<double>(rounds) * 1e6 + audit_gap * 1e4 +
         static_cast<double>(period) * 1e3 + static_cast<double>(links);
}

bool better(const Objective& a, const Objective& b) noexcept {
  // Authoritative lexicographic order — exact at any magnitude, unlike the
  // packed score() (whose decimal weights can invert adjacent criteria for
  // period >= 10 or links >= 1000).
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) {
    if (a.coverage != b.coverage) return a.coverage > b.coverage;
    return a.period < b.period;
  }
  if (a.rounds != b.rounds) return a.rounds < b.rounds;
  if (a.audit_gap != b.audit_gap) return a.audit_gap < b.audit_gap;
  if (a.period != b.period) return a.period < b.period;
  return a.links < b.links;
}

Objective evaluate(const protocol::CompiledSchedule& cs,
                   const ObjectiveOptions& opts) {
  simulator::GossipArena arena;
  std::vector<char> reach;
  return evaluate_with_scratch(cs, opts, arena, reach);
}

std::vector<Objective> evaluate_batch(
    std::span<const protocol::CompiledSchedule* const> batch,
    const ObjectiveOptions& opts) {
  simulator::GossipArena arena;
  std::vector<char> reach;
  std::vector<Objective> out;
  out.reserve(batch.size());
  for (const protocol::CompiledSchedule* cs : batch)
    out.push_back(evaluate_with_scratch(*cs, opts, arena, reach));
  return out;
}

// ------------------------------------------------------------ DraftEvaluator

Objective DraftEvaluator::evaluate(const ScheduleDraft& draft,
                                   const ObjectiveOptions& opts) {
  const int n = draft.n();
  const int period = draft.period();
  const bool full = draft.mode() == protocol::Mode::kFullDuplex;
  Objective obj;
  obj.period = period;
  obj.links = static_cast<int>(draft.total_links());

  if (opts.goal == Goal::kGossip) {
    simulator::KnowledgeMatrix& know = arena_.acquire(n);
    if (know.all_full()) {  // n == 1
      obj.feasible = true;
      obj.rounds = 0;
      obj.coverage = n;
    } else {
      int r = 0;
      for (int i = 1; i <= opts.max_rounds; ++i) {
        // Draft links are the compiled work list: half-duplex rounds are
        // their directed arcs, full-duplex rounds their tail < head pair
        // representatives.  Merge order within a matching is irrelevant,
        // so skipping canonicalization changes nothing.
        const std::vector<graph::Arc>& links = draft.links(r);
        if (full)
          know.merge_pairs(links);
        else
          know.merge_arcs(links);
        if (know.all_full()) {
          obj.feasible = true;
          obj.rounds = i;
          obj.coverage = n * n;
          break;
        }
        if (++r == period) r = 0;
      }
      if (!obj.feasible)
        for (int v = 0; v < n; ++v) obj.coverage += know.count(v);
    }
  } else {
    if (opts.source < 0 || opts.source >= n)
      throw std::invalid_argument(
          "synth::evaluate: broadcast source out of range");
    reach_.assign(static_cast<std::size_t>(n), 0);
    reach_[static_cast<std::size_t>(opts.source)] = 1;
    int reached = 1;
    if (reached == n) {
      obj.feasible = true;
      obj.rounds = 0;
      obj.coverage = reached;
    } else {
      int r = 0;
      for (int i = 1; i <= opts.max_rounds; ++i) {
        for (const graph::Arc& a : draft.links(r)) {
          // Matching property: a vertex sits in at most one link per round,
          // so an exchange's two directions only talk to each other —
          // immediate marking equals the snapshot-semantics serial sweep.
          if (reach_[static_cast<std::size_t>(a.tail)] &&
              !reach_[static_cast<std::size_t>(a.head)]) {
            reach_[static_cast<std::size_t>(a.head)] = 1;
            ++reached;
          } else if (full && reach_[static_cast<std::size_t>(a.head)] &&
                     !reach_[static_cast<std::size_t>(a.tail)]) {
            reach_[static_cast<std::size_t>(a.tail)] = 1;
            ++reached;
          }
        }
        if (reached == n) {
          obj.feasible = true;
          obj.rounds = i;
          break;
        }
        if (++r == period) r = 0;
      }
      obj.coverage = reached;
    }
  }

  if (opts.audit_gap && opts.goal == Goal::kGossip && obj.feasible) {
    // The auditor consumes the flat form; one compile per *accepted-move
    // candidate* (the draft is structurally valid by construction, so no
    // membership re-check is needed).
    const auto cs = protocol::CompiledSchedule::compile(draft.to_schedule());
    const auto audit = core::audit_schedule(cs);
    obj.audit_gap = static_cast<double>(obj.rounds - audit.round_lower_bound);
    if (obj.audit_gap < 0.0) obj.audit_gap = 0.0;
  }
  return obj;
}

}  // namespace sysgo::synth
