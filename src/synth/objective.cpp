#include "synth/objective.hpp"

#include <stdexcept>
#include <vector>

#include "core/audit.hpp"
#include "simulator/gossip_sim.hpp"
#include "simulator/knowledge.hpp"

namespace sysgo::synth {

namespace {

/// Gossip run with coverage: like simulator::gossip_time, but reports how
/// many items landed when the cap is hit.
void run_gossip_objective(const protocol::CompiledSchedule& cs, int max_rounds,
                          Objective& obj) {
  simulator::KnowledgeMatrix know(cs.n());
  if (know.all_full()) {  // n == 1
    obj.feasible = true;
    obj.rounds = 0;
    obj.coverage = cs.n();
    return;
  }
  const int rounds = cs.round_count();
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    simulator::apply_round(know, cs, r);
    if (know.all_full()) {
      obj.feasible = true;
      obj.rounds = i;
      obj.coverage = cs.n() * cs.n();
      return;
    }
    if (++r == rounds) r = 0;
  }
  for (int v = 0; v < cs.n(); ++v) obj.coverage += know.count(v);
}

/// Broadcast run with coverage: one reach bitset, whispering semantics —
/// a head learns what its tail knew at the *start* of the round (a
/// matching's merges are independent, so a two-phase sweep suffices).
void run_broadcast_objective(const protocol::CompiledSchedule& cs, int source,
                             int max_rounds, Objective& obj) {
  const int n = cs.n();
  if (source < 0 || source >= n)
    throw std::invalid_argument("synth::evaluate: broadcast source out of range");
  std::vector<char> known(static_cast<std::size_t>(n), 0);
  known[static_cast<std::size_t>(source)] = 1;
  int reached = 1;
  if (reached == n) {
    obj.feasible = true;
    obj.rounds = 0;
    obj.coverage = reached;
    return;
  }
  const int rounds = cs.round_count();
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    for (const graph::Arc& a : cs.round_arcs(r)) {
      // A matching never revisits a head within the round, so marking heads
      // immediately cannot leak same-round relays; full-duplex pair lists
      // expand to both directed arcs in round_arcs, covering exchanges.
      if (known[static_cast<std::size_t>(a.tail)] &&
          !known[static_cast<std::size_t>(a.head)]) {
        known[static_cast<std::size_t>(a.head)] = 1;
        ++reached;
      }
    }
    if (reached == n) {
      obj.feasible = true;
      obj.rounds = i;
      obj.coverage = reached;
      return;
    }
    if (++r == rounds) r = 0;
  }
  obj.coverage = reached;
}

}  // namespace

double Objective::score() const noexcept {
  if (!feasible)
    return 1e12 - static_cast<double>(coverage) * 1e3 +
           static_cast<double>(period);
  return static_cast<double>(rounds) * 1e6 + audit_gap * 1e4 +
         static_cast<double>(period) * 1e3 + static_cast<double>(links);
}

bool better(const Objective& a, const Objective& b) noexcept {
  // Authoritative lexicographic order — exact at any magnitude, unlike the
  // packed score() (whose decimal weights can invert adjacent criteria for
  // period >= 10 or links >= 1000).
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) {
    if (a.coverage != b.coverage) return a.coverage > b.coverage;
    return a.period < b.period;
  }
  if (a.rounds != b.rounds) return a.rounds < b.rounds;
  if (a.audit_gap != b.audit_gap) return a.audit_gap < b.audit_gap;
  if (a.period != b.period) return a.period < b.period;
  return a.links < b.links;
}

Objective evaluate(const protocol::CompiledSchedule& cs,
                   const ObjectiveOptions& opts) {
  cs.require_periodic("synth::evaluate");
  Objective obj;
  obj.period = cs.period_length();
  obj.links = static_cast<int>(cs.mode() == protocol::Mode::kFullDuplex
                                   ? cs.arc_total() / 2
                                   : cs.arc_total());
  if (opts.goal == Goal::kGossip)
    run_gossip_objective(cs, opts.max_rounds, obj);
  else
    run_broadcast_objective(cs, opts.source, opts.max_rounds, obj);
  if (opts.audit_gap && opts.goal == Goal::kGossip && obj.feasible) {
    const auto audit = core::audit_schedule(cs);
    obj.audit_gap = static_cast<double>(obj.rounds - audit.round_lower_bound);
    if (obj.audit_gap < 0.0) obj.audit_gap = 0.0;  // audit is a lower bound
  }
  return obj;
}

}  // namespace sysgo::synth
