#include "synth/objective.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/audit.hpp"
#include "simulator/gossip_sim.hpp"
#include "simulator/knowledge.hpp"

namespace sysgo::synth {

namespace {

/// Gossip run with coverage: like simulator::gossip_time, but reports how
/// many items landed when the cap is hit.  `know` arrives in the identity
/// start state (freshly built or arena-reset).
void run_gossip_objective(const protocol::CompiledSchedule& cs,
                          simulator::KnowledgeMatrix& know, int max_rounds,
                          Objective& obj) {
  if (know.all_full()) {  // n == 1
    obj.feasible = true;
    obj.rounds = 0;
    obj.coverage = cs.n();
    return;
  }
  const int rounds = cs.round_count();
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    simulator::apply_round(know, cs, r);
    if (know.all_full()) {
      obj.feasible = true;
      obj.rounds = i;
      obj.coverage = cs.n() * cs.n();
      return;
    }
    if (++r == rounds) r = 0;
  }
  for (int v = 0; v < cs.n(); ++v) obj.coverage += know.count(v);
}

/// Broadcast run with coverage: one reach bitset, whispering semantics —
/// a head learns what its tail knew at the *start* of the round (a
/// matching's merges are independent, so a two-phase sweep suffices).
void run_broadcast_objective(const protocol::CompiledSchedule& cs, int source,
                             int max_rounds, std::vector<char>& known,
                             Objective& obj) {
  const int n = cs.n();
  if (source < 0 || source >= n)
    throw std::invalid_argument("synth::evaluate: broadcast source out of range");
  known.assign(static_cast<std::size_t>(n), 0);
  known[static_cast<std::size_t>(source)] = 1;
  int reached = 1;
  if (reached == n) {
    obj.feasible = true;
    obj.rounds = 0;
    obj.coverage = reached;
    return;
  }
  const int rounds = cs.round_count();
  int r = 0;
  for (int i = 1; i <= max_rounds; ++i) {
    for (const graph::Arc& a : cs.round_arcs(r)) {
      // A matching never revisits a head within the round, so marking heads
      // immediately cannot leak same-round relays; full-duplex pair lists
      // expand to both directed arcs in round_arcs, covering exchanges.
      if (known[static_cast<std::size_t>(a.tail)] &&
          !known[static_cast<std::size_t>(a.head)]) {
        known[static_cast<std::size_t>(a.head)] = 1;
        ++reached;
      }
    }
    if (reached == n) {
      obj.feasible = true;
      obj.rounds = i;
      obj.coverage = reached;
      return;
    }
    if (++r == rounds) r = 0;
  }
  obj.coverage = reached;
}

/// The shared body of evaluate / evaluate_batch: period/links bookkeeping,
/// the goal run through the given scratch, and the optional audit term.
Objective evaluate_with_scratch(const protocol::CompiledSchedule& cs,
                                const ObjectiveOptions& opts,
                                simulator::GossipArena& arena,
                                std::vector<char>& reach) {
  cs.require_periodic("synth::evaluate");
  Objective obj;
  obj.period = cs.period_length();
  obj.links = static_cast<int>(cs.mode() == protocol::Mode::kFullDuplex
                                   ? cs.arc_total() / 2
                                   : cs.arc_total());
  if (opts.goal == Goal::kGossip)
    run_gossip_objective(cs, arena.acquire(cs.n()), opts.max_rounds, obj);
  else
    run_broadcast_objective(cs, opts.source, opts.max_rounds, reach, obj);
  if (opts.audit_gap && opts.goal == Goal::kGossip && obj.feasible) {
    const auto audit = core::audit_schedule(cs);
    obj.audit_gap = static_cast<double>(obj.rounds - audit.round_lower_bound);
    if (obj.audit_gap < 0.0) obj.audit_gap = 0.0;  // audit is a lower bound
  }
  return obj;
}

}  // namespace

double Objective::score() const noexcept {
  if (!feasible)
    return 1e12 - static_cast<double>(coverage) * 1e3 +
           static_cast<double>(period);
  return static_cast<double>(rounds) * 1e6 + audit_gap * 1e4 +
         static_cast<double>(period) * 1e3 + static_cast<double>(links);
}

bool better(const Objective& a, const Objective& b) noexcept {
  // Authoritative lexicographic order — exact at any magnitude, unlike the
  // packed score() (whose decimal weights can invert adjacent criteria for
  // period >= 10 or links >= 1000).
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) {
    if (a.coverage != b.coverage) return a.coverage > b.coverage;
    return a.period < b.period;
  }
  if (a.rounds != b.rounds) return a.rounds < b.rounds;
  if (a.audit_gap != b.audit_gap) return a.audit_gap < b.audit_gap;
  if (a.period != b.period) return a.period < b.period;
  return a.links < b.links;
}

Objective evaluate(const protocol::CompiledSchedule& cs,
                   const ObjectiveOptions& opts) {
  simulator::GossipArena arena;
  std::vector<char> reach;
  return evaluate_with_scratch(cs, opts, arena, reach);
}

std::vector<Objective> evaluate_batch(
    std::span<const protocol::CompiledSchedule* const> batch,
    const ObjectiveOptions& opts) {
  simulator::GossipArena arena;
  std::vector<char> reach;
  std::vector<Objective> out;
  out.reserve(batch.size());
  for (const protocol::CompiledSchedule* cs : batch)
    out.push_back(evaluate_with_scratch(*cs, opts, arena, reach));
  return out;
}

// ------------------------------------------------------------ DraftEvaluator

DraftEvaluator::DraftEvaluator(EvalMode mode, int checkpoint_stride)
    : mode_(mode), know_(checkpoint_stride), reach_(checkpoint_stride) {}

void DraftEvaluator::ensure_scratch(int n) {
  if (n == scratch_n_) return;
  // Size both goals' scratch together: alternating gossip and broadcast
  // evaluations at one n never reallocate (the knowledge matrix is the
  // larger layout; the reach vector rides along).
  know_.acquire(n);
  reach_.acquire(n, 0);
  scratch_n_ = n;
  valid_upto_ = -1;  // fresh state: no lineage yet
}

void DraftEvaluator::invalidate_from(int round) noexcept {
  if (mode_ != EvalMode::kIncremental) return;
  const int bound = round < 0 ? 0 : round;
  if (valid_upto_ > bound) valid_upto_ = bound;
}

std::size_t DraftEvaluator::checkpoint_bytes() const noexcept {
  return (know_.allocated() ? know_.checkpoint_bytes() : 0) +
         reach_.checkpoint_bytes();
}

const std::uint64_t* DraftEvaluator::scratch_data() const noexcept {
  return know_.allocated() ? know_.matrix().row(0).data() : nullptr;
}

/// Period / links bookkeeping plus the audit-gap term (identical on both
/// evaluation paths — the auditor consumes the compiled flat form, one
/// compile per feasible candidate).
void DraftEvaluator::finish(const ScheduleDraft& draft,
                            const ObjectiveOptions& opts,
                            Objective& obj) const {
  if (opts.audit_gap && opts.goal == Goal::kGossip && obj.feasible) {
    const auto cs = protocol::CompiledSchedule::compile(draft.to_schedule());
    const auto audit = core::audit_schedule(cs);
    obj.audit_gap = static_cast<double>(obj.rounds - audit.round_lower_bound);
    if (obj.audit_gap < 0.0) obj.audit_gap = 0.0;
  }
}

Objective DraftEvaluator::evaluate(const ScheduleDraft& draft,
                                   const ObjectiveOptions& opts) {
  ++stats_.evals;
  return mode_ == EvalMode::kIncremental ? evaluate_incremental(draft, opts)
                                         : evaluate_full(draft, opts);
}

Objective DraftEvaluator::evaluate_full(const ScheduleDraft& draft,
                                        const ObjectiveOptions& opts) {
  const int n = draft.n();
  const int period = draft.period();
  const bool full = draft.mode() == protocol::Mode::kFullDuplex;
  Objective obj;
  obj.period = period;
  obj.links = static_cast<int>(draft.total_links());
  ++stats_.full_replays;

  if (opts.goal == Goal::kGossip) {
    ensure_scratch(n);
    simulator::KnowledgeMatrix& know = know_.acquire(n);
    if (know.all_full()) {  // n == 1
      obj.feasible = true;
      obj.rounds = 0;
      obj.coverage = n;
    } else {
      int r = 0;
      for (int i = 1; i <= opts.max_rounds; ++i) {
        // Draft links are the compiled work list: half-duplex rounds are
        // their directed arcs, full-duplex rounds their tail < head pair
        // representatives.  Merge order within a matching is irrelevant,
        // so skipping canonicalization changes nothing.
        const std::vector<graph::Arc>& links = draft.links(r);
        if (full)
          know.merge_pairs(links);
        else
          know.merge_arcs(links);
        if (know.all_full()) {
          obj.feasible = true;
          obj.rounds = i;
          obj.coverage = n * n;
          break;
        }
        if (++r == period) r = 0;
      }
      if (!obj.feasible)
        for (int v = 0; v < n; ++v) obj.coverage += know.count(v);
    }
  } else {
    if (opts.source < 0 || opts.source >= n)
      throw std::invalid_argument(
          "synth::evaluate: broadcast source out of range");
    ensure_scratch(n);
    reach_.acquire(n, opts.source);
    if (reach_.complete()) {  // n == 1
      obj.feasible = true;
      obj.rounds = 0;
      obj.coverage = reach_.reached();
    } else {
      int r = 0;
      for (int i = 1; i <= opts.max_rounds; ++i) {
        // Matching property: a vertex sits in at most one link per round,
        // so an exchange's two directions only talk to each other —
        // immediate marking equals the snapshot-semantics serial sweep.
        // Full-duplex draft links are tail < head representatives, hence
        // the pair expansion.
        reach_.step(draft.links(r), full);
        if (reach_.complete()) {
          obj.feasible = true;
          obj.rounds = i;
          break;
        }
        if (++r == period) r = 0;
      }
      obj.coverage = reach_.reached();
    }
  }

  const int executed = obj.feasible ? obj.rounds : opts.max_rounds;
  stats_.replayed_rounds += executed;
  stats_.total_rounds += executed;
  stats_.last_replayed_rounds = executed;
  finish(draft, opts, obj);
  return obj;
}

/// Incremental-mode full replay without COW maintenance: simulates on a
/// private scratch so the checkpointed state (still describing the last
/// checkpointed draft) survives untouched.  Only round 0 resumes remain
/// valid afterwards — recorded via valid_upto_ = 0.
Objective DraftEvaluator::evaluate_plain(const ScheduleDraft& draft,
                                         const ObjectiveOptions& opts) {
  const int n = draft.n();
  const int period = draft.period();
  const bool full = draft.mode() == protocol::Mode::kFullDuplex;
  Objective obj;
  obj.period = period;
  obj.links = static_cast<int>(draft.total_links());
  ++stats_.full_replays;

  if (opts.goal == Goal::kGossip) {
    if (!plain_know_ || plain_know_->size() != n)
      plain_know_ = std::make_unique<simulator::KnowledgeMatrix>(n);
    else
      plain_know_->reset();
    simulator::KnowledgeMatrix& know = *plain_know_;
    if (know.all_full()) {  // n == 1
      obj.feasible = true;
      obj.rounds = 0;
      obj.coverage = n;
    } else {
      int r = 0;
      for (int i = 1; i <= opts.max_rounds; ++i) {
        const std::vector<graph::Arc>& links = draft.links(r);
        if (full)
          know.merge_pairs(links);
        else
          know.merge_arcs(links);
        if (know.all_full()) {
          obj.feasible = true;
          obj.rounds = i;
          obj.coverage = n * n;
          break;
        }
        if (++r == period) r = 0;
      }
      if (!obj.feasible)
        for (int v = 0; v < n; ++v) obj.coverage += know.count(v);
    }
  } else {
    plain_reach_.assign(static_cast<std::size_t>(n), 0);
    plain_reach_[static_cast<std::size_t>(opts.source)] = 1;
    int reached = 1;
    if (reached == n) {  // n == 1
      obj.feasible = true;
      obj.rounds = 0;
    } else {
      int r = 0;
      for (int i = 1; i <= opts.max_rounds; ++i) {
        for (const graph::Arc& a : draft.links(r)) {
          // Mirrors ReachCheckpoints::step — matching property makes
          // immediate marking exact; full-duplex pair representatives
          // relay both ways.
          if (plain_reach_[static_cast<std::size_t>(a.tail)] &&
              !plain_reach_[static_cast<std::size_t>(a.head)]) {
            plain_reach_[static_cast<std::size_t>(a.head)] = 1;
            ++reached;
          } else if (full && plain_reach_[static_cast<std::size_t>(a.head)] &&
                     !plain_reach_[static_cast<std::size_t>(a.tail)]) {
            plain_reach_[static_cast<std::size_t>(a.tail)] = 1;
            ++reached;
          }
        }
        if (reached == n) {
          obj.feasible = true;
          obj.rounds = i;
          break;
        }
        if (++r == period) r = 0;
      }
    }
    obj.coverage = reached;
  }

  valid_upto_ = 0;  // this draft was never checkpointed
  const int executed = obj.feasible ? obj.rounds : opts.max_rounds;
  stats_.replayed_rounds += executed;
  stats_.total_rounds += executed;
  stats_.last_replayed_rounds = executed;
  finish(draft, opts, obj);
  return obj;
}

Objective DraftEvaluator::evaluate_incremental(const ScheduleDraft& draft,
                                               const ObjectiveOptions& opts) {
  const int n = draft.n();
  const int period = draft.period();
  const bool full = draft.mode() == protocol::Mode::kFullDuplex;
  if (opts.goal == Goal::kBroadcast && (opts.source < 0 || opts.source >= n))
    throw std::invalid_argument(
        "synth::evaluate: broadcast source out of range");
  Objective obj;
  obj.period = period;
  obj.links = static_cast<int>(draft.total_links());

  ensure_scratch(n);
  // The draft-reported invalidation point: knowledge evolution through
  // executed round t is shared with the previously evaluated draft, so the
  // nearest checkpoint at or below t is a valid resume point.  A clean
  // draft (-1) is the previously evaluated one — everything is shared.  Any
  // shape change breaks the lineage entirely.
  int t = draft.period_changed() ? 0
          : draft.touched_round() < 0
              ? std::numeric_limits<int>::max()
              : draft.touched_round();
  if (period != last_period_ || draft.mode() != last_mode_ ||
      opts.goal != last_goal_ ||
      (opts.goal == Goal::kBroadcast && opts.source != last_source_))
    t = 0;
  if (t > valid_upto_) t = valid_upto_;
  if (t < 0) t = 0;
  const int capped = std::min(t, opts.max_rounds);
  const bool gossip = opts.goal == Goal::kGossip;
  const int resume = gossip ? know_.resume_point(capped)
                            : reach_.resume_point(capped);
  const int live = gossip ? know_.live_round() : reach_.live_round();
  if (resume < live && resume < 2 * know_.stride()) {
    // A near-zero resume point saves fewer rounds than the COW maintenance
    // it would pay for (snapshots, dirty tracking, restores), so run the
    // plain loop instead — except every kReseedEvery-th time, when the
    // replay goes through the checkpoint layer to re-seed the lineage so
    // that deep resume points (and O(1) continue-from-live evals, which
    // are always taken: resume == live) come back once the move stream
    // allows them.  In regimes where replay cannot help (completion round
    // >> period), this bounds checkpoint overhead to a small fraction of
    // evals; in tail-slack regimes the resume point stays deep and this
    // branch is rare.
    if (++plain_streak_ < kReseedEvery) return evaluate_plain(draft, opts);
    plain_streak_ = 0;
    ++stats_.full_replays;
  } else {
    plain_streak_ = 0;
    if (resume == 0) ++stats_.full_replays;
  }

  // A move can only touch a stored round, so every future rewind target is
  // < period: snapshots past the period tail would never be restored from.
  // Capping them there turns long runs (adaptive-cap coverage probes) into
  // pure simulation after the first wrap.
  simulator::ReplayOutcome out;
  if (opts.goal == Goal::kGossip) {
    know_.set_snapshot_horizon(period - 1);
    out = simulator::replay_gossip_rounds(
        know_, period, full, t, opts.max_rounds,
        [&draft](int p) -> std::span<const graph::Arc> {
          return draft.links(p);
        });
    if (out.complete) {
      obj.feasible = true;
      obj.rounds = out.rounds;
      // n == 1 completes at round 0 with coverage n (the full path's
      // convention); every other completion has seen all n^2 deliveries.
      obj.coverage = out.rounds == 0 && n == 1 ? n : n * n;
    } else {
      const simulator::KnowledgeMatrix& know = know_.matrix();
      for (int v = 0; v < n; ++v) obj.coverage += know.count(v);
    }
  } else {
    if (!reach_.allocated() || reach_.size() != n ||
        reach_.source() != opts.source)
      reach_.acquire(n, opts.source);
    reach_.set_snapshot_horizon(period - 1);
    out = simulator::replay_broadcast_rounds(
        reach_, period, full, t, opts.max_rounds,
        [&draft](int p) -> std::span<const graph::Arc> {
          return draft.links(p);
        });
    obj.feasible = out.complete;
    if (out.complete) obj.rounds = out.rounds;
    obj.coverage = reach_.reached();
  }

  // The state now reflects this draft end to end; until invalidate_from()
  // says otherwise, every checkpoint is a valid resume point.
  valid_upto_ = std::numeric_limits<int>::max();
  last_period_ = period;
  last_mode_ = draft.mode();
  last_goal_ = opts.goal;
  last_source_ = opts.source;
  stats_.replayed_rounds += out.rounds - out.start_round;
  stats_.total_rounds += out.rounds;
  stats_.last_replayed_rounds = out.rounds - out.start_round;
  finish(draft, opts, obj);
  return obj;
}

}  // namespace sysgo::synth
