// Objective evaluation for schedule synthesis.
//
// A candidate schedule's quality is its *measured* completion time through
// the compiled simulator — gossip (all-pairs) or broadcast from a source —
// tie-broken by period length, then active-link count (fewer links = the
// same time with less hardware).  Optionally the Theorem 4.1 audited lower
// bound is evaluated too, and the gap (measured − certified) joins the
// order right after the round count, steering the annealer toward
// schedules the paper's machinery proves near-optimal.
//
// Infeasible candidates (incomplete within max_rounds) rank strictly below
// every feasible one, ordered among themselves by knowledge coverage so
// the annealer still has a gradient toward feasibility.
//
// Two evaluation paths produce identical objectives:
//
//   evaluate(cs, opts)       one-shot, from a compiled schedule
//   DraftEvaluator           the annealer's hot path: evaluates a
//                            ScheduleDraft directly — drafts maintain the
//                            matching invariants by construction, so the
//                            per-move CompiledSchedule build (validation,
//                            canonicalization, partner tables, half a dozen
//                            allocations) is skipped, and the scratch
//                            knowledge matrix is reused across moves.
//
// evaluate_batch scores many compiled candidates through one shared
// scratch arena (the restart winners' final full-budget re-scoring).
#pragma once

#include <span>
#include <vector>

#include "protocol/compiled.hpp"
#include "simulator/batch.hpp"
#include "synth/draft.hpp"

namespace sysgo::synth {

enum class Goal {
  kGossip,     // every vertex learns every item
  kBroadcast,  // every vertex learns the source's item
};

struct ObjectiveOptions {
  Goal goal = Goal::kGossip;
  int source = 0;          // broadcast source (ignored by gossip)
  int max_rounds = 4096;   // simulation cap; beyond = infeasible
  /// Add the Theorem 4.1 gap term (gossip goal only — the audit certifies
  /// gossip rounds; the flag is ignored for broadcast).
  bool audit_gap = false;
};

struct Objective {
  bool feasible = false;
  int rounds = -1;     // completion time, -1 when infeasible
  int period = 0;      // schedule period
  int links = 0;       // active links summed over the period
  int coverage = 0;    // items delivered at the end of the run (gradient
                       // signal for infeasible candidates)
  double audit_gap = 0.0;  // rounds − certified lower bound (audit_gap only)

  /// Annealing energy, lower = better: a scalarization the acceptance rule
  /// can take deltas of.  Feasible: rounds·1e6 + gap·1e4 + period·1e3 +
  /// links; infeasible: 1e12 − coverage·1e3 + period.  Approximate at the
  /// decimal boundaries (period >= 10, links >= 1000) — ranking decisions
  /// use better(), which compares the criteria exactly.
  [[nodiscard]] double score() const noexcept;
};

/// Strict "a beats b" under the documented tie order, compared
/// lexicographically: feasible first; then rounds, audit gap, period,
/// links; infeasible candidates by coverage (desc), then period.
[[nodiscard]] bool better(const Objective& a, const Objective& b) noexcept;

/// Evaluate a compiled periodic schedule.  Throws std::invalid_argument for
/// a non-periodic compilation or a broadcast source out of range.
[[nodiscard]] Objective evaluate(const protocol::CompiledSchedule& cs,
                                 const ObjectiveOptions& opts);

/// Evaluate many compiled periodic candidates through one shared scratch
/// arena (one knowledge-matrix allocation for the whole batch).  Entry i
/// equals evaluate(*batch[i], opts).
[[nodiscard]] std::vector<Objective> evaluate_batch(
    std::span<const protocol::CompiledSchedule* const> batch,
    const ObjectiveOptions& opts);

/// Reusable draft evaluator: identical objectives to
/// evaluate(CompiledSchedule::compile(d.to_schedule(), g), opts) with no
/// per-call compile and no per-call allocation.  Drafts reject any move
/// that would break the matching property and only activate pool links, so
/// the compile-time validation is redundant on this path (property-tested
/// in tests/simulator/test_kernels.cpp).  The audit-gap term, when
/// requested and the candidate is feasible, still compiles once — the
/// auditor consumes the flat form — which matches the old cost only where
/// the old path paid it for every move.
class DraftEvaluator {
 public:
  [[nodiscard]] Objective evaluate(const ScheduleDraft& draft,
                                   const ObjectiveOptions& opts);

 private:
  simulator::GossipArena arena_;
  std::vector<char> reach_;  // broadcast scratch
};

}  // namespace sysgo::synth
