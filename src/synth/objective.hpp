// Objective evaluation for schedule synthesis.
//
// A candidate schedule's quality is its *measured* completion time through
// the compiled simulator — gossip (all-pairs) or broadcast from a source —
// tie-broken by period length, then active-link count (fewer links = the
// same time with less hardware).  Optionally the Theorem 4.1 audited lower
// bound is evaluated too, and the gap (measured − certified) joins the
// order right after the round count, steering the annealer toward
// schedules the paper's machinery proves near-optimal.
//
// Infeasible candidates (incomplete within max_rounds) rank strictly below
// every feasible one, ordered among themselves by knowledge coverage so
// the annealer still has a gradient toward feasibility.
#pragma once

#include "protocol/compiled.hpp"

namespace sysgo::synth {

enum class Goal {
  kGossip,     // every vertex learns every item
  kBroadcast,  // every vertex learns the source's item
};

struct ObjectiveOptions {
  Goal goal = Goal::kGossip;
  int source = 0;          // broadcast source (ignored by gossip)
  int max_rounds = 4096;   // simulation cap; beyond = infeasible
  /// Add the Theorem 4.1 gap term (gossip goal only — the audit certifies
  /// gossip rounds; the flag is ignored for broadcast).
  bool audit_gap = false;
};

struct Objective {
  bool feasible = false;
  int rounds = -1;     // completion time, -1 when infeasible
  int period = 0;      // schedule period
  int links = 0;       // active links summed over the period
  int coverage = 0;    // items delivered at the end of the run (gradient
                       // signal for infeasible candidates)
  double audit_gap = 0.0;  // rounds − certified lower bound (audit_gap only)

  /// Annealing energy, lower = better: a scalarization the acceptance rule
  /// can take deltas of.  Feasible: rounds·1e6 + gap·1e4 + period·1e3 +
  /// links; infeasible: 1e12 − coverage·1e3 + period.  Approximate at the
  /// decimal boundaries (period >= 10, links >= 1000) — ranking decisions
  /// use better(), which compares the criteria exactly.
  [[nodiscard]] double score() const noexcept;
};

/// Strict "a beats b" under the documented tie order, compared
/// lexicographically: feasible first; then rounds, audit gap, period,
/// links; infeasible candidates by coverage (desc), then period.
[[nodiscard]] bool better(const Objective& a, const Objective& b) noexcept;

/// Evaluate a compiled periodic schedule.  Throws std::invalid_argument for
/// a non-periodic compilation or a broadcast source out of range.
[[nodiscard]] Objective evaluate(const protocol::CompiledSchedule& cs,
                                 const ObjectiveOptions& opts);

}  // namespace sysgo::synth
