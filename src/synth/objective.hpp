// Objective evaluation for schedule synthesis.
//
// A candidate schedule's quality is its *measured* completion time through
// the compiled simulator — gossip (all-pairs) or broadcast from a source —
// tie-broken by period length, then active-link count (fewer links = the
// same time with less hardware).  Optionally the Theorem 4.1 audited lower
// bound is evaluated too, and the gap (measured − certified) joins the
// order right after the round count, steering the annealer toward
// schedules the paper's machinery proves near-optimal.
//
// Infeasible candidates (incomplete within max_rounds) rank strictly below
// every feasible one, ordered among themselves by knowledge coverage so
// the annealer still has a gradient toward feasibility.
//
// Two evaluation paths produce identical objectives:
//
//   evaluate(cs, opts)       one-shot, from a compiled schedule
//   DraftEvaluator           the annealer's hot path: evaluates a
//                            ScheduleDraft directly — drafts maintain the
//                            matching invariants by construction, so the
//                            per-move CompiledSchedule build (validation,
//                            canonicalization, partner tables, half a dozen
//                            allocations) is skipped, and the scratch
//                            knowledge matrix is reused across moves.
//
// evaluate_batch scores many compiled candidates through one shared
// scratch arena (the restart winners' final full-budget re-scoring).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "protocol/compiled.hpp"
#include "simulator/batch.hpp"
#include "simulator/checkpoints.hpp"
#include "synth/draft.hpp"

namespace sysgo::synth {

enum class Goal {
  kGossip,     // every vertex learns every item
  kBroadcast,  // every vertex learns the source's item
};

struct ObjectiveOptions {
  Goal goal = Goal::kGossip;
  int source = 0;          // broadcast source (ignored by gossip)
  int max_rounds = 4096;   // simulation cap; beyond = infeasible
  /// Add the Theorem 4.1 gap term (gossip goal only — the audit certifies
  /// gossip rounds; the flag is ignored for broadcast).
  bool audit_gap = false;
};

struct Objective {
  bool feasible = false;
  int rounds = -1;     // completion time, -1 when infeasible
  int period = 0;      // schedule period
  int links = 0;       // active links summed over the period
  int coverage = 0;    // items delivered at the end of the run (gradient
                       // signal for infeasible candidates)
  double audit_gap = 0.0;  // rounds − certified lower bound (audit_gap only)

  /// Annealing energy, lower = better: a scalarization the acceptance rule
  /// can take deltas of.  Feasible: rounds·1e6 + gap·1e4 + period·1e3 +
  /// links; infeasible: 1e12 − coverage·1e3 + period.  Approximate at the
  /// decimal boundaries (period >= 10, links >= 1000) — ranking decisions
  /// use better(), which compares the criteria exactly.
  [[nodiscard]] double score() const noexcept;
};

/// Strict "a beats b" under the documented tie order, compared
/// lexicographically: feasible first; then rounds, audit gap, period,
/// links; infeasible candidates by coverage (desc), then period.
[[nodiscard]] bool better(const Objective& a, const Objective& b) noexcept;

/// Evaluate a compiled periodic schedule.  Throws std::invalid_argument for
/// a non-periodic compilation or a broadcast source out of range.
[[nodiscard]] Objective evaluate(const protocol::CompiledSchedule& cs,
                                 const ObjectiveOptions& opts);

/// Evaluate many compiled periodic candidates through one shared scratch
/// arena (one knowledge-matrix allocation for the whole batch).  Entry i
/// equals evaluate(*batch[i], opts).
[[nodiscard]] std::vector<Objective> evaluate_batch(
    std::span<const protocol::CompiledSchedule* const> batch,
    const ObjectiveOptions& opts);

/// Draft evaluation strategy.
enum class EvalMode {
  /// Re-simulate from round 0 on every call (the one-shot semantics).
  kFull,
  /// Checkpoint + suffix replay: keep the knowledge state and its round
  /// snapshots alive across calls and re-simulate only from the earliest
  /// round the draft's moves touched.  Byte-identical objectives to kFull
  /// (CI-enforced); see the contract on evaluate().
  kIncremental,
};

/// Reusable draft evaluator: identical objectives to
/// evaluate(CompiledSchedule::compile(d.to_schedule(), g), opts) with no
/// per-call compile and no per-call allocation.  Drafts reject any move
/// that would break the matching property and only activate pool links, so
/// the compile-time validation is redundant on this path (property-tested
/// in tests/simulator/test_kernels.cpp).  The audit-gap term, when
/// requested and the candidate is feasible, still compiles once — the
/// auditor consumes the flat form — which matches the old cost only where
/// the old path paid it for every move.
class DraftEvaluator {
 public:
  explicit DraftEvaluator(
      EvalMode mode = EvalMode::kFull,
      int checkpoint_stride = simulator::kDefaultCheckpointStride);

  /// Evaluate a draft.  Incremental contract: successive calls must form
  /// one mutation lineage — each draft derives from the previously
  /// evaluated one by the moves summarized in draft.touched_round() /
  /// draft.period_changed() (cleared by the caller once a draft is
  /// adopted), and a revert to the pre-move draft is announced through
  /// invalidate_from().  Any shape change (n, mode, goal, source, period
  /// length) is detected and falls back to a full replay on its own.
  [[nodiscard]] Objective evaluate(const ScheduleDraft& draft,
                                   const ObjectiveOptions& opts);

  /// Incremental reject hook: the caller reverted the draft it just had
  /// evaluated, undoing a move whose earliest touched round was `round` —
  /// state and checkpoints above that round no longer describe the
  /// caller's draft.  Cheap (stores a bound; nothing is dropped until the
  /// next evaluate()).  No-op in full mode.
  void invalidate_from(int round) noexcept;

  struct ReplayStats {
    std::int64_t evals = 0;            // evaluate() calls
    std::int64_t full_replays = 0;     // ran from round 0 (fallback or first)
    std::int64_t replayed_rounds = 0;  // rounds actually simulated
    std::int64_t total_rounds = 0;     // rounds the kFull path would have run
    int last_replayed_rounds = 0;      // rounds simulated by the last call
  };
  [[nodiscard]] const ReplayStats& replay_stats() const noexcept {
    return stats_;
  }

  /// Live snapshot storage held for suffix replay (0 in full mode).
  [[nodiscard]] std::size_t checkpoint_bytes() const noexcept;

  /// Test hook: backing words of the scratch knowledge matrix (nullptr
  /// before first use).  Stable across goal switches at a fixed n — the
  /// scratch is sized once for both goals' layouts.
  [[nodiscard]] const std::uint64_t* scratch_data() const noexcept;

 private:
  /// Plain full replays per checkpointed one when resume points sit near
  /// zero (see evaluate_incremental): bounds COW maintenance to ~1/8 of
  /// evals in regimes where suffix replay cannot help, while lineage
  /// recovers within a few evals once resume points move deeper.
  static constexpr int kReseedEvery = 8;

  void ensure_scratch(int n);
  [[nodiscard]] Objective evaluate_full(const ScheduleDraft& draft,
                                        const ObjectiveOptions& opts);
  [[nodiscard]] Objective evaluate_incremental(const ScheduleDraft& draft,
                                               const ObjectiveOptions& opts);
  [[nodiscard]] Objective evaluate_plain(const ScheduleDraft& draft,
                                         const ObjectiveOptions& opts);
  void finish(const ScheduleDraft& draft, const ObjectiveOptions& opts,
              Objective& obj) const;

  EvalMode mode_;
  simulator::KnowledgeCheckpoints know_;  // gossip scratch (both modes)
  simulator::ReachCheckpoints reach_;     // broadcast scratch (both modes)
  // Plain-loop scratch for incremental-mode full replays that bypass COW
  // maintenance entirely (the checkpointed state stays describing the last
  // checkpointed draft; valid_upto_ = 0 records that only round 0 resumes).
  std::unique_ptr<simulator::KnowledgeMatrix> plain_know_;
  std::vector<char> plain_reach_;
  int plain_streak_ = 0;  // plain evals since the last checkpointed one
  int scratch_n_ = -1;
  // Incremental lineage state: checkpoints at or below valid_upto_ describe
  // the caller's current draft (-1 = nothing valid yet), and the last_*
  // fields detect shape changes that force the full fallback.
  int valid_upto_ = -1;
  int last_period_ = -1;
  int last_source_ = -1;
  protocol::Mode last_mode_ = protocol::Mode::kHalfDuplex;
  Goal last_goal_ = Goal::kGossip;
  ReplayStats stats_;
};

}  // namespace sysgo::synth
