#include "synth/synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/trace.hpp"
#include "obs/wall_timer.hpp"
#include "protocol/builders.hpp"
#include "protocol/compiled.hpp"
#include "search/solver.hpp"
#include "search/state.hpp"
#include "synth/draft.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sysgo::synth {

namespace {

using graph::Arc;
using protocol::Mode;

/// Synthesis observability (catalog in README "Observability").  Move and
/// replay counters are charged once per restart from the anneal totals —
/// the inner annealing loop records only the per-evaluation replay-depth
/// histogram (one relaxed atomic next to a whole simulation).
struct SynthMetrics {
  obs::Counter& restarts_run = obs::counter("synth.restarts_run");
  obs::Counter& moves_proposed = obs::counter("synth.moves_proposed");
  obs::Counter& moves_accepted = obs::counter("synth.moves_accepted");
  obs::Counter& improvements = obs::counter("synth.improvements");
  // Delta evaluation: rounds re-simulated vs the full-path rounds they
  // replace, the replay-depth distribution (rounds per evaluation, not
  // micros), and the high-water snapshot storage backing suffix replay.
  obs::Counter& replayed_rounds = obs::counter("synth.replayed_rounds");
  obs::Counter& replay_total_rounds =
      obs::counter("synth.replay_total_rounds");
  obs::Histogram& replay_depth = obs::histogram("synth.replay_depth");
  obs::Gauge& checkpoint_bytes = obs::gauge("synth.checkpoint_bytes");
  obs::Gauge& last_best_objective = obs::gauge("synth.last_best_objective");
  obs::Histogram& restart_micros = obs::histogram("synth.restart.micros");
  obs::Histogram& synthesize_micros =
      obs::histogram("synth.synthesize.micros");
  // --perf: per-restart IPC / cache behavior of the annealing loop.
  obs::perf::PerfRollup restart_perf{"synth.restart"};
};

SynthMetrics& synth_metrics() {
  static SynthMetrics m;
  return m;
}

[[maybe_unused]] const bool kSynthMetricsRegistered = (synth_metrics(), true);

/// Candidate link pool: the arcs a draft may activate.  Half-duplex drafts
/// draw from g's arcs; full-duplex drafts from the tail < head edges of
/// g's undirected support (matching the edge-coloring builder).
std::vector<Arc> candidate_links(const graph::Digraph& g, Mode mode) {
  std::vector<Arc> pool;
  if (mode == Mode::kFullDuplex) {
    for (const auto& [u, v] : g.undirected_edges()) pool.push_back({u, v});
  } else {
    pool.assign(g.arcs().begin(), g.arcs().end());
  }
  return pool;
}

struct RestartOutcome {
  Objective objective;
  protocol::SystolicSchedule schedule;
  std::int64_t proposed = 0;
  std::int64_t accepted = 0;
  std::int64_t improved = 0;  // accepted moves that beat the restart's best
  std::int64_t replayed_rounds = 0;     // rounds re-simulated (delta eval)
  std::int64_t replay_total_rounds = 0;  // full-path rounds they replace
  std::size_t checkpoint_bytes = 0;      // snapshot storage at restart end
};

/// One annealing run from `initial`.  Self-contained: consumes only its own
/// Rng stream, so outcomes are independent of restart scheduling.
RestartOutcome anneal(const protocol::SystolicSchedule& initial,
                      const std::vector<Arc>& pool, int max_period,
                      const SynthOptions& opts, util::Rng rng) {
  const obs::WallTimer timer;
  ScheduleDraft draft = ScheduleDraft::from_schedule(initial);
  // Inner evaluations run under an adaptive round cap — a candidate that
  // cannot beat (twice) the incumbent is cut off instead of simulating to
  // the user's full budget.  The cap is a pure function of the incumbent,
  // so results stay deterministic; the per-restart winner is re-evaluated
  // at the full budget by the caller.
  const int base_cap = std::min(
      opts.objective.max_rounds, std::max(256, 16 * initial.n));
  // The hot path scores drafts directly: no per-move CompiledSchedule
  // build and no per-move allocation (the evaluator's scratch matrix is
  // reused across the whole restart).  Drafts keep the matching property
  // and activate only pool links, so this yields the same objectives as
  // compiling first — the per-restart winner is still compiled (with the
  // membership check) by the caller before the final verdict.
  //
  // Under EvalMode::kIncremental the evaluator additionally keeps the
  // knowledge state and its round checkpoints alive across moves: each
  // evaluation resumes from the nearest checkpoint at or below the round
  // the move touched (draft.touched_round()), and rejected moves announce
  // the revert through invalidate_from so stale checkpoints are dropped on
  // the next call.  Objectives are byte-identical either way.
  DraftEvaluator evaluator(opts.eval, opts.checkpoint_stride);
  const bool incremental = opts.eval == EvalMode::kIncremental;
  obs::Histogram& replay_depth = synth_metrics().replay_depth;
  const auto eval = [&](const ScheduleDraft& d, int cap) {
    ObjectiveOptions capped = opts.objective;
    capped.max_rounds = cap;
    const Objective o = evaluator.evaluate(d, capped);
    if (incremental)
      replay_depth.record_micros(static_cast<std::uint64_t>(
          evaluator.replay_stats().last_replayed_rounds));
    return o;
  };

  RestartOutcome out;
  Objective current = eval(draft, base_cap);
  draft.clear_touched();  // the evaluator is caught up with the warm start
  out.objective = current;
  out.schedule = draft.to_schedule();

  constexpr double kT0 = 2.0;    // round-unit temperatures
  constexpr double kTEnd = 0.05;
  const double steps = opts.iterations > 1 ? opts.iterations - 1 : 1;
  for (int it = 0; it < opts.iterations; ++it) {
    if (opts.time_budget_ms > 0.0 && timer.millis() >= opts.time_budget_ms)
      break;
    ++out.proposed;
    // Snapshot-undo: drafts are small (period × links), so a full copy is
    // cheap next to the simulation below and makes every move trivially
    // reversible.
    const ScheduleDraft backup = draft;

    bool changed = false;
    switch (rng.uniform_index(7)) {
      case 0: {  // insert a candidate link
        const int r = static_cast<int>(rng.uniform_index(
            static_cast<std::size_t>(draft.period())));
        changed = draft.insert(r, pool[rng.uniform_index(pool.size())]);
        break;
      }
      case 1: {  // remove a link
        const int r = static_cast<int>(rng.uniform_index(
            static_cast<std::size_t>(draft.period())));
        if (!draft.links(r).empty()) {
          (void)draft.remove(r, rng.uniform_index(draft.links(r).size()));
          changed = true;
        }
        break;
      }
      case 2: {  // replace a link within its round
        const int r = static_cast<int>(rng.uniform_index(
            static_cast<std::size_t>(draft.period())));
        if (!draft.links(r).empty()) {
          (void)draft.remove(r, rng.uniform_index(draft.links(r).size()));
          changed = draft.insert(r, pool[rng.uniform_index(pool.size())]);
        }
        break;
      }
      case 3: {  // move a link to another round
        const int from = static_cast<int>(rng.uniform_index(
            static_cast<std::size_t>(draft.period())));
        const int to = static_cast<int>(rng.uniform_index(
            static_cast<std::size_t>(draft.period())));
        if (from != to && !draft.links(from).empty()) {
          const Arc link =
              draft.remove(from, rng.uniform_index(draft.links(from).size()));
          changed = draft.insert(to, link);
        }
        break;
      }
      case 4: {  // rotate the period (changes the start phase)
        if (draft.period() > 1) {
          draft.rotate(1 + static_cast<int>(rng.uniform_index(
                               static_cast<std::size_t>(draft.period() - 1))));
          changed = true;
        }
        break;
      }
      case 5: {  // grow: a fresh empty round
        if (draft.period() < max_period) {
          draft.insert_round(static_cast<int>(rng.uniform_index(
              static_cast<std::size_t>(draft.period()) + 1)));
          changed = true;
        }
        break;
      }
      case 6: {  // shrink: drop a round (links and all)
        if (draft.period() > 1) {
          (void)draft.remove_round(static_cast<int>(rng.uniform_index(
              static_cast<std::size_t>(draft.period()))));
          changed = true;
        }
        break;
      }
    }
    if (!changed) {
      draft = backup;  // inapplicable or rejected-by-structure: no-op
      continue;
    }
    // Invalidation point of this move, read before evaluation consumes it:
    // a revert must tell the evaluator how far its checkpoints still match.
    const int touched = draft.period_changed() ? 0 : draft.touched_round();

    const int cap = current.feasible
                        ? std::min(opts.objective.max_rounds,
                                   2 * current.rounds + 16)
                        : base_cap;
    const Objective candidate = eval(draft, cap);
    const double delta = (candidate.score() - current.score()) / 1e6;
    const double temp =
        kT0 * std::pow(kTEnd / kT0, static_cast<double>(it) / steps);
    if (delta <= 0.0 || rng.uniform01() < std::exp(-delta / temp)) {
      ++out.accepted;
      if (obs::trace::enabled()) {
        // Accepted-move instants plot the anneal's score trajectory on the
        // restart's lane; rejected proposals stay silent (ring economy).
        static const auto kAccept = obs::trace::intern("synth.accept");
        static const auto kIt = obs::trace::intern("it");
        static const auto kScore = obs::trace::intern("score");
        obs::trace::instant(
            kAccept, {{kIt, static_cast<std::int64_t>(it), false},
                      {kScore, static_cast<std::int64_t>(candidate.score()),
                       false}});
      }
      current = candidate;
      draft.clear_touched();  // adopted: the evaluator reflects this draft
      if (better(candidate, out.objective)) {
        ++out.improved;
        out.objective = candidate;
        out.schedule = draft.to_schedule();
      }
    } else {
      draft = backup;  // backup was taken clean, so this also clears touched
      evaluator.invalidate_from(touched);
    }
  }
  out.replayed_rounds = evaluator.replay_stats().replayed_rounds;
  out.replay_total_rounds = evaluator.replay_stats().total_rounds;
  out.checkpoint_bytes = evaluator.checkpoint_bytes();
  return out;
}

/// Initial schedule for restart r (see header: coloring, witness, random).
protocol::SystolicSchedule initial_schedule(
    const graph::Digraph& g, int restart,
    const protocol::SystolicSchedule& coloring, const SynthOptions& opts,
    util::Rng& rng) {
  if (restart == 0) return coloring;
  if (restart == 1 && opts.exact_warm_start &&
      g.vertex_count() <= search::kMaxVertices) {
    search::SolveOptions so;
    so.problem = opts.objective.goal == Goal::kBroadcast
                     ? search::Problem::kBroadcast
                     : search::Problem::kGossip;
    so.source = opts.objective.source;
    so.mode = opts.mode;
    so.threads = 1;  // already inside a parallel restart
    so.want_witness = true;
    const auto res = search::solve(g, so);
    if (res.rounds > 0 && !res.witness.empty()) {
      protocol::SystolicSchedule s;
      s.n = g.vertex_count();
      s.mode = opts.mode;
      s.period = res.witness;  // the optimal protocol, read periodically
      return s;
    }
  }
  const int s0 = coloring.period_length() > 0 ? coloring.period_length() : 1;
  return protocol::random_systolic_schedule(g, s0, opts.mode, rng);
}

}  // namespace

SynthResult synthesize(const graph::Digraph& g, const SynthOptions& opts) {
  const obs::WallTimer timer;
  if (g.vertex_count() < 2)
    throw std::invalid_argument("synthesize: need at least 2 vertices");
  if (opts.restarts < 1)
    throw std::invalid_argument("synthesize: need restarts >= 1");
  if (opts.iterations < 0)
    throw std::invalid_argument("synthesize: need iterations >= 0");

  const std::vector<Arc> pool = candidate_links(g, opts.mode);
  if (pool.empty())
    throw std::invalid_argument("synthesize: graph has no links to schedule");
  // Half-duplex candidates are arcs of g; full-duplex support links only
  // check membership against symmetric networks (cf. edge_coloring_schedule).
  const graph::Digraph* membership =
      (opts.mode == Mode::kFullDuplex && !g.is_symmetric()) ? nullptr : &g;

  const protocol::SystolicSchedule coloring =
      protocol::edge_coloring_schedule(g, opts.mode);
  const int max_period =
      opts.max_period > 0
          ? opts.max_period
          : std::max(4, 2 * coloring.period_length());

  std::vector<RestartOutcome> outcomes(static_cast<std::size_t>(opts.restarts));
  const auto run_one = [&](std::size_t r) {
    const obs::ScopedTimer span(synth_metrics().restart_micros);
    obs::trace::TraceSpan trace_span(
        obs::trace::enabled() ? obs::trace::intern("synth.restart") : 0);
    // Declared after trace_span so the perf delta lands in its args.
    obs::perf::PerfScope perf_scope(synth_metrics().restart_perf);
    if (perf_scope.armed()) perf_scope.attach(&trace_span);
    util::Rng rng(util::derive_seed(opts.seed, r));
    const auto initial =
        initial_schedule(g, static_cast<int>(r), coloring, opts, rng);
    outcomes[r] = anneal(initial, pool, max_period, opts, std::move(rng));
    if (trace_span.armed()) {
      trace_span.arg(obs::trace::intern("restart"),
                     static_cast<std::int64_t>(r));
      trace_span.arg(obs::trace::intern("accepted"), outcomes[r].accepted);
      trace_span.arg(obs::trace::intern("improved"), outcomes[r].improved);
      trace_span.arg(obs::trace::intern("replayed_rounds"),
                     outcomes[r].replayed_rounds);
      trace_span.arg(obs::trace::intern("replay_total_rounds"),
                     outcomes[r].replay_total_rounds);
      trace_span.arg(obs::trace::intern("checkpoint_bytes"),
                     static_cast<std::int64_t>(outcomes[r].checkpoint_bytes));
    }
  };
  if (opts.threads == 1) {
    for (std::size_t r = 0; r < outcomes.size(); ++r) run_one(r);
  } else {
    std::unique_ptr<util::ThreadPool> own;
    if (opts.threads > 1)
      own = std::make_unique<util::ThreadPool>(opts.threads - 1);
    (own ? *own : util::ThreadPool::instance())
        .run_indexed(outcomes.size(), run_one);
  }

  // Best-of-K: strictly better objective wins; ties keep the lowest
  // restart index (the documented deterministic tie order).  Each restart's
  // winner is compiled here — the one membership/validation pass per
  // restart, since the anneal scored drafts directly — and the K winners
  // are re-scored at the user's full round budget in one batch through a
  // shared scratch arena.
  std::vector<protocol::CompiledSchedule> winners;
  winners.reserve(outcomes.size());
  for (const RestartOutcome& o : outcomes)
    winners.push_back(
        protocol::CompiledSchedule::compile(o.schedule, membership));
  std::vector<const protocol::CompiledSchedule*> winner_ptrs;
  winner_ptrs.reserve(winners.size());
  for (const protocol::CompiledSchedule& cs : winners)
    winner_ptrs.push_back(&cs);
  const std::vector<Objective> fulls =
      evaluate_batch(winner_ptrs, opts.objective);

  SynthResult result;
  result.restarts_run = opts.restarts;
  std::int64_t improved = 0;
  std::size_t max_checkpoint_bytes = 0;
  for (std::size_t r = 0; r < outcomes.size(); ++r) {
    result.moves_proposed += outcomes[r].proposed;
    result.moves_accepted += outcomes[r].accepted;
    result.replayed_rounds += outcomes[r].replayed_rounds;
    result.replay_total_rounds += outcomes[r].replay_total_rounds;
    if (outcomes[r].checkpoint_bytes > max_checkpoint_bytes)
      max_checkpoint_bytes = outcomes[r].checkpoint_bytes;
    improved += outcomes[r].improved;
    if (result.best_restart < 0 || better(fulls[r], result.objective)) {
      result.best_restart = static_cast<int>(r);
      result.objective = fulls[r];
      result.schedule = outcomes[r].schedule;
    }
  }
  result.millis = timer.millis();
  auto& sm = synth_metrics();
  sm.restarts_run.add(static_cast<std::uint64_t>(opts.restarts));
  sm.moves_proposed.add(static_cast<std::uint64_t>(result.moves_proposed));
  sm.moves_accepted.add(static_cast<std::uint64_t>(result.moves_accepted));
  sm.improvements.add(static_cast<std::uint64_t>(improved));
  sm.replayed_rounds.add(static_cast<std::uint64_t>(result.replayed_rounds));
  sm.replay_total_rounds.add(
      static_cast<std::uint64_t>(result.replay_total_rounds));
  sm.checkpoint_bytes.record_max(
      static_cast<std::int64_t>(max_checkpoint_bytes));
  sm.last_best_objective.set(
      static_cast<std::int64_t>(result.objective.score()));
  sm.synthesize_micros.record_micros(timer.micros());
  return result;
}

}  // namespace sysgo::synth
