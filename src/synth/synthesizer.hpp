// Heuristic schedule synthesis: parallel multi-start simulated annealing
// over periodic systolic schedules.
//
// Nothing else in the repo *produces* schedules for arbitrary networks —
// the builders cover classic topologies, the exact solver stops at n <= 12.
// The synthesizer closes that gap: K independent seeded restarts anneal a
// ScheduleDraft through the matching-preserving move set (link insert /
// remove / replace, cross-round move, rotation, period grow / shrink),
// each candidate scored through the compiled simulator (synth/objective),
// and the best-of-K schedule is returned together with its audit-ready
// authoring form.
//
// Determinism: restart r draws from util::Rng(derive_seed(seed, r)) — its
// own stream, independent of scheduling — and best-of-K selection breaks
// objective ties by the lowest restart index, so results are byte-identical
// for any thread count (given time_budget_ms == 0; a wall-clock budget
// necessarily trades that away and is off by default).
//
// Warm starts: restart 0 anneals from the edge-coloring schedule (so the
// result never loses to the classic builder); with exact_warm_start and
// n <= search::kMaxVertices, restart 1 starts from an exact-search witness
// (already optimal in rounds; annealing can still shrink period / links).
// Remaining restarts start from seeded random matchings.
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"
#include "protocol/systolic.hpp"
#include "synth/objective.hpp"

namespace sysgo::synth {

struct SynthOptions {
  protocol::Mode mode = protocol::Mode::kHalfDuplex;
  ObjectiveOptions objective;
  int restarts = 16;
  int iterations = 4000;  // annealing steps per restart
  /// Per-restart wall-clock cap in milliseconds; 0 = none.  A nonzero
  /// budget makes results timing-dependent — reproducibility is only
  /// guaranteed at the default 0.
  double time_budget_ms = 0.0;
  std::uint64_t seed = 0x5397a11cULL;
  /// Period ceiling for grow moves; 0 = auto (twice the edge-coloring
  /// period, at least 4).
  int max_period = 0;
  /// 0: restarts on the process-wide pool; 1: serial; k > 1: a private
  /// pool of k lanes for this call.  Results identical for any value.
  unsigned threads = 0;
  /// Seed restart 1 from an exact-search witness when n <= 12 (costs a
  /// solver run; off by default).
  bool exact_warm_start = false;
  /// Draft evaluation strategy for the annealing loop.  kIncremental keeps
  /// per-round knowledge checkpoints alive across moves and re-simulates
  /// only from the earliest round a move touched; results are byte-identical
  /// to kFull for any seed/thread count (CI-asserted), so this is purely a
  /// throughput knob.
  EvalMode eval = EvalMode::kIncremental;
  /// Checkpoint spacing in rounds for the incremental evaluator.
  int checkpoint_stride = simulator::kDefaultCheckpointStride;
};

struct SynthResult {
  protocol::SystolicSchedule schedule;  // best schedule found
  Objective objective;                  // its evaluation
  int best_restart = -1;                // restart that produced it
  int restarts_run = 0;
  std::int64_t moves_proposed = 0;  // across all restarts
  std::int64_t moves_accepted = 0;
  /// Rounds actually re-simulated by the annealers' draft evaluations vs
  /// the rounds a full (from round 0) evaluation would have run — the
  /// delta-evaluation savings (equal when eval == kFull).
  std::int64_t replayed_rounds = 0;
  std::int64_t replay_total_rounds = 0;
  double millis = 0.0;  // wall clock
};

/// Synthesize a schedule for g.  Half-duplex drafts draw candidate links
/// from g's arcs; full-duplex drafts from g's undirected support (like the
/// edge-coloring builder, so non-symmetric digraphs get support schedules).
/// Throws std::invalid_argument for an empty graph or nonsensical budgets.
[[nodiscard]] SynthResult synthesize(const graph::Digraph& g,
                                     const SynthOptions& opts = {});

}  // namespace sysgo::synth
