#include "topology/butterfly.hpp"

#include <stdexcept>

#include "topology/words.hpp"

namespace sysgo::topology {

std::int64_t butterfly_order(int d, int D) noexcept {
  return sat_mul(D + 1, ipow(d, D));
}

int butterfly_index(std::int64_t word, int level, int d, int D) noexcept {
  return static_cast<int>(level * ipow(d, D) + word);
}

ButterflyVertex butterfly_vertex(int index, int d, int D) noexcept {
  const std::int64_t base = ipow(d, D);
  return {index % base, static_cast<int>(index / base)};
}

graph::Digraph butterfly(int d, int D) {
  if (d < 2 || D < 1) throw std::invalid_argument("butterfly: need d >= 2, D >= 1");
  const std::int64_t n = butterfly_order(d, D);
  if (n > (1 << 24)) throw std::invalid_argument("butterfly: too large");
  graph::Digraph g(static_cast<int>(n));
  const std::int64_t words = ipow(d, D);
  for (int l = 1; l <= D; ++l) {
    for (std::int64_t x = 0; x < words; ++x) {
      const int u = butterfly_index(x, l, d, D);
      for (int a = 0; a < d; ++a) {
        const std::int64_t y = with_digit(x, l - 1, a, d);
        const int v = butterfly_index(y, l - 1, d, D);
        g.add_edge(u, v);  // pairwise opposite arcs
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace sysgo::topology
