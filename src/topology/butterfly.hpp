// Butterfly digraph BF(d, D).
//
// Vertices are pairs (x, l) with x a word of length D over {0..d-1} and
// level l in {0..D}; n = (D+1)·d^D.  A vertex (x, l) with l > 0 is joined by
// opposite arcs to the d vertices obtained by replacing digit l−1 of x
// (paper Section 3).  BF is symmetric by definition.
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Number of vertices (D+1)·d^D.
[[nodiscard]] std::int64_t butterfly_order(int d, int D) noexcept;

/// Dense index of vertex (word, level): level·d^D + word.
[[nodiscard]] int butterfly_index(std::int64_t word, int level, int d, int D) noexcept;

/// Inverse of butterfly_index.
struct ButterflyVertex {
  std::int64_t word;
  int level;
};
[[nodiscard]] ButterflyVertex butterfly_vertex(int index, int d, int D) noexcept;

/// The (symmetric) Butterfly digraph.
[[nodiscard]] graph::Digraph butterfly(int d, int D);

}  // namespace sysgo::topology
