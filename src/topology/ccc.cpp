#include "topology/ccc.hpp"

#include <stdexcept>

namespace sysgo::topology {

std::int64_t ccc_order(int D) noexcept {
  return static_cast<std::int64_t>(D) << D;
}

int ccc_index(std::int64_t word, int position, int D) noexcept {
  return static_cast<int>((static_cast<std::int64_t>(position) << D) + word);
}

CccVertex ccc_vertex(int index, int D) noexcept {
  const std::int64_t words = std::int64_t{1} << D;
  return {index % words, static_cast<int>(index / words)};
}

graph::Digraph cube_connected_cycles(int D) {
  if (D < 3 || D > 20)
    throw std::invalid_argument("cube_connected_cycles: need 3 <= D <= 20");
  const std::int64_t n = ccc_order(D);
  if (n > (1 << 24)) throw std::invalid_argument("cube_connected_cycles: too large");
  graph::Digraph g(static_cast<int>(n));
  const std::int64_t words = std::int64_t{1} << D;
  for (int p = 0; p < D; ++p) {
    for (std::int64_t w = 0; w < words; ++w) {
      const int u = ccc_index(w, p, D);
      g.add_edge(u, ccc_index(w, (p + 1) % D, D));        // cycle edge
      const std::int64_t flipped = w ^ (std::int64_t{1} << p);
      if (flipped > w) g.add_edge(u, ccc_index(flipped, p, D));  // rung
    }
  }
  g.finalize();
  return g;
}

}  // namespace sysgo::topology
