// Cube-Connected Cycles CCC(D).
//
// Vertices (w, p): w a D-bit word, p a cursor position in {0..D-1};
// n = D·2^D.  Edges: cycle edges (w, p) ~ (w, p±1 mod D) and hypercube
// rungs (w, p) ~ (w xor 2^p, p).  A constant-degree (3) relative of the
// hypercube — included because the systolic-gossip literature treats it
// alongside Butterfly-class networks.
#pragma once

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Number of vertices D·2^D.
[[nodiscard]] std::int64_t ccc_order(int D) noexcept;

/// Dense index of (word, position): position·2^D + word.
[[nodiscard]] int ccc_index(std::int64_t word, int position, int D) noexcept;

struct CccVertex {
  std::int64_t word;
  int position;
};
[[nodiscard]] CccVertex ccc_vertex(int index, int D) noexcept;

/// The (symmetric) cube-connected cycles graph; requires D >= 3.
[[nodiscard]] graph::Digraph cube_connected_cycles(int D);

}  // namespace sysgo::topology
