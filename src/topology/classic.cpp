#include "topology/classic.hpp"

#include <stdexcept>

#include "topology/words.hpp"

namespace sysgo::topology {

graph::Digraph path(int n) {
  if (n < 1) throw std::invalid_argument("path: need n >= 1");
  graph::Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

graph::Digraph cycle(int n) {
  if (n < 3) throw std::invalid_argument("cycle: need n >= 3");
  graph::Digraph g(n);
  for (int i = 0; i < n; ++i) g.add_edge(i, (i + 1) % n);
  g.finalize();
  return g;
}

graph::Digraph grid(int rows, int cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("grid: need rows, cols >= 1");
  graph::Digraph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  g.finalize();
  return g;
}

graph::Digraph torus(int rows, int cols) {
  if (rows < 3 || cols < 3) throw std::invalid_argument("torus: need rows, cols >= 3");
  graph::Digraph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      g.add_edge(id(r, c), id(r, (c + 1) % cols));
      g.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  g.finalize();
  return g;
}

graph::Digraph complete(int n) {
  if (n < 2) throw std::invalid_argument("complete: need n >= 2");
  graph::Digraph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  g.finalize();
  return g;
}

graph::Digraph hypercube(int D) {
  if (D < 1 || D > 24) throw std::invalid_argument("hypercube: need 1 <= D <= 24");
  const int n = 1 << D;
  graph::Digraph g(n);
  for (int v = 0; v < n; ++v)
    for (int b = 0; b < D; ++b)
      if ((v ^ (1 << b)) > v) g.add_edge(v, v ^ (1 << b));
  g.finalize();
  return g;
}

graph::Digraph complete_tree(int d, int height) {
  if (d < 2 || height < 0) throw std::invalid_argument("complete_tree: need d >= 2");
  // n = (d^{height+1} - 1) / (d - 1)
  const std::int64_t n64 = (ipow(d, height + 1) - 1) / (d - 1);
  if (n64 > (1 << 24)) throw std::invalid_argument("complete_tree: too large");
  const int n = static_cast<int>(n64);
  graph::Digraph g(n);
  for (int v = 0; v < n; ++v)
    for (int c = 1; c <= d; ++c) {
      const std::int64_t child = static_cast<std::int64_t>(d) * v + c;
      if (child < n) g.add_edge(v, static_cast<int>(child));
    }
  g.finalize();
  return g;
}

}  // namespace sysgo::topology
