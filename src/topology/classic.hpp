// Classic interconnection topologies (all as symmetric digraphs):
// path, cycle, grid, torus, complete graph, hypercube, complete d-ary tree.
// These are the networks for which the systolic-gossip literature has
// matching upper bounds ([8,11,14,20]); we use them as protocol testbeds.
#pragma once

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Path P_n: vertices 0..n-1, edges {i, i+1}.
[[nodiscard]] graph::Digraph path(int n);

/// Cycle C_n: path plus edge {n-1, 0}.
[[nodiscard]] graph::Digraph cycle(int n);

/// rows x cols grid; vertex (r, c) has index r*cols + c.
[[nodiscard]] graph::Digraph grid(int rows, int cols);

/// rows x cols torus (grid with wraparound edges).
[[nodiscard]] graph::Digraph torus(int rows, int cols);

/// Complete graph K_n.
[[nodiscard]] graph::Digraph complete(int n);

/// Hypercube Q_D: 2^D vertices, edges between words at Hamming distance 1.
[[nodiscard]] graph::Digraph hypercube(int D);

/// Complete d-ary tree of given height (height 0 = single vertex).
/// Vertex 0 is the root; children of v are d*v+1 ... d*v+d.
[[nodiscard]] graph::Digraph complete_tree(int d, int height);

}  // namespace sysgo::topology
