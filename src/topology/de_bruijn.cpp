#include "topology/de_bruijn.hpp"

#include <stdexcept>

#include "topology/words.hpp"

namespace sysgo::topology {

std::int64_t de_bruijn_order(int d, int D) noexcept { return ipow(d, D); }

graph::Digraph de_bruijn_directed(int d, int D) {
  if (d < 2 || D < 1) throw std::invalid_argument("de_bruijn: need d >= 2, D >= 1");
  const std::int64_t n = de_bruijn_order(d, D);
  if (n > (1 << 24)) throw std::invalid_argument("de_bruijn: too large");
  graph::Digraph g(static_cast<int>(n));
  const std::int64_t tail_mod = ipow(d, D - 1);
  for (std::int64_t x = 0; x < n; ++x)
    for (int a = 0; a < d; ++a)
      g.add_arc(static_cast<int>(x), static_cast<int>((x % tail_mod) * d + a));
  g.finalize();
  return g;
}

graph::Digraph de_bruijn(int d, int D) {
  return de_bruijn_directed(d, D).symmetric_closure();
}

}  // namespace sysgo::topology
