// de Bruijn digraph DB(d, D).
//
// Vertices: all d^D words of length D over {0..d-1}.  Word x_{D-1}…x_0 has
// arcs to the d words x_{D-2}…x_0·a (left shift, append a).  The undirected
// graph DB(d, D) is the symmetric closure.  Constant words (e.g. 00…0) have
// self-loops; those arcs are kept in the digraph but are never usable by a
// protocol (a self-loop is not a matching arc).
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"

namespace sysgo::topology {

[[nodiscard]] std::int64_t de_bruijn_order(int d, int D) noexcept;

/// Directed de Bruijn DB→(d, D); vertex index = word value in base d.
[[nodiscard]] graph::Digraph de_bruijn_directed(int d, int D);

/// Undirected de Bruijn DB(d, D).
[[nodiscard]] graph::Digraph de_bruijn(int d, int D);

}  // namespace sysgo::topology
