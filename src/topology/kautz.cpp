#include "topology/kautz.hpp"

#include <stdexcept>
#include <unordered_map>

#include "topology/words.hpp"

namespace sysgo::topology {
namespace {

// Pack a word over alphabet {0..d} into an int64 key (base d+1).
std::int64_t pack(const std::vector<int>& w, int d) {
  std::int64_t key = 0;
  for (std::size_t i = w.size(); i-- > 0;) key = key * (d + 1) + w[i];
  return key;
}

}  // namespace

std::int64_t kautz_order(int d, int D) noexcept {
  return sat_mul(d + 1, ipow(d, D - 1));
}

std::vector<std::vector<int>> kautz_words(int d, int D) {
  std::vector<std::vector<int>> words;
  words.reserve(static_cast<std::size_t>(kautz_order(d, D)));
  // Enumerate left-to-right (from digit D-1 down to 0), lexicographically.
  std::vector<int> cur(static_cast<std::size_t>(D));
  auto rec = [&](auto&& self, int pos) -> void {  // pos: D-1 .. 0
    if (pos < 0) {
      words.push_back(cur);
      return;
    }
    for (int a = 0; a <= d; ++a) {
      if (pos < D - 1 && a == cur[static_cast<std::size_t>(pos) + 1]) continue;
      cur[static_cast<std::size_t>(pos)] = a;
      self(self, pos - 1);
    }
  };
  rec(rec, D - 1);
  return words;
}

graph::Digraph kautz_directed(int d, int D) {
  if (d < 2 || D < 1) throw std::invalid_argument("kautz: need d >= 2, D >= 1");
  const std::int64_t n = kautz_order(d, D);
  if (n > (1 << 24)) throw std::invalid_argument("kautz: too large");

  const auto words = kautz_words(d, D);
  std::unordered_map<std::int64_t, int> index;
  index.reserve(words.size() * 2);
  for (std::size_t i = 0; i < words.size(); ++i)
    index.emplace(pack(words[i], d), static_cast<int>(i));

  graph::Digraph g(static_cast<int>(n));
  std::vector<int> next(static_cast<std::size_t>(D));
  for (std::size_t i = 0; i < words.size(); ++i) {
    const auto& w = words[i];
    // Left shift: next = x_{D-2} ... x_0 a; digit j of next = digit j-1 of w.
    for (int j = D - 1; j >= 1; --j)
      next[static_cast<std::size_t>(j)] = w[static_cast<std::size_t>(j) - 1];
    for (int a = 0; a <= d; ++a) {
      if (a == w[0]) continue;
      next[0] = a;
      g.add_arc(static_cast<int>(i), index.at(pack(next, d)));
    }
  }
  g.finalize();
  return g;
}

graph::Digraph kautz(int d, int D) { return kautz_directed(d, D).symmetric_closure(); }

}  // namespace sysgo::topology
