// Kautz digraph K(d, D).
//
// Vertices: words of length D over {0..d} (alphabet size d+1) in which
// adjacent letters differ; n = (d+1)·d^{D-1}.  Word x_{D-1}…x_0 has arcs to
// the d words x_{D-2}…x_0·a with a ≠ x_0.  The undirected K(d, D) is the
// symmetric closure.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace sysgo::topology {

[[nodiscard]] std::int64_t kautz_order(int d, int D) noexcept;

/// All valid Kautz words as digit vectors (index i of the outer vector is
/// the dense vertex id; inner digit 0 is least significant/rightmost).
[[nodiscard]] std::vector<std::vector<int>> kautz_words(int d, int D);

/// Directed Kautz digraph K→(d, D).
[[nodiscard]] graph::Digraph kautz_directed(int d, int D);

/// Undirected Kautz graph K(d, D).
[[nodiscard]] graph::Digraph kautz(int d, int D);

}  // namespace sysgo::topology
