#include "topology/knodel.hpp"

#include <stdexcept>

namespace sysgo::topology {

int knodel_index(int side, int j) noexcept { return 2 * j + side; }

KnodelVertex knodel_vertex(int index) noexcept { return {index % 2, index / 2}; }

int knodel_max_delta(int n) noexcept {
  int d = 0;
  while ((2 << d) <= n) ++d;  // 2^{d+1} <= n  <=>  d+1 <= log2 n
  return d;
}

graph::Digraph knodel(int delta, int n) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("knodel: n must be even and >= 2");
  if (delta < 1 || delta > knodel_max_delta(n))
    throw std::invalid_argument("knodel: need 1 <= delta <= floor(log2(n))");
  graph::Digraph g(n);
  const int half = n / 2;
  for (int k = 0; k < delta; ++k) {
    const int shift = ((1 << k) - 1) % half;
    for (int j = 0; j < half; ++j)
      g.add_edge(knodel_index(0, j), knodel_index(1, (j + shift) % half));
  }
  g.finalize();
  return g;
}

}  // namespace sysgo::topology
