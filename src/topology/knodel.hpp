// Knödel graph W(Δ, n).
//
// The classical minimal-gossip family: for even n, vertices (side, j) with
// side ∈ {0, 1}, j ∈ {0..n/2−1}; dimension-k edges (k = 0..Δ−1) join
// (0, j) to (1, (j + 2^k − 1) mod n/2).  With Δ = ⌊log2 n⌋ these graphs
// gossip in the optimal ⌈log2 n⌉ full-duplex rounds — the natural
// upper-bound companion to the paper's lower bounds on complete-ish
// networks.
#pragma once

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Dense index of (side, j): 2j + side.
[[nodiscard]] int knodel_index(int side, int j) noexcept;

struct KnodelVertex {
  int side;
  int j;
};
[[nodiscard]] KnodelVertex knodel_vertex(int index) noexcept;

/// W(delta, n); requires n even, n >= 2, 1 <= delta <= floor(log2(n)).
[[nodiscard]] graph::Digraph knodel(int delta, int n);

/// Largest admissible dimension floor(log2(n)).
[[nodiscard]] int knodel_max_delta(int n) noexcept;

}  // namespace sysgo::topology
