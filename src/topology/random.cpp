#include "topology/random.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "graph/search.hpp"
#include "util/rng.hpp"

namespace sysgo::topology {

namespace {

constexpr int kMaxAttempts = 1000;

/// Build the symmetric digraph of an edge list; the caller keeps it only
/// when connected (one build serves both the test and the return value).
graph::Digraph from_edges(int n, const std::vector<std::pair<int, int>>& edges) {
  graph::Digraph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);
  g.finalize();
  return g;
}

}  // namespace

graph::Digraph random_regular(int d, int n, std::uint64_t seed) {
  if (d < 2 || d >= n)
    throw std::invalid_argument("random_regular: need 2 <= d < n");
  if ((static_cast<std::int64_t>(n) * d) % 2 != 0)
    throw std::invalid_argument("random_regular: n*d must be even");

  // Configuration model: shuffle the n*d stubs, pair them consecutively,
  // reject the whole sample on a self-loop, parallel edge or disconnected
  // result.  For the small d used here acceptance is high (asymptotically
  // e^{-(d^2-1)/4} for simplicity alone).
  std::vector<int> stubs(static_cast<std::size_t>(n) * static_cast<std::size_t>(d));
  for (int v = 0; v < n; ++v)
    for (int k = 0; k < d; ++k)
      stubs[static_cast<std::size_t>(v) * static_cast<std::size_t>(d) +
            static_cast<std::size_t>(k)] = v;

  std::vector<char> seen(static_cast<std::size_t>(n) *
                             static_cast<std::size_t>(n),
                         0);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(stubs.size() / 2);
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    util::Rng rng(util::derive_seed(seed, static_cast<std::uint64_t>(attempt)));
    std::shuffle(stubs.begin(), stubs.end(), rng.engine());
    edges.clear();
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const int u = stubs[i];
      const int v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      const std::size_t key = static_cast<std::size_t>(std::min(u, v)) *
                                  static_cast<std::size_t>(n) +
                              static_cast<std::size_t>(std::max(u, v));
      if (seen[key]) {
        simple = false;
        break;
      }
      seen[key] = 1;
      edges.emplace_back(u, v);
    }
    // Clear only the marks this attempt set (the buffer outlives attempts).
    for (const auto& [u, v] : edges)
      seen[static_cast<std::size_t>(std::min(u, v)) *
               static_cast<std::size_t>(n) +
           static_cast<std::size_t>(std::max(u, v))] = 0;
    if (!simple) continue;
    auto g = from_edges(n, edges);
    if (graph::is_strongly_connected(g)) return g;
  }
  throw std::runtime_error(
      "random_regular: no simple connected sample within the retry budget");
}

graph::Digraph random_gnp(int n, double p, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("random_gnp: need n >= 2");
  if (!(p > 0.0) || p > 1.0)
    throw std::invalid_argument("random_gnp: need p in (0, 1]");

  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    util::Rng rng(util::derive_seed(seed, static_cast<std::uint64_t>(attempt)));
    std::vector<std::pair<int, int>> edges;
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        if (rng.flip(p)) edges.emplace_back(u, v);
    auto g = from_edges(n, edges);
    if (graph::is_strongly_connected(g)) return g;
  }
  throw std::runtime_error(
      "random_gnp: no connected sample within the retry budget "
      "(p is far below the connectivity threshold)");
}

}  // namespace sysgo::topology
