// Seeded random network families: connected random d-regular graphs
// (configuration model with rejection) and connected Erdős–Rényi G(n, p).
//
// The paper's machinery never depends on a family having closed-form
// structure — the audit, the simulator and the synthesizer take any
// network.  These generators supply instances beyond the paper's tables;
// construction is fully determined by the explicit seed, so sweeps and
// synthesis runs over random members are reproducible.
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Seed used by the registry (make_family) for random members; mixed with
/// (d, D) per member so distinct members are distinct instances.
inline constexpr std::uint64_t kDefaultTopologySeed = 0x5397a11cULL;

/// Connected random d-regular graph on n vertices as a symmetric digraph:
/// the configuration model (uniform stub pairing) with whole-graph
/// rejection of self-loops, parallel edges and disconnected outcomes.
/// Requires 2 <= d < n and n*d even; throws std::invalid_argument
/// otherwise, or std::runtime_error if no simple connected graph shows up
/// within the (generous) retry budget.
[[nodiscard]] graph::Digraph random_regular(int d, int n, std::uint64_t seed);

/// Connected Erdős–Rényi G(n, p) as a symmetric digraph: every unordered
/// pair is an edge independently with probability p, rejecting
/// disconnected outcomes.  Requires n >= 2 and p in (0, 1]; throws
/// std::invalid_argument otherwise, or std::runtime_error when no
/// connected sample shows up within the retry budget (p far below the
/// ln(n)/n connectivity threshold).
[[nodiscard]] graph::Digraph random_gnp(int n, double p, std::uint64_t seed);

}  // namespace sysgo::topology
