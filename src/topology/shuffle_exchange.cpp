#include "topology/shuffle_exchange.hpp"

#include <stdexcept>

namespace sysgo::topology {

std::int64_t cyclic_shift_left(std::int64_t word, int D) noexcept {
  const std::int64_t mask = (std::int64_t{1} << D) - 1;
  return ((word << 1) & mask) | ((word >> (D - 1)) & 1);
}

graph::Digraph shuffle_exchange_directed(int D) {
  if (D < 2 || D > 24)
    throw std::invalid_argument("shuffle_exchange: need 2 <= D <= 24");
  const std::int64_t n = std::int64_t{1} << D;
  graph::Digraph g(static_cast<int>(n));
  for (std::int64_t w = 0; w < n; ++w) {
    g.add_edge(static_cast<int>(w), static_cast<int>(w ^ 1));  // exchange
    const std::int64_t shuffled = cyclic_shift_left(w, D);
    if (shuffled != w)  // constant words shuffle to themselves
      g.add_arc(static_cast<int>(w), static_cast<int>(shuffled));
  }
  g.finalize();
  return g;
}

graph::Digraph shuffle_exchange(int D) {
  return shuffle_exchange_directed(D).symmetric_closure();
}

}  // namespace sysgo::topology
