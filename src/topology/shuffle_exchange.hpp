// Shuffle-Exchange network SE(D).
//
// Vertices: D-bit words.  Edges: exchange (w ~ w xor 1) and shuffle
// (w -> cyclic left shift of w).  Degree <= 3; the de Bruijn graph is its
// quotient, and [25] treats gossiping on both families together.
#pragma once

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Cyclic left shift of a D-bit word.
[[nodiscard]] std::int64_t cyclic_shift_left(std::int64_t word, int D) noexcept;

/// Directed shuffle-exchange: exchange arcs both ways, shuffle arcs forward.
[[nodiscard]] graph::Digraph shuffle_exchange_directed(int D);

/// Undirected shuffle-exchange (symmetric closure).
[[nodiscard]] graph::Digraph shuffle_exchange(int D);

}  // namespace sysgo::topology
