#include "topology/topology.hpp"

#include <stdexcept>

#include "topology/butterfly.hpp"
#include "topology/ccc.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/kautz.hpp"
#include "topology/knodel.hpp"
#include "topology/random.hpp"
#include "topology/shuffle_exchange.hpp"
#include "topology/wrapped_butterfly.hpp"
#include "util/rng.hpp"

namespace sysgo::topology {

std::string family_name(Family f, int d) {
  const std::string ds = std::to_string(d);
  switch (f) {
    case Family::kButterfly: return "BF(" + ds + ",D)";
    case Family::kWrappedButterflyDirected: return "WBF->(" + ds + ",D)";
    case Family::kWrappedButterfly: return "WBF(" + ds + ",D)";
    case Family::kDeBruijnDirected: return "DB->(" + ds + ",D)";
    case Family::kDeBruijn: return "DB(" + ds + ",D)";
    case Family::kKautzDirected: return "K->(" + ds + ",D)";
    case Family::kKautz: return "K(" + ds + ",D)";
    case Family::kCycle: return "C(D)";
    case Family::kComplete: return "K(D)";
    case Family::kHypercube: return "Q(D)";
    case Family::kCubeConnectedCycles: return "CCC(D)";
    case Family::kShuffleExchange: return "SE(D)";
    case Family::kKnodel: return "W(" + ds + ",D)";
    case Family::kRandomRegular: return "RR(" + ds + ",D)";
    case Family::kRandomGnp: return "GNP(" + ds + ",D)";
  }
  throw std::invalid_argument("family_name: unknown family");
}

namespace {

/// G(n, p) member: p chosen so the expected degree is the grid's d.
double gnp_probability(int d, int n) {
  const double p = static_cast<double>(d) / static_cast<double>(n - 1);
  return p > 1.0 ? 1.0 : p;
}

/// Per-member instance seed: distinct (family, d, D) members of one run
/// are independent instances of the same user seed.
std::uint64_t member_seed(Family f, int d, int D, std::uint64_t seed) {
  const std::uint64_t tag = (static_cast<std::uint64_t>(f) << 40) ^
                            (static_cast<std::uint64_t>(d) << 20) ^
                            static_cast<std::uint64_t>(D);
  return util::derive_seed(seed, tag);
}

}  // namespace

graph::Digraph make_family(Family f, int d, int D) {
  return make_family(f, d, D, kDefaultTopologySeed);
}

graph::Digraph make_family(Family f, int d, int D, std::uint64_t seed) {
  switch (f) {
    case Family::kButterfly: return butterfly(d, D);
    case Family::kWrappedButterflyDirected: return wrapped_butterfly_directed(d, D);
    case Family::kWrappedButterfly: return wrapped_butterfly(d, D);
    case Family::kDeBruijnDirected: return de_bruijn_directed(d, D);
    case Family::kDeBruijn: return de_bruijn(d, D);
    case Family::kKautzDirected: return kautz_directed(d, D);
    case Family::kKautz: return kautz(d, D);
    case Family::kCycle: return cycle(D);
    case Family::kComplete: return complete(D);
    case Family::kHypercube: return hypercube(D);
    case Family::kCubeConnectedCycles: return cube_connected_cycles(D);
    case Family::kShuffleExchange: return shuffle_exchange(D);
    case Family::kKnodel: return knodel(d, D);
    case Family::kRandomRegular:
    case Family::kRandomGnp:
      // Route the parameter validation through family_order so both entry
      // points accept/reject identically (size cap, gnp degree range).
      (void)family_order(f, d, D);
      return f == Family::kRandomRegular
                 ? random_regular(d, D, member_seed(f, d, D, seed))
                 : random_gnp(D, gnp_probability(d, D),
                              member_seed(f, d, D, seed));
  }
  throw std::invalid_argument("make_family: unknown family");
}

std::int64_t family_order(Family f, int d, int D) {
  // Mirrors the parameter validation of each family constructor so the
  // throw conditions match make_family without building anything.
  const auto check = [](bool ok, const char* message) {
    if (!ok) throw std::invalid_argument(message);
  };
  const auto check_size = [&check](std::int64_t n, const char* message) {
    check(n <= (1 << 24), message);
    return n;
  };
  switch (f) {
    case Family::kButterfly:
      check(d >= 2 && D >= 1, "butterfly: need d >= 2, D >= 1");
      return check_size(butterfly_order(d, D), "butterfly: too large");
    case Family::kWrappedButterflyDirected:
    case Family::kWrappedButterfly:
      check(d >= 2 && D >= 2, "wrapped_butterfly: need d >= 2, D >= 2");
      return check_size(wrapped_butterfly_order(d, D),
                        "wrapped_butterfly: too large");
    case Family::kDeBruijnDirected:
    case Family::kDeBruijn:
      check(d >= 2 && D >= 1, "de_bruijn: need d >= 2, D >= 1");
      return check_size(de_bruijn_order(d, D), "de_bruijn: too large");
    case Family::kKautzDirected:
    case Family::kKautz:
      check(d >= 2 && D >= 1, "kautz: need d >= 2, D >= 1");
      return check_size(kautz_order(d, D), "kautz: too large");
    case Family::kCycle:
      check(D >= 3, "cycle: need n >= 3");
      return D;
    case Family::kComplete:
      check(D >= 2, "complete: need n >= 2");
      return D;
    case Family::kHypercube:
      check(D >= 1 && D <= 24, "hypercube: need 1 <= D <= 24");
      return std::int64_t{1} << D;
    case Family::kCubeConnectedCycles:
      check(D >= 3 && D <= 20, "cube_connected_cycles: need 3 <= D <= 20");
      return check_size(ccc_order(D), "cube_connected_cycles: too large");
    case Family::kShuffleExchange:
      check(D >= 2 && D <= 24, "shuffle_exchange: need 2 <= D <= 24");
      return std::int64_t{1} << D;
    case Family::kKnodel:
      check(D >= 2 && D % 2 == 0, "knodel: n must be even and >= 2");
      check(d >= 1 && d <= knodel_max_delta(D),
            "knodel: need 1 <= delta <= floor(log2(n))");
      return D;
    case Family::kRandomRegular:
      check(d >= 2 && d < D, "random_regular: need 2 <= d < n");
      check((static_cast<std::int64_t>(D) * d) % 2 == 0,
            "random_regular: n*d must be even");
      check(D <= 4096, "random_regular: too large");
      return D;
    case Family::kRandomGnp:
      check(D >= 2, "random_gnp: need n >= 2");
      check(d >= 1 && d <= D - 1, "random_gnp: need 1 <= d <= n - 1");
      check(D <= 4096, "random_gnp: too large");
      return D;
  }
  throw std::invalid_argument("family_order: unknown family");
}

bool family_is_symmetric(Family f) noexcept {
  switch (f) {
    case Family::kButterfly:
    case Family::kWrappedButterfly:
    case Family::kDeBruijn:
    case Family::kKautz:
    case Family::kCycle:
    case Family::kComplete:
    case Family::kHypercube:
    case Family::kCubeConnectedCycles:
    case Family::kShuffleExchange:
    case Family::kKnodel:
    case Family::kRandomRegular:
    case Family::kRandomGnp:
      return true;
    default:
      return false;
  }
}

bool family_has_separator_analysis(Family f) noexcept {
  switch (f) {
    case Family::kButterfly:
    case Family::kWrappedButterflyDirected:
    case Family::kWrappedButterfly:
    case Family::kDeBruijnDirected:
    case Family::kDeBruijn:
    case Family::kKautzDirected:
    case Family::kKautz:
      return true;
    default:
      return false;
  }
}

}  // namespace sysgo::topology
