#include "topology/topology.hpp"

#include <stdexcept>

#include "topology/butterfly.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/kautz.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace sysgo::topology {

std::string family_name(Family f, int d) {
  const std::string ds = std::to_string(d);
  switch (f) {
    case Family::kButterfly: return "BF(" + ds + ",D)";
    case Family::kWrappedButterflyDirected: return "WBF->(" + ds + ",D)";
    case Family::kWrappedButterfly: return "WBF(" + ds + ",D)";
    case Family::kDeBruijnDirected: return "DB->(" + ds + ",D)";
    case Family::kDeBruijn: return "DB(" + ds + ",D)";
    case Family::kKautzDirected: return "K->(" + ds + ",D)";
    case Family::kKautz: return "K(" + ds + ",D)";
  }
  throw std::invalid_argument("family_name: unknown family");
}

graph::Digraph make_family(Family f, int d, int D) {
  switch (f) {
    case Family::kButterfly: return butterfly(d, D);
    case Family::kWrappedButterflyDirected: return wrapped_butterfly_directed(d, D);
    case Family::kWrappedButterfly: return wrapped_butterfly(d, D);
    case Family::kDeBruijnDirected: return de_bruijn_directed(d, D);
    case Family::kDeBruijn: return de_bruijn(d, D);
    case Family::kKautzDirected: return kautz_directed(d, D);
    case Family::kKautz: return kautz(d, D);
  }
  throw std::invalid_argument("make_family: unknown family");
}

bool family_is_symmetric(Family f) noexcept {
  switch (f) {
    case Family::kButterfly:
    case Family::kWrappedButterfly:
    case Family::kDeBruijn:
    case Family::kKautz:
      return true;
    default:
      return false;
  }
}

}  // namespace sysgo::topology
