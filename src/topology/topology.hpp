// Unified registry over the paper's network families.
//
// Benches/examples iterate "all families the paper tabulates"; this header
// gives them a single factory plus the family metadata (name, degree
// parameter d, dimension D) used in table rows.
#pragma once

#include <cstdint>
#include <string>

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Every registered network family.  The first seven are the families of
/// Figs. 5, 6 and 8 of the paper; the rest are the classic testbed
/// topologies implemented under topology/ (registered so sweeps and the
/// exact-search solver can enumerate them by name).
enum class Family {
  kButterfly,                 // BF(d, D), symmetric
  kWrappedButterflyDirected,  // WBF→(d, D)
  kWrappedButterfly,          // WBF(d, D), undirected
  kDeBruijnDirected,          // DB→(d, D)
  kDeBruijn,                  // DB(d, D), undirected
  kKautzDirected,             // K→(d, D)
  kKautz,                     // K(d, D), undirected
  kCycle,                     // C_D (D = vertex count; d unused)
  kComplete,                  // K_D (D = vertex count; d unused)
  kHypercube,                 // Q_D (d unused)
  kCubeConnectedCycles,       // CCC(D) (d unused)
  kShuffleExchange,           // SE(D), undirected (d unused)
  kKnodel,                    // W(d, D) Knödel graph (D = vertex count, even)
  kRandomRegular,             // RR(d, D): connected random d-regular on D
                              // vertices (seeded; see topology/random.hpp)
  kRandomGnp,                 // GNP(d, D): connected G(n = D, p = d/(D-1))
                              // (d = target expected degree; seeded)
};

/// Short display name matching the paper's notation, e.g. "WBF(2,D)".
[[nodiscard]] std::string family_name(Family f, int d);

/// Instantiate the family at dimension D.  For kCycle / kComplete / kKnodel
/// and the random families the "dimension" is the vertex count; d
/// parameterizes only the degree-d families (it is ignored by the
/// fixed-degree classics).  Random members are built from
/// kDefaultTopologySeed (topology/random.hpp) mixed per (family, d, D),
/// so repeated calls are identical.
[[nodiscard]] graph::Digraph make_family(Family f, int d, int D);

/// Same, but random families derive their instance from `seed` instead of
/// the default (deterministic families ignore it).  This is the overload
/// behind the CLI's --seed flag.
[[nodiscard]] graph::Digraph make_family(Family f, int d, int D,
                                         std::uint64_t seed);

/// Vertex count of make_family(f, d, D) in closed form, validating the
/// same parameter constraints (throws std::invalid_argument exactly when
/// make_family would).  Lets callers size-gate a member without paying for
/// its construction.
[[nodiscard]] std::int64_t family_order(Family f, int d, int D);

/// True for families whose digraph is symmetric (undirected networks).
[[nodiscard]] bool family_is_symmetric(Family f) noexcept;

/// True for the seven families with Lemma 3.1 separator analysis (the
/// paper's tables); the classic testbed families have none, and the
/// separator-based tasks reject them.
[[nodiscard]] bool family_has_separator_analysis(Family f) noexcept;

}  // namespace sysgo::topology
