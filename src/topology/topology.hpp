// Unified registry over the paper's network families.
//
// Benches/examples iterate "all families the paper tabulates"; this header
// gives them a single factory plus the family metadata (name, degree
// parameter d, dimension D) used in table rows.
#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Families appearing in Figs. 5, 6 and 8 of the paper.
enum class Family {
  kButterfly,                 // BF(d, D), symmetric
  kWrappedButterflyDirected,  // WBF→(d, D)
  kWrappedButterfly,          // WBF(d, D), undirected
  kDeBruijnDirected,          // DB→(d, D)
  kDeBruijn,                  // DB(d, D), undirected
  kKautzDirected,             // K→(d, D)
  kKautz,                     // K(d, D), undirected
};

/// Short display name matching the paper's notation, e.g. "WBF(2,D)".
[[nodiscard]] std::string family_name(Family f, int d);

/// Instantiate the family at dimension D.
[[nodiscard]] graph::Digraph make_family(Family f, int d, int D);

/// True for families whose digraph is symmetric (undirected networks).
[[nodiscard]] bool family_is_symmetric(Family f) noexcept;

}  // namespace sysgo::topology
