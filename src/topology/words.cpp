#include "topology/words.hpp"

#include <limits>

namespace sysgo::topology {

std::int64_t ipow(int d, int e) noexcept {
  // Saturates instead of overflowing: every caller validates sizes against
  // small ceilings (<= 2^24), so a saturated result reads as "too large"
  // rather than as wrapped UB garbage.
  std::int64_t r = 1;
  for (int i = 0; i < e; ++i) {
    if (__builtin_mul_overflow(r, d, &r))
      return std::numeric_limits<std::int64_t>::max();
  }
  return r;
}

std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept {
  std::int64_t r;
  if (__builtin_mul_overflow(a, b, &r))
    return std::numeric_limits<std::int64_t>::max();
  return r;
}

int digit(std::int64_t word, int i, int d) noexcept {
  return static_cast<int>((word / ipow(d, i)) % d);
}

std::int64_t with_digit(std::int64_t word, int i, int v, int d) noexcept {
  const std::int64_t p = ipow(d, i);
  return word + (v - digit(word, i, d)) * p;
}

std::vector<int> digits_of(std::int64_t word, int D, int d) {
  std::vector<int> out(static_cast<std::size_t>(D));
  for (int i = 0; i < D; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<int>(word % d);
    word /= d;
  }
  return out;
}

std::int64_t word_of(const std::vector<int>& digits, int d) {
  std::int64_t w = 0;
  for (std::size_t i = digits.size(); i-- > 0;) w = w * d + digits[i];
  return w;
}

}  // namespace sysgo::topology
