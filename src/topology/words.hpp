// Helpers for word-indexed vertex families.
//
// Butterfly / de Bruijn / Kautz vertices are strings ("words") over a small
// alphabet; these helpers convert between word digits and dense indices.
// Digit 0 of a word is the least significant (x_0 in the paper's
// x_{D-1} x_{D-2} ... x_1 x_0).
#pragma once

#include <cstdint>
#include <vector>

namespace sysgo::topology {

/// d^e as a 64-bit integer, saturating at INT64_MAX on overflow (callers
/// compare against small size ceilings, so saturation reads as "too
/// large").
[[nodiscard]] std::int64_t ipow(int d, int e) noexcept;

/// a * b saturating at INT64_MAX — for the order formulas that multiply an
/// ipow by a level/symbol count before a size check.
[[nodiscard]] std::int64_t sat_mul(std::int64_t a, std::int64_t b) noexcept;

/// Digit i (0 = least significant) of `word` in base d.
[[nodiscard]] int digit(std::int64_t word, int i, int d) noexcept;

/// `word` with digit i replaced by v (0 <= v < d).
[[nodiscard]] std::int64_t with_digit(std::int64_t word, int i, int v, int d) noexcept;

/// All D digits of `word`, index 0 = least significant.
[[nodiscard]] std::vector<int> digits_of(std::int64_t word, int D, int d);

/// Inverse of digits_of.
[[nodiscard]] std::int64_t word_of(const std::vector<int>& digits, int d);

}  // namespace sysgo::topology
