#include "topology/wrapped_butterfly.hpp"

#include <stdexcept>

#include "topology/words.hpp"

namespace sysgo::topology {

std::int64_t wrapped_butterfly_order(int d, int D) noexcept {
  return sat_mul(D, ipow(d, D));
}

int wrapped_butterfly_index(std::int64_t word, int level, int d, int D) noexcept {
  (void)D;
  return static_cast<int>(level * ipow(d, D) + word);
}

WrappedButterflyVertex wrapped_butterfly_vertex(int index, int d, int D) noexcept {
  (void)D;
  const std::int64_t base = ipow(d, D);
  return {index % base, static_cast<int>(index / base)};
}

graph::Digraph wrapped_butterfly_directed(int d, int D) {
  if (d < 2 || D < 2)
    throw std::invalid_argument("wrapped_butterfly: need d >= 2, D >= 2");
  const std::int64_t n = wrapped_butterfly_order(d, D);
  if (n > (1 << 24)) throw std::invalid_argument("wrapped_butterfly: too large");
  graph::Digraph g(static_cast<int>(n));
  const std::int64_t words = ipow(d, D);
  for (int l = 0; l < D; ++l) {
    const int target_level = (l > 0) ? l - 1 : D - 1;
    const int changed_digit = (l > 0) ? l - 1 : D - 1;
    for (std::int64_t x = 0; x < words; ++x) {
      const int u = wrapped_butterfly_index(x, l, d, D);
      for (int a = 0; a < d; ++a) {
        const std::int64_t y = with_digit(x, changed_digit, a, d);
        g.add_arc(u, wrapped_butterfly_index(y, target_level, d, D));
      }
    }
  }
  g.finalize();
  return g;
}

graph::Digraph wrapped_butterfly(int d, int D) {
  return wrapped_butterfly_directed(d, D).symmetric_closure();
}

}  // namespace sysgo::topology
