// Wrapped Butterfly WBF(d, D).
//
// Vertices (x, l) with l in {0..D-1}; n = D·d^D.  Directed version
// (paper's WBF→(d,D)): (x, l) with l > 0 has arcs to the d vertices with
// digit l−1 replaced, at level l−1; (x, 0) has arcs to the d vertices with
// digit D−1 replaced, at level D−1.  The undirected WBF(d, D) is the
// symmetric closure.
#pragma once

#include <cstdint>

#include "graph/digraph.hpp"

namespace sysgo::topology {

/// Number of vertices D·d^D.
[[nodiscard]] std::int64_t wrapped_butterfly_order(int d, int D) noexcept;

/// Dense index of (word, level): level·d^D + word.
[[nodiscard]] int wrapped_butterfly_index(std::int64_t word, int level, int d,
                                          int D) noexcept;

struct WrappedButterflyVertex {
  std::int64_t word;
  int level;
};
[[nodiscard]] WrappedButterflyVertex wrapped_butterfly_vertex(int index, int d,
                                                              int D) noexcept;

/// Directed Wrapped Butterfly WBF→(d, D).
[[nodiscard]] graph::Digraph wrapped_butterfly_directed(int d, int D);

/// Undirected Wrapped Butterfly WBF(d, D) (symmetric closure).
[[nodiscard]] graph::Digraph wrapped_butterfly(int d, int D);

}  // namespace sysgo::topology
