// Over-aligned storage for SIMD-consumed buffers.
//
// AlignedAlloc<T, A> is a minimal std::allocator drop-in whose allocations
// are A-byte aligned (A a power of two >= alignof(T)).  The simulator's
// knowledge rows use it so every row starts on a cache line and vector
// loads never split one.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace sysgo::util {

template <typename T, std::size_t Align>
struct AlignedAlloc {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of two");
  static_assert(Align >= alignof(T), "alignment below the type's natural one");

  using value_type = T;

  AlignedAlloc() noexcept = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  friend bool operator==(const AlignedAlloc&, const AlignedAlloc&) {
    return true;
  }
};

/// Cache-line (64-byte) aligned vector.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAlloc<T, 64>>;

}  // namespace sysgo::util
