#include "util/fs.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#define SYSGO_HAVE_POSIX_FS 1
#endif

namespace sysgo::util {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

void write_file_atomic(const std::string& path, const std::string& content) {
#ifdef SYSGO_HAVE_POSIX_FS
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
#else
  const std::string tmp = path + ".tmp";
#endif
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp);
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("short write to " + tmp);
  }
#ifdef SYSGO_HAVE_POSIX_FS
  // Flush file data before the rename so the new name never points at an
  // unwritten file after a crash.
  const int fd = ::open(tmp.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
}

FileLock::FileLock(const std::string& path) {
#ifdef SYSGO_HAVE_POSIX_FS
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd_ < 0) throw std::runtime_error("cannot open lock file " + path);
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("store is locked by another process: " + path);
  }
#else
  (void)path;
#endif
}

FileLock::~FileLock() {
#ifdef SYSGO_HAVE_POSIX_FS
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
#endif
}

}  // namespace sysgo::util
