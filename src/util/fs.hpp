// Small filesystem helpers for the persistent result store: whole-file
// reads, crash-safe whole-file writes (temp file + atomic rename), and an
// advisory exclusive file lock so two processes never append to the same
// store.
#pragma once

#include <string>

namespace sysgo::util {

/// Read a whole file into a string.  Throws std::runtime_error when the
/// file cannot be opened.
[[nodiscard]] std::string read_text_file(const std::string& path);

[[nodiscard]] bool file_exists(const std::string& path);

/// Write `content` to `path` atomically: the bytes land in a temp file in
/// the same directory, are flushed to disk, and the temp file is renamed
/// over `path` — a crash mid-write leaves either the old file or the new
/// one, never a torn mix.  Throws std::runtime_error on I/O failure.
void write_file_atomic(const std::string& path, const std::string& content);

/// Advisory exclusive lock on `path` (flock on POSIX; a no-op elsewhere).
/// Non-blocking: the constructor throws std::runtime_error when another
/// process already holds the lock.  Released on destruction.
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

}  // namespace sysgo::util
