#include "util/parallel.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace sysgo::util {

unsigned hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void parallel_for_blocks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  const unsigned hw = hardware_threads();
  if (hw <= 1 || total < min_grain) {
    body(begin, end);
    return;
  }
  const std::size_t workers =
      std::min<std::size_t>(hw, (total + min_grain - 1) / min_grain);
  const std::size_t chunk = (total + workers - 1) / workers;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + w * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.emplace_back([&body, lo, hi] { body(lo, hi); });
  }
  for (auto& t : pool) t.join();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_grain) {
  parallel_for_blocks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      min_grain);
}

}  // namespace sysgo::util
