#include "util/parallel.hpp"

#include <algorithm>
#include <thread>

#include "util/thread_pool.hpp"

namespace sysgo::util {

unsigned hardware_threads() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void parallel_for_blocks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t min_grain) {
  if (begin >= end) return;
  const std::size_t total = end - begin;
  ThreadPool& pool = ThreadPool::instance();
  // The calling thread participates in the region alongside the workers.
  const std::size_t lanes = static_cast<std::size_t>(pool.worker_count()) + 1;
  if (lanes <= 1 || total < min_grain) {
    body(begin, end);
    return;
  }
  const std::size_t blocks =
      std::min<std::size_t>(lanes, (total + min_grain - 1) / min_grain);
  const std::size_t chunk = (total + blocks - 1) / blocks;
  pool.run_indexed(blocks, [&](std::size_t b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo < hi) body(lo, hi);
  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_grain) {
  parallel_for_blocks(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      min_grain);
}

}  // namespace sysgo::util
