// Minimal shared-memory parallel loop utilities.
//
// The simulator and the power-iteration kernels are embarrassingly parallel
// over rows/arcs.  Loops execute on the persistent work-stealing pool of
// util/thread_pool.hpp (the calling thread participates), so no threads are
// spawned per call.  Work is split into contiguous blocks, one per lane, so
// iteration order inside a block is cache friendly.
#pragma once

#include <cstddef>
#include <functional>

namespace sysgo::util {

/// Number of worker threads used by parallel_for (>= 1).
/// Defaults to std::thread::hardware_concurrency().
[[nodiscard]] unsigned hardware_threads() noexcept;

/// Invoke body(i) for every i in [begin, end), possibly in parallel.
///
/// Falls back to a serial loop when the range is smaller than `min_grain`
/// or when only one hardware thread is available.  body must be safe to
/// invoke concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t min_grain = 1024);

/// Block-wise variant: body(block_begin, block_end) per worker block.
/// Preferred for tight numeric kernels (avoids one std::function call
/// per element).
void parallel_for_blocks(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body,
                         std::size_t min_grain = 1024);

}  // namespace sysgo::util
