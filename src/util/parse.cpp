#include "util/parse.hpp"

#include <charconv>
#include <limits>
#include <stdexcept>
#include <system_error>

namespace sysgo::util {

namespace {

[[noreturn]] void bad_value(std::string_view what, std::string_view kind,
                            std::string_view text) {
  throw std::invalid_argument(std::string(what) + ": expected " +
                              std::string(kind) + ", got '" +
                              std::string(text) + "'");
}

template <typename T>
T parse_with_from_chars(std::string_view text, std::string_view what,
                        std::string_view kind) {
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range)
    throw std::invalid_argument(std::string(what) + ": value out of range: '" +
                                std::string(text) + "'");
  // Reject both parse failures and trailing garbage ("4x", "1.5.2").
  if (ec != std::errc{} || ptr != last) bad_value(what, kind, text);
  return value;
}

}  // namespace

long long parse_i64(std::string_view text, std::string_view what) {
  return parse_with_from_chars<long long>(text, what, "an integer");
}

int parse_int(std::string_view text, std::string_view what) {
  const long long v = parse_i64(text, what);
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max())
    throw std::invalid_argument(std::string(what) + ": value out of range: '" +
                                std::string(text) + "'");
  return static_cast<int>(v);
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  // from_chars<unsigned> rejects a leading '-' already; the explicit check
  // keeps the message honest ("-3" is not "garbage", it is negative).
  if (!text.empty() && text.front() == '-')
    throw std::invalid_argument(std::string(what) +
                                ": must be non-negative, got '" +
                                std::string(text) + "'");
  return parse_with_from_chars<std::uint64_t>(text, what,
                                              "a non-negative integer");
}

double parse_double(std::string_view text, std::string_view what) {
  return parse_with_from_chars<double>(text, what, "a number");
}

long long parse_i64_in(std::string_view text, std::string_view what,
                       IntRange range) {
  const long long v = parse_i64(text, what);
  if (v < range.lo || v > range.hi)
    throw std::invalid_argument(
        std::string(what) + " must be in [" + std::to_string(range.lo) + ", " +
        std::to_string(range.hi) + "], got '" + std::string(text) + "'");
  return v;
}

int parse_int_in(std::string_view text, std::string_view what, IntRange range) {
  return static_cast<int>(parse_i64_in(text, what, range));
}

std::optional<IntRange> cli_flag_range(std::string_view flag) {
  // One row per scalar numeric flag of the sysgo CLI.  Contextual flags
  // (--d, --D, --periods: list-valued, bounds differ by subcommand) and
  // non-integer flags (--seed: u64, --time-budget: double) validate at
  // their call sites.
  struct Row {
    std::string_view flag;
    IntRange range;
  };
  static constexpr Row kTable[] = {
      {"--threads", {1, 256}},
      {"--round-threads", {1, 256}},
      {"--solver-threads", {1, 256}},
      {"--synth-threads", {0, 256}},
      {"--restarts", {1, 1024}},
      {"--iterations", {0, 1 << 30}},
      {"--max-rounds", {1, 1 << 30}},
      {"--max-states", {1, std::numeric_limits<long long>::max()}},
  };
  for (const Row& row : kTable)
    if (row.flag == flag) return row.range;
  return std::nullopt;
}

ShardSpec parse_shard(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos)
    bad_value("--shard", "'i/m' (e.g. 1/4)", text);
  ShardSpec spec;
  spec.index = parse_int(text.substr(0, slash), "--shard index");
  spec.count = parse_int(text.substr(slash + 1), "--shard count");
  if (spec.count < 1)
    throw std::invalid_argument("--shard count must be >= 1, got '" +
                                std::string(text) + "'");
  if (spec.index < 1 || spec.index > spec.count)
    throw std::invalid_argument("--shard index must be in [1, " +
                                std::to_string(spec.count) + "], got '" +
                                std::string(text) + "'");
  return spec;
}

}  // namespace sysgo::util
