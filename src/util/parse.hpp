// Checked numeric parsing for CLI flags and text formats.
//
// std::atoi silently returns 0 on garbage; std::stoi accepts trailing junk
// ("4x" parses as 4) and throws a bare "stoi" on overflow.  Every
// user-facing numeric parse goes through these helpers instead: they reject
// empty input, trailing garbage and overflow, and their error messages name
// the offending flag/field and the rejected text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sysgo::util {

/// Inclusive accepted range for a checked integer parse.
struct IntRange {
  long long lo = 0;
  long long hi = 0;
  friend bool operator==(const IntRange&, const IntRange&) = default;
};

/// Parse the whole of `text` as an integer / unsigned / double.  `what`
/// names the source ("--threads", "sweep field 'd'") in error messages.
/// Throws std::invalid_argument on empty input, trailing garbage, or
/// overflow.
[[nodiscard]] long long parse_i64(std::string_view text, std::string_view what);
[[nodiscard]] int parse_int(std::string_view text, std::string_view what);
[[nodiscard]] std::uint64_t parse_u64(std::string_view text,
                                      std::string_view what);
[[nodiscard]] double parse_double(std::string_view text, std::string_view what);

/// Range-checked variants: "<what> must be in [lo, hi], got '<text>'".
[[nodiscard]] long long parse_i64_in(std::string_view text,
                                     std::string_view what, IntRange range);
[[nodiscard]] int parse_int_in(std::string_view text, std::string_view what,
                               IntRange range);

/// Accepted range for each numeric sysgo CLI flag — the single validator
/// table (unit-tested directly), so zero/negative thread counts, restart
/// budgets and state caps are rejected at parse time with a clear message
/// instead of propagating into the engine.  Returns nullopt for flags whose
/// validation is contextual (e.g. --d differs between subcommands).
[[nodiscard]] std::optional<IntRange> cli_flag_range(std::string_view flag);

/// A "i/m" shard spec: this process covers shard `index` of `count`
/// (1-based; job j of the expanded grid belongs to shard (j mod count) + 1).
struct ShardSpec {
  int index = 1;
  int count = 1;
  friend bool operator==(const ShardSpec&, const ShardSpec&) = default;
};

/// Parse "i/m" with 1 <= i <= m (so "--shard 0/2" and negative values are
/// rejected, not silently wrapped).  Throws std::invalid_argument.
[[nodiscard]] ShardSpec parse_shard(std::string_view text);

}  // namespace sysgo::util
