#include "util/rng.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sysgo::util {

int Rng::uniform_int(int lo, int hi) {
  // std::uniform_int_distribution with lo > hi is undefined behavior.
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: empty range");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::flip(double p) { return uniform01() < p; }

std::vector<int> Rng::permutation(int n) {
  if (n <= 0) return {};  // a negative n would wrap to a huge allocation
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) noexcept {
  // splitmix64 finalizer over the combined state; full-period and cheap.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace sysgo::util
