#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace sysgo::util {

int Rng::uniform_int(int lo, int hi) {
  return std::uniform_int_distribution<int>(lo, hi)(engine_);
}

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::flip(double p) { return uniform01() < p; }

std::vector<int> Rng::permutation(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

}  // namespace sysgo::util
