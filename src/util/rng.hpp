// Deterministic random number helpers.
//
// All randomized components (random protocols, property-test sweeps) take an
// explicit Rng so runs are reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace sysgo::util {

/// Thin wrapper over std::mt19937_64 with the handful of draws we need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5397a11cULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int uniform_int(int lo, int hi);

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01();

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool flip(double p = 0.5);

  /// Random permutation of {0, ..., n-1}.
  [[nodiscard]] std::vector<int> permutation(int n);

  /// Underlying engine, for std::shuffle and distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sysgo::util
