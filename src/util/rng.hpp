// Deterministic random number helpers.
//
// All randomized components (random protocols, property-test sweeps) take an
// explicit Rng so runs are reproducible from a seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace sysgo::util {

/// Thin wrapper over std::mt19937_64 with the handful of draws we need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5397a11cULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).  Throws std::invalid_argument
  /// when lo > hi (an empty range has no uniform draw).
  [[nodiscard]] int uniform_int(int lo, int hi);

  /// Uniform index in [0, n): the container-subscript draw (move pickers,
  /// pool sampling).  Throws std::invalid_argument when n == 0.
  [[nodiscard]] std::size_t uniform_index(std::size_t n);

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01();

  /// Bernoulli draw with probability p of true.
  [[nodiscard]] bool flip(double p = 0.5);

  /// Random permutation of {0, ..., n-1}; empty for n <= 0.
  [[nodiscard]] std::vector<int> permutation(int n);

  /// Underlying engine, for std::shuffle and distributions.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Deterministic independent sub-stream seed: splitmix64 of (seed, stream).
/// Components that fan one user seed out over parallel units (annealer
/// restarts, random-family members) derive each unit's Rng from this so
/// results are independent of scheduling and thread count.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t seed,
                                        std::uint64_t stream) noexcept;

}  // namespace sysgo::util
