#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sysgo::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string format_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string format_full(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace sysgo::util
