// Fixed-width text tables for the benchmark harnesses and examples.
//
// Every bench binary reprints a figure/table from the paper; this keeps the
// formatting in one place so rows line up and numbers use a consistent
// precision.
#pragma once

#include <string>
#include <vector>

namespace sysgo::util {

/// Column-aligned text table.  Usage:
///   Table t({"s", "e(s)"});
///   t.add_row({"3", format_fixed(2.8808, 4)});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header underline and two-space column gaps.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format v with exactly `digits` decimal places.
[[nodiscard]] std::string format_fixed(double v, int digits);

/// Max-precision rendering ("%.17g") so parse(format_full(x)) == x; the
/// shared formatter of the sweep CSV/JSON codecs and store key
/// fingerprints (which must never diverge from each other).
[[nodiscard]] std::string format_full(double v);

}  // namespace sysgo::util
