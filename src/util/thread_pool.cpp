#include "util/thread_pool.hpp"

#include <chrono>
#include <exception>
#include <memory>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/wall_timer.hpp"
#include "util/parallel.hpp"

namespace sysgo::util {

namespace {

/// Pool observability (metric catalog in README "Observability").  The
/// handles are resolved once; steady-state cost per event is one relaxed
/// sharded atomic.  tasks_* count pool closures (a parallel region submits
/// helpers, not indices); idle time is accumulated around the workers' cv
/// waits, where it is free.
struct PoolMetrics {
  obs::Counter& submitted = obs::counter("pool.tasks_submitted");
  obs::Counter& executed = obs::counter("pool.tasks_executed");
  obs::Counter& stolen = obs::counter("pool.tasks_stolen");
  obs::Counter& idle_micros = obs::counter("pool.worker_idle_micros");
  obs::Gauge& queue_highwater = obs::gauge("pool.queue_depth_highwater");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m;
  return m;
}

/// Eager registration: any binary linking this TU (everything that touches
/// the pool) exposes the full pool catalog in `sysgo metrics dump` and in
/// --metrics snapshots even before the first task runs.
[[maybe_unused]] const bool kPoolMetricsRegistered = (pool_metrics(), true);

/// Trace names, interned once.  Flow arrows pair a kFlowBegin on the
/// submitting lane with a kFlowEnd on the executing worker's lane; the
/// per-task "pool.task" span shows the closure's run on the worker.
struct PoolTraceNames {
  obs::trace::NameId submit = obs::trace::intern("pool.submit");
  obs::trace::NameId task = obs::trace::intern("pool.task");
};

const PoolTraceNames& pool_trace_names() {
  static const PoolTraceNames n;
  return n;
}

}  // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == kDefaultWorkers) {
    const unsigned hw = hardware_threads();
    workers = hw > 1 ? hw - 1 : 0;  // the caller is the remaining lane
  }
  // Pool index for trace lane names: "pool<P>.worker<W>".  In practice P is
  // almost always 0 (the process-wide instance()), but tests build private
  // pools and their lanes should stay distinguishable in a trace.
  static std::atomic<unsigned> next_pool_id{0};
  const unsigned pool_id = next_pool_id.fetch_add(1, std::memory_order_relaxed);
  queues_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(workers);
  try {
    for (unsigned w = 0; w < workers; ++w)
      threads_.emplace_back([this, w, pool_id] {
        obs::trace::set_this_lane_name("pool" + std::to_string(pool_id) +
                                       ".worker" + std::to_string(w));
        worker_loop(w);
      });
  } catch (...) {
    // Thread creation failed partway (resource exhaustion): shut down the
    // workers already running before the members unwind, else their
    // joinable std::threads would terminate the process.
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      sleep_cv_.notify_all();
    }
    for (auto& t : threads_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::submit(std::function<void()> task) {
  if (obs::trace::enabled()) {
    // Arrow tail on the submitting lane now; the wrapper emits the head and
    // the "pool.task" span on whichever lane executes it.  The extra
    // std::function hop exists only while tracing is on.
    const PoolTraceNames& names = pool_trace_names();
    const std::uint32_t flow = obs::trace::next_flow_id();
    obs::trace::flow_begin(names.submit, flow);
    task = [inner = std::move(task), &names, flow] {
      obs::trace::flow_end(names.submit, flow);
      obs::trace::TraceSpan span(names.task);
      inner();
    };
  }
  if (queues_.empty()) {  // no workers: run inline
    pool_metrics().submitted.add(1);
    task();
    pool_metrics().executed.add(1);
    return;
  }
  const std::size_t q =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    queues_[q]->tasks.push_back(std::move(task));
  }
  const std::size_t depth =
      pending_.fetch_add(1, std::memory_order_release) + 1;
  pool_metrics().submitted.add(1);
  pool_metrics().queue_highwater.record_max(static_cast<std::int64_t>(depth));
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    sleep_cv_.notify_one();
  }
}

bool ThreadPool::try_run_one(std::size_t home) {
  std::function<void()> task;
  const std::size_t n = queues_.size();
  bool stolen = false;
  // Own queue back (LIFO), then steal from the others front (FIFO).
  for (std::size_t k = 0; k < n && !task; ++k) {
    const std::size_t q = (home + k) % n;
    std::lock_guard<std::mutex> lock(queues_[q]->mutex);
    if (queues_[q]->tasks.empty()) continue;
    if (k == 0) {
      task = std::move(queues_[q]->tasks.back());
      queues_[q]->tasks.pop_back();
    } else {
      task = std::move(queues_[q]->tasks.front());
      queues_[q]->tasks.pop_front();
      stolen = true;
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  if (stolen) pool_metrics().stolen.add(1);
  task();
  pool_metrics().executed.add(1);
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    const obs::WallTimer idle;
    sleep_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stop_.load(std::memory_order_acquire);
    });
    pool_metrics().idle_micros.add(idle.micros());
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

namespace {

/// Shared state of one cooperative parallel region.
struct Region {
  explicit Region(std::size_t c, std::function<void(std::size_t)> b)
      : count(c), body(std::move(b)) {}
  const std::size_t count;
  const std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex error_mutex;
  std::exception_ptr error;

  void drain() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  }
};

}  // namespace

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (queues_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto region = std::make_shared<Region>(count, body);
  const std::size_t helpers =
      std::min<std::size_t>(worker_count(), count - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    submit([region] { region->drain(); });
  region->drain();  // the caller claims indices too: progress is guaranteed
  // Indices claimed by workers may still be running; help with other queued
  // work (e.g. nested-region helpers), then back off to a short sleep so a
  // long-tail job doesn't pin this core.
  unsigned idle = 0;
  while (region->done.load(std::memory_order_acquire) < count) {
    if (try_run_one(0)) {
      idle = 0;
    } else if (++idle < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace sysgo::util
