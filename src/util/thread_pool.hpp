// Persistent work-stealing thread pool.
//
// Workers own a deque each: submissions are distributed round-robin, a
// worker pops its own deque LIFO (cache-warm) and steals FIFO from the
// others when idle.  Parallel regions (run_indexed) are cooperative — the
// calling thread claims blocks alongside the workers, so regions nest
// safely (a worker that opens a region drains it itself in the worst case)
// and never deadlock even with a single hardware thread.
//
// parallel_for / parallel_for_blocks (util/parallel.hpp) run on the
// process-wide instance(), replacing the old fork-join model that spawned
// and joined fresh std::threads on every call.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sysgo::util {

class ThreadPool {
 public:
  /// Default worker count: hardware_threads() - 1 (the calling thread
  /// participates in parallel regions, so n workers + caller saturate
  /// n + 1 cores).
  static constexpr unsigned kDefaultWorkers = ~0u;

  /// Start `workers` threads; 0 is a valid serial pool (submit runs
  /// inline, run_indexed loops on the caller).
  explicit ThreadPool(unsigned workers = kDefaultWorkers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker thread count (may be 0 on single-core machines; parallel
  /// regions then run entirely on the caller).
  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Process-wide pool, created on first use and kept for the process
  /// lifetime.
  static ThreadPool& instance();

  /// Enqueue a task for asynchronous execution (caller synchronizes).
  void submit(std::function<void()> task);

  /// Run body(i) for every i in [0, count), distributing dynamically over
  /// the workers and the calling thread; returns when all are done.
  /// Exceptions from body propagate to the caller (first one wins).
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& body);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t self);
  bool try_run_one(std::size_t home);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace sysgo::util
