#include "analysis/gap.hpp"

#include <gtest/gtest.h>

#include "core/audit.hpp"
#include "protocol/classic_protocols.hpp"
#include "topology/classic.hpp"

namespace sysgo::analysis {
namespace {

using protocol::Mode;

TEST(Gap, ExactNormBelowAnalyticBoundEverywhere) {
  const auto sched = protocol::cycle_schedule(8, Mode::kHalfDuplex);
  for (double lam : {0.4, 0.55, 0.65}) {
    for (const auto& row : audit_gap_report(sched, lam)) {
      EXPECT_LE(row.exact_norm, row.analytic_bound + 1e-9)
          << "vertex " << row.vertex << " lam " << lam;
      EXPECT_GE(row.gap(), -1e-9);
    }
  }
}

TEST(Gap, RowsSortedByAnalyticBound) {
  const auto sched = protocol::path_schedule(8, Mode::kHalfDuplex);
  const auto rows = audit_gap_report(sched, 0.5);
  for (std::size_t i = 1; i < rows.size(); ++i)
    EXPECT_GE(rows[i - 1].analytic_bound, rows[i].analytic_bound - 1e-12);
}

TEST(Gap, PathEndpointsHaveSmallerBoundThanRelays) {
  const auto sched = protocol::path_schedule(8, Mode::kHalfDuplex);
  const auto rows = audit_gap_report(sched, 0.5);
  // Endpoints (vertices 0 and 7) have L = R = 1; interior L = R = 2.
  double endpoint_bound = 0.0, relay_bound = 0.0;
  for (const auto& row : rows) {
    if (row.vertex == 0) endpoint_bound = row.analytic_bound;
    if (row.vertex == 3) relay_bound = row.analytic_bound;
  }
  EXPECT_LT(endpoint_bound, relay_bound);
}

TEST(Gap, NonRelayingVertexHasZeroNorm) {
  protocol::SystolicSchedule sched;
  sched.n = 3;
  sched.mode = Mode::kHalfDuplex;
  sched.period = {{{{1, 0}}}, {{{2, 1}}}};  // vertex 2 only sends, 0 only receives
  EXPECT_DOUBLE_EQ(exact_local_norm(sched, 0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(exact_local_norm(sched, 2, 0.5), 0.0);
  EXPECT_GT(exact_local_norm(sched, 1, 0.5), 0.0);
}

TEST(Gap, ExactNormGrowsWithWindow) {
  const auto sched = protocol::cycle_schedule(8, Mode::kHalfDuplex);
  const double n2 = exact_local_norm(sched, 0, 0.5, 2);
  const double n8 = exact_local_norm(sched, 0, 0.5, 8);
  EXPECT_GE(n8, n2 - 1e-12);
}

TEST(Gap, FullDuplexReportConsistent) {
  const auto sched = protocol::hypercube_schedule(3, Mode::kFullDuplex);
  for (const auto& row : audit_gap_report(sched, 0.5, 6)) {
    EXPECT_LE(row.exact_norm, row.analytic_bound + 1e-9);
    // Hypercube schedule keeps every vertex active every round.
    EXPECT_EQ(row.left_rounds, 3);
    EXPECT_EQ(row.right_rounds, 3);
  }
}

TEST(Gap, BindingVertexMatchesAudit) {
  const auto sched = protocol::path_schedule(6, Mode::kHalfDuplex);
  const auto audit = core::audit_schedule(sched);
  const auto rows = audit_gap_report(sched, audit.lambda_star);
  // The top row's analytic bound at λ* is the certificate's norm 1.
  ASSERT_FALSE(rows.empty());
  EXPECT_NEAR(rows.front().analytic_bound, 1.0, 1e-6);
}

TEST(Gap, CompiledOverloadsMatchScheduleOverloads) {
  for (Mode mode : {Mode::kHalfDuplex, Mode::kFullDuplex}) {
    const auto sched = protocol::cycle_schedule(6, mode);
    const auto cs = protocol::CompiledSchedule::compile(sched);
    for (int v = 0; v < sched.n; ++v)
      EXPECT_DOUBLE_EQ(exact_local_norm(cs, v, 0.5),
                       exact_local_norm(sched, v, 0.5));
    const auto a = audit_gap_report(cs, 0.5);
    const auto b = audit_gap_report(sched, 0.5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vertex, b[i].vertex);
      EXPECT_EQ(a[i].left_rounds, b[i].left_rounds);
      EXPECT_EQ(a[i].right_rounds, b[i].right_rounds);
      EXPECT_DOUBLE_EQ(a[i].exact_norm, b[i].exact_norm);
      EXPECT_DOUBLE_EQ(a[i].analytic_bound, b[i].analytic_bound);
    }
  }
}

TEST(Gap, RejectsBadLambda) {
  const auto sched = protocol::path_schedule(4, Mode::kHalfDuplex);
  EXPECT_THROW((void)exact_local_norm(sched, 0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)exact_local_norm(sched, 0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::analysis
