#include "analysis/optimal.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/matching.hpp"
#include "simulator/broadcast_sim.hpp"
#include "topology/classic.hpp"
#include "topology/knodel.hpp"
#include "util/rng.hpp"

namespace sysgo::analysis {
namespace {

using protocol::Mode;

TEST(MaximalMatchings, K2) {
  const auto g = topology::complete(2);
  const auto hd = maximal_matchings(g, Mode::kHalfDuplex);
  EXPECT_EQ(hd.size(), 2u);  // {0>1} and {1>0}
  const auto fd = maximal_matchings(g, Mode::kFullDuplex);
  EXPECT_EQ(fd.size(), 1u);  // {0<->1}
}

TEST(MaximalMatchings, AllAreValidMatchings) {
  const auto g = topology::cycle(6);
  for (const auto& r : maximal_matchings(g, Mode::kHalfDuplex))
    EXPECT_TRUE(graph::is_half_duplex_matching(r.arcs, 6));
  for (const auto& r : maximal_matchings(g, Mode::kFullDuplex))
    EXPECT_TRUE(graph::is_full_duplex_matching(r.arcs, 6));
}

TEST(MaximalMatchings, NoneIsContainedInAnother) {
  const auto g = topology::complete(4);
  const auto rounds = maximal_matchings(g, Mode::kHalfDuplex);
  for (const auto& a : rounds)
    for (const auto& b : rounds) {
      if (a == b) continue;
      EXPECT_FALSE(std::includes(b.arcs.begin(), b.arcs.end(), a.arcs.begin(),
                                 a.arcs.end()))
          << "matching contained in another";
    }
}

TEST(MaximalMatchings, P3FullDuplexHasTwo) {
  // P3 edges {0,1}, {1,2}: each alone is maximal (they share vertex 1).
  const auto fd = maximal_matchings(topology::path(3), Mode::kFullDuplex);
  EXPECT_EQ(fd.size(), 2u);
}

TEST(MaximalMatchings, CanonicalOrderingContract) {
  // Documented contract: each round's arcs sorted by (tail, head), rounds
  // sorted lexicographically, no duplicates.
  for (Mode mode : {Mode::kHalfDuplex, Mode::kFullDuplex}) {
    const auto rounds = maximal_matchings(topology::cycle(6), mode);
    ASSERT_FALSE(rounds.empty());
    for (const auto& r : rounds)
      EXPECT_TRUE(std::is_sorted(r.arcs.begin(), r.arcs.end()));
    for (std::size_t i = 1; i < rounds.size(); ++i)
      EXPECT_LT(rounds[i - 1].arcs, rounds[i].arcs);
  }
}

TEST(MaximalMatchings, OrderingIndependentOfArcInsertionOrder) {
  // Regression: solver determinism across thread counts relies on the move
  // list depending only on the arc SET.  Build the same graph from shuffled
  // arc input and compare the full ordered output.
  const auto reference = topology::knodel(2, 8);
  std::vector<graph::Arc> arcs(reference.arcs().begin(), reference.arcs().end());
  util::Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(arcs.begin(), arcs.end(), rng.engine());
    graph::Digraph shuffled(reference.vertex_count(), arcs);
    for (Mode mode : {Mode::kHalfDuplex, Mode::kFullDuplex}) {
      const auto a = maximal_matchings(reference, mode);
      const auto b = maximal_matchings(shuffled, mode);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].arcs, b[i].arcs) << "round " << i;
    }
  }
}

TEST(MaximalMatchings, SupportsUpToSixteenVertices) {
  EXPECT_FALSE(maximal_matchings(topology::cycle(16), Mode::kHalfDuplex).empty());
  EXPECT_THROW((void)maximal_matchings(topology::cycle(17), Mode::kHalfDuplex),
               std::invalid_argument);
}

TEST(OptimalGossip, TrivialSizes) {
  EXPECT_EQ(optimal_gossip(topology::path(1), Mode::kHalfDuplex).rounds, 0);
  EXPECT_EQ(optimal_gossip(topology::path(2), Mode::kFullDuplex).rounds, 1);
  EXPECT_EQ(optimal_gossip(topology::path(2), Mode::kHalfDuplex).rounds, 2);
}

TEST(OptimalGossip, PathOfThree) {
  // Full-duplex P3 gossip takes 3 rounds (one edge per round, middle vertex
  // must relay both ways).
  EXPECT_EQ(optimal_gossip(topology::path(3), Mode::kFullDuplex).rounds, 3);
  // Half-duplex needs 4.
  EXPECT_EQ(optimal_gossip(topology::path(3), Mode::kHalfDuplex).rounds, 4);
}

TEST(OptimalGossip, CompleteFourFullDuplexIsTwo) {
  EXPECT_EQ(optimal_gossip(topology::complete(4), Mode::kFullDuplex).rounds, 2);
}

TEST(OptimalGossip, CompleteFourHalfDuplexKnownValue) {
  // One-way (half-duplex) gossip on K4 takes 4 rounds ([4, 17, 15, 26]:
  // 1.4404·log2(4) ≈ 2.9, and the known exact small values give 4).
  const auto res = optimal_gossip(topology::complete(4), Mode::kHalfDuplex);
  EXPECT_EQ(res.rounds, 4);
}

TEST(OptimalGossip, CycleFourFullDuplex) {
  // C4: two perfect matchings alternating gossip in 2 rounds.
  EXPECT_EQ(optimal_gossip(topology::cycle(4), Mode::kFullDuplex).rounds, 2);
}

TEST(OptimalGossip, WitnessProtocolActuallyGossips) {
  for (auto mode : {Mode::kHalfDuplex, Mode::kFullDuplex}) {
    const auto g = topology::cycle(5);
    const auto res = optimal_gossip(g, mode);
    ASSERT_GT(res.rounds, 0);
    protocol::Protocol p;
    p.n = 5;
    p.mode = mode;
    p.rounds = res.witness;
    EXPECT_TRUE(protocol::validate_structure(p, &g).ok);
    EXPECT_TRUE(simulator::achieves_gossip(p));
    EXPECT_EQ(p.length(), res.rounds);
    // One round fewer cannot gossip (optimality of the witness length).
    p.rounds.pop_back();
    EXPECT_FALSE(simulator::achieves_gossip(p));
  }
}

TEST(OptimalGossip, OptimalNeverBelowDiameterOrLogN) {
  for (int n : {4, 5, 6}) {
    const auto g = topology::cycle(n);
    const auto res = optimal_gossip(g, Mode::kFullDuplex);
    ASSERT_GT(res.rounds, 0);
    EXPECT_GE(res.rounds, n / 2);                           // diameter
    EXPECT_GE(res.rounds, static_cast<int>(std::ceil(std::log2(n))));
  }
}

TEST(OptimalGossip, HalfDuplexNeverFasterThanFullDuplex) {
  for (int n : {3, 4, 5}) {
    const auto g = topology::complete(n);
    const int full = optimal_gossip(g, Mode::kFullDuplex).rounds;
    const int half = optimal_gossip(g, Mode::kHalfDuplex).rounds;
    ASSERT_GT(full, 0);
    ASSERT_GT(half, 0);
    EXPECT_GE(half, full) << "n=" << n;
  }
}

TEST(OptimalGossip, UnreachableWithinBudget) {
  const auto res = optimal_gossip(topology::path(5), Mode::kHalfDuplex, 2);
  EXPECT_EQ(res.rounds, -1);
}

TEST(OptimalGossip, HandlesNineVerticesViaSearchSubsystem) {
  // The old 64-bit packing capped this entry point at n <= 8; it now
  // delegates to search::solve (n <= 12).
  const auto res = optimal_gossip(topology::cycle(9), Mode::kFullDuplex);
  EXPECT_EQ(res.rounds, 6);
  protocol::Protocol p;
  p.n = 9;
  p.mode = Mode::kFullDuplex;
  p.rounds = res.witness;
  EXPECT_TRUE(simulator::achieves_gossip(p));
}

TEST(OptimalGossip, RejectsLargeN) {
  EXPECT_THROW((void)optimal_gossip(topology::path(13), Mode::kHalfDuplex),
               std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::analysis
