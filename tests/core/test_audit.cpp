#include "core/audit.hpp"

#include <gtest/gtest.h>

#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"
#include "util/rng.hpp"

namespace sysgo::core {
namespace {

using protocol::Mode;

TEST(Audit, VertexActivitiesOnPathSchedule) {
  // P4 half-duplex, period 4: rounds {(0,1),(2,3)}, {(1,2)}, {(1,0),(3,2)}, {(2,1)}.
  const auto sched = protocol::path_schedule(4, Mode::kHalfDuplex);
  const auto acts = vertex_activities(sched);
  ASSERT_EQ(acts.size(), 4u);
  // Endpoint 0: one in-round, one out-round per period.
  EXPECT_EQ(acts[0].left_rounds, 1);
  EXPECT_EQ(acts[0].right_rounds, 1);
  // Middle vertex 1: receives from 0 and 2, sends to 0 and 2.
  EXPECT_EQ(acts[1].left_rounds, 2);
  EXPECT_EQ(acts[1].right_rounds, 2);
}

TEST(Audit, NormBoundIncreasingInLambda) {
  const auto sched = protocol::cycle_schedule(8, Mode::kHalfDuplex);
  EXPECT_LT(audit_norm_bound(sched, 0.3), audit_norm_bound(sched, 0.6));
}

TEST(Audit, EvenCycleMatchesGeneralS4Bound) {
  // Even cycle edge classes give every vertex L = R = 2 over period 4, so
  // the audit certifies exactly the general e(4) = 1.8133.
  const auto sched = protocol::cycle_schedule(8, Mode::kHalfDuplex);
  ASSERT_EQ(sched.period_length(), 4);
  const auto res = audit_schedule(sched);
  EXPECT_NEAR(res.e_coeff, e_general(4, Duplex::kHalf), 1e-6);
}

TEST(Audit, PathEndpointsDoNotWeakenBound) {
  // Path endpoints have L = R = 1 (weaker local norm); the max is still the
  // middle vertices' balanced pattern.
  const auto sched = protocol::path_schedule(8, Mode::kHalfDuplex);
  const auto res = audit_schedule(sched);
  EXPECT_NEAR(res.e_coeff, e_general(4, Duplex::kHalf), 1e-6);
}

TEST(Audit, CertifiedBoundHoldsOnConcreteRuns) {
  // The audit's round bound must never exceed the measured gossip time.
  struct Case {
    protocol::SystolicSchedule sched;
    int max_rounds;
  };
  std::vector<Case> cases;
  cases.push_back({protocol::path_schedule(16, Mode::kHalfDuplex), 400});
  cases.push_back({protocol::cycle_schedule(16, Mode::kHalfDuplex), 400});
  cases.push_back({protocol::hypercube_schedule(4, Mode::kFullDuplex), 100});
  cases.push_back({protocol::grid_schedule(4, 4, Mode::kHalfDuplex), 600});
  for (auto& c : cases) {
    const int measured = simulator::gossip_time(c.sched, c.max_rounds);
    ASSERT_GT(measured, 0);
    const auto res = audit_schedule(c.sched);
    EXPECT_LE(res.round_lower_bound, measured)
        << "n=" << c.sched.n << " s=" << c.sched.period_length();
  }
}

TEST(Audit, FullDuplexHypercubeMatchesGeometricBound) {
  // Every vertex is active every round: the per-vertex cyclic gap sums equal
  // λ + ... + λ^{s-1}, i.e. the audit reproduces the Section 6 general bound.
  const int D = 4;
  const auto sched = protocol::hypercube_schedule(D, Mode::kFullDuplex);
  const auto res = audit_schedule(sched);
  EXPECT_NEAR(res.e_coeff, e_general(D, Duplex::kFull), 1e-6);
}

TEST(Audit, IdleRoundsDoNotWeakenTheCertificate) {
  // The per-vertex bound depends only on the activation *counts* per period
  // (Lemma 4.2), so spreading the same activations over a doubled period
  // with idle rounds leaves the certificate unchanged — while the general
  // e(s) bound for the doubled period would be weaker.  This is exactly the
  // audit's refinement over the worst-case split.
  const auto dense = protocol::cycle_schedule(8, Mode::kHalfDuplex);
  auto sparse = dense;
  sparse.period.clear();
  for (const auto& r : dense.period) {
    sparse.period.push_back(r);
    sparse.period.push_back({});
  }
  const auto res_dense = audit_schedule(dense);
  const auto res_sparse = audit_schedule(sparse);
  EXPECT_NEAR(res_sparse.e_coeff, res_dense.e_coeff, 1e-9);
  EXPECT_GT(res_sparse.e_coeff,
            e_general(sparse.period_length(), Duplex::kHalf) + 1e-6);
}

TEST(Audit, WorstVertexIsARelay) {
  const auto sched = protocol::path_schedule(8, Mode::kHalfDuplex);
  const auto res = audit_schedule(sched);
  ASSERT_GE(res.worst_vertex, 0);
  const auto acts = vertex_activities(sched);
  EXPECT_GT(acts[static_cast<std::size_t>(res.worst_vertex)].left_rounds, 0);
  EXPECT_GT(acts[static_cast<std::size_t>(res.worst_vertex)].right_rounds, 0);
}

TEST(Audit, RandomSchedulesNeverBeatTheirAudit) {
  util::Rng rng(2024);
  const auto g = topology::de_bruijn(2, 4);
  for (int trial = 0; trial < 5; ++trial) {
    const int s = 3 + trial;
    const auto sched =
        protocol::random_systolic_schedule(g, s, Mode::kHalfDuplex, rng);
    const int measured = simulator::gossip_time(sched, 4000);
    if (measured < 0) continue;  // random schedule may not gossip; skip
    const auto res = audit_schedule(sched);
    EXPECT_LE(res.round_lower_bound, measured) << "s=" << s;
  }
}

TEST(Audit, EmptyPeriodRejected) {
  protocol::SystolicSchedule sched;
  sched.n = 4;
  EXPECT_THROW((void)audit_schedule(sched), std::invalid_argument);
}

TEST(Audit, CompiledEntryPointsRejectFiniteProtocols) {
  // A finite protocol's length is not a period; auditing one (including a
  // zero-round protocol, which would certify nonsense) must fail loudly.
  protocol::Protocol p;
  p.n = 4;
  const auto empty = protocol::CompiledSchedule::compile(p);
  EXPECT_THROW((void)audit_schedule(empty), std::invalid_argument);
  p.rounds = {{{{0, 1}}}, {{{1, 2}}}};
  const auto finite = protocol::CompiledSchedule::compile(p);
  EXPECT_THROW((void)audit_schedule(finite), std::invalid_argument);
  EXPECT_THROW((void)audit_norm_bound(finite, 0.5), std::invalid_argument);
  EXPECT_THROW((void)audit_schedule_with_separator(finite, 2, 2),
               std::invalid_argument);
}

TEST(Audit, NonRelayingScheduleDegenerates) {
  // One-directional star: center receives but never sends onward items
  // can't relay -> norm bound ~0, certificate weak but well-defined.
  protocol::SystolicSchedule sched;
  sched.n = 3;
  sched.mode = Mode::kHalfDuplex;
  sched.period = {{{{1, 0}}}, {{{2, 0}}}};  // only inbound to 0
  const auto res = audit_schedule(sched);
  EXPECT_GT(res.lambda_star, 0.9);  // norm below 1 for all λ
}

// The audit must be a pure function of the compiled representation:
// compiled and schedule entry points agree bit-for-bit, and activities
// derived from the role tables equal the legacy arc-walk summaries.
TEST(Audit, CompiledEntryPointsMatchScheduleEntryPoints) {
  const std::vector<protocol::SystolicSchedule> corpus = {
      protocol::path_schedule(6, Mode::kHalfDuplex),
      protocol::edge_coloring_schedule(topology::de_bruijn(2, 4),
                                       Mode::kHalfDuplex),
      protocol::hypercube_schedule(4, Mode::kFullDuplex),
  };
  for (const auto& sched : corpus) {
    const auto cs = protocol::CompiledSchedule::compile(sched);
    const auto acts = vertex_activities(cs);
    const auto legacy_acts = vertex_activities(sched);
    ASSERT_EQ(acts.size(), legacy_acts.size());
    for (std::size_t v = 0; v < acts.size(); ++v) {
      EXPECT_EQ(acts[v].left_rounds, legacy_acts[v].left_rounds);
      EXPECT_EQ(acts[v].right_rounds, legacy_acts[v].right_rounds);
      EXPECT_EQ(acts[v].active_rounds, legacy_acts[v].active_rounds);
    }
    for (double lambda : {0.3, 0.6, 0.9})
      EXPECT_DOUBLE_EQ(audit_norm_bound(cs, lambda),
                       audit_norm_bound(sched, lambda));
    const auto a = audit_schedule(cs);
    const auto b = audit_schedule(sched);
    EXPECT_DOUBLE_EQ(a.lambda_star, b.lambda_star);
    EXPECT_DOUBLE_EQ(a.e_coeff, b.e_coeff);
    EXPECT_EQ(a.round_lower_bound, b.round_lower_bound);
    EXPECT_EQ(a.worst_vertex, b.worst_vertex);
  }
}

TEST(Audit, AuditNormBoundRejectsBadLambda) {
  const auto sched = protocol::path_schedule(4, Mode::kHalfDuplex);
  EXPECT_THROW((void)audit_norm_bound(sched, 0.0), std::invalid_argument);
  EXPECT_THROW((void)audit_norm_bound(sched, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::core
