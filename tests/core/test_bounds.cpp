#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sysgo::core {
namespace {

TEST(Bounds, NormBoundFunctionIncreasingInLambda) {
  for (int s : {3, 4, 5, 8, kUnboundedPeriod})
    for (auto duplex : {Duplex::kHalf, Duplex::kFull})
      EXPECT_LT(norm_bound_function(0.3, s, duplex),
                norm_bound_function(0.6, s, duplex));
}

TEST(Bounds, LambdaStarSatisfiesEquation) {
  for (int s : {3, 4, 5, 6, 7, 8, 16, kUnboundedPeriod}) {
    const double l = lambda_star(s, Duplex::kHalf);
    EXPECT_NEAR(norm_bound_function(l, s, Duplex::kHalf), 1.0, 1e-9) << "s=" << s;
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 1.0);
  }
}

TEST(Bounds, LambdaStarUnboundedIsInverseGoldenRatio) {
  const double l = lambda_star(kUnboundedPeriod, Duplex::kHalf);
  EXPECT_NEAR(l, (std::sqrt(5.0) - 1.0) / 2.0, 1e-10);
}

// Fig. 4 of the paper, all six quoted digits plus the limit.  The paper
// truncates (not rounds) to four decimals — e(4) = 1.81336 prints as
// 1.8133 — so the tolerance is one unit in the fourth decimal.
TEST(Bounds, Fig4PaperValues) {
  EXPECT_NEAR(e_general(3, Duplex::kHalf), 2.8808, 1.01e-4);
  EXPECT_NEAR(e_general(4, Duplex::kHalf), 1.8133, 1.01e-4);
  EXPECT_NEAR(e_general(5, Duplex::kHalf), 1.6502, 1.01e-4);
  EXPECT_NEAR(e_general(6, Duplex::kHalf), 1.5363, 1.01e-4);
  EXPECT_NEAR(e_general(7, Duplex::kHalf), 1.5021, 1.01e-4);
  EXPECT_NEAR(e_general(8, Duplex::kHalf), 1.4721, 1.01e-4);
  EXPECT_NEAR(e_general(kUnboundedPeriod, Duplex::kHalf), 1.4404, 1.01e-4);
}

TEST(Bounds, EGeneralDecreasesInS) {
  double prev = e_general(3, Duplex::kHalf);
  for (int s = 4; s <= 20; ++s) {
    const double cur = e_general(s, Duplex::kHalf);
    EXPECT_LT(cur, prev) << "s=" << s;
    prev = cur;
  }
  EXPECT_GT(prev, e_general(kUnboundedPeriod, Duplex::kHalf));
}

TEST(Bounds, HalfDuplexLambdaAboveGoldenRatioInverse) {
  // λ* decreases with s toward the inverse golden ratio 0.6180 (s -> ∞),
  // so λ* >= 0.6180 for every finite s.
  for (int s : {3, 4, 8, 32})
    EXPECT_GE(lambda_star(s, Duplex::kHalf), 0.61803) << "s=" << s;
}

TEST(Bounds, FullDuplexPaperValues) {
  // s = 3: λ + λ² = 1 -> golden section, e = 1.4404 (matches c(2) of [22,2]).
  EXPECT_NEAR(e_general(3, Duplex::kFull), 1.4404, 5e-5);
  // s -> ∞: λ/(1-λ) = 1 -> λ = 1/2, e = 1.
  EXPECT_NEAR(lambda_star(kUnboundedPeriod, Duplex::kFull), 0.5, 1e-10);
  EXPECT_NEAR(e_general(kUnboundedPeriod, Duplex::kFull), 1.0, 1e-9);
}

TEST(Bounds, FullDuplexBelowHalfDuplex) {
  // A full-duplex round is strictly more powerful, so the bound is lower.
  for (int s : {3, 4, 5, 8, kUnboundedPeriod})
    EXPECT_LE(e_general(s, Duplex::kFull), e_general(s, Duplex::kHalf) + 1e-12);
}

TEST(Bounds, SmallPeriodRejected) {
  EXPECT_THROW((void)lambda_star(2, Duplex::kHalf), std::invalid_argument);
  EXPECT_THROW((void)lambda_star(0, Duplex::kHalf), std::invalid_argument);
}

TEST(Bounds, ECoefficient) {
  EXPECT_NEAR(e_coefficient(0.5), 1.0, 1e-12);
  EXPECT_NEAR(e_coefficient(0.25), 0.5, 1e-12);
}

TEST(Bounds, Theorem41RoundBoundBasics) {
  EXPECT_EQ(theorem41_round_bound(0.5, 1), 0);
  // λ = 1/2, n = 2^20: t + 2·log2(t) >= log2(n-1)+1 ≈ 21 -> t = 13.
  const int t = theorem41_round_bound(0.5, 1 << 20);
  EXPECT_GE(t, 12);
  EXPECT_LE(t, 20);
  // Must satisfy the inequality, and t-1 must violate it.
  const double rhs = std::log2((1 << 20) - 1.0) + 1.0;
  EXPECT_GE(t * 1.0 + 2.0 * std::log2(t), rhs);
  EXPECT_LT((t - 1) * 1.0 + 2.0 * std::log2(t - 1.0), rhs);
}

TEST(Bounds, Theorem41MonotoneInLambdaAndN) {
  EXPECT_LE(theorem41_round_bound(0.4, 1024), theorem41_round_bound(0.6, 1024));
  EXPECT_LE(theorem41_round_bound(0.5, 1024), theorem41_round_bound(0.5, 1 << 20));
}

TEST(Bounds, Theorem41RejectsBadLambda) {
  EXPECT_THROW((void)theorem41_round_bound(0.0, 16), std::invalid_argument);
  EXPECT_THROW((void)theorem41_round_bound(1.0, 16), std::invalid_argument);
}

// Parameterized sweep: F(λ*, s) = 1 and e(s) consistent for a grid of s.
class BoundsSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoundsSweep, LambdaStarConsistency) {
  const int s = GetParam();
  for (auto duplex : {Duplex::kHalf, Duplex::kFull}) {
    const double l = lambda_star(s, duplex);
    EXPECT_NEAR(norm_bound_function(l, s, duplex), 1.0, 1e-9);
    EXPECT_NEAR(e_general(s, duplex), 1.0 / std::log2(1.0 / l), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(PeriodGrid, BoundsSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32, 48,
                                           64, 100));

}  // namespace
}  // namespace sysgo::core
