#include "core/broadcast_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"

namespace sysgo::core {
namespace {

TEST(BroadcastBound, PaperQuotedCoefficients) {
  // [22, 2] as quoted in the paper's introduction.
  EXPECT_NEAR(broadcast_coefficient(2), 1.4404, 1.01e-4);
  EXPECT_NEAR(broadcast_coefficient(3), 1.1374, 1.01e-4);
  EXPECT_NEAR(broadcast_coefficient(4), 1.0562, 1.01e-4);
}

TEST(BroadcastBound, GrowthRoots) {
  // d = 2: golden ratio; d -> ∞: 2.
  EXPECT_NEAR(broadcast_growth_root(2), (1.0 + std::sqrt(5.0)) / 2.0, 1e-10);
  EXPECT_GT(broadcast_growth_root(16), 1.99);
  EXPECT_LT(broadcast_growth_root(16), 2.0);
}

TEST(BroadcastBound, RootSatisfiesItsPolynomial) {
  for (int d : {2, 3, 5, 8}) {
    const double x = broadcast_growth_root(d);
    double sum = 0.0;
    for (int i = 0; i < d; ++i) sum += std::pow(x, i);
    EXPECT_NEAR(std::pow(x, d), sum, 1e-8) << "d=" << d;
  }
}

TEST(BroadcastBound, DecreasesTowardOne) {
  double prev = broadcast_coefficient(2);
  for (int d = 3; d <= 12; ++d) {
    const double cur = broadcast_coefficient(d);
    EXPECT_LT(cur, prev) << "d=" << d;
    prev = cur;
  }
  EXPECT_GT(prev, 1.0);
}

TEST(BroadcastBound, LargeDegreeAsymptotics) {
  // The root satisfies x_d ≈ 2 − 2^{−d}, so
  // c(d) ≈ 1 + log2(e)/2^{d+1} for large d.  (The paper's Section 1 prints
  // this asymptotic garbled as "1 + log(e)/2d"; the exact values c(2..4)
  // pinned above confirm the root-based form.)
  for (int d : {12, 16, 20}) {
    const double approx =
        1.0 + std::log2(std::exp(1.0)) / std::pow(2.0, d + 1);
    EXPECT_NEAR(broadcast_coefficient(d), approx, 1e-5) << "d=" << d;
  }
}

// The Section 6 identity: the general full-duplex s-systolic gossip bound
// *is* the broadcasting bound for degree s−1.
TEST(BroadcastBound, FullDuplexGossipEqualsBroadcastBound) {
  for (int s : {3, 4, 5, 6, 8, 12})
    EXPECT_NEAR(e_general(s, Duplex::kFull), broadcast_coefficient(s - 1), 1e-9)
        << "s=" << s;
}

TEST(BroadcastBound, RejectsBadDegree) {
  EXPECT_THROW((void)broadcast_growth_root(1), std::invalid_argument);
  EXPECT_THROW((void)broadcast_coefficient(0), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::core
