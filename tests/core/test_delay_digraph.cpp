#include "core/delay_digraph.hpp"

#include <gtest/gtest.h>

#include "protocol/classic_protocols.hpp"

namespace sysgo::core {
namespace {

using protocol::Mode;
using protocol::Protocol;

// P3 half-duplex, 4-systolic: (0,1), (1,2), (2,1), (1,0), repeated.
Protocol p3_protocol(int t) {
  Protocol p;
  p.n = 3;
  p.mode = Mode::kHalfDuplex;
  const std::vector<protocol::Round> period = {
      {{{0, 1}}}, {{{1, 2}}}, {{{2, 1}}}, {{{1, 0}}}};
  for (int i = 0; i < t; ++i)
    p.rounds.push_back(period[static_cast<std::size_t>(i % 4)]);
  return p;
}

TEST(DelayDigraph, NodesAreAllActivations) {
  const auto dg = DelayDigraph(p3_protocol(8), 4);
  EXPECT_EQ(dg.node_count(), 8u);  // one arc per round
  EXPECT_EQ(dg.period(), 4);
  // Activation (0,1) at round 1 exists; at round 2 does not.
  EXPECT_GE(dg.find(0, 1, 1), 0);
  EXPECT_EQ(dg.find(0, 1, 2), -1);
  EXPECT_GE(dg.find(1, 2, 2), 0);
}

TEST(DelayDigraph, ArcsRespectWindowAndMiddleVertex) {
  const auto dg = DelayDigraph(p3_protocol(8), 4);
  for (const auto& arc : dg.arcs()) {
    const auto& from = dg.nodes()[static_cast<std::size_t>(arc.from)];
    const auto& to = dg.nodes()[static_cast<std::size_t>(arc.to)];
    EXPECT_EQ(from.head, to.tail);           // consecutive arcs share the vertex
    EXPECT_EQ(arc.weight, to.round - from.round);
    EXPECT_GE(arc.weight, 1);
    EXPECT_LT(arc.weight, 4);                // window j - i < s
  }
}

TEST(DelayDigraph, SpecificDelayEdges) {
  const auto dg = DelayDigraph(p3_protocol(8), 4);
  const int a01r1 = dg.find(0, 1, 1);
  const int a12r2 = dg.find(1, 2, 2);
  const int a10r4 = dg.find(1, 0, 4);
  ASSERT_GE(a01r1, 0);
  ASSERT_GE(a12r2, 0);
  ASSERT_GE(a10r4, 0);
  // (0,1,1) -> (1,2,2) with delay 1, and (0,1,1) -> (1,0,4) with delay 3.
  int found_12 = 0, found_10 = 0;
  for (const auto& arc : dg.arcs()) {
    if (arc.from == a01r1 && arc.to == a12r2) {
      EXPECT_EQ(arc.weight, 1);
      ++found_12;
    }
    if (arc.from == a01r1 && arc.to == a10r4) {
      EXPECT_EQ(arc.weight, 3);
      ++found_10;
    }
  }
  EXPECT_EQ(found_12, 1);
  EXPECT_EQ(found_10, 1);
}

TEST(DelayDigraph, NoArcAtDelayS) {
  // (0,1,1) and (1,2,6): delay 5 > s-1 -> no arc.
  const auto dg = DelayDigraph(p3_protocol(8), 4);
  const int from = dg.find(0, 1, 1);
  const int to = dg.find(1, 2, 6);
  ASSERT_GE(from, 0);
  ASSERT_GE(to, 0);
  for (const auto& arc : dg.arcs()) EXPECT_FALSE(arc.from == from && arc.to == to);
}

TEST(DelayDigraph, WeightedDistanceIsOverallDelay) {
  const auto dg = DelayDigraph(p3_protocol(12), 4);
  // Item of 0 crossing (0,1) at round 1, then (1,2) at round 2: delay 1.
  const int a = dg.find(0, 1, 1);
  const int b = dg.find(1, 2, 2);
  EXPECT_EQ(dg.weighted_distance(a, b), 1);
  // (0,1,1) to (1,2,6): not direct, but via (2,1,3)? No: (1,2,...) needs an
  // in-arc of 1 first.  Path (0,1,1) -> (1,2,2) exists; to reach (1,2,6) we
  // need ... -> (2,1,3) -> (1,2,6)? 6-3 = 3 < 4: yes.
  const int c = dg.find(2, 1, 3);
  const int d = dg.find(1, 2, 6);
  ASSERT_GE(c, 0);
  ASSERT_GE(d, 0);
  EXPECT_EQ(dg.weighted_distance(b, d), 4);  // (1,2,2)->(2,1,3)->(1,2,6)
  EXPECT_EQ(dg.weighted_distance(a, d), 5);
}

TEST(DelayDigraph, UnreachableDistanceIsMinusOne) {
  const auto dg = DelayDigraph(p3_protocol(4), 4);
  const int late = dg.find(1, 0, 4);
  const int early = dg.find(0, 1, 1);
  ASSERT_GE(late, 0);
  ASSERT_GE(early, 0);
  EXPECT_EQ(dg.weighted_distance(late, early), -1);
}

TEST(DelayDigraph, ScheduleConstructorMatchesManual) {
  const auto sched = protocol::path_schedule(4, Mode::kHalfDuplex);
  const auto dg1 = DelayDigraph(sched, 12);
  const auto dg2 = DelayDigraph(sched.expand(12), sched.period_length());
  EXPECT_EQ(dg1.node_count(), dg2.node_count());
  EXPECT_EQ(dg1.arc_count(), dg2.arc_count());
}

TEST(DelayDigraph, CompiledConstructorMatchesExpandedProtocol) {
  const auto sched = protocol::path_schedule(5, Mode::kHalfDuplex);
  const auto cs = protocol::CompiledSchedule::compile(sched);
  const int t = 3 * sched.period_length();
  const DelayDigraph via_protocol(sched, t);
  const DelayDigraph via_compiled(cs, t);
  EXPECT_EQ(via_compiled.period(), via_protocol.period());
  ASSERT_EQ(via_compiled.node_count(), via_protocol.node_count());
  ASSERT_EQ(via_compiled.arc_count(), via_protocol.arc_count());
  for (std::size_t i = 0; i < via_compiled.node_count(); ++i)
    EXPECT_TRUE(via_compiled.nodes()[i] == via_protocol.nodes()[i]) << i;
  for (std::size_t i = 0; i < via_compiled.arc_count(); ++i) {
    EXPECT_EQ(via_compiled.arcs()[i].from, via_protocol.arcs()[i].from);
    EXPECT_EQ(via_compiled.arcs()[i].to, via_protocol.arcs()[i].to);
    EXPECT_EQ(via_compiled.arcs()[i].weight, via_protocol.arcs()[i].weight);
  }
}

TEST(DelayDigraph, RejectsTinyPeriod) {
  EXPECT_THROW(DelayDigraph(p3_protocol(4), 1), std::invalid_argument);
}

TEST(DelayDigraph, NodeCountScalesWithRounds) {
  const auto sched = protocol::hypercube_schedule(3, Mode::kFullDuplex);
  const auto dg = DelayDigraph(sched, 6);
  // Every round activates all 8 vertices in 4 pairs = 8 arcs; 6 rounds.
  EXPECT_EQ(dg.node_count(), 48u);
}

}  // namespace
}  // namespace sysgo::core
