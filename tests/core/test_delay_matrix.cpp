#include "core/delay_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/audit.hpp"
#include "protocol/classic_protocols.hpp"

namespace sysgo::core {
namespace {

using protocol::Mode;

protocol::Protocol p3_protocol(int t) {
  protocol::Protocol p;
  p.n = 3;
  p.mode = Mode::kHalfDuplex;
  const std::vector<protocol::Round> period = {
      {{{0, 1}}}, {{{1, 2}}}, {{{2, 1}}}, {{{1, 0}}}};
  for (int i = 0; i < t; ++i)
    p.rounds.push_back(period[static_cast<std::size_t>(i % 4)]);
  return p;
}

TEST(DelayMatrix, EntriesAreLambdaToWeight) {
  const double lam = 0.5;
  const auto dg = DelayDigraph(p3_protocol(8), 4);
  const auto m = delay_matrix(dg, lam);
  EXPECT_EQ(m.rows(), dg.node_count());
  for (const auto& arc : dg.arcs())
    EXPECT_NEAR(m.at(static_cast<std::size_t>(arc.from),
                     static_cast<std::size_t>(arc.to)),
                std::pow(lam, arc.weight), 1e-15);
  EXPECT_EQ(m.nnz(), dg.arc_count());
}

// The key property of Definition 3.4: (M^t)_{u,v} sums λ^{path length} over
// all t-arc dipaths, verified against explicit path enumeration.
TEST(DelayMatrix, PowerCountsWeightedPaths) {
  const double lam = 0.5;
  const auto dg = DelayDigraph(p3_protocol(10), 4);
  const auto m = delay_matrix(dg, lam).to_dense();

  // Enumerate all dipaths with exactly 2 arcs via adjacency.
  const auto m2 = m.multiply(m);
  const std::size_t n = dg.node_count();
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = 0; v < n; ++v) {
      double expected = 0.0;
      for (const auto& a1 : dg.arcs())
        for (const auto& a2 : dg.arcs())
          if (static_cast<std::size_t>(a1.from) == u && a1.to == a2.from &&
              static_cast<std::size_t>(a2.to) == v)
            expected += std::pow(lam, a1.weight + a2.weight);
      EXPECT_NEAR(m2(u, v), expected, 1e-12);
    }
}

TEST(DelayMatrix, GeometricSeriesDominatedByDistanceTerm) {
  // If dist(u, v) = l (<= t arcs), then Σ_i (M^i)_{uv} >= λ^l.
  const double lam = 0.5;
  const auto dg = DelayDigraph(p3_protocol(12), 4);
  const auto m = delay_matrix(dg, lam).to_dense();
  const int u = dg.find(0, 1, 1);
  const int v = dg.find(1, 2, 6);
  ASSERT_GE(u, 0);
  ASSERT_GE(v, 0);
  const int dist = dg.weighted_distance(u, v);
  ASSERT_GT(dist, 0);
  auto acc = m;
  auto power = m;
  for (int i = 1; i < 12; ++i) {
    power = power.multiply(m);
    acc = acc.add(power);
  }
  EXPECT_GE(acc(static_cast<std::size_t>(u), static_cast<std::size_t>(v)) + 1e-12,
            std::pow(lam, dist));
}

TEST(DelayMatrix, NormBelowAuditBound) {
  // The exact delay-matrix norm is certified by the audit's analytic bound.
  const auto sched = protocol::path_schedule(6, Mode::kHalfDuplex);
  const auto compiled = protocol::CompiledSchedule::compile(sched);
  const auto dg = DelayDigraph(compiled, 4 * compiled.period_length());
  for (double lam : {0.4, 0.55, 0.7}) {
    const double exact = delay_matrix_norm(dg, lam);
    const double bound = audit_norm_bound(compiled, lam);
    EXPECT_LE(exact, bound + 1e-9) << "lam=" << lam;
  }
}

TEST(DelayMatrix, NormMonotoneInLambda) {
  const auto sched = protocol::cycle_schedule(8, Mode::kHalfDuplex);
  const auto dg = DelayDigraph(sched, 3 * sched.period_length());
  EXPECT_LT(delay_matrix_norm(dg, 0.3), delay_matrix_norm(dg, 0.6));
}

TEST(DelayMatrix, RejectsBadLambda) {
  const auto dg = DelayDigraph(p3_protocol(4), 4);
  EXPECT_THROW((void)delay_matrix(dg, 0.0), std::invalid_argument);
  EXPECT_THROW((void)delay_matrix(dg, 1.0), std::invalid_argument);
  EXPECT_THROW((void)delay_matrix(dg, -0.5), std::invalid_argument);
}

TEST(DelayMatrix, FullDuplexProtocolNormBelowLemma61) {
  const auto sched = protocol::hypercube_schedule(3, Mode::kFullDuplex);
  const auto dg = DelayDigraph(sched, 3 * sched.period_length());
  const double lam = 0.5;
  const double exact = delay_matrix_norm(dg, lam);
  double lemma61 = 0.0;
  for (int i = 1; i <= sched.period_length() - 1; ++i) lemma61 += std::pow(lam, i);
  EXPECT_LE(exact, lemma61 + 1e-9);
}

}  // namespace
}  // namespace sysgo::core
