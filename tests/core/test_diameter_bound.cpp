#include "core/diameter_bound.hpp"

#include <gtest/gtest.h>

#include "graph/search.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"

namespace sysgo::core {
namespace {

std::vector<WeightedArc> unit_arcs(const graph::Digraph& g) {
  std::vector<WeightedArc> out;
  for (const auto& a : g.arcs()) out.push_back({a.tail, a.head, 1});
  return out;
}

TEST(DiameterBound, NormBoundMonotoneInLambda) {
  const auto arcs = unit_arcs(topology::cycle(8));
  EXPECT_LT(weighted_norm_bound(arcs, 8, 0.3), weighted_norm_bound(arcs, 8, 0.7));
}

TEST(DiameterBound, NormBoundRejectsBadInput) {
  const auto arcs = unit_arcs(topology::cycle(8));
  EXPECT_THROW((void)weighted_norm_bound(arcs, 8, 0.0), std::invalid_argument);
  EXPECT_THROW((void)weighted_norm_bound({{0, 1, 0}}, 2, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)weighted_norm_bound({{0, 9, 1}}, 2, 0.5), std::out_of_range);
}

TEST(DiameterBound, HoldsOnUnitCycles) {
  for (int n : {8, 16, 32}) {
    const auto g = topology::cycle(n);
    const auto res = diameter_bound(unit_arcs(g), n);
    EXPECT_GT(res.diameter_bound, 0) << "n=" << n;
    EXPECT_LE(res.diameter_bound, graph::diameter(g)) << "n=" << n;
  }
}

TEST(DiameterBound, HoldsOnDeBruijn) {
  const auto g = topology::de_bruijn_directed(2, 6);
  const auto res = diameter_bound(unit_arcs(g), g.vertex_count());
  const int true_diam = graph::diameter(g);
  EXPECT_GT(res.diameter_bound, 0);
  EXPECT_LE(res.diameter_bound, true_diam);
  // Bounded out-degree 2 networks: the technique certifies a constant
  // fraction of log2(n); here true diam = 6 and the bound reaches >= 3.
  EXPECT_GE(res.diameter_bound, 3);
}

TEST(DiameterBound, HoldsOnHypercube) {
  const auto g = topology::hypercube(5);
  const auto res = diameter_bound(unit_arcs(g), g.vertex_count());
  EXPECT_LE(res.diameter_bound, graph::diameter(g));
}

TEST(DiameterBound, WeightsIncreaseTheBound) {
  // Doubling every arc weight doubles the true diameter; the certificate
  // must not decrease.
  const auto g = topology::cycle(16);
  std::vector<WeightedArc> unit = unit_arcs(g);
  std::vector<WeightedArc> heavy = unit;
  for (auto& a : heavy) a.weight = 3;
  const int b1 = diameter_bound(unit, 16).diameter_bound;
  const int b3 = diameter_bound(heavy, 16).diameter_bound;
  EXPECT_GE(b3, b1);
  // And stays below the true weighted diameter 3·8.
  EXPECT_LE(b3, 3 * 8);
}

TEST(DiameterBound, CompleteGraphGetsOnlyTrivialBound) {
  // m ~ n², so log2(n(n-1)/m) <= 0: the method certifies nothing beyond 1.
  const auto g = topology::complete(8);
  const auto res = diameter_bound(unit_arcs(g), 8);
  EXPECT_EQ(res.diameter_bound, 1);
}

TEST(DiameterBound, DegenerateInputs) {
  EXPECT_EQ(diameter_bound({}, 5).diameter_bound, 0);
  EXPECT_EQ(diameter_bound({{0, 1, 1}}, 1).diameter_bound, 0);
}

}  // namespace
}  // namespace sysgo::core
