#include "core/full_duplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "linalg/polynomial.hpp"

namespace sysgo::core {
namespace {

TEST(FullDuplex, Fig7StructureS4) {
  // Fig. 7: s = 4, superdiagonals λ, λ², λ³.
  const double lam = 0.5;
  const auto m = full_duplex_local_matrix(6, 4, lam);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) {
      if (j > i && j - i <= 3)
        EXPECT_NEAR(m(i, j), std::pow(lam, j - i), 1e-15);
      else
        EXPECT_DOUBLE_EQ(m(i, j), 0.0);
    }
}

TEST(FullDuplex, Lemma61BoundValue) {
  const double lam = 0.5;
  EXPECT_NEAR(full_duplex_norm_bound(4, lam), lam + lam * lam + lam * lam * lam,
              1e-15);
  EXPECT_NEAR(full_duplex_norm_bound(2, lam), lam, 1e-15);
}

TEST(FullDuplex, ExactNormBelowBound) {
  for (int s : {3, 4, 6})
    for (double lam : {0.3, 0.5, 0.55})
      for (int t : {4, 8, 16, 32})
        EXPECT_LE(full_duplex_norm_exact(t, s, lam),
                  full_duplex_norm_bound(s, lam) + 1e-9)
            << "s=" << s << " t=" << t;
}

TEST(FullDuplex, ExactNormApproachesBound) {
  // As t grows, the finite matrix norm approaches the Lemma 6.1 value.
  const int s = 4;
  const double lam = 0.5;
  const double bound = full_duplex_norm_bound(s, lam);
  const double near_bound = full_duplex_norm_exact(256, s, lam);
  EXPECT_GT(near_bound, 0.98 * bound);
  EXPECT_LE(near_bound, bound + 1e-9);
}

TEST(FullDuplex, NormMonotoneInT) {
  const int s = 5;
  const double lam = 0.45;
  double prev = 0.0;
  for (int t : {2, 4, 8, 16, 64}) {
    const double cur = full_duplex_norm_exact(t, s, lam);
    EXPECT_GE(cur, prev - 1e-10);
    prev = cur;
  }
}

TEST(FullDuplex, BoundMatchesNormBoundFunction) {
  for (int s : {3, 4, 8})
    for (double lam : {0.3, 0.5})
      EXPECT_NEAR(full_duplex_norm_bound(s, lam),
                  norm_bound_function(lam, s, Duplex::kFull), 1e-15);
}

TEST(FullDuplex, RejectsBadArguments) {
  EXPECT_THROW((void)full_duplex_local_matrix(0, 4, 0.5), std::invalid_argument);
  EXPECT_THROW((void)full_duplex_local_matrix(4, 1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)full_duplex_local_matrix(4, 4, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::core
