#include "core/local_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "linalg/polynomial.hpp"
#include "linalg/power_iteration.hpp"
#include "util/rng.hpp"

namespace sysgo::core {
namespace {

LocalPattern simple_pattern() { return {{1}, {1}}; }  // l = r = 1, s = 2... s >= 3 needed
LocalPattern paper_k2_pattern() { return {{1, 2}, {2, 1}}; }  // s = 6, k = 2

TEST(LocalPattern, TotalsAndPeriod) {
  const auto pat = paper_k2_pattern();
  EXPECT_EQ(pat.k(), 2);
  EXPECT_EQ(pat.left_total(), 3);
  EXPECT_EQ(pat.right_total(), 3);
  EXPECT_EQ(pat.period(), 6);
  EXPECT_TRUE(pat.valid());
}

TEST(LocalPattern, PeriodicExtension) {
  const auto pat = paper_k2_pattern();
  EXPECT_EQ(pat.left(0), 1);
  EXPECT_EQ(pat.left(1), 2);
  EXPECT_EQ(pat.left(2), 1);
  EXPECT_EQ(pat.right(3), 1);
}

TEST(LocalPattern, DelayFormula) {
  const auto pat = paper_k2_pattern();
  // d_{i,i} = 1 always.
  EXPECT_EQ(pat.delay(0, 0), 1);
  EXPECT_EQ(pat.delay(1, 1), 1);
  // d_{0,1} = 1 + r_0 + l_1 = 1 + 2 + 2 = 5.
  EXPECT_EQ(pat.delay(0, 1), 5);
  // d_{1,2} = 1 + r_1 + l_2 = 1 + 1 + 1 = 3.
  EXPECT_EQ(pat.delay(1, 2), 3);
  // Spanning one full period: d_{0,2} = 1 + (r0 + l1) + (r1 + l2) = 7.
  EXPECT_EQ(pat.delay(0, 2), 7);
  EXPECT_THROW((void)pat.delay(2, 1), std::invalid_argument);
}

TEST(LocalPattern, InvalidPatterns) {
  EXPECT_FALSE((LocalPattern{{}, {}}).valid());
  EXPECT_FALSE((LocalPattern{{1, 1}, {1}}).valid());
  EXPECT_FALSE((LocalPattern{{0}, {1}}).valid());
  EXPECT_FALSE((LocalPattern{{1}, {-2}}).valid());
}

TEST(LocalMatrix, MxDimensions) {
  const auto pat = paper_k2_pattern();
  const auto m = mx_matrix(pat, 4, 0.5);
  // h = 4 blocks: lefts 1,2,1,2 = 6 rows; rights 2,1,2,1 = 6 cols.
  EXPECT_EQ(m.rows(), 6u);
  EXPECT_EQ(m.cols(), 6u);
}

TEST(LocalMatrix, MxEntriesMatchHandComputation) {
  // Pattern l = (1), r = (1), s = 2, k = 1: B_{i,i} = λ^1 (scalar blocks).
  const double lam = 0.5;
  const auto m = mx_matrix(simple_pattern(), 3, lam);
  EXPECT_EQ(m.rows(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(m(i, j), i == j ? lam : 0.0);
}

TEST(LocalMatrix, MxBlockStructureK2) {
  // l = (1,1), r = (1,1), s = 4: blocks at (i,i) value λ and (i,i+1) value
  // λ^{1 + r_i + l_{i+1}} = λ^3.
  const double lam = 0.4;
  LocalPattern pat{{1, 1}, {1, 1}};
  const auto m = mx_matrix(pat, 4, lam);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      if (j == i) {
        EXPECT_NEAR(m(i, j), lam, 1e-15);
      } else if (j == i + 1) {
        EXPECT_NEAR(m(i, j), lam * lam * lam, 1e-15);
      } else {
        EXPECT_DOUBLE_EQ(m(i, j), 0.0);
      }
    }
}

TEST(LocalMatrix, MxRankOneBlockShape) {
  // Block with l_i = 2, r_j = 2 must be λ^{d} Λ Λᵀ: entries λ^{d+a+b}.
  const double lam = 0.6;
  LocalPattern pat{{2}, {2}};  // s = 4, k = 1
  const auto m = mx_matrix(pat, 2, lam);
  // First block rows 0..1, cols 0..1, d_{0,0} = 1.
  EXPECT_NEAR(m(0, 0), lam, 1e-15);
  EXPECT_NEAR(m(0, 1), lam * lam, 1e-15);
  EXPECT_NEAR(m(1, 0), lam * lam, 1e-15);
  EXPECT_NEAR(m(1, 1), lam * lam * lam, 1e-15);
}

TEST(LocalMatrix, NxOxEntries) {
  const double lam = 0.5;
  const auto pat = paper_k2_pattern();
  const int h = 4;
  const auto nx = nx_matrix(pat, h, lam);
  const auto ox = ox_matrix(pat, h, lam);
  // Nx(0,0) = λ^1 · p_{r_0}(λ) with r_0 = 2.
  EXPECT_NEAR(nx(0, 0), lam * linalg::delay_polynomial(2, lam), 1e-14);
  // Nx(0,1) = λ^{d_{0,1}} p_{r_1} with d = 5, r_1 = 1.
  EXPECT_NEAR(nx(0, 1), std::pow(lam, 5) * linalg::delay_polynomial(1, lam), 1e-14);
  // Band: zero outside i <= j < i+k.
  EXPECT_DOUBLE_EQ(nx(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(nx(1, 0), 0.0);
  // Ox(1,0) = λ^{d_{0,1}} p_{l_0}; Ox upper entries vanish.
  EXPECT_NEAR(ox(1, 0), std::pow(lam, 5) * linalg::delay_polynomial(1, lam), 1e-14);
  EXPECT_DOUBLE_EQ(ox(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ox(3, 1), 0.0);  // j <= i-k
}

TEST(LocalMatrix, Lemma42SemiEigenvectorInequality) {
  // Nx(λ)·e <= λ·p_R(λ)·e componentwise, with equality away from the tail.
  const double lam = 0.47;
  const auto pat = paper_k2_pattern();
  const int h = 6;
  const auto nx = nx_matrix(pat, h, lam);
  const auto e = lemma42_semi_eigenvector(pat, h, lam);
  const auto ne = nx.mul(e);
  const double mu = lam * linalg::delay_polynomial(pat.right_total(), lam);
  for (int i = 0; i < h; ++i) {
    EXPECT_LE(ne[static_cast<std::size_t>(i)],
              mu * e[static_cast<std::size_t>(i)] + 1e-12)
        << "i=" << i;
    if (i <= h - pat.k()) {
      EXPECT_NEAR(ne[static_cast<std::size_t>(i)], mu * e[static_cast<std::size_t>(i)],
                  1e-12)
          << "i=" << i;
    }
  }
}

TEST(LocalMatrix, Lemma42ForOx) {
  const double lam = 0.52;
  const auto pat = paper_k2_pattern();
  const int h = 6;
  const auto ox = ox_matrix(pat, h, lam);
  const auto e = lemma42_semi_eigenvector(pat, h, lam);
  const auto oe = ox.mul(e);
  const double mu = lam * linalg::delay_polynomial(pat.left_total(), lam);
  for (int i = 0; i < h; ++i)
    EXPECT_LE(oe[static_cast<std::size_t>(i)],
              mu * e[static_cast<std::size_t>(i)] + 1e-12)
        << "i=" << i;
}

TEST(LocalMatrix, NormViaOxNxComposition) {
  // ‖Mx‖² = ρ(Mxᵀ Mx) = ρ(Ox·Nx) (Lemma 2.2 + the restriction argument).
  const double lam = 0.5;
  const auto pat = paper_k2_pattern();
  const int h = 5;
  const double norm = local_norm_exact(pat, h, lam);
  const auto prod = ox_matrix(pat, h, lam).multiply(nx_matrix(pat, h, lam));
  const double rho = linalg::spectral_radius_nonnegative(prod).value;
  EXPECT_NEAR(norm * norm, rho, 1e-8);
}

TEST(LocalMatrix, ExactNormBelowLemma43Bound) {
  const auto pat = paper_k2_pattern();
  for (double lam : {0.3, 0.5, 0.62}) {
    const double bound = local_norm_bound(pat, lam);
    for (int h = 2; h <= 8; ++h)
      EXPECT_LE(local_norm_exact(pat, h, lam), bound + 1e-9)
          << "h=" << h << " lam=" << lam;
  }
}

TEST(LocalMatrix, ExactNormMonotoneInH) {
  const auto pat = paper_k2_pattern();
  const double lam = 0.5;
  double prev = 0.0;
  for (int h = 2; h <= 10; ++h) {
    const double cur = local_norm_exact(pat, h, lam);
    EXPECT_GE(cur, prev - 1e-10);
    prev = cur;
  }
}

TEST(LocalMatrix, BalancedPatternSaturatesGeneralBound) {
  // The worst pattern for period s is the balanced one: its Lemma 4.3 bound
  // equals the paper's F(λ, s).
  for (int s : {4, 6, 8}) {
    LocalPattern pat{{s / 2}, {s / 2}};
    for (double lam : {0.4, 0.55}) {
      EXPECT_NEAR(local_norm_bound(pat, lam),
                  norm_bound_function(lam, s, Duplex::kHalf), 1e-12);
    }
  }
}

TEST(LocalMatrix, UnbalancedPatternsBelowGeneralBound) {
  // Any split with L + R = s has λ√(p_R p_L) <= λ·√(p⌈s/2⌉ p⌊s/2⌋).
  const double lam = 0.5;
  const int s = 8;
  const double general = norm_bound_function(lam, s, Duplex::kHalf);
  for (int L = 1; L < s; ++L) {
    LocalPattern pat{{L}, {s - L}};
    EXPECT_LE(local_norm_bound(pat, lam), general + 1e-12) << "L=" << L;
  }
}

TEST(LocalMatrix, InvalidInputsRejected) {
  const auto pat = paper_k2_pattern();
  EXPECT_THROW((void)mx_matrix(pat, 1, 0.5), std::invalid_argument);  // h < k
  EXPECT_THROW((void)mx_matrix(pat, 4, 0.0), std::invalid_argument);
  EXPECT_THROW((void)mx_matrix(pat, 4, 1.0), std::invalid_argument);
  EXPECT_THROW((void)mx_matrix(LocalPattern{{0}, {1}}, 2, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Property sweep: random activation patterns never violate Lemma 4.2/4.3.
// ---------------------------------------------------------------------------

class LocalMatrixProperty : public ::testing::TestWithParam<int> {};

TEST_P(LocalMatrixProperty, RandomPatternsRespectTheLemmas) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int k = rng.uniform_int(1, 4);
  LocalPattern pat;
  for (int j = 0; j < k; ++j) {
    pat.lefts.push_back(rng.uniform_int(1, 3));
    pat.rights.push_back(rng.uniform_int(1, 3));
  }
  const double lam = 0.25 + 0.5 * rng.uniform01();
  const int h = k + rng.uniform_int(1, 4);

  // Lemma 4.3: exact norm below the analytic bound.
  const double bound = local_norm_bound(pat, lam);
  const double exact = local_norm_exact(pat, h, lam);
  EXPECT_LE(exact, bound + 1e-9);

  // Lemma 4.2 inequality for Nx and Ox.
  const auto e = lemma42_semi_eigenvector(pat, h, lam);
  const auto ne = nx_matrix(pat, h, lam).mul(e);
  const auto oe = ox_matrix(pat, h, lam).mul(e);
  const double mu_n = lam * linalg::delay_polynomial(pat.right_total(), lam);
  const double mu_o = lam * linalg::delay_polynomial(pat.left_total(), lam);
  for (int i = 0; i < h; ++i) {
    EXPECT_LE(ne[static_cast<std::size_t>(i)],
              mu_n * e[static_cast<std::size_t>(i)] + 1e-10);
    EXPECT_LE(oe[static_cast<std::size_t>(i)],
              mu_o * e[static_cast<std::size_t>(i)] + 1e-10);
  }

  // ‖Mx‖² = ρ(Ox·Nx).
  const auto prod = ox_matrix(pat, h, lam).multiply(nx_matrix(pat, h, lam));
  EXPECT_NEAR(exact * exact, linalg::spectral_radius_nonnegative(prod).value, 1e-6);

  // The pattern's bound never exceeds the period-s general bound.
  EXPECT_LE(bound, norm_bound_function(lam, pat.period(), Duplex::kHalf) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomPatterns, LocalMatrixProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace sysgo::core
