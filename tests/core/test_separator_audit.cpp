#include <gtest/gtest.h>

#include "core/audit.hpp"
#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "separator/separator.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/butterfly.hpp"
#include "topology/classic.hpp"
#include "topology/topology.hpp"

namespace sysgo::core {
namespace {

using protocol::Mode;

TEST(SeparatorAudit, StrongerThanPlainAuditOnPaths) {
  // P_n: endpoints 0 and n-1 are singleton "sets" at distance n-1; the
  // separator certificate captures the linear diameter term the plain
  // Theorem 4.1 audit cannot see.
  const int n = 32;
  const auto sched = protocol::path_schedule(n, Mode::kHalfDuplex);
  const auto plain = audit_schedule(sched);
  const auto refined = audit_schedule_with_separator(sched, n - 1, 1);
  EXPECT_GT(refined.round_lower_bound, plain.round_lower_bound);
  EXPECT_GE(refined.round_lower_bound, n - 1);
  // And still below the measured time.
  const int measured = simulator::gossip_time(sched, 20 * n);
  ASSERT_GT(measured, 0);
  EXPECT_LE(refined.round_lower_bound, measured);
}

TEST(SeparatorAudit, ButterflySeparatorCertificate) {
  const int d = 2, D = 3;
  const auto g = topology::make_family(topology::Family::kButterfly, d, D);
  const auto sep = separator::build_separator(topology::Family::kButterfly, d, D);
  const auto chk = separator::verify_separator(g, sep);
  ASSERT_EQ(chk.min_distance, 2 * D);

  const auto sched = protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);
  const auto refined = audit_schedule_with_separator(
      sched, chk.min_distance, std::min(chk.size1, chk.size2));
  const auto plain = audit_schedule(sched);
  EXPECT_GE(refined.round_lower_bound, plain.round_lower_bound);

  const int measured = simulator::gossip_time(sched, 100000);
  ASSERT_GT(measured, 0);
  EXPECT_LE(refined.round_lower_bound, measured);
}

TEST(SeparatorAudit, MonotoneInDistanceAndSize) {
  const auto sched = protocol::cycle_schedule(16, Mode::kHalfDuplex);
  const int base = audit_schedule_with_separator(sched, 4, 4).round_lower_bound;
  EXPECT_GE(audit_schedule_with_separator(sched, 8, 4).round_lower_bound, base);
  EXPECT_GE(audit_schedule_with_separator(sched, 4, 8).round_lower_bound, base);
}

TEST(SeparatorAudit, DistanceOneReducesTowardPlainForm) {
  // distance = 1 removes the (d-1)·log(1/F) credit entirely.
  const auto sched = protocol::cycle_schedule(8, Mode::kHalfDuplex);
  const auto res = audit_schedule_with_separator(sched, 1, 4);
  EXPECT_GT(res.round_lower_bound, 0);
  const int measured = simulator::gossip_time(sched, 1000);
  EXPECT_LE(res.round_lower_bound, measured);
}

TEST(SeparatorAudit, RejectsBadInputs) {
  const auto sched = protocol::path_schedule(4, Mode::kHalfDuplex);
  EXPECT_THROW((void)audit_schedule_with_separator(sched, 0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)audit_schedule_with_separator(sched, 3, 0),
               std::invalid_argument);
}

TEST(SeparatorAudit, NonRelayingScheduleYieldsNoCertificate) {
  protocol::SystolicSchedule sched;
  sched.n = 4;
  sched.mode = Mode::kHalfDuplex;
  sched.period = {{{{1, 0}}}, {{{2, 3}}}};
  const auto res = audit_schedule_with_separator(sched, 3, 2);
  EXPECT_EQ(res.round_lower_bound, 0);
}

}  // namespace
}  // namespace sysgo::core
