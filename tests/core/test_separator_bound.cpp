#include "core/separator_bound.hpp"

#include <gtest/gtest.h>

#include "core/tables.hpp"

namespace sysgo::core {
namespace {

using topology::Family;

// The intro's quoted comparisons with half-duplex upper bounds (s = 4).
TEST(SeparatorBound, PaperQuotedSystolicValues) {
  EXPECT_NEAR(separator_bound(Family::kWrappedButterfly, 2, 4, Duplex::kHalf).e,
              2.0218, 5e-4);
  EXPECT_NEAR(separator_bound(Family::kDeBruijn, 2, 4, Duplex::kHalf).e,
              1.8133, 5e-4);
}

// Section 1's non-systolic improvements.
TEST(SeparatorBound, PaperQuotedNonSystolicValues) {
  EXPECT_NEAR(
      separator_bound(Family::kWrappedButterfly, 2, kUnboundedPeriod, Duplex::kHalf).e,
      1.9750, 5e-4);
  EXPECT_NEAR(
      separator_bound(Family::kDeBruijn, 2, kUnboundedPeriod, Duplex::kHalf).e,
      1.5876, 5e-4);
}

TEST(SeparatorBound, NeverBelowGeneralBound) {
  // α·l = 1 for all Lemma 3.1 families, so the boundary λ* recovers e(s).
  for (const auto& [family, d] : paper_family_list())
    for (int s : {3, 4, 6, 8, kUnboundedPeriod}) {
      const double gen = e_general(s, Duplex::kHalf);
      const double sep = separator_bound(family, d, s, Duplex::kHalf).e;
      EXPECT_GE(sep, gen - 1e-9)
          << topology::family_name(family, d) << " s=" << s;
    }
}

TEST(SeparatorBound, MaximizerWithinFeasibleRegion) {
  for (int s : {4, 8, kUnboundedPeriod}) {
    const auto res = separator_bound(Family::kDeBruijn, 2, s, Duplex::kHalf);
    EXPECT_GT(res.lambda, 0.0);
    EXPECT_LE(norm_bound_function(res.lambda, s, Duplex::kHalf), 1.0 + 1e-9);
  }
}

TEST(SeparatorBound, LargerEllWinsMore) {
  // With α·l = 1 fixed, a larger l (smaller α) exploits distance more:
  // BF(2) (l = 2) must beat DB(2) (l = 1) at s = ∞.
  const double bf =
      separator_bound(Family::kButterfly, 2, kUnboundedPeriod, Duplex::kHalf).e;
  const double db =
      separator_bound(Family::kDeBruijn, 2, kUnboundedPeriod, Duplex::kHalf).e;
  EXPECT_GT(bf, db);
}

TEST(SeparatorBound, HigherDegreeWeakensBound) {
  // log d grows -> l shrinks -> bound approaches the general one.
  for (int s : {4, kUnboundedPeriod}) {
    const double d2 = separator_bound(Family::kDeBruijn, 2, s, Duplex::kHalf).e;
    const double d3 = separator_bound(Family::kDeBruijn, 3, s, Duplex::kHalf).e;
    EXPECT_GE(d2, d3 - 1e-9);
  }
}

TEST(SeparatorBound, DecreasesInS) {
  double prev = separator_bound(Family::kWrappedButterfly, 2, 3, Duplex::kHalf).e;
  for (int s = 4; s <= 10; ++s) {
    const double cur = separator_bound(Family::kWrappedButterfly, 2, s, Duplex::kHalf).e;
    EXPECT_LE(cur, prev + 1e-9) << "s=" << s;
    prev = cur;
  }
}

TEST(SeparatorBound, KautzMatchesDeBruijn) {
  // Identical (α, l) parameters -> identical bounds.
  for (int s : {3, 5, kUnboundedPeriod})
    EXPECT_NEAR(separator_bound(Family::kKautz, 2, s, Duplex::kHalf).e,
                separator_bound(Family::kDeBruijn, 2, s, Duplex::kHalf).e, 1e-9);
}

TEST(SeparatorBound, FullDuplexVariantBelowHalfDuplex) {
  for (const auto& [family, d] : paper_family_list())
    EXPECT_LE(separator_bound(family, d, 4, Duplex::kFull).e,
              separator_bound(family, d, 4, Duplex::kHalf).e + 1e-9);
}

TEST(SeparatorBound, FullDuplexNeverBelowItsGeneralBound) {
  for (int s : {3, 4, 8, kUnboundedPeriod})
    EXPECT_GE(separator_bound(Family::kButterfly, 2, s, Duplex::kFull).e,
              e_general(s, Duplex::kFull) - 1e-9);
}

TEST(SeparatorBound, RejectsBadParameters) {
  EXPECT_THROW((void)separator_bound(0.0, 1.0, 4, Duplex::kHalf),
               std::invalid_argument);
  EXPECT_THROW((void)separator_bound(1.0, -1.0, 4, Duplex::kHalf),
               std::invalid_argument);
}

TEST(SeparatorBound, DiameterCoefficients) {
  EXPECT_DOUBLE_EQ(diameter_coefficient(Family::kButterfly, 2), 2.0);
  EXPECT_DOUBLE_EQ(diameter_coefficient(Family::kWrappedButterflyDirected, 2), 2.0);
  EXPECT_DOUBLE_EQ(diameter_coefficient(Family::kWrappedButterfly, 2), 1.5);
  EXPECT_DOUBLE_EQ(diameter_coefficient(Family::kDeBruijn, 2), 1.0);
  EXPECT_DOUBLE_EQ(diameter_coefficient(Family::kKautz, 2), 1.0);
}

}  // namespace
}  // namespace sysgo::core
