#include "core/tables.hpp"

#include <gtest/gtest.h>

#include "core/separator_bound.hpp"

namespace sysgo::core {
namespace {

TEST(Tables, Fig4PaperRowOrderAndValues) {
  const auto rows = fig4_rows_paper();
  ASSERT_EQ(rows.size(), 7u);
  EXPECT_EQ(rows[0].s, 3);
  EXPECT_EQ(rows.back().s, kUnboundedPeriod);
  // The paper truncates to four decimals; allow one unit in the last digit.
  const double expected[] = {2.8808, 1.8133, 1.6502, 1.5363, 1.5021, 1.4721, 1.4404};
  for (std::size_t i = 0; i < rows.size(); ++i)
    EXPECT_NEAR(rows[i].e, expected[i], 1.01e-4) << "row " << i;
}

TEST(Tables, Fig4LambdaConsistent) {
  for (const auto& row : fig4_rows({3, 5, 8})) {
    EXPECT_NEAR(norm_bound_function(row.lambda, row.s, Duplex::kHalf), 1.0, 1e-9);
    EXPECT_NEAR(row.e, e_coefficient(row.lambda), 1e-12);
  }
}

TEST(Tables, PaperFamilyListCoversAllFamiliesTwice) {
  const auto list = paper_family_list();
  EXPECT_EQ(list.size(), 14u);  // 7 families x degrees {2, 3}
}

TEST(Tables, Fig5RowsAlignWithPeriods) {
  const std::vector<int> periods{3, 4, 8};
  const auto rows = fig5_rows(periods);
  ASSERT_EQ(rows.size(), 14u);
  for (const auto& row : rows) {
    ASSERT_EQ(row.e_by_period.size(), periods.size());
    // α·l = 1 holds for all Lemma 3.1 families.
    EXPECT_NEAR(row.alpha * row.ell, 1.0, 1e-12);
    // Bounds decrease (weakly) with the period.
    EXPECT_GE(row.e_by_period[0], row.e_by_period[1] - 1e-9);
    EXPECT_GE(row.e_by_period[1], row.e_by_period[2] - 1e-9);
    // And never fall below the general bound.
    for (std::size_t i = 0; i < periods.size(); ++i)
      EXPECT_GE(row.e_by_period[i], e_general(periods[i], Duplex::kHalf) - 1e-9);
  }
}

TEST(Tables, Fig5QuotedEntries) {
  const auto rows = fig5_rows({4});
  for (const auto& row : rows) {
    if (row.family == topology::Family::kWrappedButterfly && row.d == 2) {
      EXPECT_NEAR(row.e_by_period[0], 2.0218, 5e-4);
    }
    if (row.family == topology::Family::kDeBruijn && row.d == 2) {
      EXPECT_NEAR(row.e_by_period[0], 1.8133, 5e-4);
    }
  }
}

TEST(Tables, Fig6BestIsMaxOfMatrixAndDiameter) {
  for (const auto& row : fig6_rows()) {
    EXPECT_DOUBLE_EQ(row.e_best, std::max(row.e_matrix, row.e_diameter));
    EXPECT_GE(row.e_matrix, e_general(kUnboundedPeriod, Duplex::kHalf) - 1e-9);
  }
}

TEST(Tables, Fig6QuotedEntries) {
  for (const auto& row : fig6_rows()) {
    if (row.family == topology::Family::kWrappedButterfly && row.d == 2) {
      EXPECT_NEAR(row.e_matrix, 1.9750, 5e-4);
    }
    if (row.family == topology::Family::kDeBruijn && row.d == 2) {
      EXPECT_NEAR(row.e_matrix, 1.5876, 5e-4);
    }
  }
}

TEST(Tables, Fig8FullDuplexRowsDominateGeneral) {
  const std::vector<int> periods{3, 4, 6, kUnboundedPeriod};
  const auto rows = fig8_rows(periods);
  for (const auto& row : rows)
    for (std::size_t i = 0; i < periods.size(); ++i) {
      EXPECT_GE(row.e_by_period[i], e_general(periods[i], Duplex::kFull) - 1e-9);
      // Full-duplex bounds are below the corresponding half-duplex ones.
      const auto hd = separator_bound(row.family, row.d, periods[i], Duplex::kHalf);
      EXPECT_LE(row.e_by_period[i], hd.e + 1e-9);
    }
}

TEST(Tables, PeriodLabels) {
  EXPECT_EQ(period_label(4), "4");
  EXPECT_EQ(period_label(kUnboundedPeriod), "inf");
}

}  // namespace
}  // namespace sysgo::core
