#include "engine/figures.hpp"

#include <gtest/gtest.h>

#include "engine/sweep.hpp"
#include "io/csv.hpp"

namespace sysgo::engine {
namespace {

// The engine-reproduced paper tables must be byte-identical to the direct
// io:: generators — `sysgo sweep fig5|fig6` mirrors `sysgo table fig5|fig6`.
TEST(Figures, Fig5CsvByteIdenticalToDirectGenerator) {
  SweepRunner runner;
  EXPECT_EQ(fig5_csv(runner), io::fig5_csv());
}

TEST(Figures, Fig6CsvByteIdenticalToDirectGenerator) {
  SweepRunner runner;
  EXPECT_EQ(fig6_csv(runner), io::fig6_csv());
}

TEST(Figures, Fig5SpecExpandsToFourteenRows) {
  const auto jobs = fig5_spec().expand();
  EXPECT_EQ(jobs.size(), 14u * 6);  // 7 families × d∈{2,3} × s=3..8
  for (const auto& job : jobs) EXPECT_EQ(job.task, Task::kBound);
}

TEST(Figures, Fig6SpecPairsMatrixAndDiameter) {
  const auto jobs = fig6_spec().expand();
  ASSERT_EQ(jobs.size(), 14u * 2);
  for (std::size_t i = 0; i < jobs.size(); i += 2) {
    EXPECT_EQ(jobs[i].task, Task::kBound);
    EXPECT_EQ(jobs[i].s, core::kUnboundedPeriod);
    EXPECT_EQ(jobs[i + 1].task, Task::kDiameterBound);
    EXPECT_EQ(jobs[i].key, jobs[i + 1].key);
  }
}

}  // namespace
}  // namespace sysgo::engine
