#include "engine/scenario.hpp"

#include <gtest/gtest.h>

namespace sysgo::engine {
namespace {

using topology::Family;
using protocol::Mode;

TEST(Scenario, TokensRoundTrip) {
  for (Family f : registry_families())
    EXPECT_EQ(parse_family_token(family_token(f)), f);
  for (Task t : {Task::kBound, Task::kDiameterBound, Task::kSimulate,
                 Task::kAudit, Task::kSeparatorCheck, Task::kSolveGossip,
                 Task::kSolveBroadcast, Task::kSynthesize})
    EXPECT_EQ(parse_task_name(task_name(t)), t);
  for (Mode m : {Mode::kHalfDuplex, Mode::kFullDuplex})
    EXPECT_EQ(parse_mode_name(mode_name(m)), m);
  EXPECT_THROW((void)parse_family_token("nope"), std::invalid_argument);
  EXPECT_THROW((void)parse_task_name("nope"), std::invalid_argument);
  EXPECT_THROW((void)parse_mode_name("nope"), std::invalid_argument);
}

TEST(Scenario, RegistryFamiliesExtendPaperFamilies) {
  const auto paper = all_families();
  const auto all = registry_families();
  ASSERT_EQ(paper.size(), 7u);
  ASSERT_EQ(all.size(), 15u);
  for (std::size_t i = 0; i < paper.size(); ++i) EXPECT_EQ(all[i], paper[i]);
}

TEST(Scenario, SolveTasksNeedDimension) {
  EXPECT_TRUE(task_needs_dimension(Task::kSolveGossip));
  EXPECT_TRUE(task_needs_dimension(Task::kSolveBroadcast));
  EXPECT_TRUE(task_needs_dimension(Task::kSynthesize));
  EXPECT_FALSE(task_needs_dimension(Task::kBound));
}

TEST(Scenario, GridExpansionCount) {
  ScenarioSpec spec;
  spec.families = {Family::kDeBruijn, Family::kKautz};
  spec.degrees = {2, 3};
  spec.dimensions = {3, 4, 5};
  spec.modes = {Mode::kHalfDuplex};
  spec.periods = {3, 4};
  spec.tasks = {Task::kBound, Task::kSimulate, Task::kAudit};
  const auto jobs = spec.expand();
  // kBound: 2 families × 2 degrees × 1 mode × 2 periods (D-independent),
  // kSimulate/kAudit: 2 × 2 × 3 dimensions × 1 mode each.
  EXPECT_EQ(jobs.size(), 2u * 2 * 2 + 2u * 2 * 3 * 2);
}

TEST(Scenario, ExpansionOrderIsFamilyMajorTasksInSpecOrder) {
  ScenarioSpec spec;
  spec.families = {Family::kDeBruijn, Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {4};
  spec.periods = {3, 4};
  spec.tasks = {Task::kBound, Task::kSimulate};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 6u);
  // DB: bound s=3, bound s=4, simulate; then Kautz likewise.
  EXPECT_EQ(jobs[0].key.family, Family::kDeBruijn);
  EXPECT_EQ(jobs[0].task, Task::kBound);
  EXPECT_EQ(jobs[0].s, 3);
  EXPECT_EQ(jobs[0].key.D, 0);  // asymptotic jobs are D-normalized
  EXPECT_EQ(jobs[1].task, Task::kBound);
  EXPECT_EQ(jobs[1].s, 4);
  EXPECT_EQ(jobs[2].task, Task::kSimulate);
  EXPECT_EQ(jobs[2].key.D, 4);
  EXPECT_EQ(jobs[3].key.family, Family::kKautz);
  EXPECT_EQ(jobs[3].task, Task::kBound);
  EXPECT_EQ(jobs[5].task, Task::kSimulate);
}

TEST(Scenario, AsymptoticTasksDedupAcrossDimensions) {
  ScenarioSpec spec;
  spec.families = {Family::kDeBruijn};
  spec.degrees = {2};
  spec.dimensions = {3, 4, 5, 6};
  spec.periods = {4};
  spec.tasks = {Task::kBound, Task::kDiameterBound};
  const auto jobs = spec.expand();
  EXPECT_EQ(jobs.size(), 2u);  // once, not once per dimension
}

TEST(Scenario, EmptyDimensionsSkipsConcreteTasks) {
  ScenarioSpec spec;
  spec.families = {Family::kDeBruijn};
  spec.degrees = {2};
  spec.periods = {4};
  spec.tasks = {Task::kBound, Task::kSimulate, Task::kAudit};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].task, Task::kBound);
}

TEST(Scenario, ExplicitKeysReplaceGrid) {
  ScenarioSpec spec;
  spec.families = all_families();  // ignored
  spec.degrees = {2, 3};           // ignored
  spec.explicit_keys = {{Family::kKautz, 2, 5, Mode::kHalfDuplex},
                        {Family::kDeBruijn, 2, 6, Mode::kHalfDuplex}};
  spec.tasks = {Task::kSimulate};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].key.family, Family::kKautz);
  EXPECT_EQ(jobs[0].key.D, 5);
  EXPECT_EQ(jobs[1].key.family, Family::kDeBruijn);
}

TEST(Scenario, ExplicitKeysKeepUniformPerKeyStride) {
  // Two members of the same family: asymptotic tasks are NOT deduped for
  // explicit keys, so every key yields the same task-shaped record group.
  ScenarioSpec spec;
  spec.explicit_keys = {{Family::kDeBruijn, 2, 4, Mode::kHalfDuplex},
                        {Family::kDeBruijn, 2, 6, Mode::kHalfDuplex}};
  spec.tasks = {Task::kSeparatorCheck, Task::kBound};
  spec.periods = {4};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 4u);  // (separator, bound) per key
  EXPECT_EQ(jobs[0].task, Task::kSeparatorCheck);
  EXPECT_EQ(jobs[1].task, Task::kBound);
  EXPECT_EQ(jobs[2].task, Task::kSeparatorCheck);
  EXPECT_EQ(jobs[2].key.D, 6);
  EXPECT_EQ(jobs[3].task, Task::kBound);
}

TEST(Scenario, DuplexOfModeMatchesCore) {
  EXPECT_EQ(duplex_of(Mode::kHalfDuplex), core::Duplex::kHalf);
  EXPECT_EQ(duplex_of(Mode::kFullDuplex), core::Duplex::kFull);
}

TEST(Scenario, SameResultIgnoresTiming) {
  SweepRecord a;
  a.e = 1.5;
  SweepRecord b = a;
  b.millis = 99.0;
  EXPECT_TRUE(same_result(a, b));
  b.e = 1.6;
  EXPECT_FALSE(same_result(a, b));
}

}  // namespace
}  // namespace sysgo::engine
