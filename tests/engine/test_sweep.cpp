#include "engine/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/separator_bound.hpp"
#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "search/solver.hpp"
#include "simulator/gossip_sim.hpp"
#include "synth/synthesizer.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"

namespace sysgo::engine {
namespace {

using topology::Family;
using protocol::Mode;

ScenarioSpec small_grid() {
  ScenarioSpec spec;
  spec.families = {Family::kDeBruijn, Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {4, 5};
  spec.periods = {4};
  spec.tasks = {Task::kBound, Task::kSimulate, Task::kAudit};
  return spec;
}

TEST(Sweep, RecordsMatchDirectComputation) {
  SweepRunner runner;
  const auto records = runner.run(small_grid());
  ASSERT_EQ(records.size(), 2u + 2u * 2 * 2);

  // The kBound record reproduces separator_bound directly.
  const auto direct =
      core::separator_bound(Family::kDeBruijn, 2, 4, core::Duplex::kHalf);
  EXPECT_EQ(records[0].task, Task::kBound);
  EXPECT_DOUBLE_EQ(records[0].e, direct.e);
  EXPECT_DOUBLE_EQ(records[0].lambda, direct.lambda);

  // The simulate record reproduces gossip_time on the same schedule.
  const auto sched = protocol::edge_coloring_schedule(
      topology::de_bruijn(2, 4), Mode::kHalfDuplex);
  const auto* simulate = &records[1];
  ASSERT_EQ(simulate->task, Task::kSimulate);
  EXPECT_EQ(simulate->n, sched.n);
  EXPECT_EQ(simulate->s, sched.period_length());
  EXPECT_EQ(simulate->rounds, simulator::gossip_time(sched, 1 << 20));

  // The audit record reproduces audit_schedule, and every job was timed.
  const auto audit = core::audit_schedule(sched);
  EXPECT_EQ(records[2].task, Task::kAudit);
  EXPECT_DOUBLE_EQ(records[2].lambda, audit.lambda_star);
  EXPECT_EQ(records[2].rounds, audit.round_lower_bound);
  for (const auto& r : records) EXPECT_GE(r.millis, 0.0);
}

TEST(Sweep, CacheHitsOnRepeatedScenarioKeys) {
  SweepRunner runner;
  const auto records = runner.run(small_grid());
  ASSERT_FALSE(records.empty());
  const auto stats = runner.cache_stats();
  // 4 concrete keys, each needed by simulate and audit: 4 misses, 4 hits.
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 4u);
}

TEST(Sweep, CacheDisabledStillProducesSameRecords) {
  SweepRunner cached{SweepOptions{}};
  SweepOptions no_cache;
  no_cache.use_cache = false;
  SweepRunner uncached{no_cache};
  const auto a = cached.run(small_grid());
  const auto b = uncached.run(small_grid());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_TRUE(same_result(a[i], b[i])) << "record " << i;
  EXPECT_EQ(uncached.cache_stats().misses, 0u);
  EXPECT_EQ(uncached.cache_stats().hits, 0u);
}

// Acceptance sweep: all seven registry families at d=2, D <= 9 — a threaded
// run must produce records identical to a single-threaded run.
TEST(Sweep, ThreadedMatchesSerialAcrossAllFamilies) {
  ScenarioSpec spec;
  spec.families = all_families();
  spec.degrees = {2};
  spec.dimensions = {3, 4, 5, 6, 7, 8, 9};
  spec.periods = {4, core::kUnboundedPeriod};
  spec.tasks = {Task::kBound, Task::kSimulate, Task::kAudit};

  SweepOptions serial;
  serial.threads = 1;
  SweepRunner serial_runner{serial};
  const auto expected = serial_runner.run(spec);

  for (unsigned threads : {0u, 4u}) {
    SweepOptions opts;
    opts.threads = threads;
    SweepRunner runner{opts};
    const auto got = runner.run(spec);
    ASSERT_EQ(got.size(), expected.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_TRUE(same_result(got[i], expected[i]))
          << "threads=" << threads << " record " << i;
  }
}

// Satellite: GossipOptions::parallel surfaced through ExecutionLimits —
// within-round threaded merges must reproduce the serial records exactly
// over the fig5 corpus (the paper's seven families).
TEST(Sweep, RoundThreadsProduceSameSimulateRecords) {
  ScenarioSpec spec;
  spec.families = all_families();
  spec.degrees = {2};
  spec.dimensions = {3, 4, 5, 6};
  spec.tasks = {Task::kSimulate, Task::kAudit};

  SweepRunner serial_runner;
  const auto expected = serial_runner.run(spec);

  ScenarioSpec threaded = spec;
  threaded.limits.simulate_parallel_rounds = true;
  SweepRunner threaded_runner;
  const auto got = threaded_runner.run(threaded);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_TRUE(same_result(got[i], expected[i])) << "record " << i;
}

TEST(Sweep, OnRecordSeesEveryIndexOnce) {
  std::set<std::size_t> seen;
  std::mutex m;
  SweepOptions opts;
  opts.threads = 4;
  opts.on_record = [&](std::size_t i, const SweepRecord&) {
    std::lock_guard<std::mutex> lock(m);
    EXPECT_TRUE(seen.insert(i).second);
  };
  SweepRunner runner{opts};
  const auto records = runner.run(small_grid());
  EXPECT_EQ(seen.size(), records.size());
}

TEST(Sweep, SolveTasksMatchDirectSearch) {
  ScenarioSpec spec;
  spec.families = {Family::kCycle, Family::kKnodel};
  spec.degrees = {3};
  spec.dimensions = {6, 8};
  spec.modes = {Mode::kFullDuplex};
  spec.tasks = {Task::kSolveGossip, Task::kSolveBroadcast};
  SweepRunner runner;
  const auto records = runner.run(spec);
  ASSERT_EQ(records.size(), 8u);

  // cycle D=6 gossip record reproduces search::solve directly.
  search::SolveOptions so;
  so.mode = Mode::kFullDuplex;
  so.threads = 1;
  const auto direct = search::solve(topology::cycle(6), so);
  EXPECT_EQ(records[0].task, Task::kSolveGossip);
  EXPECT_EQ(records[0].n, 6);
  EXPECT_EQ(records[0].rounds, direct.rounds);
  EXPECT_EQ(records[0].states, static_cast<std::int64_t>(direct.states_explored));
  EXPECT_EQ(records[0].group, static_cast<std::int64_t>(direct.group_order));
  EXPECT_EQ(records[0].budget, 0);

  for (const auto& r : records) {
    // W(3,8) gossips and broadcasts in the optimal ceil(log2 8) = 3
    // full-duplex rounds; broadcast canonicalizes under the source
    // stabilizer (order 6), gossip under the full group (order 48).
    if (r.key.family == Family::kKnodel && r.key.D == 8) {
      EXPECT_EQ(r.rounds, 3);
      EXPECT_EQ(r.group, r.task == Task::kSolveGossip ? 48 : 6);
    }
    // W(3,6) is invalid (delta > floor(log2 6)): sentinel record.
    if (r.key.family == Family::kKnodel && r.key.D == 6) {
      EXPECT_EQ(r.n, 0);
      EXPECT_EQ(r.rounds, -1);
      EXPECT_EQ(r.states, -1);
    }
  }
}

TEST(Sweep, SolveTasksEmitSentinelForOversizedMembers) {
  ScenarioSpec spec;
  spec.families = {Family::kHypercube, Family::kKnodel};
  spec.degrees = {3};
  spec.dimensions = {4, 7};  // Q4 has n = 16 > 12; Knödel needs even n
  spec.modes = {Mode::kHalfDuplex};
  spec.tasks = {Task::kSolveBroadcast};
  SweepRunner runner;
  const auto records = runner.run(spec);
  ASSERT_EQ(records.size(), 4u);
  for (const auto& r : records) {
    if (r.key.family == Family::kHypercube && r.key.D == 4) {
      EXPECT_EQ(r.n, 16);       // sized in closed form, too large to solve
      EXPECT_EQ(r.rounds, -1);
      EXPECT_EQ(r.states, -1);
      EXPECT_EQ(r.budget, -1);  // not a budget exhaustion
    }
    if (r.key.family == Family::kKnodel && r.key.D == 7) {
      EXPECT_EQ(r.n, 0);        // construction rejected (odd n)
      EXPECT_EQ(r.rounds, -1);
    }
    if (r.key.family == Family::kHypercube && r.key.D == 7) {
      EXPECT_EQ(r.n, 128);
      EXPECT_EQ(r.rounds, -1);
    }
    if (r.key.family == Family::kKnodel && r.key.D == 4) {
      EXPECT_EQ(r.n, 0);        // W(3,4) invalid: delta > floor(log2 4)
      EXPECT_EQ(r.rounds, -1);
    }
  }
}

TEST(Sweep, SolveSweepThreadedMatchesSerial) {
  ScenarioSpec spec;
  spec.families = {Family::kCycle};
  spec.degrees = {2};
  spec.dimensions = {4, 5, 6, 7, 8, 9};
  spec.modes = {Mode::kFullDuplex, Mode::kHalfDuplex};
  spec.tasks = {Task::kSolveGossip, Task::kSolveBroadcast};
  // C7..C9 half-duplex exhaust this budget identically at every thread count.
  spec.limits.solve_max_states = 500'000;

  SweepOptions serial;
  serial.threads = 1;
  SweepRunner serial_runner{serial};
  const auto expected = serial_runner.run(spec);

  SweepOptions threaded;
  threaded.threads = 3;
  SweepRunner threaded_runner{threaded};
  const auto got = threaded_runner.run(spec);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_TRUE(same_result(got[i], expected[i])) << "record " << i;

  // Inner solver parallelism must not change results either.
  ScenarioSpec inner = spec;
  inner.limits.solve_threads = 3;
  SweepRunner inner_runner{serial};
  const auto inner_records = inner_runner.run(inner);
  ASSERT_EQ(inner_records.size(), expected.size());
  for (std::size_t i = 0; i < inner_records.size(); ++i)
    EXPECT_TRUE(same_result(inner_records[i], expected[i])) << "record " << i;
}

TEST(Sweep, RunCasesMatchesDirectSimulationAndAudit) {
  std::vector<ScheduleCase> cases;
  cases.push_back({"hypercube(4) fd",
                   protocol::hypercube_schedule(4, Mode::kFullDuplex), 200});
  cases.push_back({"DB(2,4) coloring hd",
                   protocol::edge_coloring_schedule(topology::de_bruijn(2, 4),
                                                    Mode::kHalfDuplex),
                   4000});
  const auto records = run_cases(cases);
  ASSERT_EQ(records.size(), 2u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    EXPECT_EQ(r.name, cases[i].name);
    EXPECT_EQ(r.n, cases[i].schedule.n);
    EXPECT_EQ(r.s, cases[i].schedule.period_length());
    EXPECT_EQ(r.measured,
              simulator::gossip_time(cases[i].schedule, cases[i].max_rounds));
    const auto audit = core::audit_schedule(cases[i].schedule);
    EXPECT_EQ(r.audit.round_lower_bound, audit.round_lower_bound);
    EXPECT_DOUBLE_EQ(r.audit.lambda_star, audit.lambda_star);
    // Paper shape: the certified bound never exceeds the measured time.
    EXPECT_GT(r.measured, 0);
    EXPECT_LE(r.audit.round_lower_bound, r.measured);
  }
}

TEST(Sweep, SynthesizeTaskMatchesDirectSynthesis) {
  ScenarioSpec spec;
  spec.families = {Family::kCycle};
  spec.degrees = {2};
  spec.dimensions = {8};
  spec.tasks = {Task::kSynthesize};
  spec.limits.synth_restarts = 3;
  spec.limits.synth_iterations = 400;
  spec.limits.seed = 99;
  SweepRunner runner;
  const auto records = runner.run(spec);
  ASSERT_EQ(records.size(), 1u);
  const auto& r = records[0];
  EXPECT_EQ(r.task, Task::kSynthesize);
  EXPECT_EQ(r.n, 8);
  EXPECT_EQ(r.restarts, 3);
  EXPECT_GE(r.accepted, 0);
  EXPECT_GT(r.rounds, 0);
  EXPECT_GT(r.s, 0);

  synth::SynthOptions so;
  so.mode = Mode::kHalfDuplex;
  so.objective.max_rounds = spec.limits.simulate_max_rounds;
  so.restarts = 3;
  so.iterations = 400;
  so.seed = 99;
  so.threads = 1;
  const auto direct = synth::synthesize(topology::cycle(8), so);
  EXPECT_EQ(r.rounds, direct.objective.rounds);
  EXPECT_EQ(r.s, direct.schedule.period_length());
  EXPECT_DOUBLE_EQ(r.objective, direct.objective.score());
  EXPECT_EQ(r.accepted, direct.moves_accepted);
}

TEST(Sweep, SynthesizeSweepThreadedMatchesSerial) {
  ScenarioSpec spec;
  spec.families = {Family::kCycle, Family::kKnodel};
  spec.degrees = {2};
  spec.dimensions = {6, 8};
  spec.modes = {Mode::kHalfDuplex, Mode::kFullDuplex};
  spec.tasks = {Task::kSynthesize};
  spec.limits.synth_restarts = 2;
  spec.limits.synth_iterations = 250;
  spec.limits.seed = 5;

  SweepOptions serial;
  serial.threads = 1;
  SweepRunner serial_runner{serial};
  const auto expected = serial_runner.run(spec);

  SweepOptions threaded;
  threaded.threads = 3;
  SweepRunner threaded_runner{threaded};
  const auto got = threaded_runner.run(spec);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_TRUE(same_result(got[i], expected[i])) << "record " << i;

  // Inner restart parallelism must not change results either.
  ScenarioSpec inner = spec;
  inner.limits.synth_threads = 3;
  SweepRunner inner_runner{serial};
  const auto inner_records = inner_runner.run(inner);
  ASSERT_EQ(inner_records.size(), expected.size());
  for (std::size_t i = 0; i < inner_records.size(); ++i)
    EXPECT_TRUE(same_result(inner_records[i], expected[i])) << "record " << i;
}

TEST(Sweep, SynthesizeEmitsSentinelForUnbuildableMembers) {
  ScenarioSpec spec;
  spec.families = {Family::kRandomRegular};
  spec.degrees = {3};
  spec.dimensions = {4, 5, 6};  // D=5: odd n*d, unbuildable
  spec.tasks = {Task::kSynthesize};
  spec.limits.synth_restarts = 2;
  spec.limits.synth_iterations = 100;
  SweepRunner runner;
  const auto records = runner.run(spec);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_GT(records[0].rounds, 0);
  EXPECT_EQ(records[1].n, 0);  // sentinel, sweep not aborted
  EXPECT_EQ(records[1].rounds, -1);
  EXPECT_EQ(records[1].restarts, -1);
  EXPECT_GT(records[2].rounds, 0);
}

TEST(Sweep, ArtifactCacheKeysOnSeed) {
  // A runner reused across runs with different seeds must rebuild random
  // members, not serve the first seed's graphs.
  ScenarioSpec spec;
  spec.families = {Family::kRandomGnp};
  spec.degrees = {3};
  spec.dimensions = {14};
  spec.tasks = {Task::kSimulate};
  spec.limits.seed = 1;
  SweepRunner reused;
  const auto first = reused.run(spec);
  spec.limits.seed = 2;
  const auto second = reused.run(spec);
  SweepRunner fresh;
  const auto expected = fresh.run(spec);
  ASSERT_EQ(second.size(), 1u);
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_TRUE(same_result(second[0], expected[0]));
  EXPECT_EQ(reused.cache_stats().misses, 2u);  // one build per seed
  (void)first;
}

TEST(Sweep, RandomFamilyRecordsReproducibleFromSeed) {
  ScenarioSpec spec;
  spec.families = {Family::kRandomRegular, Family::kRandomGnp};
  spec.degrees = {3};
  spec.dimensions = {12};
  spec.tasks = {Task::kSimulate, Task::kAudit};
  spec.limits.seed = 31337;
  SweepRunner a, b;
  const auto first = a.run(spec);
  const auto second = b.run(spec);
  ASSERT_EQ(first.size(), 4u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(same_result(first[i], second[i])) << "record " << i;
    EXPECT_EQ(first[i].n, 12);
    EXPECT_GT(first[i].rounds, 0);
  }
}

}  // namespace
}  // namespace sysgo::engine
