#include "graph/coloring.hpp"

#include <gtest/gtest.h>

#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"

namespace sysgo::graph {
namespace {

TEST(Coloring, PathNeedsTwoColors) {
  const auto c = greedy_edge_coloring(topology::path(10));
  EXPECT_TRUE(is_proper_edge_coloring(c, 10));
  EXPECT_EQ(c.color_count, 2);
}

TEST(Coloring, SingleEdge) {
  const auto g = topology::path(2);
  const auto c = greedy_edge_coloring(g);
  EXPECT_EQ(c.color_count, 1);
  EXPECT_TRUE(is_proper_edge_coloring(c, 2));
}

TEST(Coloring, CompleteGraphProper) {
  const auto g = topology::complete(6);
  const auto c = greedy_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(c, 6));
  // Greedy uses at most 2Δ-1 colors.
  EXPECT_LE(c.color_count, 2 * 5 - 1);
  EXPECT_GE(c.color_count, 5);  // K6 needs at least Δ = 5
}

TEST(Coloring, HypercubeProper) {
  const auto g = topology::hypercube(4);
  const auto c = greedy_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(c, g.vertex_count()));
  EXPECT_LE(c.color_count, 2 * 4 - 1);
}

TEST(Coloring, DeBruijnProper) {
  const auto g = topology::de_bruijn(2, 5);
  const auto c = greedy_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(c, g.vertex_count()));
}

TEST(Coloring, EveryEdgeColored) {
  const auto g = topology::grid(4, 5);
  const auto c = greedy_edge_coloring(g);
  EXPECT_EQ(c.edges.size(), c.colors.size());
  EXPECT_EQ(c.edges.size(), g.undirected_edges().size());
  for (int col : c.colors) {
    EXPECT_GE(col, 0);
    EXPECT_LT(col, c.color_count);
  }
}

TEST(Coloring, ImproperColoringDetected) {
  EdgeColoring bad;
  bad.edges = {{0, 1}, {1, 2}};
  bad.colors = {0, 0};  // shares vertex 1
  bad.color_count = 1;
  EXPECT_FALSE(is_proper_edge_coloring(bad, 3));
}

TEST(Coloring, MismatchedSizesDetected) {
  EdgeColoring bad;
  bad.edges = {{0, 1}};
  bad.colors = {};
  EXPECT_FALSE(is_proper_edge_coloring(bad, 2));
}

}  // namespace
}  // namespace sysgo::graph
