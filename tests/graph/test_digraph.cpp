#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sysgo::graph {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g(0);
  g.finalize();
  EXPECT_EQ(g.vertex_count(), 0);
  EXPECT_EQ(g.arc_count(), 0u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Digraph, AddArcAndQuery) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.finalize();
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_TRUE(g.has_arc(1, 2));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_FALSE(g.has_arc(0, 2));
}

TEST(Digraph, AddArcOutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW(g.add_arc(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_arc(-1, 0), std::out_of_range);
}

TEST(Digraph, DuplicateArcsRemoved) {
  Digraph g(2);
  g.add_arc(0, 1);
  g.add_arc(0, 1);
  g.finalize();
  EXPECT_EQ(g.arc_count(), 1u);
}

TEST(Digraph, AddEdgeIsSymmetric) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.arc_count(), 2u);
}

TEST(Digraph, Degrees) {
  Digraph g(4);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.add_arc(0, 3);
  g.add_arc(1, 0);
  g.finalize();
  EXPECT_EQ(g.out_degree(0), 3);
  EXPECT_EQ(g.in_degree(0), 1);
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.max_out_degree(), 3);
}

TEST(Digraph, NeighborsSorted) {
  Digraph g(4);
  g.add_arc(0, 3);
  g.add_arc(0, 1);
  g.add_arc(0, 2);
  g.finalize();
  const auto nbrs = g.out_neighbors(0);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 1);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_EQ(nbrs[2], 3);
}

TEST(Digraph, ReverseFlipsArcs) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.finalize();
  const auto r = g.reverse();
  EXPECT_TRUE(r.has_arc(1, 0));
  EXPECT_TRUE(r.has_arc(2, 1));
  EXPECT_FALSE(r.has_arc(0, 1));
}

TEST(Digraph, SymmetricClosure) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.finalize();
  EXPECT_FALSE(g.is_symmetric());
  const auto s = g.symmetric_closure();
  EXPECT_TRUE(s.is_symmetric());
  EXPECT_EQ(s.arc_count(), 2u);
}

TEST(Digraph, UndirectedEdgesDeduplicatesAndDropsLoops) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 0);
  g.add_arc(1, 2);
  g.add_arc(2, 2);  // self-loop
  g.finalize();
  const auto edges = g.undirected_edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair{0, 1}));
  EXPECT_EQ(edges[1], (std::pair{1, 2}));
}

TEST(Digraph, ConstructorWithArcListFinalizes) {
  Digraph g(3, {{0, 1}, {1, 2}, {0, 1}});
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.arc_count(), 2u);
}

TEST(Digraph, MaxDegreeUndirected) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.finalize();
  EXPECT_EQ(g.max_degree_undirected(), 2);
}

}  // namespace
}  // namespace sysgo::graph
