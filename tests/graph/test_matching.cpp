#include "graph/matching.hpp"

#include <gtest/gtest.h>

namespace sysgo::graph {
namespace {

TEST(Matching, EmptyIsMatching) {
  EXPECT_TRUE(is_half_duplex_matching({}, 5));
  EXPECT_TRUE(is_full_duplex_matching({}, 5));
}

TEST(Matching, DisjointArcsAreHalfDuplexMatching) {
  const std::vector<Arc> arcs{{0, 1}, {2, 3}};
  EXPECT_TRUE(is_half_duplex_matching(arcs, 4));
}

TEST(Matching, SharedHeadRejected) {
  const std::vector<Arc> arcs{{0, 1}, {2, 1}};
  EXPECT_FALSE(is_half_duplex_matching(arcs, 3));
}

TEST(Matching, SharedTailRejected) {
  const std::vector<Arc> arcs{{0, 1}, {0, 2}};
  EXPECT_FALSE(is_half_duplex_matching(arcs, 3));
}

TEST(Matching, TailOfOneIsHeadOfOtherRejected) {
  // Half-duplex: a vertex cannot send and receive in the same round.
  const std::vector<Arc> arcs{{0, 1}, {1, 2}};
  EXPECT_FALSE(is_half_duplex_matching(arcs, 3));
}

TEST(Matching, OppositePairRejectedInHalfDuplex) {
  const std::vector<Arc> arcs{{0, 1}, {1, 0}};
  EXPECT_FALSE(is_half_duplex_matching(arcs, 2));
}

TEST(Matching, SelfLoopRejected) {
  EXPECT_FALSE(is_half_duplex_matching(std::vector<Arc>{{1, 1}}, 2));
  EXPECT_FALSE(is_full_duplex_matching(std::vector<Arc>{{1, 1}}, 2));
}

TEST(Matching, OutOfRangeRejected) {
  EXPECT_FALSE(is_half_duplex_matching(std::vector<Arc>{{0, 5}}, 3));
  EXPECT_FALSE(is_full_duplex_matching(std::vector<Arc>{{0, 5}, {5, 0}}, 3));
}

TEST(Matching, FullDuplexRequiresOppositeArcs) {
  EXPECT_FALSE(is_full_duplex_matching(std::vector<Arc>{{0, 1}}, 2));
  EXPECT_TRUE(is_full_duplex_matching(std::vector<Arc>{{0, 1}, {1, 0}}, 2));
}

TEST(Matching, FullDuplexDisjointPairs) {
  const std::vector<Arc> arcs{{0, 1}, {1, 0}, {2, 3}, {3, 2}};
  EXPECT_TRUE(is_full_duplex_matching(arcs, 4));
}

TEST(Matching, FullDuplexOverlappingPairsRejected) {
  const std::vector<Arc> arcs{{0, 1}, {1, 0}, {1, 2}, {2, 1}};
  EXPECT_FALSE(is_full_duplex_matching(arcs, 3));
}

TEST(Matching, GreedyMatchingIsMatching) {
  const std::vector<Arc> pool{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}};
  const auto m = greedy_matching(pool, 5);
  EXPECT_TRUE(is_half_duplex_matching(m, 5));
  EXPECT_GE(m.size(), 1u);
  // First arc always taken.
  EXPECT_EQ(m.front(), (Arc{0, 1}));
}

TEST(Matching, GreedyMatchingSkipsLoops) {
  const std::vector<Arc> pool{{2, 2}, {0, 1}};
  const auto m = greedy_matching(pool, 3);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.front(), (Arc{0, 1}));
}

}  // namespace
}  // namespace sysgo::graph
