#include "graph/search.hpp"

#include <gtest/gtest.h>

#include "topology/classic.hpp"

namespace sysgo::graph {
namespace {

TEST(Search, BfsOnPath) {
  const auto g = topology::path(5);
  const auto dist = bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[static_cast<std::size_t>(i)], i);
}

TEST(Search, BfsUnreachable) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.finalize();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(Search, BfsRespectsDirection) {
  Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(1, 2);
  g.finalize();
  EXPECT_EQ(distance(g, 0, 2), 2);
  EXPECT_EQ(distance(g, 2, 0), kUnreachable);
}

TEST(Search, MultiSourceTakesNearest) {
  const auto g = topology::path(10);
  const auto dist = multi_source_bfs(g, {0, 9});
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[9], 0);
  EXPECT_EQ(dist[4], 4);
  EXPECT_EQ(dist[5], 4);
}

TEST(Search, MultiSourceBadSourceThrows) {
  const auto g = topology::path(3);
  EXPECT_THROW((void)multi_source_bfs(g, {5}), std::out_of_range);
}

TEST(Search, DiameterOfPath) { EXPECT_EQ(diameter(topology::path(10)), 9); }

TEST(Search, DiameterOfCycle) { EXPECT_EQ(diameter(topology::cycle(10)), 5); }

TEST(Search, DiameterOfCompleteGraph) {
  EXPECT_EQ(diameter(topology::complete(8)), 1);
}

TEST(Search, DiameterOfHypercube) {
  EXPECT_EQ(diameter(topology::hypercube(5)), 5);
}

TEST(Search, DiameterDisconnected) {
  Digraph g(2);
  g.finalize();
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(Search, StrongConnectivity) {
  EXPECT_TRUE(is_strongly_connected(topology::cycle(5)));
  Digraph dag(3);
  dag.add_arc(0, 1);
  dag.add_arc(1, 2);
  dag.finalize();
  EXPECT_FALSE(is_strongly_connected(dag));
  // Directed cycle is strongly connected.
  Digraph dcycle(3);
  dcycle.add_arc(0, 1);
  dcycle.add_arc(1, 2);
  dcycle.add_arc(2, 0);
  dcycle.finalize();
  EXPECT_TRUE(is_strongly_connected(dcycle));
}

TEST(Search, GridDiameterIsManhattan) {
  EXPECT_EQ(diameter(topology::grid(4, 6)), 3 + 5);
}

}  // namespace
}  // namespace sysgo::graph
