// End-to-end pipeline: topology -> schedule -> validation -> simulation ->
// delay digraph -> delay matrix -> audit certificate, with each stage's
// output feeding the next and the norm chain
//   ‖M(λ)‖_exact <= audit bound <= F(λ, s)
// holding throughout.
#include <gtest/gtest.h>

#include <cmath>

#include "core/audit.hpp"
#include "core/delay_matrix.hpp"
#include "protocol/builders.hpp"
#include "simulator/broadcast_sim.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/de_bruijn.hpp"

namespace sysgo {
namespace {

using protocol::Mode;

TEST(EndToEnd, DeBruijnPipeline) {
  const auto g = topology::de_bruijn(2, 4);
  const auto sched = protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);

  // 1. Structural validity against the network.
  ASSERT_TRUE(protocol::validate_structure(sched, &g).ok);

  // 2. The schedule achieves gossip.
  const int measured = simulator::gossip_time(sched, 3000);
  ASSERT_GT(measured, 0);

  // 3. The expanded protocol is systolic with the schedule's period.
  const auto p = sched.expand(measured);
  EXPECT_TRUE(protocol::is_systolic(p, sched.period_length()));
  EXPECT_TRUE(simulator::achieves_gossip(p));

  // 4. Audit certificate below the measured time.
  const auto audit = core::audit_schedule(sched);
  EXPECT_GT(audit.round_lower_bound, 0);
  EXPECT_LE(audit.round_lower_bound, measured);

  // 5. Norm chain at a few λ values over a 3-period window, off one
  // compiled form.
  const auto compiled = protocol::CompiledSchedule::compile(sched);
  const core::DelayDigraph dg(compiled, 3 * compiled.period_length());
  for (double lam : {0.35, 0.5}) {
    const double exact = core::delay_matrix_norm(dg, lam);
    const double audit_bound = core::audit_norm_bound(compiled, lam);
    EXPECT_LE(exact, audit_bound + 1e-9) << "lam=" << lam;
  }

  // 6. At the certified λ*, the audit bound is exactly 1.
  EXPECT_NEAR(core::audit_norm_bound(compiled, audit.lambda_star), 1.0, 1e-6);
}

TEST(EndToEnd, TruncatedProtocolFailsGossipButKeepsStructure) {
  // Failure injection: cutting the protocol short must flip exactly the
  // completeness verdict, not the structural one.
  const auto g = topology::de_bruijn(2, 3);
  const auto sched = protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);
  const int full_time = simulator::gossip_time(sched, 2000);
  ASSERT_GT(full_time, 1);
  const auto truncated = sched.expand(full_time - 1);
  EXPECT_TRUE(protocol::validate_structure(truncated, &g).ok);
  EXPECT_FALSE(simulator::achieves_gossip(truncated));
}

TEST(EndToEnd, CorruptedRoundIsCaughtByValidation) {
  // Failure injection: adding a conflicting arc to one round must be caught.
  const auto g = topology::de_bruijn(2, 3);
  auto sched = protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);
  ASSERT_FALSE(sched.period.empty());
  auto& round = sched.period.front();
  ASSERT_FALSE(round.arcs.empty());
  const auto a = round.arcs.front();
  round.arcs.push_back({a.head, (a.tail + 1) % sched.n});  // reuse endpoint
  EXPECT_FALSE(protocol::validate_structure(sched, &g).ok);
}

TEST(EndToEnd, BroadcastTimesBoundGossipTime) {
  // max over sources of broadcast time <= gossip time.
  const auto g = topology::de_bruijn(2, 3);
  const auto sched = protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);
  const int gossip = simulator::gossip_time(sched, 2000);
  ASSERT_GT(gossip, 0);
  for (int src = 0; src < g.vertex_count(); src += 3) {
    const int b = simulator::broadcast_time(sched, src, 2000);
    ASSERT_GT(b, 0);
    EXPECT_LE(b, gossip);
  }
}

TEST(EndToEnd, AuditScalesToThousandsOfActivations) {
  // A larger instance exercising the sparse path: DB(2,6), 64 vertices.
  const auto g = topology::de_bruijn(2, 6);
  const auto sched = protocol::edge_coloring_schedule(g, Mode::kHalfDuplex);
  const auto audit = core::audit_schedule(sched);
  EXPECT_GT(audit.round_lower_bound, 0);
  const core::DelayDigraph dg(sched, 2 * sched.period_length());
  EXPECT_GE(dg.node_count(), 500u);
  const double exact = core::delay_matrix_norm(dg, audit.lambda_star, true);
  EXPECT_LE(exact, 1.0 + 1e-6);
}

}  // namespace
}  // namespace sysgo
