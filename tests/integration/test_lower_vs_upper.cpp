// Integration: certified lower bounds vs measured protocol performance.
// For every concrete (network, schedule) pair the Theorem 4.1 certificate
// must sit below the simulated gossip time — the reproduction's core sanity
// invariant.
#include <gtest/gtest.h>

#include <cmath>

#include "core/audit.hpp"
#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/kautz.hpp"
#include "topology/topology.hpp"
#include "topology/wrapped_butterfly.hpp"

namespace sysgo {
namespace {

using core::audit_schedule;
using protocol::Mode;

struct NamedSchedule {
  std::string name;
  protocol::SystolicSchedule sched;
  int max_rounds;
};

std::vector<NamedSchedule> test_corpus() {
  std::vector<NamedSchedule> out;
  out.push_back({"path16-hd", protocol::path_schedule(16, Mode::kHalfDuplex), 400});
  out.push_back({"path16-fd", protocol::path_schedule(16, Mode::kFullDuplex), 400});
  out.push_back({"cycle12-hd", protocol::cycle_schedule(12, Mode::kHalfDuplex), 400});
  out.push_back({"cycle13-hd", protocol::cycle_schedule(13, Mode::kHalfDuplex), 500});
  out.push_back({"grid4x5-hd", protocol::grid_schedule(4, 5, Mode::kHalfDuplex), 800});
  out.push_back({"hyper4-fd", protocol::hypercube_schedule(4, Mode::kFullDuplex), 64});
  out.push_back({"hyper5-hd", protocol::hypercube_schedule(5, Mode::kHalfDuplex), 200});
  out.push_back(
      {"complete16-fd", protocol::complete_power2_schedule(16, Mode::kFullDuplex), 64});
  out.push_back({"debruijn-hd",
                 protocol::edge_coloring_schedule(topology::de_bruijn(2, 5),
                                                  Mode::kHalfDuplex),
                 2000});
  out.push_back({"kautz-fd",
                 protocol::edge_coloring_schedule(topology::kautz(2, 4),
                                                  Mode::kFullDuplex),
                 2000});
  out.push_back({"wbf-hd",
                 protocol::edge_coloring_schedule(topology::wrapped_butterfly(2, 3),
                                                  Mode::kHalfDuplex),
                 2000});
  return out;
}

TEST(LowerVsUpper, CertificateNeverExceedsMeasuredTime) {
  for (const auto& c : test_corpus()) {
    const int measured = simulator::gossip_time(c.sched, c.max_rounds);
    ASSERT_GT(measured, 0) << c.name << " did not complete";
    const auto audit = audit_schedule(c.sched);
    EXPECT_LE(audit.round_lower_bound, measured) << c.name;
    EXPECT_GT(audit.round_lower_bound, 0) << c.name;
  }
}

TEST(LowerVsUpper, GeneralBoundHoldsAsymptoticallyOnHypercubes) {
  // Full-duplex dimension-order gossip takes exactly D = log2(n) rounds with
  // period D; the general full-duplex e(D) < 1.2 for D >= 4, consistent.
  for (int D : {4, 5, 6}) {
    const auto sched = protocol::hypercube_schedule(D, Mode::kFullDuplex);
    const int measured = simulator::gossip_time(sched, 4 * D);
    EXPECT_EQ(measured, D);
    const double coeff = core::e_general(D, core::Duplex::kFull);
    // measured >= e(s)·log2(n) − O(log log n): with log2(n) = D the slack
    // term makes the bound ≤ D here; check the ordering is consistent.
    EXPECT_GE(static_cast<double>(measured) + 2.0 * std::log2(D) + 2.0,
              coeff * D);
  }
}

TEST(LowerVsUpper, HalfDuplexCostsMoreThanFullDuplex) {
  for (int n : {8, 16}) {
    const int half =
        simulator::gossip_time(protocol::path_schedule(n, Mode::kHalfDuplex), 500);
    const int full =
        simulator::gossip_time(protocol::path_schedule(n, Mode::kFullDuplex), 500);
    ASSERT_GT(half, 0);
    ASSERT_GT(full, 0);
    EXPECT_GE(half, full);
  }
}

TEST(LowerVsUpper, SystolicPathStrictlySlowerThanDiameter) {
  // [8]: half-duplex systolic gossip on paths is strictly slower than the
  // trivial n-1; our 4-periodic protocol shows the gap.
  const int n = 20;
  const int t = simulator::gossip_time(protocol::path_schedule(n, Mode::kHalfDuplex),
                                       1000);
  ASSERT_GT(t, 0);
  EXPECT_GT(t, n - 1);
}

TEST(LowerVsUpper, AuditCoefficientNeverBelowGeneralCoefficient) {
  // The per-vertex audit is a refinement: e_audit >= e_general(s) for any
  // schedule of period s (worst vertex can't be worse than balanced).
  for (const auto& c : test_corpus()) {
    const int s = c.sched.period_length();
    if (s < 3) continue;
    const auto duplex = c.sched.mode == Mode::kFullDuplex ? core::Duplex::kFull
                                                          : core::Duplex::kHalf;
    const auto audit = audit_schedule(c.sched);
    EXPECT_GE(audit.e_coeff + 1e-9, core::e_general(s, duplex)) << c.name;
  }
}

}  // namespace
}  // namespace sysgo
