// Integration: the paper's separator parameters are consistent with the
// graphs we actually build — the empirical distance and set sizes of the
// Lemma 3.1 constructions converge to l·log n and α·l·log n respectively.
#include <gtest/gtest.h>

#include <cmath>

#include "core/separator_bound.hpp"
#include "core/tables.hpp"
#include "graph/search.hpp"
#include "separator/separator.hpp"

namespace sysgo {
namespace {

using topology::Family;

double log2n(const graph::Digraph& g) {
  return std::log2(static_cast<double>(g.vertex_count()));
}

TEST(PaperValues, ButterflySeparatorRatiosApproachEll) {
  // dist / log2(n) -> l = 2/log d as D grows (up to the o(log n) slack).
  const auto params = separator::lemma31_params(Family::kButterfly, 2);
  double prev_gap = 1e9;
  for (int D : {3, 5, 7}) {
    const auto g = topology::make_family(Family::kButterfly, 2, D);
    const auto sep = separator::build_separator(Family::kButterfly, 2, D);
    const auto chk = separator::verify_separator(g, sep);
    const double ratio = chk.min_distance / log2n(g);
    const double gap = std::fabs(ratio - params.ell);
    EXPECT_LT(gap, prev_gap + 1e-9) << "D=" << D;  // converging
    prev_gap = gap;
  }
}

TEST(PaperValues, DeBruijnSeparatorSizeExponent) {
  // |Vi| = 2^{D - |S|} exactly, with |S| = O(sqrt(D)) constrained
  // positions, so log2(min size)/log2(n) = 1 - |S|/D -> α·l = 1.
  for (int D : {9, 12}) {
    const int h =
        static_cast<int>(std::ceil(std::sqrt(static_cast<double>(D))));
    const auto s = separator::shift_robust_positions(D, h);
    const auto g = topology::make_family(Family::kDeBruijn, 2, D);
    const auto sep = separator::build_separator(Family::kDeBruijn, 2, D);
    const auto chk = separator::verify_separator(g, sep);
    const double exponent =
        std::log2(static_cast<double>(std::min(chk.size1, chk.size2))) / log2n(g);
    EXPECT_NEAR(exponent, 1.0 - static_cast<double>(s.size()) / D, 1e-12);
    // |S| <= 3·sqrt(D) + 2: the o(log n) defect of Definition 3.5.
    EXPECT_LE(static_cast<double>(s.size()),
              3.0 * std::sqrt(static_cast<double>(D)) + 2.0);
  }
}

TEST(PaperValues, SeparatorDistancesFeedTheoremFiveOne) {
  // For each family: empirical dist(V1,V2)/log2(n) must not exceed l (the
  // theorem only needs >= l·log n − o(log n); the designed constructions in
  // fact approach l from below at small D).
  for (Family f : {Family::kButterfly, Family::kWrappedButterflyDirected,
                   Family::kDeBruijn, Family::kKautz}) {
    const auto params = separator::lemma31_params(f, 2);
    const auto g = topology::make_family(f, 2, 5);
    const auto sep = separator::build_separator(f, 2, 5);
    const auto chk = separator::verify_separator(g, sep);
    EXPECT_GT(chk.min_distance, 0) << topology::family_name(f, 2);
    EXPECT_LE(chk.min_distance / log2n(g), params.ell + 0.05)
        << topology::family_name(f, 2);
  }
}

TEST(PaperValues, OrderingOfFig6RowsMatchesPaper) {
  // WBF(2) gets a stronger non-systolic bound than DB(2), which beats the
  // 1.4404 general bound; directed variants beat their undirected versions.
  double wbf = 0, db = 0, wbf_dir = 0, bf = 0;
  for (const auto& row : core::fig6_rows()) {
    if (row.d != 2) continue;
    if (row.family == Family::kWrappedButterfly) wbf = row.e_matrix;
    if (row.family == Family::kDeBruijn) db = row.e_matrix;
    if (row.family == Family::kWrappedButterflyDirected) wbf_dir = row.e_matrix;
    if (row.family == Family::kButterfly) bf = row.e_matrix;
  }
  EXPECT_GT(wbf, db);
  EXPECT_GT(db, 1.4404);
  EXPECT_GT(wbf_dir, wbf);  // l = 2 vs l = 1.5
  EXPECT_NEAR(bf, wbf_dir, 1e-9);  // identical (α, l)
}

TEST(PaperValues, SystolicPenaltyShrinksWithPeriod) {
  // e(3)/e(∞) ≈ 2 but e(8)/e(∞) ≈ 1.02: systolization is nearly free for
  // large periods (the paper's Fig. 4 narrative).
  const double e3 = core::e_general(3, core::Duplex::kHalf);
  const double e8 = core::e_general(8, core::Duplex::kHalf);
  const double einf = core::e_general(core::kUnboundedPeriod, core::Duplex::kHalf);
  EXPECT_GT(e3 / einf, 1.9);
  EXPECT_LT(e8 / einf, 1.03);
}

TEST(PaperValues, UpperBoundsFromLiteratureStayAboveOurLowerBounds) {
  // g(WBF(2,D)) <= 2.5·log n and g(DB(2,D)) <= 2·log n (systolic, small s);
  // our s = 4 bounds must sit below those coefficients.
  EXPECT_LT(core::separator_bound(Family::kWrappedButterfly, 2, 4,
                                  core::Duplex::kHalf).e,
            2.5);
  EXPECT_LT(core::separator_bound(Family::kDeBruijn, 2, 4, core::Duplex::kHalf).e,
            2.0 + 0.01);
}

}  // namespace
}  // namespace sysgo
