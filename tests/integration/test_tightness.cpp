// Tightness of the reproduced bounds on known-optimal instances.
//
// * Knödel graphs achieve full-duplex gossip in exactly log2(n) rounds for
//   n a power of two — matching the paper's non-systolic full-duplex
//   coefficient e(∞) = 1 exactly (the bound is tight, as [5] proves in
//   general).
// * Hypercube dimension-order gossip achieves the same optimum.
// * The half-duplex 1.4404·log2(n) coefficient is approached by complete
//   graphs (exact small values from the exhaustive solver).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/optimal.hpp"
#include "core/audit.hpp"
#include "core/bounds.hpp"
#include "protocol/builders.hpp"
#include "protocol/knodel_protocols.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/classic.hpp"
#include "topology/knodel.hpp"
#include "util/rng.hpp"

namespace sysgo {
namespace {

using protocol::Mode;

TEST(Tightness, KnodelAchievesTheFullDuplexBoundExactly) {
  // e(∞, full) = 1: any full-duplex protocol needs log2(n) − O(log log n)
  // rounds; Knödel graphs deliver exactly log2(n).
  EXPECT_NEAR(core::e_general(core::kUnboundedPeriod, core::Duplex::kFull), 1.0,
              1e-9);
  for (int n : {16, 32, 64, 128}) {
    const int delta = topology::knodel_max_delta(n);
    const auto sched = protocol::knodel_schedule(delta, n, Mode::kFullDuplex);
    const int measured = simulator::gossip_time(sched, 4 * delta);
    EXPECT_EQ(measured, static_cast<int>(std::log2(n))) << "n=" << n;
  }
}

TEST(Tightness, KnodelScheduleIsPeriodLogNSystolic) {
  // The optimal schedule is Δ-systolic with Δ = log2 n; the general
  // systolic coefficient e(Δ, full) stays below 1.2 for Δ >= 4, consistent
  // with the measured log2(n) rounds.
  const int n = 64;
  const int delta = topology::knodel_max_delta(n);
  const double coeff = core::e_general(delta, core::Duplex::kFull);
  const int measured = simulator::gossip_time(
      protocol::knodel_schedule(delta, n, Mode::kFullDuplex), 4 * delta);
  EXPECT_LE(coeff * std::log2(n) - 2 * std::log2(std::log2(n)),
            static_cast<double>(measured));
}

TEST(Tightness, CompleteGraphHalfDuplexNearTheKnownCoefficient) {
  // Exhaustive optima for K4/K5 vs 1.4404·log2(n): the ratio approaches the
  // coefficient from above.
  const int g4 = analysis::optimal_gossip(topology::complete(4),
                                          Mode::kHalfDuplex).rounds;
  const int g5 = analysis::optimal_gossip(topology::complete(5),
                                          Mode::kHalfDuplex).rounds;
  EXPECT_GE(g4, 1.4404 * std::log2(4.0) - 1e-9);
  EXPECT_GE(g5, 1.4404 * std::log2(5.0) - 1e-9);
  EXPECT_LE(g4 / std::log2(4.0), 2.01);
  EXPECT_LE(g5 / std::log2(5.0), 2.16);
}

// Randomized audit sweep: any structurally valid random systolic schedule
// that achieves gossip respects its own certificate.
class AuditSweep : public ::testing::TestWithParam<int> {};

TEST_P(AuditSweep, CertificateHolds) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  const auto mode = GetParam() % 2 == 0 ? Mode::kHalfDuplex : Mode::kFullDuplex;
  const int n = 8 + 2 * (GetParam() % 5);
  const auto g = topology::complete(n);
  const int s = 3 + GetParam() % 5;
  const auto sched = protocol::random_systolic_schedule(g, s, mode, rng);
  ASSERT_TRUE(protocol::validate_structure(sched, &g).ok);
  const int measured = simulator::gossip_time(sched, 5000);
  if (measured < 0) GTEST_SKIP() << "random schedule does not gossip";
  const auto audit = core::audit_schedule(sched);
  EXPECT_LE(audit.round_lower_bound, measured);
  // Complete-graph random matchings keep most vertices busy, so the
  // certificate is within the general band.
  const auto duplex =
      mode == Mode::kFullDuplex ? core::Duplex::kFull : core::Duplex::kHalf;
  EXPECT_GE(audit.e_coeff + 1e-9, core::e_general(s, duplex));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuditSweep, ::testing::Range(0, 20));

}  // namespace
}  // namespace sysgo
