#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace sysgo::io {
namespace {

int line_count(const std::string& text) {
  return static_cast<int>(std::count(text.begin(), text.end(), '\n'));
}

TEST(Csv, LineBasics) {
  EXPECT_EQ(csv_line({"a", "b", "c"}), "a,b,c\n");
  EXPECT_EQ(csv_line({}), "\n");
}

TEST(Csv, QuotesSpecialCells) {
  EXPECT_EQ(csv_line({"a,b"}), "\"a,b\"\n");
  EXPECT_EQ(csv_line({"say \"hi\""}), "\"say \"\"hi\"\"\"\n");
}

TEST(Csv, Fig4HasHeaderAndSevenRows) {
  const auto csv = fig4_csv();
  EXPECT_EQ(line_count(csv), 1 + 7);
  EXPECT_NE(csv.find("s,lambda,e"), std::string::npos);
  EXPECT_NE(csv.find("2.8808"), std::string::npos);
  EXPECT_NE(csv.find("inf"), std::string::npos);
}

TEST(Csv, Fig5CoversFourteenNetworks) {
  const auto csv = fig5_csv();
  EXPECT_EQ(line_count(csv), 1 + 14);
  EXPECT_NE(csv.find("WBF(2,D)"), std::string::npos);
  EXPECT_NE(csv.find("2.0219"), std::string::npos);  // s=4 WBF(2) entry
}

TEST(Csv, Fig6HasDiameterColumn) {
  const auto csv = fig6_csv();
  EXPECT_EQ(line_count(csv), 1 + 14);
  EXPECT_NE(csv.find("e_diameter"), std::string::npos);
  EXPECT_NE(csv.find("1.9750"), std::string::npos);  // WBF(2) non-systolic
}

TEST(Csv, Fig8IncludesUnboundedColumn) {
  const auto csv = fig8_csv();
  EXPECT_NE(csv.find("e_sinf"), std::string::npos);
  EXPECT_EQ(line_count(csv), 1 + 14);
}

// Field separators are commas outside quoted regions.
int field_count(const std::string& line) {
  int fields = 1;
  bool quoted = false;
  for (char c : line) {
    if (c == '"') quoted = !quoted;
    if (c == ',' && !quoted) ++fields;
  }
  return fields;
}

TEST(Csv, EveryRowHasSameFieldCount) {
  for (const auto& csv : {fig4_csv(), fig5_csv(), fig6_csv(), fig8_csv()}) {
    std::istringstream in(csv);
    std::string line;
    std::getline(in, line);
    const int fields = field_count(line);
    while (std::getline(in, line)) EXPECT_EQ(field_count(line), fields) << line;
  }
}

TEST(Csv, NetworkNamesAreQuoted) {
  // "BF(2,D)" contains a comma and must be quoted.
  EXPECT_NE(fig5_csv().find("\"BF(2,D)\""), std::string::npos);
}

TEST(Csv, HostileNamesRoundTrip) {
  // Regression: rows used to be split on raw commas, so any quoted name
  // containing a comma or quote was corrupted on the way back in.
  const std::vector<std::vector<std::string>> records = {
      {"DB(2,4)", "plain", ""},
      {"say \"hi\"", "a,b,c", "\"\""},
      {"comma, quote \" and both \",\"", " leading and trailing ", ","},
      {"multi\nline name", "tab\tinside", "trailing quote\""},
      {"carriage\rreturn", "crlf\r\npair", "ok"},
  };
  std::string text;
  for (const auto& cells : records) text += csv_line(cells);
  EXPECT_EQ(parse_csv(text), records);
}

TEST(Csv, ParseLineIsTheInverseOfCsvLine) {
  const std::vector<std::string> cells{"BF(2,D)", "2", "0.5", "e_s3"};
  EXPECT_EQ(parse_csv_line(csv_line(cells)), cells);
  // Quoting is optional on the way in: both spellings parse identically.
  EXPECT_EQ(parse_csv_line("\"a\",b,\"c,d\""),
            (std::vector<std::string>{"a", "b", "c,d"}));
}

TEST(Csv, FigureTablesRoundTripThroughTheParser) {
  for (const auto& csv : {fig4_csv(), fig5_csv(), fig6_csv(), fig8_csv()}) {
    const auto records = parse_csv(csv);
    ASSERT_GT(records.size(), 1u);
    std::string rewritten;
    for (const auto& cells : records) rewritten += csv_line(cells);
    EXPECT_EQ(rewritten, csv);
  }
}

TEST(Csv, MalformedQuotingThrows) {
  EXPECT_THROW((void)parse_csv("\"unterminated\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_csv("a\"b,c\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_csv("\"a\"b,c\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_csv_line("a,b\nc,d\n"), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::io
