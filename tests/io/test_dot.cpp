#include "io/dot.hpp"

#include <gtest/gtest.h>

#include "protocol/classic_protocols.hpp"
#include "topology/classic.hpp"

namespace sysgo::io {
namespace {

TEST(Dot, UndirectedGraphRendersEdgesOnce) {
  const auto g = topology::path(3);
  const auto dot = to_dot(g, "P3");
  EXPECT_NE(dot.find("graph P3"), std::string::npos);
  EXPECT_EQ(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
  // One line per edge, not per arc.
  EXPECT_EQ(dot.find("1 -- 0"), std::string::npos);
}

TEST(Dot, DirectedGraphUsesArrows) {
  graph::Digraph g(2);
  g.add_arc(0, 1);
  g.finalize();
  const auto dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("0 -> 1"), std::string::npos);
}

TEST(Dot, AllVerticesListed) {
  const auto dot = to_dot(topology::path(5));
  for (int v = 0; v < 5; ++v)
    EXPECT_NE(dot.find("  " + std::to_string(v) + ";"), std::string::npos);
}

TEST(Dot, DelayDigraphLabels) {
  const auto sched = protocol::path_schedule(3, protocol::Mode::kHalfDuplex);
  const core::DelayDigraph dg(sched, 8);
  const auto dot = to_dot(dg);
  EXPECT_NE(dot.find("digraph DG"), std::string::npos);
  EXPECT_NE(dot.find("(0->1)@1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"1\""), std::string::npos);  // a delay-1 arc
}

TEST(Dot, OutputIsBalanced) {
  const auto dot = to_dot(topology::cycle(4));
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
}

}  // namespace
}  // namespace sysgo::io
