#include "io/graph_text.hpp"

#include <gtest/gtest.h>

#include "topology/classic.hpp"
#include "topology/kautz.hpp"

namespace sysgo::io {
namespace {

TEST(GraphText, SerializeFormat) {
  graph::Digraph g(3);
  g.add_arc(0, 1);
  g.add_arc(2, 0);
  g.finalize();
  const auto text = serialize(g);
  EXPECT_NE(text.find("sysgo-digraph v1"), std::string::npos);
  EXPECT_NE(text.find("n 3"), std::string::npos);
  EXPECT_NE(text.find("arc 0 1"), std::string::npos);
  EXPECT_NE(text.find("arc 2 0"), std::string::npos);
}

TEST(GraphText, RoundTripPreservesArcs) {
  for (const auto& g : {topology::cycle(7), topology::kautz_directed(2, 3)}) {
    const auto h = parse_digraph(serialize(g));
    EXPECT_EQ(h.vertex_count(), g.vertex_count());
    ASSERT_EQ(h.arc_count(), g.arc_count());
    for (const auto& a : g.arcs()) EXPECT_TRUE(h.has_arc(a.tail, a.head));
  }
}

TEST(GraphText, EmptyGraphRoundTrips) {
  graph::Digraph g(4);
  g.finalize();
  const auto h = parse_digraph(serialize(g));
  EXPECT_EQ(h.vertex_count(), 4);
  EXPECT_EQ(h.arc_count(), 0u);
}

TEST(GraphText, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_digraph("nonsense"), std::invalid_argument);
  EXPECT_THROW((void)parse_digraph("sysgo-digraph v2\nn 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_digraph("sysgo-digraph v1\nm 2\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_digraph("sysgo-digraph v1\nn 2\nedge 0 1\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_digraph("sysgo-digraph v1\nn 2\narc 0\n"),
               std::invalid_argument);
}

TEST(GraphText, RejectsOutOfRangeArc) {
  EXPECT_THROW((void)parse_digraph("sysgo-digraph v1\nn 2\narc 0 5\n"),
               std::out_of_range);
}

}  // namespace
}  // namespace sysgo::io
