#include "io/protocol_text.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "protocol/compiled.hpp"
#include "protocol/knodel_protocols.hpp"
#include "protocol/tree_protocols.hpp"
#include "protocol/wbf_protocols.hpp"
#include "topology/classic.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace sysgo::io {
namespace {

using protocol::Mode;

TEST(ProtocolText, SerializeBasicProtocol) {
  protocol::Protocol p;
  p.n = 4;
  p.mode = Mode::kHalfDuplex;
  p.rounds = {{{{0, 1}, {2, 3}}}, {{{1, 2}}}};
  const auto text = serialize(p);
  EXPECT_NE(text.find("sysgo-protocol v1"), std::string::npos);
  EXPECT_NE(text.find("n 4 mode half"), std::string::npos);
  EXPECT_NE(text.find("round 1: 0>1 2>3"), std::string::npos);
  EXPECT_NE(text.find("round 2: 1>2"), std::string::npos);
}

TEST(ProtocolText, ProtocolRoundTrip) {
  util::Rng rng(77);
  const auto g = topology::cycle(6);
  const auto p = protocol::random_protocol(g, 9, Mode::kHalfDuplex, rng);
  const auto q = parse_protocol(serialize(p));
  EXPECT_EQ(q.n, p.n);
  EXPECT_EQ(q.mode, p.mode);
  ASSERT_EQ(q.rounds.size(), p.rounds.size());
  for (std::size_t i = 0; i < p.rounds.size(); ++i) EXPECT_EQ(q.rounds[i], p.rounds[i]);
}

TEST(ProtocolText, ScheduleRoundTrip) {
  const auto s = protocol::hypercube_schedule(3, Mode::kFullDuplex);
  const auto t = parse_schedule(serialize(s));
  EXPECT_EQ(t.n, s.n);
  EXPECT_EQ(t.mode, s.mode);
  ASSERT_EQ(t.period.size(), s.period.size());
  for (std::size_t i = 0; i < s.period.size(); ++i) EXPECT_EQ(t.period[i], s.period[i]);
}

TEST(ProtocolText, EmptyRoundsSurviveRoundTrip) {
  protocol::Protocol p;
  p.n = 3;
  p.rounds = {{}, {{{0, 1}}}, {}};
  const auto q = parse_protocol(serialize(p));
  ASSERT_EQ(q.rounds.size(), 3u);
  EXPECT_TRUE(q.rounds[0].arcs.empty());
  EXPECT_TRUE(q.rounds[2].arcs.empty());
}

TEST(ProtocolText, RejectsWrongMagic) {
  EXPECT_THROW((void)parse_protocol("sysgo-schedule v1\nn 2 mode half\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_schedule("sysgo-protocol v1\nn 2 mode half\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_protocol("garbage"), std::invalid_argument);
}

TEST(ProtocolText, RejectsBadMode) {
  EXPECT_THROW((void)parse_protocol("sysgo-protocol v1\nn 2 mode duplex\n"),
               std::invalid_argument);
}

TEST(ProtocolText, RejectsOutOfRangeArc) {
  EXPECT_THROW(
      (void)parse_protocol("sysgo-protocol v1\nn 2 mode half\nround 1: 0>5\n"),
      std::invalid_argument);
}

TEST(ProtocolText, RejectsNonConsecutiveRounds) {
  EXPECT_THROW(
      (void)parse_protocol("sysgo-protocol v1\nn 2 mode half\nround 2: 0>1\n"),
      std::invalid_argument);
}

TEST(ProtocolText, RejectsMalformedArc) {
  EXPECT_THROW(
      (void)parse_protocol("sysgo-protocol v1\nn 2 mode half\nround 1: 0-1\n"),
      std::invalid_argument);
}

TEST(ProtocolText, FuzzedInputsNeverCrash) {
  // Robustness: arbitrary mutations of a valid document either parse or
  // throw std::invalid_argument/std::exception — never crash.
  util::Rng rng(2025);
  const auto base =
      serialize(protocol::path_schedule(4, Mode::kHalfDuplex).expand(4));
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = base;
    const int mutations = rng.uniform_int(1, 5);
    for (int m = 0; m < mutations; ++m) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(text.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0: text[pos] = static_cast<char>(rng.uniform_int(32, 126)); break;
        case 1: text.erase(pos, 1); break;
        default: text.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
      }
    }
    try {
      const auto p = parse_protocol(text);
      // If it parsed, the result must be structurally sane.
      EXPECT_GE(p.n, 1);
      for (const auto& r : p.rounds)
        for (const auto& a : r.arcs) {
          EXPECT_GE(a.tail, 0);
          EXPECT_LT(a.tail, p.n);
          EXPECT_GE(a.head, 0);
          EXPECT_LT(a.head, p.n);
        }
    } catch (const std::exception&) {
      // Rejected: fine.
    }
  }
}

// Round-trip property over every builder-produced schedule: for all
// registered families (edge-coloring construction) and the dedicated
// schedule builders, in both duplex modes, parse(serialize(s)) compiles to
// a CompiledSchedule identical to compile(s) — the text format loses
// nothing the executors consume.
TEST(ProtocolText, BuilderSchedulesRoundTripToIdenticalCompiledSchedule) {
  using protocol::CompiledSchedule;
  using protocol::SystolicSchedule;
  using topology::Family;

  std::vector<std::pair<std::string, SystolicSchedule>> corpus;
  // One small member of every registered family, edge-coloring schedule.
  const std::vector<std::tuple<Family, int, int>> members = {
      {Family::kButterfly, 2, 3},   {Family::kWrappedButterflyDirected, 2, 3},
      {Family::kWrappedButterfly, 2, 3}, {Family::kDeBruijnDirected, 2, 4},
      {Family::kDeBruijn, 2, 4},    {Family::kKautzDirected, 2, 3},
      {Family::kKautz, 2, 3},       {Family::kCycle, 2, 7},
      {Family::kComplete, 2, 5},    {Family::kHypercube, 2, 3},
      {Family::kCubeConnectedCycles, 2, 3}, {Family::kShuffleExchange, 2, 3},
      {Family::kKnodel, 3, 8},
  };
  for (protocol::Mode mode : {protocol::Mode::kHalfDuplex,
                              protocol::Mode::kFullDuplex}) {
    const std::string suffix =
        mode == protocol::Mode::kHalfDuplex ? " half" : " full";
    for (const auto& [f, d, D] : members) {
      const auto g = topology::make_family(f, d, D);
      corpus.emplace_back(topology::family_name(f, d) + suffix,
                          protocol::edge_coloring_schedule(g, mode));
    }
    // The dedicated schedule builders.
    corpus.emplace_back("path" + suffix, protocol::path_schedule(6, mode));
    corpus.emplace_back("cycle" + suffix, protocol::cycle_schedule(6, mode));
    corpus.emplace_back("grid" + suffix, protocol::grid_schedule(3, 4, mode));
    corpus.emplace_back("hypercube" + suffix,
                        protocol::hypercube_schedule(3, mode));
    corpus.emplace_back("complete" + suffix,
                        protocol::complete_power2_schedule(8, mode));
    corpus.emplace_back("knodel" + suffix, protocol::knodel_schedule(3, 8, mode));
    corpus.emplace_back("tree" + suffix, protocol::tree_schedule(2, 3, mode));
    corpus.emplace_back("wbf" + suffix, protocol::wbf_schedule(2, 3, mode));
  }
  corpus.emplace_back("wbf-dir", protocol::wbf_directed_schedule(2, 3));

  for (const auto& [name, sched] : corpus) {
    const auto parsed = parse_schedule(serialize(sched));
    EXPECT_TRUE(CompiledSchedule::compile(parsed) ==
                CompiledSchedule::compile(sched))
        << name;
  }
}

TEST(ProtocolText, ErrorMessagesNameTheLine) {
  try {
    (void)parse_protocol("sysgo-protocol v1\nn 2 mode half\nround 1: 0>9\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace sysgo::io
