#include "io/sweep_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <limits>

#include "engine/sweep.hpp"
#include "util/rng.hpp"

namespace sysgo::io {
namespace {

using engine::ScenarioSpec;
using engine::SweepRecord;
using engine::Task;
using protocol::Mode;
using topology::Family;

std::vector<SweepRecord> sample_records() {
  SweepRecord bound;
  bound.key = {Family::kDeBruijn, 2, 0, Mode::kHalfDuplex};
  bound.task = Task::kBound;
  bound.s = core::kUnboundedPeriod;
  bound.alpha = 1.0;
  bound.ell = 1.0;
  bound.e = 1.5876307466808308;
  bound.lambda = 0.47654191228624376;
  bound.millis = 0.25;

  SweepRecord sim;
  sim.key = {Family::kKautz, 2, 5, Mode::kFullDuplex};
  sim.task = Task::kSimulate;
  sim.s = 6;
  sim.n = 48;
  sim.rounds = 16;
  sim.millis = 1.5;

  SweepRecord sep;
  sep.key = {Family::kButterfly, 2, 3, Mode::kHalfDuplex};
  sep.task = Task::kSeparatorCheck;
  sep.n = 32;
  sep.diameter = 6;
  sep.sep_distance = 6;
  sep.sep_min_size = 4;

  SweepRecord solve;
  solve.key = {Family::kCycle, 2, 9, Mode::kFullDuplex};
  solve.task = Task::kSolveGossip;
  solve.n = 9;
  solve.rounds = 6;
  solve.states = 5516;
  solve.group = 18;
  solve.budget = 0;
  solve.millis = 12.5;

  SweepRecord synth;
  synth.key = {Family::kRandomRegular, 3, 16, Mode::kHalfDuplex};
  synth.task = Task::kSynthesize;
  synth.s = 5;
  synth.n = 16;
  synth.rounds = 14;
  synth.objective = 14005024.0;
  synth.restarts = 16;
  synth.accepted = 4321;
  synth.millis = 120.25;
  return {bound, sim, sep, solve, synth};
}

void expect_same(const std::vector<SweepRecord>& a,
                 const std::vector<SweepRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(engine::same_result(a[i], b[i])) << "record " << i;
    EXPECT_DOUBLE_EQ(a[i].millis, b[i].millis) << "record " << i;
  }
}

TEST(SweepIo, CsvRoundTrips) {
  const auto records = sample_records();
  expect_same(parse_sweep_csv(sweep_csv(records)), records);
}

TEST(SweepIo, JsonRoundTrips) {
  const auto records = sample_records();
  expect_same(parse_sweep_json(sweep_json(records)), records);
}

TEST(SweepIo, EmptyDocumentsRoundTrip) {
  EXPECT_TRUE(parse_sweep_csv(sweep_csv({})).empty());
  EXPECT_TRUE(parse_sweep_json(sweep_json({})).empty());
}

TEST(SweepIo, RealSweepOutputRoundTripsBothFormats) {
  ScenarioSpec spec;
  spec.families = {Family::kDeBruijn, Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {4};
  spec.periods = {3, 4, core::kUnboundedPeriod};
  spec.tasks = {Task::kBound, Task::kDiameterBound, Task::kSimulate,
                Task::kAudit, Task::kSeparatorCheck};
  engine::SweepRunner runner;
  const auto records = runner.run(spec);
  ASSERT_FALSE(records.empty());
  expect_same(parse_sweep_csv(sweep_csv(records)), records);
  expect_same(parse_sweep_json(sweep_json(records)), records);
}

TEST(SweepIo, CsvCommentLinesAreSkipped) {
  // The CLI prepends "# seed=N" to CSV output; the parser must ignore '#'
  // lines wherever they appear.
  const auto records = sample_records();
  const std::string with_comments =
      "# seed=424242\n" + sweep_csv_header() + "# mid-stream note\n" +
      sweep_csv_row(records[0]) + sweep_csv_row(records[1]);
  const auto parsed = parse_sweep_csv(with_comments);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(engine::same_result(parsed[0], records[0]));
  EXPECT_TRUE(engine::same_result(parsed[1], records[1]));
  EXPECT_THROW(parse_sweep_csv("# only comments\n"), std::invalid_argument);
}

// ------------------------------------------------- property round-trips

/// A randomized record: every field drawn independently, doubles from a
/// pool that includes the hostile cases (negative zero, denormal min,
/// huge, infinity, long mantissas) and ints from sentinel-heavy pools.
SweepRecord random_record(util::Rng& rng) {
  const Family families[] = {
      Family::kButterfly,      Family::kWrappedButterflyDirected,
      Family::kWrappedButterfly, Family::kDeBruijnDirected,
      Family::kDeBruijn,       Family::kKautzDirected,
      Family::kKautz,          Family::kCycle,
      Family::kComplete,       Family::kHypercube,
      Family::kCubeConnectedCycles, Family::kShuffleExchange,
      Family::kKnodel,         Family::kRandomRegular,
      Family::kRandomGnp};
  const Task tasks[] = {Task::kBound,         Task::kDiameterBound,
                        Task::kSimulate,      Task::kAudit,
                        Task::kSeparatorCheck, Task::kSolveGossip,
                        Task::kSolveBroadcast, Task::kSynthesize};
  const double doubles[] = {0.0,
                            -0.0,
                            1.0,
                            -1.0,
                            0.1,
                            1.0 / 3.0,
                            std::numeric_limits<double>::min(),
                            std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::epsilon(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            3.141592653589793,
                            -1.0};  // the synth/bound sentinel
  const auto draw_double = [&] {
    return rng.flip(0.5) ? doubles[rng.uniform_index(std::size(doubles))]
                         : rng.uniform01() * 1e6 - 5e5;
  };
  const auto draw_int = [&] {
    return rng.flip(0.25) ? -1 : rng.uniform_int(0, 1 << 20);
  };
  SweepRecord r;
  r.key.family = families[rng.uniform_index(std::size(families))];
  r.key.d = rng.uniform_int(1, 64);
  r.key.D = rng.uniform_int(0, 30);
  r.key.mode = rng.flip() ? Mode::kHalfDuplex : Mode::kFullDuplex;
  r.task = tasks[rng.uniform_index(std::size(tasks))];
  r.s = rng.flip(0.2) ? core::kUnboundedPeriod : rng.uniform_int(0, 64);
  r.n = draw_int();
  r.alpha = draw_double();
  r.ell = draw_double();
  r.e = draw_double();
  r.lambda = draw_double();
  r.rounds = draw_int();
  r.diameter = draw_int();
  r.sep_distance = draw_int();
  r.sep_min_size = rng.flip(0.25)
                       ? -1
                       : static_cast<std::int64_t>(rng.uniform_int(0, 1 << 30)) *
                             (std::int64_t{1} << 20);
  r.states = rng.flip(0.25) ? -1 : std::numeric_limits<std::int64_t>::max();
  r.group = draw_int();
  r.budget = rng.uniform_int(-1, 1);
  r.objective = draw_double();
  r.restarts = draw_int();
  r.accepted = draw_int();
  r.millis = rng.flip(0.5) ? doubles[rng.uniform_index(std::size(doubles))]
                           : rng.uniform01() * 1e4;
  // millis compares with EXPECT_DOUBLE_EQ below; +-inf round-trips but
  // would trip the comparison's finite arithmetic, so keep it finite.
  if (!std::isfinite(r.millis)) r.millis = 0.25;
  return r;
}

TEST(SweepIo, PropertyRandomRecordsRoundTripBothFormats) {
  util::Rng rng(20260731);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<SweepRecord> records;
    const int count = rng.uniform_int(1, 25);
    records.reserve(count);
    for (int i = 0; i < count; ++i) records.push_back(random_record(rng));
    expect_same(parse_sweep_csv(sweep_csv(records)), records);
    expect_same(parse_sweep_json(sweep_json(records)), records);
  }
}

TEST(SweepIo, PropertySingleRowCodecMatchesDocumentParser) {
  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const SweepRecord r = random_record(rng);
    const SweepRecord back = parse_sweep_csv_record(sweep_csv_row(r));
    EXPECT_TRUE(engine::same_result(r, back));
    EXPECT_DOUBLE_EQ(r.millis, back.millis);
  }
}

TEST(SweepIo, QuotedCellsParse) {
  // RFC-4180 quoting is optional on the way in: a quoted family token (or
  // any quoted cell) must parse exactly like the bare spelling.
  const auto records = sample_records();
  const std::string row = sweep_csv_row(records[0]);
  const std::size_t comma = row.find(',');
  ASSERT_NE(comma, std::string::npos);
  std::string quoted;
  quoted += '"';
  quoted.append(row, 0, comma);
  quoted += '"';
  quoted.append(row, comma, std::string::npos);
  const SweepRecord back = parse_sweep_csv_record(quoted);
  EXPECT_TRUE(engine::same_result(back, records[0]));
  // A comma smuggled into an unquoted row still fails loudly (field-count
  // mismatch), it can no longer silently shift columns into one another.
  EXPECT_THROW((void)parse_sweep_csv_record("db,2,0,half,bound,extra," +
                                            sweep_csv_row(records[0])),
               std::invalid_argument);
}

TEST(SweepIo, SeedCommentAndSentinelRecordsSurviveTogether) {
  // The full CLI shape at once: seed comment, header, a sentinel record
  // (solve on an oversized member: rounds/states/group all -1), comments
  // mid-stream, and a quoted cell.
  SweepRecord sentinel;
  sentinel.key = {Family::kDeBruijn, 2, 12, Mode::kHalfDuplex};
  sentinel.task = Task::kSolveGossip;
  sentinel.n = 4096;
  const std::string doc = "# seed=987654321\n" + sweep_csv_header() +
                          "# shard 2/4\n" + sweep_csv_row(sentinel);
  const auto parsed = parse_sweep_csv(doc);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(engine::same_result(parsed[0], sentinel));
  EXPECT_EQ(parsed[0].rounds, -1);
  EXPECT_EQ(parsed[0].states, -1);
}

TEST(SweepIo, MalformedInputThrows) {
  EXPECT_THROW(parse_sweep_csv(""), std::invalid_argument);
  EXPECT_THROW(parse_sweep_csv("wrong,header\n"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_json("{\"not\":\"an array\"}"),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_json("[{\"family\":\"bf\""), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::io
