#include "io/sweep_io.hpp"

#include <gtest/gtest.h>

#include "engine/sweep.hpp"

namespace sysgo::io {
namespace {

using engine::ScenarioSpec;
using engine::SweepRecord;
using engine::Task;
using protocol::Mode;
using topology::Family;

std::vector<SweepRecord> sample_records() {
  SweepRecord bound;
  bound.key = {Family::kDeBruijn, 2, 0, Mode::kHalfDuplex};
  bound.task = Task::kBound;
  bound.s = core::kUnboundedPeriod;
  bound.alpha = 1.0;
  bound.ell = 1.0;
  bound.e = 1.5876307466808308;
  bound.lambda = 0.47654191228624376;
  bound.millis = 0.25;

  SweepRecord sim;
  sim.key = {Family::kKautz, 2, 5, Mode::kFullDuplex};
  sim.task = Task::kSimulate;
  sim.s = 6;
  sim.n = 48;
  sim.rounds = 16;
  sim.millis = 1.5;

  SweepRecord sep;
  sep.key = {Family::kButterfly, 2, 3, Mode::kHalfDuplex};
  sep.task = Task::kSeparatorCheck;
  sep.n = 32;
  sep.diameter = 6;
  sep.sep_distance = 6;
  sep.sep_min_size = 4;

  SweepRecord solve;
  solve.key = {Family::kCycle, 2, 9, Mode::kFullDuplex};
  solve.task = Task::kSolveGossip;
  solve.n = 9;
  solve.rounds = 6;
  solve.states = 5516;
  solve.group = 18;
  solve.budget = 0;
  solve.millis = 12.5;

  SweepRecord synth;
  synth.key = {Family::kRandomRegular, 3, 16, Mode::kHalfDuplex};
  synth.task = Task::kSynthesize;
  synth.s = 5;
  synth.n = 16;
  synth.rounds = 14;
  synth.objective = 14005024.0;
  synth.restarts = 16;
  synth.accepted = 4321;
  synth.millis = 120.25;
  return {bound, sim, sep, solve, synth};
}

void expect_same(const std::vector<SweepRecord>& a,
                 const std::vector<SweepRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(engine::same_result(a[i], b[i])) << "record " << i;
    EXPECT_DOUBLE_EQ(a[i].millis, b[i].millis) << "record " << i;
  }
}

TEST(SweepIo, CsvRoundTrips) {
  const auto records = sample_records();
  expect_same(parse_sweep_csv(sweep_csv(records)), records);
}

TEST(SweepIo, JsonRoundTrips) {
  const auto records = sample_records();
  expect_same(parse_sweep_json(sweep_json(records)), records);
}

TEST(SweepIo, EmptyDocumentsRoundTrip) {
  EXPECT_TRUE(parse_sweep_csv(sweep_csv({})).empty());
  EXPECT_TRUE(parse_sweep_json(sweep_json({})).empty());
}

TEST(SweepIo, RealSweepOutputRoundTripsBothFormats) {
  ScenarioSpec spec;
  spec.families = {Family::kDeBruijn, Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {4};
  spec.periods = {3, 4, core::kUnboundedPeriod};
  spec.tasks = {Task::kBound, Task::kDiameterBound, Task::kSimulate,
                Task::kAudit, Task::kSeparatorCheck};
  engine::SweepRunner runner;
  const auto records = runner.run(spec);
  ASSERT_FALSE(records.empty());
  expect_same(parse_sweep_csv(sweep_csv(records)), records);
  expect_same(parse_sweep_json(sweep_json(records)), records);
}

TEST(SweepIo, CsvCommentLinesAreSkipped) {
  // The CLI prepends "# seed=N" to CSV output; the parser must ignore '#'
  // lines wherever they appear.
  const auto records = sample_records();
  const std::string with_comments =
      "# seed=424242\n" + sweep_csv_header() + "# mid-stream note\n" +
      sweep_csv_row(records[0]) + sweep_csv_row(records[1]);
  const auto parsed = parse_sweep_csv(with_comments);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(engine::same_result(parsed[0], records[0]));
  EXPECT_TRUE(engine::same_result(parsed[1], records[1]));
  EXPECT_THROW(parse_sweep_csv("# only comments\n"), std::invalid_argument);
}

TEST(SweepIo, MalformedInputThrows) {
  EXPECT_THROW(parse_sweep_csv(""), std::invalid_argument);
  EXPECT_THROW(parse_sweep_csv("wrong,header\n"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_json("{\"not\":\"an array\"}"),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_json("[{\"family\":\"bf\""), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::io
