#include "linalg/jacobi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/power_iteration.hpp"
#include "util/rng.hpp"

namespace sysgo::linalg {
namespace {

TEST(Jacobi, DiagonalMatrix) {
  Matrix m(3, 3);
  m(0, 0) = 2.0;
  m(1, 1) = -1.0;
  m(2, 2) = 5.0;
  const auto res = jacobi_eigenvalues(m);
  EXPECT_TRUE(res.converged);
  ASSERT_EQ(res.eigenvalues.size(), 3u);
  EXPECT_NEAR(res.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[2], -1.0, 1e-12);
}

TEST(Jacobi, TwoByTwoClosedForm) {
  // [[2, 1], [1, 2]]: eigenvalues 3 and 1.
  Matrix m(2, 2, {2, 1, 1, 2});
  const auto res = jacobi_eigenvalues(m);
  EXPECT_NEAR(res.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(res.eigenvalues[1], 1.0, 1e-12);
}

TEST(Jacobi, TraceAndFrobeniusPreserved) {
  util::Rng rng(5);
  const std::size_t n = 6;
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform01() - 0.5;
      m(i, j) = v;
      m(j, i) = v;
    }
  const auto res = jacobi_eigenvalues(m);
  ASSERT_TRUE(res.converged);
  double trace = 0.0, sum_sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += m(i, i);
  for (double e : res.eigenvalues) sum_sq += e * e;
  double eig_trace = 0.0;
  for (double e : res.eigenvalues) eig_trace += e;
  EXPECT_NEAR(eig_trace, trace, 1e-10);
  EXPECT_NEAR(std::sqrt(sum_sq), m.frobenius_norm(), 1e-10);
}

TEST(Jacobi, RejectsNonSymmetric) {
  Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_THROW((void)jacobi_eigenvalues(m), std::invalid_argument);
  EXPECT_THROW((void)jacobi_eigenvalues(Matrix(2, 3)), std::invalid_argument);
}

TEST(Jacobi, EmptyMatrix) {
  const auto res = jacobi_eigenvalues(Matrix(0, 0));
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.eigenvalues.empty());
}

TEST(Jacobi, OperatorNormExactMatchesRankOne) {
  Matrix m(2, 3);
  const double u[2] = {1.0, 2.0};
  const double v[3] = {3.0, 0.0, 4.0};
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = u[r] * v[c];
  EXPECT_NEAR(operator_norm_exact(m), std::sqrt(5.0) * 5.0, 1e-10);
}

// Cross-validation sweep: power iteration agrees with Jacobi on random
// non-negative matrices (the library's norm workloads).
class JacobiCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(JacobiCrossCheck, PowerIterationMatchesJacobi) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const std::size_t rows = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  const std::size_t cols = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (rng.flip(0.6)) m(i, j) = rng.uniform01();
  const double exact = operator_norm_exact(m);
  const double power = operator_norm(m).value;
  EXPECT_NEAR(power, exact, 1e-7 * std::max(1.0, exact));
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, JacobiCrossCheck, ::testing::Range(0, 25));

}  // namespace
}  // namespace sysgo::linalg
