#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sysgo::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
}

TEST(Matrix, ConstructFromDataValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const auto id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, MatVec) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const auto y = m.mul(std::vector<double>{1, 0, -1});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Matrix, TransposeMatVecMatchesExplicitTranspose) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{2, -1};
  const auto y1 = m.mul_transpose(x);
  const auto y2 = m.transpose().mul(x);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_DOUBLE_EQ(y1[i], y2[i]);
}

TEST(Matrix, MultiplyAgainstHandComputed) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {0, 1, 1, 0});
  const auto c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW((void)a.multiply(b), std::invalid_argument);
}

TEST(Matrix, AddAndScale) {
  Matrix a(1, 2, {1, 2});
  Matrix b(1, 2, {10, 20});
  const auto sum = a.add(b);
  EXPECT_DOUBLE_EQ(sum(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(sum(0, 1), 22.0);
  const auto scaled = a.scaled(-2.0);
  EXPECT_DOUBLE_EQ(scaled(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), -4.0);
}

TEST(Matrix, ApproxEqualAndDominance) {
  Matrix a(1, 2, {1.0, 2.0});
  Matrix b(1, 2, {1.0 + 1e-14, 2.0});
  EXPECT_TRUE(a.approx_equal(b, 1e-12));
  EXPECT_FALSE(a.approx_equal(Matrix(1, 2, {1.1, 2.0}), 1e-12));
  EXPECT_TRUE(a.dominated_by(Matrix(1, 2, {1.5, 2.0})));
  EXPECT_FALSE(Matrix(1, 2, {1.5, 2.0}).dominated_by(a));
  EXPECT_FALSE(a.approx_equal(Matrix(2, 1, {1, 2})));
}

TEST(Matrix, SymmetryDetection) {
  Matrix s(2, 2, {1, 5, 5, 2});
  EXPECT_TRUE(s.is_symmetric());
  Matrix a(2, 2, {1, 5, 4, 2});
  EXPECT_FALSE(a.is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(Matrix, Norms) {
  Matrix m(2, 2, {1, -2, -3, 4});
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), std::sqrt(1.0 + 4 + 9 + 16));
  EXPECT_DOUBLE_EQ(m.inf_norm(), 7.0);  // row 1: 3 + 4
  EXPECT_DOUBLE_EQ(m.one_norm(), 6.0);  // col 1: 2 + 4
}

TEST(Matrix, StrContainsEntries) {
  Matrix m(1, 2, {1.25, -3.5});
  const auto s = m.str(2);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("-3.50"), std::string::npos);
}

}  // namespace
}  // namespace sysgo::linalg
