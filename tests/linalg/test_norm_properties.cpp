// The eight matrix-norm properties listed in Section 2 of the paper,
// verified on random non-negative matrices (the only kind the machinery
// uses).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/jacobi.hpp"
#include "linalg/matrix.hpp"
#include "linalg/power_iteration.hpp"
#include "util/rng.hpp"

namespace sysgo::linalg {
namespace {

Matrix random_nonneg(util::Rng& rng, std::size_t rows, std::size_t cols,
                     double density = 0.6) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (rng.flip(density)) m(i, j) = rng.uniform01();
  return m;
}

double norm(const Matrix& m) { return operator_norm_exact(m); }

class NormProperties : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{static_cast<std::uint64_t>(GetParam()) * 2654435761u + 9};
};

TEST_P(NormProperties, Property1And2_NonNegativityAndDefiniteness) {
  const auto m = random_nonneg(rng_, 4, 5);
  EXPECT_GE(norm(m), 0.0);
  EXPECT_DOUBLE_EQ(norm(Matrix(4, 5)), 0.0);
  if (m.max_abs() > 0.0) {
    EXPECT_GT(norm(m), 0.0);
  }
}

TEST_P(NormProperties, Property3_AbsoluteHomogeneity) {
  const auto m = random_nonneg(rng_, 4, 4);
  const double a = -2.5;
  EXPECT_NEAR(norm(m.scaled(a)), std::fabs(a) * norm(m), 1e-9);
}

TEST_P(NormProperties, Property4_EntrywiseMonotonicity) {
  const auto m = random_nonneg(rng_, 5, 4);
  auto bigger = m;
  // Increase a few entries.
  for (int k = 0; k < 3; ++k)
    bigger(static_cast<std::size_t>(rng_.uniform_int(0, 4)),
           static_cast<std::size_t>(rng_.uniform_int(0, 3))) += rng_.uniform01();
  ASSERT_TRUE(m.dominated_by(bigger));
  EXPECT_LE(norm(m), norm(bigger) + 1e-9);
}

TEST_P(NormProperties, Property5_TriangleInequality) {
  const auto a = random_nonneg(rng_, 4, 4);
  const auto b = random_nonneg(rng_, 4, 4);
  EXPECT_LE(norm(a.add(b)), norm(a) + norm(b) + 1e-9);
}

TEST_P(NormProperties, Property6_SubMultiplicativity) {
  const auto a = random_nonneg(rng_, 4, 5);
  const auto b = random_nonneg(rng_, 5, 3);
  EXPECT_LE(norm(a.multiply(b)), norm(a) * norm(b) + 1e-9);
}

TEST_P(NormProperties, Property7_PermutationInvariance) {
  const auto m = random_nonneg(rng_, 4, 4);
  // Swap two rows and two columns.
  Matrix p = m;
  for (std::size_t c = 0; c < 4; ++c) std::swap(p(0, c), p(2, c));
  for (std::size_t r = 0; r < 4; ++r) std::swap(p(r, 1), p(r, 3));
  EXPECT_NEAR(norm(p), norm(m), 1e-9);
}

TEST_P(NormProperties, Property8_BlockDiagonalMax) {
  const auto a = random_nonneg(rng_, 3, 3);
  const auto b = random_nonneg(rng_, 2, 2);
  Matrix block(5, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) block(i, j) = a(i, j);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) block(3 + i, 3 + j) = b(i, j);
  EXPECT_NEAR(norm(block), std::max(norm(a), norm(b)), 1e-9);
}

TEST_P(NormProperties, SpectralRadiusBelowAnyNaturalNorm) {
  // ‖M‖ >= ρ(M) (used throughout Section 2).
  auto m = random_nonneg(rng_, 4, 4);
  EXPECT_GE(norm(m) + 1e-9, spectral_radius_nonnegative(m).value);
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, NormProperties, ::testing::Range(0, 10));

}  // namespace
}  // namespace sysgo::linalg
