#include "linalg/polynomial.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sysgo::linalg {
namespace {

TEST(Polynomial, P1IsOne) {
  EXPECT_DOUBLE_EQ(delay_polynomial(1, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(delay_polynomial(1, 0.99), 1.0);
}

TEST(Polynomial, P0IsZeroByConvention) {
  EXPECT_DOUBLE_EQ(delay_polynomial(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(delay_polynomial(-3, 0.5), 0.0);
}

TEST(Polynomial, P2MatchesDefinition) {
  const double l = 0.7;
  EXPECT_NEAR(delay_polynomial(2, l), 1.0 + l * l, 1e-15);
}

TEST(Polynomial, GeneralTermMatchesDirectSum) {
  const double l = 0.61803;
  for (int i = 1; i <= 10; ++i) {
    double expected = 0.0;
    for (int j = 0; j < i; ++j) expected += std::pow(l, 2 * j);
    EXPECT_NEAR(delay_polynomial(i, l), expected, 1e-13) << "i=" << i;
  }
}

TEST(Polynomial, CompositionIdentity) {
  // Paper: p_i(λ) + λ^{2i} p_j(λ) = p_{i+j}(λ).
  const double l = 0.43;
  for (int i = 1; i <= 6; ++i)
    for (int j = 1; j <= 6; ++j)
      EXPECT_NEAR(delay_polynomial(i, l) + std::pow(l, 2 * i) * delay_polynomial(j, l),
                  delay_polynomial(i + j, l), 1e-13);
}

TEST(Polynomial, BalancedSplitMaximizesProduct) {
  // Lemma 4.3's inner inequality: p_{i+1}·p_{j-1} < p_i·p_j for i <= j-2...
  // equivalently the balanced split maximizes p_a·p_b with a+b fixed.
  const double l = 0.55;
  const int total = 8;
  const double balanced = delay_polynomial(4, l) * delay_polynomial(4, l);
  for (int a = 1; a < total; ++a) {
    const double prod = delay_polynomial(a, l) * delay_polynomial(total - a, l);
    EXPECT_LE(prod, balanced + 1e-13) << "a=" << a;
  }
}

TEST(Polynomial, LimitMatchesLargeI) {
  const double l = 0.6;
  EXPECT_NEAR(delay_polynomial(200, l), delay_polynomial_limit(l), 1e-12);
}

TEST(Polynomial, GeometricSumMatchesDirect) {
  const double l = 0.8;
  for (int k = 0; k <= 10; ++k) {
    double expected = 0.0;
    for (int j = 1; j <= k; ++j) expected += std::pow(l, j);
    EXPECT_NEAR(geometric_sum(k, l), expected, 1e-13) << "k=" << k;
  }
}

TEST(Polynomial, GeometricSumLimit) {
  const double l = 0.5;
  EXPECT_NEAR(geometric_sum(200, l), geometric_sum_limit(l), 1e-12);
  EXPECT_DOUBLE_EQ(geometric_sum_limit(0.5), 1.0);
}

TEST(Polynomial, MonotoneInLambda) {
  for (int i = 2; i <= 6; ++i)
    EXPECT_LT(delay_polynomial(i, 0.3), delay_polynomial(i, 0.7));
}

}  // namespace
}  // namespace sysgo::linalg
