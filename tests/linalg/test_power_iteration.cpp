#include "linalg/power_iteration.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sysgo::linalg {
namespace {

TEST(PowerIteration, NormOfDiagonalMatrix) {
  Matrix m(3, 3);
  m(0, 0) = 1.0;
  m(1, 1) = 5.0;
  m(2, 2) = 2.0;
  const auto res = operator_norm(m);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.value, 5.0, 1e-9);
}

TEST(PowerIteration, NormOfRankOneMatrix) {
  // uvᵀ has norm |u|·|v|.
  Matrix m(2, 3);
  const double u[2] = {1.0, 2.0};
  const double v[3] = {3.0, 0.0, 4.0};
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = u[r] * v[c];
  const auto res = operator_norm(m);
  EXPECT_NEAR(res.value, std::sqrt(5.0) * 5.0, 1e-9);
}

TEST(PowerIteration, NormOfZeroMatrixIsZero) {
  const auto res = operator_norm(Matrix(4, 4));
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.value, 0.0);
}

TEST(PowerIteration, EmptyMatrix) {
  const auto res = operator_norm(Matrix(0, 0));
  EXPECT_TRUE(res.converged);
  EXPECT_DOUBLE_EQ(res.value, 0.0);
}

TEST(PowerIteration, SymmetricMatrixNormEqualsSpectralRadius) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  Matrix m(2, 2, {2, 1, 1, 2});
  EXPECT_NEAR(operator_norm(m).value, 3.0, 1e-9);
  EXPECT_NEAR(spectral_radius_nonnegative(m).value, 3.0, 1e-9);
}

TEST(PowerIteration, SpectralRadiusOfPermutationIsOne) {
  Matrix m(3, 3);
  m(0, 1) = 1.0;
  m(1, 2) = 1.0;
  m(2, 0) = 1.0;
  EXPECT_NEAR(spectral_radius_nonnegative(m).value, 1.0, 1e-9);
}

TEST(PowerIteration, NormDominatesSpectralRadius) {
  // Nonnegative, non-symmetric.
  Matrix m(2, 2, {0.5, 0.8, 0.1, 0.3});
  const double norm = operator_norm(m).value;
  const double rho = spectral_radius_nonnegative(m).value;
  EXPECT_GE(norm + 1e-12, rho);
}

TEST(PowerIteration, SparseMatchesDense) {
  SparseMatrix s(3, 3, {{0, 1, 0.7}, {1, 2, 0.7}, {2, 0, 0.7}, {0, 0, 0.2}});
  const double ns = operator_norm(s).value;
  const double nd = operator_norm(s.to_dense()).value;
  EXPECT_NEAR(ns, nd, 1e-9);
}

TEST(PowerIteration, GeometricBoundsNormOfUpperShift) {
  // Nilpotent shift with λ weights: norm bounded by row-sum/col-sum product.
  const double lam = 0.5;
  Matrix m(10, 10);
  for (std::size_t i = 0; i + 1 < 10; ++i) m(i, i + 1) = lam;
  const double norm = operator_norm(m).value;
  EXPECT_NEAR(norm, lam, 1e-9);  // single diagonal: norm = λ
}

TEST(PowerIteration, ParallelSparseMatchesSerial) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < 5000; ++i)
    trips.push_back({(i * 13) % 300, (i * 7) % 300, 0.01 + (i % 5) * 0.01});
  SparseMatrix m(300, 300, std::move(trips));
  PowerIterationOptions par;
  par.parallel = true;
  EXPECT_NEAR(operator_norm(m).value, operator_norm(m, par).value, 1e-8);
}

}  // namespace
}  // namespace sysgo::linalg
