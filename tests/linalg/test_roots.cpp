#include "linalg/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sysgo::linalg {
namespace {

TEST(Roots, BisectFindsSqrt2) {
  const auto res = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(res.bracketed);
  EXPECT_NEAR(res.x, std::sqrt(2.0), 1e-12);
}

TEST(Roots, BisectGoldenRatioReciprocal) {
  // λ/(1−λ²) = 1  =>  λ = 1/φ = 0.6180339887...
  const auto res =
      bisect([](double l) { return l / (1.0 - l * l) - 1.0; }, 0.01, 0.99);
  EXPECT_TRUE(res.bracketed);
  EXPECT_NEAR(res.x, (std::sqrt(5.0) - 1.0) / 2.0, 1e-11);
}

TEST(Roots, BisectExactEndpointRoot) {
  const auto res = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(res.bracketed);
  EXPECT_DOUBLE_EQ(res.x, 0.0);
}

TEST(Roots, BisectUnbracketedReported) {
  const auto res = bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(res.bracketed);
}

TEST(Roots, MaximizeParabola) {
  const auto res = maximize([](double x) { return -(x - 0.3) * (x - 0.3) + 2.0; },
                            0.0, 1.0);
  // Near a smooth maximum, f(x*) − f(x) ~ (x − x*)², so an x-accuracy of
  // sqrt(value tolerance) is what golden section delivers.
  EXPECT_NEAR(res.x, 0.3, 1e-6);
  EXPECT_NEAR(res.value, 2.0, 1e-12);
}

TEST(Roots, MaximizeBoundaryMaximum) {
  const auto res = maximize([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(res.x, 1.0, 1e-9);
  EXPECT_NEAR(res.value, 1.0, 1e-9);
}

TEST(Roots, MaximizeHandlesMultimodalWithDenseGrid) {
  // Global max at x ≈ 0.9 among two local maxima.
  const auto f = [](double x) {
    return std::sin(10.0 * x) + 0.5 * x;
  };
  const auto res = maximize(f, 0.0, 1.0, 8192);
  // Global maximum of sin(10x)+x/2 on [0,1]: compare against dense scan.
  double best = -1e9;
  for (int i = 0; i <= 1'000'000; ++i) {
    const double x = i * 1e-6;
    best = std::max(best, f(x));
  }
  EXPECT_NEAR(res.value, best, 1e-7);
}

TEST(Roots, MaximizeConstantFunction) {
  const auto res = maximize([](double) { return 7.0; }, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(res.value, 7.0);
}

}  // namespace
}  // namespace sysgo::linalg
