#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sysgo::linalg {
namespace {

TEST(Sparse, EmptyMatrix) {
  SparseMatrix m(3, 3, {});
  EXPECT_EQ(m.nnz(), 0u);
  const auto y = m.mul(std::vector<double>{1, 2, 3});
  for (double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Sparse, DuplicateTripletsAreSummed) {
  SparseMatrix m(2, 2, {{0, 1, 2.0}, {0, 1, 3.0}});
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
}

TEST(Sparse, CancellingDuplicatesDropEntry) {
  SparseMatrix m(2, 2, {{0, 1, 2.0}, {0, 1, -2.0}});
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(Sparse, OutOfBoundsTripletThrows) {
  EXPECT_THROW(SparseMatrix(2, 2, {{2, 0, 1.0}}), std::out_of_range);
  EXPECT_THROW(SparseMatrix(2, 2, {{0, 5, 1.0}}), std::out_of_range);
}

TEST(Sparse, MatVecMatchesDense) {
  SparseMatrix m(3, 2, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 0, -1.0}, {2, 1, 0.5}});
  const std::vector<double> x{3.0, 4.0};
  const auto ys = m.mul(x);
  const auto yd = m.to_dense().mul(x);
  ASSERT_EQ(ys.size(), yd.size());
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Sparse, ParallelMatVecMatchesSerial) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < 10'000; ++i)
    trips.push_back({i % 500, (i * 7) % 400, 1.0 + static_cast<double>(i % 3)});
  SparseMatrix m(500, 400, std::move(trips));
  std::vector<double> x(400);
  for (std::size_t i = 0; i < 400; ++i) x[i] = static_cast<double>(i % 7) - 3.0;
  const auto serial = m.mul(x, false);
  const auto parallel = m.mul(x, true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]);
}

TEST(Sparse, TransposeMatVecMatchesDenseTranspose) {
  SparseMatrix m(3, 2, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 0, -1.0}});
  const std::vector<double> x{1.0, -1.0, 2.0};
  const auto ys = m.mul_transpose(x);
  const auto yd = m.to_dense().transpose().mul(x);
  ASSERT_EQ(ys.size(), yd.size());
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(Sparse, AtFindsEntries) {
  SparseMatrix m(3, 3, {{1, 2, 4.0}, {1, 0, 3.0}});
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 0.0);
}

TEST(Sparse, NormsMatchDense) {
  SparseMatrix m(2, 3, {{0, 0, 1.0}, {0, 2, -2.0}, {1, 1, 3.0}});
  const auto d = m.to_dense();
  EXPECT_DOUBLE_EQ(m.inf_norm(), d.inf_norm());
  EXPECT_DOUBLE_EQ(m.one_norm(), d.one_norm());
}

}  // namespace
}  // namespace sysgo::linalg
