#include "linalg/vector_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sysgo::linalg {
namespace {

TEST(VectorOps, Norm2) {
  std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm2(std::vector<double>{}), 0.0);
}

TEST(VectorOps, NormInfAndOne) {
  std::vector<double> v{-3.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(norm_inf(v), 3.0);
  EXPECT_DOUBLE_EQ(norm1(v), 6.0);
}

TEST(VectorOps, Dot) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, ScaleInPlace) {
  std::vector<double> v{1.0, -2.0};
  scale(v, 3.0);
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], -6.0);
}

TEST(VectorOps, NormalizeReturnsPreviousNorm) {
  std::vector<double> v{0.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(normalize(v), 5.0);
  EXPECT_NEAR(norm2(v), 1.0, 1e-15);
}

TEST(VectorOps, NormalizeZeroVectorIsNoop) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(v), 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(VectorOps, WeightedMaxNormMatchesLemma21Definition) {
  // |z|_x = max |z_i / x_i|
  std::vector<double> z{2.0, -6.0};
  std::vector<double> x{1.0, 3.0};
  EXPECT_DOUBLE_EQ(weighted_max_norm(z, x), 2.0);
}

TEST(VectorOps, WeightedMaxNormIsANorm) {
  std::vector<double> x{0.5, 2.0, 1.0};
  std::vector<double> a{1.0, -1.0, 0.5};
  std::vector<double> b{-0.5, 0.25, 2.0};
  // Triangle inequality.
  std::vector<double> sum(3);
  for (int i = 0; i < 3; ++i)
    sum[static_cast<std::size_t>(i)] =
        a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
  EXPECT_LE(weighted_max_norm(sum, x),
            weighted_max_norm(a, x) + weighted_max_norm(b, x) + 1e-15);
  // Homogeneity.
  std::vector<double> a2(a);
  scale(a2, -2.0);
  EXPECT_NEAR(weighted_max_norm(a2, x), 2.0 * weighted_max_norm(a, x), 1e-15);
  // Zero iff zero vector.
  EXPECT_DOUBLE_EQ(weighted_max_norm(std::vector<double>{0, 0, 0}, x), 0.0);
  EXPECT_GT(weighted_max_norm(a, x), 0.0);
}

}  // namespace
}  // namespace sysgo::linalg
