// Bench-snapshot parsing and regression gating: both schema versions
// load, self-compares pass, a slowdown beyond the threshold fails the
// compare (that is the CI gate), improvements and one-sided benchmarks do
// not, and incomparable contexts are refused unless overridden.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/bench_compare.hpp"

namespace sysgo::obs::bench {
namespace {

const char* kV1Doc = R"({
  "sysgo_bench": 1,
  "name": "demo",
  "context": {"num_cpus": 1, "cpu_ghz": 2.100000},
  "benchmarks": {
    "work/a": {"time_unit": "ms", "reps": 1, "median_real_time": 10.0,
               "p90_real_time": 10.0, "counters": {"rows/s": 1000.0}},
    "work/b": {"time_unit": "us", "reps": 1, "median_real_time": 5.0,
               "p90_real_time": 5.0}
  }
})";

const char* kV2Doc = R"({
  "sysgo_bench": 2,
  "name": "demo",
  "context": {"num_cpus": 8, "cpu_ghz": 2.100000, "kernel": "avx512",
              "build_type": "release", "git_sha": "abc1234",
              "perf_available": true},
  "benchmarks": {
    "work/a": {"time_unit": "ms", "reps": 5, "median_real_time": 10.0,
               "p90_real_time": 11.0, "counters": {"rows/s": 1000.0},
               "perf": {"ipc": 2.5, "task_clock_ms": 9.8}}
  }
})";

/// A copy of `snap` with one benchmark's median scaled by `factor`.
BenchSnapshot scaled(BenchSnapshot snap, const std::string& name,
                     double factor) {
  snap.benchmarks.at(name).median_real_time *= factor;
  return snap;
}

TEST(BenchParse, SchemaV1LoadsWithoutNewContextFields) {
  const BenchSnapshot snap = parse_snapshot(kV1Doc);
  EXPECT_EQ(snap.schema, 1);
  EXPECT_EQ(snap.name, "demo");
  EXPECT_EQ(snap.context.num_cpus, 1);
  EXPECT_TRUE(snap.context.kernel.empty());
  EXPECT_FALSE(snap.context.perf_available);
  ASSERT_EQ(snap.benchmarks.size(), 2u);
  const BenchEntry& a = snap.benchmarks.at("work/a");
  EXPECT_EQ(a.time_unit, "ms");
  EXPECT_DOUBLE_EQ(a.median_real_time, 10.0);
  EXPECT_DOUBLE_EQ(a.counters.at("rows/s"), 1000.0);
  EXPECT_TRUE(snap.benchmarks.at("work/b").counters.empty());
}

TEST(BenchParse, SchemaV2LoadsContextAndPerf) {
  const BenchSnapshot snap = parse_snapshot(kV2Doc);
  EXPECT_EQ(snap.schema, 2);
  EXPECT_EQ(snap.context.kernel, "avx512");
  EXPECT_EQ(snap.context.build_type, "release");
  EXPECT_EQ(snap.context.git_sha, "abc1234");
  EXPECT_TRUE(snap.context.perf_available);
  const BenchEntry& a = snap.benchmarks.at("work/a");
  EXPECT_EQ(a.reps, 5);
  EXPECT_DOUBLE_EQ(a.perf.at("ipc"), 2.5);
}

TEST(BenchParse, RejectsUnknownSchemaAndMalformedDocs) {
  EXPECT_THROW(parse_snapshot("{\"sysgo_bench\": 3, \"name\": \"x\","
                              " \"context\": {}, \"benchmarks\": {}}"),
               std::runtime_error);
  EXPECT_THROW(parse_snapshot("[1, 2]"), std::runtime_error);
  EXPECT_THROW(parse_snapshot("{\"name\": \"x\"}"), std::runtime_error);
}

TEST(BenchCompare, SelfCompareAlwaysPasses) {
  const BenchSnapshot snap = parse_snapshot(kV1Doc);
  const CompareReport report = compare(snap, snap, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.improvements, 0u);
}

TEST(BenchCompare, SlowdownBeyondThresholdFails) {
  const BenchSnapshot base = parse_snapshot(kV1Doc);
  const BenchSnapshot cur = scaled(base, "work/a", 1.30);  // +30%
  CompareOptions opts;
  opts.threshold_pct = 25.0;
  const CompareReport report = compare(base, cur, opts);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
}

TEST(BenchCompare, SlowdownWithinThresholdPasses) {
  const BenchSnapshot base = parse_snapshot(kV1Doc);
  const BenchSnapshot cur = scaled(base, "work/a", 1.20);  // +20% < 25%
  CompareOptions opts;
  opts.threshold_pct = 25.0;
  EXPECT_TRUE(compare(base, cur, opts).ok());
}

TEST(BenchCompare, ImprovementIsReportedNotFailed) {
  const BenchSnapshot base = parse_snapshot(kV1Doc);
  const BenchSnapshot cur = scaled(base, "work/a", 0.5);  // 2x faster
  const CompareReport report = compare(base, cur, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.improvements, 1u);
}

TEST(BenchCompare, CounterRateDropGatesOnlyWithCountersFlag) {
  const BenchSnapshot base = parse_snapshot(kV1Doc);
  BenchSnapshot cur = base;
  cur.benchmarks.at("work/a").counters.at("rows/s") = 600.0;  // -40%
  EXPECT_TRUE(compare(base, cur, {}).ok());  // times unchanged
  CompareOptions opts;
  opts.counters = true;
  opts.threshold_pct = 25.0;
  const CompareReport report = compare(base, cur, opts);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.regressions, 1u);
}

TEST(BenchCompare, OneSidedBenchmarksDoNotFail) {
  const BenchSnapshot base = parse_snapshot(kV1Doc);
  BenchSnapshot cur = base;
  cur.benchmarks.erase("work/b");
  cur.benchmarks["work/c"] = cur.benchmarks.at("work/a");
  const CompareReport report = compare(base, cur, {});
  EXPECT_TRUE(report.ok());
  bool saw_missing = false;
  bool saw_new = false;
  for (const CompareRow& row : report.rows) {
    if (row.name == "work/b") saw_missing |= row.status == RowStatus::kMissing;
    if (row.name == "work/c") saw_new |= row.status == RowStatus::kNew;
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_TRUE(saw_new);
}

TEST(BenchCompare, RefusesContextMismatchUnlessOverridden) {
  const BenchSnapshot v2 = parse_snapshot(kV2Doc);
  BenchSnapshot other = v2;
  other.context.kernel = "scalar";
  EXPECT_THROW((void)compare(v2, other, {}), std::invalid_argument);
  CompareOptions opts;
  opts.allow_context_mismatch = true;
  const CompareReport report = compare(v2, other, opts);
  EXPECT_TRUE(report.ok());
  bool noted = false;
  for (const std::string& note : report.context_notes)
    if (note.find("kernel") != std::string::npos) noted = true;
  EXPECT_TRUE(noted);
}

TEST(BenchCompare, V1AgainstV2SkipsAbsentContextFields) {
  // A v1 baseline has no kernel/build_type: the compare must proceed (the
  // fields are unknown, not different) and note the skip.
  const BenchSnapshot v1 = parse_snapshot(kV1Doc);
  BenchSnapshot v2 = parse_snapshot(kV2Doc);
  v2.context.num_cpus = 1;  // num_cpus exists on both sides: must match
  const CompareReport report = compare(v1, v2, {});
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.context_notes.empty());
}

TEST(BenchRender, ReportNamesTheVerdict) {
  const BenchSnapshot base = parse_snapshot(kV1Doc);
  const BenchSnapshot cur = scaled(base, "work/a", 2.0);
  CompareOptions opts;
  opts.threshold_pct = 25.0;
  const CompareReport report = compare(base, cur, opts);
  const std::string text = render_report(report, opts);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_EQ(render_report(compare(base, base, opts), opts).find("FAIL"),
            std::string::npos);
}

TEST(BenchRender, LocalContextIsPopulated) {
  const Context ctx = local_context();
  EXPECT_GT(ctx.num_cpus, 0);
  EXPECT_FALSE(ctx.kernel.empty());
  EXPECT_TRUE(ctx.build_type == "release" || ctx.build_type == "debug");
  const std::string text = render_context(ctx);
  EXPECT_NE(text.find("kernel: "), std::string::npos);
  EXPECT_NE(text.find("git_sha: "), std::string::npos);
}

}  // namespace
}  // namespace sysgo::obs::bench
