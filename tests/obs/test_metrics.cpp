#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace sysgo::obs {
namespace {

/// Each test works on its own uniquely named metrics (the registry is
/// process-wide and other suites' TUs register eagerly), and quantile /
/// snapshot tests reset what they touch.

TEST(Counter, ConcurrentHammeringEqualsSerialTotal) {
  Counter& c = counter("test.obs.counter.hammer");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, DisabledAddIsANoOp) {
  Counter& c = counter("test.obs.counter.disabled");
  c.reset();
  set_enabled(false);
  c.add(42);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.add(42);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddAndHighWater) {
  Gauge& g = gauge("test.obs.gauge.basic");
  g.reset();
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.record_max(5);  // below current: no change
  EXPECT_EQ(g.value(), 7);
  g.record_max(11);
  EXPECT_EQ(g.value(), 11);
}

TEST(Histogram, ConcurrentHammeringEqualsSerialTotals) {
  Histogram& h = histogram("test.obs.histogram.hammer");
  h.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      // Thread t records the constant value t+1: totals and min/max are
      // exactly predictable regardless of interleaving.
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record_micros(static_cast<std::uint64_t>(t) + 1);
    });
  for (auto& t : threads) t.join();
  const Histogram::Agg agg = h.aggregate();
  EXPECT_EQ(agg.count, kThreads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t)
    expected_sum += (static_cast<std::uint64_t>(t) + 1) * kPerThread;
  EXPECT_EQ(agg.sum_us, expected_sum);
  EXPECT_EQ(agg.min_us, 1u);
  EXPECT_EQ(agg.max_us, 8u);
}

TEST(Histogram, QuantilesOfConstantSampleClampToObservedValue) {
  Histogram& h = histogram("test.obs.histogram.constant");
  h.reset();
  for (int i = 0; i < 100; ++i) h.record_micros(10);
  const Histogram::Agg agg = h.aggregate();
  // Interpolation inside bucket [8, 16) lands above 10, but the estimate
  // clamps to the observed [min, max] = [10, 10].
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.50), 10.0);
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.90), 10.0);
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.99), 10.0);
}

TEST(Histogram, QuantilesOfBimodalSample) {
  Histogram& h = histogram("test.obs.histogram.bimodal");
  h.reset();
  for (int i = 0; i < 50; ++i) h.record_micros(1);
  for (int i = 0; i < 50; ++i) h.record_micros(1000);
  const Histogram::Agg agg = h.aggregate();
  // p50: rank 50 is the last of bucket [1, 2) -> 1 + 1 * (50/50) = 2.
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.50), 2.0);
  // p90: rank 90 is 40th of 50 in bucket [512, 1024) ->
  // 512 + 512 * 40/50 = 921.6.
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.90), 921.6);
  // p99: rank 99 interpolates past the observed max and clamps to 1000.
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.99), 1000.0);
}

TEST(Histogram, OverflowSamplesClampIntoLastBucketAndMovePercentiles) {
  Histogram& h = histogram("test.obs.histogram.overflow");
  h.reset();
  // One tiny sample plus 99 beyond the top bucket's nominal range
  // [2^38, 2^39): bucket_of clamps them into the last bucket, and p99 must
  // land near the observed max, not under the nominal 2^39 edge.
  const std::uint64_t huge = std::uint64_t{1} << 50;
  h.record_micros(1);
  for (int i = 0; i < 99; ++i) h.record_micros(huge);
  const Histogram::Agg agg = h.aggregate();
  EXPECT_EQ(agg.count, 100u);
  EXPECT_EQ(agg.buckets[Histogram::kBuckets - 1], 99u);
  EXPECT_EQ(agg.max_us, huge);
  const double p99 = agg.quantile_us(0.99);
  // Regression: interpolating within the nominal top-bucket range capped
  // the estimate at 2^39 ~ 5.5e11, a ~2000x underestimate of the 2^50
  // samples that dominate this distribution.
  EXPECT_GT(p99, static_cast<double>(std::uint64_t{1} << 39));
  EXPECT_LE(p99, static_cast<double>(huge));
  // p50 sits inside the overflow mass too.
  EXPECT_GT(agg.quantile_us(0.50), static_cast<double>(std::uint64_t{1} << 38));
}

TEST(Histogram, EmptyAggregateIsAllZero) {
  Histogram& h = histogram("test.obs.histogram.empty");
  h.reset();
  const Histogram::Agg agg = h.aggregate();
  EXPECT_EQ(agg.count, 0u);
  EXPECT_EQ(agg.min_us, 0u);
  EXPECT_EQ(agg.max_us, 0u);
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.50), 0.0);
}

TEST(Histogram, ZeroMicrosecondsLandInBucketZero) {
  Histogram& h = histogram("test.obs.histogram.zero");
  h.reset();
  h.record_micros(0);
  const Histogram::Agg agg = h.aggregate();
  EXPECT_EQ(agg.buckets[0], 1u);
  EXPECT_DOUBLE_EQ(agg.quantile_us(0.99), 0.0);
}

TEST(ScopedTimer, RecordsOnDestruction) {
  Histogram& h = histogram("test.obs.histogram.scoped");
  h.reset();
  { const ScopedTimer span(h); }
  EXPECT_EQ(h.aggregate().count, 1u);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Counter& a = counter("test.obs.registry.same");
  Counter& b = counter("test.obs.registry.same");
  EXPECT_EQ(&a, &b);
}

TEST(Snapshot, TwoRendersOfIdleRegistryAreByteIdentical) {
  // Writers quiescent: two snapshot+render round trips must agree byte for
  // byte, in both formats (the determinism contract of --metrics).
  const std::string json1 = to_json(snapshot());
  const std::string json2 = to_json(snapshot());
  EXPECT_EQ(json1, json2);
  const std::string csv1 = to_csv(snapshot());
  const std::string csv2 = to_csv(snapshot());
  EXPECT_EQ(csv1, csv2);
}

TEST(Snapshot, NamesAreSortedWithinEachKind) {
  (void)counter("test.obs.sort.b");
  (void)counter("test.obs.sort.a");
  const Snapshot snap = snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  for (std::size_t i = 1; i < snap.histograms.size(); ++i)
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
}

TEST(Snapshot, JsonCarriesRecordedValues) {
  Counter& c = counter("test.obs.json.value");
  c.reset();
  c.add(7);
  const std::string json = to_json(snapshot());
  EXPECT_NE(json.find("\"test.obs.json.value\": 7"), std::string::npos);
  c.reset();
}

}  // namespace
}  // namespace sysgo::obs
