// Sweep-level guarantees of the obs layer: metrics NEVER feed results
// (records are identical with collection on or off), and the engine's
// instrumentation actually counts what ran.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "io/sweep_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sysgo::engine {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.families = {topology::Family::kDeBruijn, topology::Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {3, 4};
  spec.tasks = {Task::kBound, Task::kSimulate, Task::kAudit};
  return spec;
}

/// CSV rows with the wall-clock column zeroed: everything the obs on/off
/// comparison must hold byte-identical.
std::vector<std::string> timeless_rows(const std::vector<SweepRecord>& recs) {
  std::vector<std::string> rows;
  rows.reserve(recs.size());
  for (SweepRecord r : recs) {
    r.millis = 0.0;
    rows.push_back(io::sweep_csv_row(r));
  }
  return rows;
}

TEST(ObsSweep, RecordsAreIdenticalWithMetricsOnAndOff) {
  const ScenarioSpec spec = small_spec();
  obs::set_enabled(true);
  const auto on = SweepRunner().run(spec);
  obs::set_enabled(false);
  const auto off = SweepRunner().run(spec);
  obs::set_enabled(true);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i)
    EXPECT_TRUE(same_result(on[i], off[i])) << "record " << i << " diverged";
  EXPECT_EQ(timeless_rows(on), timeless_rows(off));
}

TEST(ObsSweep, RecordsAreIdenticalWithTracingOnAndOff) {
  // The tracing analog of the metrics contract: span recording must never
  // feed results.  A threaded run exercises the pool's flow-arrow wrapping
  // and the per-task spans while the records stay byte-identical.
  const ScenarioSpec spec = small_spec();
  SweepOptions opts;
  opts.threads = 4;
  obs::trace::set_enabled(true);
  const auto on = SweepRunner(opts).run(spec);
  obs::trace::set_enabled(false);
  const auto off = SweepRunner(opts).run(spec);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i)
    EXPECT_TRUE(same_result(on[i], off[i])) << "record " << i << " diverged";
  EXPECT_EQ(timeless_rows(on), timeless_rows(off));
  // And the traced run actually recorded engine spans.
  const auto dump = obs::trace::drain();
  std::size_t engine_spans = 0;
  for (const auto& lane : dump.lanes)
    for (const auto& e : lane.events)
      if (e.kind == obs::trace::EventKind::kComplete &&
          e.name < dump.strings.size() &&
          dump.strings[e.name].rfind("engine.task.", 0) == 0)
        ++engine_spans;
  EXPECT_GT(engine_spans, 0u);
  obs::trace::reset_for_testing();
}

TEST(ObsSweep, EngineCountersTrackCompletedJobs) {
  obs::Counter& completed = obs::counter("engine.jobs_completed");
  const std::uint64_t before = completed.value();
  const ScenarioSpec spec = small_spec();
  const auto records = SweepRunner().run(spec);
  EXPECT_EQ(completed.value() - before, records.size());
}

TEST(ObsSweep, TaskHistogramsMatchTaskCounts) {
  obs::Histogram& sim = obs::histogram("engine.task.simulate.micros");
  const std::uint64_t before = sim.aggregate().count;
  ScenarioSpec spec = small_spec();
  spec.tasks = {Task::kSimulate};
  const auto records = SweepRunner().run(spec);
  EXPECT_EQ(sim.aggregate().count - before, records.size());
}

TEST(ObsSweep, CacheCountersMirrorRunnerStats) {
  obs::Counter& hits = obs::counter("engine.cache.hits");
  obs::Counter& misses = obs::counter("engine.cache.misses");
  const std::uint64_t hits_before = hits.value();
  const std::uint64_t misses_before = misses.value();
  SweepRunner runner;
  (void)runner.run(small_spec());
  const auto stats = runner.cache_stats();
  EXPECT_EQ(hits.value() - hits_before, stats.hits);
  EXPECT_EQ(misses.value() - misses_before, stats.misses);
}

}  // namespace
}  // namespace sysgo::engine
