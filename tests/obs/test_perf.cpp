// perf_event profiling contracts: disabled profiling is a strict no-op,
// multiplex scaling is exact at the boundary cases, the software
// task-clock (available even in PMU-less containers) stays inside sane
// wall-clock bounds, and — the load-bearing guarantee — sweep records are
// byte-identical with --perf on and off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/scenario.hpp"
#include "engine/sweep.hpp"
#include "io/sweep_io.hpp"
#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/wall_timer.hpp"

namespace sysgo::obs::perf {
namespace {

/// Restores the global perf switch on scope exit so test order never
/// leaks profiling state between cases.
struct PerfSwitchGuard {
  const bool was = enabled();
  ~PerfSwitchGuard() { set_enabled(was); }
};

TEST(PerfScale, BoundaryCases) {
  // Never scheduled: report nothing rather than extrapolate from nothing.
  EXPECT_EQ(scale_value(1000, 500, 0), 0u);
  // Fully scheduled: raw value passes through exactly.
  EXPECT_EQ(scale_value(1000, 500, 500), 1000u);
  EXPECT_EQ(scale_value(1000, 0, 0), 0u);
  // running > enabled (clock skew inside the kernel): still the raw value.
  EXPECT_EQ(scale_value(1000, 500, 600), 1000u);
}

TEST(PerfScale, LinearExtrapolation) {
  // Scheduled half the time: the estimate doubles.
  EXPECT_EQ(scale_value(1000, 1000, 500), 2000u);
  // Quarter of the time: x4.
  EXPECT_EQ(scale_value(250, 1000, 250), 1000u);
}

TEST(Perf, DisabledIsANoOp) {
  PerfSwitchGuard guard;
  set_enabled(false);
  const Sample s = read_sample();
  EXPECT_EQ(s.cycles, 0u);
  EXPECT_EQ(s.instructions, 0u);
  EXPECT_EQ(s.task_clock_ns, 0u);
  static PerfRollup rollup("test.perf_noop");
  PerfScope scope(rollup);
  EXPECT_FALSE(scope.armed());
}

TEST(Perf, AvailabilityIsStablePerThread) {
  PerfSwitchGuard guard;
  set_enabled(true);
  const Availability a = available();
  const Availability b = available();
  EXPECT_EQ(a.hardware, b.hardware);
  EXPECT_EQ(a.software, b.software);
}

TEST(Perf, TaskClockTracksBusyWallTime) {
  PerfSwitchGuard guard;
  set_enabled(true);
  if (!available().software)
    GTEST_SKIP() << "no software counter access in this environment";
  const Sample before = read_sample();
  const WallTimer timer;
  // Busy work the optimizer cannot drop; runs a few milliseconds.
  volatile std::uint64_t sink = 0;
  while (timer.millis() < 20.0)
    for (int i = 0; i < 1000; ++i)
      sink = sink + static_cast<std::uint64_t>(i) * i;
  const double wall_ns = timer.millis() * 1e6;
  const Sample after = read_sample();
  ASSERT_GE(after.task_clock_ns, before.task_clock_ns);
  const auto busy_ns = after.task_clock_ns - before.task_clock_ns;
  // The load-bearing sanity bound: one thread's task clock can never
  // exceed its wall time (plus slack for timer granularity).  The lower
  // bound only demands the clock advanced — under ctest -j on a small
  // machine the spinner may get an arbitrarily thin CPU share.
  EXPECT_GT(busy_ns, 0u);
  EXPECT_LT(static_cast<double>(busy_ns), wall_ns * 1.5 + 5e6);
}

TEST(Perf, ScopeChargesRollupWhenCountersAvailable) {
  PerfSwitchGuard guard;
  set_enabled(true);
  const Availability avail = available();
  if (!avail.software && !avail.hardware)
    GTEST_SKIP() << "no counter access in this environment";
  static PerfRollup rollup("test.perf_charge");
  const std::uint64_t clock_before = rollup.task_clock_us.value();
  {
    PerfScope scope(rollup);
    EXPECT_TRUE(scope.armed());
    volatile std::uint64_t sink = 0;
    const WallTimer timer;
    while (timer.millis() < 10.0)
      for (int i = 0; i < 1000; ++i)
        sink = sink + static_cast<std::uint64_t>(i) * i;
  }
  if (avail.software) {
    EXPECT_GT(rollup.task_clock_us.value(), clock_before);
  }
}

}  // namespace
}  // namespace sysgo::obs::perf

namespace sysgo::engine {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.families = {topology::Family::kDeBruijn, topology::Family::kKautz};
  spec.degrees = {2};
  spec.dimensions = {3, 4};
  spec.tasks = {Task::kBound, Task::kSimulate, Task::kAudit};
  return spec;
}

std::vector<std::string> timeless_rows(const std::vector<SweepRecord>& recs) {
  std::vector<std::string> rows;
  rows.reserve(recs.size());
  for (SweepRecord r : recs) {
    r.millis = 0.0;
    rows.push_back(io::sweep_csv_row(r));
  }
  return rows;
}

TEST(PerfSweep, RecordsAreIdenticalWithPerfOnAndOff) {
  // The --perf analog of the metrics/tracing byte-identity contract:
  // counter collection must never feed results.
  const ScenarioSpec spec = small_spec();
  obs::perf::set_enabled(true);
  const auto on = SweepRunner().run(spec);
  obs::perf::set_enabled(false);
  const auto off = SweepRunner().run(spec);
  ASSERT_EQ(on.size(), off.size());
  for (std::size_t i = 0; i < on.size(); ++i)
    EXPECT_TRUE(same_result(on[i], off[i])) << "record " << i << " diverged";
  EXPECT_EQ(timeless_rows(on), timeless_rows(off));
}

TEST(PerfSweep, TaskRollupsAppearInSnapshot) {
  // The engine registers its per-task perf rollups eagerly, so the names
  // are in the catalog even before (or without) any profiled run.
  const auto snap = obs::snapshot();
  bool found = false;
  for (const auto& c : snap.counters)
    if (c.name == "engine.task.simulate.perf.task_clock_us") found = true;
  EXPECT_TRUE(found);
}

TEST(PerfSweep, ProfiledRunChargesTaskRollups) {
  obs::perf::set_enabled(true);
  const auto avail = obs::perf::available();
  if (!avail.software && !avail.hardware) {
    obs::perf::set_enabled(false);
    GTEST_SKIP() << "no counter access in this environment";
  }
  obs::Counter& clock =
      obs::counter("engine.task.simulate.perf.task_clock_us");
  const std::uint64_t before = clock.value();
  ScenarioSpec spec = small_spec();
  spec.tasks = {Task::kSimulate};
  SweepOptions opts;
  opts.use_cache = false;  // cached jobs skip run_job's PerfScope
  (void)SweepRunner(opts).run(spec);
  obs::perf::set_enabled(false);
  if (avail.software) {
    EXPECT_GT(clock.value(), before);
  }
}

}  // namespace
}  // namespace sysgo::engine
