// /proc-based resource sampling: a live Linux process has a nonzero RSS
// whose high-watermark bounds it, and update_resource_gauges publishes
// the sample into the proc.* gauge catalog.
#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.hpp"
#include "obs/resource.hpp"

namespace sysgo::obs::resource {
namespace {

TEST(Resource, SampleReadsLiveProcessState) {
#if !defined(__linux__)
  GTEST_SKIP() << "resource sampling is Linux-only";
#endif
  const ResourceSample s = sample();
  ASSERT_TRUE(s.ok);
  EXPECT_GT(s.rss_kb, 0);
  EXPECT_GE(s.rss_peak_kb, s.rss_kb);
  EXPECT_GE(s.minor_faults, 0);
  EXPECT_GE(s.major_faults, 0);
  EXPECT_GE(s.voluntary_ctx_switches, 0);
  EXPECT_GE(s.involuntary_ctx_switches, 0);
}

TEST(Resource, PeakRssNeverDecreases) {
#if !defined(__linux__)
  GTEST_SKIP() << "resource sampling is Linux-only";
#endif
  const ResourceSample before = sample();
  // Touch a few MB so RSS moves; the high-watermark must follow.
  std::vector<char> block(4 << 20, 1);
  for (std::size_t i = 0; i < block.size(); i += 4096) block[i] = 2;
  const ResourceSample after = sample();
  EXPECT_GE(after.rss_peak_kb, before.rss_peak_kb);
  EXPECT_GE(after.minor_faults, before.minor_faults);
}

TEST(Resource, GaugesPublishTheSample) {
#if !defined(__linux__)
  GTEST_SKIP() << "resource sampling is Linux-only";
#endif
  update_resource_gauges();
  EXPECT_GT(gauge("proc.rss_kb").value(), 0);
  EXPECT_GE(gauge("proc.rss_peak_kb").value(), gauge("proc.rss_kb").value());
  EXPECT_GT(gauge("proc.minor_faults").value(), 0);
}

TEST(Resource, GaugeNamesAreRegisteredEagerly) {
  // Present in the catalog (zeros before the first sample) so `sysgo
  // metrics dump` schemas include them regardless of platform.
  const auto snap = snapshot();
  std::size_t found = 0;
  for (const auto& g : snap.gauges) {
    if (g.name == "proc.rss_kb" || g.name == "proc.rss_peak_kb" ||
        g.name == "proc.minor_faults" || g.name == "proc.major_faults" ||
        g.name == "proc.ctx_switches.voluntary" ||
        g.name == "proc.ctx_switches.involuntary")
      ++found;
  }
  EXPECT_EQ(found, 6u);
}

}  // namespace
}  // namespace sysgo::obs::resource
