#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_report.hpp"

namespace sysgo::obs::trace {
namespace {

/// Lanes are process-wide and never die, and gtest runs every suite in one
/// binary: each test records on freshly spawned threads with uniquely named
/// lanes, calls reset_for_testing() first to rewind older tests' events,
/// and reads only its own lanes out of the drain.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_for_testing();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_for_testing();
  }

  static const LaneDump* lane_named(const TraceDump& dump,
                                    const std::string& name) {
    for (const LaneDump& lane : dump.lanes)
      if (lane.name == name) return &lane;
    return nullptr;
  }
};

TEST_F(TraceTest, SpanInstantAndFlowRoundTripThroughDrain) {
  const NameId span_name = intern("test.trace.span");
  const NameId inst_name = intern("test.trace.instant");
  const NameId key_a = intern("a");
  const NameId key_s = intern("s");
  const NameId val_s = intern("value-string");
  std::thread([&] {
    set_this_lane_name("test-basic");
    {
      TraceSpan span(span_name);
      ASSERT_TRUE(span.armed());
      span.arg(key_a, 42);
      span.str_arg(key_s, val_s);
    }
    instant(inst_name, {{key_a, -7, false}});
    const std::uint32_t flow = next_flow_id();
    flow_begin(inst_name, flow);
    flow_end(inst_name, flow);
  }).join();

  const TraceDump dump = drain();
  const LaneDump* lane = lane_named(dump, "test-basic");
  ASSERT_NE(lane, nullptr);
  EXPECT_EQ(lane->dropped, 0u);
  ASSERT_EQ(lane->events.size(), 4u);

  const Event& span = lane->events[0];
  EXPECT_EQ(span.kind, EventKind::kComplete);
  EXPECT_EQ(dump.strings[span.name], "test.trace.span");
  ASSERT_EQ(span.arg_count, 2u);
  EXPECT_EQ(dump.strings[span.arg_keys[0]], "a");
  EXPECT_EQ(span.arg_vals[0], 42);
  EXPECT_FALSE((span.str_mask >> 0) & 1u);
  EXPECT_TRUE((span.str_mask >> 1) & 1u);
  EXPECT_EQ(dump.strings[static_cast<NameId>(span.arg_vals[1])],
            "value-string");

  const Event& inst = lane->events[1];
  EXPECT_EQ(inst.kind, EventKind::kInstant);
  EXPECT_EQ(inst.arg_vals[0], -7);

  const Event& fb = lane->events[2];
  const Event& fe = lane->events[3];
  EXPECT_EQ(fb.kind, EventKind::kFlowBegin);
  EXPECT_EQ(fe.kind, EventKind::kFlowEnd);
  EXPECT_EQ(fb.flow_id, fe.flow_id);
  EXPECT_NE(fb.flow_id, 0u);
}

TEST_F(TraceTest, DisabledRecordingEmitsNothing) {
  set_enabled(false);
  const NameId name = intern("test.trace.disabled");
  std::thread([&] {
    set_this_lane_name("test-disabled");
    TraceSpan span(name);
    EXPECT_FALSE(span.armed());
    instant(name);
  }).join();
  const LaneDump* lane = lane_named(drain(), "test-disabled");
  // The lane may not even exist (nothing recorded => no lane allocated).
  if (lane != nullptr) {
    EXPECT_TRUE(lane->events.empty());
  }
}

TEST_F(TraceTest, RingWraparoundKeepsTailAndCountsDropped) {
  set_ring_capacity(8);
  const NameId name = intern("test.trace.wrap");
  const NameId key = intern("i");
  constexpr int kEmitted = 100;
  std::thread([&] {
    set_this_lane_name("test-wrap");
    for (int i = 0; i < kEmitted; ++i) instant(name, {{key, i, false}});
  }).join();
  set_ring_capacity(kDefaultRingCapacity);

  const TraceDump dump = drain();
  const LaneDump* lane = lane_named(dump, "test-wrap");
  ASSERT_NE(lane, nullptr);
  EXPECT_EQ(lane->events.size(), 8u);
  EXPECT_EQ(lane->dropped, static_cast<std::uint64_t>(kEmitted - 8));
  // The ring keeps the LAST events (flight-recorder semantics).
  for (std::size_t k = 0; k < lane->events.size(); ++k)
    EXPECT_EQ(lane->events[k].arg_vals[0],
              kEmitted - 8 + static_cast<std::int64_t>(k));
}

TEST_F(TraceTest, ConcurrentEmissionWithLiveDrainLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  const NameId name = intern("test.trace.stress");
  const NameId key = intern("seq");
  std::atomic<bool> stop{false};

  // Drain continuously while the producers hammer: drains must never crash,
  // tear an event, or perturb the producers' own accounting.
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) (void)drain();
  });

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    producers.emplace_back([&, t] {
      set_this_lane_name("test-stress-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) instant(name, {{key, i, false}});
    });
  for (auto& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  drainer.join();

  const TraceDump dump = drain();
  for (int t = 0; t < kThreads; ++t) {
    const LaneDump* lane =
        lane_named(dump, "test-stress-" + std::to_string(t));
    ASSERT_NE(lane, nullptr) << "lane " << t;
    // Producers are quiescent now: every emitted event is either drained or
    // accounted as dropped (ring wraparound), never silently lost.
    EXPECT_EQ(lane->events.size() + lane->dropped,
              static_cast<std::uint64_t>(kPerThread))
        << "lane " << t;
    // The surviving tail is in emission order: seq args strictly increase
    // and per-lane timestamps are monotonic (single producer, steady clock).
    for (std::size_t k = 1; k < lane->events.size(); ++k) {
      EXPECT_LT(lane->events[k - 1].arg_vals[0], lane->events[k].arg_vals[0])
          << "lane " << t << " event " << k;
      EXPECT_LE(lane->events[k - 1].ts_us, lane->events[k].ts_us)
          << "lane " << t << " event " << k;
    }
    // No torn payload ever surfaces: every drained event is exactly one of
    // the values this lane wrote.
    for (const Event& e : lane->events) {
      EXPECT_EQ(e.name, name);
      EXPECT_EQ(e.arg_count, 1u);
      EXPECT_GE(e.arg_vals[0], 0);
      EXPECT_LT(e.arg_vals[0], kPerThread);
    }
  }
}

TEST_F(TraceTest, ChromeJsonRoundTripsThroughTheParser) {
  const NameId span_name = intern("test.trace.json.span");
  const NameId key = intern("d");
  const NameId sval = intern("db");
  std::thread([&] {
    set_this_lane_name("test-json");
    {
      TraceSpan span(span_name);
      span.arg(key, 3);
      span.str_arg(intern("family"), sval);
    }
    instant(span_name);
    const std::uint32_t flow = next_flow_id();
    flow_begin(span_name, flow);
    flow_end(span_name, flow);
  }).join();

  const TraceDump dump = drain();
  const std::string json = to_chrome_json(dump);
  const TraceDump back = parse_chrome_json(json);

  const LaneDump* orig = lane_named(dump, "test-json");
  const LaneDump* rt = lane_named(back, "test-json");
  ASSERT_NE(orig, nullptr);
  ASSERT_NE(rt, nullptr);
  ASSERT_EQ(rt->events.size(), orig->events.size());
  for (std::size_t i = 0; i < orig->events.size(); ++i) {
    const Event& a = orig->events[i];
    const Event& b = rt->events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.ts_us, b.ts_us) << "event " << i;
    EXPECT_EQ(a.dur_us, b.dur_us) << "event " << i;
    EXPECT_EQ(dump.strings[a.name], back.strings[b.name]) << "event " << i;
    EXPECT_EQ(a.arg_count, b.arg_count) << "event " << i;
    EXPECT_EQ(a.str_mask, b.str_mask) << "event " << i;
    for (std::size_t k = 0; k < a.arg_count; ++k) {
      EXPECT_EQ(dump.strings[a.arg_keys[k]], back.strings[b.arg_keys[k]]);
      if ((a.str_mask >> k) & 1u) {
        EXPECT_EQ(dump.strings[static_cast<NameId>(a.arg_vals[k])],
                  back.strings[static_cast<NameId>(b.arg_vals[k])]);
      } else {
        EXPECT_EQ(a.arg_vals[k], b.arg_vals[k]);
      }
    }
  }
  // Flow pairing survives the round trip (ids may be renumbered 1:1 — here
  // they are copied verbatim).
  const auto is_flow = [](const Event& e) {
    return e.kind == EventKind::kFlowBegin || e.kind == EventKind::kFlowEnd;
  };
  for (std::size_t i = 0; i < orig->events.size(); ++i) {
    if (is_flow(orig->events[i])) {
      EXPECT_EQ(orig->events[i].flow_id, rt->events[i].flow_id);
    }
  }
}

TEST_F(TraceTest, ChromeJsonIsDeterministicForTheSameDump) {
  const NameId name = intern("test.trace.det");
  std::thread([&] {
    set_this_lane_name("test-det");
    instant(name, {{intern("k"), 1, false}});
  }).join();
  const TraceDump dump = drain();
  EXPECT_EQ(to_chrome_json(dump), to_chrome_json(dump));
  EXPECT_EQ(to_flight_bytes(dump), to_flight_bytes(dump));
}

TEST_F(TraceTest, FlightBytesRoundTripExactly) {
  const NameId span_name = intern("test.trace.flight.span");
  std::thread([&] {
    set_this_lane_name("test-flight");
    {
      TraceSpan span(span_name);
      span.arg(intern("x"), 123456789012345LL);
      span.str_arg(intern("y"), intern("deep"));
    }
    instant(span_name);
  }).join();

  const TraceDump dump = drain();
  const std::string bytes = to_flight_bytes(dump);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "SYSGOFR1");
  const TraceDump back = parse_flight_bytes(bytes);

  // The flight format preserves string ids verbatim: dumps compare equal
  // field by field.
  ASSERT_EQ(back.strings.size(), dump.strings.size());
  EXPECT_EQ(back.strings, dump.strings);
  ASSERT_EQ(back.lanes.size(), dump.lanes.size());
  for (std::size_t l = 0; l < dump.lanes.size(); ++l) {
    EXPECT_EQ(back.lanes[l].name, dump.lanes[l].name);
    EXPECT_EQ(back.lanes[l].dropped, dump.lanes[l].dropped);
    ASSERT_EQ(back.lanes[l].events.size(), dump.lanes[l].events.size());
    for (std::size_t i = 0; i < dump.lanes[l].events.size(); ++i) {
      const Event& a = dump.lanes[l].events[i];
      const Event& b = back.lanes[l].events[i];
      EXPECT_EQ(a.ts_us, b.ts_us);
      EXPECT_EQ(a.dur_us, b.dur_us);
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.arg_count, b.arg_count);
      EXPECT_EQ(a.str_mask, b.str_mask);
      EXPECT_EQ(a.flow_id, b.flow_id);
      EXPECT_EQ(a.arg_keys, b.arg_keys);
      EXPECT_EQ(a.arg_vals, b.arg_vals);
    }
  }
  // parse_trace auto-detects both encodings.
  EXPECT_NO_THROW((void)parse_trace(bytes));
  EXPECT_NO_THROW((void)parse_trace(to_chrome_json(dump)));
}

TEST_F(TraceTest, ParserRejectsGarbage) {
  EXPECT_THROW((void)parse_chrome_json("not json"), std::runtime_error);
  EXPECT_THROW((void)parse_chrome_json("{\"no\":\"events\"}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_flight_bytes("BADMAGIC????"), std::runtime_error);
  EXPECT_THROW((void)parse_flight_bytes("SYSGOFR1"), std::runtime_error);
}

TEST(TraceReport, CriticalPathUtilizationAndStagesFromHandBuiltDump) {
  // Two lanes, microsecond layout:
  //   main:    [0, 100) "prepare"          [300, 400) "finish"
  //   worker:  [100, 250) "compute"  (gap) [260, 280) "compute"
  // Latest span is finish(400); its predecessor chain is compute[260,280]
  // -> compute[100,250] is NOT a predecessor of that (250 <= 260: it is)
  // -> prepare[0,100].  Wall-clock = 400.
  TraceDump dump;
  dump.strings = {"", "prepare", "compute", "finish"};
  const auto span = [](std::uint64_t ts, std::uint64_t dur, NameId name) {
    Event e;
    e.kind = EventKind::kComplete;
    e.ts_us = ts;
    e.dur_us = dur;
    e.name = name;
    return e;
  };
  LaneDump main_lane;
  main_lane.name = "main";
  main_lane.events = {span(0, 100, 1), span(300, 100, 3)};
  LaneDump worker;
  worker.name = "worker";
  worker.events = {span(100, 150, 2), span(260, 20, 2)};
  dump.lanes = {main_lane, worker};

  const Report rep = analyze(dump);
  EXPECT_EQ(rep.wall_us, 400u);
  EXPECT_EQ(rep.span_count, 4u);

  ASSERT_EQ(rep.lanes.size(), 2u);
  EXPECT_EQ(rep.lanes[0].busy_us, 200u);  // 100 + 100
  EXPECT_EQ(rep.lanes[1].busy_us, 170u);  // 150 + 20
  EXPECT_DOUBLE_EQ(rep.lanes[0].utilization, 0.5);

  // Stages sort by total time: compute(170) < prepare(100)+finish(100)?
  // prepare=100, compute=170, finish=100 -> compute first.
  ASSERT_GE(rep.stages.size(), 3u);
  EXPECT_EQ(rep.stages[0].name, "compute");
  EXPECT_EQ(rep.stages[0].count, 2u);
  EXPECT_EQ(rep.stages[0].total_us, 170u);
  EXPECT_EQ(rep.stages[0].max_us, 150u);

  // Critical path: prepare -> compute[100,250] -> compute[260,280] ->
  // finish, chronological.
  ASSERT_EQ(rep.critical_path.size(), 4u);
  EXPECT_EQ(rep.critical_path[0].name, "prepare");
  EXPECT_EQ(rep.critical_path[1].name, "compute");
  EXPECT_EQ(rep.critical_path[1].dur_us, 150u);
  EXPECT_EQ(rep.critical_path[2].name, "compute");
  EXPECT_EQ(rep.critical_path[2].dur_us, 20u);
  EXPECT_EQ(rep.critical_path[3].name, "finish");
  EXPECT_EQ(rep.critical_busy_us, 100u + 150u + 20u + 100u);

  const std::string text = report_text(rep);
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("per-worker utilization"), std::string::npos);
  EXPECT_NE(text.find("stage breakdown"), std::string::npos);
  EXPECT_NE(text.find("compute"), std::string::npos);
}

TEST(TraceReport, NestedSpansCountBusyTimeOnce) {
  TraceDump dump;
  dump.strings = {"", "outer", "inner"};
  Event outer;
  outer.kind = EventKind::kComplete;
  outer.ts_us = 0;
  outer.dur_us = 100;
  outer.name = 1;
  Event inner = outer;
  inner.ts_us = 20;
  inner.dur_us = 30;
  inner.name = 2;
  LaneDump lane;
  lane.name = "main";
  lane.events = {outer, inner};
  dump.lanes = {lane};
  const Report rep = analyze(dump);
  ASSERT_EQ(rep.lanes.size(), 1u);
  EXPECT_EQ(rep.lanes[0].busy_us, 100u);  // union, not 130
}

}  // namespace
}  // namespace sysgo::obs::trace
