#include "protocol/builders.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/matching.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"

namespace sysgo::protocol {
namespace {

TEST(Builders, EdgeColoringHalfDuplexValid) {
  const auto g = topology::cycle(8);
  const auto sched = edge_coloring_schedule(g, Mode::kHalfDuplex);
  EXPECT_TRUE(validate_structure(sched, &g).ok);
  EXPECT_EQ(sched.period_length() % 2, 0);  // two rounds per color
}

TEST(Builders, EdgeColoringFullDuplexValid) {
  const auto g = topology::grid(3, 3);
  const auto sched = edge_coloring_schedule(g, Mode::kFullDuplex);
  EXPECT_TRUE(validate_structure(sched, &g).ok);
}

TEST(Builders, EdgeColoringCoversEveryArcOverOnePeriod) {
  const auto g = topology::cycle(6);
  const auto sched = edge_coloring_schedule(g, Mode::kHalfDuplex);
  std::set<std::pair<int, int>> activated;
  for (const auto& r : sched.period)
    for (const auto& a : r.arcs) activated.insert({a.tail, a.head});
  EXPECT_EQ(activated.size(), g.arc_count());  // both directions of each edge
}

TEST(Builders, EdgeColoringAchievesGossipOnSmallGraphs) {
  for (auto mode : {Mode::kHalfDuplex, Mode::kFullDuplex}) {
    const auto g = topology::cycle(6);
    const auto sched = edge_coloring_schedule(g, mode);
    const int t = simulator::gossip_time(sched, 200);
    EXPECT_GT(t, 0) << "mode " << static_cast<int>(mode);
  }
}

TEST(Builders, EdgeColoringOnDeBruijn) {
  const auto g = topology::de_bruijn(2, 4);
  const auto sched = edge_coloring_schedule(g, Mode::kHalfDuplex);
  EXPECT_TRUE(validate_structure(sched, &g).ok);
  EXPECT_GT(simulator::gossip_time(sched, 500), 0);
}

TEST(Builders, RandomScheduleValidHalfDuplex) {
  util::Rng rng(11);
  const auto g = topology::complete(9);
  const auto sched = random_systolic_schedule(g, 5, Mode::kHalfDuplex, rng);
  EXPECT_EQ(sched.period_length(), 5);
  EXPECT_TRUE(validate_structure(sched, &g).ok);
}

TEST(Builders, RandomScheduleValidFullDuplex) {
  util::Rng rng(13);
  const auto g = topology::complete(8);
  const auto sched = random_systolic_schedule(g, 4, Mode::kFullDuplex, rng);
  EXPECT_TRUE(validate_structure(sched, &g).ok);
  for (const auto& r : sched.period)
    EXPECT_TRUE(graph::is_full_duplex_matching(r.arcs, 8));
}

TEST(Builders, RandomProtocolValid) {
  util::Rng rng(17);
  const auto g = topology::hypercube(3);
  const auto p = random_protocol(g, 12, Mode::kHalfDuplex, rng);
  EXPECT_EQ(p.length(), 12);
  EXPECT_TRUE(validate_structure(p, &g).ok);
}

TEST(Builders, RandomProtocolDeterministicInSeed) {
  const auto g = topology::hypercube(3);
  util::Rng r1(5), r2(5);
  const auto p1 = random_protocol(g, 6, Mode::kHalfDuplex, r1);
  const auto p2 = random_protocol(g, 6, Mode::kHalfDuplex, r2);
  ASSERT_EQ(p1.rounds.size(), p2.rounds.size());
  for (std::size_t i = 0; i < p1.rounds.size(); ++i)
    EXPECT_EQ(p1.rounds[i], p2.rounds[i]);
}

}  // namespace
}  // namespace sysgo::protocol
