#include "protocol/classic_protocols.hpp"

#include <gtest/gtest.h>

#include "simulator/gossip_sim.hpp"
#include "topology/classic.hpp"

namespace sysgo::protocol {
namespace {

TEST(ClassicProtocols, PathHalfDuplexCompletesWithinLinearRounds) {
  for (int n : {2, 3, 5, 8, 13}) {
    const auto sched = path_schedule(n, Mode::kHalfDuplex);
    const auto g = topology::path(n);
    EXPECT_TRUE(validate_structure(sched, &g).ok);
    const int t = simulator::gossip_time(sched, 8 * n + 16);
    EXPECT_GT(t, 0) << "n=" << n;
    EXPECT_LE(t, 4 * n + 8) << "n=" << n;
  }
}

TEST(ClassicProtocols, PathFullDuplexFasterThanHalf) {
  const int n = 12;
  const int t_full =
      simulator::gossip_time(path_schedule(n, Mode::kFullDuplex), 200);
  const int t_half =
      simulator::gossip_time(path_schedule(n, Mode::kHalfDuplex), 200);
  ASSERT_GT(t_full, 0);
  ASSERT_GT(t_half, 0);
  EXPECT_LE(t_full, t_half);
}

TEST(ClassicProtocols, PathGossipAtLeastNMinus1) {
  // Information must traverse the whole path: t >= n-1.
  const int n = 10;
  const int t = simulator::gossip_time(path_schedule(n, Mode::kFullDuplex), 200);
  EXPECT_GE(t, n - 1);
}

TEST(ClassicProtocols, CycleEvenAndOdd) {
  for (int n : {6, 7, 10, 11}) {
    const auto sched = cycle_schedule(n, Mode::kHalfDuplex);
    const auto g = topology::cycle(n);
    EXPECT_TRUE(validate_structure(sched, &g).ok);
    const int t = simulator::gossip_time(sched, 10 * n);
    EXPECT_GT(t, 0) << "n=" << n;
  }
}

TEST(ClassicProtocols, CycleFullDuplexNearOptimal) {
  // Full-duplex gossip on C_n takes at least n/2 rounds.
  const int n = 12;
  const int t = simulator::gossip_time(cycle_schedule(n, Mode::kFullDuplex), 100);
  ASSERT_GT(t, 0);
  EXPECT_GE(t, n / 2);
  EXPECT_LE(t, 2 * n);
}

TEST(ClassicProtocols, GridCompletes) {
  const auto sched = grid_schedule(4, 5, Mode::kHalfDuplex);
  const auto g = topology::grid(4, 5);
  EXPECT_TRUE(validate_structure(sched, &g).ok);
  EXPECT_GT(simulator::gossip_time(sched, 500), 0);
}

TEST(ClassicProtocols, HypercubeFullDuplexOptimal) {
  // Dimension-order exchange gossips Q_D in exactly D rounds.
  for (int D : {2, 3, 4, 5}) {
    const auto sched = hypercube_schedule(D, Mode::kFullDuplex);
    const auto g = topology::hypercube(D);
    EXPECT_TRUE(validate_structure(sched, &g).ok);
    EXPECT_EQ(simulator::gossip_time(sched, 4 * D), D) << "D=" << D;
  }
}

TEST(ClassicProtocols, HypercubeHalfDuplexCompletes) {
  const int D = 4;
  const auto sched = hypercube_schedule(D, Mode::kHalfDuplex);
  const int t = simulator::gossip_time(sched, 16 * D);
  ASSERT_GT(t, 0);
  EXPECT_LE(t, 4 * D);  // one sweep of 2D rounds doubles twice... generous cap
  EXPECT_GE(t, D);      // cannot beat the full-duplex optimum
}

TEST(ClassicProtocols, CompletePower2MatchesHypercube) {
  const auto sched = complete_power2_schedule(16, Mode::kFullDuplex);
  EXPECT_EQ(sched.n, 16);
  EXPECT_EQ(simulator::gossip_time(sched, 64), 4);
}

TEST(ClassicProtocols, CompletePower2RejectsNonPowers) {
  EXPECT_THROW((void)complete_power2_schedule(12, Mode::kFullDuplex),
               std::invalid_argument);
}

TEST(ClassicProtocols, SchedulesAreSystolicWhenExpanded) {
  const auto sched = path_schedule(9, Mode::kHalfDuplex);
  const auto p = sched.expand(3 * sched.period_length());
  EXPECT_TRUE(is_systolic(p, sched.period_length()));
}

TEST(ClassicProtocols, RejectsBadParameters) {
  EXPECT_THROW((void)path_schedule(1, Mode::kHalfDuplex), std::invalid_argument);
  EXPECT_THROW((void)cycle_schedule(2, Mode::kHalfDuplex), std::invalid_argument);
  EXPECT_THROW((void)hypercube_schedule(0, Mode::kHalfDuplex), std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::protocol
