#include "protocol/compiled.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "protocol/builders.hpp"
#include "protocol/classic_protocols.hpp"
#include "topology/classic.hpp"
#include "topology/de_bruijn.hpp"
#include "util/rng.hpp"

namespace sysgo::protocol {
namespace {

using graph::Arc;

SystolicSchedule two_round_schedule() {
  SystolicSchedule s;
  s.n = 4;
  s.mode = Mode::kHalfDuplex;
  s.period = {{{{0, 1}, {2, 3}}}, {{{1, 2}}}};
  return s;
}

TEST(Compiled, RejectsEmptyPeriod) {
  SystolicSchedule s;
  s.n = 3;
  EXPECT_THROW((void)CompiledSchedule::compile(s), std::invalid_argument);
}

TEST(Compiled, RejectsNonMatchingRound) {
  auto s = two_round_schedule();
  s.period.push_back({{{0, 1}, {1, 2}}});  // vertex 1 twice
  EXPECT_THROW((void)CompiledSchedule::compile(s), std::invalid_argument);
}

TEST(Compiled, RejectsEndpointOutOfRange) {
  auto s = two_round_schedule();
  s.period[0].arcs.push_back({3, 7});
  EXPECT_THROW((void)CompiledSchedule::compile(s), std::invalid_argument);
}

TEST(Compiled, RejectsArcAbsentFromNetwork) {
  const auto s = two_round_schedule();
  const auto path = topology::path(4);  // no (0, 1)? path has it; use cycle gap
  EXPECT_NO_THROW((void)CompiledSchedule::compile(s, &path));
  SystolicSchedule bad = s;
  bad.period[1].arcs = {{0, 3}};  // chord absent from the path
  EXPECT_THROW((void)CompiledSchedule::compile(bad, &path),
               std::invalid_argument);
}

TEST(Compiled, RejectsFullDuplexRoundMissingOpposite) {
  SystolicSchedule s;
  s.n = 3;
  s.mode = Mode::kFullDuplex;
  s.period = {{{{0, 1}}}};  // (1, 0) missing
  EXPECT_THROW((void)CompiledSchedule::compile(s), std::invalid_argument);
}

TEST(Compiled, FlatSpansMatchAuthoredRounds) {
  const auto s = two_round_schedule();
  const auto cs = CompiledSchedule::compile(s);
  EXPECT_EQ(cs.n(), 4);
  EXPECT_EQ(cs.mode(), Mode::kHalfDuplex);
  EXPECT_TRUE(cs.periodic());
  ASSERT_EQ(cs.round_count(), 2);
  EXPECT_EQ(cs.period_length(), 2);
  EXPECT_EQ(cs.arc_total(), 3u);
  const auto r0 = cs.round_arcs(0);
  ASSERT_EQ(r0.size(), 2u);
  EXPECT_EQ(r0[0], (Arc{0, 1}));
  EXPECT_EQ(r0[1], (Arc{2, 3}));
  const auto r1 = cs.round_arcs(1);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0], (Arc{1, 2}));
}

TEST(Compiled, HalfDuplexPartnerAndRoleTables) {
  const auto cs = CompiledSchedule::compile(two_round_schedule());
  // Round 0: 0>1, 2>3.
  EXPECT_EQ(cs.partner(0, 0), 1);
  EXPECT_EQ(cs.partner(0, 1), 0);
  EXPECT_EQ(cs.partner(0, 2), 3);
  EXPECT_EQ(cs.partner(0, 3), 2);
  EXPECT_EQ(cs.role(0, 0), RoundRole::kSend);
  EXPECT_EQ(cs.role(0, 1), RoundRole::kReceive);
  EXPECT_EQ(cs.role(0, 2), RoundRole::kSend);
  EXPECT_EQ(cs.role(0, 3), RoundRole::kReceive);
  // Round 1: 1>2 only; 0 and 3 idle.
  EXPECT_EQ(cs.partner(1, 0), -1);
  EXPECT_EQ(cs.role(1, 0), RoundRole::kIdle);
  EXPECT_EQ(cs.partner(1, 3), -1);
  EXPECT_EQ(cs.role(1, 1), RoundRole::kSend);
  EXPECT_EQ(cs.role(1, 2), RoundRole::kReceive);
}

TEST(Compiled, FullDuplexPairsAndRoles) {
  const auto sched = protocol::hypercube_schedule(3, Mode::kFullDuplex);
  const auto cs = CompiledSchedule::compile(sched);
  for (int r = 0; r < cs.round_count(); ++r) {
    const auto arcs = cs.round_arcs(r);
    const auto pairs = cs.round_pairs(r);
    EXPECT_EQ(pairs.size() * 2, arcs.size());
    for (const auto& p : pairs) {
      EXPECT_LT(p.tail, p.head);
      EXPECT_EQ(cs.role(r, p.tail), RoundRole::kExchange);
      EXPECT_EQ(cs.role(r, p.head), RoundRole::kExchange);
      EXPECT_EQ(cs.partner(r, p.tail), p.head);
      EXPECT_EQ(cs.partner(r, p.head), p.tail);
      // Both directions present in the arc span.
      EXPECT_TRUE(std::find(arcs.begin(), arcs.end(), Arc{p.tail, p.head}) !=
                  arcs.end());
      EXPECT_TRUE(std::find(arcs.begin(), arcs.end(), Arc{p.head, p.tail}) !=
                  arcs.end());
    }
  }
}

TEST(Compiled, PartnerTablesAgreeWithArcListsOnRandomSchedules) {
  util::Rng rng(42);
  for (Mode mode : {Mode::kHalfDuplex, Mode::kFullDuplex}) {
    const auto g = topology::de_bruijn(2, 4).symmetric_closure();
    const auto sched = random_systolic_schedule(g, 6, mode, rng);
    const auto cs = CompiledSchedule::compile(sched, &g);
    for (int r = 0; r < cs.round_count(); ++r) {
      std::vector<int> partner(static_cast<std::size_t>(cs.n()), -1);
      std::vector<int> sends(static_cast<std::size_t>(cs.n()), 0);
      std::vector<int> receives(static_cast<std::size_t>(cs.n()), 0);
      for (const auto& a : cs.round_arcs(r)) {
        partner[static_cast<std::size_t>(a.tail)] = a.head;
        partner[static_cast<std::size_t>(a.head)] = a.tail;
        sends[static_cast<std::size_t>(a.tail)] = 1;
        receives[static_cast<std::size_t>(a.head)] = 1;
      }
      for (int v = 0; v < cs.n(); ++v) {
        EXPECT_EQ(cs.partner(r, v), partner[static_cast<std::size_t>(v)]);
        const RoundRole role = cs.role(r, v);
        EXPECT_EQ(role != RoundRole::kIdle && role != RoundRole::kReceive,
                  sends[static_cast<std::size_t>(v)] != 0);
        EXPECT_EQ(role != RoundRole::kIdle && role != RoundRole::kSend,
                  receives[static_cast<std::size_t>(v)] != 0);
      }
    }
  }
}

TEST(Compiled, RoundIndexWrapsOnlyWhenPeriodic) {
  const auto cs = CompiledSchedule::compile(two_round_schedule());
  EXPECT_EQ(cs.round_index(1), 0);
  EXPECT_EQ(cs.round_index(2), 1);
  EXPECT_EQ(cs.round_index(3), 0);
  EXPECT_EQ(cs.round_index(18), 1);

  const auto fin = CompiledSchedule::compile(two_round_schedule().expand(2));
  EXPECT_FALSE(fin.periodic());
  EXPECT_EQ(fin.round_index(2), 1);
  EXPECT_THROW((void)fin.round_index(3), std::out_of_range);
}

TEST(Compiled, EqualityIgnoresAuthoredArcOrder) {
  auto a = two_round_schedule();
  auto b = two_round_schedule();
  std::reverse(b.period[0].arcs.begin(), b.period[0].arcs.end());
  EXPECT_TRUE(CompiledSchedule::compile(a) == CompiledSchedule::compile(b));

  auto c = two_round_schedule();
  c.period[1].arcs = {{2, 1}};  // different direction: different schedule
  EXPECT_FALSE(CompiledSchedule::compile(a) == CompiledSchedule::compile(c));
}

TEST(Compiled, FiniteProtocolAllowsEmptyRoundList) {
  Protocol p;
  p.n = 2;
  EXPECT_NO_THROW((void)CompiledSchedule::compile(p));  // zero rounds
}

TEST(Compiled, RejectsDuplicateArcLikeValidateStructure) {
  // A duplicated arc is not a matching; it must fail exactly as it does in
  // validate_structure, not be canonicalized away.
  Protocol p;
  p.n = 2;
  p.rounds = {{{{0, 1}, {0, 1}}}};
  EXPECT_FALSE(validate_structure(p).ok);
  EXPECT_THROW((void)CompiledSchedule::compile(p), std::invalid_argument);
}

TEST(Compiled, RoundIndexRejectsNonPositiveSteps) {
  const auto cs = CompiledSchedule::compile(two_round_schedule());
  EXPECT_THROW((void)cs.round_index(0), std::out_of_range);
  EXPECT_THROW((void)cs.round_index(-3), std::out_of_range);
}

}  // namespace
}  // namespace sysgo::protocol
