#include "protocol/knodel_protocols.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/audit.hpp"
#include "simulator/gossip_sim.hpp"
#include "topology/knodel.hpp"

namespace sysgo::protocol {
namespace {

TEST(KnodelProtocols, StructurallyValid) {
  const int n = 16, delta = 4;
  const auto g = topology::knodel(delta, n);
  for (auto mode : {Mode::kHalfDuplex, Mode::kFullDuplex}) {
    const auto sched = knodel_schedule(delta, n, mode);
    EXPECT_TRUE(validate_structure(sched, &g).ok);
  }
}

TEST(KnodelProtocols, RoundsArePerfectMatchings) {
  const auto sched = knodel_schedule(4, 16, Mode::kFullDuplex);
  for (const auto& r : sched.period) EXPECT_EQ(r.arcs.size(), 16u);  // both dirs
}

TEST(KnodelProtocols, OptimalGossipOnPowersOfTwo) {
  // W(log2 n, n) with ascending dimensions gossips in exactly log2(n)
  // full-duplex rounds — the absolute optimum ceil(log2 n).
  for (int n : {8, 16, 32, 64}) {
    const int delta = topology::knodel_max_delta(n);
    const auto sched = knodel_schedule(delta, n, Mode::kFullDuplex);
    const int t = simulator::gossip_time(sched, 4 * delta);
    EXPECT_EQ(t, static_cast<int>(std::log2(n))) << "n=" << n;
  }
}

TEST(KnodelProtocols, NearOptimalOnGeneralEvenN) {
  for (int n : {10, 20, 24}) {
    const int delta = topology::knodel_max_delta(n);
    const auto sched = knodel_schedule(delta, n, Mode::kFullDuplex);
    const int t = simulator::gossip_time(sched, 8 * delta);
    ASSERT_GT(t, 0) << "n=" << n;
    EXPECT_LE(t, static_cast<int>(std::ceil(std::log2(n))) + delta) << "n=" << n;
    EXPECT_GE(t, static_cast<int>(std::ceil(std::log2(n)))) << "n=" << n;
  }
}

TEST(KnodelProtocols, HalfDuplexCompletesWithinDoubledBudget) {
  const int n = 16;
  const int delta = topology::knodel_max_delta(n);
  const auto sched = knodel_schedule(delta, n, Mode::kHalfDuplex);
  const int t = simulator::gossip_time(sched, 16 * delta);
  ASSERT_GT(t, 0);
  // Half-duplex >= the 1.4404·log2(n) bound of [4,17,15,26] (minus slack).
  EXPECT_GE(t, static_cast<int>(std::log2(n)));
}

TEST(KnodelProtocols, AuditCertificateHolds) {
  const int n = 32;
  const int delta = topology::knodel_max_delta(n);
  const auto sched = knodel_schedule(delta, n, Mode::kFullDuplex);
  const auto audit = core::audit_schedule(sched);
  const int measured = simulator::gossip_time(sched, 8 * delta);
  ASSERT_GT(measured, 0);
  EXPECT_LE(audit.round_lower_bound, measured);
}

TEST(KnodelProtocols, RejectsBadParameters) {
  EXPECT_THROW((void)knodel_schedule(1, 9, Mode::kFullDuplex),
               std::invalid_argument);
  EXPECT_THROW((void)knodel_schedule(5, 16, Mode::kFullDuplex),
               std::invalid_argument);
}

}  // namespace
}  // namespace sysgo::protocol
